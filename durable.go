package trustmap

// Durable stores: OpenStore gives the Store a data directory holding an
// append-only write-ahead log (internal/wal) and periodic compacted
// snapshots (internal/snapshot). Every mutator then runs apply-then-log
// under one writer critical section: the mutation is applied to the
// in-memory store (publishing its epoch) and, when it was effective, the
// wire.Op batch is appended to the WAL under the next LSN. The WAL
// therefore holds exactly the effective mutation history; recovery =
// load the latest valid snapshot + replay the WAL suffix above its
// watermark through the same dispatch the live mutators use, then rebase
// the epoch counter so post-restart epochs continue the pre-crash
// numbering.
//
// A crash can only lose the un-fsynced WAL tail — writes whose Sync (or
// always/batch-mode fsync) had not returned, i.e. writes that were never
// acknowledged as durable. Everything behind the durable LSN replays to
// exactly the pre-crash state: replay is deterministic, so resolved
// beliefs after recovery match the pre-crash durable epoch.

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"trustmap/internal/snapshot"
	"trustmap/internal/wal"
	"trustmap/wire"
)

// DurabilityMode names the WAL fsync discipline of a durable store.
type DurabilityMode int

const (
	// DurabilityBatch — the default — group-commits: appends land in the
	// OS page cache and are fsynced every groupEvery batches and on every
	// Sync, Checkpoint, and Close. A crash loses at most the last unsynced
	// group; a caller that needs a particular write crash-safe calls Sync.
	DurabilityBatch DurabilityMode = iota
	// DurabilityOff writes the WAL but never fsyncs it on the mutation
	// path (Checkpoint and Close still flush). Full speed; a crash loses
	// whatever the OS had not written back yet.
	DurabilityOff
	// DurabilityAlways fsyncs every logged batch before the mutator
	// returns: every acknowledged write is crash-safe, at one fsync per
	// mutation.
	DurabilityAlways
)

// String names the mode as it appears in DurabilityStats and on the wire.
func (m DurabilityMode) String() string {
	switch m {
	case DurabilityBatch:
		return "batch"
	case DurabilityOff:
		return "off"
	case DurabilityAlways:
		return "always"
	default:
		return fmt.Sprintf("DurabilityMode(%d)", int(m))
	}
}

// WithDurability sets a durable store's fsync discipline (default
// DurabilityBatch). NewStore ignores the option: an in-memory store has
// no WAL to sync.
func WithDurability(mode DurabilityMode) StoreOption {
	return func(c *storeConfig) { c.durability = mode }
}

// ErrClosed is returned by every operation on a Store after Close.
var ErrClosed = errors.New("trustmap: store is closed")

// ErrPoisoned marks a store whose WAL write failed after the in-memory
// apply: memory leads the log, so accepting further writes would let a
// later crash fork history. Every subsequent mutation, Sync, and
// Checkpoint wraps ErrPoisoned (errors.Is distinguishes it from
// ErrClosed). Reads keep serving the last published epoch; the only exit
// is to Close and re-OpenStore, which recovers to the durable state.
var ErrPoisoned = errors.New("trustmap: store poisoned by storage failure")

// ErrNotDurable is returned by Checkpoint on an in-memory store.
var ErrNotDurable = errors.New("trustmap: store has no data directory (NewStore; use OpenStore)")

// groupEvery is the batch-mode group-commit size: an fsync is issued
// every groupEvery appended batches (and on Sync/Checkpoint/Close).
const groupEvery = 64

// snapshotsKept is how many compacted snapshots a checkpoint retains.
const snapshotsKept = 2

// durable is the persistence side of a Store: the open WAL plus the
// durability watermarks. mu is the writer critical section — every
// logged mutator holds it across apply AND append, so the WAL order is
// the apply order.
type durable struct {
	mu   sync.Mutex
	dir  string
	log  *wal.Log
	mode DurabilityMode

	pending int   // appends since the last fsync (batch mode)
	failed  error // poison: set when a WAL write failed after an apply

	// Watermarks, atomically readable off the mutation path (stats,
	// epoch tagging). Guarded by mu for writes.
	lastLSN    atomic.Uint64 // last logged batch
	durableLSN atomic.Uint64 // last fsynced batch
	snapLSN    atomic.Uint64 // watermark of the newest snapshot

	checkpoints      uint64 // completed checkpoints (guarded by mu)
	recoveredBatches uint64 // WAL batches replayed at open (immutable after open)
	replayedOps      uint64 // ops applied during replay
	replayErrors     uint64 // ops that errored during replay
}

func (d *durable) walDir() string  { return filepath.Join(d.dir, "wal") }
func (d *durable) snapDir() string { return filepath.Join(d.dir, "snapshots") }

// DurabilityStats describes a store's persistence state and counters.
// All counters are deterministic — ops, batches, fsyncs, bytes — so
// durability overhead is benchmarkable without wall clocks.
type DurabilityStats struct {
	Mode             string // "memory" (NewStore), or "off"/"batch"/"always"
	LastLSN          uint64 // last logged batch
	DurableLSN       uint64 // last fsynced batch: survives a crash
	SnapshotLSN      uint64 // watermark of the newest compacted snapshot
	WALAppends       uint64 // batches appended since open
	WALSyncs         uint64 // fsyncs issued since open
	WALBytes         uint64 // framed bytes appended since open
	Checkpoints      uint64 // checkpoints completed since open
	RecoveredBatches uint64 // WAL batches replayed at open
	ReplayedOps      uint64 // ops applied during recovery replay
	ReplayErrors     uint64 // ops that errored during recovery replay
	DiscardedBytes   uint64 // torn-tail bytes truncated at open
}

// OpenStore opens (creating if needed) a durable store rooted at dir:
// <dir>/wal holds the write-ahead log, <dir>/snapshots the compacted
// checkpoints. Recovery runs before OpenStore returns — latest valid
// snapshot, then WAL replay above its watermark — so the returned store
// serves the full durable state. Close the store to release the WAL.
//
// The in-memory options (WithWorkers, WithExtraRoots, ...) apply as in
// NewStore; WithDurability picks the fsync discipline (default
// DurabilityBatch).
func OpenStore(dir string, opts ...StoreOption) (*Store, error) {
	var c storeConfig
	for _, o := range opts {
		o(&c)
	}
	d := &durable{dir: dir, mode: c.durability}

	snap, _, err := snapshot.Latest(d.snapDir())
	if err != nil {
		return nil, fmt.Errorf("trustmap: loading snapshot: %w", err)
	}
	n := New()
	var snapEpoch, snapLSN uint64
	if snap != nil {
		if snap.Schema > wire.SchemaVersion {
			return nil, fmt.Errorf("trustmap: snapshot written by schema %d, newer than %d", snap.Schema, wire.SchemaVersion)
		}
		for _, e := range snap.Trust {
			n.AddTrust(e.Truster, e.Trusted, e.Priority)
		}
		for user, v := range snap.Beliefs {
			n.SetBelief(user, v)
		}
		c.extraRoots = append(c.extraRoots, snap.ExtraRoots...)
		snapEpoch, snapLSN = snap.Epoch, snap.LSN
	}
	st, err := newStore(n, c)
	if err != nil {
		return nil, fmt.Errorf("trustmap: compiling snapshot state: %w", err)
	}
	if snap != nil {
		keys := make([]string, 0, len(snap.Objects))
		for k := range snap.Objects {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic root registration order
		for _, k := range keys {
			if err := st.applyPutObject(k, snap.Objects[k]); err != nil {
				return nil, fmt.Errorf("trustmap: restoring object %q: %w", k, err)
			}
		}
	}

	log, err := wal.Open(d.walDir())
	if err != nil {
		return nil, fmt.Errorf("trustmap: opening wal: %w", err)
	}
	switch {
	case log.LastLSN() == 0 && snapLSN > 0:
		// Fresh or fully pruned log behind an existing snapshot: position
		// it so the next batch continues the snapshot's numbering.
		if err := log.SetBase(snapLSN); err != nil {
			log.Close()
			return nil, fmt.Errorf("trustmap: positioning wal after snapshot: %w", err)
		}
	case log.LastLSN() < snapLSN:
		log.Close()
		return nil, fmt.Errorf("trustmap: wal ends at lsn %d but snapshot covers lsn %d", log.LastLSN(), snapLSN)
	}

	maxEpoch := snapEpoch
	replayErr := wal.Replay(d.walDir(), snapLSN, func(b wire.OpBatch) error {
		d.recoveredBatches++
		if b.Epoch > maxEpoch {
			maxEpoch = b.Epoch
		}
		st.replayBatch(b, &d.replayedOps, &d.replayErrors)
		return nil
	})
	if replayErr != nil {
		log.Close()
		return nil, fmt.Errorf("trustmap: replaying wal: %w", replayErr)
	}

	d.log = log
	d.lastLSN.Store(log.LastLSN())
	d.durableLSN.Store(log.LastLSN()) // read back from disk: already durable
	d.snapLSN.Store(snapLSN)
	st.dur = d
	// Every publication from here on carries the logged LSN as its tag,
	// and post-restart epochs continue the pre-crash numbering.
	st.sess.lsnFn = d.lastLSN.Load
	st.sess.rebase(maxEpoch)
	return st, nil
}

// replayBatch re-applies one recovered WAL batch through the same
// dispatch the live mutators use. Maximal runs of trust-network ops
// apply as one Update (one epoch, like the original batch); object ops
// apply individually. Per-op errors are counted, not fatal: the WAL
// holds only ops that were effective when logged, so replay errors mean
// rot or a cross-version divergence — recovery still converges because
// the dispatch is deterministic.
func (s *Store) replayBatch(b wire.OpBatch, applied, errs *uint64) {
	isObjectOp := func(kind string) bool {
		switch kind {
		case wire.OpPutObject, wire.OpDeleteObject, wire.OpPutBelief, wire.OpDeleteBelief,
			wire.OpRegisterRoots:
			return true
		}
		return false
	}
	for i := 0; i < len(b.Ops); {
		if isObjectOp(b.Ops[i].Op) {
			if err := s.applyObjectOp(b.Ops[i]); err != nil {
				*errs++
			} else {
				*applied++
			}
			i++
			continue
		}
		j := i
		for j < len(b.Ops) && !isObjectOp(b.Ops[j].Op) {
			j++
		}
		run := b.Ops[i:j]
		uerr := s.applyUpdate(func(tx *StoreTx) error {
			for _, op := range run {
				if err := op.Apply(tx); err != nil {
					*errs++
				} else {
					*applied++
				}
			}
			return nil
		})
		if uerr != nil {
			*errs++
		}
		i = j
	}
}

// applyObjectOp dispatches one object op onto the store's non-logging
// apply path: the recovery-replay counterpart of wire.Op.Apply.
func (s *Store) applyObjectOp(op wire.Op) error {
	switch op.Op {
	case wire.OpPutObject:
		return s.applyPutObject(op.Object, op.Beliefs)
	case wire.OpDeleteObject:
		s.applyDeleteObject(op.Object)
		return nil
	case wire.OpPutBelief:
		return s.applyPutBelief(op.User, op.Object, op.Value)
	case wire.OpDeleteBelief:
		s.applyDeleteBelief(op.User, op.Object)
		return nil
	case wire.OpRegisterRoots:
		_, err := s.sess.addObjectRoots(op.Users...)
		return err
	default:
		return fmt.Errorf("trustmap: unknown object op %q", op.Op)
	}
}

// beginMutation enters the durable writer critical section (a no-op
// unlock for in-memory stores). It fails once the store is poisoned — a
// WAL write failed after its apply, so memory and log diverged — or
// closed; no further mutation is accepted either way.
func (s *Store) beginMutation() (unlock func(), err error) {
	d := s.dur
	if d == nil {
		return func() {}, nil
	}
	d.mu.Lock()
	if d.failed != nil {
		err := d.failed
		d.mu.Unlock()
		return nil, err
	}
	return d.mu.Unlock, nil
}

// logMutation appends one effective mutation batch to the WAL under the
// next LSN and applies the mode's fsync discipline. Callers hold d.mu
// (beginMutation) and have already applied the ops. A failed append or
// fsync poisons the store: the in-memory state now leads the log, so
// accepting further writes would let a later crash fork history.
func (s *Store) logMutation(ops ...wire.Op) error {
	d := s.dur
	if d == nil {
		return nil
	}
	b := wire.OpBatch{
		Schema: wire.SchemaVersion,
		Epoch:  s.Epoch(),
		LSN:    d.log.LastLSN() + 1,
		Ops:    ops,
	}
	if err := d.log.Append(b); err != nil {
		d.failed = fmt.Errorf("%w: wal append failed: %w", ErrPoisoned, err)
		return d.failed
	}
	d.lastLSN.Store(b.LSN)
	return d.afterAppend()
}

// afterAppend applies the mode's fsync discipline to a just-appended
// batch: sync now (always), every groupEvery batches (batch), or never on
// the mutation path (off). Callers hold d.mu. Shared by the primary's
// logMutation and the replica's ApplyReplicated, so a replica's
// durability guarantees are exactly its mode's, same as a primary.
func (d *durable) afterAppend() error {
	switch d.mode {
	case DurabilityAlways:
		return d.syncLocked()
	case DurabilityBatch:
		d.pending++
		if d.pending >= groupEvery {
			return d.syncLocked()
		}
	}
	return nil
}

// syncLocked fsyncs the WAL and advances the durable watermark. Callers
// hold d.mu.
func (d *durable) syncLocked() error {
	if err := d.log.Sync(); err != nil {
		d.failed = fmt.Errorf("%w: wal fsync failed: %w", ErrPoisoned, err)
		return d.failed
	}
	d.durableLSN.Store(d.log.LastLSN())
	d.pending = 0
	return nil
}

// LSN returns the log sequence number of the last logged mutation batch
// (0 for an in-memory store). The batch may not be fsynced yet; see
// DurableLSN.
func (s *Store) LSN() uint64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.lastLSN.Load()
}

// DurableLSN returns the LSN of the last fsynced batch: every mutation
// at or below it survives a crash.
func (s *Store) DurableLSN() uint64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.durableLSN.Load()
}

// Sync fsyncs the WAL: when it returns nil, every previously logged
// mutation is crash-safe. A no-op (nil) on in-memory stores.
func (s *Store) Sync() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return d.failed
	}
	return d.syncLocked()
}

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo struct {
	Epoch    uint64 // store epoch folded into the snapshot
	LSN      uint64 // WAL watermark: every batch <= LSN is in the snapshot
	Snapshot string // snapshot file name inside <dir>/snapshots
}

// Checkpoint writes a compacted snapshot of the full store state — trust
// network, defaults, objects, extra roots — watermarked at the current
// WAL position, then rotates the log and prunes segments and snapshots
// the new snapshot supersedes. Recovery time is proportional to the WAL
// suffix above the newest snapshot, so periodic checkpoints bound it.
// Mutations block for the duration (they share the writer critical
// section); reads do not.
func (s *Store) Checkpoint() (CheckpointInfo, error) {
	d := s.dur
	if d == nil {
		return CheckpointInfo{}, ErrNotDurable
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return CheckpointInfo{}, d.failed
	}
	// The snapshot folds every logged batch, so they must be durable
	// first (in every mode): a snapshot must never get ahead of the log
	// it claims to compact.
	if err := d.syncLocked(); err != nil {
		return CheckpointInfo{}, err
	}
	lsn := d.log.LastLSN()
	f := s.exportLocked(lsn)
	name, err := snapshot.Write(d.snapDir(), f)
	if err != nil {
		// Memory and WAL still agree; the store stays healthy.
		return CheckpointInfo{}, fmt.Errorf("trustmap: writing snapshot: %w", err)
	}
	d.snapLSN.Store(lsn)
	d.checkpoints++
	if err := d.log.Rotate(); err != nil {
		d.failed = fmt.Errorf("%w: wal rotate failed: %w", ErrPoisoned, err)
		return CheckpointInfo{}, d.failed
	}
	if _, err := d.log.Prune(lsn); err != nil {
		return CheckpointInfo{}, fmt.Errorf("trustmap: pruning wal: %w", err)
	}
	if _, err := snapshot.Prune(d.snapDir(), snapshotsKept); err != nil {
		return CheckpointInfo{}, fmt.Errorf("trustmap: pruning snapshots: %w", err)
	}
	return CheckpointInfo{Epoch: f.Epoch, LSN: lsn, Snapshot: name}, nil
}

// exportLocked freezes the full store state into a snapshot file.
// Callers hold d.mu, so no mutator is in flight; readers are unaffected.
func (s *Store) exportLocked(lsn uint64) *snapshot.File {
	inner := s.net.inner
	f := &snapshot.File{
		Schema:  wire.SchemaVersion,
		Epoch:   s.Epoch(),
		LSN:     lsn,
		Beliefs: make(map[string]string),
		Objects: make(map[string]map[string]string),
	}
	for t := 0; t < inner.NumUsers(); t++ {
		for _, m := range inner.In(t) {
			f.Trust = append(f.Trust, snapshot.TrustEdge{
				Truster:  inner.Name(t),
				Trusted:  inner.Name(m.Parent),
				Priority: m.Priority,
			})
		}
		if inner.HasExplicit(t) {
			f.Beliefs[inner.Name(t)] = string(inner.Explicit(t))
		}
	}
	f.ExtraRoots = s.sess.extraRootNames()
	s.mu.RLock()
	for k, bs := range s.objects {
		m := make(map[string]string, len(bs))
		for u, v := range bs {
			m[u] = v
		}
		f.Objects[k] = m
	}
	s.mu.RUnlock()
	return f
}

// Close flushes and closes the WAL (regardless of durability mode) and
// marks the store closed: every later mutation, Sync, or Checkpoint
// returns ErrClosed. Reads keep working against the last published
// epoch. A no-op (nil) on in-memory stores; safe to call twice.
func (s *Store) Close() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if errors.Is(d.failed, ErrClosed) {
		return nil
	}
	err := d.log.Close()
	if err == nil {
		d.durableLSN.Store(d.lastLSN.Load())
	}
	d.failed = ErrClosed
	return err
}

// Durability returns the store's persistence counters. An in-memory
// store reports Mode "memory" and zeros.
func (s *Store) Durability() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{Mode: "memory"}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ls := d.log.Stats()
	return DurabilityStats{
		Mode:             d.mode.String(),
		LastLSN:          d.lastLSN.Load(),
		DurableLSN:       d.durableLSN.Load(),
		SnapshotLSN:      d.snapLSN.Load(),
		WALAppends:       ls.Appends,
		WALSyncs:         ls.Syncs,
		WALBytes:         ls.Bytes,
		Checkpoints:      d.checkpoints,
		RecoveredBatches: d.recoveredBatches,
		ReplayedOps:      d.replayedOps,
		ReplayErrors:     d.replayErrors,
		DiscardedBytes:   ls.DiscardedBytes,
	}
}
