package trustmap

// Benchmarks regenerating the paper's evaluation (Section 5 and
// Appendix B.5), one benchmark family per figure. cmd/experiments prints
// the same series as tables with log-log slopes; these benchmarks provide
// the `go test -bench` view with allocation counts.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustmap/client"
	"trustmap/internal/admission"
	"trustmap/internal/bench"
	"trustmap/internal/bulk"
	"trustmap/internal/engine"
	"trustmap/internal/lp"
	"trustmap/internal/resolve"
	"trustmap/internal/skeptic"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// BenchmarkFig5_LPSolver measures the logic-programming baseline (the DLV
// substitute) on chains of k oscillators: exponential in k, the cliff of
// Figure 5.
func BenchmarkFig5_LPSolver(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		n := workload.OscillatorClusters(k)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			prog, _ := lp.TranslateBinary(n, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lp.StableModels(prog, lp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8a_RA measures Algorithm 1 on the many-cycles data set:
// quasi-linear in the network size (Figure 8a, RA curve).
func BenchmarkFig8a_RA(b *testing.B) {
	for _, k := range []int{10, 100, 1000, 10000} {
		n := workload.OscillatorClusters(k)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resolve.Resolve(n)
			}
		})
	}
}

// BenchmarkFig8a_LP is the baseline curve of Figure 8a (small sizes only:
// it is exponential).
func BenchmarkFig8a_LP(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		n := workload.OscillatorClusters(k)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			prog, _ := lp.TranslateBinary(n, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lp.StableModels(prog, lp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8b_RA measures Algorithm 1 on scale-free networks (the
// web-crawl substitute of Figure 8b).
func BenchmarkFig8b_RA(b *testing.B) {
	for _, users := range []int{100, 1000, 10000} {
		n := workload.PowerLaw(rand.New(rand.NewSource(42)), users, 3, 0.1, []tn.Value{"v", "w", "u"})
		bin := tn.Binarize(n)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resolve.Resolve(bin)
			}
		})
	}
}

// BenchmarkFig8b_LP is the logic-programming baseline on the scale-free
// data set (few cycles on average, still expensive).
func BenchmarkFig8b_LP(b *testing.B) {
	for _, users := range []int{10, 15} {
		n := workload.PowerLaw(rand.New(rand.NewSource(42)), users, 3, 0.1, []tn.Value{"v", "w", "u"})
		bin := tn.Binarize(n)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			prog, _ := lp.TranslateBinary(bin, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lp.StableModels(prog, lp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8c_BulkSQL measures bulk resolution over the Figure 19
// network with a growing number of objects: linear in the object count and
// independent of the number of conflicts.
func BenchmarkFig8c_BulkSQL(b *testing.B) {
	net, roots := workload.Fig19()
	bin := tn.Binarize(net)
	for _, count := range []int{100, 1000, 10000} {
		objs := workload.BulkObjects(rand.New(rand.NewSource(7)), roots, count)
		b.Run(fmt.Sprintf("objects=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				plan, err := bulk.NewPlan(bin)
				if err != nil {
					b.Fatal(err)
				}
				store := bulk.NewStore(plan)
				if err := store.LoadObjects(objs); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := store.Resolve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8c_LPPerObject is the Figure 8c baseline: solving one logic
// program per object; with ~half the objects conflicting this grows much
// faster than the bulk path.
func BenchmarkFig8c_LPPerObject(b *testing.B) {
	net, roots := workload.Fig19()
	bin := tn.Binarize(net)
	for _, count := range []int{1, 2, 4} {
		objs := workload.BulkObjects(rand.New(rand.NewSource(7)), roots, count)
		b.Run(fmt.Sprintf("objects=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, bs := range objs {
					per := bin.Clone()
					for x, v := range bs {
						per.SetExplicit(x, v)
					}
					prog, _ := lp.TranslateBinary(per, nil)
					if _, err := lp.StableModels(prog, lp.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkBulkResolve contrasts the bulk execution strategies: the legacy
// sequential SQL path of Section 4 against the compiled concurrent engine
// at several worker counts on a 1000-object power-law workload (1000
// users), and signature deduplication against the per-object scan on the
// clustered 10k-object power-law workload (10000 users, objects drawn from
// 64 signature prototypes) plus the all-distinct adversarial workload.
// Compilation (plan construction) is excluded from the timed region for
// every strategy: the point of the engine is that the per-network analysis
// is paid once and the per-object scan parallelizes.
func BenchmarkBulkResolve(b *testing.B) {
	bin, objs := bench.BulkWorkload(1000, 1000, 42)
	b.Run("sequential-sql", func(b *testing.B) {
		plan, err := bulk.NewPlan(bin)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			store := bulk.NewStore(plan)
			if err := store.LoadObjects(objs); err != nil {
				b.Fatal(err)
			}
			if err := store.Resolve(); err != nil {
				b.Fatal(err)
			}
		}
	})
	c, err := engine.Compile(bin)
	if err != nil {
		b.Fatal(err)
	}
	// Deduplicated worker counts: repeated counts would get `#01`-suffixed,
	// GOMAXPROCS-dependent sub names, silently changing what bench-gate can
	// match across machines.
	seenWorkers := map[int]bool{}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if seenWorkers[workers] {
			continue
		}
		seenWorkers[workers] = true
		b.Run(fmt.Sprintf("engine/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Signature dedup on the clustered 10k-object workload. The compiled
	// artifact persists across iterations, as in a session: the dedup
	// run's later iterations are served from the cross-batch signature
	// cache, the no-dedup run pays per object every time.
	binC, objsC := bench.ClusteredBulkWorkload(10000, 10000, 64, 42)
	cc, err := engine.Compile(binC)
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name    string
		disable bool
	}{{"clustered10k/dedup", false}, {"clustered10k/nodedup", true}} {
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cc.Resolve(context.Background(), objsC, engine.Options{Workers: 1, DisableDedup: sub.disable}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The adversarial counterpart: every object a distinct signature, so
	// dedup degenerates to the per-object scan plus grouping overhead up
	// to the bail-out window. Both subs recompile per iteration (timer
	// stopped) so every measured resolve is cold — no cross-batch
	// signature cache, no warm scratch arenas — the worst case for dedup.
	binD, objsD := bench.AllDistinctBulkWorkload(1000, 1000, 42)
	for _, sub := range []struct {
		name    string
		disable bool
	}{{"alldistinct/dedup", false}, {"alldistinct/nodedup", true}} {
		b.Run(sub.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cd, err := engine.Compile(binD)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := cd.Resolve(context.Background(), objsD, engine.Options{Workers: 1, DisableDedup: sub.disable}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrementalUpdate measures the mutate-then-re-plan workload on
// the 10k-user power-law network: a full recompile per mutation (what
// bulkResolveWith effectively pays) against the engine's delta path
// (engine.CompiledNetwork.Apply) for a small dirty region. The acceptance
// bar for the delta path is a >= 10x speedup.
func BenchmarkIncrementalUpdate(b *testing.B) {
	base, _ := bench.BulkWorkload(10000, 1, 42)
	parent, child, prio := bench.LeafEdge(base)
	b.Run("recompile", func(b *testing.B) {
		n := base.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				n.RemoveMapping(parent, child)
			} else {
				n.AddMapping(parent, child, prio)
			}
			if _, err := engine.Compile(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("apply", func(b *testing.B) {
		n := base.Clone()
		n.EnableJournal()
		c, err := engine.Compile(n)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				n.RemoveMapping(parent, child)
			} else {
				n.AddMapping(parent, child, prio)
			}
			c, _, err = c.Apply(n.DrainJournal(), engine.ApplyOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResolveAllocs measures the steady-state allocation profile of
// the columnar engine scan with dedup off: 1000 objects per op, so
// allocs/op close to the object count would mean per-object allocation.
// (Dedup on, the batch additionally pays a few bookkeeping allocations per
// distinct signature — measured by the BenchmarkBulkResolve dedup subs.)
// The hard zero-allocation gate is TestResolveObjectZeroAllocs in
// internal/engine.
func BenchmarkResolveAllocs(b *testing.B) {
	bin, objs := bench.BulkWorkload(1000, 1000, 42)
	c, err := engine.Compile(bin)
	if err != nil {
		b.Fatal(err)
	}
	opts := engine.Options{Workers: 1, DisableDedup: true}
	if _, err := c.Resolve(context.Background(), objs, opts); err != nil {
		b.Fatal(err) // warm the dictionary and arenas
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Resolve(context.Background(), objs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionMutateResolve measures the facade-level steady loop a
// live community database runs: one trust revocation or re-grant, then one
// object resolution, served from the session's incrementally maintained
// artifact.
func BenchmarkSessionMutateResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := New()
	for i := 0; i < 2000; i++ {
		user := fmt.Sprintf("u%d", i)
		if i > 0 {
			n.AddTrust(user, fmt.Sprintf("u%d", rng.Intn(i)), 1+rng.Intn(100))
		}
		if i == 0 || rng.Float64() < 0.1 {
			n.SetBelief(user, []string{"v", "w"}[rng.Intn(2)])
		}
	}
	n.AddTrust("probe", "u0", 50) // leaf reader: revoking it dirties little
	s, err := n.newSession(sessionOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Resolve(context.Background(), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if ok, err := s.RemoveTrust("probe", "u0"); err != nil || !ok {
				b.Fatalf("probe edge missing: ok=%v err=%v", ok, err)
			}
		} else if err := s.AddTrust("probe", "u0", 50); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Resolve(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreResolve measures the Store v2 read path over 1000 stored
// objects on a 2000-user scale-free community (1 worker), one sub per
// maintenance scenario:
//
//   - coldbatch: a default-belief value change invalidates every cached
//     object (value-only epoch, plan kept), so ResolveAll re-resolves the
//     full batch through the engine's signature-deduplicated scan;
//   - touchone: one per-object belief put dirties exactly one object, so
//     ResolveAll re-resolves it alone and serves the other 999 from the
//     per-object result cache — the incremental-maintenance win;
//   - stream: the Resolved iterator over a fully clean cache, the
//     steady-state streaming read.
func BenchmarkStoreResolve(b *testing.B) {
	const numObjects = 1000
	ctx := context.Background()
	build := func(b *testing.B) *Store {
		b.Helper()
		rng := rand.New(rand.NewSource(23))
		n := New()
		for i := 0; i < 2000; i++ {
			user := fmt.Sprintf("u%d", i)
			if i > 0 {
				n.AddTrust(user, fmt.Sprintf("u%d", rng.Intn(i)), 1+rng.Intn(100))
			}
			if i == 0 || rng.Float64() < 0.1 {
				n.SetBelief(user, []string{"v", "w"}[rng.Intn(2)])
			}
		}
		st, err := n.NewStore(WithWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < numObjects; i++ {
			if err := st.PutObject(ctx, fmt.Sprintf("obj%04d", i),
				map[string]string{"u0": []string{"v", "w", "x"}[i%3]}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := st.ResolveAll(ctx); err != nil { // warm cache + dedup
			b.Fatal(err)
		}
		return st
	}

	b.Run("coldbatch", func(b *testing.B) {
		st := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.SetDefault(ctx, "u0", []string{"v", "w"}[i%2]); err != nil {
				b.Fatal(err)
			}
			if _, err := st.ResolveAll(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("touchone", func(b *testing.B) {
		st := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.PutBelief(ctx, "u0", fmt.Sprintf("obj%04d", i%numObjects),
				[]string{"v", "w"}[i%2]); err != nil {
				b.Fatal(err)
			}
			if _, err := st.ResolveAll(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		st := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows := 0
			for _, err := range st.Resolved(ctx) {
				if err != nil {
					b.Fatal(err)
				}
				rows++
			}
			if rows != numObjects {
				b.Fatalf("streamed %d rows, want %d", rows, numObjects)
			}
		}
	})
}

// BenchmarkServeMixed measures mixed read/write serving throughput on a
// shared session: 4 serving goroutines drain one deterministic script
// (one write batch of trust toggles per 16 ops, reads drawn from 32
// prototype belief assignments) over a 2000-user tiered community
// network. Two serving disciplines are compared on the identical engine
// and maintenance path:
//
//   - snapshot: the session's native epoch serving — reads pin the
//     current published epoch lock-free, the writer publishes the next
//     epoch off to the side;
//   - rwmutex: a naive global sync.RWMutex on top — reads hold RLock for
//     the duration of a resolve, write batches hold the write lock while
//     the mutation folds and publishes, blocking every reader.
//
// On the 1-CPU CI box this compares algorithmic serving paths (blocking
// discipline and lock traffic), not parallel speedups; ns/op is the mean
// cost per mixed op. On one core a blocked reader loses latency, not
// throughput, so the two disciplines measure at parity within the box's
// run-to-run noise — the assertion this benchmark grounds is that epoch
// publication is never slower than the lock beyond noise, while removing
// reader blocking (which the race-mode session tests assert directly).
func BenchmarkServeMixed(b *testing.B) {
	const (
		users      = 2000
		goroutines = 4
	)
	domain := []string{"v", "w", "u"}
	build := func() (*Network, []string, []workload.TrustToggle) {
		rng := rand.New(rand.NewSource(17))
		n := New()
		var roots []string
		for i := 0; i < users; i++ {
			user := fmt.Sprintf("u%d", i)
			seen := map[int]bool{}
			for e := 0; e < 2 && i > 0; e++ {
				z := rng.Intn(i)
				if seen[z] {
					continue
				}
				seen[z] = true
				// Coarse priority tiers: frequent ties, support-rich shape.
				n.AddTrust(user, fmt.Sprintf("u%d", z), 1+rng.Intn(3))
			}
			if i == 0 || rng.Float64() < 0.1 {
				n.SetBelief(user, domain[rng.Intn(len(domain))])
				roots = append(roots, user)
			}
		}
		// Leaf probe edges for the write batches: toggling them keeps the
		// dirty region small, the steady mutate shape of a live service.
		var edges []workload.TrustToggle
		for i := 0; i < 16; i++ {
			tg := workload.TrustToggle{Truster: fmt.Sprintf("probe%d", i), Trusted: fmt.Sprintf("u%d", i), Priority: 50}
			n.AddTrust(tg.Truster, tg.Trusted, tg.Priority)
			edges = append(edges, tg)
		}
		return n, roots, edges
	}

	run := func(b *testing.B, rwBaseline bool) {
		n, roots, edges := build()
		script := workload.MixedServe(rand.New(rand.NewSource(23)), roots, domain, edges, 4096, 16, 4, 32)
		s, err := n.newSession(sessionOptions{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Resolve(context.Background(), nil); err != nil {
			b.Fatal(err) // warm the dictionary and arenas
		}
		var lock sync.RWMutex
		var next atomic.Int64
		var wg sync.WaitGroup
		b.ResetTimer()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= b.N {
						return
					}
					op := script[i%len(script)]
					if op.Beliefs != nil {
						if rwBaseline {
							lock.RLock()
						}
						_, err := s.Resolve(context.Background(), op.Beliefs)
						if rwBaseline {
							lock.RUnlock()
						}
						if err != nil {
							b.Error(err)
							return
						}
						continue
					}
					if rwBaseline {
						lock.Lock()
					}
					err := s.Update(func(tx *sessionTx) error {
						for _, tg := range op.Toggles {
							if ok, _ := tx.RemoveTrust(tg.Truster, tg.Trusted); !ok {
								if err := tx.AddTrust(tg.Truster, tg.Trusted, tg.Priority); err != nil {
									return err
								}
							}
						}
						return nil
					})
					if rwBaseline {
						lock.Unlock()
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.Run("snapshot", func(b *testing.B) { run(b, false) })
	b.Run("rwmutex", func(b *testing.B) { run(b, true) })
}

// BenchmarkEngineCompile measures the one-time per-network compilation the
// engine amortizes over all objects (plan construction only; supports are
// derived lazily and measured by BenchmarkCompile).
func BenchmarkEngineCompile(b *testing.B) {
	for _, users := range []int{1000, 10000} {
		bin, _ := bench.BulkWorkload(users, 1, 42)
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Compile(bin); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures the full cost of readying an artifact for
// resolution: plan construction plus root-support derivation, the part
// buildSupports distributes across independent condensation components.
func BenchmarkCompile(b *testing.B) {
	for _, users := range []int{1000, 10000, 50000} {
		bin, _ := bench.BulkWorkload(users, 1, 42)
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := engine.Compile(bin)
				if err != nil {
					b.Fatal(err)
				}
				if st := c.Stats(); st.DistinctSupports == 0 { // forces support derivation
					b.Fatal("no supports derived")
				}
			}
		})
	}
}

// BenchmarkFig15_QuadraticWorstCase measures Algorithm 1 on the nested-SCC
// family (Figure 14a): the quadratic worst case of Theorem 2.12.
func BenchmarkFig15_QuadraticWorstCase(b *testing.B) {
	for _, k := range []int{50, 100, 200, 400} {
		n := workload.NestedSCC(k)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resolve.Resolve(n)
			}
		})
	}
}

// BenchmarkBinarize measures the Proposition 2.8 transformation on
// non-binary power-law networks (an ablation: binarization is a
// preprocessing cost of every other benchmark on non-binary input).
func BenchmarkBinarize(b *testing.B) {
	for _, users := range []int{1000, 10000} {
		n := workload.PowerLaw(rand.New(rand.NewSource(9)), users, 5, 0.1, []tn.Value{"v", "w"})
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tn.Binarize(n)
			}
		})
	}
}

// BenchmarkSkepticResolution measures Algorithm 2 on oscillator chains
// with constraints sprinkled in: the constraint-aware analogue of
// Figure 8a.
func BenchmarkSkepticResolution(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		n := workload.OscillatorClusters(k)
		c := skeptic.FromTN(n)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				skeptic.ResolveSkeptic(c)
			}
		})
	}
}

// BenchmarkPossiblePairs measures the O(n^4) pairwise extension
// (Proposition 2.13) — usable on analysis-sized networks only.
func BenchmarkPossiblePairs(b *testing.B) {
	for _, k := range []int{2, 8, 16} {
		n := workload.OscillatorClusters(k)
		b.Run(fmt.Sprintf("size=%d", n.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				resolve.ResolvePairs(n)
			}
		})
	}
}

// BenchmarkFacadeResolve measures the end-to-end public API on a mid-size
// community network, including binarization.
func BenchmarkFacadeResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := New()
	for i := 0; i < 2000; i++ {
		user := fmt.Sprintf("u%d", i)
		seen := map[int]bool{}
		for e := 0; e < 2 && i > 0; e++ {
			z := rng.Intn(i)
			if seen[z] {
				continue
			}
			seen[z] = true
			n.AddTrust(user, fmt.Sprintf("u%d", z), 1+rng.Intn(100))
		}
		if rng.Float64() < 0.1 {
			n.SetBelief(user, []string{"v", "w"}[rng.Intn(2)])
		}
	}
	n.SetBelief("u0", "v")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Resolve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLPDecomposition contrasts the monolithic stable-model
// enumeration with component-decomposed brave answering on oscillator
// chains (DESIGN.md §5.7): the first is exponential in k, the second
// linear.
func BenchmarkAblationLPDecomposition(b *testing.B) {
	for _, k := range []int{4, 8} {
		n := workload.OscillatorClusters(k)
		prog, _ := lp.TranslateBinary(n, nil)
		b.Run(fmt.Sprintf("monolithic/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lp.Brave(prog, lp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("decomposed/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lp.BraveDecomposed(prog, lp.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBulkSkeptic measures the reusable-plan bulk Skeptic resolver
// (the Section 4 extension for Algorithm 2).
func BenchmarkBulkSkeptic(b *testing.B) {
	net, roots := workload.Fig19()
	bin := tn.Binarize(net)
	plan, err := bulk.NewSkepticPlan(bin, rootsOf(bin, roots), nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, count := range []int{10, 100} {
		objs := workload.BulkObjects(rand.New(rand.NewSource(5)), rootsOf(bin, roots), count)
		b.Run(fmt.Sprintf("objects=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.ResolveObjects(objs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// rootsOf maps original root IDs into the binarized network (roots keep
// their IDs when they have no parents, as in Figure 19).
func rootsOf(bin *tn.Network, roots []int) []int { return roots }

// BenchmarkWALAppend measures the durable mutation path — one effective
// trust upsert per iteration — under each fsync discipline. Wall-clock
// ns/op is fsync-bound and machine-noisy; the deterministic counters
// reported alongside (fsyncs/op, walB/op) are the trajectory numbers:
// "always" must show 1 fsync/op, "batch" 1/groupEvery, "off" 0.
func BenchmarkWALAppend(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []DurabilityMode{DurabilityOff, DurabilityBatch, DurabilityAlways} {
		b.Run(mode.String(), func(b *testing.B) {
			st, err := OpenStore(b.TempDir(), WithDurability(mode))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.SetTrust(ctx, "alice", "bob", 1+i%100); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ds := st.Durability()
			if ds.LastLSN != uint64(b.N) {
				b.Fatalf("LastLSN=%d after %d effective ops", ds.LastLSN, b.N)
			}
			b.ReportMetric(float64(ds.WALSyncs)/float64(b.N), "fsyncs/op")
			b.ReportMetric(float64(ds.WALBytes)/float64(b.N), "walB/op")
		})
	}
}

// BenchmarkRecovery measures OpenStore on a prepared data directory: a
// 1000-batch storm recovered either by replaying the whole WAL tail
// ("wal-tail") or from a compacted checkpoint with an empty tail
// ("snapshot"). batches/open and replayedops/open are the deterministic
// recovery-work counters; ns/op is the end-to-end open latency.
func BenchmarkRecovery(b *testing.B) {
	const storm = 1000
	seedDir := func(b *testing.B, checkpoint bool) string {
		b.Helper()
		ctx := context.Background()
		dir := b.TempDir()
		st, err := OpenStore(dir, WithDurability(DurabilityOff))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < storm; i++ {
			switch i % 3 {
			case 0:
				err = st.SetTrust(ctx, fmt.Sprintf("u%d", i%50), "root", 1+i%9)
			case 1:
				err = st.SetDefault(ctx, fmt.Sprintf("u%d", i%50), "v")
			default:
				err = st.PutBelief(ctx, "root", fmt.Sprintf("obj%d", i%100), "w")
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if _, err := st.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, tc := range []struct {
		name       string
		checkpoint bool
		batches    uint64 // WAL batches recovery must replay
	}{
		{"wal-tail", false, storm},
		{"snapshot", true, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := seedDir(b, tc.checkpoint)
			var replayedOps uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := OpenStore(dir)
				if err != nil {
					b.Fatal(err)
				}
				ds := st.Durability()
				if ds.RecoveredBatches != tc.batches || ds.ReplayErrors != 0 || ds.LastLSN != storm {
					b.Fatalf("recovery stats %+v, want %d batches at lsn %d", ds, tc.batches, storm)
				}
				replayedOps = ds.ReplayedOps
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tc.batches), "batches/open")
			b.ReportMetric(float64(replayedOps), "replayedops/open")
		})
	}
}

// BenchmarkAdmission measures the admission gate itself: the uncontended
// acquire/release cycle every admitted request pays, the shed path an
// overloaded server takes per rejected request, and the disabled (nil
// gate) case, which must stay branch-cheap because every ungated handler
// crosses it.
func BenchmarkAdmission(b *testing.B) {
	ctx := context.Background()
	b.Run("admit", func(b *testing.B) {
		g := admission.New(admission.Config{MaxConcurrent: 64})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			release, err := g.Acquire(ctx)
			if err != nil {
				b.Fatal(err)
			}
			release()
		}
		b.StopTimer()
		if st := g.Stats(); st.Admitted != uint64(b.N) || st.InFlight != 0 {
			b.Fatalf("gate stats %+v after %d admits", st, b.N)
		}
	})
	b.Run("shed", func(b *testing.B) {
		g := admission.New(admission.Config{MaxConcurrent: 1})
		release, err := g.Acquire(ctx)
		if err != nil {
			b.Fatal(err)
		}
		defer release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.Acquire(ctx); !errors.Is(err, admission.ErrShed) {
				b.Fatalf("err = %v, want shed", err)
			}
		}
		b.StopTimer()
		if st := g.Stats(); st.Shed != uint64(b.N) {
			b.Fatalf("gate stats %+v after %d sheds", st, b.N)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var g *admission.Gate // ungated class: nil gate admits everything
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			release, err := g.Acquire(ctx)
			if err != nil {
				b.Fatal(err)
			}
			release()
		}
	})
}

// BenchmarkClientRetry measures the typed client's retry loop against a
// scripted fault server: "recover" pays two round trips plus the backoff
// bookkeeping per op (the server 429s every other request), "armed" is
// the no-fault path with a policy installed — the per-request overhead of
// having retries on at all. Backoff delays are driven to ~zero so ns/op
// tracks the code path, not the sleep schedule.
func BenchmarkClientRetry(b *testing.B) {
	newSrv := func(everyOther bool) *httptest.Server {
		var calls atomic.Uint64
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if everyOther && calls.Add(1)%2 == 1 {
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"shed"}`)
				return
			}
			fmt.Fprint(w, `{"ok":true,"epoch":1}`)
		}))
	}
	policy := client.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond, Jitter: -1,
	}
	b.Run("recover", func(b *testing.B) {
		srv := newSrv(true)
		defer srv.Close()
		c := client.New(srv.URL, client.WithRetry(policy))
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Healthz(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("armed", func(b *testing.B) {
		srv := newSrv(false)
		defer srv.Close()
		c := client.New(srv.URL, client.WithRetry(policy))
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Healthz(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
