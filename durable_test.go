package trustmap

// Durable store tests: open/mutate/close/reopen round trips, checkpoint
// compaction, fsync-discipline counters, effective-op-only logging, poison
// and close semantics, and recovery parity after a torn WAL tail. All
// assertions are on deterministic counters and resolved beliefs — no wall
// clocks.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustOpenStore(t *testing.T, dir string, opts ...StoreOption) *Store {
	t.Helper()
	s, err := OpenStore(dir, opts...)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", dir, err)
	}
	return s
}

// seedDurable drives one of every mutator through the store:
// 4 trust edges + default + object + belief + one Update batch +
// one effective delete each of trust/belief. Returns the expected LSN.
func seedDurable(t *testing.T, s *Store) uint64 {
	t.Helper()
	ctx := context.Background()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.SetTrust(ctx, "alice", "bob", 10))
	must(s.SetTrust(ctx, "alice", "carol", 20))
	must(s.SetTrust(ctx, "dave", "alice", 5))
	must(s.SetTrust(ctx, "dave", "erin", 9))
	must(s.SetDefault(ctx, "erin", "jar"))
	must(s.PutObject(ctx, "glyph1", map[string]string{"bob": "fish", "carol": "cow"}))
	must(s.PutBelief(ctx, "carol", "glyph2", "arrow"))
	must(s.Update(func(tx *StoreTx) error {
		if err := tx.SetTrust("frank", "alice", 3); err != nil {
			return err
		}
		return tx.SetDefault("bob", "fish")
	}))
	if ok, err := s.RemoveTrust(ctx, "dave", "erin"); err != nil || !ok {
		t.Fatalf("RemoveTrust: ok=%v err=%v", ok, err)
	}
	if ok, err := s.DeleteBelief(ctx, "carol", "glyph2"); err != nil || !ok {
		t.Fatalf("DeleteBelief: ok=%v err=%v", ok, err)
	}
	// glyph2 is now empty: a resolvable store needs every object to cover
	// the roots (assumption ii), so drop it — one more effective op.
	if ok, err := s.DeleteObject(ctx, "glyph2"); err != nil || !ok {
		t.Fatalf("DeleteObject: ok=%v err=%v", ok, err)
	}
	return 11 // one LSN per effective mutator call above
}

// resolvedState flattens every stored object's resolution to a comparable
// map user/object -> possible values.
func resolvedState(t *testing.T, s *Store) map[string][]string {
	t.Helper()
	res, err := s.ResolveAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]string)
	for _, obj := range res.Keys() {
		for _, u := range s.Users() {
			out[u+"/"+obj] = res.Possible(u, obj)
		}
	}
	return out
}

func TestOpenStoreFreshReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir)
	wantLSN := seedDurable(t, s)
	if got := s.LSN(); got != wantLSN {
		t.Fatalf("LSN after seed = %d, want %d", got, wantLSN)
	}
	preEpoch := s.Epoch()
	preState := resolvedState(t, s)
	preUsers := s.Users()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpenStore(t, dir)
	defer r.Close()
	if got := r.LSN(); got != wantLSN {
		t.Errorf("recovered LSN = %d, want %d", got, wantLSN)
	}
	if got := r.DurableLSN(); got != wantLSN {
		t.Errorf("recovered DurableLSN = %d, want %d", got, wantLSN)
	}
	if got := r.Users(); !reflect.DeepEqual(got, preUsers) {
		t.Errorf("recovered users = %v, want %v", got, preUsers)
	}
	if got := resolvedState(t, r); !reflect.DeepEqual(got, preState) {
		t.Errorf("recovered resolved state diverges:\n got %v\nwant %v", got, preState)
	}
	// Post-restart epochs continue the pre-crash numbering: resolutions
	// cached against pre-restart epochs can never alias fresh ones.
	if got := r.Epoch(); got < preEpoch {
		t.Errorf("recovered epoch %d went backwards from %d", got, preEpoch)
	}
	ds := r.Durability()
	if ds.RecoveredBatches != wantLSN {
		t.Errorf("RecoveredBatches = %d, want %d", ds.RecoveredBatches, wantLSN)
	}
	if ds.ReplayErrors != 0 {
		t.Errorf("ReplayErrors = %d, want 0", ds.ReplayErrors)
	}
	if ds.ReplayedOps < wantLSN {
		t.Errorf("ReplayedOps = %d, want >= %d", ds.ReplayedOps, wantLSN)
	}
}

func TestCheckpointCompactsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir)
	seedDurable(t, s)

	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ck.LSN != s.LSN() {
		t.Errorf("checkpoint LSN = %d, want store LSN %d", ck.LSN, s.LSN())
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshots", ck.Snapshot)); err != nil {
		t.Errorf("snapshot file missing: %v", err)
	}
	ds := s.Durability()
	if ds.SnapshotLSN != ck.LSN || ds.Checkpoints != 1 {
		t.Errorf("stats after checkpoint: snapLSN=%d checkpoints=%d, want %d/1",
			ds.SnapshotLSN, ds.Checkpoints, ck.LSN)
	}

	// Two more logged mutations above the watermark...
	ctx := context.Background()
	if err := s.SetTrust(ctx, "grace", "alice", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDefault(ctx, "carol", "knot"); err != nil {
		t.Fatal(err)
	}
	want := resolvedState(t, s)
	wantLSN := s.LSN()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// ...so recovery replays exactly those two batches on top of the
	// snapshot.
	r := mustOpenStore(t, dir)
	defer r.Close()
	if got := r.LSN(); got != wantLSN {
		t.Errorf("recovered LSN = %d, want %d", got, wantLSN)
	}
	rs := r.Durability()
	if rs.RecoveredBatches != 2 {
		t.Errorf("RecoveredBatches = %d, want 2 (suffix above snapshot)", rs.RecoveredBatches)
	}
	if rs.SnapshotLSN != ck.LSN {
		t.Errorf("recovered SnapshotLSN = %d, want %d", rs.SnapshotLSN, ck.LSN)
	}
	if got := resolvedState(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered resolved state diverges:\n got %v\nwant %v", got, want)
	}
}

func TestCheckpointOnlyRecovery(t *testing.T) {
	// A store whose WAL was fully compacted away: recovery comes entirely
	// from the snapshot, and the empty log is positioned at its watermark.
	dir := t.TempDir()
	s := mustOpenStore(t, dir)
	wantLSN := seedDurable(t, s)
	want := resolvedState(t, s)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpenStore(t, dir)
	defer r.Close()
	ds := r.Durability()
	if ds.RecoveredBatches != 0 {
		t.Errorf("RecoveredBatches = %d, want 0 (snapshot covers everything)", ds.RecoveredBatches)
	}
	if got := r.LSN(); got != wantLSN {
		t.Errorf("recovered LSN = %d, want %d", got, wantLSN)
	}
	if got := resolvedState(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered resolved state diverges:\n got %v\nwant %v", got, want)
	}
	// The next mutation continues the numbering above the snapshot.
	if err := r.SetTrust(context.Background(), "zed", "alice", 1); err != nil {
		t.Fatal(err)
	}
	if got := r.LSN(); got != wantLSN+1 {
		t.Errorf("post-recovery LSN = %d, want %d", got, wantLSN+1)
	}
}

func TestDurabilityModeCounters(t *testing.T) {
	ctx := context.Background()

	t.Run("always", func(t *testing.T) {
		s := mustOpenStore(t, t.TempDir(), WithDurability(DurabilityAlways))
		defer s.Close()
		for i := 0; i < 5; i++ {
			if err := s.PutBelief(ctx, "u", "obj", string(rune('a'+i))); err != nil {
				t.Fatal(err)
			}
		}
		ds := s.Durability()
		if ds.Mode != "always" || ds.WALAppends != 5 || ds.WALSyncs != 5 {
			t.Errorf("always-mode stats = %+v, want 5 appends / 5 syncs", ds)
		}
		if ds.DurableLSN != ds.LastLSN {
			t.Errorf("always mode left LastLSN %d ahead of DurableLSN %d", ds.LastLSN, ds.DurableLSN)
		}
	})

	t.Run("batch", func(t *testing.T) {
		s := mustOpenStore(t, t.TempDir()) // default mode
		defer s.Close()
		n := 2*groupEvery + 2
		for i := 0; i < n; i++ {
			if err := s.SetTrust(ctx, "a", "b", i+1); err != nil {
				t.Fatal(err)
			}
		}
		ds := s.Durability()
		if ds.Mode != "batch" || ds.WALAppends != uint64(n) || ds.WALSyncs != 2 {
			t.Errorf("batch-mode stats = %+v, want %d appends / 2 group syncs", ds, n)
		}
		if ds.DurableLSN != 2*groupEvery {
			t.Errorf("batch DurableLSN = %d, want %d", ds.DurableLSN, 2*groupEvery)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if ds = s.Durability(); ds.WALSyncs != 3 || ds.DurableLSN != uint64(n) {
			t.Errorf("after Sync: %d syncs, durable %d; want 3, %d", ds.WALSyncs, ds.DurableLSN, n)
		}
	})

	t.Run("off", func(t *testing.T) {
		s := mustOpenStore(t, t.TempDir(), WithDurability(DurabilityOff))
		defer s.Close()
		for i := 0; i < 100; i++ {
			if err := s.SetTrust(ctx, "a", "b", i+1); err != nil {
				t.Fatal(err)
			}
		}
		ds := s.Durability()
		if ds.Mode != "off" || ds.WALSyncs != 0 {
			t.Errorf("off-mode stats = %+v, want 0 syncs", ds)
		}
		// Checkpoint still makes the log durable first: the snapshot must
		// never claim batches the log could lose.
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if ds = s.Durability(); ds.WALSyncs != 1 || ds.DurableLSN != 100 {
			t.Errorf("off-mode checkpoint: %d syncs, durable %d; want 1, 100", ds.WALSyncs, ds.DurableLSN)
		}
	})

	t.Run("memory", func(t *testing.T) {
		s, err := NewStore()
		if err != nil {
			t.Fatal(err)
		}
		if ds := s.Durability(); ds.Mode != "memory" || ds.LastLSN != 0 {
			t.Errorf("in-memory stats = %+v, want Mode memory and zeros", ds)
		}
		if _, err := s.Checkpoint(); !errors.Is(err, ErrNotDurable) {
			t.Errorf("in-memory Checkpoint err = %v, want ErrNotDurable", err)
		}
		if err := s.Sync(); err != nil {
			t.Errorf("in-memory Sync = %v, want nil", err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("in-memory Close = %v, want nil", err)
		}
	})
}

func TestNoOpMutationsConsumeNoLSN(t *testing.T) {
	ctx := context.Background()
	s := mustOpenStore(t, t.TempDir())
	defer s.Close()
	if err := s.SetTrust(ctx, "alice", "bob", 10); err != nil {
		t.Fatal(err)
	}
	base := s.LSN()

	if ok, err := s.RemoveTrust(ctx, "alice", "nobody"); err != nil || ok {
		t.Fatalf("RemoveTrust(absent): ok=%v err=%v", ok, err)
	}
	if err := s.DeleteDefault(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.DeleteBelief(ctx, "alice", "nothing"); err != nil || ok {
		t.Fatalf("DeleteBelief(absent): ok=%v err=%v", ok, err)
	}
	if ok, err := s.DeleteObject(ctx, "nothing"); err != nil || ok {
		t.Fatalf("DeleteObject(absent): ok=%v err=%v", ok, err)
	}
	if err := s.Update(func(tx *StoreTx) error {
		if ok, err := tx.RemoveTrust("alice", "nobody"); err != nil || ok {
			t.Errorf("tx.RemoveTrust(absent): ok=%v err=%v", ok, err)
		}
		return tx.DeleteDefault("alice")
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.LSN(); got != base {
		t.Errorf("no-op mutations moved LSN %d -> %d; the WAL must hold only effective history", base, got)
	}

	// An Update with one effective op among no-ops logs exactly one batch.
	if err := s.Update(func(tx *StoreTx) error {
		if _, err := tx.RemoveTrust("alice", "nobody"); err != nil {
			return err
		}
		return tx.SetDefault("alice", "fish")
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.LSN(); got != base+1 {
		t.Errorf("effective batch moved LSN %d -> %d, want %d", base, got, base+1)
	}
}

func TestUpdateBatchReplaysAsOneBatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir)
	err := s.Update(func(tx *StoreTx) error {
		for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}} {
			if err := tx.SetTrust(e[0], e[1], 10); err != nil {
				return err
			}
		}
		return tx.SetDefault("d", "cow")
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LSN(); got != 1 {
		t.Fatalf("batch LSN = %d, want 1", got)
	}
	want := resolvedStateUsers(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpenStore(t, dir)
	defer r.Close()
	ds := r.Durability()
	if ds.RecoveredBatches != 1 || ds.ReplayedOps != 4 || ds.ReplayErrors != 0 {
		t.Errorf("replay stats = %+v, want 1 batch / 4 ops / 0 errors", ds)
	}
	if got := resolvedStateUsers(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered users = %v, want %v", got, want)
	}
}

// resolvedStateUsers is the trust-only state fingerprint: user list plus
// each user's resolved possible values for a probe object.
func resolvedStateUsers(t *testing.T, s *Store) map[string][]string {
	t.Helper()
	res, err := s.Resolve(context.Background(), map[string]string{"d": "cow"})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]string)
	for _, u := range s.Users() {
		out[u] = res.Possible(u)
	}
	return out
}

func TestClosedStoreRejectsWritesServesReads(t *testing.T) {
	ctx := context.Background()
	s := mustOpenStore(t, t.TempDir())
	seedDurable(t, s)
	pre := resolvedState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	if err := s.SetTrust(ctx, "x", "y", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("SetTrust after Close = %v, want ErrClosed", err)
	}
	if err := s.PutObject(ctx, "o", map[string]string{"alice": "v"}); !errors.Is(err, ErrClosed) {
		t.Errorf("PutObject after Close = %v, want ErrClosed", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	if err := s.Update(func(tx *StoreTx) error { return tx.SetTrust("x", "y", 1) }); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close = %v, want ErrClosed", err)
	}
	// Reads keep serving the last published epoch.
	if got := resolvedState(t, s); !reflect.DeepEqual(got, pre) {
		t.Errorf("reads after Close diverge:\n got %v\nwant %v", got, pre)
	}
}

func TestRecoveryHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir)
	wantLSN := seedDurable(t, s)
	want := resolvedState(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage bytes after the last durable
	// record of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := mustOpenStore(t, dir)
	defer r.Close()
	if got := r.LSN(); got != wantLSN {
		t.Errorf("recovered LSN = %d, want %d", got, wantLSN)
	}
	ds := r.Durability()
	if ds.DiscardedBytes != 5 {
		t.Errorf("DiscardedBytes = %d, want 5", ds.DiscardedBytes)
	}
	if got := resolvedState(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("post-heal resolved state diverges:\n got %v\nwant %v", got, want)
	}
	// The healed log accepts new writes at the next LSN.
	if err := r.SetTrust(context.Background(), "post", "alice", 1); err != nil {
		t.Fatal(err)
	}
	if got := r.LSN(); got != wantLSN+1 {
		t.Errorf("post-heal LSN = %d, want %d", got, wantLSN+1)
	}
}

func TestExtraRootsSurviveCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir, WithExtraRoots("curatorX", "curatorY"))
	if err := s.SetTrust(context.Background(), "reader", "curatorX", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopened WITHOUT the option: the roots come back from the snapshot.
	r := mustOpenStore(t, dir)
	defer r.Close()
	got := r.sess.extraRootNames()
	want := map[string]bool{"curatorX": true, "curatorY": true}
	for _, name := range got {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Errorf("extra roots %v lost across checkpoint+reopen (recovered %v)", want, got)
	}
}

func TestEpochTagTracksLSN(t *testing.T) {
	ctx := context.Background()
	s := mustOpenStore(t, t.TempDir())
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.SetTrust(ctx, "a", "b", i+1); err != nil {
			t.Fatal(err)
		}
	}
	// The published epoch's tag is a lower bound on the logged LSN: it is
	// captured at publication, before the publishing op's own LSN lands.
	if tag := tagOf(s); tag > s.LSN() {
		t.Errorf("epoch tag %d exceeds logged LSN %d", tag, s.LSN())
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if tag := tagOf(s); tag < s.LSN()-1 {
		t.Errorf("epoch tag %d lags LSN %d by more than the in-flight op", tag, s.LSN())
	}
}

// tagOf reads the currently published epoch's LSN tag.
func tagOf(s *Store) uint64 {
	e := s.sess.pub.Acquire()
	defer e.Release()
	return e.Tag()
}
