package trustmap

// Replication: the store-level surface WAL shipping is built from. A
// primary serves its log with TailWAL (safe concurrently with writers —
// only the durable prefix is read) and its newest snapshot with
// SnapshotBlob; a replica seeds its data directory with InstallSnapshot
// before opening, then feeds shipped batches through ApplyReplicated —
// the same log-and-apply path recovery replay uses, under the same
// writer critical section and fsync discipline, so a replica is itself
// durable and restartable and can be promoted into a primary in place.
//
// ApplyReplicated preserves the primary's batch verbatim: the original
// LSN and epoch land in the replica's WAL, so the two logs are
// byte-identical histories and a replica's own replicas (or a
// post-promote salvage) see exactly the primary's numbering.

import (
	"errors"
	"fmt"
	"path/filepath"

	"trustmap/internal/snapshot"
	"trustmap/internal/wal"
	"trustmap/wire"
)

// ErrReplicationGap reports a shipped batch whose LSN is beyond the next
// one this store's log accepts: batches in between were lost in flight.
// The fix is to re-request the stream after the store's current LSN.
var ErrReplicationGap = errors.New("trustmap: replication gap")

// ErrSnapshotStale reports an InstallSnapshot whose blob is older than
// the local durable state — installing it would roll history back.
var ErrSnapshotStale = errors.New("trustmap: snapshot older than local state")

// ApplyResult describes one ApplyReplicated call.
type ApplyResult struct {
	// Applied is false for an already-logged duplicate (LSN at or below
	// the log's last) — expected on reconnect overlap, skipped unapplied.
	Applied bool
	// Ops / OpErrors count the batch's ops that applied / errored. Errors
	// mean divergence from the primary's history (the shipped batch held
	// only ops effective there) and are counted, not fatal — matching
	// recovery replay, which faces the same question with the same ops.
	Ops      int
	OpErrors int
}

// ApplyReplicated applies one batch shipped from a primary's WAL:
// duplicate batches are skipped, a gap is refused with
// ErrReplicationGap, and the next-expected batch is applied to memory
// and appended to the local log verbatim — original LSN and epoch —
// under the mode's fsync discipline. A local WAL failure poisons the
// store exactly as it would a primary's logMutation.
func (s *Store) ApplyReplicated(b wire.OpBatch) (ApplyResult, error) {
	d := s.dur
	if d == nil {
		return ApplyResult{}, ErrNotDurable
	}
	if len(b.Ops) == 0 {
		return ApplyResult{}, nil // heartbeat or empty batch: nothing to do
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed != nil {
		return ApplyResult{}, d.failed
	}
	next := d.log.LastLSN() + 1
	if b.LSN < next {
		return ApplyResult{}, nil
	}
	if b.LSN > next {
		return ApplyResult{}, fmt.Errorf("%w: got lsn %d, want %d", ErrReplicationGap, b.LSN, next)
	}
	var applied, errs uint64
	s.replayBatch(b, &applied, &errs)
	res := ApplyResult{Applied: true, Ops: int(applied), OpErrors: int(errs)}
	if err := d.log.Append(b); err != nil {
		d.failed = fmt.Errorf("%w: wal append failed: %w", ErrPoisoned, err)
		return res, d.failed
	}
	d.lastLSN.Store(b.LSN)
	return res, d.afterAppend()
}

// TailWAL streams every logged batch with after < LSN <= DurableLSN(),
// in order, to fn, and returns that durable watermark. The log files are
// read directly, concurrently with writers: the watermark is sampled
// first, so every streamed record was fsynced before the read began and
// a torn in-flight tail is never shipped. fn's error aborts the stream.
func (s *Store) TailWAL(after uint64, fn func(wire.OpBatch) error) (uint64, error) {
	d := s.dur
	if d == nil {
		return 0, ErrNotDurable
	}
	upto := d.durableLSN.Load()
	if upto <= after {
		return upto, nil
	}
	return upto, wal.Tail(d.walDir(), after, upto, fn)
}

// OldestWALLSN reports the first LSN still present in the store's WAL;
// ok is false when the log holds no segments (fresh store, or fully
// pruned behind a snapshot). A tail request for records before it cannot
// be served — the requester must bootstrap from a snapshot instead.
func (s *Store) OldestWALLSN() (uint64, bool) {
	d := s.dur
	if d == nil {
		return 0, false
	}
	first, ok, err := wal.Oldest(d.walDir())
	if err != nil {
		return 0, false
	}
	return first, ok
}

// SnapshotBlob returns the newest compacted snapshot's raw bytes and
// watermark LSN, for shipping to a bootstrapping replica. ok is false
// when no checkpoint has run yet.
func (s *Store) SnapshotBlob() (raw []byte, lsn uint64, ok bool, err error) {
	d := s.dur
	if d == nil {
		return nil, 0, false, ErrNotDurable
	}
	raw, lsn, err = snapshot.LatestRaw(d.snapDir())
	if err != nil || raw == nil {
		return nil, 0, false, err
	}
	return raw, lsn, true, nil
}

// InstallSnapshot seeds a data directory with a snapshot blob fetched
// from a primary, before OpenStore: the blob is validated and written
// under its canonical name, and any local WAL segments — all at or below
// the blob's watermark, or the call refuses — are cleared so recovery
// starts cleanly from the installed state. Returns the installed
// watermark. A blob at or below the local durable state returns
// ErrSnapshotStale and changes nothing (the local state already covers
// it); a fresh directory accepts any blob.
func InstallSnapshot(dir string, blob []byte) (uint64, error) {
	f, err := snapshot.Decode(blob)
	if err != nil {
		return 0, fmt.Errorf("trustmap: installing snapshot: %w", err)
	}
	walDir := filepath.Join(dir, "wal")
	snapDir := filepath.Join(dir, "snapshots")

	// Local position: the newest local snapshot and the healed WAL end.
	var local uint64
	if lf, _, err := snapshot.Latest(snapDir); err != nil {
		return 0, fmt.Errorf("trustmap: reading local snapshots: %w", err)
	} else if lf != nil {
		local = lf.LSN
	}
	log, err := wal.Open(walDir)
	if err != nil {
		return 0, fmt.Errorf("trustmap: opening local wal: %w", err)
	}
	if log.LastLSN() > local {
		local = log.LastLSN()
	}
	if cerr := log.Close(); cerr != nil {
		return 0, cerr
	}
	if local >= f.LSN && local > 0 {
		return 0, fmt.Errorf("%w: local lsn %d, snapshot lsn %d", ErrSnapshotStale, local, f.LSN)
	}
	// Every local WAL record is at or below the incoming watermark — a
	// strict prefix of the snapshot's history — so clearing loses nothing.
	if err := wal.Clear(walDir); err != nil {
		return 0, fmt.Errorf("trustmap: clearing superseded wal: %w", err)
	}
	if _, err := snapshot.Install(snapDir, blob); err != nil {
		return 0, err
	}
	return f.LSN, nil
}
