// Quickstart: the Indus-script example of Figure 1 and Figure 2. Three
// archeologists disagree on glyph origins; Alice's trust mappings (Bob at
// priority 100, Charlie at 50) determine her consistent snapshot.
package main

import (
	"fmt"

	"trustmap"
)

func main() {
	glyphs := []struct {
		name    string
		beliefs map[string]string
	}{
		{"glyph1 (ship hull/cow/jar)", map[string]string{
			"Alice": "ship hull", "Bob": "cow", "Charlie": "jar"}},
		{"glyph2 (fish/knot)", map[string]string{
			"Bob": "fish", "Charlie": "knot"}},
		{"glyph3 (arrow)", map[string]string{
			"Bob": "arrow", "Charlie": "arrow"}},
	}

	fmt.Println("Alice's view after applying her trust mappings (Figure 1b):")
	for _, g := range glyphs {
		n := trustmap.New()
		n.AddTrust("Alice", "Bob", 100)
		n.AddTrust("Alice", "Charlie", 50)
		n.AddTrust("Bob", "Alice", 80)
		for user, v := range g.beliefs {
			n.SetBelief(user, v)
		}
		r, err := n.Resolve()
		if err != nil {
			panic(err)
		}
		v, _ := r.Certain("Alice")
		fmt.Printf("  %-28s -> %s\n", g.name, v)
		if path, ok := r.Lineage("Alice", v); ok {
			fmt.Printf("  %-28s    (lineage: %v)\n", "", path)
		}
	}
}
