// Audit demo: constraints as data validation (Section 3's motivation — "the
// value of the carbon-date attribute is between 1,200 and 40,000"). A lab
// imports measurements from two field teams; a reviewer applies a range
// constraint modelled as negative beliefs over the observed domain. Many
// samples are audited in bulk under the Skeptic paradigm with a reusable
// plan.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"trustmap/internal/bulk"
	"trustmap/internal/tn"
)

func main() {
	// Trust structure: the lab prefers the reviewer (who only filters) and
	// falls back to team A; the reviewer prefers team A over team B.
	n := tn.New()
	teamA := n.AddUser("teamA")
	teamB := n.AddUser("teamB")
	reviewer := n.AddUser("reviewer")
	lab := n.AddUser("lab")
	n.AddMapping(teamA, reviewer, 2)
	n.AddMapping(teamB, reviewer, 1)
	n.AddMapping(reviewer, lab, 2)
	n.AddMapping(teamA, lab, 1)

	// Generate carbon-date readings; some are out of the plausible range.
	rng := rand.New(rand.NewSource(4))
	objects := map[string]map[int]tn.Value{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("sample%03d", i)
		a := 1200 + rng.Intn(40000)
		b := a
		if rng.Float64() < 0.3 { // teams occasionally disagree
			b = 300 + rng.Intn(45000)
		}
		objects[k] = map[int]tn.Value{
			teamA: tn.Value(strconv.Itoa(a)),
			teamB: tn.Value(strconv.Itoa(b)),
		}
	}
	// The reviewer's range constraint, compiled to negative beliefs over
	// the values that actually occur (the paper's finite representation of
	// a range predicate).
	rejected := map[string]bool{}
	for _, bs := range objects {
		for _, v := range bs {
			year, _ := strconv.Atoi(string(v))
			if year < 1200 || year > 40000 {
				rejected[string(v)] = true
			}
		}
	}
	var rejectedList []string
	for v := range rejected {
		rejectedList = append(rejectedList, v)
	}
	sort.Strings(rejectedList)

	plan, err := bulk.NewSkepticPlan(n, []int{teamA, teamB}, map[int][]string{
		reviewer: rejectedList,
	})
	if err != nil {
		panic(err)
	}
	res, err := plan.ResolveObjects(objects)
	if err != nil {
		panic(err)
	}

	accepted, contested, blocked := 0, 0, 0
	for k := range objects {
		switch {
		case res.CertainPositive(lab, k) != "":
			accepted++
		case res.HasBottom(lab, k) && len(res.PossiblePositives(lab, k)) == 0:
			blocked++
		default:
			contested++
		}
	}
	fmt.Printf("audited %d samples with %d distinct out-of-range readings\n",
		len(objects), len(rejectedList))
	fmt.Printf("lab's snapshot: %d accepted, %d contested, %d fully rejected\n",
		accepted, contested, blocked)
	for k := range objects {
		if res.HasBottom(lab, k) && len(res.PossiblePositives(lab, k)) == 0 {
			fmt.Printf("\nexample rejection: %s teamA=%s teamB=%s -> lab rejects every value (⊥)\n",
				k, objects[k][teamA], objects[k][teamB])
			fmt.Println("(under Skeptic, an accepted value carries the maximal constraint;")
			fmt.Println(" when the reviewer blocks it, nothing downstream can be believed)")
			break
		}
	}
}
