// Bulk resolution demo (Section 4): a scientific community curates many
// objects (glyphs) under one set of trust mappings. All objects are
// resolved together by translating the resolution plan into SQL over a
// POSS(X,K,V) relation — one pass over the network, set-at-a-time over the
// objects.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"trustmap"
)

func main() {
	n := trustmap.New()
	// A small curation team: two senior curators (the explicit-belief
	// users), a moderator cycle, and readers.
	n.AddTrust("moderatorA", "curator1", 10)
	n.AddTrust("moderatorA", "moderatorB", 20)
	n.AddTrust("moderatorB", "curator2", 10)
	n.AddTrust("moderatorB", "moderatorA", 20)
	n.AddTrust("reader", "moderatorA", 5)

	rng := rand.New(rand.NewSource(1))
	motifs := []string{"fish", "jar", "arrow", "cow", "knot"}
	objects := make(map[string]map[string]string)
	conflicts := 0
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("glyph%04d", i)
		v1 := motifs[rng.Intn(len(motifs))]
		v2 := v1
		if rng.Float64() < 0.5 {
			v2 = motifs[rng.Intn(len(motifs))]
		}
		if v1 != v2 {
			conflicts++
		}
		objects[k] = map[string]string{"curator1": v1, "curator2": v2}
	}

	start := time.Now()
	r, err := n.BulkResolve(objects)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	keys := r.Keys() // sorted object keys: deterministic iteration
	certain, open := 0, 0
	for _, k := range keys {
		if _, ok := r.Certain("reader", k); ok {
			certain++
		} else {
			open++
		}
	}
	fmt.Printf("resolved %d objects (%d with conflicting curators) in %v\n",
		len(objects), conflicts, elapsed.Round(time.Millisecond))
	fmt.Printf("reader's snapshot: %d certain values, %d still contested\n", certain, open)

	// Drill into one contested object (sorted scan: same pick every run).
	for _, k := range keys {
		bs := objects[k]
		if bs["curator1"] != bs["curator2"] {
			fmt.Printf("\nexample: %s  curator1=%s curator2=%s\n", k, bs["curator1"], bs["curator2"])
			fmt.Printf("  moderatorA sees %v, moderatorB sees %v (mutual-trust cycle => both views possible)\n",
				r.Possible("moderatorA", k), r.Possible("moderatorB", k))
			fmt.Printf("  reader sees %v\n", r.Possible("reader", k))
			break
		}
	}
}
