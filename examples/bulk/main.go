// Bulk resolution demo (Section 4) on the Store v2 API: a scientific
// community curates many objects (glyphs) under one set of trust
// mappings. The store owns both the network and the per-object beliefs;
// objects are resolved together on the compiled concurrent engine, read
// back in one batch or as a stream, and a belief correction re-resolves
// only the corrected object.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"trustmap"
)

func main() {
	ctx := context.Background()
	st, err := trustmap.NewStore()
	if err != nil {
		panic(err)
	}
	// A small curation team: two senior curators (the explicit-belief
	// users), a moderator cycle, and readers.
	for _, tm := range []struct {
		truster, trusted string
		prio             int
	}{
		{"moderatorA", "curator1", 10},
		{"moderatorA", "moderatorB", 20},
		{"moderatorB", "curator2", 10},
		{"moderatorB", "moderatorA", 20},
		{"reader", "moderatorA", 5},
	} {
		if err := st.SetTrust(ctx, tm.truster, tm.trusted, tm.prio); err != nil {
			panic(err)
		}
	}

	rng := rand.New(rand.NewSource(1))
	motifs := []string{"fish", "jar", "arrow", "cow", "knot"}
	conflicts := 0
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("glyph%04d", i)
		v1 := motifs[rng.Intn(len(motifs))]
		v2 := v1
		if rng.Float64() < 0.5 {
			v2 = motifs[rng.Intn(len(motifs))]
		}
		if v1 != v2 {
			conflicts++
		}
		if err := st.PutObject(ctx, k, map[string]string{"curator1": v1, "curator2": v2}); err != nil {
			panic(err)
		}
	}

	// Batch read: every stored object at one epoch.
	start := time.Now()
	r, err := st.ResolveAll(ctx)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	certain, open := 0, 0
	for _, k := range r.Keys() {
		if _, ok := r.Certain("reader", k); ok {
			certain++
		} else {
			open++
		}
	}
	fmt.Printf("resolved %d objects (%d with conflicting curators) in %v (epoch %d)\n",
		st.NumObjects(), conflicts, elapsed.Round(time.Millisecond), r.Epoch())
	fmt.Printf("reader's snapshot: %d certain values, %d still contested\n", certain, open)

	// Streaming read: the same rows, consumed one by one without
	// materializing the batch — the shape that scales to millions of
	// objects. Drill into the first contested object.
	for row, err := range st.Resolved(ctx) {
		if err != nil {
			panic(err)
		}
		bs, _ := st.Object(row.Object)
		if bs["curator1"] == bs["curator2"] {
			continue
		}
		fmt.Printf("\nexample: %s  curator1=%s curator2=%s\n", row.Object, bs["curator1"], bs["curator2"])
		fmt.Printf("  moderatorA sees %v, moderatorB sees %v (mutual-trust cycle => both views possible)\n",
			row.Possible("moderatorA"), row.Possible("moderatorB"))
		fmt.Printf("  reader sees %v\n", row.Possible("reader"))

		// A correction lands for exactly this glyph: only it re-resolves.
		if err := st.PutBelief(ctx, "curator2", row.Object, bs["curator1"]); err != nil {
			panic(err)
		}
		poss, cert, err := st.Get(ctx, "reader", row.Object)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  after curator2's correction: reader sees %v (certain %q)\n", poss, cert)
		break
	}
	sst := st.Stats()
	fmt.Printf("\nstore: %d objects, %d cache hits / %d misses, epoch %d\n",
		sst.Objects, sst.CacheHits, sst.CacheMisses, sst.Epoch)
}
