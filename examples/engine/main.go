// Compiled concurrent bulk resolution walkthrough: one trust network,
// many objects, resolved by the engine of internal/engine.
//
// The demo mirrors the paper's community-database setting (Section 4): the
// network's per-object analysis — SCC condensation, resolution plan, and
// per-node root supports — is compiled exactly once, then thousands of
// objects are scanned by a worker pool. On a 1000-user power-law network
// it contrasts the compiled engine on a single worker against GOMAXPROCS
// workers and checks the outputs are byte-identical; a small facade
// example then checks the engine against the legacy sequential SQL path
// (INSERT ... SELECT over POSS(X,K,V)).
//
// The second half is the live lifecycle: mutate and re-resolve. Trust
// revocations are folded into the compiled artifact through the mutation
// journal and the engine's delta path (Apply), recompiling only the dirty
// region — and at the facade level, trustmap.Session drives the same
// compile -> resolve -> mutate -> incremental re-plan loop.
//
//lint:file-ignore SA1019 this walkthrough deliberately exercises the deprecated v1 bulk paths (BulkResolveWith, NewSession) to show their parity with the engine; new code should use trustmap.Store.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"trustmap"
	"trustmap/internal/engine"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

func main() {
	// A scale-free curation community: ~1000 sites, 10% of them with
	// first-hand knowledge (explicit beliefs).
	net := workload.PowerLaw(rand.New(rand.NewSource(42)), 1000, 3, 0.1,
		[]tn.Value{"fish", "jar", "arrow", "cow"})
	bin := tn.Binarize(net)

	// Compile once: everything object-independent is precomputed here.
	start := time.Now()
	c, err := engine.Compile(bin)
	if err != nil {
		panic(err)
	}
	st := c.Stats()
	fmt.Printf("compiled network in %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("  %d users, %d mappings, %d roots, %d reachable\n",
		st.Users, st.Mappings, st.Roots, st.Reachable)
	fmt.Printf("  %d SCCs (%d nontrivial), plan: %d copies + %d floods\n",
		st.SCCs, st.NontrivialSCCs, st.CopySteps, st.FloodSteps)
	fmt.Printf("  %d distinct root supports for %d nodes\n", st.DistinctSupports, st.Users)

	// Per-object root beliefs: half the objects conflicting.
	objs := workload.BulkObjects(rand.New(rand.NewSource(7)), c.Roots(), 2000)

	seqStart := time.Now()
	seq, err := c.Resolve(context.Background(), objs, engine.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	seqTime := time.Since(seqStart)

	workers := runtime.GOMAXPROCS(0)
	parStart := time.Now()
	par, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers})
	if err != nil {
		panic(err)
	}
	parTime := time.Since(parStart)

	// The outputs are byte-identical regardless of the worker count.
	certain := 0
	for _, k := range seq.Keys() {
		for x := 0; x < bin.NumUsers(); x++ {
			a, b := seq.Possible(x, k), par.Possible(x, k)
			if len(a) != len(b) {
				panic("worker counts disagree")
			}
			for i := range a {
				if a[i] != b[i] {
					panic("worker counts disagree")
				}
			}
		}
		if seq.Certain(0, k) != tn.NoValue {
			certain++
		}
	}
	fmt.Printf("\nresolved %d objects: %v on 1 worker, %v on %d workers\n",
		len(objs), seqTime.Round(time.Millisecond), parTime.Round(time.Millisecond), workers)
	fmt.Printf("site0 holds a certain value for %d/%d objects\n", certain, len(objs))

	// Mutate and re-resolve: a live community database revokes and grants
	// trust constantly. Instead of recompiling the whole network per
	// mutation, the engine folds the journaled change into the artifact,
	// recompiling only the dirty region downstream of the touched edge.
	recompileStart := time.Now()
	if _, err := engine.Compile(bin); err != nil {
		panic(err)
	}
	recompileTime := time.Since(recompileStart)

	bin.EnableJournal()
	g := bin.Graph()
	leaf, leafParent := -1, -1
	for x := 0; x < bin.NumUsers() && leaf < 0; x++ {
		if len(g.Out(x)) == 0 && len(bin.In(x)) > 0 {
			leaf, leafParent = x, bin.In(x)[0].Parent
		}
	}
	bin.RemoveMapping(leafParent, leaf) // revoke one leaf trust mapping
	applyStart := time.Now()
	c2, ast, err := c.Apply(bin.DrainJournal(), engine.ApplyOptions{})
	if err != nil {
		panic(err)
	}
	applyTime := time.Since(applyStart)
	fmt.Printf("\nrevoked %s -> %s: dirty region %d node(s), %d step(s) recomputed, %d reused\n",
		bin.Name(leafParent), bin.Name(leaf), ast.DirtyNodes, ast.NewSteps, ast.ReusedSteps)
	fmt.Printf("incremental apply took %v vs %v for a full recompile (%.0fx)\n",
		applyTime.Round(time.Microsecond), recompileTime.Round(time.Microsecond),
		float64(recompileTime)/float64(applyTime))
	if _, err := c2.Resolve(context.Background(), objs, engine.Options{Workers: workers}); err != nil {
		panic(err)
	}
	fmt.Printf("re-resolved %d objects against the spliced artifact\n", len(objs))

	// The public facade runs the same engine; UseSQL selects the legacy
	// relational path for comparison.
	n := trustmap.New()
	n.AddTrust("moderatorA", "curator1", 10)
	n.AddTrust("moderatorA", "moderatorB", 20)
	n.AddTrust("moderatorB", "curator2", 10)
	n.AddTrust("moderatorB", "moderatorA", 20)
	n.AddTrust("reader", "moderatorA", 5)
	objects := map[string]map[string]string{
		"glyph1": {"curator1": "fish", "curator2": "jar"},
		"glyph2": {"curator1": "cow", "curator2": "cow"},
	}
	eng, err := n.BulkResolveWith(context.Background(), objects,
		trustmap.BulkOptions{Workers: workers})
	if err != nil {
		panic(err)
	}
	sql, err := n.BulkResolveWith(context.Background(), objects,
		trustmap.BulkOptions{UseSQL: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfacade parity (engine vs SQL):\n")
	for _, obj := range []string{"glyph1", "glyph2"} {
		e, s := eng.Possible("reader", obj), sql.Possible("reader", obj)
		fmt.Printf("  reader/%s: engine=%v sql=%v\n", obj, e, s)
		if fmt.Sprint(e) != fmt.Sprint(s) {
			panic("facade paths disagree")
		}
	}

	// The same lifecycle through the facade: a Session keeps the compiled
	// artifact live across mutations (MaxDirtyFraction 1 keeps this tiny
	// demo network on the incremental path).
	sess, err := n.NewSession(trustmap.SessionOptions{
		Workers:          workers,
		ExtraRoots:       []string{"curator1", "curator2"},
		MaxDirtyFraction: 1,
	})
	if err != nil {
		panic(err)
	}
	before, err := sess.Resolve(context.Background(),
		map[string]string{"curator1": "fish", "curator2": "jar"})
	if err != nil {
		panic(err)
	}
	// moderatorA drops its preferred source; the reader now follows the
	// surviving mapping (Section 2.2 promotion), re-planned incrementally.
	if ok, err := sess.RemoveTrust("moderatorA", "moderatorB"); err != nil || !ok {
		panic(fmt.Sprintf("trust revocation failed: ok=%v err=%v", ok, err))
	}
	after, err := sess.Resolve(context.Background(),
		map[string]string{"curator1": "fish", "curator2": "jar"})
	if err != nil {
		panic(err)
	}
	sst := sess.Stats()
	fmt.Printf("\nsession lifecycle (compile once, mutate, re-plan incrementally):\n")
	fmt.Printf("  reader before revocation: %v, after: %v\n",
		before.Possible("reader"), after.Possible("reader"))
	fmt.Printf("  %d compile(s), %d incremental applies\n", sst.Compiles, sst.IncrementalApplies)
}
