// Compiled concurrent bulk resolution walkthrough: one trust network,
// many objects, resolved by the engine of internal/engine.
//
// The demo mirrors the paper's community-database setting (Section 4): the
// network's per-object analysis — SCC condensation, resolution plan, and
// per-node root supports — is compiled exactly once, then thousands of
// objects are scanned by a worker pool. On a 1000-user power-law network
// it contrasts the compiled engine on a single worker against GOMAXPROCS
// workers and checks the outputs are byte-identical; a small facade
// example then drives the same engine through trustmap.Store.
//
// The second half is the live lifecycle: mutate and re-resolve. Trust
// revocations are folded into the compiled artifact through the mutation
// journal and the engine's delta path (Apply), recompiling only the dirty
// region — and at the facade level, trustmap.Store drives the same
// compile -> resolve -> mutate -> incremental re-plan loop, with
// trustmap.OpenStore adding WAL + snapshot persistence on top.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"trustmap"
	"trustmap/internal/engine"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

func main() {
	// A scale-free curation community: ~1000 sites, 10% of them with
	// first-hand knowledge (explicit beliefs).
	net := workload.PowerLaw(rand.New(rand.NewSource(42)), 1000, 3, 0.1,
		[]tn.Value{"fish", "jar", "arrow", "cow"})
	bin := tn.Binarize(net)

	// Compile once: everything object-independent is precomputed here.
	start := time.Now()
	c, err := engine.Compile(bin)
	if err != nil {
		panic(err)
	}
	st := c.Stats()
	fmt.Printf("compiled network in %v\n", time.Since(start).Round(time.Microsecond))
	fmt.Printf("  %d users, %d mappings, %d roots, %d reachable\n",
		st.Users, st.Mappings, st.Roots, st.Reachable)
	fmt.Printf("  %d SCCs (%d nontrivial), plan: %d copies + %d floods\n",
		st.SCCs, st.NontrivialSCCs, st.CopySteps, st.FloodSteps)
	fmt.Printf("  %d distinct root supports for %d nodes\n", st.DistinctSupports, st.Users)

	// Per-object root beliefs: half the objects conflicting.
	objs := workload.BulkObjects(rand.New(rand.NewSource(7)), c.Roots(), 2000)

	seqStart := time.Now()
	seq, err := c.Resolve(context.Background(), objs, engine.Options{Workers: 1})
	if err != nil {
		panic(err)
	}
	seqTime := time.Since(seqStart)

	workers := runtime.GOMAXPROCS(0)
	parStart := time.Now()
	par, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers})
	if err != nil {
		panic(err)
	}
	parTime := time.Since(parStart)

	// The outputs are byte-identical regardless of the worker count.
	certain := 0
	for _, k := range seq.Keys() {
		for x := 0; x < bin.NumUsers(); x++ {
			a, b := seq.Possible(x, k), par.Possible(x, k)
			if len(a) != len(b) {
				panic("worker counts disagree")
			}
			for i := range a {
				if a[i] != b[i] {
					panic("worker counts disagree")
				}
			}
		}
		if seq.Certain(0, k) != tn.NoValue {
			certain++
		}
	}
	fmt.Printf("\nresolved %d objects: %v on 1 worker, %v on %d workers\n",
		len(objs), seqTime.Round(time.Millisecond), parTime.Round(time.Millisecond), workers)
	fmt.Printf("site0 holds a certain value for %d/%d objects\n", certain, len(objs))

	// Mutate and re-resolve: a live community database revokes and grants
	// trust constantly. Instead of recompiling the whole network per
	// mutation, the engine folds the journaled change into the artifact,
	// recompiling only the dirty region downstream of the touched edge.
	recompileStart := time.Now()
	if _, err := engine.Compile(bin); err != nil {
		panic(err)
	}
	recompileTime := time.Since(recompileStart)

	bin.EnableJournal()
	g := bin.Graph()
	leaf, leafParent := -1, -1
	for x := 0; x < bin.NumUsers() && leaf < 0; x++ {
		if len(g.Out(x)) == 0 && len(bin.In(x)) > 0 {
			leaf, leafParent = x, bin.In(x)[0].Parent
		}
	}
	bin.RemoveMapping(leafParent, leaf) // revoke one leaf trust mapping
	applyStart := time.Now()
	c2, ast, err := c.Apply(bin.DrainJournal(), engine.ApplyOptions{})
	if err != nil {
		panic(err)
	}
	applyTime := time.Since(applyStart)
	fmt.Printf("\nrevoked %s -> %s: dirty region %d node(s), %d step(s) recomputed, %d reused\n",
		bin.Name(leafParent), bin.Name(leaf), ast.DirtyNodes, ast.NewSteps, ast.ReusedSteps)
	fmt.Printf("incremental apply took %v vs %v for a full recompile (%.0fx)\n",
		applyTime.Round(time.Microsecond), recompileTime.Round(time.Microsecond),
		float64(recompileTime)/float64(applyTime))
	if _, err := c2.Resolve(context.Background(), objs, engine.Options{Workers: workers}); err != nil {
		panic(err)
	}
	fmt.Printf("re-resolved %d objects against the spliced artifact\n", len(objs))

	// The public facade runs the same engine behind Store: build the trust
	// network, adopt it, put objects in, and resolve them all against one
	// live compiled artifact (MaxDirtyFraction 1 keeps this tiny demo
	// network on the incremental path across mutations).
	ctx := context.Background()
	n := trustmap.New()
	n.AddTrust("moderatorA", "curator1", 10)
	n.AddTrust("moderatorA", "moderatorB", 20)
	n.AddTrust("moderatorB", "curator2", 10)
	n.AddTrust("moderatorB", "moderatorA", 20)
	n.AddTrust("reader", "moderatorA", 5)
	store, err := n.NewStore(trustmap.WithWorkers(workers),
		trustmap.WithMaxDirtyFraction(1))
	if err != nil {
		panic(err)
	}
	if err := store.PutObject(ctx, "glyph1",
		map[string]string{"curator1": "fish", "curator2": "jar"}); err != nil {
		panic(err)
	}
	if err := store.PutObject(ctx, "glyph2",
		map[string]string{"curator1": "cow", "curator2": "cow"}); err != nil {
		panic(err)
	}
	res, err := store.ResolveAll(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nstore facade (epoch %d):\n", res.Epoch())
	for _, obj := range res.Keys() {
		poss := res.Possible("reader", obj)
		if cert, ok := res.Certain("reader", obj); ok {
			fmt.Printf("  reader/%s: possible=%v certain=%s\n", obj, poss, cert)
		} else {
			fmt.Printf("  reader/%s: possible=%v (conflicting)\n", obj, poss)
		}
	}

	// Mutate and re-resolve through the store: moderatorA drops its
	// preferred source, the reader now follows the surviving mapping
	// (Section 2.2 promotion), and the artifact is re-planned
	// incrementally rather than recompiled.
	if ok, err := store.RemoveTrust(ctx, "moderatorA", "moderatorB"); err != nil || !ok {
		panic(fmt.Sprintf("trust revocation failed: ok=%v err=%v", ok, err))
	}
	row, err := store.ResolveObject(ctx, "glyph1")
	if err != nil {
		panic(err)
	}
	sst := store.Stats()
	fmt.Printf("\nstore lifecycle (compile once, mutate, re-plan incrementally):\n")
	fmt.Printf("  reader/glyph1 after revocation: %v\n", row.Possible("reader"))
	fmt.Printf("  %d compile(s), %d incremental applies, %d object(s)\n",
		sst.Compiles, sst.IncrementalApplies, sst.Objects)

	// The durable variant: OpenStore journals every mutation to a WAL and
	// checkpoints compacted snapshots, so the same state comes back after
	// a restart (or a crash — the WAL tail is replayed on open).
	dir, err := os.MkdirTemp("", "trustmap-engine-demo-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	dst, err := trustmap.OpenStore(dir, trustmap.WithMaxDirtyFraction(1))
	if err != nil {
		panic(err)
	}
	if err := dst.SetTrust(ctx, "reader", "curator1", 5); err != nil {
		panic(err)
	}
	if err := dst.PutObject(ctx, "glyph1", map[string]string{"curator1": "fish"}); err != nil {
		panic(err)
	}
	ck, err := dst.Checkpoint()
	if err != nil {
		panic(err)
	}
	if err := dst.Close(); err != nil {
		panic(err)
	}
	reopened, err := trustmap.OpenStore(dir)
	if err != nil {
		panic(err)
	}
	defer reopened.Close()
	row, err = reopened.ResolveObject(ctx, "glyph1")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndurable store: checkpoint at LSN %d, reopened reader/glyph1=%v\n",
		ck.LSN, row.Possible("reader"))
}
