// Order-invariance demo: replays the update sequences of Example 1.2 on a
// FIFO update-exchange baseline (the Orchestra stand-in) and contrasts its
// anomalies with the stable-solution semantics, which gives the same
// consistent snapshot regardless of update order and handles updates and
// revocations.
package main

import (
	"fmt"

	"trustmap"
	"trustmap/internal/orchestra"
	"trustmap/internal/resolve"
	"trustmap/internal/tn"
)

func network() *tn.Network {
	n := tn.New()
	alice := n.AddUser("Alice")
	bob := n.AddUser("Bob")
	charlie := n.AddUser("Charlie")
	n.AddMapping(bob, alice, 100)
	n.AddMapping(charlie, alice, 50)
	n.AddMapping(alice, bob, 80)
	return n
}

func main() {
	n := network()
	alice := n.UserID("Alice")
	bob := n.UserID("Bob")
	charlie := n.UserID("Charlie")

	fmt.Println("Example 1.2, first sequence: Charlie inserts jar, then Bob inserts cow")
	s := orchestra.New(n)
	s.Insert(charlie, "glyph", "jar")
	s.Insert(bob, "glyph", "cow")
	fmt.Printf("  FIFO baseline:    Alice=%s   (stuck: jar arrived first)\n", s.Belief(alice, "glyph"))
	r := resolve.Resolve(tn.Binarize(s.AsNetwork("glyph")))
	fmt.Printf("  stable solutions: Alice=%s   (trusts Bob most; order irrelevant)\n\n", r.Certain(alice))

	fmt.Println("Example 1.2, second sequence: Charlie inserts jar, then updates to cow")
	s = orchestra.New(n)
	s.Insert(charlie, "glyph", "jar")
	s.Update(charlie, "glyph", "cow")
	fmt.Printf("  FIFO baseline:    Alice=%s Bob=%s  (stale: they hold each other's jar)\n",
		s.Belief(alice, "glyph"), s.Belief(bob, "glyph"))
	r = resolve.Resolve(tn.Binarize(s.AsNetwork("glyph")))
	fmt.Printf("  stable solutions: Alice=%s Bob=%s\n\n", r.Certain(alice), r.Certain(bob))

	fmt.Println("Revocation: Charlie withdraws his belief entirely")
	nn := trustmap.New()
	nn.AddTrust("Alice", "Bob", 100)
	nn.AddTrust("Alice", "Charlie", 50)
	nn.AddTrust("Bob", "Alice", 80)
	nn.SetBelief("Charlie", "jar")
	rr, _ := nn.Resolve()
	v, _ := rr.Certain("Alice")
	fmt.Printf("  before: Alice=%s\n", v)
	nn.RemoveBelief("Charlie")
	rr, _ = nn.Resolve()
	fmt.Printf("  after:  Alice has %d possible values (no lineage remains)\n", len(rr.Possible("Alice")))
}
