// Community demo: conflict resolution on a scale-free trust network, the
// shape of real collaborative communities (and of the paper's web-crawl
// experiment in Figure 8b). Resolves a 20,000-user network, reports how
// beliefs spread, and runs agreement analysis on a small neighbourhood.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"trustmap"
	"trustmap/internal/resolve"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	n := workload.PowerLaw(rng, 20000, 3, 0.05, []tn.Value{"fish", "jar", "knot"})
	fmt.Printf("community: %d users, %d trust mappings (scale-free)\n",
		n.NumUsers(), n.NumMappings())

	b := tn.Binarize(n)
	start := time.Now()
	r := resolve.Resolve(b)
	fmt.Printf("resolved in %v\n", time.Since(start).Round(time.Millisecond))

	certain, contested, empty := 0, 0, 0
	for x := 0; x < n.NumUsers(); x++ {
		switch len(r.Possible(x)) {
		case 0:
			empty++
		case 1:
			certain++
		default:
			contested++
		}
	}
	fmt.Printf("snapshot: %d users certain, %d contested, %d without information\n",
		certain, contested, empty)

	// Agreement analysis on a small community via the public API.
	small := trustmap.New()
	small.AddTrust("ann", "joe", 10)
	small.AddTrust("joe", "ann", 10)
	small.AddTrust("ann", "sue", 5)
	small.AddTrust("joe", "tom", 5)
	small.SetBelief("sue", "fish")
	small.SetBelief("tom", "jar")
	c, err := small.AnalyzeConflicts()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsmall clique: ann/joe trust each other above their sources\n")
	fmt.Printf("  poss(ann,joe) = %v\n", c.PossiblePairs("ann", "joe"))
	fmt.Printf("  agree(ann,joe) = %v  (they move together in every stable solution)\n",
		c.Agree("ann", "joe"))
	fmt.Printf("  agree(sue,tom) = %v\n", c.Agree("sue", "tom"))
}
