// Constraints demo: the network of Figure 6a resolved under the three
// paradigms of Section 3 — Agnostic, Eclectic, and Skeptic — showing how
// negative beliefs (constraints) interact with trusted data values, plus
// the quadratic Skeptic Resolution Algorithm on the same network.
package main

import (
	"fmt"

	"trustmap"
)

func build() *trustmap.Network {
	n := trustmap.New()
	// Explicit beliefs and constraints of Figure 6a.
	n.SetBelief("x2", "a")
	n.SetConstraint("x1", "b")
	n.SetConstraint("x4", "a")
	n.SetBelief("x6", "b")
	n.SetBelief("x8", "c")
	// Chain with preferred (higher priority) parents on the left.
	n.AddTrust("x3", "x2", 2)
	n.AddTrust("x3", "x1", 1)
	n.AddTrust("x5", "x4", 2)
	n.AddTrust("x5", "x3", 1)
	n.AddTrust("x7", "x5", 2)
	n.AddTrust("x7", "x6", 1)
	n.AddTrust("x9", "x7", 2)
	n.AddTrust("x9", "x8", 1)
	return n
}

func main() {
	n := build()
	users := []string{"x3", "x5", "x7", "x9"}

	fmt.Println("Figure 6: the three constraint paradigms (possible positive values)")
	for _, p := range []trustmap.Paradigm{trustmap.Agnostic, trustmap.Eclectic, trustmap.Skeptic} {
		poss, err := n.ExactParadigm(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-9s:", p)
		for _, u := range users {
			fmt.Printf("  %s=%v", u, poss[u])
		}
		fmt.Println()
	}

	fmt.Println("\nSkeptic Resolution Algorithm (Algorithm 2, polynomial time):")
	s, err := n.ResolveSkeptic()
	if err != nil {
		panic(err)
	}
	for _, u := range users {
		cert, ok := s.Certain(u)
		switch {
		case ok:
			fmt.Printf("  %s: certainly %s\n", u, cert)
		case s.RejectsEverything(u):
			fmt.Printf("  %s: rejects every value (⊥) — a blocked positive poisons downstream\n", u)
		default:
			fmt.Printf("  %s: possible %v\n", u, s.Possible(u))
		}
	}
	fmt.Println("\nNote how x9 differs between Eclectic (accepts c) and Skeptic (⊥):")
	fmt.Println("under Skeptic, accepting a value once means rejecting all others forever.")
}
