package trustmap

// Concurrency integration tests for epoch-served sessions. Before the
// epoch layer, session was documented single-goroutine: Apply spliced the
// CSR tables in place underneath readers, so BulkResolve racing AddTrust
// could observe torn state. These tests are the regression bound for that
// caveat — they run under `make race` in CI and must stay race-clean.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSessionConcurrentReadWriteEpochConsistency hammers a session with
// resolver goroutines while a writer keeps re-wiring which root a chain
// of users follows. Every batch atomically moves the chain from one root
// to the other, so any self-consistent epoch gives the two chained
// readers the SAME certain value; a torn read (one user resolved against
// the old wiring, the next against the new) would split them. Epoch
// sequence numbers must also never go backwards within one goroutine.
func TestSessionConcurrentReadWriteEpochConsistency(t *testing.T) {
	n := New()
	n.SetBelief("rootOne", "one")
	n.SetBelief("rootTwo", "two")
	n.AddTrust("relay", "rootOne", 10)
	n.AddTrust("chainB", "relay", 10)
	n.AddTrust("chainC", "chainB", 10)
	s, err := n.newSession(sessionOptions{Workers: 1, MaxDirtyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 4
		readsEach = 250
	)
	var readersDone atomic.Bool
	var batches atomic.Int64
	var readersWG, writerWG sync.WaitGroup

	// The writer keeps toggling the chain's root — one atomic batch, one
	// epoch each — until every reader has finished, so reads and
	// publications genuinely overlap for the whole test.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; !readersDone.Load(); i++ {
			from, to := "rootOne", "rootTwo"
			if i%2 == 1 {
				from, to = to, from
			}
			err := s.Update(func(tx *sessionTx) error {
				if ok, _ := tx.RemoveTrust("relay", from); !ok {
					return fmt.Errorf("batch %d: edge relay->%s missing", i, from)
				}
				return tx.AddTrust("relay", to, 10)
			})
			if err != nil {
				t.Error(err)
				return
			}
			batches.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(id int) {
			defer readersWG.Done()
			var lastEpoch uint64
			for i := 0; i < readsEach; i++ {
				res, err := s.Resolve(context.Background(), nil)
				if err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				e := res.Epoch()
				if e < lastEpoch {
					t.Errorf("reader %d: epoch went backwards: %d after %d", id, e, lastEpoch)
					return
				}
				lastEpoch = e
				b, okB := res.Certain("chainB")
				c, okC := res.Certain("chainC")
				if !okB || !okC || b != c || (b != "one" && b != "two") {
					t.Errorf("reader %d: torn epoch: chainB=%q,%v chainC=%q,%v", id, b, okB, c, okC)
					return
				}
			}
		}(r)
	}
	readersWG.Wait()
	readersDone.Store(true)
	writerWG.Wait()

	if batches.Load() == 0 {
		t.Fatal("no write batches completed")
	}
	// Quiescent now: every retired epoch's readers have drained, so all
	// generations but the live one must have been reclaimed.
	st := s.Stats()
	if st.Epoch < uint64(batches.Load()) {
		t.Fatalf("epoch %d after %d batches", st.Epoch, batches.Load())
	}
	if st.EpochsReclaimed != st.Epoch-1 {
		t.Fatalf("reclaimed %d epochs of %d retired", st.EpochsReclaimed, st.Epoch-1)
	}
	t.Logf("%d reads across %d epochs, %d reclaimed", readers*readsEach, st.Epoch, st.EpochsReclaimed)
}

// TestSessionConcurrentMutateResolveRegression is the former caveat as a
// regression test: BulkResolve racing AddTrust/RemoveTrust — including
// mutations that grow the user set, which re-snapshot the name index —
// must stay race-clean and serve well-formed results. Stats and
// EngineStats readers ride along, as a monitoring endpoint would.
func TestSessionConcurrentMutateResolveRegression(t *testing.T) {
	n := New()
	n.SetBelief("hub", "v")
	n.AddTrust("spoke", "hub", 5)
	s, err := n.newSession(sessionOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	objects := map[string]map[string]string{
		"obj1": {"hub": "x"},
		"obj2": {"hub": "y"},
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for !done.Load() {
				res, err := s.BulkResolve(context.Background(), objects)
				if err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				for _, key := range []string{"obj1", "obj2"} {
					poss, _, err := res.Lookup("spoke", key)
					if err != nil || len(poss) != 1 {
						t.Errorf("reader %d: lookup(spoke, %s) = %v, %v", id, key, poss, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if st := s.Stats(); st.Compiles < 1 {
				t.Error("stats reader: no compile recorded")
				return
			}
			if es := s.EngineStats(); es.Users == 0 {
				t.Error("stats reader: empty engine stats")
				return
			}
		}
	}()

	for i := 0; i < 60; i++ {
		fan := fmt.Sprintf("fan%d", i)
		if err := s.AddTrust(fan, "hub", 5); err != nil { // grows the user set
			t.Fatal(err)
		}
		if i%3 == 0 {
			if ok, err := s.RemoveTrust(fan, "hub"); err != nil || !ok {
				t.Fatalf("edge %s->hub missing: ok=%v err=%v", fan, ok, err)
			}
		}
	}
	done.Store(true)
	wg.Wait()
}
