package trustmap

import (
	"context"
	"testing"
)

// indusNetwork builds the running example of Figures 1 and 2.
func indusNetwork() *Network {
	n := New()
	n.AddTrust("Alice", "Bob", 100)
	n.AddTrust("Alice", "Charlie", 50)
	n.AddTrust("Bob", "Alice", 80)
	return n
}

// TestFigure1b reproduces Alice's view of the three glyphs in Figure 1b.
func TestFigure1b(t *testing.T) {
	// Glyph 1: Alice herself says ship hull.
	n := indusNetwork()
	n.SetBelief("Alice", "ship hull")
	n.SetBelief("Bob", "cow")
	n.SetBelief("Charlie", "jar")
	r, err := n.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Certain("Alice"); !ok || v != "ship hull" {
		t.Errorf("glyph1: Alice sees %q want ship hull", v)
	}
	// Glyph 2: Bob says fish, Charlie says knot; Alice trusts Bob more.
	n = indusNetwork()
	n.SetBelief("Bob", "fish")
	n.SetBelief("Charlie", "knot")
	r, err = n.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Certain("Alice"); !ok || v != "fish" {
		t.Errorf("glyph2: Alice sees %q want fish", v)
	}
	// Glyph 3: Bob and Charlie agree on arrow.
	n = indusNetwork()
	n.SetBelief("Bob", "arrow")
	n.SetBelief("Charlie", "arrow")
	r, err = n.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Certain("Alice"); !ok || v != "arrow" {
		t.Errorf("glyph3: Alice sees %q want arrow", v)
	}
}

func TestUpdateAndRevoke(t *testing.T) {
	n := indusNetwork()
	n.SetBelief("Charlie", "jar")
	r, _ := n.Resolve()
	if v, _ := r.Certain("Alice"); v != "jar" {
		t.Fatalf("Alice should import jar, got %q", v)
	}
	// Update: Charlie changes his mind; re-resolving reflects it
	// (contrast with Example 1.2's stale values).
	n.SetBelief("Charlie", "cow")
	r, _ = n.Resolve()
	if v, _ := r.Certain("Alice"); v != "cow" {
		t.Fatalf("after update Alice should see cow, got %q", v)
	}
	// Revocation: no information remains.
	n.RemoveBelief("Charlie")
	r, _ = n.Resolve()
	if vs := r.Possible("Alice"); len(vs) != 0 {
		t.Fatalf("after revocation Alice should see nothing, got %v", vs)
	}
}

func TestOscillatorFacade(t *testing.T) {
	n := New()
	n.AddTrust("x1", "x2", 100)
	n.AddTrust("x1", "x3", 50)
	n.AddTrust("x2", "x1", 80)
	n.AddTrust("x2", "x4", 40)
	n.SetBelief("x3", "v")
	n.SetBelief("x4", "w")
	r, err := n.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if vs := r.Possible("x1"); len(vs) != 2 {
		t.Errorf("poss(x1)=%v want two values", vs)
	}
	if _, ok := r.Certain("x1"); ok {
		t.Error("x1 must have no certain value")
	}
	// Lineage of each possible value verifies.
	for _, v := range r.Possible("x1") {
		path, ok := r.Lineage("x1", v)
		if !ok || len(path) < 2 {
			t.Errorf("lineage(x1,%s)=%v ok=%v", v, path, ok)
		}
	}
	// Agreement: x1 and x2 agree in every stable solution.
	c, err := n.AnalyzeConflicts()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Agree("x1", "x2") {
		t.Error("x1 and x2 must agree")
	}
	if c.Agree("x3", "x4") {
		t.Error("x3 and x4 must not agree")
	}
	pairs := c.PossiblePairs("x1", "x2")
	if len(pairs) != 2 {
		t.Errorf("poss(x1,x2)=%v want diagonal pairs", pairs)
	}
	if cons := c.Consensus("x1", "x2"); len(cons) != 2 {
		t.Errorf("consensus=%v want both values", cons)
	}
}

func TestSkepticFacade(t *testing.T) {
	n := New()
	n.AddTrust("x3", "x2", 2)
	n.AddTrust("x3", "x1", 1)
	n.SetBelief("x2", "a")
	n.SetConstraint("x1", "b")
	s, err := n.ResolveSkeptic()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Certain("x3"); !ok || v != "a" {
		t.Errorf("x3 = %q want a", v)
	}
	// A node whose preferred parent rejects the incoming value goes to ⊥.
	n2 := New()
	n2.AddTrust("x", "filter", 2)
	n2.AddTrust("x", "source", 1)
	n2.SetConstraint("filter", "v")
	n2.SetBelief("source", "v")
	s2, err := n2.ResolveSkeptic()
	if err != nil {
		t.Fatal(err)
	}
	if !s2.RejectsEverything("x") {
		t.Errorf("x should reject everything, states: %v", s2.Describe("x"))
	}
}

func TestExactParadigms(t *testing.T) {
	n := New()
	n.AddTrust("x3", "x2", 2)
	n.AddTrust("x3", "x1", 1)
	n.SetBelief("x2", "a")
	n.SetConstraint("x1", "a")
	for _, p := range []Paradigm{Agnostic, Eclectic, Skeptic} {
		poss, err := n.ExactParadigm(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := poss["x3"]; len(got) != 1 || got[0] != "a" {
			t.Errorf("%v: poss(x3)=%v want [a]", p, got)
		}
	}
}

func TestBulkFacade(t *testing.T) {
	n := indusNetwork()
	objects := map[string]map[string]string{
		"glyph1": {"Bob": "cow", "Charlie": "jar"},
		"glyph2": {"Bob": "fish", "Charlie": "knot"},
		"glyph3": {"Bob": "arrow", "Charlie": "arrow"},
	}
	r, err := n.bulkResolveWith(context.Background(), objects, bulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{"glyph1": "cow", "glyph2": "fish", "glyph3": "arrow"}
	for obj, want := range cases {
		if v, ok := r.Certain("Alice", obj); !ok || v != want {
			t.Errorf("Alice/%s = %q want %q", obj, v, want)
		}
	}
}

// TestBulkFacadeStrategiesAgree checks that the compiled engine (at
// several worker counts) and the legacy SQL path return identical results
// through the public facade.
func TestBulkFacadeStrategiesAgree(t *testing.T) {
	n := indusNetwork()
	objects := map[string]map[string]string{
		"glyph1": {"Bob": "cow", "Charlie": "jar"},
		"glyph2": {"Bob": "fish", "Charlie": "knot"},
		"glyph3": {"Bob": "arrow", "Charlie": "arrow"},
	}
	sql, err := n.bulkResolveWith(context.Background(), objects, bulkOptions{UseSQL: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		eng, err := n.bulkResolveWith(context.Background(), objects, bulkOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for obj := range objects {
			for _, user := range n.Users() {
				a, b := eng.Possible(user, obj), sql.Possible(user, obj)
				if len(a) != len(b) {
					t.Fatalf("workers=%d %s/%s: engine %v vs sql %v", workers, user, obj, a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("workers=%d %s/%s: engine %v vs sql %v", workers, user, obj, a, b)
					}
				}
				ca, oka := eng.Certain(user, obj)
				cb, okb := sql.Certain(user, obj)
				if ca != cb || oka != okb {
					t.Fatalf("workers=%d cert %s/%s: engine %q,%v vs sql %q,%v", workers, user, obj, ca, oka, cb, okb)
				}
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	n := New()
	n.AddTrust("a", "a", 5)
	if _, err := n.Resolve(); err == nil {
		t.Error("self trust must be rejected")
	}
	n2 := New()
	n2.SetBelief("a", "v")
	n2.SetConstraint("a", "w")
	if _, err := n2.Resolve(); err == nil {
		t.Error("belief+constraint must be rejected")
	}
	n3 := New()
	n3.AddTrust("x", "a", 1)
	n3.AddTrust("x", "b", 1) // tie
	n3.SetBelief("a", "v")
	n3.SetConstraint("b", "w")
	if _, err := n3.ResolveSkeptic(); err == nil {
		t.Error("ties must be rejected with constraints")
	}
}

func TestUnknownUserQueries(t *testing.T) {
	n := indusNetwork()
	n.SetBelief("Charlie", "jar")
	r, _ := n.Resolve()
	if vs := r.Possible("Nobody"); vs != nil {
		t.Error("unknown user should have no possible values")
	}
	if _, ok := r.Certain("Nobody"); ok {
		t.Error("unknown user should have no certain value")
	}
	if _, ok := r.Lineage("Nobody", "jar"); ok {
		t.Error("unknown user should have no lineage")
	}
}

func TestNonBinaryNetworksSupported(t *testing.T) {
	// A user trusting four others is binarized transparently.
	n := New()
	for i, name := range []string{"a", "b", "c", "d"} {
		n.AddTrust("x", name, i+1)
	}
	n.SetBelief("a", "va")
	n.SetBelief("d", "vd")
	r, err := n.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Certain("x"); !ok || v != "vd" {
		t.Errorf("x = %q want vd (highest priority)", v)
	}
}

func TestDOTExport(t *testing.T) {
	n := indusNetwork()
	n.SetBelief("Charlie", "jar")
	dot := n.DOT()
	for _, want := range []string{"digraph", `"Bob" -> "Alice"`, "jar"} {
		if !contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestResolveDeterministic: resolving twice gives identical results.
func TestResolveDeterministic(t *testing.T) {
	n := indusNetwork()
	n.SetBelief("Bob", "fish")
	n.SetBelief("Charlie", "knot")
	r1, _ := n.Resolve()
	r2, _ := n.Resolve()
	for _, u := range n.Users() {
		p1, p2 := r1.Possible(u), r2.Possible(u)
		if len(p1) != len(p2) {
			t.Fatalf("nondeterministic possible sets for %s", u)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("nondeterministic possible sets for %s", u)
			}
		}
	}
}

// TestCertainImpliesPossible: a certain value is always possible.
func TestCertainImpliesPossible(t *testing.T) {
	n := indusNetwork()
	n.SetBelief("Bob", "fish")
	n.SetBelief("Charlie", "knot")
	r, _ := n.Resolve()
	for _, u := range n.Users() {
		if v, ok := r.Certain(u); ok {
			found := false
			for _, p := range r.Possible(u) {
				if p == v {
					found = true
				}
			}
			if !found {
				t.Errorf("certain value %q of %s not possible", v, u)
			}
		}
	}
}
