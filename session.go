package trustmap

// Session keeps a compiled bulk-resolution artifact live across network
// mutations: the compile -> resolve many -> mutate -> incremental re-plan
// lifecycle the paper's community-database setting implies (Sections 2.5
// and 4). BulkResolve/BulkResolveWith recompile the engine artifact on
// every call; a Session compiles once and then folds each mutation into
// the artifact through the engine's delta path (engine.Apply), paying for
// the dirty region instead of the whole network.
//
// The session owns the binarized twin of the facade network and keeps it
// current by translating facade mutations into binarized ones. Mutations
// that would restructure the binarization (a user crossing the two-parent
// threshold, belief changes on heavily-mapped users) mark the session for
// a full rebuild, which the next resolve performs transparently; so does
// mutating the underlying Network directly instead of through the session
// (detected by the network's version counter).

import (
	"context"
	"fmt"
	"sort"

	"trustmap/internal/engine"
	"trustmap/internal/tn"
)

// SessionOptions configures NewSession.
type SessionOptions struct {
	// Workers is the worker-pool size for resolves. Zero means GOMAXPROCS.
	Workers int
	// ExtraRoots names users whose beliefs vary per object even though the
	// network states no belief for them (they are registered if unknown).
	// Users given a belief via SetBelief are roots automatically.
	ExtraRoots []string
	// MaxDirtyFraction is the dirty-region share above which the engine
	// recompiles from scratch instead of splicing (0 = engine default).
	MaxDirtyFraction float64
	// DisableDedup turns off signature deduplication for the session's
	// resolves. The default dedups: objects sharing one root-assignment
	// signature resolve once per artifact generation — the signature cache
	// survives across BulkResolve calls and value-only mutations, and is
	// invalidated by structural ones. See BulkResolution.DedupStats.
	DisableDedup bool
}

// SessionStats counts what the session's maintenance has done.
type SessionStats struct {
	Compiles           int // full compiles, including the initial one
	IncrementalApplies int // mutations folded in through the delta path
	ValueOnlyUpdates   int // belief-value changes, free for the plan
	FullRecompiles     int // delta applications that hit the threshold
	LastApply          engine.ApplyStats
}

// Session serves resolutions from a compiled artifact that is maintained
// incrementally across mutations. Create with Network.NewSession. A
// Session is not safe for concurrent use; resolves distribute over a
// worker pool internally.
type Session struct {
	net  *Network
	bin  *tn.Network // binarized twin, journaling enabled
	comp *engine.CompiledNetwork

	binIDs     []int       // original user ID -> binarized node ID
	rootNode   map[int]int // original root ID -> binarized node carrying its belief
	extraRoots []int       // original IDs of SessionOptions.ExtraRoots

	workers     int
	maxDirty    float64
	noDedup     bool
	version     uint64 // inner network version the session is synced to
	needRebuild bool
	stats       SessionStats
}

// NewSession validates and compiles the network once and returns a handle
// that keeps the compiled artifact live across mutations. Mutate through
// the session's methods to stay on the incremental path; mutating the
// Network directly is detected and handled by a full rebuild on the next
// resolve.
func (n *Network) NewSession(opts SessionOptions) (*Session, error) {
	s := &Session{
		net:      n,
		workers:  opts.Workers,
		maxDirty: opts.MaxDirtyFraction,
		noDedup:  opts.DisableDedup,
	}
	for _, name := range opts.ExtraRoots {
		s.extraRoots = append(s.extraRoots, n.inner.AddUser(name))
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuild re-binarizes and recompiles from scratch: the fallback for
// structural mutations the incremental translation does not cover.
func (s *Session) rebuild() error {
	if err := s.net.Validate(); err != nil {
		return err
	}
	shape := s.net.inner.Clone()
	for _, x := range s.extraRoots {
		if !shape.HasExplicit(x) {
			shape.SetExplicit(x, "seed")
		}
	}
	bin := tn.Binarize(shape)
	bin.EnableJournal()
	comp, err := engine.Compile(bin)
	if err != nil {
		return err
	}
	s.bin = bin
	s.comp = comp
	s.binIDs = make([]int, s.net.inner.NumUsers())
	for i := range s.binIDs {
		s.binIDs[i] = i // fresh binarization keeps original IDs as a prefix
	}
	s.rootNode = make(map[int]int)
	for x := 0; x < shape.NumUsers(); x++ {
		if shape.HasExplicit(x) {
			s.rootNode[x] = findRootFor(bin, x)
		}
	}
	s.needRebuild = false
	s.version = s.net.inner.Version()
	s.stats.Compiles++
	return nil
}

// Stats returns the session's maintenance counters.
func (s *Session) Stats() SessionStats { return s.stats }

// EngineStats summarizes the live compiled artifact.
func (s *Session) EngineStats() engine.Stats { return s.comp.Stats() }

// syncCheck marks the session stale when the underlying network was
// mutated outside the session since the last operation.
func (s *Session) syncCheck() {
	if s.net.inner.Version() != s.version {
		s.needRebuild = true
	}
}

// binID maps an original user ID to its binarized node.
func (s *Session) binID(x int) int {
	if x < len(s.binIDs) {
		return s.binIDs[x]
	}
	return x
}

// AddTrust states that truster accepts values from trusted with the given
// priority, like Network.AddTrust, and keeps the compiled artifact in
// sync. Unlike the facade it rejects self-trust and duplicate mappings
// immediately instead of at the next validation.
func (s *Session) AddTrust(truster, trusted string, priority int) error {
	s.syncCheck()
	if truster == trusted {
		return fmt.Errorf("trustmap: user %q cannot trust itself", truster)
	}
	t := s.net.inner.AddUser(truster)
	z := s.net.inner.AddUser(trusted)
	for _, m := range s.net.inner.In(t) {
		if m.Parent == z {
			return fmt.Errorf("trustmap: mapping %q -> %q already exists; use UpdateTrust", trusted, truster)
		}
	}
	// Pre-mutation shape of the truster decides translatability.
	pre := append([]tn.Mapping(nil), s.net.inner.In(t)...)
	k := len(pre)
	s.net.inner.AddMapping(z, t, priority)
	s.version = s.net.inner.Version()
	if s.needRebuild {
		return nil
	}
	s.ensureBinUser(truster, t)
	s.ensureBinUser(trusted, z)
	bt, bz := s.binID(t), s.binID(z)
	root, hasCarrier := s.rootNode[t]
	switch {
	case hasCarrier && root == bt:
		// A root gains its first parent: hoist the belief onto a helper
		// that outranks it, exactly as Binarize does.
		s.hoistBelief(t)
		s.bin.AddMapping(bz, bt, 1)
	case hasCarrier && k == 0:
		// A hoisted carrier is the sole binarized parent (the last real
		// parent was revoked earlier); it keeps outranking real parents.
		s.bin.AddMapping(bz, bt, 1)
	case !hasCarrier && k == 0:
		s.bin.AddMapping(bz, bt, 2)
	case !hasCarrier && k == 1:
		// Two parents now: re-derive the {1,2} (or tied {1,1}) encoding.
		z0, p0 := pre[0].Parent, pre[0].Priority
		bz0 := s.binID(z0)
		switch {
		case p0 == priority:
			s.bin.SetMappingPriority(bz0, bt, 1)
			s.bin.AddMapping(bz, bt, 1)
		case p0 > priority:
			s.bin.AddMapping(bz, bt, 1)
		default:
			s.bin.SetMappingPriority(bz0, bt, 1)
			s.bin.AddMapping(bz, bt, 2)
		}
	default:
		// Three or more binarized parents: cascade territory.
		s.needRebuild = true
	}
	return nil
}

// RemoveTrust revokes truster -> trusted, like Network.RemoveTrust, and
// keeps the compiled artifact in sync. It reports whether the mapping
// existed.
func (s *Session) RemoveTrust(truster, trusted string) bool {
	s.syncCheck()
	t, z := s.net.inner.UserID(truster), s.net.inner.UserID(trusted)
	if t < 0 || z < 0 {
		return false
	}
	pre := append([]tn.Mapping(nil), s.net.inner.In(t)...)
	k := len(pre)
	if !s.net.inner.RemoveMapping(z, t) {
		return false
	}
	s.version = s.net.inner.Version()
	if s.needRebuild {
		return true
	}
	bt := s.binID(t)
	hoisted := 0
	if root, ok := s.rootNode[t]; ok && root != bt {
		hoisted = 1 // a helper carries the belief above the real parents
	}
	if k+hoisted > 2 {
		s.needRebuild = true // the binarization had a cascade
		return true
	}
	s.bin.RemoveMapping(s.binID(z), bt)
	// A surviving sole real parent becomes the preferred edge (priority 2),
	// the encoding Binarize emits for single-parent nodes. With a hoisted
	// belief the helper already holds priority 2 and survivors stay at 1.
	if hoisted == 0 && k == 2 {
		for _, m := range pre {
			if m.Parent != z {
				s.bin.SetMappingPriority(s.binID(m.Parent), bt, 2)
			}
		}
	}
	return true
}

// UpdateTrust changes the priority of truster -> trusted, like
// Network.UpdateTrust, and keeps the compiled artifact in sync.
func (s *Session) UpdateTrust(truster, trusted string, priority int) bool {
	s.syncCheck()
	t, z := s.net.inner.UserID(truster), s.net.inner.UserID(trusted)
	if t < 0 || z < 0 {
		return false
	}
	k := len(s.net.inner.In(t))
	if !s.net.inner.SetMappingPriority(z, t, priority) {
		return false
	}
	s.version = s.net.inner.Version()
	if s.needRebuild {
		return true
	}
	bt := s.binID(t)
	hoisted := 0
	if root, ok := s.rootNode[t]; ok && root != bt {
		hoisted = 1
	}
	switch {
	case k+hoisted > 2:
		s.needRebuild = true // priorities are encoded in the cascade shape
	case hoisted == 0 && k == 2:
		// Re-derive the two binarized priorities from the new order.
		post := s.net.inner.In(t)
		if post[0].Priority == post[1].Priority {
			s.bin.SetMappingPriority(s.binID(post[0].Parent), bt, 1)
			s.bin.SetMappingPriority(s.binID(post[1].Parent), bt, 1)
		} else {
			s.bin.SetMappingPriority(s.binID(post[0].Parent), bt, 2)
			s.bin.SetMappingPriority(s.binID(post[1].Parent), bt, 1)
		}
		// Else: a sole real parent (with or without a hoisted belief above
		// it) keeps its binarized priority; nothing to do.
	}
	return true
}

// SetBelief states the user's explicit belief, like Network.SetBelief, and
// keeps the compiled artifact in sync. A value update on an existing
// belief is free: the resolution plan is belief-value-independent.
func (s *Session) SetBelief(user, value string) error {
	s.syncCheck()
	if value == "" {
		return fmt.Errorf("trustmap: empty value; use RemoveBelief to revoke")
	}
	x := s.net.inner.AddUser(user)
	k := len(s.net.inner.In(x))
	s.net.inner.SetExplicit(x, tn.Value(value))
	s.version = s.net.inner.Version()
	if s.needRebuild {
		return nil
	}
	s.ensureBinUser(user, x)
	switch root, hasCarrier := s.rootNode[x]; {
	case hasCarrier:
		// The belief carrier exists already — x itself, its hoisted helper,
		// or an ExtraRoots placeholder. The engine sees a pure value update
		// and keeps the whole plan.
		s.bin.SetExplicit(root, tn.Value(value))
	case k == 0:
		bx := s.binID(x)
		s.bin.SetExplicit(bx, tn.Value(value))
		s.rootNode[x] = bx
	case k == 1:
		s.hoistBelief(x)
	default:
		s.needRebuild = true // three binarized parents: cascade
	}
	return nil
}

// RemoveBelief revokes the user's explicit belief, like
// Network.RemoveBelief, and keeps the compiled artifact in sync.
func (s *Session) RemoveBelief(user string) {
	s.syncCheck()
	x := s.net.inner.UserID(user)
	if x < 0 || !s.net.inner.HasExplicit(x) {
		return
	}
	k := len(s.net.inner.In(x))
	s.net.inner.SetExplicit(x, tn.NoValue)
	s.version = s.net.inner.Version()
	if s.needRebuild {
		return
	}
	if s.isExtraRoot(x) {
		// The user stays a root for per-object beliefs; only the
		// network-level default disappears. The binarized belief carrier
		// keeps a placeholder, exactly as a fresh rebuild would seed it.
		s.bin.SetExplicit(s.rootNode[x], "seed")
		return
	}
	bx := s.binID(x)
	switch {
	case k == 0:
		s.bin.SetExplicit(bx, tn.NoValue)
		delete(s.rootNode, x)
	case k == 1:
		// Drop the hoisted helper; the sole real parent becomes preferred.
		helper := s.rootNode[x]
		s.bin.SetExplicit(helper, tn.NoValue)
		s.bin.RemoveMapping(helper, bx)
		for _, m := range s.bin.In(bx) {
			s.bin.SetMappingPriority(m.Parent, bx, 2)
		}
		delete(s.rootNode, x)
	default:
		s.needRebuild = true // cascade shape changes
	}
}

// hoistBelief moves x's explicit belief onto a fresh helper root wired
// above x's existing sole parent, mirroring Binarize's step 1: the helper
// takes priority 2 and the real parent priority 1.
func (s *Session) hoistBelief(x int) {
	bx := s.binID(x)
	v := s.net.inner.Explicit(x)
	if v == tn.NoValue {
		v = "seed"
	}
	s.bin.SetExplicit(bx, tn.NoValue) // the helper carries it from now on
	for _, m := range s.bin.In(bx) {
		s.bin.SetMappingPriority(m.Parent, bx, 1)
	}
	helper := s.bin.AddUser(s.net.inner.Name(x) + "#b0")
	s.bin.SetExplicit(helper, v)
	s.bin.AddMapping(helper, bx, 2)
	s.rootNode[x] = helper
}

// ensureBinUser registers a user created after compilation in the
// binarized twin. Original and binarized IDs diverge from here on; binIDs
// carries the mapping.
func (s *Session) ensureBinUser(name string, x int) {
	for len(s.binIDs) <= x {
		s.binIDs = append(s.binIDs, -1)
	}
	if s.binIDs[x] < 0 {
		s.binIDs[x] = s.bin.AddUser(name)
	}
}

func (s *Session) isExtraRoot(x int) bool {
	for _, r := range s.extraRoots {
		if r == x {
			return true
		}
	}
	return false
}

// flush folds pending binarized mutations into the compiled artifact —
// rebuilding from scratch when a structural mutation or an out-of-session
// change demands it.
func (s *Session) flush() error {
	s.syncCheck()
	if s.needRebuild {
		return s.rebuild()
	}
	muts := s.bin.DrainJournal()
	if len(muts) == 0 {
		return nil
	}
	next, st, err := s.comp.Apply(muts, engine.ApplyOptions{MaxDirtyFraction: s.maxDirty})
	if err != nil {
		// The translation produced something the engine will not splice;
		// recover with a rebuild rather than failing the resolve.
		return s.rebuild()
	}
	s.stats.LastApply = st
	switch {
	case st.FullRecompile:
		s.stats.FullRecompiles++
	case next == s.comp:
		s.stats.ValueOnlyUpdates++
	default:
		s.stats.IncrementalApplies++
	}
	s.comp = next
	return nil
}

// BulkResolve resolves many objects against the live artifact. Each object
// maps root users to their per-object beliefs; roots missing from an
// object default to the network-level belief set via SetBelief. ExtraRoots
// users have no default and must appear in every object.
func (s *Session) BulkResolve(ctx context.Context, objects map[string]map[string]string) (*BulkResolution, error) {
	if err := s.flush(); err != nil {
		return nil, err
	}
	conv := make(map[string]map[int]tn.Value, len(objects))
	for key, bs := range objects {
		m := make(map[int]tn.Value, len(s.rootNode))
		for user, v := range bs {
			x := s.net.inner.UserID(user)
			if x < 0 {
				return nil, fmt.Errorf("%w: %q in object %q", ErrUnknownUser, user, key)
			}
			root, ok := s.rootNode[x]
			if !ok {
				return nil, fmt.Errorf("trustmap: user %q in object %q is not a session root; declare it in ExtraRoots or give it a belief", user, key)
			}
			m[root] = tn.Value(v)
		}
		for x, root := range s.rootNode {
			if _, ok := m[root]; ok {
				continue
			}
			if v := s.net.inner.Explicit(x); v != tn.NoValue {
				m[root] = v
			} else {
				return nil, fmt.Errorf("trustmap: object %q misses a belief for root user %q (assumption ii)", key, s.net.inner.Name(x))
			}
		}
		conv[key] = m
	}
	res, err := s.comp.Resolve(ctx, conv, engine.Options{Workers: s.workers, DisableDedup: s.noDedup})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return &BulkResolution{src: s.net.inner, keys: keys, eng: res, binIDs: s.binIDs}, nil
}

// ObjectResolution is the single-object view returned by Session.Resolve.
type ObjectResolution struct {
	bulk *BulkResolution
}

// Resolve resolves one object's root beliefs against the live artifact:
// the mutate-then-resolve fast path. beliefs may be nil when every root
// has a network-level belief.
func (s *Session) Resolve(ctx context.Context, beliefs map[string]string) (*ObjectResolution, error) {
	r, err := s.BulkResolve(ctx, map[string]map[string]string{"object": beliefs})
	if err != nil {
		return nil, err
	}
	return &ObjectResolution{bulk: r}, nil
}

// Possible returns the values the user holds in at least one stable
// solution for the resolved object, sorted.
func (o *ObjectResolution) Possible(user string) []string {
	return o.bulk.Possible(user, "object")
}

// Certain returns the value the user holds in every stable solution of
// the resolved object. ok is false when there is none.
func (o *ObjectResolution) Certain(user string) (string, bool) {
	return o.bulk.Certain(user, "object")
}
