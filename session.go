package trustmap

// session keeps a compiled bulk-resolution artifact live across network
// mutations: the compile -> resolve many -> mutate -> incremental re-plan
// lifecycle the paper's community-database setting implies (Sections 2.5
// and 4). BulkResolve/bulkResolveWith recompile the engine artifact on
// every call; a session compiles once and then folds each mutation into
// the artifact through the engine's delta path (engine.Apply), paying for
// the dirty region instead of the whole network.
//
// The session owns the binarized twin of the facade network and keeps it
// current by translating facade mutations into binarized ones. Mutations
// that would restructure the binarization (a user crossing the two-parent
// threshold, belief changes on heavily-mapped users) mark the session for
// a full rebuild, which the next publication performs transparently; so
// does mutating the underlying Network directly instead of through the
// session (detected by the network's version counter).
//
// # Concurrency
//
// A session is safe for concurrent use: any number of goroutines may
// resolve while others mutate. Serving is epoch-based (internal/serve):
// every publication — the initial compile and each mutation — freezes an
// immutable snapshot (the compiled artifact plus the name/root tables a
// resolve needs) and swaps it in with one atomic pointer store. Readers
// pin the current epoch for the duration of one resolve and never take
// the writer lock, so a read observes exactly one published generation —
// never a torn mix of two — and never blocks on a writer. Writers are
// serialized by a mutex; each mutation method publishes a new epoch
// before returning, and Update batches several mutations into a single
// publication. Retired epochs stay valid for the readers still pinning
// them (engine.Apply builds successors copy-on-write) and are reclaimed
// once their reader count drains.
//
// The one remaining single-goroutine caveat is the facade Network itself:
// mutating it directly (not through the session) while session reads or
// writes are in flight is a data race, exactly as it was before sessions
// existed. Sequential out-of-session mutation remains supported and is
// detected by the version counter at the next session operation.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"trustmap/internal/engine"
	"trustmap/internal/serve"
	"trustmap/internal/tn"
)

// sessionOptions configures newSession.
type sessionOptions struct {
	// Workers is the worker-pool size for resolves. Zero means GOMAXPROCS.
	Workers int
	// ExtraRoots names users whose beliefs vary per object even though the
	// network states no belief for them (they are registered if unknown).
	// Users given a belief via SetBelief are roots automatically.
	ExtraRoots []string
	// MaxDirtyFraction is the dirty-region share above which the engine
	// recompiles from scratch instead of splicing (0 = engine default).
	MaxDirtyFraction float64
	// DisableDedup turns off signature deduplication for the session's
	// resolves. The default dedups: objects sharing one root-assignment
	// signature resolve once per artifact generation — the signature cache
	// survives across BulkResolve calls and value-only mutations, and is
	// invalidated by structural ones. See BulkResolution.DedupStats.
	DisableDedup bool
}

// SessionStats counts what the session's maintenance has done, as of the
// epoch the stats were read from.
type SessionStats struct {
	Epoch              uint64 // generation of the published snapshot serving reads
	Compiles           int    // full compiles, including the initial one
	IncrementalApplies int    // mutations folded in through the delta path
	ValueOnlyUpdates   int    // belief-value changes, free for the plan
	FullRecompiles     int    // delta applications that hit the threshold
	EpochsReclaimed    uint64 // retired epochs whose reader count drained
	LastApply          engine.ApplyStats
}

// sessionSnap is one published epoch's immutable snapshot: the compiled
// artifact plus every table a resolve reads. Writers build the next
// snapshot off to the side under the session mutex and publish it with
// one pointer swap; readers must treat every field as frozen.
type sessionSnap struct {
	comp     *engine.CompiledNetwork
	view     *tn.View         // frozen name index of the facade network
	binIDs   []int            // original user ID -> binarized node (len-capped, append-only)
	rootNode map[int]int      // original root ID -> binarized belief carrier
	defaults map[int]tn.Value // network-level default belief per root, where stated
	version  uint64           // facade network version this snapshot reflects
	stats    SessionStats     // maintenance counters at publication
	eng      *engLazy         // shared between snapshots of one artifact generation
}

// engLazy derives the engine summary of one artifact generation lazily,
// on first EngineStats call — off the publish hot path. Only the
// binarized user/mapping counts are captured eagerly (O(1)): they are
// the one thing engine.Stats reads from the live network, which keeps
// mutating after publication. Snapshots sharing an artifact (value-only
// updates) share the holder, so the derivation runs once per generation.
type engLazy struct {
	comp        *engine.CompiledNetwork
	binUsers    int
	binMappings int
	once        sync.Once
	st          engine.Stats
}

// engineStats derives (once) and returns the frozen artifact summary.
func (snap *sessionSnap) engineStats() engine.Stats {
	e := snap.eng
	e.once.Do(func() {
		e.st = e.comp.StatsFrozen(e.binUsers, e.binMappings)
	})
	return e.st
}

// session serves resolutions from a compiled artifact that is maintained
// incrementally across mutations and published in epochs. Create with
// Network.newSession. Safe for concurrent use: resolves are lock-free
// against the current epoch, mutations are serialized internally.
type session struct {
	workers  int
	maxDirty float64
	noDedup  bool

	// lsnFn, when set (by the durable Store), supplies the WAL log
	// sequence number each publication is tagged with: a lower bound on
	// the log position the published epoch reflects. Must be safe to call
	// without locks (an atomic load).
	lsnFn func() uint64

	pub *serve.Publisher[*sessionSnap]

	// Writer-side state, guarded by mu. Readers never touch it: everything
	// a resolve needs is frozen into the published sessionSnap.
	mu         sync.Mutex
	net        *Network
	bin        *tn.Network // binarized twin, journaling enabled
	comp       *engine.CompiledNetwork
	binIDs     []int            // original user ID -> binarized node ID
	rootNode   map[int]int      // original root ID -> binarized node carrying its belief
	extraRoots []int            // original IDs of extra roots, in registration order
	extraSet   map[int]struct{} // membership index over extraRoots
	// version is the highest inner-network version the session has
	// accounted for: stored (under mu) the moment a session mutation lands,
	// before it is published. Readers compare it against the network's
	// atomic version counter to tell out-of-session mutations (which need a
	// rebuild) from in-flight session writes (whose publication is coming;
	// the current epoch stays correct to serve) — atomically, so the probe
	// never takes the writer lock.
	version atomic.Uint64
	// pubStale flips when a publication failed (a rebuild error after a
	// mutation landed): the current epoch no longer reflects the session
	// state and bool-returning mutation methods had no way to say so.
	// Readers observing it upgrade to Refresh, which retries the rebuild
	// and surfaces the error — mutation failures are never silently
	// absorbed into stale serving.
	pubStale    atomic.Bool
	needRebuild bool
	rootsDirty  bool // rootNode or a default belief changed since the last snapshot
	stats       SessionStats
	lastSnap    *sessionSnap // previous publication, for O(1) reuse of unchanged tables
}

// newSession validates and compiles the network once and returns a handle
// that keeps the compiled artifact live across mutations. Mutate through
// the session's methods to stay on the incremental path; mutating the
// Network directly is detected and handled by a full rebuild at the next
// session operation, but is not safe concurrently with session use.
//
// Deprecated: use Network.NewStore. A Store wraps a session and adds the
// object table, per-object result caching, and streaming reads; session
// remains supported as the engine room underneath.
func (n *Network) newSession(opts sessionOptions) (*session, error) {
	s := &session{
		net:      n,
		workers:  opts.Workers,
		maxDirty: opts.MaxDirtyFraction,
		noDedup:  opts.DisableDedup,
	}
	s.extraSet = make(map[int]struct{}, len(opts.ExtraRoots))
	for _, name := range opts.ExtraRoots {
		s.addExtraRootLocked(n.inner.AddUser(name))
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	s.pub = serve.NewPublisher(s.snapLocked(), nil)
	return s, nil
}

// rebuild re-binarizes and recompiles from scratch: the fallback for
// structural mutations the incremental translation does not cover.
// Callers hold mu (or, in newSession, exclusive ownership).
func (s *session) rebuild() error {
	if err := s.net.Validate(); err != nil {
		return err
	}
	shape := s.net.inner.Clone()
	for _, x := range s.extraRoots {
		if !shape.HasExplicit(x) {
			shape.SetExplicit(x, "seed")
		}
	}
	bin := tn.Binarize(shape)
	bin.EnableJournal()
	comp, err := engine.Compile(bin)
	if err != nil {
		return err
	}
	s.bin = bin
	s.comp = comp
	s.binIDs = make([]int, s.net.inner.NumUsers())
	for i := range s.binIDs {
		s.binIDs[i] = i // fresh binarization keeps original IDs as a prefix
	}
	s.rootNode = make(map[int]int)
	for x := 0; x < shape.NumUsers(); x++ {
		if shape.HasExplicit(x) {
			s.rootNode[x] = findRootFor(bin, x)
		}
	}
	s.needRebuild = false
	s.rootsDirty = true
	s.version.Store(s.net.inner.Version())
	s.stats.Compiles++
	return nil
}

// snapLocked freezes the writer state into an immutable snapshot. Tables
// that cannot have changed since the previous publication are shared with
// it: the name view and binIDs when no user was added (the binIDs backing
// array is append-only below its published length), rootNode and defaults
// while no belief changed (rootsDirty), and the lazy engine-summary
// holder while the artifact pointer is unchanged (value-only updates).
func (s *session) snapLocked() *sessionSnap {
	// Derive the artifact's root supports now, under the writer lock: a
	// freshly compiled artifact derives them lazily by reading the live
	// binarized network, which a reader's first resolve would race.
	s.comp.EnsureSupports()
	prev := s.lastSnap
	snap := &sessionSnap{
		comp:    s.comp,
		view:    s.net.inner.Snapshot(viewOf(prev)),
		version: s.net.inner.Version(),
		stats:   s.stats,
	}
	if prev != nil && prev.eng.comp == s.comp {
		snap.eng = prev.eng // same artifact generation: one derivation serves both
	} else {
		snap.eng = &engLazy{comp: s.comp, binUsers: s.bin.NumUsers(), binMappings: s.bin.NumMappings()}
	}
	if prev != nil && len(prev.binIDs) == len(s.binIDs) && sameBacking(prev.binIDs, s.binIDs) {
		snap.binIDs = prev.binIDs
	} else {
		snap.binIDs = s.binIDs[:len(s.binIDs):len(s.binIDs)]
	}
	// Root tables change only when a belief is granted, revoked, updated,
	// or hoisted — never on trust-edge mutations, the steady serving case.
	// Unchanged tables are shared with the previous snapshot (immutable
	// once published); rootsDirty marks the exceptions.
	if prev != nil && !s.rootsDirty {
		snap.rootNode = prev.rootNode
		snap.defaults = prev.defaults
	} else {
		snap.rootNode = make(map[int]int, len(s.rootNode))
		snap.defaults = make(map[int]tn.Value, len(s.rootNode))
		for x, root := range s.rootNode {
			snap.rootNode[x] = root
			if v := s.net.inner.Explicit(x); v != tn.NoValue {
				snap.defaults[x] = v
			}
		}
		s.rootsDirty = false
	}
	s.lastSnap = snap
	return snap
}

func viewOf(snap *sessionSnap) *tn.View {
	if snap == nil {
		return nil
	}
	return snap.view
}

// sameBacking reports whether two equal-length non-empty int slices share
// their backing array (binIDs sharing is only safe along the same array:
// a rebuild allocates a fresh one).
func sameBacking(a, b []int) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// publishLocked folds pending mutations into the artifact and publishes a
// fresh epoch. A failed fold leaves the previous epoch serving and
// surfaces the error; the session stays marked for rebuild, so a later
// operation retries. No-op publications (nothing changed since the
// current epoch) are skipped.
func (s *session) publishLocked() error {
	if err := s.flushLocked(); err != nil {
		s.pubStale.Store(true) // the epoch lags the session state; readers retry
		return err
	}
	if prev := s.lastSnap; prev == nil || prev.version != s.net.inner.Version() || prev.comp != s.comp {
		s.pub.PublishTagged(s.snapLocked(), s.pubTag())
	}
	s.pubStale.Store(false)
	return nil
}

// pubTag is the tag the next publication carries: the durable store's
// logged LSN, or 0 when the session is not durability-backed.
func (s *session) pubTag() uint64 {
	if s.lsnFn == nil {
		return 0
	}
	return s.lsnFn()
}

// rebase raises the epoch numbering to at least seq and publishes a
// fresh epoch at the new height. The durable store calls it once after
// recovery: replay may publish fewer epochs than the pre-crash run did
// (batching), and clients hold pre-crash epoch numbers as
// read-your-writes bounds, so the post-restart numbering must continue
// — never restart below — the pre-crash one.
func (s *session) rebase(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pub.Rebase(seq)
	s.pub.PublishTagged(s.snapLocked(), s.pubTag())
}

// extraRootNames returns the names of the session's extra roots —
// declared via options or registered by object mentions — in
// registration order. The durable store persists them so a recovered
// plan has the same root set.
func (s *session) extraRootNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.extraRoots))
	for _, x := range s.extraRoots {
		names = append(names, s.net.inner.Name(x))
	}
	return names
}

// Stats returns the session's maintenance counters as of the currently
// published epoch, plus the live epoch-reclamation counter.
func (s *session) Stats() SessionStats {
	e := s.pub.Acquire()
	defer e.Release()
	st := e.Value().stats
	st.Epoch = e.Seq()
	st.EpochsReclaimed = s.pub.Stats().Reclaimed
	return st
}

// EngineStats summarizes the compiled artifact of the currently published
// epoch.
func (s *session) EngineStats() engine.Stats {
	e := s.pub.Acquire()
	defer e.Release()
	return e.Value().engineStats()
}

// EpochStats returns the session counters and the engine summary of ONE
// pinned epoch: unlike calling Stats and EngineStats back to back, the
// two cannot straddle a publication. For monitoring endpoints that key
// both on the epoch number.
func (s *session) EpochStats() (SessionStats, engine.Stats) {
	e := s.pub.Acquire()
	defer e.Release()
	snap := e.Value()
	st := snap.stats
	st.Epoch = e.Seq()
	st.EpochsReclaimed = s.pub.Stats().Reclaimed
	return st, snap.engineStats()
}

// Epoch returns the sequence number of the currently published epoch. It
// increases by one per publication (every effective mutation, batch, or
// refresh).
func (s *session) Epoch() uint64 { return s.pub.Seq() }

// Refresh folds mutations made directly on the underlying Network (not
// through the session) into a fresh epoch. Resolves call it implicitly
// when they detect version skew; it is exported for callers that want the
// rebuild to happen at a time of their choosing. Not safe concurrently
// with direct Network mutation — sequence external mutations and Refresh
// on one goroutine.
func (s *session) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncCheck()
	return s.publishLocked()
}

// syncCheck marks the session stale when the underlying network was
// mutated outside the session since the last operation. Callers hold mu.
func (s *session) syncCheck() {
	if s.net.inner.Version() != s.version.Load() {
		s.needRebuild = true
	}
}

// binID maps an original user ID to its binarized node.
func (s *session) binID(x int) int {
	if x < len(s.binIDs) {
		return s.binIDs[x]
	}
	return x
}

// AddTrust states that truster accepts values from trusted with the given
// priority, like Network.AddTrust, and publishes the updated artifact.
// Unlike the facade it rejects self-trust and duplicate mappings
// immediately instead of at the next validation.
func (s *session) AddTrust(truster, trusted string, priority int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.addTrustLocked(truster, trusted, priority); err != nil {
		return err
	}
	return s.publishLocked()
}

func (s *session) addTrustLocked(truster, trusted string, priority int) error {
	s.syncCheck()
	if truster == trusted {
		return fmt.Errorf("trustmap: user %q cannot trust itself", truster)
	}
	t := s.net.inner.AddUser(truster)
	z := s.net.inner.AddUser(trusted)
	for _, m := range s.net.inner.In(t) {
		if m.Parent == z {
			return fmt.Errorf("trustmap: mapping %q -> %q already exists; use UpdateTrust", trusted, truster)
		}
	}
	// Pre-mutation shape of the truster decides translatability.
	pre := append([]tn.Mapping(nil), s.net.inner.In(t)...)
	k := len(pre)
	s.net.inner.AddMapping(z, t, priority)
	s.version.Store(s.net.inner.Version())
	if s.needRebuild {
		return nil
	}
	s.ensureBinUser(truster, t)
	s.ensureBinUser(trusted, z)
	bt, bz := s.binID(t), s.binID(z)
	root, hasCarrier := s.rootNode[t]
	switch {
	case hasCarrier && root == bt:
		// A root gains its first parent: hoist the belief onto a helper
		// that outranks it, exactly as Binarize does.
		s.hoistBelief(t)
		s.bin.AddMapping(bz, bt, 1)
	case hasCarrier && k == 0:
		// A hoisted carrier is the sole binarized parent (the last real
		// parent was revoked earlier); it keeps outranking real parents.
		s.bin.AddMapping(bz, bt, 1)
	case !hasCarrier && k == 0:
		s.bin.AddMapping(bz, bt, 2)
	case !hasCarrier && k == 1:
		// Two parents now: re-derive the {1,2} (or tied {1,1}) encoding.
		z0, p0 := pre[0].Parent, pre[0].Priority
		bz0 := s.binID(z0)
		switch {
		case p0 == priority:
			s.bin.SetMappingPriority(bz0, bt, 1)
			s.bin.AddMapping(bz, bt, 1)
		case p0 > priority:
			s.bin.AddMapping(bz, bt, 1)
		default:
			s.bin.SetMappingPriority(bz0, bt, 1)
			s.bin.AddMapping(bz, bt, 2)
		}
	default:
		// Three or more binarized parents: cascade territory.
		s.needRebuild = true
	}
	return nil
}

// RemoveTrust revokes truster -> trusted, like Network.RemoveTrust, and
// publishes the updated artifact. It reports whether the mapping existed;
// the error carries a failed publication (which the next operation also
// retries).
func (s *session) RemoveTrust(truster, trusted string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.removeTrustLocked(truster, trusted)
	if !ok {
		return false, nil
	}
	return true, s.publishLocked()
}

func (s *session) removeTrustLocked(truster, trusted string) bool {
	s.syncCheck()
	t, z := s.net.inner.UserID(truster), s.net.inner.UserID(trusted)
	if t < 0 || z < 0 {
		return false
	}
	pre := append([]tn.Mapping(nil), s.net.inner.In(t)...)
	k := len(pre)
	if !s.net.inner.RemoveMapping(z, t) {
		return false
	}
	s.version.Store(s.net.inner.Version())
	if s.needRebuild {
		return true
	}
	bt := s.binID(t)
	hoisted := 0
	if root, ok := s.rootNode[t]; ok && root != bt {
		hoisted = 1 // a helper carries the belief above the real parents
	}
	if k+hoisted > 2 {
		s.needRebuild = true // the binarization had a cascade
		return true
	}
	s.bin.RemoveMapping(s.binID(z), bt)
	// A surviving sole real parent becomes the preferred edge (priority 2),
	// the encoding Binarize emits for single-parent nodes. With a hoisted
	// belief the helper already holds priority 2 and survivors stay at 1.
	if hoisted == 0 && k == 2 {
		for _, m := range pre {
			if m.Parent != z {
				s.bin.SetMappingPriority(s.binID(m.Parent), bt, 2)
			}
		}
	}
	return true
}

// UpdateTrust changes the priority of truster -> trusted, like
// Network.UpdateTrust, and publishes the updated artifact. It reports
// whether the mapping existed; the error carries a failed publication.
func (s *session) UpdateTrust(truster, trusted string, priority int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.updateTrustLocked(truster, trusted, priority)
	if !ok {
		return false, nil
	}
	return true, s.publishLocked()
}

func (s *session) updateTrustLocked(truster, trusted string, priority int) bool {
	s.syncCheck()
	t, z := s.net.inner.UserID(truster), s.net.inner.UserID(trusted)
	if t < 0 || z < 0 {
		return false
	}
	k := len(s.net.inner.In(t))
	if !s.net.inner.SetMappingPriority(z, t, priority) {
		return false
	}
	s.version.Store(s.net.inner.Version())
	if s.needRebuild {
		return true
	}
	bt := s.binID(t)
	hoisted := 0
	if root, ok := s.rootNode[t]; ok && root != bt {
		hoisted = 1
	}
	switch {
	case k+hoisted > 2:
		s.needRebuild = true // priorities are encoded in the cascade shape
	case hoisted == 0 && k == 2:
		// Re-derive the two binarized priorities from the new order.
		post := s.net.inner.In(t)
		if post[0].Priority == post[1].Priority {
			s.bin.SetMappingPriority(s.binID(post[0].Parent), bt, 1)
			s.bin.SetMappingPriority(s.binID(post[1].Parent), bt, 1)
		} else {
			s.bin.SetMappingPriority(s.binID(post[0].Parent), bt, 2)
			s.bin.SetMappingPriority(s.binID(post[1].Parent), bt, 1)
		}
		// Else: a sole real parent (with or without a hoisted belief above
		// it) keeps its binarized priority; nothing to do.
	}
	return true
}

// SetBelief states the user's explicit belief, like Network.SetBelief, and
// publishes the updated artifact. A value update on an existing belief is
// free for the plan: the resolution plan is belief-value-independent, so
// the new epoch shares the compiled artifact and only swaps the defaults.
func (s *session) SetBelief(user, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.setBeliefLocked(user, value); err != nil {
		return err
	}
	return s.publishLocked()
}

func (s *session) setBeliefLocked(user, value string) error {
	s.syncCheck()
	if value == "" {
		return fmt.Errorf("trustmap: empty value; use RemoveBelief to revoke")
	}
	x := s.net.inner.AddUser(user)
	k := len(s.net.inner.In(x))
	s.net.inner.SetExplicit(x, tn.Value(value))
	s.rootsDirty = true
	s.version.Store(s.net.inner.Version())
	if s.needRebuild {
		return nil
	}
	s.ensureBinUser(user, x)
	switch root, hasCarrier := s.rootNode[x]; {
	case hasCarrier:
		// The belief carrier exists already — x itself, its hoisted helper,
		// or an ExtraRoots placeholder. The engine sees a pure value update
		// and keeps the whole plan.
		s.bin.SetExplicit(root, tn.Value(value))
	case k == 0:
		bx := s.binID(x)
		s.bin.SetExplicit(bx, tn.Value(value))
		s.rootNode[x] = bx
	case k == 1:
		s.hoistBelief(x)
	default:
		s.needRebuild = true // three binarized parents: cascade
	}
	return nil
}

// RemoveBelief revokes the user's explicit belief, like
// Network.RemoveBelief, and publishes the updated artifact. Revoking an
// absent belief is a no-op; the error carries a failed publication.
func (s *session) RemoveBelief(user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeBeliefLocked(user)
	return s.publishLocked()
}

func (s *session) removeBeliefLocked(user string) {
	s.syncCheck()
	x := s.net.inner.UserID(user)
	if x < 0 || !s.net.inner.HasExplicit(x) {
		return
	}
	k := len(s.net.inner.In(x))
	s.net.inner.SetExplicit(x, tn.NoValue)
	s.rootsDirty = true
	s.version.Store(s.net.inner.Version())
	if s.needRebuild {
		return
	}
	if s.isExtraRoot(x) {
		// The user stays a root for per-object beliefs; only the
		// network-level default disappears. The binarized belief carrier
		// keeps a placeholder, exactly as a fresh rebuild would seed it.
		s.bin.SetExplicit(s.rootNode[x], "seed")
		return
	}
	bx := s.binID(x)
	switch {
	case k == 0:
		s.bin.SetExplicit(bx, tn.NoValue)
		delete(s.rootNode, x)
	case k == 1:
		// Drop the hoisted helper; the sole real parent becomes preferred.
		helper := s.rootNode[x]
		s.bin.SetExplicit(helper, tn.NoValue)
		s.bin.RemoveMapping(helper, bx)
		for _, m := range s.bin.In(bx) {
			s.bin.SetMappingPriority(m.Parent, bx, 2)
		}
		delete(s.rootNode, x)
	default:
		s.needRebuild = true // cascade shape changes
	}
}

// sessionTx applies several mutations as one batch inside session.Update.
// Its methods mirror the session's mutation methods but defer publication
// to the end of the batch.
type sessionTx struct {
	s *session
}

// AddTrust is session.AddTrust without the per-mutation publication.
func (tx *sessionTx) AddTrust(truster, trusted string, priority int) error {
	return tx.s.addTrustLocked(truster, trusted, priority)
}

// RemoveTrust is session.RemoveTrust without the per-mutation publication.
// The error mirrors the session method's shape; inside a batch it is
// always nil (publication errors surface from Update itself).
func (tx *sessionTx) RemoveTrust(truster, trusted string) (bool, error) {
	return tx.s.removeTrustLocked(truster, trusted), nil
}

// UpdateTrust is session.UpdateTrust without the per-mutation publication.
// The error mirrors the session method's shape; inside a batch it is
// always nil (publication errors surface from Update itself).
func (tx *sessionTx) UpdateTrust(truster, trusted string, priority int) (bool, error) {
	return tx.s.updateTrustLocked(truster, trusted, priority), nil
}

// SetBelief is session.SetBelief without the per-mutation publication.
func (tx *sessionTx) SetBelief(user, value string) error {
	return tx.s.setBeliefLocked(user, value)
}

// RemoveBelief is session.RemoveBelief without the per-mutation
// publication. The error mirrors the session method's shape; inside a
// batch it is always nil.
func (tx *sessionTx) RemoveBelief(user string) error {
	tx.s.removeBeliefLocked(user)
	return nil
}

// Update applies a batch of mutations and publishes one epoch at the end:
// concurrent readers observe either the whole batch or none of it, and
// the engine folds the batch's journal in one Apply. fn's error is
// returned but does not roll the batch back — mutations applied before
// the error are published (the facade has no transactional undo); fn
// should treat errors from tx methods the way it would treat them from
// the session's own methods. tx must not be used after fn returns.
func (s *session) Update(fn func(tx *sessionTx) error) (err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := &sessionTx{s: s}
	// Publish in a defer so a panic in fn still publishes the applied
	// prefix while unwinding: otherwise a recovered panic (net/http
	// recovers handler panics) would leave the version counters in sync
	// with mutations no epoch reflects, and readers would silently serve
	// the pre-batch snapshot.
	defer func() {
		tx.s = nil
		if perr := s.publishLocked(); err == nil {
			err = perr
		}
	}()
	return fn(tx)
}

// hoistBelief moves x's explicit belief onto a fresh helper root wired
// above x's existing sole parent, mirroring Binarize's step 1: the helper
// takes priority 2 and the real parent priority 1.
func (s *session) hoistBelief(x int) {
	bx := s.binID(x)
	v := s.net.inner.Explicit(x)
	if v == tn.NoValue {
		v = "seed"
	}
	s.bin.SetExplicit(bx, tn.NoValue) // the helper carries it from now on
	for _, m := range s.bin.In(bx) {
		s.bin.SetMappingPriority(m.Parent, bx, 1)
	}
	helper := s.bin.AddUser(s.net.inner.Name(x) + "#b0")
	s.bin.SetExplicit(helper, v)
	s.bin.AddMapping(helper, bx, 2)
	s.rootNode[x] = helper
	s.rootsDirty = true
}

// ensureBinUser registers a user created after compilation in the
// binarized twin. Original and binarized IDs diverge from here on; binIDs
// carries the mapping.
func (s *session) ensureBinUser(name string, x int) {
	for len(s.binIDs) <= x {
		s.binIDs = append(s.binIDs, -1)
	}
	if s.binIDs[x] < 0 {
		s.binIDs[x] = s.bin.AddUser(name)
	}
}

func (s *session) isExtraRoot(x int) bool {
	_, ok := s.extraSet[x]
	return ok
}

// addExtraRootLocked records x as an extra root (idempotent). Callers
// hold mu (or, in newSession, exclusive ownership).
func (s *session) addExtraRootLocked(x int) {
	if _, ok := s.extraSet[x]; ok {
		return
	}
	s.extraSet[x] = struct{}{}
	s.extraRoots = append(s.extraRoots, x)
}

// flushLocked folds pending binarized mutations into the compiled
// artifact — rebuilding from scratch when a structural mutation or an
// out-of-session change demands it. Callers hold mu.
func (s *session) flushLocked() error {
	s.syncCheck()
	if s.needRebuild {
		return s.rebuild()
	}
	muts := s.bin.DrainJournal()
	if len(muts) == 0 {
		return nil
	}
	next, st, err := s.comp.Apply(muts, engine.ApplyOptions{MaxDirtyFraction: s.maxDirty})
	if err != nil {
		// The translation produced something the engine will not splice;
		// recover with a rebuild rather than failing the publication.
		return s.rebuild()
	}
	s.stats.LastApply = st
	switch {
	case st.FullRecompile:
		s.stats.FullRecompiles++
	case next == s.comp:
		s.stats.ValueOnlyUpdates++
	default:
		s.stats.IncrementalApplies++
	}
	s.comp = next
	return nil
}

// snapshot pins the epoch a read should serve from. The staleness probe
// compares the network's atomic version counter against the highest
// version the session has accounted for — NOT against the pinned
// epoch's version, which lags during an in-flight session write; an
// in-flight write's publication is coming, so the current epoch stays
// correct to serve and the read never touches the writer lock. Only a
// mutation made directly on the Network (not through the session)
// leaves the counters apart, and only then does the read upgrade to a
// writer, rebuild, and publish first — preserving the sequential
// out-of-session contract.
func (s *session) snapshot() (*serve.Epoch[*sessionSnap], error) {
	if s.net.inner.Version() != s.version.Load() || s.pubStale.Load() {
		if err := s.Refresh(); err != nil {
			return nil, err
		}
	}
	return s.pub.Acquire(), nil
}

// BulkResolve resolves many objects against the currently published
// epoch. Each object maps root users to their per-object beliefs; roots
// missing from an object default to the network-level belief set via
// SetBelief. ExtraRoots users have no default and must appear in every
// object. Safe to call from any number of goroutines; the whole call is
// served by one epoch, and the returned resolution stays valid after the
// epoch is superseded.
func (s *session) BulkResolve(ctx context.Context, objects map[string]map[string]string) (*BulkResolution, error) {
	e, err := s.snapshot()
	if err != nil {
		return nil, err
	}
	defer e.Release()
	return resolveSnap(ctx, e, objects, s.workers, s.noDedup)
}

// resolveSnap resolves objects against one pinned session epoch: the body
// shared by session.BulkResolve and the Store's cached and streaming read
// paths (which pin one epoch across several batches).
func resolveSnap(ctx context.Context, e *serve.Epoch[*sessionSnap], objects map[string]map[string]string, workers int, noDedup bool) (*BulkResolution, error) {
	snap := e.Value()
	conv := make(map[string]map[int]tn.Value, len(objects))
	for key, bs := range objects {
		m := make(map[int]tn.Value, len(snap.rootNode))
		for user, v := range bs {
			x := snap.view.UserID(user)
			if x < 0 {
				return nil, fmt.Errorf("%w: %q in object %q", ErrUnknownUser, user, key)
			}
			root, ok := snap.rootNode[x]
			if !ok {
				return nil, fmt.Errorf("trustmap: user %q in object %q is not a session root; declare it in ExtraRoots or give it a belief", user, key)
			}
			m[root] = tn.Value(v)
		}
		for x, root := range snap.rootNode {
			if _, ok := m[root]; ok {
				continue
			}
			if v, ok := snap.defaults[x]; ok {
				m[root] = v
			} else {
				return nil, fmt.Errorf("trustmap: object %q misses a belief for root user %q (assumption ii)", key, snap.view.Name(x))
			}
		}
		conv[key] = m
	}
	res, err := snap.comp.Resolve(ctx, conv, engine.Options{Workers: workers, DisableDedup: noDedup})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return &BulkResolution{src: snap.view, keys: keys, eng: res, binIDs: snap.binIDs, epoch: e.Seq()}, nil
}

// addObjectRoots registers users whose beliefs will vary per object after
// compilation, like sessionOptions.ExtraRoots but on a live session: the
// Store's PutBelief/PutObject path. Users that are already roots (declared
// extras or belief holders) only gain the extra-root protection — their
// carrier survives a later RemoveBelief — without a replan; genuinely new
// roots change the plan and publish a rebuilt epoch. It reports the names
// that were not extra roots before the call, in argument order, so
// Store.AddRoots can log exactly the effective registrations.
func (s *session) addObjectRoots(names ...string) (added []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncCheck()
	for _, name := range names {
		x := s.net.inner.AddUser(name)
		if s.isExtraRoot(x) {
			continue
		}
		s.addExtraRootLocked(x)
		added = append(added, name)
		if _, isRoot := s.rootNode[x]; !isRoot {
			s.needRebuild = true // the plan gains a root: replan required
		}
	}
	// AddUser on unseen names bumps the network version; claim it as an
	// in-session mutation so readers do not mistake it for external skew.
	s.version.Store(s.net.inner.Version())
	if s.needRebuild {
		return added, s.publishLocked()
	}
	return added, nil
}

// ObjectResolution is the single-object view returned by session.Resolve.
type ObjectResolution struct {
	bulk *BulkResolution
}

// Resolve resolves one object's root beliefs against the currently
// published epoch: the mutate-then-resolve fast path. beliefs may be nil
// when every root has a network-level belief.
func (s *session) Resolve(ctx context.Context, beliefs map[string]string) (*ObjectResolution, error) {
	r, err := s.BulkResolve(ctx, map[string]map[string]string{"object": beliefs})
	if err != nil {
		return nil, err
	}
	return &ObjectResolution{bulk: r}, nil
}

// Possible returns the values the user holds in at least one stable
// solution for the resolved object, sorted.
func (o *ObjectResolution) Possible(user string) []string {
	return o.bulk.Possible(user, "object")
}

// Certain returns the value the user holds in every stable solution of
// the resolved object. ok is false when there is none.
func (o *ObjectResolution) Certain(user string) (string, bool) {
	return o.bulk.Certain(user, "object")
}

// Lookup is Possible and Certain with lookup failures made explicit: an
// unknown user answers an error wrapping ErrUnknownUser.
func (o *ObjectResolution) Lookup(user string) (possible []string, certain string, err error) {
	return o.bulk.Lookup(user, "object")
}

// Epoch returns the publication generation that served the resolve.
func (o *ObjectResolution) Epoch() uint64 { return o.bulk.Epoch() }
