package trustmap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// sessionRoots lists the users whose beliefs vary per object for a
// session built over n with the given extra roots.
func sessionRoots(n *Network, extras []string) []string {
	seen := map[string]bool{}
	var out []string
	for x := 0; x < n.inner.NumUsers(); x++ {
		if n.inner.HasExplicit(x) {
			name := n.inner.Name(x)
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	for _, name := range extras {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

// sessionObjects builds deterministic per-object beliefs over the roots.
func sessionObjects(rng *rand.Rand, roots []string, count int) map[string]map[string]string {
	out := make(map[string]map[string]string, count)
	for i := 0; i < count; i++ {
		bs := make(map[string]string, len(roots))
		for _, r := range roots {
			bs[r] = fmt.Sprintf("v%d", rng.Intn(3))
		}
		out[fmt.Sprintf("obj%d", i)] = bs
	}
	return out
}

// assertSessionMatchesFresh compares the session's bulk resolution with a
// from-scratch bulkResolveWith on the same network and objects, for every
// user and object.
func assertSessionMatchesFresh(t *testing.T, label string, n *Network, s *session, objects map[string]map[string]string) {
	t.Helper()
	got, err := s.BulkResolve(context.Background(), objects)
	if err != nil {
		t.Fatalf("%s: session resolve: %v", label, err)
	}
	want, err := n.bulkResolveWith(context.Background(), objects, bulkOptions{Workers: 2})
	if err != nil {
		t.Fatalf("%s: fresh resolve: %v", label, err)
	}
	for _, k := range got.Keys() {
		for _, u := range n.Users() {
			g, w := got.Possible(u, k), want.Possible(u, k)
			if len(g) != len(w) {
				t.Fatalf("%s: poss(%s, %s): session %v vs fresh %v", label, u, k, g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%s: poss(%s, %s): session %v vs fresh %v", label, u, k, g, w)
				}
			}
			gc, gok := got.Certain(u, k)
			wc, wok := want.Certain(u, k)
			if gc != wc || gok != wok {
				t.Fatalf("%s: cert(%s, %s): session %q,%v vs fresh %q,%v", label, u, k, gc, gok, wc, wok)
			}
		}
	}
}

// TestSessionLifecycle walks the documented lifecycle: compile once,
// resolve many, mutate through the session, resolve again from the
// incrementally re-planned artifact.
func TestSessionLifecycle(t *testing.T) {
	n := New()
	n.AddTrust("alice", "bob", 100)
	n.AddTrust("alice", "carol", 50)
	n.AddTrust("bob", "alice", 80)
	n.AddTrust("dave", "alice", 10)
	n.SetBelief("bob", "fish")
	n.SetBelief("carol", "knot")
	// MaxDirtyFraction 1 keeps even this tiny demo network on the
	// incremental path (the default threshold would recompile it whole).
	s, err := n.newSession(sessionOptions{Workers: 2, MaxDirtyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	objects := map[string]map[string]string{
		"glyph1": {"bob": "fish", "carol": "knot"},
		"glyph2": {"bob": "cow", "carol": "cow"},
	}
	assertSessionMatchesFresh(t, "initial", n, s, objects)

	// Mutate through the session: revoke, re-prioritize, update a belief.
	if ok, err := s.RemoveTrust("alice", "bob"); err != nil || !ok {
		t.Fatalf("existing trust not removed: ok=%v err=%v", ok, err)
	}
	assertSessionMatchesFresh(t, "after revoke", n, s, objects)
	if ok, err := s.UpdateTrust("alice", "carol", 120); err != nil || !ok {
		t.Fatalf("existing trust not updated: ok=%v err=%v", ok, err)
	}
	if err := s.AddTrust("alice", "bob", 60); err != nil {
		t.Fatal(err)
	}
	assertSessionMatchesFresh(t, "after re-add", n, s, objects)
	if err := s.SetBelief("carol", "jar"); err != nil {
		t.Fatal(err)
	}
	// carol's new default applies when an object omits her.
	r, err := s.Resolve(context.Background(), map[string]string{"bob": "fish"})
	if err != nil {
		t.Fatal(err)
	}
	if poss := r.Possible("carol"); len(poss) != 1 || poss[0] != "jar" {
		t.Fatalf("poss(carol)=%v want [jar] (network default)", poss)
	}
	st := s.Stats()
	if st.Compiles != 1 {
		t.Errorf("session recompiled from scratch %d times, want 1 (all mutations incremental)", st.Compiles)
	}
	if st.IncrementalApplies == 0 {
		t.Error("no incremental applies recorded")
	}
}

// TestSessionRandomizedParityWithFresh is the heavyweight translation
// check: random facade networks (non-binary, cascades, hoisting) mutated
// through the session must resolve identically to a from-scratch
// bulkResolveWith at every checkpoint.
func TestSessionRandomizedParityWithFresh(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := New()
			nUsers := 6 + rng.Intn(10)
			name := func(i int) string { return fmt.Sprintf("u%d", i) }
			for i := 0; i < nUsers; i++ {
				n.AddUser(name(i))
			}
			for i := 0; i < nUsers*2; i++ {
				a, b := rng.Intn(nUsers), rng.Intn(nUsers)
				if a != b {
					n.AddTrust(name(a), name(b), 1+rng.Intn(5))
				}
			}
			n.SetBelief(name(rng.Intn(nUsers)), "v0")
			extras := []string{name(rng.Intn(nUsers))}
			s, err := n.newSession(sessionOptions{Workers: 1 + rng.Intn(4), ExtraRoots: extras})
			if err != nil {
				// Random graphs can violate Validate (duplicate trust from
				// the generator); skip those seeds.
				t.Skipf("seed network invalid: %v", err)
			}
			for batch := 0; batch < 15; batch++ {
				for i, k := 0, 1+rng.Intn(3); i < k; i++ {
					switch rng.Intn(5) {
					case 0:
						a, b := rng.Intn(nUsers), rng.Intn(nUsers)
						if a != b {
							s.AddTrust(name(a), name(b), 1+rng.Intn(5)) // dup errors are no-ops
						}
					case 1:
						s.RemoveTrust(name(rng.Intn(nUsers)), name(rng.Intn(nUsers)))
					case 2:
						s.UpdateTrust(name(rng.Intn(nUsers)), name(rng.Intn(nUsers)), 1+rng.Intn(5))
					case 3:
						if err := s.SetBelief(name(rng.Intn(nUsers)), fmt.Sprintf("v%d", rng.Intn(3))); err != nil {
							t.Fatal(err)
						}
					case 4:
						s.RemoveBelief(name(rng.Intn(nUsers)))
					}
				}
				roots := sessionRoots(n, extras)
				if len(roots) == 0 {
					if err := s.SetBelief(name(0), "v0"); err != nil {
						t.Fatal(err)
					}
					roots = sessionRoots(n, extras)
				}
				objects := sessionObjects(rng, roots, 3)
				assertSessionMatchesFresh(t, fmt.Sprintf("batch %d", batch), n, s, objects)
			}
		})
	}
}

// TestSessionGrowsUsers adds brand-new users through the session after
// compilation: binarized IDs diverge from original IDs and results must
// still map back correctly.
func TestSessionGrowsUsers(t *testing.T) {
	n := New()
	n.AddTrust("reader", "curatorA", 10) // curatorA gets a hoisted helper
	n.SetBelief("curatorA", "fish")
	s, err := n.newSession(sessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTrust("reader", "newbie", 20); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBelief("newbie", "jar"); err != nil {
		t.Fatal(err)
	}
	objects := map[string]map[string]string{
		"o1": {"curatorA": "fish", "newbie": "jar"},
		"o2": {"curatorA": "cow", "newbie": "cow"},
	}
	assertSessionMatchesFresh(t, "grown", n, s, objects)
	r, err := s.Resolve(context.Background(), nil) // defaults for both roots
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Certain("reader"); !ok || v != "jar" {
		t.Fatalf("cert(reader)=%q,%v want jar (newbie outranks curatorA)", v, ok)
	}
}

// TestSessionExternalMutationTriggersRebuild mutates the network behind
// the session's back; the next resolve must detect the version skew and
// rebuild instead of serving stale results.
func TestSessionExternalMutationTriggersRebuild(t *testing.T) {
	n := New()
	n.AddTrust("a", "b", 10)
	n.SetBelief("b", "v1")
	s, err := n.newSession(sessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n.AddTrust("a", "c", 20) // behind the session's back
	n.SetBelief("c", "v2")
	assertSessionMatchesFresh(t, "external", n, s, map[string]map[string]string{
		"k": {"b": "x", "c": "y"},
	})
	if s.Stats().Compiles < 2 {
		t.Errorf("compiles=%d want >= 2 (external mutation forces rebuild)", s.Stats().Compiles)
	}
}

// TestSessionValueOnlyUpdateIsFree checks that changing a belief's value
// keeps the whole plan (no incremental apply, no recompile).
func TestSessionValueOnlyUpdateIsFree(t *testing.T) {
	n := New()
	n.AddTrust("a", "b", 10)
	n.SetBelief("b", "v1")
	s, err := n.newSession(sessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBelief("b", "v2"); err != nil {
		t.Fatal(err)
	}
	r, err := s.Resolve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Certain("a"); v != "v2" {
		t.Fatalf("cert(a)=%q want v2", v)
	}
	st := s.Stats()
	if st.Compiles != 1 || st.IncrementalApplies != 0 || st.ValueOnlyUpdates != 1 {
		t.Errorf("stats=%+v want 1 compile, 0 applies, 1 value-only update", st)
	}
}

// TestSessionRejectsMisuse covers the session's error paths.
func TestSessionRejectsMisuse(t *testing.T) {
	n := New()
	n.AddTrust("a", "b", 10)
	n.SetBelief("b", "v")
	s, err := n.newSession(sessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTrust("a", "a", 5); err == nil {
		t.Error("self-trust must be rejected")
	}
	if err := s.AddTrust("a", "b", 5); err == nil {
		t.Error("duplicate trust must be rejected")
	}
	if err := s.SetBelief("a", ""); err == nil {
		t.Error("empty belief value must be rejected")
	}
	if ok, err := s.RemoveTrust("a", "nobody"); ok || err != nil {
		t.Errorf("unknown users must report false: ok=%v err=%v", ok, err)
	}
	if ok, err := s.UpdateTrust("nobody", "b", 1); ok || err != nil {
		t.Errorf("unknown users must report false: ok=%v err=%v", ok, err)
	}
	if _, err := s.BulkResolve(context.Background(), map[string]map[string]string{
		"k": {"ghost": "v"},
	}); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown object user: err=%v want ErrUnknownUser", err)
	}
	if _, err := s.BulkResolve(context.Background(), map[string]map[string]string{
		"k": {"a": "v"}, // a is not a root
	}); err == nil {
		t.Error("non-root object user must be rejected")
	}
}

// TestBulkResolutionLookupSentinels covers the satellite fix: unknown
// users and objects answer with explicit errors instead of silent empties.
func TestBulkResolutionLookupSentinels(t *testing.T) {
	n := New()
	n.AddTrust("alice", "bob", 100)
	n.SetBelief("bob", "fish")
	for _, useSQL := range []bool{false, true} {
		r, err := n.bulkResolveWith(context.Background(), map[string]map[string]string{
			"obj1": {"bob": "fish"},
		}, bulkOptions{UseSQL: useSQL})
		if err != nil {
			t.Fatal(err)
		}
		label := map[bool]string{false: "engine", true: "sql"}[useSQL]
		if _, _, err := r.Lookup("ghost", "obj1"); !errors.Is(err, ErrUnknownUser) {
			t.Errorf("%s: unknown user: err=%v want ErrUnknownUser", label, err)
		}
		if _, _, err := r.Lookup("alice", "obj9"); !errors.Is(err, ErrUnknownObject) {
			t.Errorf("%s: unknown object: err=%v want ErrUnknownObject", label, err)
		}
		poss, cert, err := r.Lookup("alice", "obj1")
		if err != nil || len(poss) != 1 || poss[0] != "fish" || cert != "fish" {
			t.Errorf("%s: lookup(alice, obj1)=%v,%q,%v want [fish],fish,nil", label, poss, cert, err)
		}
		// The silent paths remain, documented.
		if got := r.Possible("ghost", "obj1"); got != nil {
			t.Errorf("%s: Possible(ghost)=%v want nil", label, got)
		}
		if _, ok := r.Certain("alice", "obj9"); ok {
			t.Errorf("%s: Certain on unknown object must report ok=false", label)
		}
	}
}

// TestFacadeRemoveUpdateTrust exercises the new facade wrappers through a
// full resolve.
func TestFacadeRemoveUpdateTrust(t *testing.T) {
	n := New()
	n.AddTrust("alice", "bob", 100)
	n.AddTrust("alice", "carol", 50)
	n.SetBelief("bob", "fish")
	n.SetBelief("carol", "knot")
	r, _ := n.Resolve()
	if v, _ := r.Certain("alice"); v != "fish" {
		t.Fatalf("precondition: cert(alice)=%q want fish", v)
	}
	if !n.UpdateTrust("alice", "carol", 200) {
		t.Fatal("update failed")
	}
	r, _ = n.Resolve()
	if v, _ := r.Certain("alice"); v != "knot" {
		t.Fatalf("after update: cert(alice)=%q want knot", v)
	}
	if !n.RemoveTrust("alice", "carol") {
		t.Fatal("remove failed")
	}
	r, _ = n.Resolve()
	if v, _ := r.Certain("alice"); v != "fish" {
		t.Fatalf("after revoke: cert(alice)=%q want fish (bob promoted)", v)
	}
	if n.RemoveTrust("alice", "carol") || n.RemoveTrust("ghost", "bob") {
		t.Error("absent mappings must report false")
	}
}
