package trustmap

// Fault-injection acceptance tests: prove the poison-on-WAL-failure and
// recovery contracts WITHOUT killing the process. faultinject arms the
// exact I/O boundaries (wal fsync, wal write, snapshot write) the crash
// harness can only hit probabilistically, so each failure mode gets a
// deterministic test:
//
//   - fsync failure poisons the store with ErrPoisoned (distinct from
//     ErrClosed), in-flight reads on the pinned epoch still complete, and
//     a reopen recovers to oracle parity;
//   - a short write physically tears the WAL tail, which the reopen heals
//     (DiscardedBytes > 0) back to the pre-fault state;
//   - a snapshot-write failure fails the Checkpoint but leaves the store
//     healthy — memory and WAL still agree.
//
// These tests arm process-global fault points and must not use
// t.Parallel().

import (
	"context"
	"errors"
	"iter"
	"reflect"
	"testing"
	"time"

	"trustmap/internal/faultinject"
)

// TestFaultFsyncPoisonsStore: a WAL fsync failure after the in-memory
// apply poisons the store — ErrPoisoned on the failing call and every
// later mutation — while an in-flight pinned-epoch read completes and a
// reopen recovers to the exact post-apply state (the record reached the
// file; only its durability ack failed).
func TestFaultFsyncPoisonsStore(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustOpenStore(t, dir, WithDurability(DurabilityAlways))
	lsn := seedDurable(t, s)
	ctx := context.Background()

	// Start an in-flight streaming read and consume one row before the
	// fault: it pins the pre-fault epoch and must finish after the poison.
	next, stop := iterPull2(s.Resolved(ctx))
	defer stop()
	rows := 0
	if _, err, ok := next(); ok {
		if err != nil {
			t.Fatalf("in-flight read, first row: %v", err)
		}
		rows++
	}

	faultinject.Enable(faultinject.WALSync, faultinject.FailN(0, 1, nil))
	err := s.PutBelief(ctx, "carol", "glyph1", "knot")
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("mutation under fsync fault: err = %v, want ErrPoisoned", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("poison must be distinct from ErrClosed: %v", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("poison must carry the injected cause: %v", err)
	}

	// Poison is sticky: later mutations fail the same way, even with the
	// fault disarmed and even for a different mutator.
	faultinject.Reset()
	if err := s.SetTrust(ctx, "alice", "frank", 30); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("mutation after poison: err = %v, want ErrPoisoned", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Sync after poison: err = %v, want ErrPoisoned", err)
	}
	if _, err := s.Checkpoint(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Checkpoint after poison: err = %v, want ErrPoisoned", err)
	}

	// The in-flight read completes over its pinned epoch.
	for {
		_, err, ok := next()
		if !ok {
			break
		}
		if err != nil {
			t.Fatalf("in-flight read after poison: %v", err)
		}
		rows++
	}
	if rows != s.NumObjects() {
		t.Fatalf("in-flight read saw %d rows, want %d", rows, s.NumObjects())
	}

	// Fresh reads keep working too: the poisoned apply already published,
	// so they see the post-apply state — which is the recovery oracle.
	oracle := resolvedState(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close of poisoned store: %v", err)
	}

	// The failed op's record reached the WAL file (only the fsync ack was
	// injected away), so recovery lands on lsn+1 with the op applied.
	r := mustOpenStore(t, dir)
	defer r.Close()
	if got := r.LSN(); got != lsn+1 {
		t.Errorf("recovered LSN = %d, want %d", got, lsn+1)
	}
	if got := resolvedState(t, r); !reflect.DeepEqual(got, oracle) {
		t.Errorf("recovered state diverges from oracle:\n got %v\nwant %v", got, oracle)
	}
	if err := r.PutBelief(ctx, "carol", "glyph1", "arrow"); err != nil {
		t.Errorf("reopened store refuses mutations: %v", err)
	}
}

// TestFaultShortWriteTearsAndHeals: an injected short write leaves a
// physically torn WAL tail; the mutation poisons (memory leads the log)
// and the reopen heals the tear — DiscardedBytes > 0 — recovering the
// pre-fault state exactly.
func TestFaultShortWriteTearsAndHeals(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustOpenStore(t, dir, WithDurability(DurabilityAlways))
	lsn := seedDurable(t, s)
	ctx := context.Background()
	oracle := resolvedState(t, s)

	faultinject.Enable(faultinject.WALAppend,
		faultinject.FailN(0, 1, &faultinject.ShortWriteError{Bytes: 5}))
	err := s.PutBelief(ctx, "carol", "glyph1", "knot")
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("mutation under short-write fault: err = %v, want ErrPoisoned", err)
	}
	faultinject.Reset()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpenStore(t, dir)
	defer r.Close()
	ds := r.Durability()
	if ds.DiscardedBytes == 0 {
		t.Error("DiscardedBytes = 0, want a healed torn tail")
	}
	if got := r.LSN(); got != lsn {
		t.Errorf("recovered LSN = %d, want pre-fault %d", got, lsn)
	}
	if got := resolvedState(t, r); !reflect.DeepEqual(got, oracle) {
		t.Errorf("recovered state diverges from pre-fault oracle:\n got %v\nwant %v", got, oracle)
	}
}

// TestFaultSnapshotWriteKeepsStoreHealthy: a failed snapshot write fails
// the Checkpoint with a non-poison error; mutations keep working and the
// next (un-faulted) Checkpoint succeeds.
func TestFaultSnapshotWriteKeepsStoreHealthy(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustOpenStore(t, dir)
	defer s.Close()
	seedDurable(t, s)
	ctx := context.Background()

	for _, p := range []faultinject.Point{faultinject.SnapshotWrite, faultinject.SnapshotSync} {
		faultinject.Enable(p, faultinject.Always(nil))
		_, err := s.Checkpoint()
		faultinject.Disable(p)
		if err == nil {
			t.Fatalf("%s: Checkpoint succeeded under fault", p)
		}
		if errors.Is(err, ErrPoisoned) {
			t.Fatalf("%s: snapshot failure must not poison: %v", p, err)
		}
		if err := s.PutBelief(ctx, "carol", "glyph1", "knot"); err != nil {
			t.Fatalf("%s: mutation after failed checkpoint: %v", p, err)
		}
	}
	info, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("un-faulted Checkpoint: %v", err)
	}
	if info.LSN != s.LSN() {
		t.Fatalf("checkpoint LSN = %d, want %d", info.LSN, s.LSN())
	}
}

// TestFaultSlowSyncOnlyDelays: a slow-I/O injector delays but never
// fails; counters and state are unaffected.
func TestFaultSlowSyncOnlyDelays(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s := mustOpenStore(t, dir, WithDurability(DurabilityAlways))
	defer s.Close()
	faultinject.Enable(faultinject.WALSync, faultinject.Slow(time.Millisecond))
	lsn := seedDurable(t, s)
	if got := s.DurableLSN(); got != lsn {
		t.Fatalf("DurableLSN = %d, want %d", got, lsn)
	}
}

// iterPull2 adapts iter.Seq2 to a pull iterator (wrapper around
// iter.Pull2 kept local so the test reads top-down).
func iterPull2[K, V any](seq func(func(K, V) bool)) (next func() (K, V, bool), stop func()) {
	return iter.Pull2(iter.Seq2[K, V](seq))
}
