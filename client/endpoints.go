package client

// Multi-endpoint routing: one Client over a primary and its read
// replicas. Three routes cover every method:
//
//   - routeBase: always the first endpoint (the New base URL). Admin
//     and diagnostic calls — Healthz, Stats, Checkpoint, Promote —
//     target the server the caller named, never a load-balanced pick.
//   - routePrimary: the believed primary. Mutations land here; a 421
//     Misdirected Request from a replica re-pins the belief to the
//     primary named in its wire.PrimaryHeader and the call is re-sent
//     immediately (the replica did no work, so this is always safe,
//     even for Mutate and even without WithRetry). Transport failures
//     advance the belief to the next endpoint, so an armed RetryPolicy
//     walks the fleet until it finds the new primary.
//   - routeRead: round-robin over endpoints believed healthy, skipping
//     ones that recently failed at the transport level or answered 503.
//     When every endpoint is marked down the marks reset (a full outage
//     must not pin the client to one dead pick), and every
//     reprobeEvery-th pick ignores the marks so a recovered endpoint
//     rejoins the rotation without waiting for the rest to fail.
//
// With a single endpoint every route degenerates to "the one server"
// and the client behaves exactly as before WithEndpoints existed.

import (
	"context"
	"errors"
	"net/http"
	"strings"

	"trustmap/wire"
)

// reprobeEvery is the read-pick interval at which down-marks are
// ignored, bounding how long a recovered endpoint sits out.
const reprobeEvery = 64

// routing selects which endpoint a request targets; see the package
// comment above.
type routing int

const (
	routeBase routing = iota
	routePrimary
	routeRead
)

// maxPrimaryHops bounds 421-redirect following per logical call: one
// hop reaches the named primary, a second tolerates a promote racing
// the first, and beyond that the fleet's own view is inconsistent.
const maxPrimaryHops = 2

// endpoint is one server in the client's fleet, with its health mark
// and counters. Guarded by Client.emu.
type endpoint struct {
	url      string
	attempts uint64
	failures uint64
	down     bool
}

// WithEndpoints adds failover/read endpoints after the New base URL.
// Order matters: it is the failover rotation. Duplicates of the base or
// of each other are dropped.
func WithEndpoints(urls ...string) Option {
	return func(c *Client) { c.extra = append(c.extra, urls...) }
}

// initEndpoints builds the endpoint set: the base URL first, then the
// WithEndpoints additions, deduplicated.
func (c *Client) initEndpoints() {
	seen := map[string]bool{c.base: true}
	c.endpoints = []*endpoint{{url: c.base}}
	for _, u := range c.extra {
		u = strings.TrimRight(u, "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		c.endpoints = append(c.endpoints, &endpoint{url: u})
	}
}

// EndpointStats is one endpoint's routing state, for operational
// introspection (Endpoints).
type EndpointStats struct {
	URL      string // base URL
	Attempts uint64 // requests sent
	Failures uint64 // transport failures and 503s
	Healthy  bool   // not currently marked down
	Primary  bool   // the believed primary (mutation target)
}

// Endpoints snapshots the per-endpoint attempt/failure counters and
// health marks, in rotation order (the New base URL first).
func (c *Client) Endpoints() []EndpointStats {
	c.emu.Lock()
	defer c.emu.Unlock()
	out := make([]EndpointStats, len(c.endpoints))
	for i, ep := range c.endpoints {
		out[i] = EndpointStats{
			URL: ep.url, Attempts: ep.attempts, Failures: ep.failures,
			Healthy: !ep.down, Primary: i == c.primary,
		}
	}
	return out
}

// pickEndpoint chooses the target for one attempt and counts it.
func (c *Client) pickEndpoint(route routing) *endpoint {
	c.emu.Lock()
	defer c.emu.Unlock()
	idx := 0
	switch route {
	case routePrimary:
		idx = c.primary
	case routeRead:
		if len(c.endpoints) > 1 {
			idx = c.pickReadLocked()
		}
	}
	ep := c.endpoints[idx]
	ep.attempts++
	return ep
}

// pickReadLocked advances the read rotation to the next healthy
// endpoint. Every reprobeEvery-th pick ignores health marks, and a
// fully-down fleet resets them: both bound how stale a down-mark stays.
func (c *Client) pickReadLocked() int {
	c.picks++
	probe := c.picks%reprobeEvery == 0
	n := len(c.endpoints)
	for i := 0; i < n; i++ {
		idx := (c.cursor + i) % n
		if probe || !c.endpoints[idx].down {
			c.cursor = (idx + 1) % n
			return idx
		}
	}
	for _, ep := range c.endpoints {
		ep.down = false
	}
	idx := c.cursor % n
	c.cursor = (idx + 1) % n
	return idx
}

// recordResult folds one attempt's outcome into the routing state: any
// HTTP answer marks the endpoint healthy (even an error status — the
// server is up and definitive); a transport failure or 503 marks it
// down, and for the believed primary also advances the belief so the
// next mutation attempt tries the following endpoint.
func (c *Client) recordResult(ep *endpoint, route routing, err error) {
	down := false
	if err != nil {
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode == http.StatusServiceUnavailable {
			down = true
		}
	}
	c.emu.Lock()
	defer c.emu.Unlock()
	ep.down = down
	if !down {
		return
	}
	ep.failures++
	if route == routePrimary && len(c.endpoints) > 1 && c.endpoints[c.primary] == ep {
		c.primary = (c.primary + 1) % len(c.endpoints)
	}
}

// repinPrimary points the mutation route at the server a 421 named,
// adding it to the rotation if the fleet list did not include it.
func (c *Client) repinPrimary(primaryURL string) {
	u := strings.TrimRight(primaryURL, "/")
	if u == "" {
		return
	}
	c.emu.Lock()
	defer c.emu.Unlock()
	for i, ep := range c.endpoints {
		if ep.url == u {
			c.primary = i
			ep.down = false
			return
		}
	}
	c.endpoints = append(c.endpoints, &endpoint{url: u})
	c.primary = len(c.endpoints) - 1
}

// exchange is one logical attempt: pick an endpoint for the route, run
// the HTTP round trip, fold the outcome into the routing state, and
// transparently follow 421 primary redirects (bounded by
// maxPrimaryHops — the replica that answered did no work).
func (c *Client) exchange(ctx context.Context, route routing, method, path string, raw []byte, out any) error {
	for hop := 0; ; hop++ {
		ep := c.pickEndpoint(route)
		err := c.roundTrip(ctx, ep.url, method, path, raw, out)
		c.recordResult(ep, route, err)
		if err == nil || hop >= maxPrimaryHops {
			return err
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusMisdirectedRequest || ae.Primary == "" {
			return err
		}
		c.repinPrimary(ae.Primary)
	}
}

// IsMisdirected reports whether err is an *APIError with status 421: a
// mutation reached a read replica. The replica did no work; the primary
// it named is in APIError.Primary. A multi-endpoint client follows this
// redirect itself, so callers normally only see it when the redirect
// limit was exhausted by an inconsistent fleet.
func IsMisdirected(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusMisdirectedRequest
}

// Promote asks the server at the client's base URL — never a
// load-balanced pick — to leave replica mode and accept writes (POST
// /v1/admin/promote). Idempotent: promoting a primary answers with
// WasReplica false. Point a client at the replica being promoted; see
// the replication runbook in the README.
func (c *Client) Promote(ctx context.Context) (wire.PromoteResponse, error) {
	var out wire.PromoteResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/promote", nil, &out, routeBase, true)
	return out, err
}
