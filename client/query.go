package client

// The typed surface of POST /v1/query: Query sends a wire.Query pattern
// and wraps the positional response rows in QueryRow accessors, so
// callers read columns by name and kind instead of indexing []any.

import (
	"context"
	"net/http"

	"trustmap/wire"
)

// QueryResult is one executed query: the output columns, the rows in
// server order, and the server's execution stats. Truncated reports the
// server capped Rows at its batch limit (Stats.RowsEmitted still counts
// the full result).
type QueryResult struct {
	Epoch     uint64
	LSN       uint64
	Columns   []string
	Rows      []QueryRow
	Truncated bool
	Stats     wire.QueryStats

	index map[string]int
}

// QueryRow is one result row with by-name typed access.
type QueryRow struct {
	index map[string]int
	vals  []any
}

// Value returns the raw column value (string, bool, float64 — JSON
// numbers — or a string slice); ok is false for unknown columns.
func (r QueryRow) Value(col string) (any, bool) {
	i, ok := r.index[col]
	if !ok || i >= len(r.vals) {
		return nil, false
	}
	return r.vals[i], true
}

// String reads a string column.
func (r QueryRow) String(col string) (string, bool) {
	v, ok := r.Value(col)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// Bool reads a boolean column.
func (r QueryRow) Bool(col string) (bool, bool) {
	v, ok := r.Value(col)
	if !ok {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}

// Float reads a numeric column (counts, sums, averages, rates).
func (r QueryRow) Float(col string) (float64, bool) {
	v, ok := r.Value(col)
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}

// Int reads a numeric column as an integer (truncating).
func (r QueryRow) Int(col string) (int64, bool) {
	f, ok := r.Float(col)
	return int64(f), ok
}

// Strings reads a string-list column (possible).
func (r QueryRow) Strings(col string) ([]string, bool) {
	v, ok := r.Value(col)
	if !ok {
		return nil, false
	}
	switch vs := v.(type) {
	case []string:
		return vs, true
	case []any: // the JSON decoding of a string array
		out := make([]string, 0, len(vs))
		for _, e := range vs {
			s, ok := e.(string)
			if !ok {
				return nil, false
			}
			out = append(out, s)
		}
		return out, true
	}
	return nil, false
}

// Query executes one wire.Query pattern (POST /v1/query) and returns
// the typed result. Queries are reads: on a failover client they route
// like resolves, and they are always safe to retry.
func (c *Client) Query(ctx context.Context, q wire.Query) (*QueryResult, error) {
	var out wire.QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", q, &out, routeRead, true); err != nil {
		return nil, err
	}
	res := &QueryResult{
		Epoch:     out.Epoch,
		LSN:       out.LSN,
		Columns:   out.Columns,
		Truncated: out.Truncated,
		Stats:     out.Stats,
		index:     make(map[string]int, len(out.Columns)),
	}
	for i, col := range out.Columns {
		res.index[col] = i
	}
	res.Rows = make([]QueryRow, len(out.Rows))
	for i, vals := range out.Rows {
		res.Rows[i] = QueryRow{index: res.index, vals: vals}
	}
	return res, nil
}
