package client

// Retry-policy tests against a scripted fault server: a handler that
// answers a fixed sequence of failures before succeeding, so every retry
// decision (which statuses retry, how idempotency gates them, how
// Retry-After and jitter shape the schedule) is asserted deterministically.
// The sleep hook is swapped out, so no test actually waits.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"trustmap/wire"
)

// faultStep is one scripted response: a status (with optional Retry-After
// seconds) for failures, or 0 meaning answer 200 with an empty JSON body.
type faultStep struct {
	status     int
	retryAfter int
}

// faultServer answers its script in order, then keeps succeeding. It
// records every request's method+path.
type faultServer struct {
	mu     sync.Mutex
	script []faultStep
	calls  []string
}

func (f *faultServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.calls = append(f.calls, r.Method+" "+r.URL.Path)
	var st faultStep
	if len(f.script) > 0 {
		st, f.script = f.script[0], f.script[1:]
	}
	f.mu.Unlock()
	if st.status == 0 {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "epoch": 1, "applied": 1})
		return
	}
	if st.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(st.retryAfter))
	}
	w.WriteHeader(st.status)
	json.NewEncoder(w).Encode(wire.ErrorResponse{Message: http.StatusText(st.status)})
}

func (f *faultServer) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// retryClient builds a client against a scripted server, with the sleep
// hook recording the schedule instead of waiting.
func retryClient(t *testing.T, script []faultStep, opts ...Option) (*Client, *faultServer, *[]time.Duration) {
	t.Helper()
	fs := &faultServer{script: script}
	srv := httptest.NewServer(fs)
	t.Cleanup(srv.Close)
	c := New(srv.URL, opts...)
	sleeps := &[]time.Duration{}
	c.sleep = func(_ context.Context, d time.Duration) error {
		*sleeps = append(*sleeps, d)
		return nil
	}
	return c, fs, sleeps
}

func TestRetryIdempotentOn503(t *testing.T) {
	c, fs, sleeps := retryClient(t,
		[]faultStep{{status: 503}, {status: 503}},
		WithRetry(RetryPolicy{}))
	h, err := c.Healthz(context.Background())
	if err != nil || !h.OK {
		t.Fatalf("Healthz = %+v, %v; want success after retries", h, err)
	}
	if fs.count() != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", fs.count())
	}
	if len(*sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(*sleeps))
	}
}

func TestRetryExhaustionSurfacesLastError(t *testing.T) {
	c, fs, _ := retryClient(t,
		[]faultStep{{status: 503}, {status: 503}, {status: 503}, {status: 503}},
		WithRetry(RetryPolicy{MaxAttempts: 3}))
	_, err := c.Healthz(context.Background())
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want 503 APIError after exhaustion", err)
	}
	if fs.count() != 3 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", fs.count())
	}
}

func TestNoRetryWithoutPolicy(t *testing.T) {
	c, fs, _ := retryClient(t, []faultStep{{status: 503}})
	if _, err := c.Healthz(context.Background()); !IsUnavailable(err) {
		t.Fatalf("err = %v, want 503 surfaced immediately", err)
	}
	if fs.count() != 1 {
		t.Fatalf("server saw %d requests, want 1 (no policy armed)", fs.count())
	}
}

func TestNoRetryOnDefinitiveStatuses(t *testing.T) {
	for _, status := range []int{400, 404, 405, 413, 500} {
		c, fs, _ := retryClient(t, []faultStep{{status: status}},
			WithRetry(RetryPolicy{}))
		_, err := c.Healthz(context.Background())
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != status {
			t.Fatalf("status %d: err = %v", status, err)
		}
		if fs.count() != 1 {
			t.Fatalf("status %d: server saw %d requests, want 1", status, fs.count())
		}
	}
}

// TestRetryMutationGating: a shed (429) retries Mutate — the server did
// no work — but a 503 does not without the explicit opt-in.
func TestRetryMutationGating(t *testing.T) {
	ops := []wire.Op{{Op: wire.OpSetTrust, Truster: "a", Trusted: "b", Priority: 1}}

	c, fs, _ := retryClient(t, []faultStep{{status: 429, retryAfter: 1}},
		WithRetry(RetryPolicy{}))
	if _, err := c.Mutate(context.Background(), ops); err != nil {
		t.Fatalf("Mutate after shed: %v, want retried success", err)
	}
	if fs.count() != 2 {
		t.Fatalf("shed: server saw %d requests, want 2", fs.count())
	}

	c, fs, _ = retryClient(t, []faultStep{{status: 503}},
		WithRetry(RetryPolicy{}))
	if _, err := c.Mutate(context.Background(), ops); !IsUnavailable(err) {
		t.Fatalf("Mutate on 503 without opt-in: %v, want immediate 503", err)
	}
	if fs.count() != 1 {
		t.Fatalf("503 default: server saw %d requests, want 1", fs.count())
	}

	c, fs, _ = retryClient(t, []faultStep{{status: 503}},
		WithRetry(RetryPolicy{RetryMutations: true}))
	if _, err := c.Mutate(context.Background(), ops); err != nil {
		t.Fatalf("Mutate on 503 with RetryMutations: %v, want retried success", err)
	}
	if fs.count() != 2 {
		t.Fatalf("503 opt-in: server saw %d requests, want 2", fs.count())
	}
}

// TestRetryHonorsRetryAfter: a server hint longer than the computed
// backoff wins; a shorter one loses to the exponential schedule.
func TestRetryHonorsRetryAfter(t *testing.T) {
	c, _, sleeps := retryClient(t,
		[]faultStep{{status: 429, retryAfter: 3}},
		WithRetry(RetryPolicy{Jitter: -1})) // jitter off: exact delays
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want exactly [3s] (server hint over 100ms backoff)", *sleeps)
	}

	c, _, sleeps = retryClient(t,
		[]faultStep{{status: 503}, {status: 503, retryAfter: 1}, {status: 503}},
		WithRetry(RetryPolicy{Jitter: -1, MaxDelay: 30 * time.Second, MaxAttempts: 4}))
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	want := []time.Duration{100 * time.Millisecond, 1 * time.Second, 400 * time.Millisecond}
	if len(*sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %v", *sleeps, want)
	}
	for i := range want {
		if (*sleeps)[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, (*sleeps)[i], want[i], *sleeps)
		}
	}
}

// TestRetryBackoffCapAndDeterminism: the exponential schedule caps at
// MaxDelay, and the same seed reproduces the same jittered schedule.
func TestRetryBackoffCapAndDeterminism(t *testing.T) {
	script := func() []faultStep {
		return []faultStep{{status: 503}, {status: 503}, {status: 503}, {status: 503}, {status: 503}}
	}
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 50 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: 42}

	c1, _, s1 := retryClient(t, script(), WithRetry(p))
	c2, _, s2 := retryClient(t, script(), WithRetry(p))
	if _, err := c1.Healthz(context.Background()); err != nil {
		t.Fatalf("c1: %v", err)
	}
	if _, err := c2.Healthz(context.Background()); err != nil {
		t.Fatalf("c2: %v", err)
	}
	if len(*s1) != 5 || len(*s2) != 5 {
		t.Fatalf("schedules %v / %v, want 5 sleeps each", *s1, *s2)
	}
	for i := range *s1 {
		if (*s1)[i] != (*s2)[i] {
			t.Fatalf("same seed diverged: %v vs %v", *s1, *s2)
		}
		// Jitter is ±20%, so every delay stays within [0.8, 1.2]x the
		// un-jittered value, which itself caps at MaxDelay.
		if max := time.Duration(float64(p.MaxDelay) * 1.2); (*s1)[i] > max {
			t.Fatalf("sleep %d = %v exceeds jittered cap %v", i, (*s1)[i], max)
		}
	}
}

// TestRetryContextCancelStopsSchedule: an expired caller context ends the
// retry loop with the last real failure, not a sleep forever.
func TestRetryContextCancelStopsSchedule(t *testing.T) {
	fs := &faultServer{script: []faultStep{{status: 503}, {status: 503}, {status: 503}}}
	srv := httptest.NewServer(fs)
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithRetry(RetryPolicy{}))
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the budget dies during the first backoff
		return ctx.Err()
	}
	_, err := c.Healthz(ctx)
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want the last 503 surfaced when ctx dies mid-backoff", err)
	}
	if fs.count() != 1 {
		t.Fatalf("server saw %d requests, want 1", fs.count())
	}
}

// TestServerTimeoutHeader: WithServerTimeout stamps every request with
// the wire deadline-propagation header.
func TestServerTimeoutHeader(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(wire.TimeoutHeader)
		json.NewEncoder(w).Encode(wire.Health{OK: true})
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithServerTimeout(1500*time.Millisecond))
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if got != "1500" {
		t.Fatalf("timeout header = %q, want 1500", got)
	}
}

// TestDefaultClientHasTimeout: the package default transport carries an
// overall timeout, so a stuck server cannot hang a context-less caller.
func TestDefaultClientHasTimeout(t *testing.T) {
	c := New("http://127.0.0.1:0")
	if c.hc.Timeout != defaultTimeout {
		t.Fatalf("default client timeout = %v, want %v", c.hc.Timeout, defaultTimeout)
	}
}
