package client

// Shard-aware batching: when the server advertises a cluster topology
// (wire.Health.Shards, schema 5), ResolveBatch splits a bulk-resolve
// into per-shard sub-batches using the same wire.ShardOwner routing
// function the server's router uses, and runs them as concurrent
// requests. Each sub-request reaches the router carrying objects that
// all live on one shard, so no request blocks on the slowest shard's
// scatter — the client-side counterpart of the server's scatter-gather.
// Against an unsharded server (or one predating schema 5) ResolveBatch
// degrades to one plain BulkResolve.

import (
	"context"
	"sync"

	"trustmap/wire"
)

// topology reports the server's advertised shard count, fetched from
// /healthz once and cached for the client's lifetime (a server's
// topology is fixed for its process lifetime — trustd refuses to reopen
// a cluster directory with a different shard count). Unreachable or
// pre-cluster servers report 0: the unsharded degradation.
func (c *Client) topology(ctx context.Context) int {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.topoKnown {
		return c.topoShards
	}
	h, err := c.Healthz(ctx)
	if err != nil {
		return 0 // not cached: the next call probes again
	}
	c.topoKnown, c.topoShards = true, h.Shards
	return c.topoShards
}

// ResolveBatch is BulkResolve with shard-aware splitting: against a
// sharded server (wire.Health.Shards > 1) the objects are partitioned
// by wire.ShardOwner and resolved as concurrent per-shard sub-requests,
// merged into one response whose Epoch/LSN are the minimum over
// sub-responses (the same conservative bound the server itself reports
// for scatter-gathered reads). Against an unsharded server it is
// exactly BulkResolve. The first sub-request failure fails the call.
func (c *Client) ResolveBatch(ctx context.Context, objects map[string]map[string]string, users []string) (wire.BulkResolveResponse, error) {
	shards := c.topology(ctx)
	if shards <= 1 || len(objects) < 2 {
		return c.BulkResolve(ctx, objects, users)
	}
	split := make(map[int]map[string]map[string]string)
	for key, beliefs := range objects {
		o := wire.ShardOwner(key, shards)
		if split[o] == nil {
			split[o] = make(map[string]map[string]string)
		}
		split[o][key] = beliefs
	}
	if len(split) == 1 {
		return c.BulkResolve(ctx, objects, users)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		parts    = make([]wire.BulkResolveResponse, 0, len(split))
		firstErr error
	)
	for _, sub := range split {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.BulkResolve(ctx, sub, users)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			parts = append(parts, res)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return wire.BulkResolveResponse{}, firstErr
	}
	out := wire.BulkResolveResponse{Objects: make(map[string]map[string]wire.UserResult, len(objects))}
	for i, part := range parts {
		if i == 0 || part.Epoch < out.Epoch {
			out.Epoch = part.Epoch
		}
		if i == 0 || part.LSN < out.LSN {
			out.LSN = part.LSN
		}
		for key, userResults := range part.Objects {
			out.Objects[key] = userResults
		}
	}
	return out, nil
}
