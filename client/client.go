// Package client is the typed Go client for the trustd HTTP API: one
// method per endpoint, request and response bodies from the wire package,
// so the client and cmd/trustd's handlers share one schema and cannot
// drift. All methods are context-aware and safe for concurrent use.
//
//	c := client.New("http://localhost:7171")
//	res, err := c.Resolve(ctx, nil, []string{"alice"})
//	// res.Epoch, res.Users["alice"].Certain ...
//
// Non-2xx responses surface as *APIError carrying the HTTP status and
// the server's error message; IsNotFound distinguishes unknown users and
// objects (404) from invalid requests (400) and oversized batches (413).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"trustmap/wire"
)

// Client talks to one trustd server. Create with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for requests (timeouts,
// transports, middleware). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// New returns a client for the trustd server at baseURL (scheme + host,
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int    // HTTP status
	Message    string // server's error message
	Applied    int    // ops applied before a failed mutate batch
	Epoch      uint64 // serving epoch, when the server reported one
}

func (e *APIError) Error() string {
	return fmt.Sprintf("trustd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// IsNotFound reports whether err is an *APIError with status 404: an
// unknown user or object.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// IsUnavailable reports whether err is an *APIError with status 503: the
// server is up but its store is still recovering from disk. Retryable —
// the server sends Retry-After alongside.
func IsUnavailable(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable
}

// do runs one round trip: marshal body (when non-nil), decode into out
// (when non-nil), surface non-2xx as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		ae := &APIError{StatusCode: resp.StatusCode}
		var eb wire.ErrorResponse
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
			if json.Unmarshal(raw, &eb) == nil && eb.Message != "" {
				ae.Message, ae.Applied, ae.Epoch = eb.Message, eb.Applied, eb.Epoch
			} else {
				ae.Message = strings.TrimSpace(string(raw))
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Healthz checks liveness and returns the current epoch.
func (c *Client) Healthz(ctx context.Context) (wire.Health, error) {
	var out wire.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Stats returns session, store, and engine counters of one pinned epoch.
func (c *Client) Stats(ctx context.Context) (wire.StatsResponse, error) {
	var out wire.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Resolve resolves one ad-hoc object: beliefs overrides network defaults
// per root (nil for none), users lists the users to report.
func (c *Client) Resolve(ctx context.Context, beliefs map[string]string, users []string) (wire.ResolveResponse, error) {
	var out wire.ResolveResponse
	err := c.do(ctx, http.MethodPost, "/v1/resolve", wire.ResolveRequest{Beliefs: beliefs, Users: users}, &out)
	return out, err
}

// BulkResolve resolves many ad-hoc objects at once.
func (c *Client) BulkResolve(ctx context.Context, objects map[string]map[string]string, users []string) (wire.BulkResolveResponse, error) {
	var out wire.BulkResolveResponse
	err := c.do(ctx, http.MethodPost, "/v1/bulk-resolve", wire.BulkResolveRequest{Objects: objects, Users: users}, &out)
	return out, err
}

// Checkpoint asks a durable server to write a compacted snapshot and
// rotate its write-ahead log. The response LSN is the watermark: every
// batch at or below it is folded into the snapshot. In-memory servers
// answer 400.
func (c *Client) Checkpoint(ctx context.Context) (wire.CheckpointResponse, error) {
	var out wire.CheckpointResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/checkpoint", nil, &out)
	return out, err
}

// Mutate applies an ordered op batch as one epoch publication.
func (c *Client) Mutate(ctx context.Context, ops []wire.Op) (wire.MutateResponse, error) {
	var out wire.MutateResponse
	err := c.do(ctx, http.MethodPost, "/v1/mutate", wire.MutateRequest{Ops: ops}, &out)
	return out, err
}

// ListObjects returns the stored object keys, sorted.
func (c *Client) ListObjects(ctx context.Context) (wire.ObjectListResponse, error) {
	var out wire.ObjectListResponse
	err := c.do(ctx, http.MethodGet, "/v1/objects", nil, &out)
	return out, err
}

// PutObject creates or replaces one stored object's explicit beliefs.
func (c *Client) PutObject(ctx context.Context, key string, beliefs map[string]string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodPut, "/v1/objects/"+url.PathEscape(key), wire.ObjectPutRequest{Beliefs: beliefs}, &out)
	return out, err
}

// GetObject returns one stored object's explicit beliefs.
func (c *Client) GetObject(ctx context.Context, key string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodGet, "/v1/objects/"+url.PathEscape(key), nil, &out)
	return out, err
}

// DeleteObject removes one stored object (404 if absent) and returns the
// deletion's serving epoch: the lower bound for reads that must observe
// the delete.
func (c *Client) DeleteObject(ctx context.Context, key string) (wire.DeleteResponse, error) {
	var out wire.DeleteResponse
	err := c.do(ctx, http.MethodDelete, "/v1/objects/"+url.PathEscape(key), nil, &out)
	return out, err
}

// PutBelief states one user's explicit belief about one stored object.
// The object is created if absent.
func (c *Client) PutBelief(ctx context.Context, key, user, value string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodPut,
		"/v1/objects/"+url.PathEscape(key)+"/beliefs/"+url.PathEscape(user),
		wire.BeliefPutRequest{Value: value}, &out)
	return out, err
}

// DeleteBelief revokes one user's explicit belief about one stored
// object (404 if the object or the belief is absent).
func (c *Client) DeleteBelief(ctx context.Context, key, user string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodDelete,
		"/v1/objects/"+url.PathEscape(key)+"/beliefs/"+url.PathEscape(user), nil, &out)
	return out, err
}

// ResolveObject resolves one stored object against the current epoch for
// the requested users.
func (c *Client) ResolveObject(ctx context.Context, key string, users []string) (wire.ObjectResolutionResponse, error) {
	var out wire.ObjectResolutionResponse
	// One query parameter per user (not comma-joined): names containing
	// commas survive the round trip.
	q := url.Values{"users": users}
	err := c.do(ctx, http.MethodGet,
		"/v1/objects/"+url.PathEscape(key)+"/resolution?"+q.Encode(), nil, &out)
	return out, err
}
