// Package client is the typed Go client for the trustd HTTP API: one
// method per endpoint, request and response bodies from the wire package,
// so the client and cmd/trustd's handlers share one schema and cannot
// drift. All methods are context-aware and safe for concurrent use.
//
//	c := client.New("http://localhost:7171")
//	res, err := c.Resolve(ctx, nil, []string{"alice"})
//	// res.Epoch, res.Users["alice"].Certain ...
//
// Non-2xx responses surface as *APIError carrying the HTTP status and
// the server's error message; IsNotFound distinguishes unknown users and
// objects (404) from invalid requests (400) and oversized batches (413).
//
// # Retries
//
// WithRetry arms automatic retries: capped exponential backoff with
// deterministic (seedable) jitter, honoring a server Retry-After when it
// is longer than the computed delay. By default only idempotent requests
// are retried on 503s and transport errors — every method except Mutate;
// an admission shed (429) is always retried, even for Mutate, because
// the server sheds BEFORE touching the request. RetryPolicy.
// RetryMutations opts Mutate into full retries for callers whose op
// batches are safe to re-apply.
//
// # Failover
//
// WithEndpoints turns the client into a fleet client for a replicated
// deployment: reads load-balance round-robin across endpoints believed
// healthy, mutations follow the believed primary (a replica's 421
// redirect re-pins it transparently — the replica did no work), and
// admin calls (Healthz, Stats, Checkpoint, Promote) always target the
// base URL from New. Transport errors and 503s mark an endpoint down
// and, under an armed RetryPolicy, the retry lands on the next
// endpoint, so a primary crash or replica outage is ridden out without
// caller-visible failures. Endpoints exposes the per-endpoint
// attempt/failure counters.
//
// # Timeouts
//
// The default transport has a 30-second overall timeout so a stuck
// server can never hang a caller that forgot a context deadline; use
// WithHTTPClient to substitute your own http.Client (different timeout,
// custom transport, middleware). WithServerTimeout additionally asks the
// server to cap its own processing time per request (the
// wire.TimeoutHeader deadline-propagation header).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"trustmap/wire"
)

// defaultTimeout bounds one HTTP exchange end to end on the default
// transport. Generous — bulk resolves are slow on cold stores — but
// finite: no context mistake leaves a goroutine stuck forever.
const defaultTimeout = 30 * time.Second

// Client talks to a trustd server — or, with WithEndpoints, a
// replicated fleet of them. Create with New.
type Client struct {
	base          string
	hc            *http.Client
	retry         RetryPolicy
	serverTimeout time.Duration

	// Endpoint routing state (endpoints.go). extra holds WithEndpoints
	// URLs until New builds the endpoint set; emu guards the rest.
	extra     []string
	emu       sync.Mutex
	endpoints []*endpoint
	primary   int    // believed primary index (mutation target)
	cursor    int    // read round-robin position
	picks     uint64 // read picks, for the periodic down-mark reprobe

	// Cluster topology for shard-aware batching (batch.go): the server's
	// advertised shard count, probed from /healthz on the first
	// ResolveBatch and cached for the client's lifetime.
	topoMu     sync.Mutex
	topoKnown  bool
	topoShards int

	jmu    sync.Mutex
	jitter *rand.Rand

	// sleep is swapped by tests to run retry schedules without real time.
	sleep func(context.Context, time.Duration) error
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for requests — the
// escape hatch for a different overall timeout, a custom transport, or
// middleware. The package default is a client with a 30-second timeout.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// RetryPolicy configures WithRetry. The zero value of each field picks
// the documented default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values below 2 mean the default of 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 2s.
	MaxDelay time.Duration
	// Jitter is the fractional spread applied to each delay: a delay d
	// becomes d * (1 ± Jitter). Default 0.2; negative disables jitter.
	Jitter float64
	// Seed seeds the jitter PRNG, making retry schedules reproducible.
	// Any value (including 0) is a valid deterministic seed.
	Seed int64
	// RetryMutations opts non-idempotent requests (Mutate) into retries
	// on 503s and transport errors. Off by default: a 503 mid-batch may
	// have applied a prefix of the ops, so blind re-application needs the
	// caller to know its batch is safe to repeat. Admission sheds (429)
	// are always retried regardless — the server sheds before reading the
	// request.
	RetryMutations bool
}

// withDefaults resolves the zero values to the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 2 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// WithRetry arms automatic retries with policy p (zero fields take the
// documented defaults).
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithServerTimeout asks the server to bound its processing of every
// request from this client at d, via the wire.TimeoutHeader header. The
// server caps it at its configured maximum. Deadline propagation: the
// caller's context bounds the round trip on this side, this header
// bounds the work on the far side, so an abandoned request stops
// consuming server capacity.
func WithServerTimeout(d time.Duration) Option {
	return func(c *Client) { c.serverTimeout = d }
}

// New returns a client for the trustd server at baseURL (scheme + host,
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{Timeout: defaultTimeout},
		sleep: sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	c.initEndpoints()
	c.jitter = rand.New(rand.NewSource(c.retry.Seed))
	return c
}

// sleepCtx waits d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int           // HTTP status
	Message    string        // server's error message
	Applied    int           // ops applied before a failed mutate batch
	Epoch      uint64        // serving epoch, when the server reported one
	Limit      int           // the exceeded bound, on 413s
	RetryAfter time.Duration // server back-off hint, when sent (429/503)
	Primary    string        // the primary a replica named, on 421s
}

// Error formats the failure as "<METHOD> <path>: server answered <status>:
// <message>" — the one-line summary error chains and logs show.
func (e *APIError) Error() string {
	return fmt.Sprintf("trustd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// IsNotFound reports whether err is an *APIError with status 404: an
// unknown user or object.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// IsUnavailable reports whether err is an *APIError with status 503: the
// server is up but its store is still recovering from disk (Retry-After
// set) or the request's propagated deadline expired (no Retry-After).
func IsUnavailable(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable
}

// IsShed reports whether err is an *APIError with status 429: the server
// shed the request at admission, before doing any work. Always safe to
// retry after the RetryAfter hint, including mutations.
func IsShed(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// do runs one request with the client's retry policy: marshal body once,
// exchange up to MaxAttempts times, decode into out (when non-nil),
// surface the final non-2xx as *APIError. route picks the endpoint each
// attempt targets (endpoints.go); idempotent gates which failures are
// retryable (sheds always are).
func (c *Client) do(ctx context.Context, method, path string, body, out any, route routing, idempotent bool) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if serr := c.sleep(ctx, c.backoff(attempt, err)); serr != nil {
				return err // context gave out first: report the retryable failure
			}
		}
		err = c.exchange(ctx, route, method, path, raw, out)
		if err == nil || !c.retryable(err, idempotent) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// roundTrip is one HTTP exchange against one endpoint's base URL.
func (c *Client) roundTrip(ctx context.Context, base, method, path string, raw []byte, out any) error {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return err
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.serverTimeout > 0 {
		req.Header.Set(wire.TimeoutHeader, strconv.FormatInt(c.serverTimeout.Milliseconds(), 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		ae := &APIError{StatusCode: resp.StatusCode}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		ae.Primary = resp.Header.Get(wire.PrimaryHeader)
		var eb wire.ErrorResponse
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
			if json.Unmarshal(raw, &eb) == nil && eb.Message != "" {
				ae.Message, ae.Applied, ae.Epoch, ae.Limit = eb.Message, eb.Applied, eb.Epoch, eb.Limit
				if eb.Primary != "" {
					ae.Primary = eb.Primary
				}
			} else {
				ae.Message = strings.TrimSpace(string(raw))
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// retryable classifies one failure under the armed policy. With no
// policy (MaxAttempts unset), nothing is retryable.
func (c *Client) retryable(err error, idempotent bool) bool {
	if c.retry.MaxAttempts < 2 {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusTooManyRequests:
			// Shed at admission: the server did no work, so even a
			// mutation is safe to resend.
			return true
		case http.StatusServiceUnavailable:
			// Recovering store or an expired propagated deadline: the
			// request may have partially executed, so non-idempotent
			// requests need the explicit opt-in.
			return idempotent || c.retry.RetryMutations
		}
		return false // 4xx/5xx with a definitive answer: retrying repeats it
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false // the caller's budget is spent
	}
	// Transport-level failure (conn refused/reset, etc.): the request may
	// or may not have reached the server.
	return idempotent || c.retry.RetryMutations
}

// backoff computes the pre-attempt delay: capped exponential growth from
// BaseDelay, spread by the seeded jitter, floored at the server's
// Retry-After when the previous failure carried one. attempt is 1-based
// (the delay before retry #attempt).
func (c *Client) backoff(attempt int, prev error) time.Duration {
	d := c.retry.BaseDelay << (attempt - 1)
	if d > c.retry.MaxDelay || d <= 0 { // <=0: shift overflow
		d = c.retry.MaxDelay
	}
	if j := c.retry.Jitter; j > 0 {
		c.jmu.Lock()
		f := 1 + j*(2*c.jitter.Float64()-1)
		c.jmu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	var ae *APIError
	if errors.As(prev, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

// Healthz checks liveness and returns the current epoch.
func (c *Client) Healthz(ctx context.Context) (wire.Health, error) {
	var out wire.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, routeBase, true)
	return out, err
}

// Stats returns session, store, and engine counters of one pinned epoch.
func (c *Client) Stats(ctx context.Context) (wire.StatsResponse, error) {
	var out wire.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out, routeBase, true)
	return out, err
}

// Resolve resolves one ad-hoc object: beliefs overrides network defaults
// per root (nil for none), users lists the users to report.
func (c *Client) Resolve(ctx context.Context, beliefs map[string]string, users []string) (wire.ResolveResponse, error) {
	var out wire.ResolveResponse
	err := c.do(ctx, http.MethodPost, "/v1/resolve", wire.ResolveRequest{Beliefs: beliefs, Users: users}, &out, routeRead, true)
	return out, err
}

// BulkResolve resolves many ad-hoc objects at once.
func (c *Client) BulkResolve(ctx context.Context, objects map[string]map[string]string, users []string) (wire.BulkResolveResponse, error) {
	var out wire.BulkResolveResponse
	err := c.do(ctx, http.MethodPost, "/v1/bulk-resolve", wire.BulkResolveRequest{Objects: objects, Users: users}, &out, routeRead, true)
	return out, err
}

// Checkpoint asks a durable server to write a compacted snapshot and
// rotate its write-ahead log. The response LSN is the watermark: every
// batch at or below it is folded into the snapshot. In-memory servers
// answer 400.
func (c *Client) Checkpoint(ctx context.Context) (wire.CheckpointResponse, error) {
	var out wire.CheckpointResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/checkpoint", nil, &out, routeBase, true)
	return out, err
}

// Mutate applies an ordered op batch as one epoch publication. The one
// non-idempotent method: under WithRetry it is retried on sheds (429,
// always safe) but not on 503s or transport errors unless
// RetryPolicy.RetryMutations is set.
func (c *Client) Mutate(ctx context.Context, ops []wire.Op) (wire.MutateResponse, error) {
	var out wire.MutateResponse
	err := c.do(ctx, http.MethodPost, "/v1/mutate", wire.MutateRequest{Ops: ops}, &out, routePrimary, false)
	return out, err
}

// ListObjects returns the stored object keys, sorted.
func (c *Client) ListObjects(ctx context.Context) (wire.ObjectListResponse, error) {
	var out wire.ObjectListResponse
	err := c.do(ctx, http.MethodGet, "/v1/objects", nil, &out, routeRead, true)
	return out, err
}

// PutObject creates or replaces one stored object's explicit beliefs.
func (c *Client) PutObject(ctx context.Context, key string, beliefs map[string]string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodPut, "/v1/objects/"+url.PathEscape(key), wire.ObjectPutRequest{Beliefs: beliefs}, &out, routePrimary, true)
	return out, err
}

// GetObject returns one stored object's explicit beliefs.
func (c *Client) GetObject(ctx context.Context, key string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodGet, "/v1/objects/"+url.PathEscape(key), nil, &out, routeRead, true)
	return out, err
}

// DeleteObject removes one stored object (404 if absent) and returns the
// deletion's serving epoch: the lower bound for reads that must observe
// the delete.
func (c *Client) DeleteObject(ctx context.Context, key string) (wire.DeleteResponse, error) {
	var out wire.DeleteResponse
	err := c.do(ctx, http.MethodDelete, "/v1/objects/"+url.PathEscape(key), nil, &out, routePrimary, true)
	return out, err
}

// PutBelief states one user's explicit belief about one stored object.
// The object is created if absent.
func (c *Client) PutBelief(ctx context.Context, key, user, value string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodPut,
		"/v1/objects/"+url.PathEscape(key)+"/beliefs/"+url.PathEscape(user),
		wire.BeliefPutRequest{Value: value}, &out, routePrimary, true)
	return out, err
}

// DeleteBelief revokes one user's explicit belief about one stored
// object (404 if the object or the belief is absent).
func (c *Client) DeleteBelief(ctx context.Context, key, user string) (wire.ObjectResponse, error) {
	var out wire.ObjectResponse
	err := c.do(ctx, http.MethodDelete,
		"/v1/objects/"+url.PathEscape(key)+"/beliefs/"+url.PathEscape(user), nil, &out, routePrimary, true)
	return out, err
}

// ResolveObject resolves one stored object against the current epoch for
// the requested users.
func (c *Client) ResolveObject(ctx context.Context, key string, users []string) (wire.ObjectResolutionResponse, error) {
	var out wire.ObjectResolutionResponse
	// One query parameter per user (not comma-joined): names containing
	// commas survive the round trip.
	q := url.Values{"users": users}
	err := c.do(ctx, http.MethodGet,
		"/v1/objects/"+url.PathEscape(key)+"/resolution?"+q.Encode(), nil, &out, routeRead, true)
	return out, err
}
