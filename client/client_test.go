package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"trustmap/wire"
)

// stub answers canned responses so the client's round-trip, error
// mapping, and URL construction can be tested without a full trustd.
// The real end-to-end coverage lives in cmd/trustd's TestSmokeHTTP,
// which drives this client against the real handlers.
func stub(t *testing.T) (*Client, *http.ServeMux) {
	t.Helper()
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return New(srv.URL + "/"), mux // trailing slash must be tolerated
}

func TestClientRoundTrip(t *testing.T) {
	c, mux := stub(t)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.Health{OK: true, Epoch: 7})
	})
	mux.HandleFunc("POST /v1/resolve", func(w http.ResponseWriter, r *http.Request) {
		var req wire.ResolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Users) != 1 {
			t.Errorf("bad request body: %v %+v", err, req)
		}
		json.NewEncoder(w).Encode(wire.ResolveResponse{
			Epoch: 7,
			Users: map[string]wire.UserResult{"alice": {Possible: []string{"fish"}, Certain: "fish"}},
		})
	})
	mux.HandleFunc("PUT /v1/objects/{key}/beliefs/{user}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("key") != "a b" || r.PathValue("user") != "u/1" {
			t.Errorf("path escaping broken: key=%q user=%q", r.PathValue("key"), r.PathValue("user"))
		}
		json.NewEncoder(w).Encode(wire.ObjectResponse{Object: r.PathValue("key")})
	})

	ctx := context.Background()
	h, err := c.Healthz(ctx)
	if err != nil || !h.OK || h.Epoch != 7 {
		t.Fatalf("Healthz = %+v, %v", h, err)
	}
	res, err := c.Resolve(ctx, nil, []string{"alice"})
	if err != nil || res.Users["alice"].Certain != "fish" {
		t.Fatalf("Resolve = %+v, %v", res, err)
	}
	// Keys and users with reserved characters survive the round trip.
	if _, err := c.PutBelief(ctx, "a b", "u/1", "v"); err != nil {
		t.Fatalf("PutBelief: %v", err)
	}
}

func TestClientErrorMapping(t *testing.T) {
	c, mux := stub(t)
	mux.HandleFunc("GET /v1/objects/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Message: "unknown object"})
	})
	mux.HandleFunc("POST /v1/mutate", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Message: "op 2: boom", Applied: 2, Epoch: 9})
	})

	ctx := context.Background()
	_, err := c.GetObject(ctx, "ghost")
	if !IsNotFound(err) {
		t.Fatalf("GetObject err = %v, want 404 APIError", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Message != "unknown object" {
		t.Fatalf("APIError = %+v", ae)
	}
	_, err = c.Mutate(ctx, []wire.Op{{Op: wire.OpSetTrust}})
	if !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Applied != 2 || ae.Epoch != 9 {
		t.Fatalf("mutate APIError = %+v, %v", ae, err)
	}
	if IsNotFound(err) {
		t.Fatal("400 must not be IsNotFound")
	}
}

// TestClientCheckpointAndUnavailable covers the durable additions: the
// checkpoint verb's round trip and the 503-while-recovering mapping.
func TestClientCheckpointAndUnavailable(t *testing.T) {
	c, mux := stub(t)
	mux.HandleFunc("POST /v1/admin/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(wire.CheckpointResponse{Epoch: 12, LSN: 40, Snapshot: "snap-0000000000000028.json"})
	})
	mux.HandleFunc("POST /v1/resolve", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Message: "store is still recovering from disk; retry shortly"})
	})

	ctx := context.Background()
	ck, err := c.Checkpoint(ctx)
	if err != nil || ck.Epoch != 12 || ck.LSN != 40 || ck.Snapshot == "" {
		t.Fatalf("Checkpoint = %+v, %v", ck, err)
	}

	_, err = c.Resolve(ctx, nil, []string{"alice"})
	if !IsUnavailable(err) {
		t.Fatalf("Resolve during recovery err = %v, want 503 APIError", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("APIError = %+v", ae)
	}
	if IsNotFound(err) {
		t.Fatal("503 must not be IsNotFound")
	}
}
