package client

// Multi-endpoint failover tests: a scripted two-server fleet where the
// first endpoint is dead (connection refused) or degraded (503), and
// the client is asserted — down to exact per-endpoint attempt counters
// — to complete the call against the second. Plus the 421 path: a
// mutation sent to a replica re-pins to the primary it names.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trustmap/wire"
)

// deadEndpoint returns a URL nothing listens on: connection refused.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// okServer answers every request 200 with an empty-ish JSON body and
// counts requests per path.
func okServer(t *testing.T) (*httptest.Server, *faultServer) {
	t.Helper()
	fs := &faultServer{}
	srv := httptest.NewServer(fs)
	t.Cleanup(srv.Close)
	return srv, fs
}

// epStats finds one endpoint's stats by URL.
func epStats(t *testing.T, c *Client, url string) EndpointStats {
	t.Helper()
	for _, s := range c.Endpoints() {
		if s.URL == url {
			return s
		}
	}
	t.Fatalf("endpoint %s not in %+v", url, c.Endpoints())
	return EndpointStats{}
}

func TestReadFailoverOnConnectionRefused(t *testing.T) {
	dead := deadEndpoint(t)
	alive, fs := okServer(t)
	c, _, _ := silentRetry(t, New(dead, WithEndpoints(alive.URL), WithRetry(RetryPolicy{})))

	if _, err := c.ListObjects(context.Background()); err != nil {
		t.Fatalf("read with dead first endpoint: %v, want transparent failover", err)
	}
	if fs.count() != 1 {
		t.Fatalf("live endpoint saw %d requests, want 1", fs.count())
	}
	d, a := epStats(t, c, dead), epStats(t, c, alive.URL)
	if d.Attempts != 1 || d.Failures != 1 || d.Healthy {
		t.Fatalf("dead endpoint stats = %+v, want 1 attempt, 1 failure, unhealthy", d)
	}
	if a.Attempts != 1 || a.Failures != 0 || !a.Healthy {
		t.Fatalf("live endpoint stats = %+v, want 1 attempt, 0 failures, healthy", a)
	}

	// The down-mark is sticky: further reads go straight to the live
	// endpoint without burning attempts on the dead one.
	for i := 0; i < 3; i++ {
		if _, err := c.ListObjects(context.Background()); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if d := epStats(t, c, dead); d.Attempts != 1 {
		t.Fatalf("dead endpoint re-attempted while marked down: %+v", d)
	}
	if a := epStats(t, c, alive.URL); a.Attempts != 4 {
		t.Fatalf("live endpoint attempts = %d, want 4", a.Attempts)
	}
}

func TestReadFailoverOn503(t *testing.T) {
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Message: "recovering"})
	}))
	t.Cleanup(sick.Close)
	alive, fs := okServer(t)
	c, _, sleeps := silentRetry(t, New(sick.URL, WithEndpoints(alive.URL), WithRetry(RetryPolicy{})))

	if _, err := c.Resolve(context.Background(), nil, []string{"alice"}); err != nil {
		t.Fatalf("read with 503ing first endpoint: %v, want failover", err)
	}
	if fs.count() != 1 {
		t.Fatalf("live endpoint saw %d requests, want 1", fs.count())
	}
	if len(*sleeps) != 1 {
		t.Fatalf("slept %d times, want 1 (one backoff between the 503 and the failover)", len(*sleeps))
	}
	if s := epStats(t, c, sick.URL); s.Failures != 1 || s.Healthy {
		t.Fatalf("sick endpoint stats = %+v, want 1 failure, unhealthy", s)
	}
}

func TestMutateRepinsToPrimaryOn421(t *testing.T) {
	primary, fs := okServer(t)
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.PrimaryHeader, primary.URL)
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(wire.ErrorResponse{
			Message: "replica does not accept mutations", Primary: primary.URL,
		})
	}))
	t.Cleanup(replica.Close)

	// No retry policy: the 421 redirect is not a retry, it must work anyway.
	c := New(replica.URL)
	ops := []wire.Op{{Op: wire.OpSetTrust, Truster: "a", Trusted: "b", Priority: 1}}
	if _, err := c.Mutate(context.Background(), ops); err != nil {
		t.Fatalf("mutate against replica: %v, want transparent redirect to primary", err)
	}
	if fs.count() != 1 {
		t.Fatalf("primary saw %d requests, want the redirected mutation", fs.count())
	}
	p := epStats(t, c, primary.URL)
	if !p.Primary || p.Attempts != 1 {
		t.Fatalf("discovered primary stats = %+v, want pinned with 1 attempt", p)
	}

	// The pin is remembered: the next mutation goes straight to the primary.
	if _, err := c.Mutate(context.Background(), ops); err != nil {
		t.Fatal(err)
	}
	if fs.count() != 2 {
		t.Fatalf("primary saw %d requests, want 2", fs.count())
	}
	if r := epStats(t, c, replica.URL); r.Attempts != 1 {
		t.Fatalf("replica re-attempted after the re-pin: %+v", r)
	}
}

func TestMutateFailoverAdvancesPrimary(t *testing.T) {
	dead := deadEndpoint(t)
	alive, fs := okServer(t)
	c, _, _ := silentRetry(t, New(dead, WithEndpoints(alive.URL),
		WithRetry(RetryPolicy{RetryMutations: true})))

	ops := []wire.Op{{Op: wire.OpSetTrust, Truster: "a", Trusted: "b", Priority: 1}}
	if _, err := c.Mutate(context.Background(), ops); err != nil {
		t.Fatalf("mutate with dead primary: %v, want failover under RetryMutations", err)
	}
	if fs.count() != 1 {
		t.Fatalf("live endpoint saw %d requests, want 1", fs.count())
	}
	if a := epStats(t, c, alive.URL); !a.Primary {
		t.Fatalf("believed primary did not advance to the live endpoint: %+v", c.Endpoints())
	}
}

// TestAllEndpointsDownResetsMarks: a full outage clears the down-marks
// instead of leaving the client permanently convinced the fleet is gone.
func TestAllEndpointsDownResetsMarks(t *testing.T) {
	deadA, deadB := deadEndpoint(t), deadEndpoint(t)
	c, _, _ := silentRetry(t, New(deadA, WithEndpoints(deadB), WithRetry(RetryPolicy{MaxAttempts: 3})))
	if _, err := c.ListObjects(context.Background()); err == nil {
		t.Fatal("read against an all-dead fleet succeeded")
	}
	// 3 attempts spread across 2 endpoints: the second attempt must not
	// re-pick the first dead endpoint while a live-looking one remains,
	// and the third only ran because the marks reset.
	a, b := epStats(t, c, deadA), epStats(t, c, deadB)
	if a.Attempts+b.Attempts != 3 || a.Attempts < 1 || b.Attempts < 1 {
		t.Fatalf("attempt spread = %d/%d, want 3 total across both", a.Attempts, b.Attempts)
	}
}

// silentRetry swaps the sleep hook so armed retries don't wait, and
// records the schedule.
func silentRetry(t *testing.T, c *Client) (*Client, *Client, *[]time.Duration) {
	t.Helper()
	sleeps := &[]time.Duration{}
	c.sleep = func(_ context.Context, d time.Duration) error {
		*sleeps = append(*sleeps, d)
		return nil
	}
	return c, c, sleeps
}
