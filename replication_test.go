package trustmap

// Store-level replication tests: TailWAL/ApplyReplicated shipping parity,
// duplicate and gap handling, verbatim LSN/epoch preservation, replica
// restartability, and snapshot install/bootstrap semantics.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"trustmap/wire"
)

// ship streams primary's WAL above `after` into replica, returning the
// watermark reached and the batches applied.
func ship(t *testing.T, primary, replica *Store, after uint64) (uint64, int) {
	t.Helper()
	applied := 0
	upto, err := primary.TailWAL(after, func(b wire.OpBatch) error {
		res, err := replica.ApplyReplicated(b)
		if err != nil {
			return err
		}
		if res.Applied {
			applied++
		}
		if res.OpErrors != 0 {
			t.Fatalf("ApplyReplicated(%d): %d op errors", b.LSN, res.OpErrors)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ship after %d: %v", after, err)
	}
	return upto, applied
}

func TestReplicationShippingParity(t *testing.T) {
	p := mustOpenStore(t, t.TempDir(), WithDurability(DurabilityAlways))
	defer p.Close()
	wantLSN := seedDurable(t, p)

	rdir := t.TempDir()
	r := mustOpenStore(t, rdir, WithDurability(DurabilityAlways))
	upto, applied := ship(t, p, r, 0)
	if upto != wantLSN || applied != int(wantLSN) {
		t.Fatalf("shipped upto=%d applied=%d, want %d", upto, applied, wantLSN)
	}
	if r.LSN() != wantLSN || r.DurableLSN() != wantLSN {
		t.Fatalf("replica LSN=%d durable=%d, want %d", r.LSN(), r.DurableLSN(), wantLSN)
	}
	if got, want := resolvedState(t, r), resolvedState(t, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("replica resolved state diverges:\n got %v\nwant %v", got, want)
	}

	// Re-shipping the whole log is a no-op: every batch is a duplicate.
	if _, applied := ship(t, p, r, 0); applied != 0 {
		t.Fatalf("duplicate ship applied %d batches, want 0", applied)
	}

	// The replica's own WAL holds the primary's batches verbatim, so it
	// recovers to the same state on restart — replicas are restartable.
	if err := r.Close(); err != nil {
		t.Fatalf("replica close: %v", err)
	}
	r2 := mustOpenStore(t, rdir)
	defer r2.Close()
	if r2.LSN() != wantLSN {
		t.Fatalf("restarted replica LSN=%d, want %d", r2.LSN(), wantLSN)
	}
	if got, want := resolvedState(t, r2), resolvedState(t, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted replica resolved state diverges")
	}

	// Incremental catch-up: more primary writes ship from the watermark.
	if err := p.SetTrust(context.Background(), "alice", "frank", 30); err != nil {
		t.Fatal(err)
	}
	if upto, applied := ship(t, p, r2, r2.LSN()); upto != wantLSN+1 || applied != 1 {
		t.Fatalf("catch-up shipped upto=%d applied=%d, want %d/1", upto, applied, wantLSN+1)
	}
}

func TestApplyReplicatedGapAndEnvelope(t *testing.T) {
	p := mustOpenStore(t, t.TempDir(), WithDurability(DurabilityAlways))
	defer p.Close()
	seedDurable(t, p)
	var batches []wire.OpBatch
	if _, err := p.TailWAL(0, func(b wire.OpBatch) error {
		batches = append(batches, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	r := mustOpenStore(t, t.TempDir(), WithDurability(DurabilityAlways))
	defer r.Close()
	// Skipping ahead is a gap, refused without mutating anything.
	if _, err := r.ApplyReplicated(batches[2]); !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("gap apply: want ErrReplicationGap, got %v", err)
	}
	if r.LSN() != 0 {
		t.Fatalf("gap apply advanced LSN to %d", r.LSN())
	}
	// The applied batch keeps the primary's envelope: the replica's log
	// carries the original LSN and epoch, not a renumbering.
	if _, err := r.ApplyReplicated(batches[0]); err != nil {
		t.Fatal(err)
	}
	var got wire.OpBatch
	if _, err := r.TailWAL(0, func(b wire.OpBatch) error { got = b; return nil }); err != nil {
		t.Fatal(err)
	}
	if got.LSN != batches[0].LSN || got.Epoch != batches[0].Epoch {
		t.Fatalf("replica logged lsn=%d epoch=%d, want lsn=%d epoch=%d",
			got.LSN, got.Epoch, batches[0].LSN, batches[0].Epoch)
	}
	// Heartbeats (empty batches) are ignored at any LSN.
	if res, err := r.ApplyReplicated(wire.OpBatch{LSN: 99}); err != nil || res.Applied {
		t.Fatalf("heartbeat: applied=%v err=%v", res.Applied, err)
	}
	// In-memory stores cannot participate.
	m, err := NewStore()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyReplicated(batches[0]); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("in-memory apply: want ErrNotDurable, got %v", err)
	}
}

func TestInstallSnapshotBootstrap(t *testing.T) {
	pdir := t.TempDir()
	p := mustOpenStore(t, pdir, WithDurability(DurabilityAlways))
	defer p.Close()
	wantLSN := seedDurable(t, p)
	if _, _, ok, err := p.SnapshotBlob(); ok || err != nil {
		t.Fatalf("SnapshotBlob before checkpoint: ok=%v err=%v", ok, err)
	}
	ci, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	blob, lsn, ok, err := p.SnapshotBlob()
	if err != nil || !ok || lsn != ci.LSN {
		t.Fatalf("SnapshotBlob: ok=%v lsn=%d err=%v, want lsn %d", ok, lsn, err, ci.LSN)
	}

	// Fresh directory: install + open serves the snapshot state and the
	// log is positioned to continue the primary's numbering.
	rdir := t.TempDir()
	if got, err := InstallSnapshot(rdir, blob); err != nil || got != ci.LSN {
		t.Fatalf("InstallSnapshot = %d, %v; want %d", got, err, ci.LSN)
	}
	r := mustOpenStore(t, rdir, WithDurability(DurabilityAlways))
	defer r.Close()
	if r.LSN() != wantLSN {
		t.Fatalf("bootstrapped replica LSN=%d, want %d", r.LSN(), wantLSN)
	}
	if got, want := resolvedState(t, r), resolvedState(t, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("bootstrapped replica resolved state diverges")
	}
	// Re-installing the same watermark is stale: local state covers it.
	if _, err := InstallSnapshot(rdir, blob); !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("reinstall: want ErrSnapshotStale, got %v", err)
	}

	// After the primary rotates and prunes its log past a lagging
	// replica's position, the oldest retained record is beyond LSN 1 —
	// the signal the HTTP layer turns into 410 Gone.
	if err := p.SetTrust(context.Background(), "alice", "grace", 40); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if oldest, ok := p.OldestWALLSN(); ok && oldest <= 1 {
		t.Fatalf("post-prune oldest WAL lsn = %d, want > 1 or none", oldest)
	}
}
