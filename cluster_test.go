package trustmap_test

// Cluster-level tests and benchmarks for internal/shard over real
// stores. These live in the external test package: the root-dir
// white-box tests (store_test.go) are package trustmap and cannot
// import internal/shard without a cycle through the public API.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"trustmap"
	"trustmap/internal/shard"
	"trustmap/wire"
)

// newCluster builds a router over n fresh in-memory shards seeded with
// one shared spine: three defaulted roots and a small trust graph.
func newCluster(t testing.TB, n int) *shard.Router {
	t.Helper()
	stores := make([]*trustmap.Store, n)
	for i := range stores {
		st, err := trustmap.NewStore()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		stores[i] = st
	}
	rt, err := shard.NewRouter(stores)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	ops := []wire.Op{
		{Op: wire.OpSetBelief, User: "alice", Value: "fish"},
		{Op: wire.OpSetBelief, User: "bob", Value: "cow"},
		{Op: wire.OpSetBelief, User: "carol", Value: "jar"},
		{Op: wire.OpSetTrust, Truster: "dave", Trusted: "alice", Priority: 1},
		{Op: wire.OpSetTrust, Truster: "dave", Trusted: "bob", Priority: 1},
	}
	if _, err := rt.Mutate(ops); err != nil {
		t.Fatalf("spine: %v", err)
	}
	return rt
}

// putKeys stores n objects through the router, spread across shards by
// ownership, each carrying one alice belief. Returns the sorted keys.
func putKeys(t testing.TB, rt *shard.Router, n int) []string {
	t.Helper()
	ctx := context.Background()
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("obj%04d", i)
		if err := rt.PutObject(ctx, key, map[string]string{"alice": "fish"}); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// TestClusterResolvedMergeOrder is the scatter-gather determinism test:
// Resolved over a cluster must stream rows in globally sorted key order
// — a k-way merge of the shards' disjoint sorted streams — with every
// row pinned to its own shard's epoch, even while concurrent writers
// keep bumping other shards' epochs mid-stream. Ordering is driven by
// keys, never by the racing epochs, so the merge order is deterministic.
func TestClusterResolvedMergeOrder(t *testing.T) {
	const shards = 4
	rt := newCluster(t, shards)
	keys := putKeys(t, rt, 60)
	ctx := context.Background()

	// Concurrent writers churn objects in a disjoint key space for the
	// whole duration of the streamed reads below: the merge must stay
	// sorted and each row must stay on its pinned per-shard epoch.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("churn%03d", i%50)
			if err := rt.PutBelief(ctx, "bob", key, "cow"); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	for round := 0; round < 5; round++ {
		// Pin each shard's epoch at stream start: rows from shard i must
		// carry an epoch >= that pin (their shard's snapshot), and the
		// stream must visit at least the pre-churn keys in sorted order.
		pinned := make([]uint64, shards)
		for i := range pinned {
			pinned[i] = rt.Shard(i).Epoch()
		}
		var got []string
		epochs := make(map[int]uint64) // shard -> the one epoch its rows carried
		for row, err := range rt.Resolved(ctx) {
			if err != nil {
				t.Fatalf("round %d: stream error: %v", round, err)
			}
			if n := len(got); n > 0 && row.Object <= got[n-1] {
				t.Fatalf("round %d: %q streamed after %q: merge not globally sorted", round, row.Object, got[n-1])
			}
			got = append(got, row.Object)
			o := rt.Owner(row.Object)
			if e, ok := epochs[o]; ok && e != row.Epoch() {
				t.Fatalf("round %d: shard %d rows carry epochs %d and %d: not pinned per shard", round, o, e, row.Epoch())
			}
			epochs[o] = row.Epoch()
			if row.Epoch() < pinned[o] {
				t.Fatalf("round %d: shard %d row at epoch %d, pinned at least %d", round, o, row.Epoch(), pinned[o])
			}
		}
		// The stable keys must all appear (churn keys may interleave).
		set := make(map[string]bool, len(got))
		for _, k := range got {
			set[k] = true
		}
		for _, k := range keys {
			if !set[k] {
				t.Fatalf("round %d: stream missed stable key %q", round, k)
			}
		}
	}
}

// TestClusterReadYourWrites checks the aggregate epoch bound: after any
// routed write returns, a read of that object — and the cluster-wide
// Epoch() — must observe it.
func TestClusterReadYourWrites(t *testing.T) {
	rt := newCluster(t, 3)
	ctx := context.Background()
	before := rt.Epoch()
	if err := rt.PutObject(ctx, "ryw", map[string]string{"alice": "knot"}); err != nil {
		t.Fatalf("put: %v", err)
	}
	row, err := rt.ResolveObject(ctx, "ryw")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if poss, _, err := row.Lookup("alice"); err != nil || len(poss) != 1 || poss[0] != "knot" {
		t.Fatalf("alice on ryw = (%v, %v), want [knot]", poss, err)
	}
	if after := rt.Epoch(); after < before {
		t.Fatalf("cluster epoch went backwards: %d -> %d", before, after)
	}
}

// BenchmarkClusterResolve measures scatter-gather ResolveAll over a
// 4-shard router against the same object load on one store — the
// router's merge overhead and its op-count scaling, run on whatever
// CPUs the container grants.
func BenchmarkClusterResolve(b *testing.B) {
	for _, objects := range []int{64, 512} {
		b.Run(fmt.Sprintf("cluster4/objects=%d", objects), func(b *testing.B) {
			rt := newCluster(b, 4)
			putKeys(b, rt, objects)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := rt.ResolveAll(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Keys()) != objects {
					b.Fatalf("resolved %d keys, want %d", len(res.Keys()), objects)
				}
			}
		})
		b.Run(fmt.Sprintf("single/objects=%d", objects), func(b *testing.B) {
			rt := newCluster(b, 1)
			putKeys(b, rt, objects)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := rt.ResolveAll(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Keys()) != objects {
					b.Fatalf("resolved %d keys, want %d", len(res.Keys()), objects)
				}
			}
		})
	}
}
