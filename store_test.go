package trustmap

// Store v2 tests: lifecycle, parity with the legacy read paths and
// Algorithm 1 on the paper's workload families, streaming-vs-batch
// equivalence, incremental cache invalidation, randomized mutation
// parity, and concurrent use (run under -race by make race).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// facadeFromTN rebuilds a workload's internal network through the public
// facade, so store/session/legacy paths all start from identical state.
func facadeFromTN(src *tn.Network) *Network {
	n := New()
	for x := 0; x < src.NumUsers(); x++ {
		n.AddUser(src.Name(x))
	}
	for x := 0; x < src.NumUsers(); x++ {
		for _, m := range src.In(x) {
			n.AddTrust(src.Name(x), src.Name(m.Parent), m.Priority)
		}
	}
	for x := 0; x < src.NumUsers(); x++ {
		if src.HasExplicit(x) {
			n.SetBelief(src.Name(x), string(src.Explicit(x)))
		}
	}
	return n
}

// namedObjects converts workload.BulkObjects output to name-keyed belief
// maps.
func namedObjects(src *tn.Network, objs map[string]map[int]tn.Value) map[string]map[string]string {
	out := make(map[string]map[string]string, len(objs))
	for k, bs := range objs {
		m := make(map[string]string, len(bs))
		for id, v := range bs {
			m[src.Name(id)] = string(v)
		}
		out[k] = m
	}
	return out
}

func eqStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// storeFromObjects builds a store over a fresh facade copy of src and
// stores the objects.
func storeFromObjects(t *testing.T, src *tn.Network, objects map[string]map[string]string, opts ...StoreOption) *Store {
	t.Helper()
	st, err := facadeFromTN(src).NewStore(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for k, bs := range objects {
		if err := st.PutObject(ctx, k, bs); err != nil {
			t.Fatalf("PutObject(%s): %v", k, err)
		}
	}
	return st
}

// TestStoreParityWorkloads is the acceptance check: Store reads must
// equal the legacy session.BulkResolve and Network.bulkResolveWith paths
// — and Algorithm 1 itself — on the PowerLaw, NestedSCC, and Fig19
// workload families, for every (user, object).
func TestStoreParityWorkloads(t *testing.T) {
	domain := []tn.Value{"fish", "knot", "cow", "jar"}
	workloads := map[string]*tn.Network{
		"PowerLaw":  workload.PowerLaw(rand.New(rand.NewSource(3)), 150, 3, 0.15, domain),
		"NestedSCC": workload.NestedSCC(4),
	}
	fig19, _ := workload.Fig19()
	workloads["Fig19"] = fig19

	for name, src := range workloads {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var rootIDs []int
			for x := 0; x < src.NumUsers(); x++ {
				if src.HasExplicit(x) {
					rootIDs = append(rootIDs, x)
				}
			}
			objects := namedObjects(src, workload.BulkObjects(rng, rootIDs, 25))
			rootNames := make([]string, len(rootIDs))
			for i, id := range rootIDs {
				rootNames[i] = src.Name(id)
			}

			ctx := context.Background()
			legacyNet := facadeFromTN(src)
			legacy, err := legacyNet.bulkResolveWith(ctx, objects, bulkOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			sess, err := facadeFromTN(src).newSession(sessionOptions{Workers: 2, ExtraRoots: rootNames})
			if err != nil {
				t.Fatal(err)
			}
			viaSession, err := sess.BulkResolve(ctx, objects)
			if err != nil {
				t.Fatal(err)
			}
			st := storeFromObjects(t, src, objects, WithWorkers(2))
			viaStore, err := st.ResolveAll(ctx)
			if err != nil {
				t.Fatal(err)
			}

			users := legacyNet.Users()
			for k := range objects {
				for _, u := range users {
					want := legacy.Possible(u, k)
					if got := viaSession.Possible(u, k); !eqStrs(got, want) {
						t.Fatalf("%s/%s: session %v vs legacy %v", u, k, got, want)
					}
					if got := viaStore.Possible(u, k); !eqStrs(got, want) {
						t.Fatalf("%s/%s: store %v vs legacy %v", u, k, got, want)
					}
					wc, wok := legacy.Certain(u, k)
					if gc, gok := viaStore.Certain(u, k); gc != wc || gok != wok {
						t.Fatalf("cert %s/%s: store %q,%v vs legacy %q,%v", u, k, gc, gok, wc, wok)
					}
				}
			}

			// Algorithm 1 ground truth on a handful of objects: set the
			// object's beliefs as network beliefs and run the one-object
			// Resolution Algorithm.
			checked := 0
			for k, bs := range objects {
				if checked == 5 {
					break
				}
				checked++
				ref := facadeFromTN(src)
				for user, v := range bs {
					ref.SetBelief(user, v)
				}
				res, err := ref.Resolve()
				if err != nil {
					t.Fatal(err)
				}
				for _, u := range users {
					if got, want := viaStore.Possible(u, k), res.Possible(u); !eqStrs(got, want) {
						t.Fatalf("%s/%s: store %v vs Algorithm 1 %v", u, k, got, want)
					}
				}
			}
		})
	}
}

// TestStoreStreamingMatchesBatch asserts the Resolved iterator yields
// exactly the batch result set, row for row, across the chunking
// boundary (more objects than one streaming chunk).
func TestStoreStreamingMatchesBatch(t *testing.T) {
	src := workload.PowerLaw(rand.New(rand.NewSource(5)), 30, 2, 0.3, []tn.Value{"v", "w"})
	var rootIDs []int
	for x := 0; x < src.NumUsers(); x++ {
		if src.HasExplicit(x) {
			rootIDs = append(rootIDs, x)
		}
	}
	// Cross the chunk boundary so the stream runs several batches.
	objects := namedObjects(src, workload.BulkObjects(rand.New(rand.NewSource(6)), rootIDs, resolvedChunkSize+40))
	st := storeFromObjects(t, src, objects, WithWorkers(2))
	ctx := context.Background()

	batch, err := st.ResolveAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	users := st.Users()
	var streamed []string
	for row, err := range st.Resolved(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, row.Object)
		if row.Epoch() != batch.Epoch() {
			t.Fatalf("row %s epoch %d != batch epoch %d", row.Object, row.Epoch(), batch.Epoch())
		}
		for _, u := range users {
			if got, want := row.Possible(u), batch.Possible(u, row.Object); !eqStrs(got, want) {
				t.Fatalf("%s/%s: stream %v vs batch %v", u, row.Object, got, want)
			}
		}
	}
	if !eqStrs(streamed, batch.Keys()) {
		t.Fatalf("streamed keys %d != batch keys %d (or order differs)", len(streamed), len(batch.Keys()))
	}

	// Early break must not wedge the store: mutations and reads proceed.
	seen := 0
	for _, err := range st.Resolved(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		if seen++; seen == 3 {
			break
		}
	}
	if err := st.SetTrust(ctx, "u1", "u0", 9); err != nil {
		t.Fatalf("mutation after early break: %v", err)
	}
	if _, err := st.ResolveAll(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIncrementalInvalidation pins the incremental-maintenance
// contract: a belief mutation re-resolves only the touched object, a
// trust mutation invalidates everything (new epoch), and untouched reads
// serve from the cache.
func TestStoreIncrementalInvalidation(t *testing.T) {
	n := New()
	n.AddTrust("alice", "bob", 100)
	n.AddTrust("alice", "carol", 50)
	n.SetBelief("bob", "fish")
	n.SetBelief("carol", "knot")
	st, err := n.NewStore(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const numObjects = 8
	for i := 0; i < numObjects; i++ {
		if err := st.PutObject(ctx, fmt.Sprintf("o%d", i), map[string]string{"bob": fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	counters := func() (uint64, uint64) {
		s := st.Stats()
		return s.CacheHits, s.CacheMisses
	}

	if _, err := st.ResolveAll(ctx); err != nil {
		t.Fatal(err)
	}
	_, m1 := counters()
	if m1 != numObjects {
		t.Fatalf("first ResolveAll: misses = %d, want %d", m1, numObjects)
	}
	if _, err := st.ResolveAll(ctx); err != nil {
		t.Fatal(err)
	}
	h2, m2 := counters()
	if m2 != m1 || h2 != numObjects {
		t.Fatalf("clean ResolveAll: hits=%d misses=%d, want %d/%d", h2, m2, numObjects, m1)
	}

	// One belief mutation: exactly one object re-resolves.
	if err := st.PutBelief(ctx, "bob", "o3", "cow"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ResolveAll(ctx); err != nil {
		t.Fatal(err)
	}
	h3, m3 := counters()
	if m3 != m1+1 || h3 != h2+numObjects-1 {
		t.Fatalf("after PutBelief: hits=%d misses=%d, want %d/%d (one object dirty)", h3, m3, h2+numObjects-1, m1+1)
	}
	if poss, cert, err := st.Get(ctx, "alice", "o3"); err != nil || cert != "cow" {
		t.Fatalf("Get(alice, o3) = %v, %q, %v; want cow", poss, cert, err)
	}

	// A trust mutation publishes a new epoch: everything re-resolves, and
	// the new result is served (no stale cache).
	if err := st.SetTrust(ctx, "alice", "carol", 200); err != nil {
		t.Fatal(err)
	}
	if _, cert, err := st.Get(ctx, "alice", "o0"); err != nil || cert != "knot" {
		t.Fatalf("Get(alice, o0) after SetTrust = %q, %v; want knot (carol outranks bob)", cert, err)
	}
	if _, err := st.ResolveAll(ctx); err != nil {
		t.Fatal(err)
	}
	_, m4 := counters()
	if m4 != m3+numObjects {
		t.Fatalf("after SetTrust: misses=%d, want %d (all objects dirty)", m4, m3+numObjects)
	}
}

// TestStoreLifecycle covers the mutator surface end to end on a store
// grown from empty.
func TestStoreLifecycle(t *testing.T) {
	ctx := context.Background()
	st, err := NewStore(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.ResolveAll(ctx); err != nil || len(res.Keys()) != 0 {
		t.Fatalf("empty store ResolveAll = %v, %v", res, err)
	}

	// First belief creates user, object, and root in one call.
	if err := st.PutBelief(ctx, "alice", "o1", "fish"); err != nil {
		t.Fatal(err)
	}
	if poss, cert, err := st.Get(ctx, "alice", "o1"); err != nil || cert != "fish" || !eqStrs(poss, []string{"fish"}) {
		t.Fatalf("Get(alice, o1) = %v, %q, %v", poss, cert, err)
	}

	// bob follows alice through a trust mapping added afterwards.
	if err := st.SetTrust(ctx, "bob", "alice", 10); err != nil {
		t.Fatal(err)
	}
	if _, cert, err := st.Get(ctx, "bob", "o1"); err != nil || cert != "fish" {
		t.Fatalf("Get(bob, o1) = %q, %v; want fish", cert, err)
	}
	// SetTrust is an upsert: re-prioritizing is not an error.
	if err := st.SetTrust(ctx, "bob", "alice", 20); err != nil {
		t.Fatal(err)
	}

	// Defaults cover objects that omit a root.
	if err := st.SetDefault(ctx, "alice", "knot"); err != nil {
		t.Fatal(err)
	}
	if err := st.PutObject(ctx, "o2", nil); err != nil {
		t.Fatal(err)
	}
	if _, cert, err := st.Get(ctx, "bob", "o2"); err != nil || cert != "knot" {
		t.Fatalf("Get(bob, o2) = %q, %v; want knot (default)", cert, err)
	}

	// DeleteBelief falls back to the default.
	if ok, err := st.DeleteBelief(ctx, "alice", "o1"); err != nil || !ok {
		t.Fatalf("DeleteBelief = %v, %v", ok, err)
	}
	if _, cert, _ := st.Get(ctx, "alice", "o1"); cert != "knot" {
		t.Fatalf("after DeleteBelief: cert = %q, want knot", cert)
	}
	if ok, _ := st.DeleteBelief(ctx, "alice", "o1"); ok {
		t.Fatal("double DeleteBelief must report false")
	}

	// Removing the default while objects rely on it surfaces assumption
	// (ii) as a resolve-time error.
	if err := st.DeleteDefault(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(ctx, "alice", "o2"); err == nil {
		t.Fatal("uncovered root must error (assumption ii)")
	}
	if err := st.PutBelief(ctx, "alice", "o1", "cow"); err != nil {
		t.Fatal(err)
	}
	if err := st.PutBelief(ctx, "alice", "o2", "jar"); err != nil {
		t.Fatal(err)
	}
	if _, cert, err := st.Get(ctx, "alice", "o2"); err != nil || cert != "jar" {
		t.Fatalf("Get(alice, o2) = %q, %v; want jar", cert, err)
	}

	// Object bookkeeping.
	if got := st.Objects(); !eqStrs(got, []string{"o1", "o2"}) {
		t.Fatalf("Objects = %v", got)
	}
	if bs, ok := st.Object("o1"); !ok || bs["alice"] != "cow" {
		t.Fatalf("Object(o1) = %v, %v", bs, ok)
	}
	if ok, err := st.DeleteObject(ctx, "o2"); err != nil || !ok {
		t.Fatalf("DeleteObject = %v, %v", ok, err)
	}
	if ok, _ := st.DeleteObject(ctx, "o2"); ok {
		t.Fatal("double DeleteObject must report false")
	}
	if st.NumObjects() != 1 {
		t.Fatalf("NumObjects = %d, want 1", st.NumObjects())
	}
	if _, _, err := st.Get(ctx, "alice", "o2"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("deleted object: err = %v, want ErrUnknownObject", err)
	}
	if _, _, err := st.Get(ctx, "ghost", "o1"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user: err = %v, want ErrUnknownUser", err)
	}

	// Update batches several trust mutations into one epoch.
	before := st.Epoch()
	err = st.Update(func(tx *StoreTx) error {
		if err := tx.SetTrust("carol", "alice", 5); err != nil {
			return err
		}
		if ok, err := tx.RemoveTrust("bob", "alice"); err != nil || !ok {
			return fmt.Errorf("remove bob->alice: ok=%v err=%v", ok, err)
		}
		return tx.SetDefault("dave", "v")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != before+1 {
		t.Fatalf("batch published %d epochs, want 1", st.Epoch()-before)
	}

	// Validation errors.
	if err := st.PutBelief(ctx, "alice", "", "v"); err == nil {
		t.Fatal("empty object key must error")
	}
	if err := st.PutBelief(ctx, "alice", "o1", ""); err == nil {
		t.Fatal("empty value must error")
	}
	if err := st.PutObject(ctx, "o9", map[string]string{"alice": ""}); err == nil {
		t.Fatal("empty value in PutObject must error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := st.PutBelief(cancelled, "alice", "o1", "v"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
}

// TestStoreRandomizedParity interleaves random trust, default, and
// object-belief mutations through a store and checks every checkpoint
// against a from-scratch bulkResolveWith of the effective objects
// (explicit beliefs overlaid on defaults).
func TestStoreRandomizedParity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := New()
			const nUsers = 10
			name := func(i int) string { return fmt.Sprintf("u%d", i) }
			for i := 0; i < nUsers; i++ {
				n.AddUser(name(i))
			}
			for i := 0; i < nUsers*2; i++ {
				a, b := rng.Intn(nUsers), rng.Intn(nUsers)
				if a != b {
					n.AddTrust(name(a), name(b), 1+rng.Intn(5))
				}
			}
			// A fixed root pool with permanent defaults keeps the root set
			// stable, so legacy comparison objects are easy to build.
			roots := []string{name(0), name(1), name(2)}
			for _, r := range roots {
				n.SetBelief(r, "v0")
			}
			st, err := n.NewStore(WithWorkers(1 + rng.Intn(3)))
			if err != nil {
				t.Skipf("seed network invalid: %v", err)
			}
			ctx := context.Background()
			objKey := func(i int) string { return fmt.Sprintf("obj%d", i) }
			for i := 0; i < 4; i++ {
				bs := map[string]string{}
				for _, r := range roots {
					if rng.Intn(2) == 0 {
						bs[r] = fmt.Sprintf("v%d", rng.Intn(3))
					}
				}
				if err := st.PutObject(ctx, objKey(i), bs); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; step < 40; step++ {
				switch rng.Intn(6) {
				case 0:
					a, b := rng.Intn(nUsers), rng.Intn(nUsers)
					if a != b {
						st.SetTrust(ctx, name(a), name(b), 1+rng.Intn(5)) // self/dup handled inside
					}
				case 1:
					st.RemoveTrust(ctx, name(rng.Intn(nUsers)), name(rng.Intn(nUsers)))
				case 2:
					if err := st.SetDefault(ctx, roots[rng.Intn(len(roots))], fmt.Sprintf("v%d", rng.Intn(3))); err != nil {
						t.Fatal(err)
					}
				case 3:
					if err := st.PutBelief(ctx, roots[rng.Intn(len(roots))], objKey(rng.Intn(4)), fmt.Sprintf("v%d", rng.Intn(3))); err != nil {
						t.Fatal(err)
					}
				case 4:
					st.DeleteBelief(ctx, roots[rng.Intn(len(roots))], objKey(rng.Intn(4)))
				case 5:
					// Replace an object wholesale.
					bs := map[string]string{roots[rng.Intn(len(roots))]: fmt.Sprintf("v%d", rng.Intn(3))}
					if err := st.PutObject(ctx, objKey(rng.Intn(4)), bs); err != nil {
						t.Fatal(err)
					}
				}
				if step%5 != 0 {
					continue
				}
				// Effective objects: stored beliefs overlaid on defaults.
				eff := map[string]map[string]string{}
				for _, k := range st.Objects() {
					bs, _ := st.Object(k)
					m := map[string]string{}
					for _, r := range roots {
						m[r] = string(n.inner.Explicit(n.inner.UserID(r)))
					}
					for u, v := range bs {
						m[u] = v
					}
					eff[k] = m
				}
				got, err := st.ResolveAll(ctx)
				if err != nil {
					t.Fatalf("step %d: store resolve: %v", step, err)
				}
				want, err := n.bulkResolveWith(ctx, eff, bulkOptions{Workers: 2})
				if err != nil {
					t.Fatalf("step %d: legacy resolve: %v", step, err)
				}
				for k := range eff {
					for _, u := range n.Users() {
						g, w := got.Possible(u, k), want.Possible(u, k)
						if !eqStrs(g, w) {
							t.Fatalf("step %d: poss(%s, %s): store %v vs legacy %v", step, u, k, g, w)
						}
					}
				}
			}
		})
	}
}

// TestStoreConcurrentReadWrite hammers one store from resolver,
// streamer, and writer goroutines; under -race this is the Store's
// goroutine-safety regression test. Readers must always observe a
// self-consistent epoch (uniform across one batch) and writers must keep
// publishing.
func TestStoreConcurrentReadWrite(t *testing.T) {
	n := New()
	for i := 0; i < 40; i++ {
		if i > 0 {
			n.AddTrust(fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", (i-1)/2), 1+i%3)
		}
	}
	n.SetBelief("u0", "v")
	st, err := n.NewStore(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if err := st.PutObject(ctx, fmt.Sprintf("o%d", i), map[string]string{"u0": fmt.Sprintf("w%d", i%3)}); err != nil {
			t.Fatal(err)
		}
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				res, err := st.ResolveAll(ctx)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for row := range res.Rows() {
					if row.Epoch() != res.Epoch() {
						t.Errorf("torn batch: row %s epoch %d != %d", row.Object, row.Epoch(), res.Epoch())
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			for _, err := range st.Resolved(ctx) {
				if err != nil {
					t.Errorf("streamer: %v", err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < 60; i++ {
			if err := st.SetTrust(ctx, "u39", "u0", 1+i%5); err != nil {
				t.Errorf("writer trust: %v", err)
				return
			}
			if err := st.PutBelief(ctx, "u0", fmt.Sprintf("o%d", i%12), fmt.Sprintf("x%d", i)); err != nil {
				t.Errorf("writer belief: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Epochs advanced and the final state resolves consistently.
	if st.Epoch() < 60 {
		t.Fatalf("epoch %d after 60 trust mutations", st.Epoch())
	}
	if _, err := st.ResolveAll(ctx); err != nil {
		t.Fatal(err)
	}
}
