package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// oscillatorLP is the program of Example B.1 / Example 2.10.
const oscillatorLP = `
poss(u3,v).
poss(u4,w).
poss(u1,X) :- poss(u2,X).
conf(u1,u3,X) :- poss(u3,X), poss(u1,Y), Y!=X.
poss(u1,X) :- poss(u3,X), not conf(u1,u3,X).
poss(u2,X) :- poss(u1,X).
conf(u2,u4,X) :- poss(u4,X), poss(u2,Y), Y!=X.
poss(u2,X) :- poss(u4,X), not conf(u2,u4,X).
`

func write(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestModels(t *testing.T) {
	prog := write(t, "p.txt", oscillatorLP)
	var out strings.Builder
	if err := run(&out, false, false, true, 0, []string{prog}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 stable model(s)") {
		t.Errorf("expected 2 models:\n%s", out.String())
	}
}

func TestBraveQuery(t *testing.T) {
	prog := write(t, "p.txt", oscillatorLP)
	query := write(t, "q.txt", "poss(u1,U) ?")
	var out strings.Builder
	if err := run(&out, true, false, false, 0, []string{prog, query}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "poss(u1,v)") || !strings.Contains(s, "poss(u1,w)") {
		t.Errorf("brave answers wrong:\n%s", s)
	}
}

func TestCautiousQuery(t *testing.T) {
	prog := write(t, "p.txt", oscillatorLP)
	query := write(t, "q.txt", "poss(X,U) ?")
	var out strings.Builder
	if err := run(&out, false, true, false, 0, []string{prog, query}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "poss(u1,") {
		t.Errorf("u1 must have no cautious value:\n%s", s)
	}
	if !strings.Contains(s, "poss(u3,v)") {
		t.Errorf("root fact missing from cautious answers:\n%s", s)
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, false, false, false, 0, nil); err == nil {
		t.Error("no args must error")
	}
	prog := write(t, "p.txt", oscillatorLP)
	if err := run(&out, false, false, false, 0, []string{prog}); err == nil {
		t.Error("no mode must error")
	}
	if err := run(&out, true, false, false, 0, []string{prog}); err == nil {
		t.Error("brave without query must error")
	}
	bad := write(t, "bad.txt", "p(x")
	if err := run(&out, false, false, true, 0, []string{bad}); err == nil {
		t.Error("unparsable program must error")
	}
}
