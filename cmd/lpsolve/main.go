// Command lpsolve is a DLV-style solver for normal logic programs under
// the stable model semantics, as used by the paper's baseline (Section 2.3,
// Appendix B.4). It reads a program in the paper's syntax and either
// enumerates stable models or answers a brave/cautious query:
//
//	lpsolve -brave program.txt query.txt      # like "dlv.bin -brave"
//	lpsolve -cautious program.txt query.txt
//	lpsolve -models program.txt               # print all stable models
//
// A query file holds one atom followed by '?', e.g. "poss(X,U) ?".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"trustmap/internal/lp"
)

func main() {
	brave := flag.Bool("brave", false, "answer the query under brave semantics (some stable model)")
	cautious := flag.Bool("cautious", false, "answer the query under cautious semantics (every stable model)")
	models := flag.Bool("models", false, "enumerate all stable models")
	budget := flag.Int("budget", 1<<22, "search budget (leaf evaluations); 0 = unlimited")
	flag.Parse()
	if err := run(os.Stdout, *brave, *cautious, *models, *budget, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "lpsolve:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, brave, cautious, models bool, budget int, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: lpsolve [-brave|-cautious|-models] program.txt [query.txt]")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := lp.Parse(string(src))
	if err != nil {
		return err
	}
	opt := lp.Options{Budget: budget}
	switch {
	case models:
		ms, err := lp.StableModels(prog, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d stable model(s)\n", len(ms))
		for i, m := range ms {
			atoms := make([]string, 0, len(m))
			for a := range m {
				atoms = append(atoms, a)
			}
			sort.Strings(atoms)
			fmt.Fprintf(w, "M%d = {%s}\n", i+1, strings.Join(atoms, ", "))
		}
		return nil
	case brave || cautious:
		if len(args) < 2 {
			return fmt.Errorf("brave/cautious queries need a query file")
		}
		qsrc, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		query, err := lp.ParseQuery(strings.TrimSpace(string(qsrc)))
		if err != nil {
			return err
		}
		var atoms []string
		if brave {
			atoms, err = lp.Brave(prog, opt)
		} else {
			atoms, err = lp.Cautious(prog, opt)
		}
		if err != nil {
			return err
		}
		for _, a := range lp.MatchQuery(query, atoms) {
			fmt.Fprintln(w, a)
		}
		return nil
	}
	return fmt.Errorf("pick one of -brave, -cautious, -models")
}
