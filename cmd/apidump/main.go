// Command apidump prints the exported API surface of the module's public
// packages — every exported type (with exported fields and methods),
// function, constant, and variable, with full signatures — in a
// deterministic order. `make api` diffs its output against the committed
// golden (api/API.txt), so any change to the exported surface — a
// breaking change or an addition — fails CI until the golden is
// regenerated with `make api-save` and reviewed alongside the code.
//
// With -check-docs it becomes the documentation gate instead: every
// package named by -pkgs (or every package in the module, with
// -pkgs ./...) must carry a package comment, and every exported type,
// field-owning declaration, function, method, constant, and variable a
// doc comment. Each naked export is reported and the exit status is
// nonzero, so `make doc-gate` fails lint on regressions.
//
// Usage:
//
//	apidump [-pkgs .,wire,client] [-out api/API.txt]
//	apidump -check-docs [-pkgs ./...]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	pkgs := flag.String("pkgs", ".,wire,client", "comma-separated package directories relative to the module root, or ./... for the whole module")
	out := flag.String("out", "", "write to this file instead of stdout")
	checkDocs := flag.Bool("check-docs", false, "report exported symbols without doc comments and exit nonzero if any exist")
	flag.Parse()

	dirs, err := packageDirs(*pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}

	if *checkDocs {
		bad := 0
		for _, dir := range dirs {
			missing, err := undocumented(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "apidump:", err)
				os.Exit(1)
			}
			for _, m := range missing {
				fmt.Printf("%s: %s\n", dir, m)
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "apidump: %d exported symbols lack doc comments\n", bad)
			os.Exit(1)
		}
		return
	}

	var buf bytes.Buffer
	for _, dir := range dirs {
		if err := dumpPackage(&buf, dir); err != nil {
			fmt.Fprintln(os.Stderr, "apidump:", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "apidump:", err)
		os.Exit(1)
	}
}

// packageDirs expands the -pkgs value: a comma-separated directory
// list verbatim, or — for "./..." — every directory in the module tree
// holding non-test Go files.
func packageDirs(pkgs string) ([]string, error) {
	if strings.TrimSpace(pkgs) != "./..." {
		var dirs []string
		for _, dir := range strings.Split(pkgs, ",") {
			dirs = append(dirs, strings.TrimSpace(dir))
		}
		return dirs, nil
	}
	seen := make(map[string]bool)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for dir := range seen {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// undocumented lists the exported symbols of one package directory that
// carry no doc comment, plus a missing package comment. Doc position
// follows godoc convention: a FuncDecl's own doc; for const/var/type
// groups, either the group's doc or the spec's own. Exported struct
// fields and interface members ride on their declaration's doc and are
// not flagged individually.
func undocumented(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var missing []string
	pkgDoc, sawGo := false, false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		sawGo = true
		if f.Doc != nil {
			pkgDoc = true
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := recvTypeName(d)
				if d.Recv != nil && !ast.IsExported(recv) {
					continue
				}
				if d.Doc == nil {
					sym := d.Name.Name
					if recv != "" {
						sym = recv + "." + sym
					}
					missing = append(missing, "func "+sym)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							missing = append(missing, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						if anyExported(s.Names) && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, d.Tok.String()+" "+s.Names[0].Name)
						}
					}
				}
			}
		}
	}
	if sawGo && !pkgDoc {
		missing = append(missing, "package comment")
	}
	sort.Strings(missing)
	return missing, nil
}

// decl is one exported declaration, rendered, with its sort key.
type decl struct {
	key  string
	text string
}

// dumpPackage renders one package's exported surface into w.
func dumpPackage(w *bytes.Buffer, dir string) error {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Comments are not parsed: the dump tracks signatures, not docs.
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		files = append(files, f)
		pkgName = f.Name.Name
	}
	if pkgName == "" {
		return fmt.Errorf("no Go files in %s", dir)
	}

	var decls []decl
	for _, f := range files {
		for _, d := range f.Decls {
			decls = append(decls, exportedDecls(fset, d)...)
		}
	}
	sort.Slice(decls, func(i, j int) bool {
		if decls[i].key != decls[j].key {
			return decls[i].key < decls[j].key
		}
		return decls[i].text < decls[j].text
	})

	fmt.Fprintf(w, "package %s // %q\n\n", pkgName, dir)
	for _, d := range decls {
		fmt.Fprintln(w, d.text)
	}
	fmt.Fprintln(w)
	return nil
}

// exportedDecls renders the exported declarations of one top-level decl.
func exportedDecls(fset *token.FileSet, d ast.Decl) []decl {
	switch d := d.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := recvTypeName(d)
		if d.Recv != nil && !ast.IsExported(recv) {
			return nil // method on an unexported type
		}
		key := "func " + d.Name.Name
		if recv != "" {
			key = "type " + recv + " method " + d.Name.Name
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []decl{{key: key, text: render(fset, &fn)}}
	case *ast.GenDecl:
		var out []decl
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				cp := *s
				cp.Doc, cp.Comment = nil, nil
				cp.Type = filterType(s.Type)
				one := &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&cp}}
				out = append(out, decl{key: "type " + s.Name.Name, text: render(fset, one)})
			case *ast.ValueSpec:
				if !anyExported(s.Names) {
					continue
				}
				cp := *s
				cp.Doc, cp.Comment = nil, nil
				one := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&cp}}
				out = append(out, decl{key: d.Tok.String() + " " + s.Names[0].Name, text: render(fset, one)})
			}
		}
		return out
	}
	return nil
}

// filterType strips unexported members from struct and interface types,
// leaving a marker comment-free but deterministic shape.
func filterType(t ast.Expr) ast.Expr {
	switch t := t.(type) {
	case *ast.StructType:
		cp := *t
		fl := *t.Fields
		fl.List = nil
		for _, f := range t.Fields.List {
			if keepField(f) {
				fc := *f
				fc.Doc, fc.Comment = nil, nil
				fl.List = append(fl.List, &fc)
			}
		}
		cp.Fields = &fl
		return &cp
	case *ast.InterfaceType:
		cp := *t
		ml := *t.Methods
		ml.List = nil
		for _, m := range t.Methods.List {
			if keepField(m) {
				mc := *m
				mc.Doc, mc.Comment = nil, nil
				ml.List = append(ml.List, &mc)
			}
		}
		cp.Methods = &ml
		return &cp
	}
	return t
}

// keepField reports whether a struct field / interface member is part of
// the exported surface: any exported name, or an exported embedded type.
func keepField(f *ast.Field) bool {
	if len(f.Names) == 0 {
		return ast.IsExported(baseName(f.Type))
	}
	return anyExported(f.Names)
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

// recvTypeName returns the receiver's base type name, or "".
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	return baseName(d.Recv.List[0].Type)
}

// baseName unwraps pointers, generics, and selectors down to an
// identifier name.
func baseName(t ast.Expr) string {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.SelectorExpr:
			return e.Sel.Name
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// render prints one declaration in canonical gofmt style, collapsing the
// blank lines the printer inherits from source positions so the dump is
// insensitive to spacing-only edits.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("/* render error: %v */", err)
	}
	var out []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
