package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCrashRecovery is the durability acceptance test: SIGKILL the write
// storm mid-flight — twice, at different depths, with checkpoints mixed
// in — and require every acked LSN to survive each restart with resolved
// state identical to the deterministic oracle. The child is built with
// the race detector so the storm also exercises the durable store's
// locking under instrumentation.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash rounds are not -short material")
	}

	bin := filepath.Join(t.TempDir(), "crashharness")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building harness with -race: %v\n%s", err, out)
	}

	dir := t.TempDir()
	const (
		seed            = "7"
		maxOps          = 900
		checkpointEvery = "250" // several checkpoints land before each kill
	)
	args := []string{
		"-dir", dir, "-seed", seed,
		"-max-ops", fmt.Sprint(maxOps), "-checkpoint-every", checkpointEvery,
	}

	var lastAcked uint64 // highest LSN any child ever acked

	// startRound launches the harness, checks the recovery preamble
	// against lastAcked, and returns the running process with a line
	// scanner positioned at the first post-preamble line plus the
	// recovered LSN the new storm continues from.
	startRound := func(t *testing.T) (*exec.Cmd, *bufio.Scanner, *bytes.Buffer, uint64) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatalf("stdout pipe: %v", err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting harness: %v", err)
		}
		sc := bufio.NewScanner(stdout)

		var recovered uint64
		if !sc.Scan() {
			t.Fatalf("no output from harness; stderr:\n%s", stderr.String())
		}
		if _, err := fmt.Sscanf(sc.Text(), "recovered %d", &recovered); err != nil {
			t.Fatalf("want 'recovered <lsn>' first, got %q", sc.Text())
		}
		if recovered < lastAcked {
			t.Fatalf("durability violation: recovered lsn %d < last acked %d", recovered, lastAcked)
		}
		var parity uint64
		if !sc.Scan() {
			t.Fatalf("harness died before parity check; stderr:\n%s", stderr.String())
		}
		if _, err := fmt.Sscanf(sc.Text(), "parity ok %d", &parity); err != nil || parity != recovered {
			t.Fatalf("want 'parity ok %d', got %q; stderr:\n%s", recovered, sc.Text(), stderr.String())
		}
		return cmd, sc, &stderr, recovered
	}

	// Two crash rounds: let the storm ack killAfter writes, then SIGKILL
	// with no warning. The next round's preamble proves nothing acked was
	// lost and the recovered state matches the oracle.
	for round, killAfter := range []int{120, 400} {
		cmd, sc, stderr, recovered := startRound(t)
		// The storm continues from the recovered LSN — which may be a
		// few past lastAcked, since an op can commit durably an instant
		// before the SIGKILL cuts off its ack line.
		next, acks := recovered+1, 0
		for sc.Scan() {
			var lsn uint64
			if _, err := fmt.Sscanf(sc.Text(), "acked %d", &lsn); err != nil {
				t.Fatalf("round %d: unexpected line %q", round, sc.Text())
			}
			if lsn != next {
				t.Fatalf("round %d: acked %d, want contiguous %d", round, lsn, next)
			}
			next++
			lastAcked = lsn
			if acks++; acks >= killAfter {
				break
			}
		}
		if acks < killAfter {
			t.Fatalf("round %d: storm ended after %d acks (wanted %d); stderr:\n%s",
				round, acks, killAfter, stderr.String())
		}
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no defers, no flushes
			t.Fatalf("round %d: kill: %v", round, err)
		}
		for sc.Scan() {
			// Drain whatever the child wrote between our last read and
			// the kill; these acks are durable too.
			var lsn uint64
			if _, err := fmt.Sscanf(sc.Text(), "acked %d", &lsn); err == nil && lsn > lastAcked {
				lastAcked = lsn
			}
		}
		cmd.Wait() // killed: error expected, only reaped here
	}

	// Final round: run to completion, then a pure verify pass.
	cmd, sc, stderr, _ := startRound(t)
	done := false
	for sc.Scan() {
		line := sc.Text()
		if line == "done" {
			done = true
			break
		}
		var lsn uint64
		if _, err := fmt.Sscanf(line, "acked %d", &lsn); err != nil {
			t.Fatalf("final round: unexpected line %q", line)
		}
		lastAcked = lsn
	}
	if err := cmd.Wait(); err != nil || !done {
		t.Fatalf("final round: done=%v err=%v; stderr:\n%s", done, err, stderr.String())
	}
	if lastAcked != maxOps {
		t.Fatalf("storm finished at lsn %d, want %d", lastAcked, maxOps)
	}

	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("verify pass: %v\n%s", err, out)
	}
	want := fmt.Sprintf("recovered %d\nparity ok %d\ndone\n", maxOps, maxOps)
	if string(out) != want {
		t.Fatalf("verify pass output:\n%swant:\n%s", out, want)
	}
}

// TestPoisonRecovery is the fault-injection acceptance test: instead of a
// SIGKILL, the first run hits an injected WAL fsync failure mid-storm and
// must poison — refusing that op and all later mutations while exiting
// cleanly — and the second run must recover through the ordinary oracle
// preamble. The failed fsync's record reached the file, so recovery lands
// exactly at the poisoned op with full parity: proof that a storage
// failure costs availability for writes, never acknowledged data.
func TestPoisonRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process fault rounds are not -short material")
	}

	bin := filepath.Join(t.TempDir(), "crashharness")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building harness with -race: %v\n%s", err, out)
	}

	dir := t.TempDir()
	const (
		failAt = 60
		maxOps = 200
	)

	// Round 1: storm into the injected fsync failure.
	out, err := exec.Command(bin, "-dir", dir, "-seed", "7",
		"-max-ops", fmt.Sprint(maxOps), "-fail-fsync-at", fmt.Sprint(failAt)).CombinedOutput()
	if err != nil {
		t.Fatalf("poison round: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[0] != "recovered 0" || lines[1] != "parity ok 0" {
		t.Fatalf("poison round preamble: %q, %q", lines[0], lines[1])
	}
	if got, want := lines[len(lines)-1], fmt.Sprintf("poisoned %d", failAt); got != want {
		t.Fatalf("poison round ended %q, want %q\nfull output:\n%s", got, want, out)
	}
	for i, line := range lines[2 : len(lines)-1] {
		if want := fmt.Sprintf("acked %d", i+1); line != want {
			t.Fatalf("poison round line %d = %q, want %q", i+2, line, want)
		}
	}

	// Round 2: plain restart. Recovery must land exactly at the poisoned
	// op (its record hit the file before the fsync verdict), pass parity,
	// and run the storm to completion.
	out, err = exec.Command(bin, "-dir", dir, "-seed", "7",
		"-max-ops", fmt.Sprint(maxOps)).CombinedOutput()
	if err != nil {
		t.Fatalf("recovery round: %v\n%s", err, out)
	}
	lines = strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[0] != fmt.Sprintf("recovered %d", failAt) {
		t.Fatalf("recovery round: %q, want 'recovered %d'", lines[0], failAt)
	}
	if lines[1] != fmt.Sprintf("parity ok %d", failAt) {
		t.Fatalf("recovery round parity: %q, want 'parity ok %d'", lines[1], failAt)
	}
	if got := lines[len(lines)-1]; got != "done" {
		t.Fatalf("recovery round ended %q, want done\nfull output:\n%s", got, out)
	}
}
