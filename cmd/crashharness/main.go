// Command crashharness is the durable store's kill -9 acceptance rig:
// a deterministic write storm whose acknowledged writes must all survive
// an abrupt process death.
//
// The harness opens a durable store in -dir with DurabilityAlways (every
// acked mutation is fsynced before the ack), first CHECKS the recovered
// state against an in-memory oracle, then storms: it draws mutations from
// a seeded deterministic generator — op i is a pure function of (seed, i)
// — fast-forwarded to the recovered LSN, applies each, and prints
// "acked <lsn>" after the mutator returns. The driving test SIGKILLs it
// mid-storm and restarts it: on restart the recovered LSN must cover
// every previously acked write, and the oracle (the same generator
// replayed 1..LSN into an in-memory store) must resolve identically.
//
// Output protocol (one line each, in order):
//
//	recovered <lsn>
//	parity ok <lsn>
//	acked <lsn>        (repeated)
//	done
//
// With -fail-fsync-at N the harness proves the poison path instead of the
// SIGKILL path: at op N it injects one WAL fsync failure (see
// internal/faultinject), requires the store to refuse that op and every
// later mutation with trustmap.ErrPoisoned while reads keep serving,
// prints "poisoned N", and exits cleanly. The next run (without the flag)
// must recover through the ordinary preamble: the failed fsync's record
// reached the file, so recovery lands at N with full oracle parity.
//
// Any violation exits non-zero with a message on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"

	"trustmap"
	"trustmap/internal/faultinject"
)

// gen deterministically produces the storm's mutation sequence: op i is
// the i-th draw of a seeded PRNG stream, so any prefix can be replayed
// into an oracle. Every generated op is effective (upserts only — no
// deletes of possibly-absent state), so op i always lands at LSN i.
type gen struct {
	rng *rand.Rand
}

// seedUsers are the per-object roots: every generated object carries a
// belief for each, and each also holds a network default (the first
// genenerated ops), so resolution never trips assumption (ii).
var seedUsers = [...]string{"seed0", "seed1", "seed2"}

// universe are the trust-network users the storm wires together.
var universe = [...]string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}

var values = [...]string{"fish", "cow", "jar", "arrow", "knot"}

func newGen(seed int64) *gen { return &gen{rng: rand.New(rand.NewSource(seed))} }

// apply draws the i-th op (1-based, caller iterates contiguously) and
// applies it through an applier. The first len(seedUsers) ops are the
// fixed defaults that make everything afterwards resolvable.
func (g *gen) apply(ctx context.Context, i uint64, st *trustmap.Store) error {
	if i <= uint64(len(seedUsers)) {
		g.rng.Intn(2) // keep the stream aligned with the skip path
		return st.SetDefault(ctx, seedUsers[i-1], values[0])
	}
	switch k := g.rng.Intn(10); {
	case k < 4: // trust upsert
		a := universe[g.rng.Intn(len(universe))]
		b := seedUsers[g.rng.Intn(len(seedUsers))]
		return st.SetTrust(ctx, a, b, 1+g.rng.Intn(5))
	case k < 6: // network default
		u := universe[g.rng.Intn(len(universe))]
		return st.SetDefault(ctx, u, values[g.rng.Intn(len(values))])
	case k < 9: // wholesale object put, full seed-root coverage
		key := fmt.Sprintf("obj%03d", g.rng.Intn(200))
		bs := make(map[string]string, len(seedUsers))
		for _, u := range seedUsers {
			bs[u] = values[g.rng.Intn(len(values))]
		}
		return st.PutObject(ctx, key, bs)
	default: // single-belief put on a seed root (default-covered)
		key := fmt.Sprintf("obj%03d", g.rng.Intn(200))
		u := seedUsers[g.rng.Intn(len(seedUsers))]
		return st.PutBelief(ctx, u, key, values[g.rng.Intn(len(values))])
	}
}

// skip burns the PRNG draws of ops 1..n without touching a store, so the
// stream continues exactly where a previous process died.
func (g *gen) skip(n uint64) {
	for i := uint64(1); i <= n; i++ {
		if i <= uint64(len(seedUsers)) {
			g.rng.Intn(2)
			continue
		}
		switch k := g.rng.Intn(10); {
		case k < 4:
			g.rng.Intn(len(universe))
			g.rng.Intn(len(seedUsers))
			g.rng.Intn(5)
		case k < 6:
			g.rng.Intn(len(universe))
			g.rng.Intn(len(values))
		case k < 9:
			g.rng.Intn(200)
			for range seedUsers {
				g.rng.Intn(len(values))
			}
		default:
			g.rng.Intn(200)
			g.rng.Intn(len(seedUsers))
			g.rng.Intn(len(values))
		}
	}
}

// fingerprint flattens the store's full resolved state: every stored
// object's possible values for every user. Resolution is deterministic,
// so equal fingerprints mean equal durable state.
func fingerprint(st *trustmap.Store) (map[string][]string, error) {
	res, err := st.ResolveAll(context.Background())
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	for _, obj := range res.Keys() {
		for _, u := range st.Users() {
			out[u+"/"+obj] = res.Possible(u, obj)
		}
	}
	return out, nil
}

func run() error {
	dir := flag.String("dir", "", "durable store directory (required)")
	seed := flag.Int64("seed", 42, "generator seed; must stay fixed across restarts of one storm")
	maxOps := flag.Uint64("max-ops", 5000, "stop after this many total ops (across restarts)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0, "checkpoint every N ops (0 = never)")
	failFsyncAt := flag.Uint64("fail-fsync-at", 0, "inject one WAL fsync failure at this op: the store must poison and the harness exits cleanly (0 = off)")
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	ctx := context.Background()

	st, err := trustmap.OpenStore(*dir, trustmap.WithDurability(trustmap.DurabilityAlways))
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	defer st.Close()
	lsn := st.LSN()
	fmt.Printf("recovered %d\n", lsn)

	// Oracle parity: the same generator prefix replayed into a fresh
	// in-memory store must resolve identically to the recovered state.
	oracle, err := trustmap.NewStore()
	if err != nil {
		return err
	}
	og := newGen(*seed)
	for i := uint64(1); i <= lsn; i++ {
		if err := og.apply(ctx, i, oracle); err != nil {
			return fmt.Errorf("oracle op %d: %w", i, err)
		}
	}
	want, err := fingerprint(oracle)
	if err != nil {
		return fmt.Errorf("oracle resolve: %w", err)
	}
	got, err := fingerprint(st)
	if err != nil {
		return fmt.Errorf("recovered resolve: %w", err)
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("parity violation at lsn %d: recovered state diverges from oracle", lsn)
	}
	fmt.Printf("parity ok %d\n", lsn)

	// Storm: continue the deterministic sequence where the last process
	// died. DurabilityAlways means each ack below is crash-safe.
	g := newGen(*seed)
	g.skip(lsn)
	for i := lsn + 1; i <= *maxOps; i++ {
		if *failFsyncAt > 0 && i == *failFsyncAt {
			return provePoison(ctx, g, i, st)
		}
		if err := g.apply(ctx, i, st); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if got := st.LSN(); got != i {
			return fmt.Errorf("op %d landed at lsn %d: generator produced a no-op", i, got)
		}
		fmt.Printf("acked %d\n", i)
		if *checkpointEvery > 0 && i%*checkpointEvery == 0 {
			if _, err := st.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint at %d: %w", i, err)
			}
		}
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Println("done")
	return nil
}

// provePoison runs op i against a one-shot WAL fsync failure and asserts
// the poison contract: the op and every later mutation fail with
// ErrPoisoned (sticky even after the injector is disarmed), reads keep
// serving the last published epoch, and the harness exits cleanly so the
// next run can prove recovery without any SIGKILL involved.
func provePoison(ctx context.Context, g *gen, i uint64, st *trustmap.Store) error {
	faultinject.Enable(faultinject.WALSync, faultinject.FailN(0, 1, nil))
	err := g.apply(ctx, i, st)
	faultinject.Reset()
	if !errors.Is(err, trustmap.ErrPoisoned) {
		return fmt.Errorf("op %d under fsync failure: err = %v, want ErrPoisoned", i, err)
	}
	// Sticky: the injector is gone, the refusal is not.
	if err := st.SetDefault(ctx, seedUsers[0], values[0]); !errors.Is(err, trustmap.ErrPoisoned) {
		return fmt.Errorf("mutation after poison: err = %v, want ErrPoisoned", err)
	}
	// Reads still serve: the published epoch is untouched by the failure.
	if _, err := fingerprint(st); err != nil {
		return fmt.Errorf("resolve after poison: %w", err)
	}
	fmt.Printf("poisoned %d\n", i)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashharness:", err)
		os.Exit(1)
	}
}
