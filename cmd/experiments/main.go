// Command experiments regenerates the figures of the paper's evaluation
// (Section 5 and Appendix B.5) and prints each series as a table:
//
//	experiments -fig 5      # LP solver exponential on oscillator chains
//	experiments -fig 8a     # RA vs LP on many-cycle networks
//	experiments -fig 8b     # RA vs LP on power-law (web-like) networks
//	experiments -fig 8c     # bulk SQL resolution vs per-object LP
//	experiments -fig 15     # RA quadratic worst case (nested SCCs)
//	experiments -fig bulk   # sequential SQL vs compiled concurrent engine
//	experiments -fig incr   # recompile-per-mutation vs incremental apply
//	experiments -fig all
//
// -quick shrinks the sweeps for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"trustmap/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 8a, 8b, 8c, 15, all")
	quick := flag.Bool("quick", false, "smaller sweeps")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	runs := map[string]func(bool, int64){
		"5":    fig5,
		"8a":   fig8a,
		"8b":   fig8b,
		"8c":   fig8c,
		"15":   fig15,
		"bulk": figBulk,
		"incr": figIncr,
	}
	if *fig == "all" {
		for _, name := range []string{"5", "8a", "8b", "8c", "15", "bulk", "incr"} {
			runs[name](*quick, *seed)
			fmt.Println()
		}
		return
	}
	f, ok := runs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	f(*quick, *seed)
}

func fig5(quick bool, _ int64) {
	ks := []int{2, 4, 6, 8, 10, 12, 14, 16}
	if quick {
		ks = []int{2, 4, 6, 8}
	}
	s := bench.Fig5(ks)
	s.Fprint(os.Stdout)
	fmt.Printf("(exponential: each oscillator doubles the stable-model count)\n")
}

func fig8a(quick bool, _ int64) {
	raKs := []int{10, 100, 1000, 10000, 50000}
	lpKs := []int{2, 4, 6, 8, 10, 12, 14}
	if quick {
		raKs = []int{10, 100, 1000}
		lpKs = []int{2, 4, 6}
	}
	ra := bench.Fig8aRA(raKs, 3)
	ra.Fprint(os.Stdout)
	fmt.Printf("(log-log slope %.2f; ~1 is linear)\n\n", bench.FitSlope(ra))
	lp := bench.Fig8aLP(lpKs)
	lp.Fprint(os.Stdout)
}

func fig8b(quick bool, seed int64) {
	raUsers := []int{100, 1000, 10000, 50000}
	lpUsers := []int{25, 50, 100, 200}
	if quick {
		raUsers = []int{100, 1000}
		lpUsers = []int{25, 50}
	}
	ra := bench.Fig8bRA(raUsers, 3, seed)
	ra.Fprint(os.Stdout)
	fmt.Printf("(log-log slope %.2f; ~1 is linear)\n\n", bench.FitSlope(ra))
	lp := bench.Fig8bLP(lpUsers, seed)
	lp.Fprint(os.Stdout)
}

func fig8c(quick bool, seed int64) {
	counts := []int{100, 1000, 10000, 100000}
	lpCounts := []int{4, 8, 16, 32}
	if quick {
		counts = []int{100, 1000}
		lpCounts = []int{4, 8}
	}
	s := bench.Fig8c(counts, seed)
	s.Fprint(os.Stdout)
	fmt.Printf("(log-log slope %.2f; ~1 is linear in the number of objects)\n\n", bench.FitSlope(s))
	l := bench.Fig8cLP(lpCounts, seed)
	l.Fprint(os.Stdout)
}

func fig15(quick bool, _ int64) {
	ks := []int{100, 200, 400, 800, 1600, 3200}
	if quick {
		ks = []int{50, 100, 200}
	}
	s := bench.Fig15(ks, 3)
	s.Fprint(os.Stdout)
	fmt.Printf("(log-log slope %.2f; ~2 is the quadratic worst case of Theorem 2.12)\n", bench.FitSlope(s))
}

func figIncr(quick bool, seed int64) {
	sizes := []int{1000, 10000, 50000}
	muts := 20
	if quick {
		sizes = []int{500, 2000}
		muts = 6
	}
	series := bench.IncrementalUpdate(sizes, muts, seed)
	for _, s := range series {
		s.Fprint(os.Stdout)
		fmt.Println()
	}
	if last := len(series[0].Points) - 1; last >= 0 && series[1].Points[last].Seconds > 0 {
		fmt.Printf("(largest size: delta apply is %.0fx faster than recompile per mutation)\n",
			series[0].Points[last].Seconds/series[1].Points[last].Seconds)
	}
}

func figBulk(quick bool, seed int64) {
	counts := []int{100, 1000, 10000}
	users := 1000
	distinct := 64
	if quick {
		counts = []int{100, 1000}
		users = 200
		distinct = 16
	}
	workers := runtime.GOMAXPROCS(0)
	for _, s := range bench.BulkSeqVsPar(users, counts, workers, seed) {
		s.Fprint(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("(power-law network, %d users; the engine compiles the plan once per call)\n\n", users)
	series, points := bench.BulkDedup(users, counts, distinct, workers, seed)
	for _, s := range series {
		s.Fprint(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("%-14s %-14s %-16s %-14s %s\n", "objects", "signatures", "warm-hit-rate", "cold-speedup", "warm-speedup")
	for _, p := range points {
		hitRate := 0.0
		if p.WarmStats.DistinctSignatures > 0 {
			hitRate = float64(p.WarmStats.CacheHits) / float64(p.WarmStats.DistinctSignatures)
		}
		cold, warmSpeed := 0.0, 0.0
		if p.SecsDedup > 0 {
			cold = p.SecsNoDedup / p.SecsDedup
		}
		if p.SecsDedupWarm > 0 {
			warmSpeed = p.SecsNoDedup / p.SecsDedupWarm
		}
		fmt.Printf("%-14d %-14d %-16s %-14s %.1fx\n",
			p.Objects, p.Stats.DistinctSignatures,
			fmt.Sprintf("%d/%d (%.0f%%)", p.WarmStats.CacheHits, p.WarmStats.DistinctSignatures, 100*hitRate),
			fmt.Sprintf("%.1fx", cold), warmSpeed)
	}
	fmt.Printf("(clustered workload: objects drawn from %d signature prototypes, zipf-skewed;\n dedup resolves each distinct signature once and fans the result out; the\n repeat batch is served from the cross-batch signature cache)\n", distinct)
}
