// Command loadgen is the open-loop load harness for trustd: it fires
// requests at a fixed arrival rate — arrivals are scheduled by the clock,
// never by completions, so a slow server faces a growing backlog exactly
// as production traffic would behave — and reports exact latency
// percentiles plus the deterministic outcome counters the resilience
// layer exposes.
//
// Usage:
//
//	loadgen -addr http://localhost:7171 -rate 500 -duration 10s
//	loadgen -self -rate 2000 -duration 2s -read-limit 4 -slo-max-shed-frac 0.5
//
// -self serves the real stack (internal/httpd over a demo store) on an
// in-process loopback listener, so overload behavior is reproducible
// without deploying anything. With -addr, loadgen first seeds its own
// chain community into the target through ordinary mutate upserts
// (re-chunking if the server's batch limit objects), so the pre-drawn
// ops are valid against any trustd; nothing else on the target is
// touched.
//
// The op mix is pre-drawn from -seed before the clock starts: run i
// always issues the same i-th request, so two runs at the same rate are
// comparable sample by sample. -mutate-frac of requests are single-op
// mutates, -query-frac are selective relational queries (POST
// /v1/query, key-pushdown shaped so the greedy planner's fast path is
// what the run measures; arming it seeds loadgen's own objects into the
// target first); the rest resolve.
//
// Outcomes are counted by class — ok, shed (429), deadline (503),
// error — and every request lands in exactly one class: the conservation
// law the SLO gate and the tests rely on. Latency percentiles (p50 p90
// p99 p999) are computed exactly from the full sorted sample set, never
// estimated, and only over admitted (ok) requests: a shed's fast 429
// must not flatter the latency numbers.
//
// The -slo-* flags turn the report into a gate (exit 1 on violation):
//
//	-slo-min-ops N         total issued requests must reach N
//	-slo-max-shed-frac F   shed/(issued) must not exceed F
//	-slo-min-shed-frac F   shed/(issued) must reach F (asserts an overload run overloaded)
//	-slo-max-queue-depth N server max read-queue depth must not exceed N (requires stats)
//	-slo-max-p99 D         p99 of admitted requests must not exceed D
//
// -json writes the percentiles as a benchjson document (names like
// loadgen/p99, values in ns/op), so cmd/benchgate can diff and summarize
// load-harness trajectories with the same machinery as the benchmarks;
// -summary appends a GitHub-flavored markdown report (e.g. to
// $GITHUB_STEP_SUMMARY).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trustmap"
	"trustmap/client"
	"trustmap/internal/admission"
	"trustmap/internal/faultinject"
	"trustmap/internal/httpd"
	"trustmap/wire"
)

// opKind is one pre-drawn request class.
type opKind uint8

const (
	opResolve opKind = iota
	opMutate
	opQuery
)

// queryObjects is how many objects seedObjects installs and the
// pre-drawn query ops draw their key predicates from.
const queryObjects = 16

// op is one pre-drawn request: everything random is fixed before the
// clock starts.
type op struct {
	kind opKind
	user int // resolve: which user asks; mutate: which edge is re-weighted
	prio int // mutate: the new priority
}

// config is one load run, fully determined before the first request.
type config struct {
	addr      string        // target server ("" with self)
	self      bool          // serve the real stack in-process
	rate      float64       // arrivals per second
	duration  time.Duration // how long arrivals keep coming
	seed      int64
	mutFrac   float64 // fraction of arrivals that mutate
	queryFrac float64 // fraction of arrivals that run a relational query
	timeout   time.Duration

	users     int // demo community size with -self
	readLimit int // -self admission: read slots (0 = ungated)
	readQueue int
	queueWait time.Duration
	selfDelay time.Duration // -self: synthetic per-request service time

	sloMinOps     uint64
	sloShedFrac   float64 // <0 = off
	sloMinShed    float64 // <=0 = off; overload runs assert shedding DID happen
	sloQueueDepth int     // <0 = off
	sloP99        time.Duration
}

// report is the deterministic outcome of one run.
type report struct {
	Issued   uint64 `json:"issued"`
	OK       uint64 `json:"ok"`
	Shed     uint64 `json:"shed"`
	Deadline uint64 `json:"deadline"`
	Errors   uint64 `json:"errors"`

	// Exact percentiles over admitted (ok) requests.
	P50, P90, P99, P999 time.Duration

	// Admission stats scraped from the server after the run (zero-valued
	// when the target exposes none).
	Admission wire.AdmissionStats `json:"admission"`
}

// shedFrac is the shed fraction of all issued requests.
func (r *report) shedFrac() float64 {
	if r.Issued == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Issued)
}

// drawOps pre-draws the whole arrival sequence: op i is a pure function
// of (seed, i), independent of timing.
func drawOps(cfg config, n int) []op {
	rng := rand.New(rand.NewSource(cfg.seed))
	ops := make([]op, n)
	for i := range ops {
		o := op{user: rng.Intn(cfg.users), prio: 1 + rng.Intn(100)}
		// One draw decides the class, so a run with -query-frac 0 issues
		// exactly the sequence earlier loadgen versions drew from the seed.
		switch r := rng.Float64(); {
		case r < cfg.mutFrac:
			o.kind = opMutate
		case r < cfg.mutFrac+cfg.queryFrac:
			o.kind = opQuery
		}
		ops[i] = o
	}
	return ops
}

// demoStore compiles the -self community: users u0..u{n-1}, each
// trusting its predecessor, with a believing root — every resolve has a
// real trust chain to walk.
func demoStore(users int) (*trustmap.Store, error) {
	n := trustmap.New()
	n.SetBelief("u0", "fish")
	for i := 1; i < users; i++ {
		n.AddTrust(fmt.Sprintf("u%d", i), fmt.Sprintf("u%d", i-1), 10)
	}
	return n.NewStore()
}

// seedRemote installs the same chain community demoStore builds —
// u0 believes, each u_i trusts u_{i-1} — into a remote target through
// ordinary mutate upserts, so -addr works against any trustd regardless
// of what it already serves. A 413 answer re-chunks to the batch limit
// the error body names.
func seedRemote(ctx context.Context, c *client.Client, users []string) error {
	ops := []wire.Op{{Op: wire.OpSetBelief, User: users[0], Value: "fish"}}
	for i := 1; i < len(users); i++ {
		ops = append(ops, wire.Op{
			Op: wire.OpSetTrust, Truster: users[i], Trusted: users[i-1], Priority: 10,
		})
	}
	chunk := len(ops)
	for len(ops) > 0 {
		if chunk > len(ops) {
			chunk = len(ops)
		}
		if _, err := c.Mutate(ctx, ops[:chunk]); err != nil {
			var ae *client.APIError
			if errors.As(err, &ae) && ae.StatusCode == http.StatusRequestEntityTooLarge &&
				ae.Limit > 0 && ae.Limit < chunk {
				chunk = ae.Limit
				continue
			}
			return err
		}
		ops = ops[chunk:]
	}
	return nil
}

// seedObjects installs the objects the pre-drawn query ops scan —
// loadgen-obj0000..%04d — each carrying the root's belief and, on every
// third key, a conflicting tail belief, so disagreement-shaped queries
// have rows to find. Stating an object belief promotes the tail user to
// a root, and a root without a network-level default would fail
// assumption (ii) on every resolve that doesn't mention it — so the
// tail gets a spine default first, keeping the rest of the mix valid.
// The keys are namespaced to stay out of the target's own data.
func seedObjects(ctx context.Context, c *client.Client, users []string) error {
	if len(users) > 1 {
		tail := users[len(users)-1]
		if _, err := c.Mutate(ctx, []wire.Op{{Op: wire.OpSetBelief, User: tail, Value: "cow"}}); err != nil {
			return fmt.Errorf("setting a default belief for %s: %w", tail, err)
		}
	}
	for i := 0; i < queryObjects; i++ {
		beliefs := map[string]string{users[0]: "fish"}
		if i%3 == 0 && len(users) > 1 {
			beliefs[users[len(users)-1]] = fmt.Sprintf("v%d", i)
		}
		if _, err := c.PutObject(ctx, fmt.Sprintf("loadgen-obj%04d", i), beliefs); err != nil {
			return err
		}
	}
	return nil
}

// queryFor shapes the i-th pre-drawn query: a key-equality predicate
// (the planner's point-lookup pushdown) plus a residual boolean filter.
func queryFor(o op) wire.Query {
	return wire.Query{
		Where: []wire.Predicate{
			{Col: "conflicted", Op: wire.PredEq},
			{Col: "object", Op: wire.PredEq, Value: fmt.Sprintf("loadgen-obj%04d", o.user%queryObjects)},
		},
	}
}

// serveSelf starts the real serving stack on a loopback listener and
// returns its base URL and a shutdown func.
func serveSelf(cfg config) (string, func(), error) {
	st, err := demoStore(cfg.users)
	if err != nil {
		return "", nil, err
	}
	h := httpd.New(st, httpd.Config{
		DefaultTimeout: cfg.timeout,
		Reads: admission.Config{
			MaxConcurrent: cfg.readLimit, MaxQueue: cfg.readQueue, QueueTimeout: cfg.queueWait,
		},
		Mutations: admission.Config{
			MaxConcurrent: 4, MaxQueue: 64, QueueTimeout: cfg.queueWait,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	stop := func() {
		_ = srv.Close()
		wg.Wait()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// run executes one open-loop load run and reports the outcome counters
// and exact percentiles.
func run(ctx context.Context, cfg config) (*report, error) {
	addr := cfg.addr
	if cfg.self {
		if cfg.selfDelay > 0 {
			// Synthetic service time, held inside the admission slot: on a
			// small machine real handlers finish within one scheduler
			// quantum and the gates never see two requests at once, so
			// overload would be unreproducible without this.
			faultinject.Enable(faultinject.HandlerServe, faultinject.Slow(cfg.selfDelay))
			defer faultinject.Reset()
		}
		var stop func()
		var err error
		addr, stop, err = serveSelf(cfg)
		if err != nil {
			return nil, err
		}
		defer stop()
	}
	c := client.New(addr, client.WithHTTPClient(&http.Client{
		Timeout: cfg.timeout + time.Second,
		Transport: &http.Transport{
			// Open loop: the backlog under overload is bounded by the
			// arrival count, so let connections scale with it.
			MaxIdleConnsPerHost: 256,
		},
	}))

	interval := time.Duration(float64(time.Second) / cfg.rate)
	n := int(cfg.duration / interval)
	ops := drawOps(cfg, n)
	users := make([]string, cfg.users)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
	}

	if !cfg.self {
		// A remote target serves its own community, not loadgen's u0..uN
		// naming — install the chain before the clock starts so every
		// pre-drawn op is valid against any trustd.
		if err := seedRemote(ctx, c, users); err != nil {
			return nil, fmt.Errorf("seeding target with loadgen's community: %w", err)
		}
	}
	if cfg.queryFrac > 0 {
		// Query ops scan stored objects; install loadgen's namespaced set
		// before the clock starts (in both modes — the -self demo store
		// starts objectless).
		if err := seedObjects(ctx, c, users); err != nil {
			return nil, fmt.Errorf("seeding target with loadgen's objects: %w", err)
		}
	}

	rep := &report{Issued: uint64(n)}
	var okN, shedN, dlN, errN atomic.Uint64
	lat := make([]time.Duration, n) // slot i belongs to request i; 0 = not admitted
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		// Open loop: wait for the i-th arrival tick, never for responses.
		if d := start.Add(time.Duration(i) * interval).Sub(time.Now()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := ops[i]
			t0 := time.Now()
			var err error
			switch o.kind {
			case opMutate:
				// Upsert a trust edge toward the believing root; never a
				// self-edge, so every drawn mutate is valid.
				_, err = c.Mutate(ctx, []wire.Op{{
					Op: wire.OpSetTrust, Truster: users[1+o.user%(len(users)-1)],
					Trusted: "u0", Priority: o.prio,
				}})
			case opQuery:
				_, err = c.Query(ctx, queryFor(o))
			default:
				_, err = c.Resolve(ctx, nil, []string{users[o.user%len(users)]})
			}
			switch {
			case err == nil:
				okN.Add(1)
				lat[i] = time.Since(t0)
			case client.IsShed(err):
				shedN.Add(1)
			case client.IsUnavailable(err):
				dlN.Add(1)
			default:
				errN.Add(1)
			}
		}(i)
	}
	wg.Wait()
	rep.OK, rep.Shed, rep.Deadline, rep.Errors = okN.Load(), shedN.Load(), dlN.Load(), errN.Load()

	admitted := make([]time.Duration, 0, n)
	for _, d := range lat {
		if d > 0 {
			admitted = append(admitted, d)
		}
	}
	sort.Slice(admitted, func(a, b int) bool { return admitted[a] < admitted[b] })
	rep.P50 = percentile(admitted, 0.50)
	rep.P90 = percentile(admitted, 0.90)
	rep.P99 = percentile(admitted, 0.99)
	rep.P999 = percentile(admitted, 0.999)

	// Scrape the server's own deterministic counters; stats bypass
	// admission, so this works even when the run saturated the gates.
	if stats, err := c.Stats(ctx); err == nil {
		rep.Admission = stats.Admission
	}
	return rep, nil
}

// percentile reads the exact q-quantile from sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// checkSLO evaluates the armed gates and returns every violation.
func checkSLO(cfg config, rep *report) []string {
	var v []string
	if cfg.sloMinOps > 0 && rep.Issued < cfg.sloMinOps {
		v = append(v, fmt.Sprintf("issued %d < min ops %d", rep.Issued, cfg.sloMinOps))
	}
	if cfg.sloShedFrac >= 0 && rep.shedFrac() > cfg.sloShedFrac {
		v = append(v, fmt.Sprintf("shed fraction %.3f > %.3f", rep.shedFrac(), cfg.sloShedFrac))
	}
	if cfg.sloMinShed > 0 && rep.shedFrac() < cfg.sloMinShed {
		v = append(v, fmt.Sprintf("shed fraction %.3f < required %.3f (overload did not overload)", rep.shedFrac(), cfg.sloMinShed))
	}
	if cfg.sloQueueDepth >= 0 && rep.Admission.Reads.MaxQueueDepth > cfg.sloQueueDepth {
		v = append(v, fmt.Sprintf("max read-queue depth %d > %d", rep.Admission.Reads.MaxQueueDepth, cfg.sloQueueDepth))
	}
	if cfg.sloP99 > 0 && rep.P99 > cfg.sloP99 {
		v = append(v, fmt.Sprintf("admitted p99 %v > %v", rep.P99, cfg.sloP99))
	}
	return v
}

// benchjsonResult mirrors cmd/benchjson's Result, so the percentiles ride
// the same trajectory/summary machinery as the benchmarks.
type benchjsonResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func writeBenchJSON(path string, rep *report) error {
	doc := struct {
		Results []benchjsonResult `json:"results"`
	}{Results: []benchjsonResult{
		{Name: "loadgen/p50", NsPerOp: float64(rep.P50.Nanoseconds())},
		{Name: "loadgen/p90", NsPerOp: float64(rep.P90.Nanoseconds())},
		{Name: "loadgen/p99", NsPerOp: float64(rep.P99.Nanoseconds())},
		{Name: "loadgen/p999", NsPerOp: float64(rep.P999.Nanoseconds())},
	}}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// appendSummary appends the run report as GitHub-flavored markdown;
// appending (not truncating) is the step-summary contract.
func appendSummary(path string, cfg config, rep *report) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### loadgen (%.0f req/s for %v)\n\n", cfg.rate, cfg.duration)
	fmt.Fprintln(f, "| metric | value |")
	fmt.Fprintln(f, "|---|---:|")
	fmt.Fprintf(f, "| issued | %d |\n", rep.Issued)
	fmt.Fprintf(f, "| ok | %d |\n", rep.OK)
	fmt.Fprintf(f, "| shed (429) | %d (%.1f%%) |\n", rep.Shed, 100*rep.shedFrac())
	fmt.Fprintf(f, "| deadline (503) | %d |\n", rep.Deadline)
	fmt.Fprintf(f, "| errors | %d |\n", rep.Errors)
	fmt.Fprintf(f, "| p50 / p90 / p99 / p999 | %v / %v / %v / %v |\n", rep.P50, rep.P90, rep.P99, rep.P999)
	fmt.Fprintf(f, "| server reads admitted/shed | %d / %d |\n", rep.Admission.Reads.Admitted, rep.Admission.Reads.Shed)
	fmt.Fprintf(f, "| server max read-queue depth | %d |\n\n", rep.Admission.Reads.MaxQueueDepth)
	return nil
}

func printReport(cfg config, rep *report) {
	fmt.Printf("loadgen: %.0f req/s for %v (%d issued)\n", cfg.rate, cfg.duration, rep.Issued)
	fmt.Printf("  ok %d, shed %d (%.1f%%), deadline %d, errors %d\n",
		rep.OK, rep.Shed, 100*rep.shedFrac(), rep.Deadline, rep.Errors)
	fmt.Printf("  admitted latency: p50 %v  p90 %v  p99 %v  p999 %v\n",
		rep.P50, rep.P90, rep.P99, rep.P999)
	if rep.Admission.Enabled {
		fmt.Printf("  server: reads admitted %d shed %d (max queue %d), mutations admitted %d, deadline-exceeded %d\n",
			rep.Admission.Reads.Admitted, rep.Admission.Reads.Shed, rep.Admission.Reads.MaxQueueDepth,
			rep.Admission.Mutations.Admitted, rep.Admission.DeadlineExceeded)
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "target server base URL (mutually exclusive with -self)")
	flag.BoolVar(&cfg.self, "self", false, "serve the real stack in-process on a loopback listener")
	flag.Float64Var(&cfg.rate, "rate", 200, "open-loop arrival rate, requests per second")
	flag.DurationVar(&cfg.duration, "duration", 2*time.Second, "how long arrivals keep coming")
	flag.Int64Var(&cfg.seed, "seed", 42, "op-mix seed: op i is a pure function of (seed, i)")
	flag.Float64Var(&cfg.mutFrac, "mutate-frac", 0.05, "fraction of arrivals that mutate")
	flag.Float64Var(&cfg.queryFrac, "query-frac", 0, "fraction of arrivals that run a selective relational query (seeds loadgen's objects into the target first)")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Second, "per-request deadline (propagated server-side with -self)")
	flag.IntVar(&cfg.users, "users", 64, "demo community size with -self")
	flag.IntVar(&cfg.readLimit, "read-limit", 0, "-self: concurrent read slots (0 = ungated)")
	flag.IntVar(&cfg.readQueue, "read-queue", 0, "-self: read queue depth")
	flag.DurationVar(&cfg.queueWait, "queue-timeout", 100*time.Millisecond, "-self: longest a queued request waits")
	flag.DurationVar(&cfg.selfDelay, "self-delay", 0, "-self: synthetic per-request service time held inside the admission slot (reproducible overload)")
	flag.Uint64Var(&cfg.sloMinOps, "slo-min-ops", 0, "SLO: fail unless at least this many requests were issued (0 = off)")
	flag.Float64Var(&cfg.sloShedFrac, "slo-max-shed-frac", -1, "SLO: fail when shed/issued exceeds this (negative = off)")
	flag.Float64Var(&cfg.sloMinShed, "slo-min-shed-frac", 0, "SLO: fail unless shed/issued reaches this — asserts an overload run actually overloaded (0 = off)")
	flag.IntVar(&cfg.sloQueueDepth, "slo-max-queue-depth", -1, "SLO: fail when the server's max read-queue depth exceeds this (negative = off)")
	flag.DurationVar(&cfg.sloP99, "slo-max-p99", 0, "SLO: fail when admitted p99 exceeds this (0 = off)")
	jsonOut := flag.String("json", "", "write percentiles as a benchjson document to this file")
	summary := flag.String("summary", "", "append the report as markdown to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	if cfg.self == (cfg.addr != "") {
		fmt.Fprintln(os.Stderr, "loadgen: exactly one of -addr and -self is required")
		os.Exit(2)
	}
	rep, err := run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	printReport(cfg, rep)
	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if *summary != "" {
		if err := appendSummary(*summary, cfg, rep); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if violations := checkSLO(cfg, rep); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "loadgen: SLO violation:", v)
		}
		os.Exit(1)
	}
}
