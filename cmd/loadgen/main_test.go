package main

// Loadgen's own acceptance tests: the pre-drawn op mix is deterministic,
// percentiles are exact, the SLO gate trips on what it should, and — the
// one that matters — an overload run against the real in-process stack
// sheds with exact counter conservation and a bounded admitted p99.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestDrawOpsDeterministic(t *testing.T) {
	cfg := config{seed: 7, users: 16, mutFrac: 0.3}
	a, b := drawOps(cfg, 500), drawOps(cfg, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different op sequences")
	}
	mutates := 0
	for _, o := range a {
		if o.kind == opMutate {
			mutates++
		}
	}
	if mutates == 0 || mutates == len(a) {
		t.Fatalf("mutate mix = %d/%d, want a real mixture at frac 0.3", mutates, len(a))
	}
	cfg.seed = 8
	if reflect.DeepEqual(a, drawOps(cfg, 500)) {
		t.Fatal("different seeds drew identical op sequences")
	}
}

func TestPercentileExact(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 6}, {0.90, 10}, {0.99, 10}, {0.0, 1}} {
		if got := percentile(s, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %v, want 0", got)
	}
}

func TestCheckSLO(t *testing.T) {
	rep := &report{Issued: 100, OK: 80, Shed: 20, P99: 50 * time.Millisecond}
	rep.Admission.Reads.MaxQueueDepth = 7

	if v := checkSLO(config{sloMinOps: 0, sloShedFrac: -1, sloQueueDepth: -1}, rep); len(v) != 0 {
		t.Fatalf("disarmed gate reported violations: %v", v)
	}
	pass := config{sloMinOps: 100, sloShedFrac: 0.25, sloQueueDepth: 8, sloP99: 60 * time.Millisecond}
	if v := checkSLO(pass, rep); len(v) != 0 {
		t.Fatalf("passing run reported violations: %v", v)
	}
	fail := config{sloMinOps: 101, sloShedFrac: 0.1, sloQueueDepth: 6, sloP99: 40 * time.Millisecond}
	if v := checkSLO(fail, rep); len(v) != 4 {
		t.Fatalf("want 4 violations (ops, shed, queue, p99), got %v", v)
	}
	// The inverse gate: an overload run that failed to overload.
	if v := checkSLO(config{sloShedFrac: -1, sloQueueDepth: -1, sloMinShed: 0.5}, rep); len(v) != 1 {
		t.Fatalf("want 1 violation (min shed), got %v", v)
	}
	if v := checkSLO(config{sloShedFrac: -1, sloQueueDepth: -1, sloMinShed: 0.1}, rep); len(v) != 0 {
		t.Fatalf("met min-shed gate reported violations: %v", v)
	}
}

func TestWriteBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loadgen.json")
	rep := &report{P50: time.Millisecond, P90: 2 * time.Millisecond, P99: 3 * time.Millisecond, P999: 4 * time.Millisecond}
	if err := writeBenchJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []benchjsonResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 4 || doc.Results[2].Name != "loadgen/p99" || doc.Results[2].NsPerOp != 3e6 {
		t.Fatalf("benchjson doc = %+v", doc)
	}
}

// TestHealthyRunAdmitsEverything: with capacity far above the arrival
// rate, nothing sheds, nothing errors, and the client's view agrees with
// the server's deterministic counters.
func TestHealthyRunAdmitsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load runs are not -short material")
	}
	cfg := config{
		self: true, rate: 200, duration: 500 * time.Millisecond,
		seed: 42, mutFrac: 0.1, timeout: 5 * time.Second, users: 16,
		readLimit: 64, readQueue: 64, queueWait: time.Second,
	}
	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued == 0 || rep.OK != rep.Issued {
		t.Fatalf("healthy run: %+v, want every issued request ok", rep)
	}
	if rep.Shed != 0 || rep.Deadline != 0 || rep.Errors != 0 {
		t.Fatalf("healthy run had failures: %+v", rep)
	}
	if got := rep.Admission.Reads.Admitted + rep.Admission.Mutations.Admitted; got != rep.Issued {
		t.Fatalf("server admitted %d, client issued %d", got, rep.Issued)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("percentiles inverted or empty: p50 %v p99 %v", rep.P50, rep.P99)
	}
}

// TestOverloadShedsWithBoundedLatency is the ISSUE acceptance run: drive
// the real stack far past its configured capacity and require (1) a
// nonzero shed rate, (2) exact conservation between the client's observed
// outcomes and the server's deterministic admission counters, and (3) a
// bounded p99 for the requests that WERE admitted — overload degrades by
// rejecting, never by queueing everyone into latency collapse.
func TestOverloadShedsWithBoundedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load runs are not -short material")
	}
	const (
		delay     = 10 * time.Millisecond
		queueWait = 50 * time.Millisecond
		slots     = 2
		queue     = 4
	)
	cfg := config{
		self: true, rate: 400, duration: 500 * time.Millisecond,
		seed: 42, mutFrac: 0, timeout: 5 * time.Second, users: 16,
		readLimit: slots, readQueue: queue, queueWait: queueWait,
		selfDelay: delay,
	}
	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is slots/delay = 200 req/s against 400 req/s arrivals:
	// roughly half the load MUST shed.
	if rep.Shed == 0 {
		t.Fatalf("overload run shed nothing: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("overload run admitted nothing: %+v", rep)
	}
	// Conservation: every issued request landed in exactly one class, and
	// the server's counters agree with the client's observations.
	if rep.OK+rep.Shed+rep.Deadline+rep.Errors != rep.Issued {
		t.Fatalf("outcome classes do not partition issued requests: %+v", rep)
	}
	if rep.Admission.Reads.Admitted != rep.OK || rep.Admission.Reads.Shed != rep.Shed {
		t.Fatalf("server counters (admitted %d, shed %d) disagree with client (ok %d, shed %d)",
			rep.Admission.Reads.Admitted, rep.Admission.Reads.Shed, rep.OK, rep.Shed)
	}
	// The queue bound held.
	if got := rep.Admission.Reads.MaxQueueDepth; got > queue {
		t.Fatalf("max queue depth %d exceeds configured bound %d", got, queue)
	}
	// Bounded p99 of admitted requests: service time + the worst queue
	// wait + generous scheduling slack — not the seconds-long collapse an
	// unbounded queue would produce at 2x overload.
	if bound := delay + queueWait + 500*time.Millisecond; rep.P99 > bound {
		t.Fatalf("admitted p99 %v exceeds bound %v", rep.P99, bound)
	}
	// And the SLO gate agrees in both directions.
	if v := checkSLO(config{sloMinOps: 1, sloShedFrac: 0.95, sloQueueDepth: queue, sloP99: time.Second}, rep); len(v) != 0 {
		t.Fatalf("lenient SLO violated: %v", v)
	}
	if v := checkSLO(config{sloShedFrac: 0, sloQueueDepth: -1}, rep); len(v) == 0 {
		t.Fatal("zero-shed SLO passed an overloaded run")
	}
}
