package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func writeDoc(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadKeepsMinimum(t *testing.T) {
	path := writeDoc(t, "b.json", `{"results": [
		{"name": "BenchmarkX-8", "ns_per_op": 120},
		{"name": "BenchmarkX-8", "ns_per_op": 100},
		{"name": "BenchmarkX-8", "ns_per_op": 130},
		{"name": "BenchmarkY-8", "ns_per_op": 50}
	]}`)
	best, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if best["BenchmarkX-8"] != 100 || best["BenchmarkY-8"] != 50 {
		t.Fatalf("best=%v", best)
	}
}

func TestGateVerdicts(t *testing.T) {
	base := map[string]float64{
		"BenchmarkBulkResolve/engine-8": 100,
		"BenchmarkRetired-8":            10,
		"BenchmarkOther-8":              5,
	}
	cur := map[string]float64{
		"BenchmarkBulkResolve/engine-8": 150, // 1.5x: regression
		"BenchmarkNew-8":                7,   // only current: not gated
		"BenchmarkOther-8":              5,
	}
	re := regexp.MustCompile("Benchmark")
	if code := gate(os.Stdout, base, cur, re, 1.10); code != 1 {
		t.Errorf("regression must exit 1, got %d", code)
	}
	cur["BenchmarkBulkResolve/engine-8"] = 105 // within threshold
	if code := gate(os.Stdout, base, cur, re, 1.10); code != 0 {
		t.Errorf("clean run must exit 0, got %d", code)
	}
	// Pattern excludes the regressing benchmark.
	cur["BenchmarkBulkResolve/engine-8"] = 500
	if code := gate(os.Stdout, base, cur, regexp.MustCompile("Other"), 1.10); code != 0 {
		t.Errorf("filtered run must exit 0, got %d", code)
	}
}

func TestAppendSummaryMarkdown(t *testing.T) {
	base := map[string]float64{
		"BenchmarkBulkResolve/engine-8": 100,
		"BenchmarkRetired-8":            10,
	}
	cur := map[string]float64{
		"BenchmarkBulkResolve/engine-8": 150,
		"BenchmarkNew-8":                7,
	}
	path := filepath.Join(t.TempDir(), "summary.md")
	re := regexp.MustCompile("Benchmark")
	// Two appends: the step-summary file accumulates across steps.
	for i := 0; i < 2; i++ {
		if err := appendSummary(path, base, cur, re, 1.10); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"| benchmark | base ns/op | current ns/op | ratio | verdict |",
		"**REGRESSION**",
		"new (not gated)",
		"retired (not gated)",
		"1.50x",
	} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(out) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if got := len(regexp.MustCompile(`### Bench gate`).FindAllString(out, -1)); got != 2 {
		t.Errorf("append mode: %d headers, want 2", got)
	}
}
