// Command benchgate compares two benchjson documents (bench/BENCH_*.json)
// and fails when a tracked benchmark regressed beyond a threshold: the
// dependency-free core of `make bench-gate`. benchstat (when installed)
// renders the human report; benchgate renders the verdict.
//
// Usage:
//
//	benchgate -baseline bench/BENCH_baseline.json -current bench/BENCH_gate.json \
//	          -pattern 'BenchmarkBulkResolve|BenchmarkIncrementalUpdate' -threshold 1.10
//
// Benchmarks present on only one side are reported but never fail the
// gate (new benchmarks appear, retired ones disappear). Multiple samples
// of one benchmark name are aggregated by their minimum ns/op — the
// least-noise estimator for wall-clock benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// result mirrors cmd/benchjson's Result.
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// document mirrors cmd/benchjson's Document.
type document struct {
	Results []result `json:"results"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline benchjson file (required)")
	current := flag.String("current", "", "current benchjson file (required)")
	pattern := flag.String("pattern", ".", "regexp of benchmark names to gate")
	threshold := flag.Float64("threshold", 1.10, "fail when current/baseline ns/op exceeds this")
	flag.Parse()
	if *baseline == "" || *current == "" {
		flag.Usage()
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fatal(fmt.Errorf("bad -pattern: %w", err))
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	code := gate(os.Stdout, base, cur, re, *threshold)
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	best := make(map[string]float64)
	for _, r := range doc.Results {
		if r.NsPerOp <= 0 {
			continue
		}
		if old, ok := best[r.Name]; !ok || r.NsPerOp < old {
			best[r.Name] = r.NsPerOp
		}
	}
	return best, nil
}

// gate prints one verdict line per gated benchmark and returns the exit
// code: 1 when any matched benchmark regressed beyond the threshold.
func gate(w *os.File, base, cur map[string]float64, re *regexp.Regexp, threshold float64) int {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-60s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "ratio", "verdict")
	failed := 0
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-60s %14s %14.0f %8s  new (not gated)\n", name, "-", c, "-")
			continue
		}
		ratio := c / b
		verdict := "ok"
		if ratio > threshold {
			verdict = fmt.Sprintf("REGRESSION (> %.2fx)", threshold)
			failed++
		} else if ratio < 1/threshold {
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %7.2fx  %s\n", name, b, c, ratio, verdict)
	}
	for name := range base {
		if re.MatchString(name) {
			if _, ok := cur[name]; !ok {
				fmt.Fprintf(w, "%-60s %14.0f %14s %8s  retired (not gated)\n", name, base[name], "-", "-")
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(w, "\nbenchgate: %d regression(s) beyond %.2fx\n", failed, threshold)
		return 1
	}
	fmt.Fprintln(w, "\nbenchgate: no regressions")
	return 0
}
