// Command benchgate compares two benchjson documents (bench/BENCH_*.json)
// and fails when a tracked benchmark regressed beyond a threshold: the
// dependency-free core of `make bench-gate`. benchstat (when installed)
// renders the human report; benchgate renders the verdict.
//
// Usage:
//
//	benchgate -baseline bench/BENCH_baseline.json -current bench/BENCH_gate.json \
//	          -pattern 'BenchmarkBulkResolve|BenchmarkIncrementalUpdate' -threshold 1.10
//
// Benchmarks present on only one side are reported but never fail the
// gate (new benchmarks appear, retired ones disappear). Multiple samples
// of one benchmark name are aggregated by their minimum ns/op — the
// least-noise estimator for wall-clock benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// result mirrors cmd/benchjson's Result.
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// document mirrors cmd/benchjson's Document.
type document struct {
	Results []result `json:"results"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline benchjson file (required)")
	current := flag.String("current", "", "current benchjson file (required)")
	pattern := flag.String("pattern", ".", "regexp of benchmark names to gate")
	threshold := flag.Float64("threshold", 1.10, "fail when current/baseline ns/op exceeds this")
	summary := flag.String("summary", "", "append the delta table as GitHub-flavored markdown to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		flag.Usage()
		os.Exit(2)
	}
	re, err := regexp.Compile(*pattern)
	if err != nil {
		fatal(fmt.Errorf("bad -pattern: %w", err))
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	code := gate(os.Stdout, base, cur, re, *threshold)
	if *summary != "" {
		if err := appendSummary(*summary, base, cur, re, *threshold); err != nil {
			fatal(err)
		}
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	best := make(map[string]float64)
	for _, r := range doc.Results {
		if r.NsPerOp <= 0 {
			continue
		}
		if old, ok := best[r.Name]; !ok || r.NsPerOp < old {
			best[r.Name] = r.NsPerOp
		}
	}
	return best, nil
}

// rowClass classifies one comparison row; the gate exit code and both
// renderings (text report and markdown summary) derive from it, so the
// two outputs can never disagree on a verdict.
type rowClass int

const (
	rowOK rowClass = iota
	rowImproved
	rowRegression
	rowNew     // only in the current run: reported, never gated
	rowRetired // only in the baseline: reported, never gated
)

// row is one classified benchmark comparison.
type row struct {
	name      string
	base, cur float64
	ratio     float64
	class     rowClass
}

// classify computes the comparison rows — current benchmarks matching re
// (sorted), then retired baselines (sorted) — and the regression count.
func classify(base, cur map[string]float64, re *regexp.Regexp, threshold float64) (rows []row, failed int) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		r := row{name: name, cur: cur[name], class: rowNew}
		if b, ok := base[name]; ok {
			r.base, r.ratio = b, cur[name]/b
			switch {
			case r.ratio > threshold:
				r.class = rowRegression
				failed++
			case r.ratio < 1/threshold:
				r.class = rowImproved
			default:
				r.class = rowOK
			}
		}
		rows = append(rows, r)
	}
	retired := make([]string, 0)
	for name := range base {
		if _, ok := cur[name]; !ok && re.MatchString(name) {
			retired = append(retired, name)
		}
	}
	sort.Strings(retired)
	for _, name := range retired {
		rows = append(rows, row{name: name, base: base[name], class: rowRetired})
	}
	return rows, failed
}

// gate prints one verdict line per gated benchmark and returns the exit
// code: 1 when any matched benchmark regressed beyond the threshold.
func gate(w *os.File, base, cur map[string]float64, re *regexp.Regexp, threshold float64) int {
	rows, failed := classify(base, cur, re, threshold)
	fmt.Fprintf(w, "%-60s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "ratio", "verdict")
	for _, r := range rows {
		switch r.class {
		case rowNew:
			fmt.Fprintf(w, "%-60s %14s %14.0f %8s  new (not gated)\n", r.name, "-", r.cur, "-")
		case rowRetired:
			fmt.Fprintf(w, "%-60s %14.0f %14s %8s  retired (not gated)\n", r.name, r.base, "-", "-")
		default:
			verdict := "ok"
			if r.class == rowRegression {
				verdict = fmt.Sprintf("REGRESSION (> %.2fx)", threshold)
			} else if r.class == rowImproved {
				verdict = "improved"
			}
			fmt.Fprintf(w, "%-60s %14.0f %14.0f %7.2fx  %s\n", r.name, r.base, r.cur, r.ratio, verdict)
		}
	}
	if failed > 0 {
		fmt.Fprintf(w, "\nbenchgate: %d regression(s) beyond %.2fx\n", failed, threshold)
		return 1
	}
	fmt.Fprintln(w, "\nbenchgate: no regressions")
	return 0
}

// appendSummary appends the delta table as GitHub-flavored markdown —
// the $GITHUB_STEP_SUMMARY rendering, so a regression is visible on the
// workflow run page without downloading artifacts. Appending (not
// truncating) is the step-summary contract: several steps may share the
// file.
func appendSummary(path string, base, cur map[string]float64, re *regexp.Regexp, threshold float64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, failed := classify(base, cur, re, threshold)
	fmt.Fprintf(f, "### Bench gate (threshold %.2fx)\n\n", threshold)
	fmt.Fprintln(f, "| benchmark | base ns/op | current ns/op | ratio | verdict |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---|")
	for _, r := range rows {
		switch r.class {
		case rowNew:
			fmt.Fprintf(f, "| `%s` | - | %.0f | - | new (not gated) |\n", r.name, r.cur)
		case rowRetired:
			fmt.Fprintf(f, "| `%s` | %.0f | - | - | retired (not gated) |\n", r.name, r.base)
		default:
			verdict := "ok"
			if r.class == rowRegression {
				verdict = fmt.Sprintf("**REGRESSION** (> %.2fx)", threshold)
			} else if r.class == rowImproved {
				verdict = "improved"
			}
			fmt.Fprintf(f, "| `%s` | %.0f | %.0f | %.2fx | %s |\n", r.name, r.base, r.cur, r.ratio, verdict)
		}
	}
	if failed > 0 {
		fmt.Fprintf(f, "\n%d regression(s) beyond %.2fx.\n\n", failed, threshold)
	} else {
		fmt.Fprintf(f, "\nNo regressions.\n\n")
	}
	return nil
}
