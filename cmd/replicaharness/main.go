// Command replicaharness is the replication stack's kill -9 acceptance
// rig: a primary/replica pair under a seeded write storm, the primary
// SIGKILLed mid-storm, the replica manually promoted, and every
// acked-durable LSN required to survive with resolved state identical
// to a deterministic oracle — while the replica's reads keep answering
// 200 with bounded staleness through the whole failover.
//
// The driver (the default mode) spawns this same binary as a killable
// primary child (-mode serve: a durable DurabilityAlways store behind
// the real internal/httpd handler), runs a read replica in-process (an
// internal/replica tailer behind its own handler), and storms through
// the failover-aware client — mutations pinned to the primary, reads
// load-balanced — one op per request, so op i acks at exactly LSN i.
// After -kill-after acks it SIGKILLs the child between requests (so the
// acked-durable frontier is exact), salvages the dead primary's WAL
// tail into the replica (replica.Salvage — the runbook step that closes
// the async-shipping gap to zero), promotes the replica over HTTP, and
// continues the same storm against the new primary: the client rides
// the dead endpoint's connection refusals onto the promoted one. A
// concurrent reader hammers the replica's read endpoints throughout,
// counting post-kill successes and the worst staleness it saw.
//
// Output protocol (one line each, acked repeated):
//
//	primary <url>
//	replica <url>
//	acked <lsn>
//	killed <lsn>
//	salvaged <n>
//	promoted <lsn>
//	acked <lsn>
//	parity ok <lsn>
//	reads ok <total> <post-kill> <max-staleness>
//	restart ok <lsn>
//	done
//
// Any violation exits non-zero with a message on stderr. -summary FILE
// appends a markdown run report (for CI step summaries).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trustmap"
	"trustmap/client"
	"trustmap/internal/httpd"
	"trustmap/internal/replica"
	"trustmap/wire"
)

// op is one storm mutation, applied identically through the HTTP client
// (against the fleet) and directly (into the oracle). Every op is an
// upsert, so op i always lands at LSN i.
type op struct {
	kind    int // 0 set-trust, 1 set-default, 2 put-object, 3 put-belief
	a, b, v string
	prio    int
	beliefs map[string]string
}

var (
	seedUsers = [...]string{"seed0", "seed1", "seed2"}
	universe  = [...]string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}
	values    = [...]string{"fish", "cow", "jar", "arrow", "knot"}
)

// genOps draws the whole storm up front: op i (1-based) is a pure
// function of (seed, i). The first ops are fixed defaults for the seed
// roots, so every later object resolves.
func genOps(seed int64, n uint64) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, 0, n)
	for i := uint64(1); i <= n; i++ {
		if i <= uint64(len(seedUsers)) {
			ops = append(ops, op{kind: 1, a: seedUsers[i-1], v: values[0]})
			continue
		}
		switch k := rng.Intn(10); {
		case k < 4:
			ops = append(ops, op{kind: 0,
				a:    universe[rng.Intn(len(universe))],
				b:    seedUsers[rng.Intn(len(seedUsers))],
				prio: 1 + rng.Intn(5)})
		case k < 6:
			ops = append(ops, op{kind: 1,
				a: universe[rng.Intn(len(universe))],
				v: values[rng.Intn(len(values))]})
		case k < 9:
			bs := make(map[string]string, len(seedUsers))
			for _, u := range seedUsers {
				bs[u] = values[rng.Intn(len(values))]
			}
			ops = append(ops, op{kind: 2,
				a: fmt.Sprintf("obj%03d", rng.Intn(100)), beliefs: bs})
		default:
			ops = append(ops, op{kind: 3,
				a: fmt.Sprintf("obj%03d", rng.Intn(100)),
				b: seedUsers[rng.Intn(len(seedUsers))],
				v: values[rng.Intn(len(values))]})
		}
	}
	return ops
}

// applyClient sends one op through the failover-aware client and
// returns the LSN the fleet acked it at.
func applyClient(ctx context.Context, c *client.Client, o op) (uint64, error) {
	switch o.kind {
	case 0:
		res, err := c.Mutate(ctx, []wire.Op{{Op: wire.OpSetTrust, Truster: o.a, Trusted: o.b, Priority: o.prio}})
		return res.LSN, err
	case 1:
		res, err := c.Mutate(ctx, []wire.Op{{Op: wire.OpSetBelief, User: o.a, Value: o.v}})
		return res.LSN, err
	case 2:
		res, err := c.PutObject(ctx, o.a, o.beliefs)
		return res.LSN, err
	default:
		res, err := c.PutBelief(ctx, o.a, o.b, o.v)
		return res.LSN, err
	}
}

// applyStore replays one op into the oracle store.
func applyStore(ctx context.Context, st *trustmap.Store, o op) error {
	switch o.kind {
	case 0:
		return st.SetTrust(ctx, o.a, o.b, o.prio)
	case 1:
		return st.SetDefault(ctx, o.a, o.v)
	case 2:
		return st.PutObject(ctx, o.a, o.beliefs)
	default:
		return st.PutBelief(ctx, o.b, o.a, o.v)
	}
}

// fingerprint flattens a store's full resolved state.
func fingerprint(st *trustmap.Store) (map[string][]string, error) {
	res, err := st.ResolveAll(context.Background())
	if err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	for _, obj := range res.Keys() {
		for _, u := range st.Users() {
			out[u+"/"+obj] = res.Possible(u, obj)
		}
	}
	return out, nil
}

// serve is the killable primary child: a durable store behind the real
// handler, its base URL announced on stdout, then serve until killed.
func serve(dir, addr string) error {
	st, err := trustmap.OpenStore(dir, trustmap.WithDurability(trustmap.DurabilityAlways))
	if err != nil {
		return err
	}
	h := httpd.New(st, httpd.Config{WALPoll: 5 * time.Millisecond})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("primary http://%s\n", ln.Addr())
	return http.Serve(ln, h)
}

// reader hammers the replica's read endpoints until stopped, requiring
// every response to be a 200 carrying a parseable staleness header.
type reader struct {
	url      string
	stop     chan struct{}
	done     chan struct{}
	total    atomic.Uint64
	postKill atomic.Uint64
	killed   atomic.Bool
	maxStale atomic.Uint64

	mu  sync.Mutex
	err error
}

func (rd *reader) run() {
	defer close(rd.done)
	hc := &http.Client{Timeout: 5 * time.Second}
	for {
		select {
		case <-rd.stop:
			return
		default:
		}
		resp, err := hc.Get(rd.url + "/v1/objects")
		if err == nil {
			staleness := resp.Header.Get(wire.StalenessHeader)
			_ = resp.Body.Close()
			var lag uint64
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("replica read answered %s", resp.Status)
			} else if lag, err = strconv.ParseUint(staleness, 10, 64); err != nil {
				err = fmt.Errorf("replica read staleness header %q: %v", staleness, err)
			}
			if err == nil {
				rd.total.Add(1)
				if rd.killed.Load() {
					rd.postKill.Add(1)
				}
				for {
					cur := rd.maxStale.Load()
					if lag <= cur || rd.maxStale.CompareAndSwap(cur, lag) {
						break
					}
				}
			}
		}
		if err != nil {
			// The staleness header disappears once the replica is promoted:
			// reads after that point only need to keep answering 200.
			if rd.killed.Load() && resp != nil && resp.StatusCode == http.StatusOK {
				rd.total.Add(1)
				rd.postKill.Add(1)
			} else {
				rd.mu.Lock()
				rd.err = err
				rd.mu.Unlock()
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func drive(primaryDir, replicaDir string, seed int64, maxOps, killAfter uint64, summary string) error {
	ctx := context.Background()
	self, err := os.Executable()
	if err != nil {
		return err
	}

	// The killable primary: this same binary in serve mode.
	child := exec.Command(self, "-mode", "serve", "-dir", primaryDir, "-addr", "127.0.0.1:0")
	child.Stderr = os.Stderr
	childOut, err := child.StdoutPipe()
	if err != nil {
		return err
	}
	if err := child.Start(); err != nil {
		return err
	}
	defer func() {
		if child.Process != nil {
			_ = child.Process.Kill()
			_, _ = child.Process.Wait()
		}
	}()
	var primaryURL string
	if _, err := fmt.Fscanf(childOut, "primary %s\n", &primaryURL); err != nil {
		return fmt.Errorf("reading primary address: %w", err)
	}
	go func() { // drain so the child never blocks on a full pipe
		buf := make([]byte, 4096)
		for {
			if _, err := childOut.Read(buf); err != nil {
				return
			}
		}
	}()
	fmt.Printf("primary %s\n", primaryURL)

	// The in-process replica: durable store + tailer + real handler.
	rst, err := trustmap.OpenStore(replicaDir, trustmap.WithDurability(trustmap.DurabilityAlways))
	if err != nil {
		return fmt.Errorf("open replica: %w", err)
	}
	defer rst.Close()
	tail := replica.Start(rst, primaryURL, replica.WithBackoff(5*time.Millisecond, 250*time.Millisecond))
	rh := httpd.New(rst, httpd.Config{WALPoll: 5 * time.Millisecond})
	rh.SetReplication(tail)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	replicaURL := "http://" + rln.Addr().String()
	go http.Serve(rln, rh) //nolint:errcheck // torn down with the process
	defer rln.Close()
	fmt.Printf("replica %s\n", replicaURL)

	// The failover-aware client under test: mutations pinned to the
	// primary, reads load-balanced, retries riding transport failures
	// onto the next endpoint. RetryMutations is safe here: every storm op
	// is an upsert.
	c := client.New(primaryURL, client.WithEndpoints(replicaURL),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, RetryMutations: true, Seed: seed}))

	// The replica-side reader runs through the kill and the promotion.
	rd := &reader{url: replicaURL, stop: make(chan struct{}), done: make(chan struct{})}
	go rd.run()

	ops := genOps(seed, maxOps)
	for i := uint64(1); i <= killAfter; i++ {
		lsn, err := applyClient(ctx, c, ops[i-1])
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if lsn != i {
			return fmt.Errorf("op %d acked at lsn %d: generator produced a no-op", i, lsn)
		}
		fmt.Printf("acked %d\n", lsn)
	}

	// SIGKILL between requests: no in-flight mutation, so the acked-
	// durable frontier is exactly killAfter.
	if err := child.Process.Kill(); err != nil {
		return fmt.Errorf("kill primary: %w", err)
	}
	_, _ = child.Process.Wait()
	child.Process = nil
	rd.killed.Store(true)
	fmt.Printf("killed %d\n", killAfter)

	// Runbook: salvage the dead primary's WAL tail (async shipping may
	// have left the replica a few batches behind the acked frontier),
	// then promote over HTTP. After salvage the replica MUST hold every
	// acked LSN.
	salvaged, err := replica.Salvage(primaryDir, rst)
	if err != nil {
		return fmt.Errorf("salvage: %w", err)
	}
	fmt.Printf("salvaged %d\n", salvaged)
	if got := rst.LSN(); got != killAfter {
		return fmt.Errorf("durability violation: replica at lsn %d after salvage, acked frontier is %d", got, killAfter)
	}
	promoter := client.New(replicaURL)
	pr, err := promoter.Promote(ctx)
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if !pr.WasReplica || pr.LSN != killAfter {
		return fmt.Errorf("promote = %+v, want was_replica at lsn %d", pr, killAfter)
	}
	fmt.Printf("promoted %d\n", pr.LSN)

	// Continue the same storm: the client's believed primary is dead, so
	// the retry path must walk onto the promoted replica.
	for i := killAfter + 1; i <= maxOps; i++ {
		lsn, err := applyClient(ctx, c, ops[i-1])
		if err != nil {
			return fmt.Errorf("post-promote op %d: %w", i, err)
		}
		if lsn != i {
			return fmt.Errorf("post-promote op %d acked at lsn %d: history diverged across the failover", i, lsn)
		}
		fmt.Printf("acked %d\n", lsn)
	}

	// Oracle parity: the full op sequence replayed into a fresh in-memory
	// store must resolve identically to the failed-over fleet's state.
	oracle, err := trustmap.NewStore()
	if err != nil {
		return err
	}
	for i, o := range ops {
		if err := applyStore(ctx, oracle, o); err != nil {
			return fmt.Errorf("oracle op %d: %w", i+1, err)
		}
	}
	want, err := fingerprint(oracle)
	if err != nil {
		return err
	}
	got, err := fingerprint(rst)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("parity violation at lsn %d: promoted state diverges from oracle", maxOps)
	}
	fmt.Printf("parity ok %d\n", maxOps)

	close(rd.stop)
	<-rd.done
	rd.mu.Lock()
	rerr := rd.err
	rd.mu.Unlock()
	if rerr != nil {
		return fmt.Errorf("replica reads: %w", rerr)
	}
	if rd.postKill.Load() == 0 {
		return fmt.Errorf("no successful replica read after the primary died")
	}
	if rd.maxStale.Load() > maxOps {
		return fmt.Errorf("staleness %d exceeds the storm length %d", rd.maxStale.Load(), maxOps)
	}
	fmt.Printf("reads ok %d %d %d\n", rd.total.Load(), rd.postKill.Load(), rd.maxStale.Load())

	// The promoted store is itself durable: close and reopen it.
	rln.Close()
	if err := rst.Close(); err != nil {
		return fmt.Errorf("close promoted store: %w", err)
	}
	again, err := trustmap.OpenStore(replicaDir, trustmap.WithDurability(trustmap.DurabilityAlways))
	if err != nil {
		return fmt.Errorf("reopen promoted store: %w", err)
	}
	defer again.Close()
	if again.LSN() != maxOps {
		return fmt.Errorf("promoted store recovered at lsn %d, want %d", again.LSN(), maxOps)
	}
	if got, err := fingerprint(again); err != nil || !reflect.DeepEqual(got, want) {
		return fmt.Errorf("promoted store restart parity: err=%v diverged=%v", err, !reflect.DeepEqual(got, want))
	}
	fmt.Printf("restart ok %d\n", again.LSN())

	if summary != "" {
		md := fmt.Sprintf(`## replicaharness

| metric | value |
|---|---|
| ops acked | %d |
| primary killed after | %d |
| batches salvaged from dead primary | %d |
| replica reads (total / post-kill) | %d / %d |
| max observed staleness (batches) | %d |
| oracle parity | ok |
| promoted-store restart | ok |
`, maxOps, killAfter, salvaged, rd.total.Load(), rd.postKill.Load(), rd.maxStale.Load())
		f, err := os.OpenFile(summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(md); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Println("done")
	return nil
}

func main() {
	mode := flag.String("mode", "drive", "drive (the full failover scenario) or serve (killable primary child)")
	dir := flag.String("dir", "", "serve mode: durable store directory")
	addr := flag.String("addr", "127.0.0.1:0", "serve mode: listen address")
	primaryDir := flag.String("primary-dir", "", "drive mode: primary data directory (required)")
	replicaDir := flag.String("replica-dir", "", "drive mode: replica data directory (required)")
	seed := flag.Int64("seed", 42, "storm generator seed")
	maxOps := flag.Uint64("max-ops", 300, "total storm ops across the failover")
	killAfter := flag.Uint64("kill-after", 120, "SIGKILL the primary after this many acked ops")
	summary := flag.String("summary", "", "append a markdown run report to this file")
	flag.Parse()

	var err error
	switch *mode {
	case "serve":
		if *dir == "" {
			err = fmt.Errorf("serve mode requires -dir")
		} else {
			err = serve(*dir, *addr)
		}
	case "drive":
		switch {
		case *primaryDir == "" || *replicaDir == "":
			err = fmt.Errorf("drive mode requires -primary-dir and -replica-dir")
		case *killAfter < uint64(len(seedUsers))+1 || *killAfter >= *maxOps:
			err = fmt.Errorf("-kill-after must be in [%d, max-ops)", len(seedUsers)+1)
		default:
			err = drive(*primaryDir, *replicaDir, *seed, *maxOps, *killAfter, *summary)
		}
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "replicaharness:", err)
		os.Exit(1)
	}
}
