package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestReplicaFailover is the replication acceptance test: run the full
// kill-the-primary scenario (see the package comment for the protocol)
// and assert every line of it — contiguous acks before and after the
// failover, the salvage closing the durability gap, the promote landing
// exactly at the acked frontier, oracle parity, reads surviving the
// primary's death, and the promoted store recovering after a restart.
// The harness is built with the race detector, so the storm also runs
// the tailer, the stream handler, and the failover client under
// instrumentation.
func TestReplicaFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process failover rounds are not -short material")
	}

	bin := filepath.Join(t.TempDir(), "replicaharness")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building harness with -race: %v\n%s", err, out)
	}

	const (
		maxOps    = 260
		killAfter = 110
	)
	cmd := exec.Command(bin,
		"-primary-dir", filepath.Join(t.TempDir(), "primary"),
		"-replica-dir", filepath.Join(t.TempDir(), "replica"),
		"-seed", "7", "-max-ops", fmt.Sprint(maxOps), "-kill-after", fmt.Sprint(killAfter))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	sc := bufio.NewScanner(stdout)
	next := func(format string, args ...any) {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("harness output ended wanting %q; stderr:\n%s", format, stderr.String())
		}
		if _, err := fmt.Sscanf(sc.Text(), format, args...); err != nil {
			t.Fatalf("line %q does not match %q: %v; stderr:\n%s", sc.Text(), format, err, stderr.String())
		}
	}

	var primaryURL, replicaURL string
	next("primary %s", &primaryURL)
	next("replica %s", &replicaURL)

	// Every pre-kill op acks contiguously at its generator index.
	var lsn uint64
	for i := uint64(1); i <= killAfter; i++ {
		next("acked %d", &lsn)
		if lsn != i {
			t.Fatalf("acked %d, want contiguous %d", lsn, i)
		}
	}

	// The failover sequence: the kill frontier, the salvage, and a
	// promote at exactly the last acked LSN — zero acked-durable loss.
	var killed, salvaged, promoted uint64
	next("killed %d", &killed)
	if killed != killAfter {
		t.Fatalf("killed at %d, want %d", killed, killAfter)
	}
	next("salvaged %d", &salvaged)
	next("promoted %d", &promoted)
	if promoted != killAfter {
		t.Fatalf("promoted at lsn %d, want the acked frontier %d", promoted, killAfter)
	}

	// The storm continues against the promoted replica without a gap.
	for i := uint64(killAfter + 1); i <= maxOps; i++ {
		next("acked %d", &lsn)
		if lsn != i {
			t.Fatalf("post-promote acked %d, want contiguous %d", lsn, i)
		}
	}

	var parity, total, postKill, maxStale, restarted uint64
	next("parity ok %d", &parity)
	if parity != maxOps {
		t.Fatalf("parity at lsn %d, want %d", parity, maxOps)
	}
	next("reads ok %d %d %d", &total, &postKill, &maxStale)
	if postKill == 0 {
		t.Fatal("no replica read succeeded after the primary died")
	}
	next("restart ok %d", &restarted)
	if restarted != maxOps {
		t.Fatalf("promoted store restarted at lsn %d, want %d", restarted, maxOps)
	}
	if !sc.Scan() || sc.Text() != "done" {
		t.Fatalf("want final 'done', got %q; stderr:\n%s", sc.Text(), stderr.String())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("harness exit: %v; stderr:\n%s", err, stderr.String())
	}
	cmd.Process = nil
}
