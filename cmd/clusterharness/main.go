// Command clusterharness is the sharded router's acceptance rig: a
// seeded concurrent storm over an N-shard internal/shard.Router whose
// final resolved state must match a single-store oracle row for row.
//
// The storm is deterministic by construction, not by serialization:
// each worker owns a disjoint key space (object ops on different keys
// commute) and a disjoint truster set (spine upserts from different
// workers commute), so any interleaving the scheduler picks converges
// to the same final state — which is exactly what replaying every
// worker's op list serially into one in-memory oracle produces. The
// storm also interleaves scatter-gather reads (ResolveAll, Resolved,
// Objects, BulkResolve) whose merge invariants are checked in flight,
// so running the harness binary under -race doubles as the router's
// concurrency test.
//
// After the storm the harness checks three things: oracle parity (every
// object, every user, possible set + certain value + error identity),
// placement (every key stored on the shard wire.ShardOwner names), and
// conservation (ClusterStats.RoutedOps equals both the op count the
// harness issued and the sum of per-shard ObjectOps counters).
//
// Output protocol (one line each, in order):
//
//	shards <n>
//	spine ok
//	storm ok <routed> <spine>
//	parity ok <objects>
//	conserved <routed>
//	done
//
// With -dir the shards are durable (<dir>/shard-<i>); a later run with
// -verify-only skips the storm and checks the recovered cluster against
// the oracle instead — the preamble is then just "shards", "parity ok",
// "conserved 0", "done" — proving per-shard recovery (including the
// replayed register-roots broadcasts) reconstructs cluster-wide parity.
//
// Any violation exits non-zero with a message on stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"sync"

	"trustmap"
	"trustmap/internal/shard"
	"trustmap/wire"
)

// seedUsers are the always-present roots: every object belief comes from
// one of these or a worker's own root, and all of them carry network
// defaults from the prologue, so resolution never trips assumption (ii).
var seedUsers = [...]string{"seed0", "seed1", "seed2"}

var values = [...]string{"fish", "cow", "jar", "arrow", "knot"}

// Op kinds in a worker's plan. Object ops stay inside the worker's own
// key space and spine ops inside its own truster set, so plans commute
// across workers and the oracle can replay them serially in any order.
const (
	kSpine = iota // rt.Mutate: one set-trust upsert (write-lock path)
	kPutObject
	kPutBelief
	kDelBelief
	kDelObject
	kRead // one scatter or routed read; never replayed into the oracle
)

// planOp is one pre-generated storm step: a pure function of the seed,
// so the oracle replays the identical sequence without rng alignment.
type planOp struct {
	kind    int
	read    int // kRead sub-kind: 0..4
	key     string
	user    string
	value   string
	truster string
	prio    int
	beliefs map[string]string
}

// workerRoot names worker w's private extra root (defaulted in the
// prologue, registered cluster-wide by the router's root broadcast).
func workerRoot(w int) string { return fmt.Sprintf("w%d-root", w) }

// prologue is the fixed spine every run starts from: a network default
// for each seed user and each worker root, applied as one broadcast
// batch so every belief writer below is coverage-safe.
func prologue(workers int) []wire.Op {
	var ops []wire.Op
	for _, u := range seedUsers {
		ops = append(ops, wire.Op{Op: wire.OpSetBelief, User: u, Value: values[0]})
	}
	for w := 0; w < workers; w++ {
		ops = append(ops, wire.Op{Op: wire.OpSetBelief, User: workerRoot(w), Value: values[1]})
	}
	return ops
}

// genPlan draws worker w's op list. Keys are "w<w>-obj<k>" and trusters
// "w<w>-u<t>": disjoint per worker by construction.
func genPlan(seed int64, w, n int) []planOp {
	rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
	root := workerRoot(w)
	writers := append(append([]string(nil), seedUsers[:]...), root)
	key := func() string { return fmt.Sprintf("w%d-obj%03d", w, rng.Intn(120)) }
	val := func() string { return values[rng.Intn(len(values))] }
	ops := make([]planOp, 0, n)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 1:
			ops = append(ops, planOp{
				kind:    kSpine,
				truster: fmt.Sprintf("w%d-u%d", w, rng.Intn(6)),
				user:    seedUsers[rng.Intn(len(seedUsers))],
				prio:    1 + rng.Intn(5),
			})
		case k < 5:
			bs := make(map[string]string, len(writers))
			for _, u := range writers {
				if rng.Intn(2) == 0 {
					bs[u] = val()
				}
			}
			ops = append(ops, planOp{kind: kPutObject, key: key(), beliefs: bs})
		case k < 7:
			ops = append(ops, planOp{kind: kPutBelief, key: key(), user: writers[rng.Intn(len(writers))], value: val()})
		case k < 8:
			ops = append(ops, planOp{kind: kDelBelief, key: key(), user: writers[rng.Intn(len(writers))]})
		case k < 9:
			ops = append(ops, planOp{kind: kDelObject, key: key()})
		default:
			ops = append(ops, planOp{kind: kRead, read: rng.Intn(5), key: key(), user: root, value: val()})
		}
	}
	return ops
}

// countOps reports how many routed object ops and spine broadcasts the
// plans will issue — the expected ClusterStats counter values.
func countOps(plans [][]planOp) (routed, spine uint64) {
	for _, plan := range plans {
		for _, op := range plan {
			switch op.kind {
			case kSpine:
				spine++
			case kPutObject, kPutBelief, kDelBelief, kDelObject:
				routed++
			}
		}
	}
	return routed, spine
}

// runWorker executes one plan against the router, checking read
// invariants in flight. Mutation errors are fatal: every generated
// object op is valid, so the router must accept it.
func runWorker(ctx context.Context, rt *shard.Router, plan []planOp) error {
	for i, op := range plan {
		var err error
		switch op.kind {
		case kSpine:
			_, err = rt.Mutate([]wire.Op{{Op: wire.OpSetTrust, Truster: op.truster, Trusted: op.user, Priority: op.prio}})
		case kPutObject:
			err = rt.PutObject(ctx, op.key, op.beliefs)
		case kPutBelief:
			err = rt.PutBelief(ctx, op.user, op.key, op.value)
		case kDelBelief:
			_, err = rt.DeleteBelief(ctx, op.user, op.key)
		case kDelObject:
			_, err = rt.DeleteObject(ctx, op.key)
		case kRead:
			err = runRead(ctx, rt, op)
		}
		if err != nil {
			return fmt.Errorf("op %d (kind %d): %w", i, op.kind, err)
		}
	}
	return nil
}

// runRead exercises one scatter or routed read mid-storm. Contents are
// in flux, so only structural invariants are checked: merged key order,
// per-shard epoch fan-out, and error identity for absent keys.
func runRead(ctx context.Context, rt *shard.Router, op planOp) error {
	switch op.read {
	case 0:
		res, err := rt.ResolveAll(ctx)
		if err != nil {
			return fmt.Errorf("ResolveAll: %w", err)
		}
		if keys := res.Keys(); !sort.StringsAreSorted(keys) {
			return fmt.Errorf("ResolveAll keys not sorted: %q", keys)
		}
		if got, want := len(res.ShardEpochs()), rt.Shards(); got != want {
			return fmt.Errorf("ResolveAll pinned %d shard epochs, want %d", got, want)
		}
	case 1:
		if keys := rt.Objects(); !sort.StringsAreSorted(keys) {
			return fmt.Errorf("Objects not sorted: %q", keys)
		}
	case 2:
		batch := map[string]map[string]string{
			op.key + "-adhocA": {seedUsers[0]: op.value},
			op.key + "-adhocB": {op.user: op.value},
		}
		res, err := rt.BulkResolve(ctx, batch)
		if err != nil {
			return fmt.Errorf("BulkResolve: %w", err)
		}
		if got := res.Keys(); len(got) != len(batch) || !sort.StringsAreSorted(got) {
			return fmt.Errorf("BulkResolve keys = %q, want the %d ad-hoc keys sorted", got, len(batch))
		}
		if _, _, err := res.Lookup(seedUsers[0], op.key+"-adhocA"); err != nil {
			return fmt.Errorf("BulkResolve lookup: %w", err)
		}
	case 3:
		if _, err := rt.ResolveObject(ctx, op.key); err != nil && !errors.Is(err, trustmap.ErrUnknownObject) {
			return fmt.Errorf("ResolveObject(%q): %w", op.key, err)
		}
	default:
		prev := ""
		for row, err := range rt.Resolved(ctx) {
			if err != nil {
				return fmt.Errorf("Resolved: %w", err)
			}
			if row.Object <= prev {
				return fmt.Errorf("Resolved out of order: %q after %q", row.Object, prev)
			}
			prev = row.Object
		}
	}
	return nil
}

// buildOracle replays the prologue and every worker's plan serially
// into one in-memory store. Worker order is irrelevant: plans commute.
func buildOracle(ctx context.Context, pro []wire.Op, plans [][]planOp) (*trustmap.Store, error) {
	oracle, err := trustmap.NewStore()
	if err != nil {
		return nil, err
	}
	if err := oracle.Update(func(tx *trustmap.StoreTx) error {
		for i, op := range pro {
			if err := op.Apply(tx); err != nil {
				return fmt.Errorf("prologue op %d: %w", i, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for w, plan := range plans {
		for i, op := range plan {
			var err error
			switch op.kind {
			case kSpine:
				err = oracle.SetTrust(ctx, op.truster, op.user, op.prio)
			case kPutObject:
				err = oracle.PutObject(ctx, op.key, op.beliefs)
			case kPutBelief:
				err = oracle.PutBelief(ctx, op.user, op.key, op.value)
			case kDelBelief:
				_, err = oracle.DeleteBelief(ctx, op.user, op.key)
			case kDelObject:
				_, err = oracle.DeleteObject(ctx, op.key)
			}
			if err != nil {
				return nil, fmt.Errorf("oracle worker %d op %d: %w", w, i, err)
			}
		}
	}
	return oracle, nil
}

// lookupsAgree compares one (user, object) cell across the cluster and
// the oracle: possible set, certain value, and error identity.
func lookupsAgree(gp, wp []string, gc, wc string, gerr, werr error) bool {
	if (gerr == nil) != (werr == nil) {
		return false
	}
	if gerr != nil {
		return gerr.Error() == werr.Error()
	}
	return slices.Equal(gp, wp) && gc == wc
}

// checkParity requires the cluster's resolved state to equal the
// oracle's cell for cell, the streamed merge to agree with the batch
// one, and every stored key to live on its wire.ShardOwner shard.
func checkParity(ctx context.Context, rt *shard.Router, oracle *trustmap.Store) (objects int, err error) {
	want, err := oracle.ResolveAll(ctx)
	if err != nil {
		return 0, fmt.Errorf("oracle resolve: %w", err)
	}
	got, err := rt.ResolveAll(ctx)
	if err != nil {
		return 0, fmt.Errorf("cluster resolve: %w", err)
	}
	wantKeys, gotKeys := want.Keys(), got.Keys()
	if !slices.Equal(gotKeys, wantKeys) {
		return 0, fmt.Errorf("key sets diverge: cluster has %d keys, oracle %d", len(gotKeys), len(wantKeys))
	}
	users := oracle.Users()
	sort.Strings(users)
	for _, key := range wantKeys {
		for _, u := range users {
			wp, wc, werr := want.Lookup(u, key)
			gp, gc, gerr := got.Lookup(u, key)
			if !lookupsAgree(gp, wp, gc, wc, gerr, werr) {
				return 0, fmt.Errorf("parity violation at (%s, %s): cluster (%v, %q, %v) vs oracle (%v, %q, %v)",
					u, key, gp, gc, gerr, wp, wc, werr)
			}
		}
	}
	// The streamed merge must visit the same keys in the same order.
	var streamed []string
	for row, rerr := range rt.Resolved(ctx) {
		if rerr != nil {
			return 0, fmt.Errorf("Resolved stream: %w", rerr)
		}
		streamed = append(streamed, row.Object)
	}
	if !slices.Equal(streamed, wantKeys) {
		return 0, fmt.Errorf("Resolved stream visited %d keys, ResolveAll %d", len(streamed), len(wantKeys))
	}
	// Placement: each shard holds exactly the keys it owns.
	for i := 0; i < rt.Shards(); i++ {
		for _, key := range rt.Shard(i).Objects() {
			if o := rt.Owner(key); o != i {
				return 0, fmt.Errorf("placement violation: %q stored on shard %d, owned by %d", key, i, o)
			}
		}
	}
	return len(wantKeys), nil
}

// checkStats enforces the conservation invariant and, after a storm,
// that the counters equal exactly what the harness issued.
func checkStats(rt *shard.Router, objects int, stormed bool, wantRouted, wantSpine uint64) (uint64, error) {
	cs := rt.ClusterStats()
	if cs == nil || cs.Shards != rt.Shards() || cs.Hash != wire.ShardHash {
		return 0, fmt.Errorf("ClusterStats topology = %+v, want %d shards hashed by %s", cs, rt.Shards(), wire.ShardHash)
	}
	var sumOps uint64
	sumObjects := 0
	for _, ss := range cs.PerShard {
		sumOps += ss.ObjectOps
		sumObjects += ss.Objects
	}
	if cs.RoutedOps != sumOps {
		return 0, fmt.Errorf("conservation violation: RoutedOps %d != sum of per-shard ObjectOps %d", cs.RoutedOps, sumOps)
	}
	if sumObjects != objects {
		return 0, fmt.Errorf("per-shard Objects sum to %d, resolved key set has %d", sumObjects, objects)
	}
	if stormed && (cs.RoutedOps != wantRouted || cs.SpineOps != wantSpine) {
		return 0, fmt.Errorf("counters (routed %d, spine %d) != issued (routed %d, spine %d)",
			cs.RoutedOps, cs.SpineOps, wantRouted, wantSpine)
	}
	return cs.RoutedOps, nil
}

func run() error {
	shards := flag.Int("shards", 4, "shard count for the router")
	workers := flag.Int("workers", 4, "concurrent storm workers (disjoint key spaces)")
	opsPer := flag.Int("ops", 300, "ops per worker")
	seed := flag.Int64("seed", 42, "plan generator seed; fixed across runs of one storm")
	dir := flag.String("dir", "", "durable shard directory (<dir>/shard-<i>); empty = in-memory")
	verifyOnly := flag.Bool("verify-only", false, "skip the storm: check the recovered durable cluster against the oracle")
	flag.Parse()
	if *shards < 2 {
		return fmt.Errorf("-shards must be at least 2 (got %d)", *shards)
	}
	if *verifyOnly && *dir == "" {
		return fmt.Errorf("-verify-only needs -dir: an in-memory cluster has nothing recovered to verify")
	}
	ctx := context.Background()

	stores := make([]*trustmap.Store, *shards)
	for i := range stores {
		var err error
		if *dir == "" {
			stores[i], err = trustmap.NewStore()
		} else {
			stores[i], err = trustmap.OpenStore(filepath.Join(*dir, fmt.Sprintf("shard-%d", i)))
		}
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	rt, err := shard.NewRouter(stores)
	if err != nil {
		return err
	}
	defer rt.Close()
	fmt.Printf("shards %d\n", rt.Shards())

	pro := prologue(*workers)
	plans := make([][]planOp, *workers)
	for w := range plans {
		plans[w] = genPlan(*seed, w, *opsPer)
	}
	wantRouted, wantSpine := countOps(plans)
	wantSpine++ // the prologue broadcast

	if !*verifyOnly {
		if _, err := rt.Mutate(pro); err != nil {
			return fmt.Errorf("prologue: %w", err)
		}
		fmt.Println("spine ok")
		errs := make([]error, *workers)
		var wg sync.WaitGroup
		for w := range plans {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[w] = runWorker(ctx, rt, plans[w])
			}()
		}
		wg.Wait()
		for w, werr := range errs {
			if werr != nil {
				return fmt.Errorf("worker %d: %w", w, werr)
			}
		}
		fmt.Printf("storm ok %d %d\n", wantRouted, wantSpine)
	}

	oracle, err := buildOracle(ctx, pro, plans)
	if err != nil {
		return err
	}
	objects, err := checkParity(ctx, rt, oracle)
	if err != nil {
		return err
	}
	fmt.Printf("parity ok %d\n", objects)

	routed, err := checkStats(rt, objects, !*verifyOnly, wantRouted, wantSpine)
	if err != nil {
		return err
	}
	fmt.Printf("conserved %d\n", routed)

	if err := rt.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	fmt.Println("done")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clusterharness:", err)
		os.Exit(1)
	}
}
