package main

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHarness compiles the harness with the race detector: the storm's
// concurrent workers hammer the router's read-lock object paths against
// its write-lock spine broadcasts, so a clean run is also a race proof.
func buildHarness(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "clusterharness")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building harness with -race: %v\n%s", err, out)
	}
	return bin
}

// checkStorm asserts the full storm-run output protocol and returns the
// "parity ok <objects>" count for cross-run comparison.
func checkStorm(t *testing.T, out []byte, shards int) (objects int) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 protocol lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != fmt.Sprintf("shards %d", shards) || lines[1] != "spine ok" {
		t.Fatalf("preamble = %q, %q", lines[0], lines[1])
	}
	var routed, spine uint64
	if _, err := fmt.Sscanf(lines[2], "storm ok %d %d", &routed, &spine); err != nil || routed == 0 || spine == 0 {
		t.Fatalf("want 'storm ok <routed> <spine>' with nonzero counts, got %q", lines[2])
	}
	if _, err := fmt.Sscanf(lines[3], "parity ok %d", &objects); err != nil || objects == 0 {
		t.Fatalf("want 'parity ok <objects>' with objects stored, got %q", lines[3])
	}
	var conserved uint64
	if _, err := fmt.Sscanf(lines[4], "conserved %d", &conserved); err != nil || conserved != routed {
		t.Fatalf("want 'conserved %d', got %q", routed, lines[4])
	}
	if lines[5] != "done" {
		t.Fatalf("final line = %q, want done", lines[5])
	}
	return objects
}

// TestClusterParity is the sharding acceptance test: a concurrent mixed
// storm against a 4-shard in-memory router must end in row-for-row
// oracle parity with conserved op counters.
func TestClusterParity(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process storm rounds are not -short material")
	}
	bin := buildHarness(t)
	out, err := exec.Command(bin, "-shards", "4", "-workers", "4", "-ops", "300", "-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("storm: %v\n%s", err, out)
	}
	checkStorm(t, out, 4)
}

// TestClusterRecovery storms a durable 3-shard cluster, then reopens the
// shard directories in a fresh process: recovery must replay each
// shard's independent WAL — including the register-roots broadcasts —
// back to full cluster-wide oracle parity.
func TestClusterRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process storm rounds are not -short material")
	}
	bin := buildHarness(t)
	dir := t.TempDir()
	args := []string{"-shards", "3", "-workers", "3", "-ops", "200", "-seed", "11", "-dir", dir}

	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("durable storm: %v\n%s", err, out)
	}
	objects := checkStorm(t, out, 3)

	out, err = exec.Command(bin, append(args, "-verify-only")...).CombinedOutput()
	if err != nil {
		t.Fatalf("verify round: %v\n%s", err, out)
	}
	want := fmt.Sprintf("shards 3\nparity ok %d\nconserved 0\ndone\n", objects)
	if string(out) != want {
		t.Fatalf("verify round output:\n%swant:\n%s", out, want)
	}
}
