// Command trustd serves trust-mapping resolution over HTTP: one
// long-running process, one shared trustmap.Store, epoch-swapped
// snapshots underneath. Any number of concurrent resolve calls read the
// currently published compiled artifact lock-free while mutate calls
// build the next epoch off to the side and swap it in atomically — the
// production shape of the paper's bulk setting (Section 4) for a live
// community database. The store keeps the served objects too: object
// CRUD edits per-object beliefs and invalidates exactly the touched
// object's cached resolution.
//
// Usage:
//
//	trustd -f network.json [-addr :7171] [-workers N] [-extra-roots a,b] [-max-batch N]
//	trustd -demo 1000 [-seed 42] [-addr :7171]
//	trustd -data-dir /var/lib/trustd [-f seed.json] [-durability batch|off|always]
//	trustd -data-dir /var/lib/trustd-replica -replica-of http://primary:7171
//	trustd -cluster 4 [-f seed.json] [-data-dir /var/lib/trustd]
//
// With -data-dir the store is durable: every mutation is journaled to a
// write-ahead log under <dir>/wal and compacted into snapshots under
// <dir>/snapshots (POST /v1/admin/checkpoint, or checkpoint-every). On
// start the store recovers from the latest snapshot plus the WAL suffix;
// while recovery runs, every endpoint answers 503 with a Retry-After
// header. -f then seeds a store whose directory is still empty and is
// ignored on later starts; -demo is incompatible with -data-dir.
//
// The network file uses trustctl's format, optionally with stored
// objects:
//
//	{
//	  "trust":   [{"truster": "Alice", "trusted": "Bob", "priority": 100}],
//	  "beliefs": {"Bob": "fish", "Charlie": "knot"},
//	  "objects": {"obj1": {"Bob": "cow"}}
//	}
//
// -demo N serves a deterministic scale-free demo network with N users
// instead (for trying the endpoints without authoring a file).
//
// Endpoints (all JSON; see the wire package for the schema and the
// client package for the typed Go client):
//
//	GET    /healthz                             liveness plus the current epoch
//	GET    /v1/stats                            session + store + engine statistics
//	POST   /v1/resolve                          {"beliefs": {...}, "users": [...]}
//	POST   /v1/bulk-resolve                     {"objects": {key: {...}}, "users": [...]}
//	POST   /v1/mutate                           {"ops": [{"op": "set-trust", ...}, ...]}
//	GET    /v1/objects                          stored object keys
//	PUT    /v1/objects/{key}                    create/replace an object's beliefs
//	GET    /v1/objects/{key}                    an object's stored beliefs
//	DELETE /v1/objects/{key}                    remove an object
//	PUT    /v1/objects/{key}/beliefs/{user}     {"value": "..."}
//	DELETE /v1/objects/{key}/beliefs/{user}     revoke one per-object belief
//	GET    /v1/objects/{key}/resolution?users=a&users=b  resolve a stored object
//
// Every response carries the serving epoch; a mutate's response epoch is
// a lower bound for every later read, so read-your-writes is checkable
// client-side.
//
// Production resilience (see internal/httpd): -read-limit/-mutate-limit
// arm per-class admission control (bounded concurrency + a bounded FIFO
// wait queue; overload sheds 429 with a computed Retry-After before any
// work is done), and -default-timeout gives every request a context
// deadline that rides through the store — clients can override it per
// request via the X-Trustd-Timeout-Ms header, capped by -max-timeout. A
// request whose deadline expires answers 503 without Retry-After,
// distinctly from the shed 429 and the recovering-store 503. All
// admission and deadline rejections are counted in /v1/stats.
//
// Replication: -replica-of <primary-url> (requires -data-dir,
// incompatible with -f/-demo) makes this process a read replica. It
// bootstraps from the primary's latest snapshot if its directory is
// behind, tails the primary's WAL stream into its own durable log, and
// serves every read with its staleness in the X-Trustd-Staleness header
// and in /healthz and /v1/stats; mutations answer 421 naming the
// primary. POST /v1/admin/promote turns the replica into a primary in
// place — see the replication runbook in the README.
//
// Sharding: -cluster N (N >= 2; incompatible with -demo and -replica-of)
// runs N in-process store shards behind a router (internal/shard) for
// horizontal write scale-out. Objects partition across shards by
// consistent hashing of their keys (wire.ShardOwner); trust-network
// mutations broadcast to every shard; /v1/objects listings,
// /v1/bulk-resolve, and /v1/stats scatter-gather across shards into one
// deterministic key-ordered response, with per-shard epochs/LSNs and
// conserved op counters in the stats cluster section. /healthz
// advertises the shard count, which the client package uses for
// shard-aware batching. With -data-dir each shard keeps its own WAL and
// snapshots under <dir>/shard-<i>, and <dir>/cluster.json pins the
// topology — reopening with a different -cluster N fails rather than
// silently rehashing ownership (there is no resharding). The
// single-store replication endpoints (/v1/wal, /v1/snapshot) answer 400
// on a cluster: per-shard WALs have independent LSN spaces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"trustmap"
	"trustmap/internal/admission"
	"trustmap/internal/httpd"
	"trustmap/internal/replica"
	"trustmap/internal/shard"
	"trustmap/wire"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	file := flag.String("f", "", "network JSON file (trustctl format, optional objects section)")
	demo := flag.Int("demo", 0, "serve a generated scale-free demo network with this many users instead of -f")
	seed := flag.Int64("seed", 42, "demo network seed")
	workers := flag.Int("workers", 0, "resolve worker-pool size (0 = GOMAXPROCS)")
	extraRoots := flag.String("extra-roots", "", "comma-separated users whose beliefs vary per object without a network default")
	maxBatch := flag.Int("max-batch", 0, "max ops per mutate / objects per bulk-resolve (0 = default)")
	dataDir := flag.String("data-dir", "", "durable store directory (WAL + snapshots); empty = in-memory")
	durability := flag.String("durability", "batch", "WAL fsync discipline with -data-dir: batch, off, or always")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-request deadline when the client sends no X-Trustd-Timeout-Ms header (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on any per-request deadline, including client overrides (0 = uncapped)")
	readLimit := flag.Int("read-limit", 0, "max concurrent read requests before queueing (0 = unlimited)")
	readQueue := flag.Int("read-queue", 0, "read requests allowed to wait for a slot before shedding 429")
	mutateLimit := flag.Int("mutate-limit", 0, "max concurrent mutate requests before queueing (0 = unlimited)")
	mutateQueue := flag.Int("mutate-queue", 0, "mutate requests allowed to wait for a slot before shedding 429")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "longest a queued request waits for a slot before shedding 429")
	replicaOf := flag.String("replica-of", "", "primary base URL to replicate from (requires -data-dir); serve reads, redirect mutations")
	cluster := flag.Int("cluster", 0, "run this many in-process store shards behind a router (>= 2); objects partition by key hash, trust mutations broadcast")
	flag.Parse()
	if *dataDir == "" && *replicaOf == "" && (*file == "") == (*demo == 0) {
		fmt.Fprintln(os.Stderr, "trustd: exactly one of -f and -demo is required (or -data-dir)")
		flag.Usage()
		os.Exit(2)
	}
	if *dataDir != "" && *demo != 0 {
		fmt.Fprintln(os.Stderr, "trustd: -demo is incompatible with -data-dir")
		os.Exit(2)
	}
	if *replicaOf != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "trustd: -replica-of requires -data-dir (the replica keeps its own durable copy)")
			os.Exit(2)
		}
		if *file != "" || *demo != 0 {
			fmt.Fprintln(os.Stderr, "trustd: -replica-of is incompatible with -f and -demo (the primary's history is the only seed)")
			os.Exit(2)
		}
		*replicaOf = strings.TrimRight(*replicaOf, "/")
	}
	if *cluster != 0 {
		if *cluster < 2 {
			fmt.Fprintln(os.Stderr, "trustd: -cluster needs at least 2 shards (omit it for a single store)")
			os.Exit(2)
		}
		if *demo != 0 {
			fmt.Fprintln(os.Stderr, "trustd: -cluster is incompatible with -demo (seed a cluster from -f)")
			os.Exit(2)
		}
		if *replicaOf != "" {
			fmt.Fprintln(os.Stderr, "trustd: -cluster is incompatible with -replica-of (a cluster is always a primary)")
			os.Exit(2)
		}
	}
	mode, err := parseDurability(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trustd:", err)
		os.Exit(2)
	}
	var extras []string
	if *extraRoots != "" {
		extras = strings.Split(*extraRoots, ",")
	}
	opts := []trustmap.StoreOption{
		trustmap.WithWorkers(*workers),
		trustmap.WithExtraRoots(extras...),
		trustmap.WithDurability(mode),
	}

	// The listener comes up before recovery finishes: the handler answers
	// 503 (with Retry-After) until the store is installed, so restarts
	// behind a load balancer drain into retries instead of refusals.
	handler := httpd.New(nil, httpd.Config{
		MaxBatch:       *maxBatch,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Reads: admission.Config{
			MaxConcurrent: *readLimit, MaxQueue: *readQueue, QueueTimeout: *queueTimeout,
		},
		Mutations: admission.Config{
			MaxConcurrent: *mutateLimit, MaxQueue: *mutateQueue, QueueTimeout: *queueTimeout,
		},
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Slowloris and stuck-peer protection: bound how long one
		// connection may take to deliver a body or drain a response, and
		// reap idle keep-alives. Generously above any sane request budget
		// (-default-timeout governs handler work; these govern the socket).
		ReadTimeout:  2 * time.Minute,
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  5 * time.Minute,
	}
	type serving struct {
		st   interface{ Close() error } // the store, or the cluster router
		tail *replica.Tailer            // nil on a primary
	}
	recovered := make(chan serving, 1)
	go func() {
		if *cluster > 1 {
			rt, err := openCluster(*cluster, *dataDir, *file, opts)
			if err != nil {
				log.Fatalf("trustd: %v", err)
			}
			handler.InstallBackend(rt)
			sst, eng := rt.EpochStats()
			log.Printf("trustd: serving %d users, %d mappings, %d roots, %d objects on %s across %d shards (min epoch %d, min lsn %d)",
				eng.Users, eng.Mappings, eng.Roots, sst.Objects, *addr, rt.Shards(), rt.Epoch(), rt.LSN())
			recovered <- serving{st: rt}
			return
		}
		if *replicaOf != "" {
			// Snapshot bootstrap before the store opens: a fresh or pruned-
			// behind replica seeds from the primary's latest checkpoint, then
			// the WAL tail covers the suffix.
			if installed, lsn, err := replica.Bootstrap(context.Background(), *dataDir, *replicaOf, nil); err != nil {
				log.Fatalf("trustd: bootstrapping from %s: %v", *replicaOf, err)
			} else if installed {
				log.Printf("trustd: installed snapshot at lsn %d from %s", lsn, *replicaOf)
			}
		}
		st, err := openStore(*dataDir, *file, *demo, *seed, opts)
		if err != nil {
			log.Fatalf("trustd: %v", err)
		}
		var tail *replica.Tailer
		role := "primary"
		if *replicaOf != "" {
			tail = replica.Start(st, *replicaOf, replica.WithLogf(log.Printf))
			handler.SetReplication(tail)
			role = "replica of " + *replicaOf
		}
		handler.Install(st)
		eng := st.EngineStats()
		dur := st.Durability()
		log.Printf("trustd: serving %d users, %d mappings, %d roots, %d objects on %s (epoch %d, lsn %d, durability %s, %s)",
			eng.Users, eng.Mappings, eng.Roots, st.NumObjects(), *addr, st.Epoch(), st.LSN(), dur.Mode, role)
		recovered <- serving{st: st, tail: tail}
	}()

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// flush and close the WAL so the next start replays nothing torn.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("trustd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		select {
		case sv := <-recovered:
			if sv.tail != nil {
				sv.tail.Stop() // no replicated apply may land after this
			}
			if err := sv.st.Close(); err != nil {
				log.Printf("trustd: closing store: %v", err)
			}
		default: // recovery never finished; nothing to flush
		}
	}
}

// parseDurability maps the -durability flag onto a store mode.
func parseDurability(s string) (trustmap.DurabilityMode, error) {
	switch s {
	case "batch", "":
		return trustmap.DurabilityBatch, nil
	case "off":
		return trustmap.DurabilityOff, nil
	case "always":
		return trustmap.DurabilityAlways, nil
	default:
		return 0, fmt.Errorf("unknown -durability %q (want batch, off, or always)", s)
	}
}

// openStore builds the serving store: durable (recovering from dataDir,
// optionally seeded from file on first boot) or in-memory from the file
// or demo network.
func openStore(dataDir, file string, demo int, seed int64, opts []trustmap.StoreOption) (*trustmap.Store, error) {
	if dataDir == "" {
		n, objects, err := buildNetwork(file, demo, seed)
		if err != nil {
			return nil, err
		}
		st, err := n.NewStore(opts...)
		if err != nil {
			return nil, fmt.Errorf("compiling store: %w", err)
		}
		if err := seedObjects(st, objects); err != nil {
			return nil, err
		}
		return st, nil
	}
	st, err := trustmap.OpenStore(dataDir, opts...)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", dataDir, err)
	}
	// -f seeds exactly once: a recovered store (any logged history or
	// snapshot state) keeps its own truth and the file is ignored.
	if file != "" && st.LSN() == 0 && st.Network().NumUsers() == 0 && st.NumObjects() == 0 {
		if err := seedStore(st, file); err != nil {
			st.Close()
			return nil, fmt.Errorf("seeding from %s: %w", file, err)
		}
	}
	return st, nil
}

// clusterMarker is <data-dir>/cluster.json: the persisted topology of a
// durable cluster. Object ownership is a pure function of (key, shard
// count), so reopening the same directories with a different -cluster N
// would silently re-home every key — the marker turns that into a hard
// error instead. There is no resharding.
type clusterMarker struct {
	Shards int    `json:"shards"`
	Hash   string `json:"hash"`
}

// checkTopology validates (writing on first boot) the cluster marker.
func checkTopology(dataDir string, shards int) error {
	path := filepath.Join(dataDir, "cluster.json")
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		raw, err := json.Marshal(clusterMarker{Shards: shards, Hash: wire.ShardHash})
		if err != nil {
			return err
		}
		return os.WriteFile(path, raw, 0o644)
	}
	if err != nil {
		return err
	}
	var m clusterMarker
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	if m.Shards != shards {
		return fmt.Errorf("%s pins %d shards but -cluster is %d: object ownership is hash-of-key modulo topology, so changing the shard count would re-home keys (no resharding; reopen with -cluster %d)",
			path, m.Shards, shards, m.Shards)
	}
	if m.Hash != wire.ShardHash {
		return fmt.Errorf("%s pins routing scheme %q but this build speaks %q", path, m.Hash, wire.ShardHash)
	}
	return nil
}

// openCluster builds the sharded serving backend: n stores — durable
// under <dataDir>/shard-<i>, or in-memory — behind a shard.Router. A
// -f file seeds exactly once, when every shard is empty, through the
// router's own logged spine/object paths so the seed is replayable
// per-shard history.
func openCluster(n int, dataDir, file string, opts []trustmap.StoreOption) (*shard.Router, error) {
	shards := make([]*trustmap.Store, n)
	closeAll := func() {
		for _, st := range shards {
			if st != nil {
				st.Close()
			}
		}
	}
	if dataDir != "" {
		if err := checkTopology(dataDir, n); err != nil {
			return nil, err
		}
	}
	for i := range shards {
		var (
			st  *trustmap.Store
			err error
		)
		if dataDir == "" {
			st, err = trustmap.New().NewStore(opts...)
		} else {
			st, err = trustmap.OpenStore(filepath.Join(dataDir, fmt.Sprintf("shard-%d", i)), opts...)
		}
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("opening shard %d: %w", i, err)
		}
		shards[i] = st
	}
	rt, err := shard.NewRouter(shards)
	if err != nil {
		closeAll()
		return nil, err
	}
	// Seed exactly once: only when every shard is empty (any recovered
	// history keeps its own truth and the file is ignored, as with -f on
	// a single durable store).
	if file != "" {
		empty := true
		for _, st := range shards {
			if st.LSN() != 0 || st.Network().NumUsers() != 0 || st.NumObjects() != 0 {
				empty = false
				break
			}
		}
		if empty {
			if err := seedRouter(rt, file); err != nil {
				rt.Close()
				return nil, fmt.Errorf("seeding from %s: %w", file, err)
			}
		}
	}
	return rt, nil
}

// seedRouter loads the network file through the router: the spine (trust
// edges, then default beliefs in name order) as one broadcast batch, the
// objects in key order through the routed object path.
func seedRouter(rt *shard.Router, file string) error {
	nf, err := loadNetworkFile(file)
	if err != nil {
		return err
	}
	var ops []wire.Op
	for _, m := range nf.Trust {
		ops = append(ops, wire.Op{Op: wire.OpSetTrust, Truster: m.Truster, Trusted: m.Trusted, Priority: m.Priority})
	}
	users := make([]string, 0, len(nf.Beliefs))
	for user := range nf.Beliefs {
		users = append(users, user)
	}
	sort.Strings(users)
	for _, user := range users {
		ops = append(ops, wire.Op{Op: wire.OpSetBelief, User: user, Value: nf.Beliefs[user]})
	}
	if len(ops) > 0 {
		if _, err := rt.Mutate(ops); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(nf.Objects))
	for k := range nf.Objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := rt.PutObject(context.Background(), k, nf.Objects[k]); err != nil {
			return fmt.Errorf("seeding object %q: %w", k, err)
		}
	}
	return nil
}

// seedStore loads the network file into an empty durable store through
// the logged mutators, so the seed itself is replayable history.
func seedStore(st *trustmap.Store, file string) error {
	nf, err := loadNetworkFile(file)
	if err != nil {
		return err
	}
	err = st.Update(func(tx *trustmap.StoreTx) error {
		for _, m := range nf.Trust {
			if err := tx.SetTrust(m.Truster, m.Trusted, m.Priority); err != nil {
				return err
			}
		}
		// Beliefs in name order, so user IDs are deterministic given the
		// file.
		users := make([]string, 0, len(nf.Beliefs))
		for user := range nf.Beliefs {
			users = append(users, user)
		}
		sort.Strings(users)
		for _, user := range users {
			if err := tx.SetDefault(user, nf.Beliefs[user]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return seedObjects(st, objects(nf))
}

// objects returns the file's object section (possibly nil).
func objects(nf *networkFile) map[string]map[string]string { return nf.Objects }

// seedObjects stores the file's objects in key order, so registration is
// deterministic.
func seedObjects(st *trustmap.Store, objects map[string]map[string]string) error {
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := st.PutObject(context.Background(), k, objects[k]); err != nil {
			return fmt.Errorf("seeding object %q: %w", k, err)
		}
	}
	return nil
}

// networkFile is the trustctl-format network file: trust edges, default
// beliefs, and optionally stored objects.
type networkFile struct {
	Trust []struct {
		Truster  string `json:"truster"`
		Trusted  string `json:"trusted"`
		Priority int    `json:"priority"`
	} `json:"trust"`
	Beliefs map[string]string            `json:"beliefs"`
	Objects map[string]map[string]string `json:"objects"`
}

// loadNetworkFile parses a network file.
func loadNetworkFile(file string) (*networkFile, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var nf networkFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", file, err)
	}
	return &nf, nil
}

// buildNetwork loads the network file (returning its stored objects, if
// any), or generates the demo network.
func buildNetwork(file string, demo int, seed int64) (*trustmap.Network, map[string]map[string]string, error) {
	if demo > 0 {
		return demoNetwork(demo, seed), nil, nil
	}
	nf, err := loadNetworkFile(file)
	if err != nil {
		return nil, nil, err
	}
	n := trustmap.New()
	for _, tm := range nf.Trust {
		n.AddTrust(tm.Truster, tm.Trusted, tm.Priority)
	}
	// Beliefs in name order, so user IDs are deterministic given the file.
	users := make([]string, 0, len(nf.Beliefs))
	for user := range nf.Beliefs {
		users = append(users, user)
	}
	sort.Strings(users)
	for _, user := range users {
		n.SetBelief(user, nf.Beliefs[user])
	}
	return n, nf.Objects, nil
}

// demoNetwork grows a deterministic scale-free community: each user
// trusts up to two earlier users with coarse-tiered priorities, and one
// in ten states an explicit belief.
func demoNetwork(users int, seed int64) *trustmap.Network {
	rng := rand.New(rand.NewSource(seed))
	n := trustmap.New()
	name := func(i int) string { return fmt.Sprintf("site%d", i) }
	domain := []string{"fish", "knot", "cow"}
	n.SetBelief(name(0), domain[0])
	for i := 1; i < users; i++ {
		chosen := map[int]bool{}
		for e, k := 0, 1+rng.Intn(2); e < k && e < i; e++ {
			z := rng.Intn(i)
			if chosen[z] {
				continue // no duplicate mappings per truster
			}
			chosen[z] = true
			n.AddTrust(name(i), name(z), 1+rng.Intn(3))
		}
		if rng.Float64() < 0.1 {
			n.SetBelief(name(i), domain[rng.Intn(len(domain))])
		}
	}
	return n
}
