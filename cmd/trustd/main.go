// Command trustd serves trust-mapping resolution over HTTP: one
// long-running process, one shared trustmap.Store, epoch-swapped
// snapshots underneath. Any number of concurrent resolve calls read the
// currently published compiled artifact lock-free while mutate calls
// build the next epoch off to the side and swap it in atomically — the
// production shape of the paper's bulk setting (Section 4) for a live
// community database. The store keeps the served objects too: object
// CRUD edits per-object beliefs and invalidates exactly the touched
// object's cached resolution.
//
// Usage:
//
//	trustd -f network.json [-addr :7171] [-workers N] [-extra-roots a,b] [-max-batch N]
//	trustd -demo 1000 [-seed 42] [-addr :7171]
//
// The network file uses trustctl's format, optionally with stored
// objects:
//
//	{
//	  "trust":   [{"truster": "Alice", "trusted": "Bob", "priority": 100}],
//	  "beliefs": {"Bob": "fish", "Charlie": "knot"},
//	  "objects": {"obj1": {"Bob": "cow"}}
//	}
//
// -demo N serves a deterministic scale-free demo network with N users
// instead (for trying the endpoints without authoring a file).
//
// Endpoints (all JSON; see the wire package for the schema and the
// client package for the typed Go client):
//
//	GET    /healthz                             liveness plus the current epoch
//	GET    /v1/stats                            session + store + engine statistics
//	POST   /v1/resolve                          {"beliefs": {...}, "users": [...]}
//	POST   /v1/bulk-resolve                     {"objects": {key: {...}}, "users": [...]}
//	POST   /v1/mutate                           {"ops": [{"op": "set-trust", ...}, ...]}
//	GET    /v1/objects                          stored object keys
//	PUT    /v1/objects/{key}                    create/replace an object's beliefs
//	GET    /v1/objects/{key}                    an object's stored beliefs
//	DELETE /v1/objects/{key}                    remove an object
//	PUT    /v1/objects/{key}/beliefs/{user}     {"value": "..."}
//	DELETE /v1/objects/{key}/beliefs/{user}     revoke one per-object belief
//	GET    /v1/objects/{key}/resolution?users=a&users=b  resolve a stored object
//
// Every response carries the serving epoch; a mutate's response epoch is
// a lower bound for every later read, so read-your-writes is checkable
// client-side.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"trustmap"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	file := flag.String("f", "", "network JSON file (trustctl format, optional objects section)")
	demo := flag.Int("demo", 0, "serve a generated scale-free demo network with this many users instead of -f")
	seed := flag.Int64("seed", 42, "demo network seed")
	workers := flag.Int("workers", 0, "resolve worker-pool size (0 = GOMAXPROCS)")
	extraRoots := flag.String("extra-roots", "", "comma-separated users whose beliefs vary per object without a network default")
	maxBatch := flag.Int("max-batch", 0, "max ops per mutate / objects per bulk-resolve (0 = default)")
	flag.Parse()
	if (*file == "") == (*demo == 0) {
		fmt.Fprintln(os.Stderr, "trustd: exactly one of -f and -demo is required")
		flag.Usage()
		os.Exit(2)
	}
	n, objects, err := buildNetwork(*file, *demo, *seed)
	if err != nil {
		log.Fatalf("trustd: %v", err)
	}
	var extras []string
	if *extraRoots != "" {
		extras = strings.Split(*extraRoots, ",")
	}
	st, err := n.NewStore(trustmap.WithWorkers(*workers), trustmap.WithExtraRoots(extras...))
	if err != nil {
		log.Fatalf("trustd: compiling store: %v", err)
	}
	// Seed stored objects in key order, so registration is deterministic.
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := st.PutObject(context.Background(), k, objects[k]); err != nil {
			log.Fatalf("trustd: seeding object %q: %v", k, err)
		}
	}
	eng := st.EngineStats()
	log.Printf("trustd: serving %d users, %d mappings, %d roots, %d objects on %s (epoch %d)",
		eng.Users, eng.Mappings, eng.Roots, st.NumObjects(), *addr, st.Epoch())
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(st, *maxBatch),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// buildNetwork loads the network file (returning its stored objects, if
// any), or generates the demo network.
func buildNetwork(file string, demo int, seed int64) (*trustmap.Network, map[string]map[string]string, error) {
	if demo > 0 {
		return demoNetwork(demo, seed), nil, nil
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, nil, err
	}
	var nf struct {
		Trust []struct {
			Truster  string `json:"truster"`
			Trusted  string `json:"trusted"`
			Priority int    `json:"priority"`
		} `json:"trust"`
		Beliefs map[string]string            `json:"beliefs"`
		Objects map[string]map[string]string `json:"objects"`
	}
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", file, err)
	}
	n := trustmap.New()
	for _, tm := range nf.Trust {
		n.AddTrust(tm.Truster, tm.Trusted, tm.Priority)
	}
	// Beliefs in name order, so user IDs are deterministic given the file.
	users := make([]string, 0, len(nf.Beliefs))
	for user := range nf.Beliefs {
		users = append(users, user)
	}
	sort.Strings(users)
	for _, user := range users {
		n.SetBelief(user, nf.Beliefs[user])
	}
	return n, nf.Objects, nil
}

// demoNetwork grows a deterministic scale-free community: each user
// trusts up to two earlier users with coarse-tiered priorities, and one
// in ten states an explicit belief.
func demoNetwork(users int, seed int64) *trustmap.Network {
	rng := rand.New(rand.NewSource(seed))
	n := trustmap.New()
	name := func(i int) string { return fmt.Sprintf("site%d", i) }
	domain := []string{"fish", "knot", "cow"}
	n.SetBelief(name(0), domain[0])
	for i := 1; i < users; i++ {
		chosen := map[int]bool{}
		for e, k := 0, 1+rng.Intn(2); e < k && e < i; e++ {
			z := rng.Intn(i)
			if chosen[z] {
				continue // no duplicate mappings per truster
			}
			chosen[z] = true
			n.AddTrust(name(i), name(z), 1+rng.Intn(3))
		}
		if rng.Float64() < 0.1 {
			n.SetBelief(name(i), domain[rng.Intn(len(domain))])
		}
	}
	return n
}
