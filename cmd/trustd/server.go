package main

// The trustd HTTP handler: a thin JSON layer over one shared
// trustmap.Session. Reads (/v1/resolve, /v1/bulk-resolve, /v1/stats,
// /healthz) are served lock-free from the session's currently published
// epoch; writes (/v1/mutate) apply one atomic batch and publish the next
// epoch before responding. Every response carries the epoch that served
// it, so a client that mutates and then resolves can verify the read
// observed at least its own write (the response epoch of the mutate is a
// lower bound for subsequent reads).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"trustmap"
)

// server wires one Session into an http.Handler.
type server struct {
	s   *trustmap.Session
	mux *http.ServeMux
}

func newServer(s *trustmap.Session) *server {
	srv := &server{s: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("GET /healthz", srv.handleHealthz)
	srv.mux.HandleFunc("GET /v1/stats", srv.handleStats)
	srv.mux.HandleFunc("POST /v1/resolve", srv.handleResolve)
	srv.mux.HandleFunc("POST /v1/bulk-resolve", srv.handleBulkResolve)
	srv.mux.HandleFunc("POST /v1/mutate", srv.handleMutate)
	return srv
}

func (srv *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { srv.mux.ServeHTTP(w, r) }

// userResult is one user's resolution for one object.
type userResult struct {
	Possible []string `json:"possible"`
	Certain  string   `json:"certain,omitempty"`
}

// resolveRequest asks for one object's resolution. Beliefs overrides the
// network-level defaults per root; Users lists the users to report.
type resolveRequest struct {
	Beliefs map[string]string `json:"beliefs"`
	Users   []string          `json:"users"`
}

type resolveResponse struct {
	Epoch uint64                `json:"epoch"`
	Users map[string]userResult `json:"users"`
}

// bulkResolveRequest asks for many objects at once.
type bulkResolveRequest struct {
	Objects map[string]map[string]string `json:"objects"`
	Users   []string                     `json:"users"`
}

type bulkResolveResponse struct {
	Epoch   uint64                           `json:"epoch"`
	Objects map[string]map[string]userResult `json:"objects"`
}

// mutateOp is one mutation of a /v1/mutate batch, in the same shape as
// trustctl's mutation script: op is add-trust, remove-trust, update-trust,
// set-belief, or remove-belief.
type mutateOp struct {
	Op       string `json:"op"`
	Truster  string `json:"truster"`
	Trusted  string `json:"trusted"`
	Priority int    `json:"priority"`
	User     string `json:"user"`
	Value    string `json:"value"`
}

type mutateRequest struct {
	Ops []mutateOp `json:"ops"`
}

type mutateResponse struct {
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
}

// sessionStatsDTO and engineStatsDTO pin the /v1/stats wire format to
// lowercase keys, like every other endpoint, independent of the Go field
// names of the library structs (which marshal CamelCase untagged).
type sessionStatsDTO struct {
	Compiles           int    `json:"compiles"`
	IncrementalApplies int    `json:"incremental_applies"`
	ValueOnlyUpdates   int    `json:"value_only_updates"`
	FullRecompiles     int    `json:"full_recompiles"`
	EpochsReclaimed    uint64 `json:"epochs_reclaimed"`
}

type engineStatsDTO struct {
	Users            int `json:"users"`
	Mappings         int `json:"mappings"`
	Roots            int `json:"roots"`
	Reachable        int `json:"reachable"`
	SCCs             int `json:"sccs"`
	NontrivialSCCs   int `json:"nontrivial_sccs"`
	CopySteps        int `json:"copy_steps"`
	FloodSteps       int `json:"flood_steps"`
	DistinctSupports int `json:"distinct_supports"`
}

type statsResponse struct {
	Epoch   uint64          `json:"epoch"`
	Session sessionStatsDTO `json:"session"`
	Engine  engineStatsDTO  `json:"engine"`
}

func (srv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": srv.s.Epoch()})
}

func (srv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, eng := srv.s.EpochStats() // one pinned epoch: session and engine numbers agree
	writeJSON(w, http.StatusOK, statsResponse{
		Epoch: st.Epoch,
		Session: sessionStatsDTO{
			Compiles:           st.Compiles,
			IncrementalApplies: st.IncrementalApplies,
			ValueOnlyUpdates:   st.ValueOnlyUpdates,
			FullRecompiles:     st.FullRecompiles,
			EpochsReclaimed:    st.EpochsReclaimed,
		},
		Engine: engineStatsDTO{
			Users:            eng.Users,
			Mappings:         eng.Mappings,
			Roots:            eng.Roots,
			Reachable:        eng.Reachable,
			SCCs:             eng.SCCs,
			NontrivialSCCs:   eng.NontrivialSCCs,
			CopySteps:        eng.CopySteps,
			FloodSteps:       eng.FloodSteps,
			DistinctSupports: eng.DistinctSupports,
		},
	})
}

func (srv *server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req resolveRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Users) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("resolve: users must list at least one user to report"))
		return
	}
	res, err := srv.s.BulkResolve(r.Context(), map[string]map[string]string{"object": req.Beliefs})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	users, err := collectUsers(res, "object", req.Users)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resolveResponse{Epoch: res.Epoch(), Users: users})
}

func (srv *server) handleBulkResolve(w http.ResponseWriter, r *http.Request) {
	var req bulkResolveRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Users) == 0 || len(req.Objects) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bulk-resolve: objects and users must be non-empty"))
		return
	}
	res, err := srv.s.BulkResolve(r.Context(), req.Objects)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make(map[string]map[string]userResult, len(req.Objects))
	for _, key := range res.Keys() {
		users, err := collectUsers(res, key, req.Users)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out[key] = users
	}
	writeJSON(w, http.StatusOK, bulkResolveResponse{Epoch: res.Epoch(), Objects: out})
}

func (srv *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req mutateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("mutate: ops must be non-empty"))
		return
	}
	applied := 0
	err := srv.s.Update(func(tx *trustmap.SessionTx) error {
		for i, op := range req.Ops {
			if err := applyOp(tx, op); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
			applied++
		}
		return nil
	})
	if err != nil {
		// Ops before the failing one were applied and published: report
		// the count alongside the error so the client can reconcile.
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": err.Error(), "applied": applied, "epoch": srv.s.Epoch(),
		})
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{Epoch: srv.s.Epoch(), Applied: applied})
}

func applyOp(tx *trustmap.SessionTx, op mutateOp) error {
	switch op.Op {
	case "add-trust":
		return tx.AddTrust(op.Truster, op.Trusted, op.Priority)
	case "remove-trust":
		if !tx.RemoveTrust(op.Truster, op.Trusted) {
			return fmt.Errorf("remove-trust: no mapping %s -> %s", op.Trusted, op.Truster)
		}
		return nil
	case "update-trust":
		if !tx.UpdateTrust(op.Truster, op.Trusted, op.Priority) {
			return fmt.Errorf("update-trust: no mapping %s -> %s", op.Trusted, op.Truster)
		}
		return nil
	case "set-belief":
		return tx.SetBelief(op.User, op.Value)
	case "remove-belief":
		tx.RemoveBelief(op.User)
		return nil
	default:
		return fmt.Errorf("unknown mutation op %q", op.Op)
	}
}

// collectUsers extracts the requested users' results for one object.
func collectUsers(res *trustmap.BulkResolution, key string, users []string) (map[string]userResult, error) {
	out := make(map[string]userResult, len(users))
	for _, u := range users {
		poss, cert, err := res.Lookup(u, key)
		if err != nil {
			return nil, err
		}
		sort.Strings(poss)
		out[u] = userResult{Possible: poss, Certain: cert}
	}
	return out, nil
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
