package main

// The handler-level tests live with the handler in internal/httpd; what
// remains here is the flag-shell's own surface — network-file loading,
// the demo generator — and the end-to-end CI smoke test over a real
// listener.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trustmap"
	"trustmap/client"
	"trustmap/internal/admission"
	"trustmap/internal/httpd"
	"trustmap/wire"
)

// testStore builds the small demo community the smoke test serves.
func testStore(t *testing.T) *trustmap.Store {
	t.Helper()
	n := trustmap.New()
	n.AddTrust("alice", "bob", 100)
	n.AddTrust("alice", "carol", 50)
	n.SetBelief("bob", "fish")
	n.SetBelief("carol", "knot")
	st, err := n.NewStore(trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildNetworkFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	raw := `{
	  "trust":   [{"truster": "alice", "trusted": "bob", "priority": 10}],
	  "beliefs": {"bob": "fish"},
	  "objects": {"o1": {"bob": "cow"}}
	}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	n, objects, err := buildNetwork(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.NumUsers(); got != 2 {
		t.Fatalf("NumUsers = %d, want 2", got)
	}
	if len(objects) != 1 || objects["o1"]["bob"] != "cow" {
		t.Fatalf("objects = %v, want o1/bob/cow", objects)
	}
	if _, _, err := buildNetwork(filepath.Join(t.TempDir(), "absent.json"), 0, 0); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestDemoNetworkCompiles(t *testing.T) {
	n := demoNetwork(200, 42)
	if _, err := n.NewStore(trustmap.WithWorkers(1)); err != nil {
		t.Fatalf("demo network rejected: %v", err)
	}
}

// TestSmokeHTTP is the CI smoke test (`make smoke`): it starts the real
// server on a real TCP listener — with the production resilience layer
// armed (admission gates wide enough to never shed this workload, plus a
// request deadline) — and drives it end to end through the typed client
// package with retries enabled: resolve, mutate, resolve, then the
// object CRUD lifecycle (put-object, resolve it, put-belief, re-resolve,
// delete), asserting every later read observes an epoch at or beyond the
// preceding write. This is exactly the epoch contract trustd documents,
// exercised over the same wire schema the handlers speak.
func TestSmokeHTTP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	handler := httpd.New(testStore(t), httpd.Config{
		DefaultTimeout: 5 * time.Second,
		Reads:          admission.Config{MaxConcurrent: 32, MaxQueue: 32, QueueTimeout: time.Second},
		Mutations:      admission.Config{MaxConcurrent: 8, MaxQueue: 8, QueueTimeout: time.Second},
	})
	srv := &http.Server{Handler: handler}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		wg.Wait()
	}()
	ctx := context.Background()
	c := client.New("http://"+ln.Addr().String(),
		client.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}),
		client.WithRetry(client.RetryPolicy{}),
		client.WithServerTimeout(5*time.Second))

	if h, err := c.Healthz(ctx); err != nil || !h.OK {
		t.Fatalf("healthz: %+v, %v", h, err)
	}

	// Read 1: alice follows bob (priority 100) and sees fish.
	res, err := c.Resolve(ctx, nil, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	epoch1 := res.Epoch
	if got := res.Users["alice"].Certain; got != "fish" {
		t.Fatalf("read 1: certain(alice) = %q, want fish", got)
	}

	// Mutate: carol outranks bob from now on.
	mut, err := c.Mutate(ctx, []wire.Op{
		{Op: wire.OpUpdateTrust, Truster: "alice", Trusted: "carol", Priority: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mut.Epoch <= epoch1 {
		t.Fatalf("mutate epoch %d not beyond read epoch %d", mut.Epoch, epoch1)
	}
	if mut.Applied != 1 {
		t.Fatalf("mutate applied = %d, want 1", mut.Applied)
	}

	// Read 2: must be served by an epoch at or beyond the mutation and
	// see the new outcome.
	res, err = c.Resolve(ctx, nil, []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch < mut.Epoch {
		t.Fatalf("read 2 epoch %d precedes mutate epoch %d", res.Epoch, mut.Epoch)
	}
	if got := res.Users["alice"].Certain; got != "knot" {
		t.Fatalf("read 2: certain(alice) = %q, want knot (carol outranks bob)", got)
	}

	// Object CRUD lifecycle: store an object, resolve it, override one
	// belief, re-resolve, delete.
	if _, err := c.PutObject(ctx, "glyph", map[string]string{"bob": "cow", "carol": "cow"}); err != nil {
		t.Fatal(err)
	}
	or, err := c.ResolveObject(ctx, "glyph", []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	if or.Epoch < mut.Epoch {
		t.Fatalf("object read epoch %d precedes mutate epoch %d", or.Epoch, mut.Epoch)
	}
	if got := or.Users["alice"].Certain; got != "cow" {
		t.Fatalf("glyph: certain(alice) = %q, want cow", got)
	}
	if _, err := c.PutBelief(ctx, "glyph", "carol", "jar"); err != nil {
		t.Fatal(err)
	}
	or, err = c.ResolveObject(ctx, "glyph", []string{"alice"})
	if err != nil {
		t.Fatal(err)
	}
	if got := or.Users["alice"].Certain; got != "jar" {
		t.Fatalf("glyph after belief put: certain(alice) = %q, want jar (carol outranks bob)", got)
	}
	lst, err := c.ListObjects(ctx)
	if err != nil || len(lst.Objects) != 1 || lst.Objects[0] != "glyph" {
		t.Fatalf("objects = %+v, %v; want [glyph]", lst, err)
	}
	del, err := c.DeleteObject(ctx, "glyph")
	if err != nil || del.Deleted != "glyph" {
		t.Fatalf("DeleteObject = %+v, %v", del, err)
	}
	if _, err := c.GetObject(ctx, "glyph"); !client.IsNotFound(err) {
		t.Fatalf("deleted object read: err = %v, want 404", err)
	}

	// The resilience layer observed the run: everything was admitted,
	// nothing shed, nothing dead on deadline.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	adm := stats.Admission
	if !adm.Enabled || adm.Reads.Shed != 0 || adm.Mutations.Shed != 0 || adm.DeadlineExceeded != 0 {
		t.Fatalf("admission after smoke = %+v, want enabled with zero sheds and deadline deaths", adm)
	}
	if adm.Reads.Admitted == 0 || adm.Mutations.Admitted == 0 {
		t.Fatalf("admission counted nothing: %+v", adm)
	}
	fmt.Printf("smoke: read@%d -> mutate@%d -> read@%d -> object CRUD ok (admitted %d reads, %d mutations)\n",
		epoch1, mut.Epoch, res.Epoch, adm.Reads.Admitted, adm.Mutations.Admitted)
}
