package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"trustmap"
)

// testSession builds the small demo community the handler tests share.
func testSession(t *testing.T) *trustmap.Session {
	t.Helper()
	n := trustmap.New()
	n.AddTrust("alice", "bob", 100)
	n.AddTrust("alice", "carol", 50)
	n.SetBelief("bob", "fish")
	n.SetBelief("carol", "knot")
	s, err := n.NewSession(trustmap.SessionOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: invalid JSON response %q: %v", path, rec.Body.String(), err)
	}
	return rec, out
}

func TestHandlerResolveAndStats(t *testing.T) {
	h := newServer(testSession(t))

	rec, out := postJSON(t, h, "/v1/resolve", resolveRequest{Users: []string{"alice"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("resolve: status %d, body %v", rec.Code, out)
	}
	users := out["users"].(map[string]any)
	alice := users["alice"].(map[string]any)
	if got := alice["certain"]; got != "fish" {
		t.Fatalf("certain(alice) = %v, want fish", got)
	}

	// Per-object override beats the network default.
	_, out = postJSON(t, h, "/v1/resolve", resolveRequest{
		Beliefs: map[string]string{"bob": "cow"},
		Users:   []string{"alice"},
	})
	alice = out["users"].(map[string]any)["alice"].(map[string]any)
	if got := alice["certain"]; got != "cow" {
		t.Fatalf("certain(alice) with override = %v, want cow", got)
	}

	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "\"compiles\":1") {
		t.Fatalf("stats: status %d, body %s", rec.Code, rec.Body.String())
	}
}

func TestHandlerBulkResolve(t *testing.T) {
	h := newServer(testSession(t))
	rec, out := postJSON(t, h, "/v1/bulk-resolve", bulkResolveRequest{
		Objects: map[string]map[string]string{
			"o1": {"bob": "fish", "carol": "fish"},
			"o2": {"bob": "v1", "carol": "v2"},
		},
		Users: []string{"alice"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("bulk-resolve: status %d, body %v", rec.Code, out)
	}
	objs := out["objects"].(map[string]any)
	o1 := objs["o1"].(map[string]any)["alice"].(map[string]any)
	if got := o1["certain"]; got != "fish" {
		t.Fatalf("o1 certain(alice) = %v, want fish", got)
	}
	o2 := objs["o2"].(map[string]any)["alice"].(map[string]any)
	if got := o2["certain"]; got != "v1" {
		t.Fatalf("o2 certain(alice) = %v, want v1 (bob preferred)", got)
	}
}

func TestHandlerErrors(t *testing.T) {
	h := newServer(testSession(t))
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/resolve", resolveRequest{}},                                   // no users
		{"/v1/resolve", resolveRequest{Users: []string{"ghost"}}},           // unknown user
		{"/v1/mutate", mutateRequest{}},                                     // no ops
		{"/v1/mutate", mutateRequest{Ops: []mutateOp{{Op: "frobnicate"}}}},  // unknown op
		{"/v1/bulk-resolve", bulkResolveRequest{Users: []string{"alice"}}},  // no objects
		{"/v1/resolve", map[string]any{"users": []string{"alice"}, "x": 1}}, // unknown field
	} {
		rec, out := postJSON(t, h, tc.path, tc.body)
		if rec.Code != http.StatusBadRequest || out["error"] == nil {
			t.Errorf("%s %+v: status %d, body %v; want 400 with error", tc.path, tc.body, rec.Code, out)
		}
	}
	// Wrong method.
	req := httptest.NewRequest("GET", "/v1/mutate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/mutate: status %d, want 405", rec.Code)
	}
}

func TestBuildNetworkFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	raw := `{
	  "trust":   [{"truster": "alice", "trusted": "bob", "priority": 10}],
	  "beliefs": {"bob": "fish"}
	}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := buildNetwork(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.NumUsers(); got != 2 {
		t.Fatalf("NumUsers = %d, want 2", got)
	}
	if _, err := buildNetwork(filepath.Join(t.TempDir(), "absent.json"), 0, 0); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestDemoNetworkCompiles(t *testing.T) {
	n := demoNetwork(200, 42)
	if _, err := n.NewSession(trustmap.SessionOptions{Workers: 1}); err != nil {
		t.Fatalf("demo network rejected: %v", err)
	}
}

// TestSmokeHTTP is the CI smoke test (`make smoke`): it starts the real
// server on a real TCP listener, drives one resolve, one mutate, and a
// second resolve over HTTP, and asserts the second read observes a newer
// epoch than the first — and the mutated outcome. This is exactly the
// epoch contract trustd documents: a mutate's response epoch is a lower
// bound for every subsequent read.
func TestSmokeHTTP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newServer(testSession(t))}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		wg.Wait()
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	post := func(path string, body any) map[string]any {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %v", path, resp.StatusCode, out)
		}
		return out
	}

	if out := get("/healthz"); out["ok"] != true {
		t.Fatalf("healthz: %v", out)
	}

	// Read 1: alice follows bob (priority 100) and sees fish.
	out := post("/v1/resolve", resolveRequest{Users: []string{"alice"}})
	epoch1 := out["epoch"].(float64)
	if got := out["users"].(map[string]any)["alice"].(map[string]any)["certain"]; got != "fish" {
		t.Fatalf("read 1: certain(alice) = %v, want fish", got)
	}

	// Mutate: carol outranks bob from now on.
	out = post("/v1/mutate", mutateRequest{Ops: []mutateOp{
		{Op: "update-trust", Truster: "alice", Trusted: "carol", Priority: 200},
	}})
	mutEpoch := out["epoch"].(float64)
	if mutEpoch <= epoch1 {
		t.Fatalf("mutate epoch %v not beyond read epoch %v", mutEpoch, epoch1)
	}
	if out["applied"].(float64) != 1 {
		t.Fatalf("mutate applied = %v, want 1", out["applied"])
	}

	// Read 2: must be served by an epoch at or beyond the mutation and
	// see the new outcome.
	out = post("/v1/resolve", resolveRequest{Users: []string{"alice"}})
	epoch2 := out["epoch"].(float64)
	if epoch2 < mutEpoch {
		t.Fatalf("read 2 epoch %v precedes mutate epoch %v", epoch2, mutEpoch)
	}
	if got := out["users"].(map[string]any)["alice"].(map[string]any)["certain"]; got != "knot" {
		t.Fatalf("read 2: certain(alice) = %v, want knot (carol outranks bob)", got)
	}
	fmt.Printf("smoke: read@%v -> mutate@%v -> read@%v\n", epoch1, mutEpoch, epoch2)
}
