// Command trustctl resolves a trust network described in a JSON file and
// prints every user's possible and certain values, with optional lineage,
// agreement analysis, and constraint-aware (Skeptic) resolution.
//
// Usage:
//
//	trustctl -f network.json [-skeptic] [-pairs] [-lineage user=value]
//	trustctl bulk-par -f network.json -objects objects.json [-workers N] [-users a,b]
//
// Network file format:
//
//	{
//	  "trust":       [{"truster": "Alice", "trusted": "Bob", "priority": 100}],
//	  "beliefs":     {"Bob": "fish", "Charlie": "knot"},
//	  "constraints": {"Dan": ["cow", "jar"]}
//	}
//
// The bulk-par subcommand resolves many objects over one network on the
// compiled concurrent engine (Section 4). Its objects file maps object
// keys to the root users' explicit beliefs:
//
//	{
//	  "obj1": {"Bob": "fish", "Charlie": "knot"},
//	  "obj2": {"Bob": "cow",  "Charlie": "cow"}
//	}
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"trustmap"
)

type networkFile struct {
	Trust []struct {
		Truster  string `json:"truster"`
		Trusted  string `json:"trusted"`
		Priority int    `json:"priority"`
	} `json:"trust"`
	Beliefs     map[string]string   `json:"beliefs"`
	Constraints map[string][]string `json:"constraints"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bulk-par" {
		fs := flag.NewFlagSet("bulk-par", flag.ExitOnError)
		file := fs.String("f", "", "network JSON file (required)")
		objects := fs.String("objects", "", "objects JSON file (required)")
		workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		users := fs.String("users", "", "comma-separated users to report (default: all)")
		fs.Parse(os.Args[2:])
		if *file == "" || *objects == "" {
			fs.Usage()
			os.Exit(2)
		}
		if err := runBulkPar(os.Stdout, *file, *objects, *workers, *users); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	file := flag.String("f", "", "network JSON file (required)")
	skeptic := flag.Bool("skeptic", false, "resolve with constraints under the Skeptic paradigm")
	pairs := flag.Bool("pairs", false, "print agreement analysis (possible pairs)")
	lineage := flag.String("lineage", "", "explain a value: user=value")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *file, *skeptic, *pairs, *lineage); err != nil {
		fmt.Fprintln(os.Stderr, "trustctl:", err)
		os.Exit(1)
	}
}

// runBulkPar resolves the objects file over the network file on the
// compiled concurrent engine and prints one row per (object, user).
func runBulkPar(w io.Writer, netFile, objFile string, workers int, users string) error {
	n, err := loadNetwork(netFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(objFile)
	if err != nil {
		return err
	}
	var objects map[string]map[string]string
	if err := json.Unmarshal(raw, &objects); err != nil {
		return fmt.Errorf("parsing %s: %w", objFile, err)
	}
	r, err := n.BulkResolveWith(context.Background(), objects, trustmap.BulkOptions{Workers: workers})
	if err != nil {
		return err
	}
	report := n.Users()
	if users != "" {
		known := make(map[string]bool, len(report))
		for _, u := range report {
			known[u] = true
		}
		report = nil
		for _, u := range strings.Split(users, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !known[u] {
				return fmt.Errorf("-users: unknown user %q", u)
			}
			report = append(report, u)
		}
		if len(report) == 0 {
			return fmt.Errorf("-users: no user names in %q", users)
		}
	}
	fmt.Fprintf(w, "%-16s %-16s %-24s %s\n", "object", "user", "possible", "certain")
	for _, k := range r.Keys() {
		for _, u := range report {
			cert, _ := r.Certain(u, k)
			fmt.Fprintf(w, "%-16s %-16s %-24s %s\n", k, u, strings.Join(r.Possible(u, k), ","), orDash(cert))
		}
	}
	return nil
}

// loadNetwork builds a trustmap.Network from a network JSON file.
func loadNetwork(file string) (*trustmap.Network, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var nf networkFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", file, err)
	}
	n := trustmap.New()
	for _, t := range nf.Trust {
		n.AddTrust(t.Truster, t.Trusted, t.Priority)
	}
	for user, v := range nf.Beliefs {
		n.SetBelief(user, v)
	}
	for user, rejected := range nf.Constraints {
		n.SetConstraint(user, rejected...)
	}
	return n, nil
}

func run(w io.Writer, file string, skeptic, pairs bool, lineage string) error {
	n, err := loadNetwork(file)
	if err != nil {
		return err
	}

	if skeptic {
		s, err := n.ResolveSkeptic()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", "user", "possible+", "certain+", "belief sets")
		for _, u := range n.Users() {
			cert, _ := s.Certain(u)
			fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", u,
				strings.Join(s.Possible(u), ","), orDash(cert),
				strings.Join(s.Describe(u), " | "))
		}
		return nil
	}

	r, err := n.Resolve()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-24s %s\n", "user", "possible", "certain")
	for _, u := range n.Users() {
		cert, _ := r.Certain(u)
		fmt.Fprintf(w, "%-16s %-24s %s\n", u, strings.Join(r.Possible(u), ","), orDash(cert))
	}

	if lineage != "" {
		parts := strings.SplitN(lineage, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-lineage wants user=value, got %q", lineage)
		}
		path, ok := r.Lineage(parts[0], parts[1])
		if !ok {
			fmt.Fprintf(w, "\n%q is not a possible value for %s\n", parts[1], parts[0])
		} else {
			fmt.Fprintf(w, "\nlineage of %s=%s: %s\n", parts[0], parts[1], strings.Join(path, " -> "))
		}
	}

	if pairs {
		c, err := n.AnalyzeConflicts()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nagreeing pairs (equal in every stable solution):")
		agr := c.AgreeingPairs()
		sort.Slice(agr, func(i, j int) bool { return agr[i][0]+agr[i][1] < agr[j][0]+agr[j][1] })
		for _, p := range agr {
			fmt.Fprintf(w, "  %s == %s\n", p[0], p[1])
		}
		if len(agr) == 0 {
			fmt.Fprintln(w, "  (none)")
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
