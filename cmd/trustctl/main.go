// Command trustctl resolves a trust network described in a JSON file and
// prints every user's possible and certain values, with optional lineage,
// agreement analysis, and constraint-aware (Skeptic) resolution.
//
// Usage:
//
//	trustctl -f network.json [-skeptic] [-pairs] [-lineage user=value]
//	trustctl bulk-par -f network.json -objects objects.json [-workers N] [-users a,b]
//	trustctl session -f network.json -objects objects.json -mutations muts.json [-workers N] [-users a,b]
//
// Network file format:
//
//	{
//	  "trust":       [{"truster": "Alice", "trusted": "Bob", "priority": 100}],
//	  "beliefs":     {"Bob": "fish", "Charlie": "knot"},
//	  "constraints": {"Dan": ["cow", "jar"]}
//	}
//
// The bulk-par subcommand resolves many objects over one network on the
// compiled concurrent engine (Section 4). Its objects file maps object
// keys to the root users' explicit beliefs:
//
//	{
//	  "obj1": {"Bob": "fish", "Charlie": "knot"},
//	  "obj2": {"Bob": "cow",  "Charlie": "cow"}
//	}
//
// The session subcommand demonstrates the live lifecycle: it compiles the
// network once, resolves the objects, folds a mutation script into the
// compiled artifact through the incremental delta path, and resolves
// again. The mutations file is an ordered op list:
//
//	[
//	  {"op": "remove-trust", "truster": "Alice", "trusted": "Bob"},
//	  {"op": "add-trust", "truster": "Alice", "trusted": "Dan", "priority": 30},
//	  {"op": "update-trust", "truster": "Alice", "trusted": "Charlie", "priority": 10},
//	  {"op": "set-belief", "user": "Dan", "value": "cow"},
//	  {"op": "remove-belief", "user": "Charlie"}
//	]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"trustmap"
)

type networkFile struct {
	Trust []struct {
		Truster  string `json:"truster"`
		Trusted  string `json:"trusted"`
		Priority int    `json:"priority"`
	} `json:"trust"`
	Beliefs     map[string]string   `json:"beliefs"`
	Constraints map[string][]string `json:"constraints"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "session" {
		fs := flag.NewFlagSet("session", flag.ExitOnError)
		file := fs.String("f", "", "network JSON file (required)")
		objects := fs.String("objects", "", "objects JSON file (required)")
		mutations := fs.String("mutations", "", "mutation script JSON file (required)")
		workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		users := fs.String("users", "", "comma-separated users to report (default: all)")
		fs.Parse(os.Args[2:])
		if *file == "" || *objects == "" || *mutations == "" {
			fs.Usage()
			os.Exit(2)
		}
		if err := runSession(os.Stdout, *file, *objects, *mutations, *workers, *users); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bulk-par" {
		fs := flag.NewFlagSet("bulk-par", flag.ExitOnError)
		file := fs.String("f", "", "network JSON file (required)")
		objects := fs.String("objects", "", "objects JSON file (required)")
		workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		users := fs.String("users", "", "comma-separated users to report (default: all)")
		fs.Parse(os.Args[2:])
		if *file == "" || *objects == "" {
			fs.Usage()
			os.Exit(2)
		}
		if err := runBulkPar(os.Stdout, *file, *objects, *workers, *users); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	file := flag.String("f", "", "network JSON file (required)")
	skeptic := flag.Bool("skeptic", false, "resolve with constraints under the Skeptic paradigm")
	pairs := flag.Bool("pairs", false, "print agreement analysis (possible pairs)")
	lineage := flag.String("lineage", "", "explain a value: user=value")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *file, *skeptic, *pairs, *lineage); err != nil {
		fmt.Fprintln(os.Stderr, "trustctl:", err)
		os.Exit(1)
	}
}

// runBulkPar resolves the objects file over the network file on the
// compiled concurrent engine and prints one row per (object, user).
func runBulkPar(w io.Writer, netFile, objFile string, workers int, users string) error {
	n, err := loadNetwork(netFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(objFile)
	if err != nil {
		return err
	}
	var objects map[string]map[string]string
	if err := json.Unmarshal(raw, &objects); err != nil {
		return fmt.Errorf("parsing %s: %w", objFile, err)
	}
	r, err := n.BulkResolveWith(context.Background(), objects, trustmap.BulkOptions{Workers: workers})
	if err != nil {
		return err
	}
	report, err := reportUsers(n, users)
	if err != nil {
		return err
	}
	printBulkTable(w, r, report)
	printDedupLine(w, r)
	return nil
}

// printDedupLine summarizes what signature deduplication did for a batch.
func printDedupLine(w io.Writer, r *trustmap.BulkResolution) {
	st := r.DedupStats()
	if st.Objects == 0 {
		return
	}
	hitRate := 0.0
	if st.DistinctSignatures > 0 {
		hitRate = float64(st.CacheHits) / float64(st.DistinctSignatures)
	}
	fmt.Fprintf(w, "\ndedup: %d objects -> %d distinct signatures, %d cache hits (%.0f%% hit rate), %d resolved\n",
		st.Objects, st.DistinctSignatures, st.CacheHits, 100*hitRate, st.Resolved)
}

// runSession compiles the network once, resolves the objects, applies the
// mutation script through the incremental session, and resolves again.
func runSession(w io.Writer, netFile, objFile, mutFile string, workers int, users string) error {
	n, err := loadNetwork(netFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(objFile)
	if err != nil {
		return err
	}
	var objects map[string]map[string]string
	if err := json.Unmarshal(raw, &objects); err != nil {
		return fmt.Errorf("parsing %s: %w", objFile, err)
	}
	raw, err = os.ReadFile(mutFile)
	if err != nil {
		return err
	}
	var muts []struct {
		Op       string `json:"op"`
		Truster  string `json:"truster"`
		Trusted  string `json:"trusted"`
		Priority int    `json:"priority"`
		User     string `json:"user"`
		Value    string `json:"value"`
	}
	if err := json.Unmarshal(raw, &muts); err != nil {
		return fmt.Errorf("parsing %s: %w", mutFile, err)
	}
	// Every user carrying per-object beliefs is a session root.
	extra := map[string]bool{}
	for _, bs := range objects {
		for user := range bs {
			extra[user] = true
		}
	}
	var extraRoots []string
	for user := range extra {
		extraRoots = append(extraRoots, user)
	}
	sort.Strings(extraRoots)
	s, err := n.NewSession(trustmap.SessionOptions{Workers: workers, ExtraRoots: extraRoots})
	if err != nil {
		return err
	}
	report, err := reportUsers(n, users)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== before mutations ==")
	r, err := s.BulkResolve(context.Background(), objects)
	if err != nil {
		return err
	}
	printBulkTable(w, r, report)
	for _, m := range muts {
		switch m.Op {
		case "add-trust":
			if err := s.AddTrust(m.Truster, m.Trusted, m.Priority); err != nil {
				return fmt.Errorf("add-trust: %w", err)
			}
		case "remove-trust":
			if !s.RemoveTrust(m.Truster, m.Trusted) {
				return fmt.Errorf("remove-trust: no mapping %s -> %s", m.Trusted, m.Truster)
			}
		case "update-trust":
			if !s.UpdateTrust(m.Truster, m.Trusted, m.Priority) {
				return fmt.Errorf("update-trust: no mapping %s -> %s", m.Trusted, m.Truster)
			}
		case "set-belief":
			if err := s.SetBelief(m.User, m.Value); err != nil {
				return fmt.Errorf("set-belief: %w", err)
			}
		case "remove-belief":
			s.RemoveBelief(m.User)
		default:
			return fmt.Errorf("unknown mutation op %q", m.Op)
		}
	}
	fmt.Fprintf(w, "\n== after %d mutations ==\n", len(muts))
	r, err = s.BulkResolve(context.Background(), objects)
	if err != nil {
		return err
	}
	printBulkTable(w, r, report)
	printDedupLine(w, r)
	st := s.Stats()
	fmt.Fprintf(w, "\nsession: %d compile(s), %d incremental applies, %d value-only updates, %d threshold recompiles\n",
		st.Compiles, st.IncrementalApplies, st.ValueOnlyUpdates, st.FullRecompiles)
	return nil
}

// reportUsers resolves the -users flag against the network's user set.
func reportUsers(n *trustmap.Network, users string) ([]string, error) {
	report := n.Users()
	if users == "" {
		return report, nil
	}
	known := make(map[string]bool, len(report))
	for _, u := range report {
		known[u] = true
	}
	report = nil
	for _, u := range strings.Split(users, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !known[u] {
			return nil, fmt.Errorf("-users: unknown user %q", u)
		}
		report = append(report, u)
	}
	if len(report) == 0 {
		return nil, fmt.Errorf("-users: no user names in %q", users)
	}
	return report, nil
}

// printBulkTable prints one row per (object, user).
func printBulkTable(w io.Writer, r *trustmap.BulkResolution, report []string) {
	fmt.Fprintf(w, "%-16s %-16s %-24s %s\n", "object", "user", "possible", "certain")
	for _, k := range r.Keys() {
		for _, u := range report {
			cert, _ := r.Certain(u, k)
			fmt.Fprintf(w, "%-16s %-16s %-24s %s\n", k, u, strings.Join(r.Possible(u, k), ","), orDash(cert))
		}
	}
}

// loadNetwork builds a trustmap.Network from a network JSON file.
func loadNetwork(file string) (*trustmap.Network, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var nf networkFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", file, err)
	}
	n := trustmap.New()
	for _, t := range nf.Trust {
		n.AddTrust(t.Truster, t.Trusted, t.Priority)
	}
	for user, v := range nf.Beliefs {
		n.SetBelief(user, v)
	}
	for user, rejected := range nf.Constraints {
		n.SetConstraint(user, rejected...)
	}
	return n, nil
}

func run(w io.Writer, file string, skeptic, pairs bool, lineage string) error {
	n, err := loadNetwork(file)
	if err != nil {
		return err
	}

	if skeptic {
		s, err := n.ResolveSkeptic()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", "user", "possible+", "certain+", "belief sets")
		for _, u := range n.Users() {
			cert, _ := s.Certain(u)
			fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", u,
				strings.Join(s.Possible(u), ","), orDash(cert),
				strings.Join(s.Describe(u), " | "))
		}
		return nil
	}

	r, err := n.Resolve()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-24s %s\n", "user", "possible", "certain")
	for _, u := range n.Users() {
		cert, _ := r.Certain(u)
		fmt.Fprintf(w, "%-16s %-24s %s\n", u, strings.Join(r.Possible(u), ","), orDash(cert))
	}

	if lineage != "" {
		parts := strings.SplitN(lineage, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-lineage wants user=value, got %q", lineage)
		}
		path, ok := r.Lineage(parts[0], parts[1])
		if !ok {
			fmt.Fprintf(w, "\n%q is not a possible value for %s\n", parts[1], parts[0])
		} else {
			fmt.Fprintf(w, "\nlineage of %s=%s: %s\n", parts[0], parts[1], strings.Join(path, " -> "))
		}
	}

	if pairs {
		c, err := n.AnalyzeConflicts()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nagreeing pairs (equal in every stable solution):")
		agr := c.AgreeingPairs()
		sort.Slice(agr, func(i, j int) bool { return agr[i][0]+agr[i][1] < agr[j][0]+agr[j][1] })
		for _, p := range agr {
			fmt.Fprintf(w, "  %s == %s\n", p[0], p[1])
		}
		if len(agr) == 0 {
			fmt.Fprintln(w, "  (none)")
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
