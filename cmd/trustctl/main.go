// Command trustctl resolves a trust network described in a JSON file and
// prints every user's possible and certain values, with optional lineage,
// agreement analysis, and constraint-aware (Skeptic) resolution.
//
// Usage:
//
//	trustctl -f network.json [-skeptic] [-pairs] [-lineage user=value]
//
// Network file format:
//
//	{
//	  "trust":       [{"truster": "Alice", "trusted": "Bob", "priority": 100}],
//	  "beliefs":     {"Bob": "fish", "Charlie": "knot"},
//	  "constraints": {"Dan": ["cow", "jar"]}
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"trustmap"
)

type networkFile struct {
	Trust []struct {
		Truster  string `json:"truster"`
		Trusted  string `json:"trusted"`
		Priority int    `json:"priority"`
	} `json:"trust"`
	Beliefs     map[string]string   `json:"beliefs"`
	Constraints map[string][]string `json:"constraints"`
}

func main() {
	file := flag.String("f", "", "network JSON file (required)")
	skeptic := flag.Bool("skeptic", false, "resolve with constraints under the Skeptic paradigm")
	pairs := flag.Bool("pairs", false, "print agreement analysis (possible pairs)")
	lineage := flag.String("lineage", "", "explain a value: user=value")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *file, *skeptic, *pairs, *lineage); err != nil {
		fmt.Fprintln(os.Stderr, "trustctl:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, file string, skeptic, pairs bool, lineage string) error {
	raw, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	var nf networkFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return fmt.Errorf("parsing %s: %w", file, err)
	}
	n := trustmap.New()
	for _, t := range nf.Trust {
		n.AddTrust(t.Truster, t.Trusted, t.Priority)
	}
	for user, v := range nf.Beliefs {
		n.SetBelief(user, v)
	}
	for user, rejected := range nf.Constraints {
		n.SetConstraint(user, rejected...)
	}

	if skeptic {
		s, err := n.ResolveSkeptic()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", "user", "possible+", "certain+", "belief sets")
		for _, u := range n.Users() {
			cert, _ := s.Certain(u)
			fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", u,
				strings.Join(s.Possible(u), ","), orDash(cert),
				strings.Join(s.Describe(u), " | "))
		}
		return nil
	}

	r, err := n.Resolve()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-24s %s\n", "user", "possible", "certain")
	for _, u := range n.Users() {
		cert, _ := r.Certain(u)
		fmt.Fprintf(w, "%-16s %-24s %s\n", u, strings.Join(r.Possible(u), ","), orDash(cert))
	}

	if lineage != "" {
		parts := strings.SplitN(lineage, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-lineage wants user=value, got %q", lineage)
		}
		path, ok := r.Lineage(parts[0], parts[1])
		if !ok {
			fmt.Fprintf(w, "\n%q is not a possible value for %s\n", parts[1], parts[0])
		} else {
			fmt.Fprintf(w, "\nlineage of %s=%s: %s\n", parts[0], parts[1], strings.Join(path, " -> "))
		}
	}

	if pairs {
		c, err := n.AnalyzeConflicts()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nagreeing pairs (equal in every stable solution):")
		agr := c.AgreeingPairs()
		sort.Slice(agr, func(i, j int) bool { return agr[i][0]+agr[i][1] < agr[j][0]+agr[j][1] })
		for _, p := range agr {
			fmt.Fprintf(w, "  %s == %s\n", p[0], p[1])
		}
		if len(agr) == 0 {
			fmt.Fprintln(w, "  (none)")
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
