// Command trustctl resolves a trust network described in a JSON file and
// prints every user's possible and certain values, with optional lineage,
// agreement analysis, and constraint-aware (Skeptic) resolution.
//
// Usage:
//
//	trustctl -f network.json [-skeptic] [-pairs] [-lineage user=value]
//	trustctl bulk-par -f network.json -objects objects.json [-workers N] [-users a,b]
//	trustctl session -f network.json -objects objects.json -mutations muts.json [-workers N] [-users a,b]
//	trustctl query -f network.json -objects objects.json -q query.json [-naive]
//	trustctl remote -addr http://host:7171 <verb> [flags]
//
// Network file format:
//
//	{
//	  "trust":       [{"truster": "Alice", "trusted": "Bob", "priority": 100}],
//	  "beliefs":     {"Bob": "fish", "Charlie": "knot"},
//	  "constraints": {"Dan": ["cow", "jar"]}
//	}
//
// The bulk-par subcommand resolves many objects over one network on the
// compiled concurrent engine (Section 4). Its objects file maps object
// keys to the root users' explicit beliefs:
//
//	{
//	  "obj1": {"Bob": "fish", "Charlie": "knot"},
//	  "obj2": {"Bob": "cow",  "Charlie": "cow"}
//	}
//
// The session subcommand demonstrates the live lifecycle on a
// trustmap.Store: it compiles the network once, stores and resolves the
// objects, folds a mutation script into the compiled artifact through the
// incremental delta path, and resolves again — re-resolving only what the
// mutations touched. The mutations file is an ordered op list in the wire
// schema:
//
//	[
//	  {"op": "remove-trust", "truster": "Alice", "trusted": "Bob"},
//	  {"op": "add-trust", "truster": "Alice", "trusted": "Dan", "priority": 30},
//	  {"op": "update-trust", "truster": "Alice", "trusted": "Charlie", "priority": 10},
//	  {"op": "set-belief", "user": "Dan", "value": "cow"},
//	  {"op": "remove-belief", "user": "Charlie"}
//	]
//
// The query subcommand runs a relational query pattern (wire.Query,
// the same AST POST /v1/query accepts) over the resolved beliefs of a
// local network + objects pair and prints the result table. -q takes a
// JSON file, or the pattern inline when the argument starts with '{':
//
//	trustctl query -f network.json -objects objects.json \
//	  -q '{"where":[{"col":"disagrees","op":"eq"}],"group_by":["object"],"aggs":[{"fn":"count"}]}'
//
// -naive skips the greedy predicate reordering (plans predicates in
// written order) — useful for comparing plans; results are identical.
//
// The remote subcommand drives a running trustd server through the typed
// client package (the same wire schema the server speaks):
//
//	trustctl remote -addr URL stats
//	trustctl remote -addr URL objects
//	trustctl remote -addr URL put-object -key o1 -beliefs Bob=fish,Charlie=knot
//	trustctl remote -addr URL resolve-object -key o1 -users Alice,Bob
//	trustctl remote -addr URL resolve -users Alice [-beliefs Bob=cow]
//	trustctl remote -addr URL query -q query.json
//	trustctl remote -addr URL mutate -f muts.json
//	trustctl remote -addr URL checkpoint
//	trustctl remote -addr REPLICA_URL promote
//
// -addr also accepts a comma-separated fleet for a replicated
// deployment (reads load-balance across endpoints, mutations follow the
// primary through 421 redirects), and -retry N arms N-attempt failover
// retries:
//
//	trustctl remote -addr http://p:7171,http://r1:7171 -retry 4 resolve -users Alice
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"trustmap"
	"trustmap/client"
	"trustmap/internal/query"
	"trustmap/wire"
)

type networkFile struct {
	Trust []struct {
		Truster  string `json:"truster"`
		Trusted  string `json:"trusted"`
		Priority int    `json:"priority"`
	} `json:"trust"`
	Beliefs     map[string]string   `json:"beliefs"`
	Constraints map[string][]string `json:"constraints"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "session" {
		fs := flag.NewFlagSet("session", flag.ExitOnError)
		file := fs.String("f", "", "network JSON file (required)")
		objects := fs.String("objects", "", "objects JSON file (required)")
		mutations := fs.String("mutations", "", "mutation script JSON file (required)")
		workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		users := fs.String("users", "", "comma-separated users to report (default: all)")
		fs.Parse(os.Args[2:])
		if *file == "" || *objects == "" || *mutations == "" {
			fs.Usage()
			os.Exit(2)
		}
		if err := runSession(os.Stdout, *file, *objects, *mutations, *workers, *users); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "query" {
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		file := fs.String("f", "", "network JSON file (required)")
		objects := fs.String("objects", "", "objects JSON file (required)")
		qArg := fs.String("q", "", "query pattern: a JSON file, or inline JSON starting with '{' (required)")
		naive := fs.Bool("naive", false, "plan predicates in written order (skip greedy reordering)")
		workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		fs.Parse(os.Args[2:])
		if *file == "" || *objects == "" || *qArg == "" {
			fs.Usage()
			os.Exit(2)
		}
		if err := runQuery(os.Stdout, *file, *objects, *qArg, *naive, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "remote" {
		if err := runRemote(os.Stdout, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bulk-par" {
		fs := flag.NewFlagSet("bulk-par", flag.ExitOnError)
		file := fs.String("f", "", "network JSON file (required)")
		objects := fs.String("objects", "", "objects JSON file (required)")
		workers := fs.Int("workers", 0, "concurrent workers (0 = GOMAXPROCS)")
		users := fs.String("users", "", "comma-separated users to report (default: all)")
		fs.Parse(os.Args[2:])
		if *file == "" || *objects == "" {
			fs.Usage()
			os.Exit(2)
		}
		if err := runBulkPar(os.Stdout, *file, *objects, *workers, *users); err != nil {
			fmt.Fprintln(os.Stderr, "trustctl:", err)
			os.Exit(1)
		}
		return
	}
	file := flag.String("f", "", "network JSON file (required)")
	skeptic := flag.Bool("skeptic", false, "resolve with constraints under the Skeptic paradigm")
	pairs := flag.Bool("pairs", false, "print agreement analysis (possible pairs)")
	lineage := flag.String("lineage", "", "explain a value: user=value")
	flag.Parse()
	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *file, *skeptic, *pairs, *lineage); err != nil {
		fmt.Fprintln(os.Stderr, "trustctl:", err)
		os.Exit(1)
	}
}

// runBulkPar resolves the objects file over the network file on the
// compiled concurrent engine and prints one row per (object, user).
func runBulkPar(w io.Writer, netFile, objFile string, workers int, users string) error {
	n, err := loadNetwork(netFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(objFile)
	if err != nil {
		return err
	}
	var objects map[string]map[string]string
	if err := json.Unmarshal(raw, &objects); err != nil {
		return fmt.Errorf("parsing %s: %w", objFile, err)
	}
	st, err := n.NewStore(trustmap.WithWorkers(workers), trustmap.WithExtraRoots(objectUsers(objects)...))
	if err != nil {
		return err
	}
	r, err := st.ResolveBatch(context.Background(), objects)
	if err != nil {
		return err
	}
	report, err := reportUsers(n, users)
	if err != nil {
		return err
	}
	printBulkTable(w, r, report)
	printDedupLine(w, r)
	return nil
}

// objectUsers lists every user mentioned by the objects, sorted: the
// roots a store must declare before resolving them.
func objectUsers(objects map[string]map[string]string) []string {
	seen := map[string]bool{}
	for _, bs := range objects {
		for user := range bs {
			seen[user] = true
		}
	}
	out := make([]string, 0, len(seen))
	for user := range seen {
		out = append(out, user)
	}
	sort.Strings(out)
	return out
}

// printDedupLine summarizes what signature deduplication did for a batch.
func printDedupLine(w io.Writer, r *trustmap.BulkResolution) {
	st := r.DedupStats()
	if st.Objects == 0 {
		return
	}
	hitRate := 0.0
	if st.DistinctSignatures > 0 {
		hitRate = float64(st.CacheHits) / float64(st.DistinctSignatures)
	}
	fmt.Fprintf(w, "\ndedup: %d objects -> %d distinct signatures, %d cache hits (%.0f%% hit rate), %d resolved\n",
		st.Objects, st.DistinctSignatures, st.CacheHits, 100*hitRate, st.Resolved)
}

// runSession compiles the network once into a store, stores and resolves
// the objects, applies the mutation script through the incremental
// maintenance path, and resolves again.
func runSession(w io.Writer, netFile, objFile, mutFile string, workers int, users string) error {
	n, err := loadNetwork(netFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(objFile)
	if err != nil {
		return err
	}
	var objects map[string]map[string]string
	if err := json.Unmarshal(raw, &objects); err != nil {
		return fmt.Errorf("parsing %s: %w", objFile, err)
	}
	raw, err = os.ReadFile(mutFile)
	if err != nil {
		return err
	}
	var muts []wire.Op
	if err := json.Unmarshal(raw, &muts); err != nil {
		return fmt.Errorf("parsing %s: %w", mutFile, err)
	}
	ctx := context.Background()
	st, err := n.NewStore(trustmap.WithWorkers(workers))
	if err != nil {
		return err
	}
	for _, key := range sortedKeys(objects) {
		if err := st.PutObject(ctx, key, objects[key]); err != nil {
			return err
		}
	}
	report, err := reportUsers(n, users)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== before mutations ==")
	r, err := st.ResolveAll(ctx)
	if err != nil {
		return err
	}
	printBulkTable(w, r, report)
	// The whole script lands as one batch: a single epoch publication and
	// one delta application, like trustd's mutate endpoint.
	if err := st.Update(func(tx *trustmap.StoreTx) error {
		for i, m := range muts {
			if err := m.Apply(tx); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== after %d mutations ==\n", len(muts))
	r, err = st.ResolveAll(ctx)
	if err != nil {
		return err
	}
	printBulkTable(w, r, report)
	sst := st.Stats()
	fmt.Fprintf(w, "\nstore: epoch %d, %d compile(s), %d incremental applies, %d value-only updates, %d threshold recompiles, %d/%d cache hits/misses\n",
		sst.Epoch, sst.Compiles, sst.IncrementalApplies, sst.ValueOnlyUpdates, sst.FullRecompiles, sst.CacheHits, sst.CacheMisses)
	return nil
}

// runQuery stores the objects over the network and runs one query
// pattern on the resolved-belief relation, printing the result table
// and the planner/executor stats line.
func runQuery(w io.Writer, netFile, objFile, qArg string, naive bool, workers int) error {
	n, err := loadNetwork(netFile)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(objFile)
	if err != nil {
		return err
	}
	var objects map[string]map[string]string
	if err := json.Unmarshal(raw, &objects); err != nil {
		return fmt.Errorf("parsing %s: %w", objFile, err)
	}
	q, err := readQueryArg(qArg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	st, err := n.NewStore(trustmap.WithWorkers(workers), trustmap.WithExtraRoots(objectUsers(objects)...))
	if err != nil {
		return err
	}
	for _, key := range sortedKeys(objects) {
		if err := st.PutObject(ctx, key, objects[key]); err != nil {
			return err
		}
	}
	compile := query.Compile
	if naive {
		compile = query.CompileNaive
	}
	plan, err := compile(q)
	if err != nil {
		return err
	}
	res, err := query.Run(ctx, st, plan)
	if err != nil {
		return err
	}
	printQueryTable(w, res.Columns, res.Rows)
	s := res.Stats
	fmt.Fprintf(w, "\nquery: %d rows scanned, %d emitted, %d groups, %d key lookups, %d predicates reordered, early-terminated=%v (epoch %d)\n",
		s.RowsScanned, s.RowsEmitted, s.Groups, s.KeyLookups, s.PredicatesReordered, s.EarlyTerminated, res.Epoch)
	return nil
}

// readQueryArg parses -q: inline JSON when the argument starts with
// '{', otherwise the path of a query JSON file.
func readQueryArg(s string) (wire.Query, error) {
	var q wire.Query
	raw := []byte(s)
	if !strings.HasPrefix(strings.TrimSpace(s), "{") {
		var err error
		raw, err = os.ReadFile(s)
		if err != nil {
			return q, err
		}
	}
	if err := json.Unmarshal(raw, &q); err != nil {
		return q, fmt.Errorf("parsing query: %w", err)
	}
	return q, nil
}

// printQueryTable prints a query result with one header row.
func printQueryTable(w io.Writer, columns []string, rows [][]any) {
	for i, col := range columns {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%-16s", col)
	}
	fmt.Fprintln(w)
	for _, vals := range rows {
		for i, v := range vals {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-16s", formatCell(v))
		}
		fmt.Fprintln(w)
	}
}

// formatCell renders one query result value for the table printer.
func formatCell(v any) string {
	switch t := v.(type) {
	case nil:
		return "-"
	case string:
		return orDash(t)
	case []string:
		return orDash(strings.Join(t, ","))
	case []any: // a string list after a JSON round-trip
		parts := make([]string, len(t))
		for i, e := range t {
			parts[i] = fmt.Sprint(e)
		}
		return orDash(strings.Join(parts, ","))
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	}
	return fmt.Sprint(v)
}

// clientRows flattens typed client rows back to positional values for
// the table printer.
func clientRows(columns []string, rows []client.QueryRow) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		vals := make([]any, len(columns))
		for j, col := range columns {
			vals[j], _ = r.Value(col)
		}
		out[i] = vals
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reportUsers resolves the -users flag against the network's user set.
func reportUsers(n *trustmap.Network, users string) ([]string, error) {
	report := n.Users()
	if users == "" {
		return report, nil
	}
	known := make(map[string]bool, len(report))
	for _, u := range report {
		known[u] = true
	}
	report = nil
	for _, u := range strings.Split(users, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !known[u] {
			return nil, fmt.Errorf("-users: unknown user %q", u)
		}
		report = append(report, u)
	}
	if len(report) == 0 {
		return nil, fmt.Errorf("-users: no user names in %q", users)
	}
	return report, nil
}

// bulkView is the read surface printBulkTable needs; *BulkResolution and
// *StoreResolution both provide it.
type bulkView interface {
	Keys() []string
	Possible(user, object string) []string
	Certain(user, object string) (string, bool)
}

// printBulkTable prints one row per (object, user).
func printBulkTable(w io.Writer, r bulkView, report []string) {
	fmt.Fprintf(w, "%-16s %-16s %-24s %s\n", "object", "user", "possible", "certain")
	for _, k := range r.Keys() {
		for _, u := range report {
			cert, _ := r.Certain(u, k)
			fmt.Fprintf(w, "%-16s %-16s %-24s %s\n", k, u, strings.Join(r.Possible(u, k), ","), orDash(cert))
		}
	}
}

// loadNetwork builds a trustmap.Network from a network JSON file.
func loadNetwork(file string) (*trustmap.Network, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var nf networkFile
	if err := json.Unmarshal(raw, &nf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", file, err)
	}
	n := trustmap.New()
	for _, t := range nf.Trust {
		n.AddTrust(t.Truster, t.Trusted, t.Priority)
	}
	for user, v := range nf.Beliefs {
		n.SetBelief(user, v)
	}
	for user, rejected := range nf.Constraints {
		n.SetConstraint(user, rejected...)
	}
	return n, nil
}

func run(w io.Writer, file string, skeptic, pairs bool, lineage string) error {
	n, err := loadNetwork(file)
	if err != nil {
		return err
	}

	if skeptic {
		s, err := n.ResolveSkeptic()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", "user", "possible+", "certain+", "belief sets")
		for _, u := range n.Users() {
			cert, _ := s.Certain(u)
			fmt.Fprintf(w, "%-16s %-24s %-12s %s\n", u,
				strings.Join(s.Possible(u), ","), orDash(cert),
				strings.Join(s.Describe(u), " | "))
		}
		return nil
	}

	r, err := n.Resolve()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %-24s %s\n", "user", "possible", "certain")
	for _, u := range n.Users() {
		cert, _ := r.Certain(u)
		fmt.Fprintf(w, "%-16s %-24s %s\n", u, strings.Join(r.Possible(u), ","), orDash(cert))
	}

	if lineage != "" {
		parts := strings.SplitN(lineage, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-lineage wants user=value, got %q", lineage)
		}
		path, ok := r.Lineage(parts[0], parts[1])
		if !ok {
			fmt.Fprintf(w, "\n%q is not a possible value for %s\n", parts[1], parts[0])
		} else {
			fmt.Fprintf(w, "\nlineage of %s=%s: %s\n", parts[0], parts[1], strings.Join(path, " -> "))
		}
	}

	if pairs {
		c, err := n.AnalyzeConflicts()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nagreeing pairs (equal in every stable solution):")
		agr := c.AgreeingPairs()
		sort.Slice(agr, func(i, j int) bool { return agr[i][0]+agr[i][1] < agr[j][0]+agr[j][1] })
		for _, p := range agr {
			fmt.Fprintf(w, "  %s == %s\n", p[0], p[1])
		}
		if len(agr) == 0 {
			fmt.Fprintln(w, "  (none)")
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// runRemote drives a running trustd server — or a replicated fleet of
// them — through the typed client.
func runRemote(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:7171", "trustd base URL, or a comma-separated fleet (first = admin/promote target; reads load-balance, mutations follow the primary)")
	retries := fs.Int("retry", 0, "retry attempts per call (including the first); >1 arms failover across -addr endpoints")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: trustctl remote [flags] VERB [verb flags]

Verbs:
  stats                                    server/cluster counters (/v1/stats)
  objects                                  list stored object keys
  put-object     -key K -beliefs u=v,...   create or replace one object
  resolve-object -key K -users u1,u2       resolve one stored object
  resolve        -users u1,u2 [-beliefs]   resolve an ad-hoc object
  query          -q FILE|'{json}'          run a relational query (/v1/query)
  mutate         -f ops.json               apply a wire op batch
  checkpoint                               compact the WAL
  promote                                  make a replica the primary
                                           (targets the FIRST -addr endpoint)

-addr takes one base URL or a comma-separated fleet, e.g.
-addr http://replica:7172,http://primary:7171 — reads load-balance
across endpoints, mutations follow the primary via 421 redirects, and
admin verbs (promote, checkpoint) hit the first endpoint only.

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("remote: a verb is required (stats, objects, put-object, resolve-object, resolve, query, mutate, checkpoint, promote)")
	}
	endpoints := strings.Split(*addr, ",")
	opts := []client.Option{client.WithEndpoints(endpoints[1:]...)}
	if *retries > 1 {
		opts = append(opts, client.WithRetry(client.RetryPolicy{MaxAttempts: *retries}))
	}
	c := client.New(endpoints[0], opts...)
	ctx := context.Background()
	verb, verbArgs := rest[0], rest[1:]
	vfs := flag.NewFlagSet("remote "+verb, flag.ExitOnError)
	key := vfs.String("key", "", "object key")
	users := vfs.String("users", "", "comma-separated users to report")
	beliefs := vfs.String("beliefs", "", "comma-separated user=value pairs")
	file := vfs.String("f", "", "mutation script JSON file (wire op list)")
	qArg := vfs.String("q", "", "query pattern: a JSON file, or inline JSON starting with '{'")
	vfs.Parse(verbArgs)

	switch verb {
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(w, st)
	case "objects":
		lst, err := c.ListObjects(ctx)
		if err != nil {
			return err
		}
		return printJSON(w, lst)
	case "put-object":
		if *key == "" {
			return fmt.Errorf("remote put-object: -key is required")
		}
		bs, err := parseBeliefs(*beliefs)
		if err != nil {
			return err
		}
		obj, err := c.PutObject(ctx, *key, bs)
		if err != nil {
			return err
		}
		return printJSON(w, obj)
	case "resolve-object":
		if *key == "" || *users == "" {
			return fmt.Errorf("remote resolve-object: -key and -users are required")
		}
		res, err := c.ResolveObject(ctx, *key, strings.Split(*users, ","))
		if err != nil {
			return err
		}
		return printJSON(w, res)
	case "resolve":
		if *users == "" {
			return fmt.Errorf("remote resolve: -users is required")
		}
		bs, err := parseBeliefs(*beliefs)
		if err != nil {
			return err
		}
		res, err := c.Resolve(ctx, bs, strings.Split(*users, ","))
		if err != nil {
			return err
		}
		return printJSON(w, res)
	case "query":
		if *qArg == "" {
			return fmt.Errorf("remote query: -q is required (a query JSON file, or inline JSON)")
		}
		q, err := readQueryArg(*qArg)
		if err != nil {
			return err
		}
		res, err := c.Query(ctx, q)
		if err != nil {
			return err
		}
		printQueryTable(w, res.Columns, clientRows(res.Columns, res.Rows))
		s := res.Stats
		fmt.Fprintf(w, "\nquery: %d rows scanned, %d emitted, %d groups, %d shard partials, %d predicates reordered, early-terminated=%v, truncated=%v (epoch %d, lsn %d)\n",
			s.RowsScanned, s.RowsEmitted, s.Groups, s.ShardPartials, s.PredicatesReordered, s.EarlyTerminated, res.Truncated, res.Epoch, res.LSN)
		return nil
	case "checkpoint":
		ck, err := c.Checkpoint(ctx)
		if err != nil {
			return err
		}
		return printJSON(w, ck)
	case "promote":
		// Targets the first -addr endpoint: point it at the replica being
		// promoted (see the replication runbook in the README).
		pr, err := c.Promote(ctx)
		if err != nil {
			return err
		}
		return printJSON(w, pr)
	case "mutate":
		if *file == "" {
			return fmt.Errorf("remote mutate: -f is required")
		}
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		var ops []wire.Op
		if err := json.Unmarshal(raw, &ops); err != nil {
			return fmt.Errorf("parsing %s: %w", *file, err)
		}
		res, err := c.Mutate(ctx, ops)
		if err != nil {
			return err
		}
		return printJSON(w, res)
	default:
		return fmt.Errorf("remote: unknown verb %q", verb)
	}
}

// parseBeliefs parses "user=value,user=value" pairs.
func parseBeliefs(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		user, value, ok := strings.Cut(pair, "=")
		if !ok || user == "" || value == "" {
			return nil, fmt.Errorf("-beliefs wants user=value pairs, got %q", pair)
		}
		out[user] = value
	}
	return out, nil
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
