package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trustmap/wire"
)

func writeNet(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const indusJSON = `{
  "trust": [
    {"truster": "Alice", "trusted": "Bob", "priority": 100},
    {"truster": "Alice", "trusted": "Charlie", "priority": 50},
    {"truster": "Bob", "trusted": "Alice", "priority": 80}
  ],
  "beliefs": {"Bob": "fish", "Charlie": "knot"}
}`

func TestRunBasic(t *testing.T) {
	path := writeNet(t, indusJSON)
	var out strings.Builder
	if err := run(&out, path, false, false, ""); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Alice") || !strings.Contains(s, "fish") {
		t.Errorf("output missing expected content:\n%s", s)
	}
}

func TestRunLineage(t *testing.T) {
	path := writeNet(t, indusJSON)
	var out strings.Builder
	if err := run(&out, path, false, false, "Alice=fish"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lineage of Alice=fish: Bob -> Alice") {
		t.Errorf("lineage output wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run(&out, path, false, false, "Alice=cow"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "not a possible value") {
		t.Errorf("impossible lineage not reported:\n%s", out.String())
	}
}

func TestRunPairs(t *testing.T) {
	path := writeNet(t, `{
	  "trust": [
	    {"truster": "x1", "trusted": "x2", "priority": 100},
	    {"truster": "x1", "trusted": "x3", "priority": 50},
	    {"truster": "x2", "trusted": "x1", "priority": 80},
	    {"truster": "x2", "trusted": "x4", "priority": 40}
	  ],
	  "beliefs": {"x3": "v", "x4": "w"}
	}`)
	var out strings.Builder
	if err := run(&out, path, false, true, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "x1 == x2") {
		t.Errorf("agreeing pair missing:\n%s", out.String())
	}
}

func TestRunSkeptic(t *testing.T) {
	path := writeNet(t, `{
	  "trust": [
	    {"truster": "x3", "trusted": "x2", "priority": 2},
	    {"truster": "x3", "trusted": "x1", "priority": 1}
	  ],
	  "beliefs": {"x2": "a"},
	  "constraints": {"x1": ["b"]}
	}`)
	var out strings.Builder
	if err := run(&out, path, true, false, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a") {
		t.Errorf("skeptic output missing value:\n%s", out.String())
	}
}

func TestRunBulkPar(t *testing.T) {
	netPath := writeNet(t, indusJSON)
	objPath := filepath.Join(t.TempDir(), "objects.json")
	objects := `{
	  "glyph1": {"Bob": "cow",  "Charlie": "jar"},
	  "glyph2": {"Bob": "fish", "Charlie": "fish"}
	}`
	if err := os.WriteFile(objPath, []byte(objects), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		var out strings.Builder
		if err := runBulkPar(&out, netPath, objPath, workers, ""); err != nil {
			t.Fatal(err)
		}
		s := out.String()
		// Bob outranks Charlie for Alice, so Alice follows Bob per object.
		if !strings.Contains(s, "glyph1           Alice            cow") {
			t.Errorf("workers=%d: missing glyph1 row for Alice:\n%s", workers, s)
		}
		if !strings.Contains(s, "glyph2           Alice            fish") {
			t.Errorf("workers=%d: missing glyph2 row for Alice:\n%s", workers, s)
		}
		if !strings.Contains(s, "dedup: 2 objects -> 2 distinct signatures") {
			t.Errorf("workers=%d: missing dedup summary line:\n%s", workers, s)
		}
	}
	// Restricting -users filters rows; whitespace around names is fine.
	var out strings.Builder
	if err := runBulkPar(&out, netPath, objPath, 2, "Bob, Charlie"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Alice") {
		t.Errorf("-users filter leaked other users:\n%s", out.String())
	}
	// Unknown users in -users must error instead of printing empty rows.
	if err := runBulkPar(&out, netPath, objPath, 1, "Zed"); err == nil {
		t.Error("unknown -users name must error")
	}
	if err := runBulkPar(&out, netPath, "/nonexistent.json", 1, ""); err == nil {
		t.Error("missing objects file must error")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "/nonexistent.json", false, false, ""); err == nil {
		t.Error("missing file must error")
	}
	bad := writeNet(t, "{not json")
	if err := run(&out, bad, false, false, ""); err == nil {
		t.Error("bad JSON must error")
	}
	path := writeNet(t, indusJSON)
	if err := run(&out, path, false, false, "malformed"); err == nil {
		t.Error("malformed -lineage must error")
	}
}

func TestRunSession(t *testing.T) {
	netPath := writeNet(t, indusJSON)
	dir := t.TempDir()
	objPath := filepath.Join(dir, "objects.json")
	objects := `{
	  "glyph1": {"Bob": "cow",  "Charlie": "jar"},
	  "glyph2": {"Bob": "fish", "Charlie": "fish"}
	}`
	if err := os.WriteFile(objPath, []byte(objects), 0o644); err != nil {
		t.Fatal(err)
	}
	mutPath := filepath.Join(dir, "muts.json")
	// Dropping Alice -> Bob leaves Charlie as Alice's only mapping.
	muts := `[
	  {"op": "remove-trust", "truster": "Alice", "trusted": "Bob"},
	  {"op": "update-trust", "truster": "Alice", "trusted": "Charlie", "priority": 10}
	]`
	if err := os.WriteFile(mutPath, []byte(muts), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runSession(&out, netPath, objPath, mutPath, 2, "Alice"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	before, after, found := strings.Cut(s, "== after 2 mutations ==")
	if !found {
		t.Fatalf("missing after-mutations section:\n%s", s)
	}
	if !strings.Contains(before, "glyph1           Alice            cow") {
		t.Errorf("before: Alice must follow Bob:\n%s", before)
	}
	if !strings.Contains(after, "glyph1           Alice            jar") {
		t.Errorf("after revocation: Alice must follow Charlie:\n%s", after)
	}
	if !strings.Contains(after, "store: epoch") || !strings.Contains(after, "1 compile(s)") {
		t.Errorf("missing store stats line:\n%s", after)
	}
	// Error paths: unknown op and failing mutations.
	badMut := filepath.Join(dir, "bad.json")
	os.WriteFile(badMut, []byte(`[{"op": "frobnicate"}]`), 0o644)
	if err := runSession(&out, netPath, objPath, badMut, 1, ""); err == nil {
		t.Error("unknown op must error")
	}
	missing := filepath.Join(dir, "missing.json")
	os.WriteFile(missing, []byte(`[{"op": "remove-trust", "truster": "Alice", "trusted": "Zed"}]`), 0o644)
	if err := runSession(&out, netPath, objPath, missing, 1, ""); err == nil {
		t.Error("removing an absent mapping must error")
	}
}

// TestRunRemoteFleet drives the remote subcommand against a two-endpoint
// fleet: the first endpoint is dead, so -retry failover must complete
// reads against the second; promote targets the first endpoint only.
func TestRunRemoteFleet(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/objects":
			json.NewEncoder(w).Encode(wire.ObjectListResponse{Objects: []string{"o1"}})
		case "/v1/admin/promote":
			json.NewEncoder(w).Encode(wire.PromoteResponse{Role: "primary", WasReplica: true, LSN: 9})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(alive.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	var out strings.Builder
	if err := runRemote(&out, []string{"-addr", dead + "," + alive.URL, "-retry", "4", "objects"}); err != nil {
		t.Fatalf("remote objects with dead first endpoint: %v", err)
	}
	if !strings.Contains(out.String(), `"o1"`) {
		t.Fatalf("objects output missing key:\n%s", out.String())
	}

	out.Reset()
	if err := runRemote(&out, []string{"-addr", alive.URL, "promote"}); err != nil {
		t.Fatalf("remote promote: %v", err)
	}
	if !strings.Contains(out.String(), `"was_replica": true`) {
		t.Fatalf("promote output:\n%s", out.String())
	}

	// Without -retry there is no failover: the dead endpoint's transport
	// error surfaces.
	if err := runRemote(&out, []string{"-addr", dead, "objects"}); err == nil {
		t.Fatal("remote against a dead endpoint with no -retry must error")
	}
}
