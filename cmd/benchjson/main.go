// Command benchjson converts `go test -bench` text output into a stable
// JSON document, the machine-readable format of the repository's benchmark
// trajectory (bench/BENCH_*.json): one record per benchmark result line
// plus the run's environment header.
//
// Usage:
//
//	go test -run=NONE -bench . -benchmem . > bench.txt
//	benchjson -in bench.txt -out bench.json
//
// Lines that are not benchmark results or environment headers are ignored,
// so piped output containing PASS/ok trailers converts cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the converted benchmark run.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	doc, err := parse(src)
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse scans bench output: environment headers and result lines.
func parse(src *os.File) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult decodes one "BenchmarkX-8 N 123 ns/op [456 B/op 7 allocs/op]"
// line; ok is false for lines that do not fit the shape.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
				seen = true
			}
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, seen
}
