package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: trustmap
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIncrementalUpdate/recompile         	       8	 137527957 ns/op	196995620 B/op	  170139 allocs/op
BenchmarkIncrementalUpdate/apply             	     465	   2584021 ns/op	 4311605 B/op	     129 allocs/op
BenchmarkNoMem-8                             	    1000	      1234 ns/op
PASS
ok  	trustmap	30.356s
`

func TestParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "trustmap" || doc.CPU == "" {
		t.Errorf("header not captured: %+v", doc)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[1]
	if r.Name != "BenchmarkIncrementalUpdate/apply" || r.Iterations != 465 ||
		r.NsPerOp != 2584021 || r.BytesPerOp != 4311605 || r.AllocsPerOp != 129 {
		t.Errorf("result mismatch: %+v", r)
	}
	if r := doc.Results[2]; r.BytesPerOp != 0 || r.NsPerOp != 1234 {
		t.Errorf("memless result mismatch: %+v", r)
	}
}

func TestParseResultRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken",
		"BenchmarkBroken abc 123 ns/op",
		"BenchmarkBroken 12 nonsense only",
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("line %q must not parse", line)
		}
	}
}
