package trustmap

// Store is the v2 top-level API: one handle owning the shared trust
// network AND the persistent per-object beliefs of the paper's community
// database (Section 4), where the old API treated objects as a transient
// map threaded through every BulkResolve call.
//
// A Store wraps an epoch-published session (internal/serve underneath):
// reads pin the currently published snapshot lock-free, trust mutations
// build the next epoch off to the side and swap it in atomically, and the
// compiled resolution artifact is maintained incrementally across
// mutations. On top of that the Store adds an object table and a
// per-object result cache keyed by (epoch, object version): a belief
// mutation invalidates exactly the touched object, so the next read
// re-resolves only that object — every other stored object keeps serving
// its cached resolution — and a trust mutation advances the epoch, after
// which stale objects are re-resolved lazily in one signature-deduplicated
// batch.
//
// # Object model
//
// Users play two roles. Trust mappings and default beliefs (SetTrust,
// SetDefault) are shared by all objects: they shape the network the
// compiled plan is derived from. Per-object beliefs (PutBelief, PutObject)
// override a user's default for one object. A user mentioned in any
// object's beliefs becomes a root of the compiled plan; per the paper's
// assumption (ii), every root must have a value for every object — either
// an explicit per-object belief or a network default. Resolving an object
// that leaves a default-less root uncovered returns an error naming the
// root.
//
// # Concurrency
//
// A Store is safe for concurrent use: any number of goroutines may read
// while others mutate. Each read observes exactly one published epoch and
// one self-consistent object table; results remain valid after their
// epoch is superseded.

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"maps"
	"slices"
	"sort"
	"sync"

	"trustmap/internal/engine"
	"trustmap/wire"
)

// storeConfig collects the functional options of NewStore and OpenStore.
type storeConfig struct {
	workers    int
	noDedup    bool
	maxDirty   float64
	extraRoots []string
	durability DurabilityMode
}

// StoreOption configures NewStore and OpenStore.
type StoreOption func(*storeConfig)

// WithWorkers sets the worker-pool size for resolves. Zero or negative
// means GOMAXPROCS.
func WithWorkers(n int) StoreOption { return func(c *storeConfig) { c.workers = n } }

// WithDedup enables or disables signature deduplication for the store's
// resolves. The default (enabled) resolves objects sharing one
// root-assignment signature once per artifact generation.
func WithDedup(enabled bool) StoreOption { return func(c *storeConfig) { c.noDedup = !enabled } }

// WithMaxDirtyFraction sets the dirty-region share above which a trust
// mutation recompiles the resolution plan from scratch instead of
// splicing incrementally (0 = engine default).
func WithMaxDirtyFraction(f float64) StoreOption { return func(c *storeConfig) { c.maxDirty = f } }

// WithExtraRoots pre-declares users whose beliefs vary per object even
// though no object mentions them yet. PutBelief and PutObject register
// the users they mention automatically; the option avoids a replan when
// the first mention arrives after heavy traffic started.
func WithExtraRoots(users ...string) StoreOption {
	return func(c *storeConfig) { c.extraRoots = append(c.extraRoots, users...) }
}

// storeCached is one object's cached resolution: valid while both the
// serving epoch and the object's belief version still match. Objects
// resolved in one batch share that batch's *BulkResolution, so a
// surviving entry keeps its whole batch reachable until the entry is
// superseded (next epoch or belief touch) — memory is bounded by one
// batch generation per object, traded for zero per-object copying on the
// fan-out. Belief-churn refills are per-object batches, so the steady
// mixed workload converges to per-object footprints.
type storeCached struct {
	epoch uint64
	over  uint64 // object belief version at resolution time
	res   *BulkResolution
}

// Store owns a trust network and the per-object beliefs resolved against
// it. Create with NewStore (fresh network) or Network.NewStore (adopting
// an existing facade network). Safe for concurrent use.
type Store struct {
	net  *Network
	sess *session

	// dur is the persistence side (durable.go): nil for in-memory stores
	// (NewStore), the open WAL + snapshot machinery for OpenStore. When
	// set, every mutator runs apply-then-log inside dur.mu.
	dur *durable

	mu      sync.RWMutex
	objects map[string]map[string]string // object -> user -> value; value maps are copy-on-write
	objVer  map[string]uint64            // bumped on every object mutation
	cache   map[string]storeCached
	hits    uint64 // reads served from the cache
	misses  uint64 // reads that re-resolved
}

// NewStore returns an empty in-memory store: no users, no trust, no
// objects, no persistence. Build state through the mutators; use
// OpenStore for a store that survives restarts.
func NewStore(opts ...StoreOption) (*Store, error) {
	return New().NewStore(opts...)
}

// NewStore adopts the network as the store's trust network and compiles
// it: the adapter from the construction API. The network must not be
// mutated directly afterwards while the store is in use from several
// goroutines (sequential direct mutation remains supported and is
// detected, exactly as for sessions).
func (n *Network) NewStore(opts ...StoreOption) (*Store, error) {
	var c storeConfig
	for _, o := range opts {
		o(&c)
	}
	return newStore(n, c)
}

// newStore builds the in-memory store for a resolved config: the shared
// body of NewStore and OpenStore (which layers durability on afterwards).
func newStore(n *Network, c storeConfig) (*Store, error) {
	s, err := n.newSession(sessionOptions{
		Workers:          c.workers,
		ExtraRoots:       c.extraRoots,
		MaxDirtyFraction: c.maxDirty,
		DisableDedup:     c.noDedup,
	})
	if err != nil {
		return nil, err
	}
	return &Store{
		net:     n,
		sess:    s,
		objects: make(map[string]map[string]string),
		objVer:  make(map[string]uint64),
		cache:   make(map[string]storeCached),
	}, nil
}

// Network returns the underlying facade network (read-only use — direct
// mutation concurrent with store use is a data race; see NewStore).
func (s *Store) Network() *Network { return s.net }

// Epoch returns the sequence number of the currently published epoch. It
// increases by one per effective trust mutation, batch, or replan.
func (s *Store) Epoch() uint64 { return s.sess.Epoch() }

// Users returns all user names known to the trust network, sorted.
func (s *Store) Users() []string { return s.net.Users() }

// --- trust-network mutators -------------------------------------------

// SetTrust states that truster accepts values from trusted with the given
// priority, creating the mapping or re-prioritizing an existing one
// (upsert), and publishes the updated artifact.
func (s *Store) SetTrust(ctx context.Context, truster, trusted string, priority int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.applySetTrust(truster, trusted, priority); err != nil {
		return err
	}
	return s.logMutation(wire.Op{Op: wire.OpSetTrust, Truster: truster, Trusted: trusted, Priority: priority})
}

func (s *Store) applySetTrust(truster, trusted string, priority int) error {
	return s.sess.Update(func(tx *sessionTx) error {
		if ok, err := tx.UpdateTrust(truster, trusted, priority); err != nil || ok {
			return err
		}
		return tx.AddTrust(truster, trusted, priority)
	})
}

// RemoveTrust revokes truster -> trusted and reports whether the mapping
// existed.
func (s *Store) RemoveTrust(ctx context.Context, truster, trusted string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return false, err
	}
	defer unlock()
	ok, err := s.sess.RemoveTrust(truster, trusted)
	if err != nil || !ok {
		return ok, err
	}
	return true, s.logMutation(wire.Op{Op: wire.OpRemoveTrust, Truster: truster, Trusted: trusted})
}

// SetDefault states user's network-level belief: the value every object
// inherits when its own beliefs omit the user (Definition 2.1).
func (s *Store) SetDefault(ctx context.Context, user, value string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.sess.SetBelief(user, value); err != nil {
		return err
	}
	return s.logMutation(wire.Op{Op: wire.OpSetBelief, User: user, Value: value})
}

// DeleteDefault revokes user's network-level belief. A user mentioned by
// stored objects stays a root: objects must then cover the user
// explicitly (assumption ii).
func (s *Store) DeleteDefault(ctx context.Context, user string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	// Revoking an absent belief is a no-op and must not consume an LSN:
	// the WAL holds exactly the effective mutation history. The existence
	// probe is safe here — mutators serialize on dur.mu (in-memory stores
	// skip it entirely, there is nothing to log).
	logIt := s.dur != nil && s.net.hasDefault(user)
	if err := s.sess.RemoveBelief(user); err != nil {
		return err
	}
	if !logIt {
		return nil
	}
	return s.logMutation(wire.Op{Op: wire.OpRemoveBelief, User: user})
}

// StoreTx applies several trust-network mutations as one batch inside
// Store.Update: concurrent readers observe either the whole batch or none
// of it, and the engine folds the batch into the compiled artifact in one
// delta application. On a durable store the batch's effective ops are
// logged as one WAL record when Update returns.
type StoreTx struct {
	tx  *sessionTx
	rec *[]wire.Op // effective-op recorder; nil on in-memory stores
}

// record notes one effective mutation for the batch's WAL record.
func (t *StoreTx) record(op wire.Op) {
	if t.rec != nil {
		*t.rec = append(*t.rec, op)
	}
}

// SetTrust is Store.SetTrust within the batch.
func (t *StoreTx) SetTrust(truster, trusted string, priority int) error {
	if ok, err := t.tx.UpdateTrust(truster, trusted, priority); err != nil || ok {
		if err == nil {
			t.record(wire.Op{Op: wire.OpSetTrust, Truster: truster, Trusted: trusted, Priority: priority})
		}
		return err
	}
	if err := t.tx.AddTrust(truster, trusted, priority); err != nil {
		return err
	}
	t.record(wire.Op{Op: wire.OpSetTrust, Truster: truster, Trusted: trusted, Priority: priority})
	return nil
}

// AddTrust adds a new mapping, erroring if it already exists (use
// SetTrust to upsert).
func (t *StoreTx) AddTrust(truster, trusted string, priority int) error {
	if err := t.tx.AddTrust(truster, trusted, priority); err != nil {
		return err
	}
	t.record(wire.Op{Op: wire.OpAddTrust, Truster: truster, Trusted: trusted, Priority: priority})
	return nil
}

// UpdateTrust re-prioritizes an existing mapping and reports whether it
// existed.
func (t *StoreTx) UpdateTrust(truster, trusted string, priority int) (bool, error) {
	ok, err := t.tx.UpdateTrust(truster, trusted, priority)
	if err == nil && ok {
		t.record(wire.Op{Op: wire.OpUpdateTrust, Truster: truster, Trusted: trusted, Priority: priority})
	}
	return ok, err
}

// RemoveTrust is Store.RemoveTrust within the batch.
func (t *StoreTx) RemoveTrust(truster, trusted string) (bool, error) {
	ok, err := t.tx.RemoveTrust(truster, trusted)
	if err == nil && ok {
		t.record(wire.Op{Op: wire.OpRemoveTrust, Truster: truster, Trusted: trusted})
	}
	return ok, err
}

// SetDefault is Store.SetDefault within the batch.
func (t *StoreTx) SetDefault(user, value string) error {
	if err := t.tx.SetBelief(user, value); err != nil {
		return err
	}
	t.record(wire.Op{Op: wire.OpSetBelief, User: user, Value: value})
	return nil
}

// DeleteDefault is Store.DeleteDefault within the batch.
func (t *StoreTx) DeleteDefault(user string) error {
	had := t.rec != nil && t.tx.s.net.hasDefault(user) // under the session writer lock
	if err := t.tx.RemoveBelief(user); err != nil {
		return err
	}
	if had {
		t.record(wire.Op{Op: wire.OpRemoveBelief, User: user})
	}
	return nil
}

// Update applies a batch of trust-network mutations and publishes one
// epoch at the end. fn's error is returned but does not roll the batch
// back; mutations applied before the error are published (there is no
// transactional undo) and, on a durable store, logged. tx must not be
// used after fn returns.
func (s *Store) Update(fn func(tx *StoreTx) error) error {
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	var ops []wire.Op
	var rec *[]wire.Op
	if s.dur != nil {
		rec = &ops
	}
	ferr := s.sess.Update(func(tx *sessionTx) error { return fn(&StoreTx{tx: tx, rec: rec}) })
	if len(ops) > 0 {
		if lerr := s.logMutation(ops...); ferr == nil {
			ferr = lerr
		}
	}
	return ferr
}

// applyUpdate is Update without the durable critical section or the op
// recorder: the recovery-replay path (ops come FROM the log) and the
// shared body for in-memory batches.
func (s *Store) applyUpdate(fn func(tx *StoreTx) error) error {
	return s.sess.Update(func(tx *sessionTx) error { return fn(&StoreTx{tx: tx}) })
}

// --- object mutators ---------------------------------------------------

// PutBelief states user's explicit belief about one object, overriding
// the user's network default for that object. The user becomes a root of
// the compiled plan if they were not one already (a replan, published as
// a fresh epoch); the touched object's cached resolution — and only it —
// is invalidated.
func (s *Store) PutBelief(ctx context.Context, user, object, value string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.applyPutBelief(user, object, value); err != nil {
		return err
	}
	return s.logMutation(wire.Op{Op: wire.OpPutBelief, Object: object, User: user, Value: value})
}

func (s *Store) applyPutBelief(user, object, value string) error {
	if object == "" {
		return errors.New("trustmap: empty object key")
	}
	if value == "" {
		return errors.New("trustmap: empty value; use DeleteBelief to revoke")
	}
	if _, err := s.sess.addObjectRoots(user); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]string, len(s.objects[object])+1)
	maps.Copy(m, s.objects[object])
	m[user] = value
	s.touchLocked(object, m)
	return nil
}

// DeleteBelief revokes user's explicit belief about one object and
// reports whether it existed. The object falls back to the user's network
// default (resolving errors if there is none and the user is still a
// root elsewhere).
func (s *Store) DeleteBelief(ctx context.Context, user, object string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return false, err
	}
	defer unlock()
	if !s.applyDeleteBelief(user, object) {
		return false, nil
	}
	return true, s.logMutation(wire.Op{Op: wire.OpDeleteBelief, Object: object, User: user})
}

func (s *Store) applyDeleteBelief(user, object string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.objects[object]
	if !ok {
		return false
	}
	if _, ok := old[user]; !ok {
		return false
	}
	m := make(map[string]string, len(old)-1)
	maps.Copy(m, old)
	delete(m, user)
	s.touchLocked(object, m)
	return true
}

// PutObject creates or replaces one object's explicit beliefs wholesale.
// An empty (or nil) belief map is valid: the object then resolves purely
// from network defaults.
func (s *Store) PutObject(ctx context.Context, object string, beliefs map[string]string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	if err := s.applyPutObject(object, beliefs); err != nil {
		return err
	}
	return s.logMutation(wire.Op{Op: wire.OpPutObject, Object: object, Beliefs: beliefs})
}

func (s *Store) applyPutObject(object string, beliefs map[string]string) error {
	if object == "" {
		return errors.New("trustmap: empty object key")
	}
	users := make([]string, 0, len(beliefs))
	for user, v := range beliefs {
		if v == "" {
			return fmt.Errorf("trustmap: empty value for user %q in object %q", user, object)
		}
		users = append(users, user)
	}
	sort.Strings(users) // deterministic registration order
	if _, err := s.sess.addObjectRoots(users...); err != nil {
		return err
	}
	m := make(map[string]string, len(beliefs))
	maps.Copy(m, beliefs)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchLocked(object, m)
	return nil
}

// DeleteObject removes one object and its beliefs, reporting whether it
// existed. Users it mentioned stay roots (other objects may mention them;
// rootness is never withdrawn while the store lives).
func (s *Store) DeleteObject(ctx context.Context, object string) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return false, err
	}
	defer unlock()
	if !s.applyDeleteObject(object) {
		return false, nil
	}
	return true, s.logMutation(wire.Op{Op: wire.OpDeleteObject, Object: object})
}

func (s *Store) applyDeleteObject(object string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[object]; !ok {
		return false
	}
	delete(s.objects, object)
	delete(s.cache, object)
	s.objVer[object]++ // in-flight fills must not resurrect the entry
	return true
}

// AddRoots declares users whose beliefs vary per object without storing
// an object that mentions them: PutObject's root registration decoupled
// from the object write. Registration is idempotent and rootness is never
// withdrawn while the store lives. On durable stores the effective (not
// previously registered) names are logged as one register-roots op, so
// recovery replay reconstructs the exact root set.
//
// A cluster router broadcasts AddRoots to every shard before routing an
// object write to its owner: rootness changes resolution semantics, so
// the root set — like the trust network — is part of the shared spine
// that must stay identical across shards for scatter-gathered reads to
// match a single store.
func (s *Store) AddRoots(ctx context.Context, users ...string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	names := make([]string, 0, len(users))
	for _, u := range users {
		if u == "" {
			return errors.New("trustmap: empty user name")
		}
		names = append(names, u)
	}
	sort.Strings(names) // deterministic registration order
	names = slices.Compact(names)
	if len(names) == 0 {
		return nil
	}
	unlock, err := s.beginMutation()
	if err != nil {
		return err
	}
	defer unlock()
	added, err := s.sess.addObjectRoots(names...)
	if err != nil {
		return err
	}
	if len(added) == 0 {
		return nil // all already registered: nothing effective to log
	}
	return s.logMutation(wire.Op{Op: wire.OpRegisterRoots, Users: added})
}

// touchLocked installs the object's new belief map and invalidates its
// cached resolution. Callers hold mu.
func (s *Store) touchLocked(object string, beliefs map[string]string) {
	s.objects[object] = beliefs
	s.objVer[object]++
	delete(s.cache, object)
}

// --- object reads ------------------------------------------------------

// Objects returns the stored object keys, sorted.
func (s *Store) Objects() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.keysLocked()
}

func (s *Store) keysLocked() []string {
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NumObjects returns the number of stored objects.
func (s *Store) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Object returns a copy of one object's explicit beliefs and whether the
// object exists.
func (s *Store) Object(object string) (map[string]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.objects[object]
	if !ok {
		return nil, false
	}
	out := make(map[string]string, len(m))
	maps.Copy(out, m)
	return out, true
}

// --- resolution reads --------------------------------------------------

// ObjectRow is one stored object's resolution, as returned by
// ResolveObject, ResolveAll, and the Resolved iterator.
type ObjectRow struct {
	// Object is the object key the row resolves.
	Object string
	res    *BulkResolution
}

// Possible returns poss(user, object) for the row's object, sorted. An
// unknown user returns an empty slice; use Lookup when the distinction
// matters.
func (r ObjectRow) Possible(user string) []string {
	if r.res == nil {
		return nil
	}
	return r.res.Possible(user, r.Object)
}

// Certain returns cert(user, object) for the row's object. ok is false
// when the user holds no certain value.
func (r ObjectRow) Certain(user string) (string, bool) {
	if r.res == nil {
		return "", false
	}
	return r.res.Certain(user, r.Object)
}

// Lookup is Possible and Certain with lookup failures made explicit: an
// unknown user answers an error wrapping ErrUnknownUser.
func (r ObjectRow) Lookup(user string) (possible []string, certain string, err error) {
	if r.res == nil {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownObject, r.Object)
	}
	return r.res.Lookup(user, r.Object)
}

// Epoch returns the publication generation that served the row.
func (r ObjectRow) Epoch() uint64 {
	if r.res == nil {
		return 0
	}
	return r.res.Epoch()
}

// Get resolves one stored object and returns poss(user, object) and
// cert(user, object), re-resolving only when the object's cached
// resolution is stale. certain is "" when the user holds no certain
// value; unknown users and objects answer errors wrapping ErrUnknownUser
// and ErrUnknownObject.
func (s *Store) Get(ctx context.Context, user, object string) (possible []string, certain string, err error) {
	row, err := s.ResolveObject(ctx, object)
	if err != nil {
		return nil, "", err
	}
	return row.Lookup(user)
}

// ResolveObject resolves one stored object against the currently
// published epoch, serving the cached resolution when it is current.
func (s *Store) ResolveObject(ctx context.Context, object string) (ObjectRow, error) {
	rows, _, err := s.resolveStored(ctx, []string{object})
	if err != nil {
		return ObjectRow{}, err
	}
	return rows[0], nil
}

// StoreResolution is the batch view over every stored object, returned by
// ResolveAll: one consistent epoch across all rows.
type StoreResolution struct {
	epoch uint64
	keys  []string
	rows  map[string]ObjectRow
}

// Epoch returns the publication generation that served the batch.
func (r *StoreResolution) Epoch() uint64 { return r.epoch }

// Keys returns the resolved object keys, sorted.
func (r *StoreResolution) Keys() []string { return append([]string(nil), r.keys...) }

// Rows iterates the per-object rows in sorted key order.
func (r *StoreResolution) Rows() iter.Seq[ObjectRow] {
	return func(yield func(ObjectRow) bool) {
		for _, k := range r.keys {
			if !yield(r.rows[k]) {
				return
			}
		}
	}
}

// Possible returns poss(user, object), or nil for unknown users/objects.
func (r *StoreResolution) Possible(user, object string) []string {
	return r.rows[object].Possible(user)
}

// Certain returns cert(user, object); ok is false when there is none (or
// the user/object is unknown — use Lookup to tell those apart).
func (r *StoreResolution) Certain(user, object string) (string, bool) {
	return r.rows[object].Certain(user)
}

// Lookup is Possible and Certain with lookup failures made explicit:
// errors wrap ErrUnknownUser / ErrUnknownObject.
func (r *StoreResolution) Lookup(user, object string) (possible []string, certain string, err error) {
	row, ok := r.rows[object]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownObject, object)
	}
	return row.Lookup(user)
}

// ResolveAll resolves every stored object at one pinned epoch. Objects
// whose cached resolution is current are served from the cache; the rest
// are re-resolved as one signature-deduplicated batch. After a belief
// mutation this re-resolves exactly the touched objects.
func (s *Store) ResolveAll(ctx context.Context) (*StoreResolution, error) {
	rows, epoch, err := s.resolveStored(ctx, nil)
	if err != nil {
		return nil, err
	}
	res := &StoreResolution{epoch: epoch, keys: make([]string, 0, len(rows)), rows: make(map[string]ObjectRow, len(rows))}
	for _, row := range rows {
		res.keys = append(res.keys, row.Object)
		res.rows[row.Object] = row
	}
	return res, nil
}

// resolveStored serves the given stored objects (nil keys = all, sorted)
// at one pinned epoch: cache-current objects are served as-is, the rest
// are resolved in one batch and the cache is refilled. Unknown keys error
// with ErrUnknownObject.
func (s *Store) resolveStored(ctx context.Context, keys []string) ([]ObjectRow, uint64, error) {
	e, err := s.sess.snapshot()
	if err != nil {
		return nil, 0, err
	}
	var (
		epoch uint64
		rows  []ObjectRow
		dirty map[string]map[string]string
		overs map[string]uint64
		hits  uint64
	)
	// Pin an epoch and capture the object table consistently: PutBelief
	// and PutObject install a belief entry only AFTER publishing any
	// replan its new roots needed, so if no publication landed between the
	// pin and the table read, every captured entry's roots exist in the
	// pinned epoch. Retries are bounded so a write-heavy store cannot
	// starve the read; on exhaustion the freshest capture serves (worst
	// case: the documented coverage error for a just-registered root).
	allKeys := keys == nil
	for attempt := 0; ; attempt++ {
		epoch = e.Seq()
		rows, dirty, overs, hits = nil, nil, nil, 0
		s.mu.RLock()
		if allKeys {
			// Recaptured every attempt: a key deleted between attempts must
			// drop out, not fail the all-objects read as unknown.
			keys = s.keysLocked()
		}
		rows = make([]ObjectRow, 0, len(keys))
		overs = make(map[string]uint64)
		for _, k := range keys {
			bs, ok := s.objects[k]
			if !ok {
				s.mu.RUnlock()
				e.Release()
				return nil, 0, fmt.Errorf("%w: %q", ErrUnknownObject, k)
			}
			if c, ok := s.cache[k]; ok && c.epoch == epoch && c.over == s.objVer[k] {
				rows = append(rows, ObjectRow{Object: k, res: c.res})
				continue
			}
			if dirty == nil {
				dirty = make(map[string]map[string]string)
			}
			dirty[k] = bs // value maps are copy-on-write: safe to read unlocked
			overs[k] = s.objVer[k]
			rows = append(rows, ObjectRow{Object: k}) // filled below
		}
		hits = uint64(len(rows) - len(dirty))
		s.mu.RUnlock()
		if s.sess.Epoch() == epoch || attempt >= 2 {
			break
		}
		e.Release() // a publication raced the capture: re-pin and retry
		if e, err = s.sess.snapshot(); err != nil {
			return nil, 0, err
		}
	}
	defer e.Release()

	if len(dirty) > 0 {
		res, err := resolveSnap(ctx, e, dirty, s.sess.workers, s.sess.noDedup)
		if err != nil {
			return nil, 0, err
		}
		for i := range rows {
			if rows[i].res == nil {
				rows[i].res = res
			}
		}
		s.mu.Lock()
		for k, over := range overs {
			// Refill only when the object was not mutated or deleted while
			// we resolved — a stale fill would serve outdated beliefs.
			if _, ok := s.objects[k]; ok && s.objVer[k] == over {
				s.cache[k] = storeCached{epoch: epoch, over: over, res: res}
			}
		}
		s.hits += hits
		s.misses += uint64(len(dirty))
		s.mu.Unlock()
	} else if hits > 0 {
		s.mu.Lock()
		s.hits += hits
		s.mu.Unlock()
	}
	return rows, epoch, nil
}

// resolvedChunkSize bounds how many stale objects one streaming batch
// resolves at a time: large enough to amortize the scan and feed
// signature deduplication, small enough to keep the stream's memory
// footprint independent of the store size.
const resolvedChunkSize = 1024

// Resolved streams every stored object's resolution in sorted key order,
// without materializing the full result set: objects are resolved in
// bounded chunks against ONE pinned epoch, so a million-object store can
// be consumed row by row while writers keep publishing. Cache-current
// objects are served from the cache; freshly resolved chunks do not
// refill it (the stream is a read-only pass). Iteration stops at the
// first error (yielded with a zero ObjectRow) or when the consumer
// breaks.
func (s *Store) Resolved(ctx context.Context) iter.Seq2[ObjectRow, error] {
	return func(yield func(ObjectRow, error) bool) {
		e, err := s.sess.snapshot()
		if err != nil {
			yield(ObjectRow{}, err)
			return
		}
		defer func() { e.Release() }()

		// One consistent pass: keys, belief maps (copy-on-write — the refs
		// stay frozen), and current cache entries, captured under one lock.
		// The capture retries like resolveStored's: if a publication landed
		// between the epoch pin and the table read, the table may mention
		// roots the pinned epoch predates.
		var (
			epoch   uint64
			keys    []string
			beliefs map[string]map[string]string
			cached  map[string]*BulkResolution
		)
		for attempt := 0; ; attempt++ {
			epoch = e.Seq()
			s.mu.RLock()
			keys = s.keysLocked()
			beliefs = make(map[string]map[string]string, len(keys))
			cached = make(map[string]*BulkResolution)
			for _, k := range keys {
				if c, ok := s.cache[k]; ok && c.epoch == epoch && c.over == s.objVer[k] {
					cached[k] = c.res
				} else {
					beliefs[k] = s.objects[k]
				}
			}
			s.mu.RUnlock()
			if s.sess.Epoch() == epoch || attempt >= 2 {
				break
			}
			var err error
			old := e
			if e, err = s.sess.snapshot(); err != nil {
				old.Release()
				yield(ObjectRow{}, err)
				return
			}
			old.Release()
		}

		for start := 0; start < len(keys); start += resolvedChunkSize {
			chunk := keys[start:min(start+resolvedChunkSize, len(keys))]
			var batch map[string]map[string]string
			for _, k := range chunk {
				if _, ok := cached[k]; ok {
					continue
				}
				if batch == nil {
					batch = make(map[string]map[string]string, len(chunk))
				}
				batch[k] = beliefs[k]
			}
			var res *BulkResolution
			if len(batch) > 0 {
				var err error
				res, err = resolveSnap(ctx, e, batch, s.sess.workers, s.sess.noDedup)
				if err != nil {
					yield(ObjectRow{}, err)
					return
				}
			}
			for _, k := range chunk {
				row := ObjectRow{Object: k, res: res}
				if c, ok := cached[k]; ok {
					row.res = c
				}
				if !yield(row, nil) {
					return
				}
			}
		}
	}
}

// Resolve resolves one ad-hoc object (not stored) against the currently
// published epoch: beliefs overrides the network defaults per root and
// may be nil when every root has a default.
func (s *Store) Resolve(ctx context.Context, beliefs map[string]string) (*ObjectResolution, error) {
	return s.sess.Resolve(ctx, beliefs)
}

// ResolveBatch resolves many ad-hoc objects (not stored) against the
// currently published epoch. Every user mentioned must already be a root
// — a belief or default holder, a WithExtraRoots declaration, or a user
// some stored object mentions.
func (s *Store) ResolveBatch(ctx context.Context, objects map[string]map[string]string) (*BulkResolution, error) {
	return s.sess.BulkResolve(ctx, objects)
}

// --- statistics --------------------------------------------------------

// StoreStats extends the session's maintenance counters with the object
// table and result-cache counters.
type StoreStats struct {
	SessionStats
	Objects     int    // stored objects
	CacheHits   uint64 // object reads served from the result cache
	CacheMisses uint64 // object reads that re-resolved
}

// Stats returns the store's counters as of the currently published epoch.
func (s *Store) Stats() StoreStats {
	return s.statsWith(s.sess.Stats())
}

func (s *Store) statsWith(sst SessionStats) StoreStats {
	st := StoreStats{SessionStats: sst}
	s.mu.RLock()
	st.Objects = len(s.objects)
	st.CacheHits, st.CacheMisses = s.hits, s.misses
	s.mu.RUnlock()
	return st
}

// EpochStats returns the store counters and the engine summary of ONE
// pinned epoch: unlike calling Stats and EngineStats back to back, the
// two cannot straddle a publication. For monitoring endpoints that key
// both on the epoch number (trustd's /v1/stats).
func (s *Store) EpochStats() (StoreStats, engine.Stats) {
	sst, eng := s.sess.EpochStats()
	return s.statsWith(sst), eng
}

// EngineStats summarizes the compiled artifact of the currently published
// epoch.
func (s *Store) EngineStats() engine.Stats { return s.sess.EngineStats() }
