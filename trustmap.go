// Package trustmap resolves data conflicts in community databases using
// priority trust mappings, implementing Gatterbauer & Suciu, "Data Conflict
// Resolution Using Trust Mappings" (SIGMOD 2010).
//
// Users state explicit beliefs about the value of an object and trust
// other users with priorities. The library computes, for every user, the
// possible and certain values over all stable solutions of the network
// (Definitions 2.4 and 2.7) in worst-case quadratic time — order-invariant,
// supporting updates and revocations — plus the paper's extensions:
// lineage, agreement checking, consensus values, constraints (negative
// beliefs) under the Skeptic paradigm, and bulk resolution of many objects
// over a compiled concurrent engine.
//
// # Store: the v2 API
//
// Store is the recommended entry point: one handle owning the trust
// network and the persistent per-object beliefs, with context-aware
// error-returning mutators, epoch-snapshot concurrent reads, streaming
// results, and incremental maintenance (a belief mutation re-resolves
// only the touched object):
//
//	st, _ := trustmap.NewStore(trustmap.WithWorkers(4))
//	ctx := context.Background()
//	st.SetTrust(ctx, "Alice", "Bob", 100)    // Alice trusts Bob (prio 100)
//	st.SetTrust(ctx, "Alice", "Charlie", 50) // ... and Charlie (prio 50)
//	st.PutBelief(ctx, "Bob", "obj1", "fish")
//	st.PutBelief(ctx, "Charlie", "obj1", "knot")
//	poss, cert, _ := st.Get(ctx, "Alice", "obj1") // [fish], "fish"
//	for row, err := range st.Resolved(ctx) {      // streaming batch reads
//		_, _ = row, err
//	}
//
// cmd/trustd serves a Store over HTTP (schema in the wire package, typed
// Go client in the client package).
//
// # Network: single-object analysis
//
// Network remains the facade for one-shot, single-object analysis — the
// Resolution Algorithm, lineage, agreement checking, and the constraint
// paradigms:
//
//	n := trustmap.New()
//	n.AddTrust("Alice", "Bob", 100)
//	n.AddTrust("Alice", "Charlie", 50)
//	n.AddTrust("Bob", "Alice", 80)
//	n.SetBelief("Bob", "fish")
//	n.SetBelief("Charlie", "knot")
//	r, _ := n.Resolve()
//	v, _ := r.Certain("Alice")          // "fish"
//
// Network.NewStore adopts a facade-built network as a store's trust
// network; all bulk and multi-object work goes through Store. For
// horizontal write scale-out, internal/shard partitions objects across
// several stores behind one router (served by cmd/trustd -cluster).
package trustmap

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"trustmap/internal/belief"
	"trustmap/internal/bulk"
	"trustmap/internal/engine"
	"trustmap/internal/resolve"
	"trustmap/internal/skeptic"
	"trustmap/internal/tn"
)

// Network is a priority trust network under construction: users, trust
// mappings, explicit beliefs, and optional constraints. The zero value is
// not usable; call New.
type Network struct {
	inner       *tn.Network
	constraints map[int][]string // user -> rejected values
}

// New returns an empty trust network.
func New() *Network {
	return &Network{inner: tn.New(), constraints: make(map[int][]string)}
}

// AddUser registers a user. Users referenced by AddTrust or SetBelief are
// registered implicitly; AddUser is only needed for isolated users.
func (n *Network) AddUser(name string) { n.inner.AddUser(name) }

// AddTrust states that truster accepts values from trusted with the given
// priority (Definition 2.2). Higher priorities win conflicts. Priorities
// are comparable only among one truster's mappings.
func (n *Network) AddTrust(truster, trusted string, priority int) {
	t := n.inner.AddUser(truster)
	z := n.inner.AddUser(trusted)
	n.inner.AddMapping(z, t, priority)
}

// RemoveTrust revokes the trust mapping truster -> trusted and reports
// whether it existed. Revocations are first-class in the paper's model
// (Section 2.5): re-resolving afterwards yields a consistent snapshot, and
// revoking one of two mappings promotes the survivor to preferred parent
// (Section 2.2).
func (n *Network) RemoveTrust(truster, trusted string) bool {
	t, z := n.inner.UserID(truster), n.inner.UserID(trusted)
	if t < 0 || z < 0 {
		return false
	}
	return n.inner.RemoveMapping(z, t)
}

// UpdateTrust changes the priority of the existing mapping truster ->
// trusted and reports whether it existed.
func (n *Network) UpdateTrust(truster, trusted string, priority int) bool {
	t, z := n.inner.UserID(truster), n.inner.UserID(trusted)
	if t < 0 || z < 0 {
		return false
	}
	return n.inner.SetMappingPriority(z, t, priority)
}

// SetBelief states user's explicit belief (Definition 2.1). Setting a new
// value models an update; see RemoveBelief for revocations.
func (n *Network) SetBelief(user, value string) {
	if value == "" {
		panic("trustmap: empty value; use RemoveBelief to revoke")
	}
	n.inner.SetExplicit(n.inner.AddUser(user), tn.Value(value))
}

// RemoveBelief revokes user's explicit belief. Unlike update-exchange
// systems, re-resolving after a revocation yields a consistent snapshot
// with no stale values (Section 2.5).
func (n *Network) RemoveBelief(user string) {
	if id := n.inner.UserID(user); id >= 0 {
		n.inner.SetExplicit(id, tn.NoValue)
	}
}

// hasDefault reports whether user holds an explicit network-level
// belief. The durable store's delete paths probe it so no-op revocations
// are not logged; callers must hold the relevant writer serialization.
func (n *Network) hasDefault(user string) bool {
	id := n.inner.UserID(user)
	return id >= 0 && n.inner.HasExplicit(id)
}

// SetConstraint states that user rejects the given values: a set of
// negative beliefs (Section 3). Constraints are used by ResolveSkeptic;
// Resolve ignores them. A user has either an explicit belief or
// constraints, not both.
func (n *Network) SetConstraint(user string, rejected ...string) {
	id := n.inner.AddUser(user)
	n.constraints[id] = append(n.constraints[id], rejected...)
}

// Users returns all user names, sorted.
func (n *Network) Users() []string {
	out := make([]string, n.inner.NumUsers())
	for i := range out {
		out[i] = n.inner.Name(i)
	}
	sort.Strings(out)
	return out
}

// NumUsers returns the number of users.
func (n *Network) NumUsers() int { return n.inner.NumUsers() }

// NumMappings returns the number of trust mappings.
func (n *Network) NumMappings() int { return n.inner.NumMappings() }

// Validate checks the network for structural problems (self-trust,
// duplicate mappings, users with both beliefs and constraints).
func (n *Network) Validate() error {
	if err := n.inner.Validate(); err != nil {
		return err
	}
	for id := range n.constraints {
		if n.inner.HasExplicit(id) {
			return fmt.Errorf("trustmap: user %q has both an explicit belief and constraints", n.inner.Name(id))
		}
	}
	return nil
}

// Resolution holds the result of resolving a network: possible and certain
// values per user (Definition 2.7), with lineage retrieval.
type Resolution struct {
	src *tn.Network // original network (user IDs match binarized prefix)
	bin *tn.Network // binarized network actually resolved
	res *resolve.Result
}

// Resolve runs the Resolution Algorithm (Algorithm 1) on the network,
// binarizing it first if needed (Proposition 2.8). Constraints are ignored
// here; use ResolveSkeptic for constraint-aware resolution.
func (n *Network) Resolve() (*Resolution, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	b := tn.Binarize(n.inner)
	return &Resolution{src: n.inner, bin: b, res: resolve.Resolve(b)}, nil
}

func (r *Resolution) id(user string) (int, error) {
	id := r.src.UserID(user)
	if id < 0 {
		return -1, fmt.Errorf("trustmap: unknown user %q", user)
	}
	return id, nil
}

// Possible returns the values user holds in at least one stable solution,
// sorted.
func (r *Resolution) Possible(user string) []string {
	id, err := r.id(user)
	if err != nil {
		return nil
	}
	poss := r.res.Possible(id)
	out := make([]string, len(poss))
	for i, v := range poss {
		out[i] = string(v)
	}
	return out
}

// Certain returns the value user holds in every stable solution. ok is
// false if the user has no certain value (conflicting or no information).
func (r *Resolution) Certain(user string) (string, bool) {
	id, err := r.id(user)
	if err != nil {
		return "", false
	}
	v := r.res.Certain(id)
	return string(v), v != tn.NoValue
}

// Lineage explains why value is possible for user: a chain of users from
// an explicit belief to the user, following trust mappings (Section 2.5).
func (r *Resolution) Lineage(user, value string) ([]string, bool) {
	id, err := r.id(user)
	if err != nil {
		return nil, false
	}
	path, ok := r.res.Lineage(id, tn.Value(value))
	if !ok {
		return nil, false
	}
	// Helper nodes introduced by binarization are named "<user>#b0" or
	// "<user>#y<k>"; attribute them back to the originating user and fold
	// consecutive duplicates, so lineages mention only real users.
	var out []string
	for _, x := range path {
		name := r.nodeName(x)
		if len(out) == 0 || out[len(out)-1] != name {
			out = append(out, name)
		}
	}
	return out, true
}

func (r *Resolution) nodeName(x int) string {
	name := r.bin.Name(x) // the binarized network holds all node names
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

// ConflictAnalysis extends a resolution with pairwise information:
// poss(x,y) for every user pair (Proposition 2.13).
type ConflictAnalysis struct {
	src *tn.Network
	res *resolve.PairsResult
}

// AnalyzeConflicts runs the extended algorithm of Proposition 2.13
// (O(n^4)): pairwise possible values, agreement checking, and consensus
// values.
func (n *Network) AnalyzeConflicts() (*ConflictAnalysis, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	b := tn.Binarize(n.inner)
	return &ConflictAnalysis{src: n.inner, res: resolve.ResolvePairs(b)}, nil
}

// Agree reports whether two users hold equal values in every stable
// solution in which both are defined.
func (c *ConflictAnalysis) Agree(a, b string) bool {
	ia, ib := c.src.UserID(a), c.src.UserID(b)
	if ia < 0 || ib < 0 {
		return false
	}
	return c.res.Agree(ia, ib)
}

// AgreeingPairs lists all pairs of (original) users that agree in every
// stable solution (the agreement-checking query of Section 2.1).
func (c *ConflictAnalysis) AgreeingPairs() [][2]string {
	var out [][2]string
	for _, p := range c.res.AgreeingPairs() {
		if p[0] < c.src.NumUsers() && p[1] < c.src.NumUsers() {
			out = append(out, [2]string{c.src.Name(p[0]), c.src.Name(p[1])})
		}
	}
	return out
}

// PossiblePairs returns the joint value pairs two users can take.
func (c *ConflictAnalysis) PossiblePairs(a, b string) [][2]string {
	ia, ib := c.src.UserID(a), c.src.UserID(b)
	if ia < 0 || ib < 0 {
		return nil
	}
	pairs := c.res.PossiblePairs(ia, ib)
	out := make([][2]string, 0, len(pairs))
	for p := range pairs {
		out = append(out, [2]string{string(p[0]), string(p[1])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Consensus returns all values v such that in every stable solution, user
// a believes v exactly when user b does (Section 2.1).
func (c *ConflictAnalysis) Consensus(a, b string) []string {
	ia, ib := c.src.UserID(a), c.src.UserID(b)
	if ia < 0 || ib < 0 {
		return nil
	}
	vals := c.res.Consensus(ia, ib)
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = string(v)
	}
	return out
}

// SkepticResolution holds constraint-aware resolution results under the
// Skeptic paradigm (Section 3, Algorithm 2).
type SkepticResolution struct {
	src *tn.Network
	res *skeptic.Result
}

// ResolveSkeptic resolves the network with constraints under the Skeptic
// paradigm (Theorem 3.5, quadratic time). The network must be binary (at
// most two trusted users per user) with distinct priorities per user, as
// Section 3 requires; Agnostic and Eclectic resolution are NP-hard
// (Theorem 3.4) and available exactly via ExactParadigm.
func (n *Network) ResolveSkeptic() (*SkepticResolution, error) {
	c, err := n.constraintNet()
	if err != nil {
		return nil, err
	}
	return &SkepticResolution{src: n.inner, res: skeptic.ResolveSkeptic(c)}, nil
}

func (n *Network) constraintNet() (*skeptic.Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	c := skeptic.FromTN(n.inner.Clone())
	for id, rejected := range n.constraints {
		c.SetBelief(id, belief.Negatives(rejected...))
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Possible returns the positive values the user can hold in some stable
// solution under the Skeptic paradigm.
func (s *SkepticResolution) Possible(user string) []string {
	id := s.src.UserID(user)
	if id < 0 {
		return nil
	}
	return s.res.PossiblePositives(id)
}

// Certain returns the positive value held in every stable solution.
func (s *SkepticResolution) Certain(user string) (string, bool) {
	id := s.src.UserID(user)
	if id < 0 {
		return "", false
	}
	v := s.res.CertainPositive(id)
	return v, v != ""
}

// RejectsEverything reports whether the user can end up rejecting every
// value (the ⊥ state) in some stable solution.
func (s *SkepticResolution) RejectsEverything(user string) bool {
	id := s.src.UserID(user)
	return id >= 0 && s.res.HasBottom(id)
}

// Describe renders the user's possible belief sets in the paper's
// notation.
func (s *SkepticResolution) Describe(user string) []string {
	id := s.src.UserID(user)
	if id < 0 {
		return nil
	}
	var out []string
	for _, b := range s.res.PossibleBeliefSets(id) {
		out = append(out, b.String())
	}
	return out
}

// Paradigm selects a constraint-handling semantics for ExactParadigm.
type Paradigm = belief.Paradigm

// The three constraint paradigms of Section 3.1.
const (
	Agnostic = belief.Agnostic
	Eclectic = belief.Eclectic
	Skeptic  = belief.Skeptic
)

// ExactParadigm computes the possible positive values per user under any
// paradigm by exhaustive stable-solution enumeration (Definition 3.3).
// Exponential: Agnostic and Eclectic are NP-hard (Theorem 3.4), so this is
// only usable on small networks. For Skeptic prefer ResolveSkeptic.
func (n *Network) ExactParadigm(p Paradigm) (map[string][]string, error) {
	c, err := n.constraintNet()
	if err != nil {
		return nil, err
	}
	sols := skeptic.EnumerateStableSolutions(c, p, 0)
	poss := skeptic.PossiblePositives(c, sols)
	out := make(map[string][]string, n.inner.NumUsers())
	for x := 0; x < n.inner.NumUsers(); x++ {
		vals := make([]string, 0, len(poss[x]))
		for v := range poss[x] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out[n.inner.Name(x)] = vals
	}
	return out, nil
}

// Sentinel errors for BulkResolution.Lookup (match with errors.Is).
var (
	// ErrUnknownUser reports a user name never registered in the network.
	ErrUnknownUser = errors.New("trustmap: unknown user")
	// ErrUnknownObject reports an object key that was not part of the
	// resolved object set.
	ErrUnknownObject = errors.New("trustmap: unknown object")
)

// userIndex resolves user names to original IDs: a live *tn.Network for
// one-shot resolutions, or an immutable *tn.View for session-served ones
// (the result must stay readable while writers mutate the network).
type userIndex interface {
	UserID(name string) int
}

// BulkResolution gives access to bulk per-object results (Section 4).
type BulkResolution struct {
	src   userIndex
	keys  []string           // object keys, sorted
	store *bulk.Store        // legacy sequential SQL path
	eng   *engine.BulkResult // compiled concurrent engine path
	// binIDs maps original user IDs to nodes of the resolved (binarized)
	// network when they diverge — results served by a session whose user
	// set grew after compilation. nil means identity.
	binIDs []int
	// epoch is the session publication generation that served the result;
	// zero for one-shot resolutions.
	epoch uint64
}

// Epoch returns the session publication generation that served this
// resolution, or zero when it did not come from a session. Comparing
// epochs tells whether two resolutions observed the same published
// snapshot.
func (r *BulkResolution) Epoch() uint64 { return r.epoch }

// binID maps an original user ID into the resolved network.
func (r *BulkResolution) binID(id int) int {
	if r.binIDs == nil || id >= len(r.binIDs) {
		return id
	}
	return r.binIDs[id]
}

// hasKey reports whether object was part of the resolved set.
func (r *BulkResolution) hasKey(object string) bool {
	i := sort.SearchStrings(r.keys, object)
	return i < len(r.keys) && r.keys[i] == object
}

// Lookup returns poss(user, object) and cert(user, object) with lookup
// failures made explicit: an error wrapping ErrUnknownUser or
// ErrUnknownObject instead of the silent empty results of Possible and
// Certain. certain is "" when the user has no certain value for the
// object; an empty possible slice with a nil error means the user is
// genuinely unreachable from the object's beliefs.
func (r *BulkResolution) Lookup(user, object string) (possible []string, certain string, err error) {
	id := r.src.UserID(user)
	if id < 0 {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	if !r.hasKey(object) {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownObject, object)
	}
	possible = r.possible(id, object)
	if len(possible) == 1 {
		certain = possible[0]
	}
	return possible, certain, nil
}

// possible returns the sorted possible values of an original user ID.
func (r *BulkResolution) possible(id int, object string) []string {
	var poss []tn.Value
	if r.store != nil {
		poss = r.store.Possible(id, object)
	} else {
		poss = r.eng.Possible(r.binID(id), object)
	}
	out := make([]string, len(poss))
	for i, v := range poss {
		out[i] = string(v)
	}
	sort.Strings(out)
	return out
}

// bulkOptions configures BulkResolve's execution strategy.
type bulkOptions struct {
	// Workers is the number of concurrent resolution goroutines for the
	// engine path. Zero or negative means GOMAXPROCS.
	Workers int
	// UseSQL selects the legacy sequential SQL path of Section 4
	// (INSERT ... SELECT over a POSS(X,K,V) relation) instead of the
	// compiled concurrent engine. Kept for parity testing and for callers
	// that want the relational trace.
	UseSQL bool
	// DisableDedup turns off signature deduplication on the engine path:
	// by default objects sharing one root-assignment signature are resolved
	// once and share the canonical result, which makes clustered workloads
	// sublinear in the object count. Results are identical either way; see
	// BulkResolution.DedupStats for what a batch deduplicated to.
	DisableDedup bool
}

// DedupStats reports what signature deduplication did for one engine-path
// bulk resolution; see BulkResolution.DedupStats.
type DedupStats = engine.DedupStats

// bulkResolveWith resolves many objects sharing this network's trust
// mappings (Section 4) by compiling the per-object analysis once and then
// scanning the objects with a worker pool (or the legacy SQL path when
// opts.UseSQL is set). Results are identical across strategies and worker
// counts. It is the one-shot internal engine behind Store.ResolveBatch and
// the SQL-parity tests; external callers use Store, which keeps the
// compiled artifact live across calls instead of recompiling per batch.
func (n *Network) bulkResolveWith(ctx context.Context, objects map[string]map[string]string, opts bulkOptions) (*BulkResolution, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	// Mark every user appearing in object maps as a root.
	shape := n.inner.Clone()
	for _, bs := range objects {
		for user := range bs {
			id := shape.UserID(user)
			if id < 0 {
				return nil, fmt.Errorf("trustmap: unknown user %q in object beliefs", user)
			}
			shape.SetExplicit(id, "seed")
		}
	}
	b := tn.Binarize(shape)
	// Root IDs in the binarized network: the hoisted belief nodes. Memoize
	// the lookup per user rather than redoing it per (object, user).
	rootOf := make(map[string]int)
	conv := make(map[string]map[int]tn.Value, len(objects))
	for k, bs := range objects {
		m := make(map[int]tn.Value, len(bs))
		for user, v := range bs {
			id, ok := rootOf[user]
			if !ok {
				id = findRootFor(b, shape.UserID(user))
				rootOf[user] = id
			}
			m[id] = tn.Value(v)
		}
		conv[k] = m
	}
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if opts.UseSQL {
		// The SQL path is one sequential pass; honor ctx between phases.
		plan, err := bulk.NewPlan(b)
		if err != nil {
			return nil, err
		}
		store := bulk.NewStore(plan)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := store.LoadObjects(conv); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := store.Resolve(); err != nil {
			return nil, err
		}
		return &BulkResolution{src: n.inner, keys: keys, store: store}, nil
	}
	c, err := engine.Compile(b)
	if err != nil {
		return nil, err
	}
	res, err := c.Resolve(ctx, conv, engine.Options{Workers: opts.Workers, DisableDedup: opts.DisableDedup})
	if err != nil {
		return nil, err
	}
	return &BulkResolution{src: n.inner, keys: keys, eng: res}, nil
}

// DedupStats reports the signature-deduplication counters of the engine
// path: how many objects the batch held, how many distinct signatures they
// collapsed to, and how many of those came from the cross-batch cache.
// Zero-valued on the SQL path.
func (r *BulkResolution) DedupStats() DedupStats {
	if r.eng == nil {
		return DedupStats{}
	}
	return r.eng.Dedup()
}

// Keys returns the resolved object keys, sorted: the deterministic
// iteration order for per-object reporting.
func (r *BulkResolution) Keys() []string { return append([]string(nil), r.keys...) }

// findRootFor locates the node carrying x's explicit belief in the
// binarized network: x itself if it stayed a root, otherwise the hoisted
// helper node named "<name>#b0".
func findRootFor(b *tn.Network, x int) int {
	if b.HasExplicit(x) {
		return x
	}
	if h := b.UserID(b.Name(x) + "#b0"); h >= 0 {
		return h
	}
	return x
}

// Possible returns poss(user, object), sorted ascending regardless of the
// execution strategy, so outputs are stable across runs and worker counts.
// An unknown user or object returns an empty slice, indistinguishable from
// a user with no possible values; use Lookup when the distinction matters.
func (r *BulkResolution) Possible(user, object string) []string {
	id := r.src.UserID(user)
	if id < 0 {
		return nil
	}
	return r.possible(id, object)
}

// Certain returns cert(user, object). ok is false when the user holds no
// certain value for the object — and also for an unknown user or object;
// use Lookup to tell those apart.
func (r *BulkResolution) Certain(user, object string) (string, bool) {
	id := r.src.UserID(user)
	if id < 0 {
		return "", false
	}
	var v tn.Value
	if r.store != nil {
		v = r.store.Certain(id, object)
	} else {
		v = r.eng.Certain(r.binID(id), object)
	}
	return string(v), v != tn.NoValue
}

// DOT renders the network in Graphviz dot format (edges from trusted user
// to truster, labelled with priorities; explicit beliefs highlighted).
func (n *Network) DOT() string { return tn.DOT(n.inner) }
