package snapshot

import (
	"os"
	"path/filepath"
	"testing"
)

func testFile(lsn uint64) *File {
	return &File{
		Schema: 2,
		Epoch:  lsn * 10,
		LSN:    lsn,
		Trust: []TrustEdge{
			{Truster: "alice", Trusted: "bob", Priority: 1},
			{Truster: "bob", Trusted: "carol", Priority: 2},
		},
		Beliefs:    map[string]string{"carol": "v1"},
		Objects:    map[string]map[string]string{"o1": {"alice": "x"}},
		ExtraRoots: []string{"dave"},
	}
}

func TestWriteLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name, err := Write(dir, testFile(7))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if name != Name(7) {
		t.Fatalf("name = %s, want %s", name, Name(7))
	}
	got, gotName, err := Latest(dir)
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	if gotName != name {
		t.Fatalf("latest name = %s, want %s", gotName, name)
	}
	if got.LSN != 7 || got.Epoch != 70 || got.Format != FormatVersion {
		t.Fatalf("envelope = %+v", got)
	}
	if len(got.Trust) != 2 || got.Beliefs["carol"] != "v1" ||
		got.Objects["o1"]["alice"] != "x" || len(got.ExtraRoots) != 1 {
		t.Fatalf("body round-trip: %+v", got)
	}
}

func TestLatestEmptyDir(t *testing.T) {
	f, name, err := Latest(t.TempDir())
	if f != nil || name != "" || err != nil {
		t.Fatalf("Latest(empty) = %v, %q, %v; want nil, \"\", nil", f, name, err)
	}
	f, name, err = Latest(filepath.Join(t.TempDir(), "missing"))
	if f != nil || name != "" || err != nil {
		t.Fatalf("Latest(missing) = %v, %q, %v; want nil, \"\", nil", f, name, err)
	}
}

func TestLatestPicksHighestWatermark(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{3, 12, 7} {
		if _, err := Write(dir, testFile(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	got, name, err := Latest(dir)
	if err != nil || got == nil {
		t.Fatalf("latest: %v, %v", got, err)
	}
	if got.LSN != 12 || name != Name(12) {
		t.Fatalf("latest = lsn %d (%s), want 12", got.LSN, name)
	}
}

func TestLatestSkipsTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, testFile(5)); err != nil {
		t.Fatal(err)
	}
	// A higher-watermark file torn mid-write (invalid JSON) must be
	// skipped, falling back to the older valid snapshot.
	torn := filepath.Join(dir, Name(9))
	if err := os.WriteFile(torn, []byte(`{"format":1,"lsn":9,"trust":[{"trus`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, name, err := Latest(dir)
	if err != nil || got == nil {
		t.Fatalf("latest: %v, %v", got, err)
	}
	if got.LSN != 5 || name != Name(5) {
		t.Fatalf("latest = lsn %d (%s), want fallback to 5", got.LSN, name)
	}
}

func TestLatestRejectsNameBodyMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, testFile(4)); err != nil {
		t.Fatal(err)
	}
	// A valid body renamed to the wrong watermark must not be trusted.
	blob, err := os.ReadFile(filepath.Join(dir, Name(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, Name(8)), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	got, name, err := Latest(dir)
	if err != nil || got == nil {
		t.Fatalf("latest: %v, %v", got, err)
	}
	if name != Name(4) {
		t.Fatalf("latest = %s, want the honest %s", name, Name(4))
	}
}

func TestLatestRejectsNewerFormat(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, testFile(2)); err != nil {
		t.Fatal(err)
	}
	future := `{"format": 99, "schema": 9, "epoch": 1, "lsn": 6, "trust": []}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, Name(6)), []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	got, name, err := Latest(dir)
	if err != nil || got == nil {
		t.Fatalf("latest: %v, %v", got, err)
	}
	if got.LSN != 2 || name != Name(2) {
		t.Fatalf("latest = lsn %d, want fallback to 2 past the future-format file", got.LSN)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{1, 2, 3, 4} {
		if _, err := Write(dir, testFile(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := Prune(dir, 2)
	if err != nil || n != 2 {
		t.Fatalf("prune = %d, %v; want 2, nil", n, err)
	}
	got, name, _ := Latest(dir)
	if got.LSN != 4 || name != Name(4) {
		t.Fatalf("latest after prune = %d", got.LSN)
	}
	// keep < 1 clamps to 1 and never deletes the newest.
	if n, err := Prune(dir, 0); err != nil || n != 1 {
		t.Fatalf("prune(0) = %d, %v; want 1, nil", n, err)
	}
	if got, _, _ := Latest(dir); got == nil || got.LSN != 4 {
		t.Fatalf("newest snapshot survived prune(0)? got %v", got)
	}
}
