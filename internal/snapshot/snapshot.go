// Package snapshot reads and writes the durable store's compacted
// snapshots: one JSON file per checkpoint holding the full trust network
// and object table in the trustd network-file format, stamped with the
// WAL watermark it folds in. Recovery = load the latest valid snapshot,
// then replay the WAL suffix above its LSN.
//
// Files are named snap-<lsn %016x>.json and written atomically: tmp file
// in the same directory, fsync, rename, fsync the directory. A torn
// snapshot write therefore never shadows the previous good snapshot —
// Latest skips unparseable files and falls back to the newest valid one.
package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"trustmap/internal/faultinject"
)

// FormatVersion is the snapshot file schema generation.
const FormatVersion = 1

// TrustEdge is one trust mapping, mirroring the trustd network-file
// "trust" entry.
type TrustEdge struct {
	Truster  string `json:"truster"`
	Trusted  string `json:"trusted"`
	Priority int    `json:"priority"`
}

// File is the snapshot body. Trust, Beliefs, and Objects follow the
// trustd network-file format exactly, so a snapshot doubles as a valid
// `trustd -f` input; the remaining fields are the durable envelope.
type File struct {
	Format int    `json:"format"`
	Schema int    `json:"schema"` // wire.SchemaVersion of the writer
	Epoch  uint64 `json:"epoch"`  // store epoch at checkpoint
	LSN    uint64 `json:"lsn"`    // WAL watermark folded in

	Trust      []TrustEdge                  `json:"trust"`
	Beliefs    map[string]string            `json:"beliefs,omitempty"`
	Objects    map[string]map[string]string `json:"objects,omitempty"`
	ExtraRoots []string                     `json:"extra_roots,omitempty"`
}

// Name formats the snapshot file name for a watermark.
func Name(lsn uint64) string {
	return fmt.Sprintf("snap-%016x.json", lsn)
}

// parseName extracts the watermark from a snapshot file name.
func parseName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Write atomically persists f into dir as Name(f.LSN) and returns the
// file name. The write path is tmp + fsync + rename + dir fsync, so a
// crash at any point leaves either the old snapshot set or the old set
// plus the complete new file — never a torn file under a valid name.
func Write(dir string, f *File) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	f.Format = FormatVersion
	blob, err := json.MarshalIndent(f, "", "\t")
	if err != nil {
		return "", err
	}
	name := Name(f.LSN)
	if err := writeRaw(dir, name, append(blob, '\n')); err != nil {
		return "", err
	}
	return name, nil
}

// writeRaw is the atomic write path shared by Write and Install: tmp +
// fsync + rename + dir fsync, with the fault points at the same I/O
// boundaries either caller crosses.
func writeRaw(dir, name string, raw []byte) error {
	if err := faultinject.Fire(faultinject.SnapshotWrite); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := faultinject.Fire(faultinject.SnapshotSync); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // make the rename durable; best-effort on exotic FSes
		d.Close()
	}
	return nil
}

// Decode parses and validates one snapshot body without touching disk —
// the receiving half of snapshot shipping.
func Decode(raw []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, err
	}
	if f.Format > FormatVersion {
		return nil, fmt.Errorf("snapshot format %d newer than supported %d", f.Format, FormatVersion)
	}
	return &f, nil
}

// Install atomically persists a snapshot blob fetched from elsewhere (a
// primary's GET /v1/snapshot) under its canonical name, validating it
// first. The raw bytes are written verbatim — a blob from a newer-schema
// writer keeps its unknown fields instead of being lossily re-encoded.
func Install(dir string, raw []byte) (*File, error) {
	f, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("snapshot: install: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeRaw(dir, Name(f.LSN), raw); err != nil {
		return nil, err
	}
	return f, nil
}

// LatestRaw returns the newest valid snapshot's raw bytes and watermark —
// the serving half of snapshot shipping. nil, 0 with no error when dir
// holds no valid snapshot.
func LatestRaw(dir string) ([]byte, uint64, error) {
	f, name, err := Latest(dir)
	if err != nil || f == nil {
		return nil, 0, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		// Pruned between the listing and the read; try once more.
		if f, name, err = Latest(dir); err != nil || f == nil {
			return nil, 0, err
		}
		if raw, err = os.ReadFile(filepath.Join(dir, name)); err != nil {
			return nil, 0, err
		}
	}
	return raw, f.LSN, nil
}

// Latest loads the newest valid snapshot in dir: the highest-watermark
// file that parses. Unparseable candidates (torn by a crash, rotted) are
// skipped, not fatal. Returns nil, "" with no error when dir holds no
// valid snapshot — a fresh store.
func Latest(dir string) (*File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // %016x sorts numerically
	for i := len(names) - 1; i >= 0; i-- {
		f, err := load(filepath.Join(dir, names[i]))
		if err != nil {
			continue // torn or rotted: fall back to the previous one
		}
		if lsn, _ := parseName(names[i]); f.LSN != lsn {
			continue // name/body mismatch: treat as invalid
		}
		return f, names[i], nil
	}
	return nil, "", nil
}

func load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// Prune removes all but the newest keep snapshots. The newest is never
// removed regardless of keep. Returns the removed file count.
func Prune(dir string, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	removed := 0
	for i := 0; i < len(names)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
