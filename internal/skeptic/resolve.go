package skeptic

import (
	"sort"

	"trustmap/internal/belief"
)

// This file implements the Skeptic Resolution Algorithm (Algorithm 2,
// Theorem 3.5). The implementation follows the paper's structure -
// preprocessing of preferred-side negatives, then the Step 1 / Step 2 loop
// of Algorithm 1 lifted to belief states - but tightens the pseudocode in
// places where the published version under-specifies blocking. The key
// structural facts it exploits, both consequences of Definition 3.3 under
// the Skeptic paradigm:
//
//  1. Static type partition. A node reachable (in the trust graph) from a
//     node with an explicit positive belief holds a maximal belief set in
//     EVERY stable solution: either a full positive state
//     {v+} ∪ (⊥ − {v−}) or ⊥ ("Type 2" in the paper's terminology). All
//     other nodes hold, in every stable solution, the same fixed set of
//     negative beliefs ("Type 1"): the union of the explicit negatives of
//     their ancestors. The partition does not depend on the solution.
//
//  2. Because Type-2 belief sets are maximal under the preferred union,
//     a node's belief is determined by its preferred side whenever that
//     side is Type 2, and the negatives blocking an incoming positive v+
//     are exactly the node's own explicit negatives plus - when the
//     preferred parent is Type 1 - that parent's fixed negative set. The
//     paper's prefNeg preprocessing computes a subset of this (explicit
//     negatives along preferred chains); using the full Type-1 closure is
//     required for correctness when Type-1 nodes inherit negatives through
//     non-preferred edges.
//
// The algorithm runs in O(n^2) like Algorithm 1 (SCCs may be recomputed at
// each round; each per-component flood is linear in the component size per
// entering value).

// StateKind distinguishes the three belief shapes of a Skeptic solution.
type StateKind int

const (
	// StateNeg is a Type-1 state: a fixed, solution-independent set of
	// negative beliefs.
	StateNeg StateKind = iota
	// StatePos is a maximal positive state {v+} ∪ (⊥ − {v−}).
	StatePos
	// StateBot is ⊥: every value rejected.
	StateBot
)

// State is one possible belief shape of a node in a stable solution.
type State struct {
	Kind StateKind
	V    string // value for StatePos
}

// Result holds the output of the Skeptic Resolution Algorithm.
type Result struct {
	c      *Network
	type1  []bool           // fixed negative-only nodes
	negSet []belief.Set     // Type-1 fixed belief per node
	states []map[State]bool // possible states of Type-2 nodes
}

// ResolveSkeptic runs the Skeptic Resolution Algorithm on a validated
// constraint network and returns the possible states of every node.
func ResolveSkeptic(c *Network) *Result {
	if err := c.Validate(); err != nil {
		panic("skeptic: " + err.Error())
	}
	nu := c.NumUsers()
	r := &Result{
		c:      c,
		type1:  make([]bool, nu),
		negSet: make([]belief.Set, nu),
		states: make([]map[State]bool, nu),
	}
	for x := 0; x < nu; x++ {
		r.states[x] = make(map[State]bool)
	}
	g := c.TN.Graph()

	// Static type partition: Type 2 = reachable from an explicit positive.
	var posRoots []int
	for x := 0; x < nu; x++ {
		if _, ok := c.B0[x].Pos(); ok {
			posRoots = append(posRoots, x)
		}
	}
	type2 := g.Reachable(posRoots, nil)
	for x := 0; x < nu; x++ {
		r.type1[x] = !type2[x]
	}

	// Fixed negative closure of Type-1 nodes: the union of explicit
	// negatives over all ancestors (including the node itself). Negatives
	// flow unblocked through the positive-free region.
	negClosure := make([]belief.Set, nu)
	for x := 0; x < nu; x++ {
		negClosure[x] = belief.Empty()
	}
	for src := 0; src < nu; src++ {
		b := c.B0[src]
		if _, ok := b.Pos(); ok {
			continue
		}
		if b.IsEmpty() {
			continue
		}
		reach := g.Reachable([]int{src}, nil)
		for x := 0; x < nu; x++ {
			if reach[x] && r.type1[x] {
				negClosure[x] = belief.PreferredUnion(negClosure[x], b)
			}
		}
	}
	for x := 0; x < nu; x++ {
		if r.type1[x] {
			r.negSet[x] = negClosure[x]
			r.states[x][State{Kind: StateNeg}] = true
		}
	}

	// blockedBy reports whether v+ is blocked when it arrives at node m via
	// a non-preferred edge (or an entry edge): by m's explicit negatives,
	// and by the fixed negatives of a Type-1 preferred parent.
	prefOf := make([]int, nu)
	for x := 0; x < nu; x++ {
		if pref, _, cnt := c.parents(x); cnt > 0 {
			prefOf[x] = pref
		} else {
			prefOf[x] = -1
		}
	}
	blockedNonPref := func(m int, v string) bool {
		if c.B0[m].HasNeg(v) {
			return true
		}
		if p := prefOf[m]; p >= 0 && r.type1[p] && r.negSet[p].HasNeg(v) {
			return true
		}
		return false
	}

	closed := make([]bool, nu)
	nClosed := 0
	closeNode := func(x int) { closed[x] = true; nClosed++ }

	// (I) Type-1 nodes are fully determined; Type-2 nodes with an explicit
	// positive always hold it (B0 comes first in the preferred union).
	for x := 0; x < nu; x++ {
		if r.type1[x] {
			closeNode(x)
			continue
		}
		if v, ok := c.B0[x].Pos(); ok {
			r.states[x][State{Kind: StatePos, V: v}] = true
			closeNode(x)
		}
	}

	// applyVia computes x's state when a parent state s arrives via the
	// preferred edge (viaPref) or via the non-preferred edge with a Type-1
	// preferred side.
	applyVia := func(x int, s State, viaPref bool) State {
		if s.Kind == StateBot {
			return State{Kind: StateBot}
		}
		// s is StatePos (Type-2 parents never carry StateNeg).
		if c.B0[x].HasNeg(s.V) {
			return State{Kind: StateBot}
		}
		if !viaPref && blockedNonPref(x, s.V) {
			return State{Kind: StateBot}
		}
		return State{Kind: StatePos, V: s.V}
	}

	// (M) Main loop.
	for nClosed < nu {
		// (S1) Close nodes whose state is determined by one closed parent:
		// either the preferred parent is Type 2 and closed (its maximal
		// states decide), or the preferred parent is Type 1 (fixed
		// negatives) and the non-preferred parent is closed.
		progressed := false
		for x := 0; x < nu; x++ {
			if closed[x] {
				continue
			}
			pref, nonPref, cnt := c.parents(x)
			switch {
			case cnt >= 1 && !r.type1[pref] && closed[pref]:
				for s := range r.states[pref] {
					r.states[x][applyVia(x, s, true)] = true
				}
				closeNode(x)
				progressed = true
			case cnt == 2 && r.type1[pref] && closed[nonPref]:
				// nonPref is Type 2 here: a Type-1 non-preferred parent
				// with a Type-1 preferred parent would make x Type 1.
				for s := range r.states[nonPref] {
					r.states[x][applyVia(x, s, false)] = true
				}
				closeNode(x)
				progressed = true
			}
		}
		if progressed || nClosed == nu {
			continue
		}
		// (S2) Flood the minimal SCCs of the open nodes. Every minimal
		// component of this Tarjan pass is closed (see resolve.Resolve for
		// why this keeps many-cycle networks quasi-linear).
		open := func(v int) bool { return !closed[v] }
		comp, ncomp := g.SCC(open)
		if ncomp == 0 {
			break
		}
		hasIncoming := make([]bool, ncomp)
		memberList := make([][]int, ncomp)
		for v := 0; v < nu; v++ {
			if comp[v] < 0 {
				continue
			}
			memberList[comp[v]] = append(memberList[comp[v]], v)
			for _, m := range c.TN.In(v) {
				if cp := comp[m.Parent]; cp >= 0 && cp != comp[v] {
					hasIncoming[comp[v]] = true
				}
			}
		}
		for cc := 0; cc < ncomp; cc++ {
			if hasIncoming[cc] {
				continue
			}
			members := memberList[cc]
			inS := make(map[int]bool)
			for _, v := range members {
				inS[v] = true
			}
			sort.Ints(members)
			// Entry edges from closed Type-2 nodes (Type-1 entries
			// contribute only static blocking, already in blockedNonPref).
			var entries []entryEdge
			floodVals := map[string]bool{}
			anyBotEntry := false
			for _, x := range members {
				for _, m := range c.TN.In(x) {
					z := m.Parent
					if !closed[z] || r.type1[z] {
						continue
					}
					entries = append(entries, entryEdge{z, x})
					for s := range r.states[z] {
						switch s.Kind {
						case StatePos:
							floodVals[s.V] = true
						case StateBot:
							anyBotEntry = true
						}
					}
				}
			}
			vals := make([]string, 0, len(floodVals))
			for v := range floodVals {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				f := floodRegion(c, r, members, inS, entries, prefOf, blockedNonPref, v)
				for _, m := range members {
					if f[m] {
						r.states[m][State{Kind: StatePos, V: v}] = true
					} else {
						r.states[m][State{Kind: StateBot}] = true
					}
				}
			}
			// All-⊥ assignment: valid when every negative belief that ⊥
			// contains can be founded from the component's surroundings: the
			// union of entering states, Type-1 preferred parents, and
			// members' own explicit negatives. A ⊥ entry founds everything.
			if anyBotEntry || allBotFounded(c, r, members, entries, prefOf) {
				for _, m := range members {
					r.states[m][State{Kind: StateBot}] = true
				}
			}
			for _, m := range members {
				closeNode(m)
			}
		}
	}
	return r
}

// entryEdge is an edge from a closed Type-2 node z into component member x.
type entryEdge struct{ z, x int }

// floodRegion computes the maximal set F of members that can hold the
// positive state v+ simultaneously in a stable solution fed by the entry
// nodes. Membership must satisfy the preferred-union equations (a member
// follows its "designated" in-component parent: the preferred parent when
// it is in the component, otherwise its in-component non-preferred parent)
// and every member must have a lineage for v+ from an entry carrying v.
func floodRegion(c *Network, r *Result, members []int, inS map[int]bool,
	entries []entryEdge, prefOf []int,
	blockedNonPref func(int, string) bool, v string) map[int]bool {

	f := make(map[int]bool, len(members))
	// Start from everything that passes its local blocking test.
	for _, m := range members {
		pref := prefOf[m]
		if pref >= 0 && inS[pref] {
			// v arrives via the preferred edge: only B0(m) can block.
			if !c.B0[m].HasNeg(v) {
				f[m] = true
			}
		} else {
			// v arrives via the non-preferred in-component edge (or an
			// entry edge): the Type-1 preferred side blocks too.
			if !blockedNonPref(m, v) {
				f[m] = true
			}
		}
	}
	// Entry points carrying v.
	entryPts := make(map[int]bool)
	for _, e := range entries {
		if r.states[e.z][State{Kind: StatePos, V: v}] {
			entryPts[e.x] = true
		}
	}
	for {
		changed := false
		// Greatest fixpoint of designated support: a member's designated
		// in-component parent must also hold v+.
		for _, m := range members {
			if !f[m] {
				continue
			}
			desig := -1
			if p := prefOf[m]; p >= 0 && inS[p] {
				desig = p
			} else {
				// Find the in-component parent (non-preferred).
				for _, mm := range c.TN.In(m) {
					if inS[mm.Parent] {
						desig = mm.Parent
						break
					}
				}
			}
			if desig >= 0 && !f[desig] {
				delete(f, m)
				changed = true
			}
		}
		// Foundedness: every member of F must be reachable from an entry
		// point through F (any edge type carries the belief's lineage).
		reach := make(map[int]bool)
		var queue []int
		for x := range entryPts {
			if f[x] {
				reach[x] = true
				queue = append(queue, x)
			}
		}
		for len(queue) > 0 {
			z := queue[0]
			queue = queue[1:]
			for _, m := range members {
				if reach[m] || !f[m] {
					continue
				}
				for _, mm := range c.TN.In(m) {
					if mm.Parent == z {
						reach[m] = true
						queue = append(queue, m)
						break
					}
				}
			}
		}
		for _, m := range members {
			if f[m] && !reach[m] {
				delete(f, m)
				changed = true
			}
		}
		if !changed {
			return f
		}
	}
}

// allBotFounded checks whether the all-⊥ assignment of the component is
// foundable: for every value in the domain (and for the open-ended rest of
// the universe), some surrounding source supplies the corresponding
// negative belief.
func allBotFounded(c *Network, r *Result, members []int,
	entries []entryEdge, prefOf []int) bool {
	if len(entries) == 0 && !anyType1Feed(c, r, members, prefOf) {
		return false
	}
	domain := c.Domain()
	// covered(v) = some source supplies v-.
	covered := func(v string) bool {
		for _, e := range entries {
			for s := range r.states[e.z] {
				switch s.Kind {
				case StateBot:
					return true
				case StatePos:
					if s.V != v {
						return true // {u+} ∪ (⊥−{u−}) contains v− for v≠u
					}
				}
			}
		}
		for _, m := range members {
			if c.B0[m].HasNeg(v) {
				return true
			}
			if p := prefOf[m]; p >= 0 && r.type1[p] && r.negSet[p].HasNeg(v) {
				return true
			}
			for _, mm := range c.TN.In(m) {
				if r.type1[mm.Parent] && r.negSet[mm.Parent].HasNeg(v) {
					return true
				}
			}
		}
		return false
	}
	for _, v := range domain {
		if !covered(v) {
			return false
		}
	}
	// The "omega" negative (values outside the domain): only maximal sets
	// supply it.
	for _, e := range entries {
		if len(r.states[e.z]) > 0 {
			return true // any Type-2 state is maximal and supplies omega
		}
	}
	return false
}

func anyType1Feed(c *Network, r *Result, members []int, prefOf []int) bool {
	for _, m := range members {
		for _, mm := range c.TN.In(m) {
			if r.type1[mm.Parent] {
				return true
			}
		}
	}
	return false
}

// Type1 reports whether x holds a fixed negative-only belief in every
// stable solution, and returns that belief.
func (r *Result) Type1(x int) (belief.Set, bool) {
	if r.type1[x] {
		return r.negSet[x], true
	}
	return belief.Set{}, false
}

// States returns the possible states of x (for Type-1 nodes, the single
// StateNeg state).
func (r *Result) States(x int) []State {
	out := make([]State, 0, len(r.states[x]))
	for s := range r.states[x] {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].V < out[j].V
	})
	return out
}

// PossiblePositives returns the positive values x can hold in some stable
// solution.
func (r *Result) PossiblePositives(x int) []string {
	var out []string
	for s := range r.states[x] {
		if s.Kind == StatePos {
			out = append(out, s.V)
		}
	}
	sort.Strings(out)
	return out
}

// CertainPositive returns the positive value x holds in every stable
// solution, or "" if none.
func (r *Result) CertainPositive(x int) string {
	if len(r.states[x]) != 1 {
		return ""
	}
	for s := range r.states[x] {
		if s.Kind == StatePos {
			return s.V
		}
	}
	return ""
}

// HasBottom reports whether ⊥ is a possible belief of x.
func (r *Result) HasBottom(x int) bool {
	return r.states[x][State{Kind: StateBot}]
}

// PossibleBeliefSets decodes the states into concrete belief sets
// (the Figure 18 representation).
func (r *Result) PossibleBeliefSets(x int) []belief.Set {
	var out []belief.Set
	for _, s := range r.States(x) {
		switch s.Kind {
		case StateNeg:
			out = append(out, r.negSet[x])
		case StatePos:
			out = append(out, belief.SkepticPositive(s.V))
		case StateBot:
			out = append(out, belief.Bottom())
		}
	}
	return out
}
