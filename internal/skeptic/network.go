// Package skeptic implements conflict resolution with constraints
// (Section 3 of the paper): binary trust networks whose explicit beliefs
// may be positive values or sets of negative beliefs (constraints), the
// stable solutions of Definition 3.3 for the three paradigms, the exact
// (exponential) solver used both as the test oracle and as the only exact
// option for the NP-hard Agnostic and Eclectic paradigms (Theorem 3.4),
// the PTIME solver for acyclic networks (Proposition 3.6), and the
// quadratic Skeptic Resolution Algorithm (Algorithm 2, Theorem 3.5).
package skeptic

import (
	"fmt"

	"trustmap/internal/belief"
	"trustmap/internal/tn"
)

// Network is a binary trust network with constraints: the graph structure
// of a tn.Network plus per-node explicit belief sets B0 that are either a
// single positive belief, a set of negative beliefs, or empty
// (Definition 3.3). Ties between priorities of a node's parents are
// disallowed, as in Section 3.1.
type Network struct {
	TN *tn.Network
	B0 []belief.Set
}

// New returns an empty constraint network.
func New() *Network {
	return &Network{TN: tn.New()}
}

// FromTN builds a constraint network from a Section-2 trust network: every
// explicit value becomes a positive belief. The structure is shared.
func FromTN(n *tn.Network) *Network {
	c := &Network{TN: n, B0: make([]belief.Set, n.NumUsers())}
	for x := 0; x < n.NumUsers(); x++ {
		if v := n.Explicit(x); v != tn.NoValue {
			c.B0[x] = belief.Positive(string(v))
		}
	}
	return c
}

// AddUser adds a user and returns its ID.
func (c *Network) AddUser(name string) int {
	id := c.TN.AddUser(name)
	for len(c.B0) <= id {
		c.B0 = append(c.B0, belief.Empty())
	}
	return id
}

// AddMapping adds the trust mapping (parent, priority, child).
func (c *Network) AddMapping(parent, child, priority int) {
	c.TN.AddMapping(parent, child, priority)
}

// SetBelief sets B0(x) = b. b must be a positive singleton, a finite set of
// negatives, or empty.
func (c *Network) SetBelief(x int, b belief.Set) {
	if _, hasPos := b.Pos(); hasPos && b.CoNegative() {
		panic("skeptic: B0 must be a plain positive belief or negatives")
	}
	c.B0[x] = b
}

// NumUsers returns |U|.
func (c *Network) NumUsers() int { return c.TN.NumUsers() }

// Validate checks the Section-3 restrictions: binary in-degree, distinct
// priorities per node (no ties), and well-formed B0 sets.
func (c *Network) Validate() error {
	if err := c.TN.Validate(); err != nil {
		return err
	}
	for x := 0; x < c.NumUsers(); x++ {
		in := c.TN.In(x)
		if len(in) > 2 {
			return fmt.Errorf("skeptic: node %q has %d parents; networks must be binary", c.TN.Name(x), len(in))
		}
		if len(in) == 2 && in[0].Priority == in[1].Priority {
			return fmt.Errorf("skeptic: node %q has tied priorities; ties are disallowed with constraints", c.TN.Name(x))
		}
		b := c.B0[x]
		if v, ok := b.Pos(); ok {
			if b.CoNegative() || b.HasNeg(v) {
				return fmt.Errorf("skeptic: B0(%q) mixes a positive with negatives", c.TN.Name(x))
			}
			// A positive B0 must be exactly {v+}.
			if len(b.FiniteNegs()) > 0 {
				return fmt.Errorf("skeptic: B0(%q) mixes a positive with negatives", c.TN.Name(x))
			}
		}
		if b.CoNegative() {
			return fmt.Errorf("skeptic: B0(%q) must be finitely representable negatives", c.TN.Name(x))
		}
	}
	return nil
}

// Domain returns the sorted distinct values mentioned in any B0, positive
// or negative.
func (c *Network) Domain() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, b := range c.B0 {
		if v, ok := b.Pos(); ok {
			add(v)
		}
		if !b.CoNegative() {
			for _, v := range b.FiniteNegs() {
				add(v)
			}
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// parents returns (preferred, nonPreferred, count): count is 0, 1 or 2;
// with count 1, preferred is the single parent.
func (c *Network) parents(x int) (pref, nonPref int, count int) {
	in := c.TN.In(x) // priority descending
	switch len(in) {
	case 0:
		return -1, -1, 0
	case 1:
		return in[0].Parent, -1, 1
	default:
		return in[0].Parent, in[1].Parent, 2
	}
}

// Solution assigns a belief set to every user.
type Solution []belief.Set

// applyEquation computes the right-hand side of Definition 3.3 (1) for
// node x given the parents' belief sets in sol.
func (c *Network) applyEquation(p belief.Paradigm, sol Solution, x int) belief.Set {
	pref, nonPref, count := c.parents(x)
	switch count {
	case 0:
		return belief.Norm(p, c.B0[x])
	case 1:
		return belief.PreferredUnionP(p, c.B0[x], sol[pref])
	default:
		inner := belief.PreferredUnionP(p, sol[pref], sol[nonPref])
		return belief.PreferredUnionP(p, c.B0[x], inner)
	}
}
