package skeptic

import "trustmap/internal/belief"

// This file implements the exact enumerator of stable solutions with
// constraints (Definition 3.3), for all three paradigms. It is exponential
// and serves two purposes: it is the ground-truth oracle for Algorithm 2,
// and it is the exact solver for the Agnostic and Eclectic paradigms,
// whose possible/certain problems are NP-hard / coNP-hard (Theorem 3.4) so
// no polynomial algorithm is expected to exist.

// EnumerateStableSolutions returns all stable solutions of the network
// under paradigm p (limit > 0 caps the count; 0 = all).
func EnumerateStableSolutions(c *Network, p belief.Paradigm, limit int) []Solution {
	nu := c.NumUsers()
	cands := candidateSets(c, p)
	// For early pruning: node x's equation can be checked as soon as x and
	// all its parents are assigned.
	checkAt := make([][]int, nu) // step index -> nodes to verify
	for x := 0; x < nu; x++ {
		last := x
		for _, m := range c.TN.In(x) {
			if m.Parent > last {
				last = m.Parent
			}
		}
		checkAt[last] = append(checkAt[last], x)
	}
	normB0 := make([]belief.Set, nu)
	for x := 0; x < nu; x++ {
		normB0[x] = belief.Norm(p, c.B0[x])
	}
	cur := make(Solution, nu)
	var out []Solution
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == nu {
			if founded(c, cur, normB0) {
				cp := make(Solution, nu)
				copy(cp, cur)
				out = append(out, cp)
				if limit > 0 && len(out) >= limit {
					return false
				}
			}
			return true
		}
		for _, b := range cands {
			cur[i] = b
			ok := true
			for _, x := range checkAt[i] {
				if !c.applyEquation(p, cur, x).Equal(cur[x]) {
					ok = false
					break
				}
			}
			if ok && !rec(i+1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// candidateSets enumerates the belief sets a node can possibly hold under
// paradigm p, given the network's value domain D. All solutions are in the
// paradigm's normal form (the equations normalize), and all contents are
// drawn from D (negatives can also be co-finite under Skeptic):
//
//	Agnostic: {}, {v+}, nonempty finite negative subsets of D.
//	Eclectic: {}, finite negative subsets, {v+} ∪ finite negatives.
//	Skeptic:  {}, finite negative subsets, {v+} ∪ (⊥−{v−}), ⊥.
func candidateSets(c *Network, p belief.Paradigm) []belief.Set {
	d := c.Domain()
	var out []belief.Set
	out = append(out, belief.Empty())
	// All nonempty finite negative subsets of D.
	var negSubsets [][]string
	n := len(d)
	for mask := 1; mask < (1 << n); mask++ {
		var sub []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, d[i])
			}
		}
		negSubsets = append(negSubsets, sub)
	}
	for _, sub := range negSubsets {
		out = append(out, belief.Negatives(sub...))
	}
	switch p {
	case belief.Agnostic:
		for _, v := range d {
			out = append(out, belief.Positive(v))
		}
	case belief.Eclectic:
		for _, v := range d {
			out = append(out, belief.Positive(v))
			for _, sub := range negSubsets {
				ok := true
				for _, w := range sub {
					if w == v {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, belief.PreferredUnion(belief.Positive(v), belief.Negatives(sub...)))
				}
			}
		}
	case belief.Skeptic:
		for _, v := range d {
			out = append(out, belief.SkepticPositive(v))
		}
		out = append(out, belief.Bottom())
	}
	return out
}

// founded checks condition (2) of Definition 3.3: every belief b in B(x)
// has a path x0 -> ... -> x with b in Norm(B0(x0)) and b in B(xi) along the
// whole path. Beliefs range over v+ and v- for v in the domain, plus the
// "omega" negative standing for all values outside the domain (present
// exactly in co-finite sets).
func founded(c *Network, sol Solution, normB0 []belief.Set) bool {
	nu := c.NumUsers()
	d := c.Domain()
	type check struct {
		inSet func(belief.Set) bool
	}
	var checks []check
	for _, v := range d {
		v := v
		checks = append(checks, check{func(s belief.Set) bool {
			p, ok := s.Pos()
			return ok && p == v
		}})
		checks = append(checks, check{func(s belief.Set) bool { return s.HasNeg(v) }})
	}
	// The omega negative: in the set iff the negative part is co-finite.
	checks = append(checks, check{func(s belief.Set) bool { return s.CoNegative() }})

	for _, ch := range checks {
		// Nodes currently holding the belief.
		holds := make([]bool, nu)
		anyHolds := false
		for x := 0; x < nu; x++ {
			if ch.inSet(sol[x]) {
				holds[x] = true
				anyHolds = true
			}
		}
		if !anyHolds {
			continue
		}
		// BFS from source nodes (belief in Norm(B0)) through holding nodes.
		reach := make([]bool, nu)
		var queue []int
		for x := 0; x < nu; x++ {
			if holds[x] && ch.inSet(normB0[x]) {
				reach[x] = true
				queue = append(queue, x)
			}
		}
		for len(queue) > 0 {
			z := queue[0]
			queue = queue[1:]
			for x := 0; x < nu; x++ {
				if reach[x] || !holds[x] {
					continue
				}
				for _, m := range c.TN.In(x) {
					if m.Parent == z {
						reach[x] = true
						queue = append(queue, x)
						break
					}
				}
			}
		}
		for x := 0; x < nu; x++ {
			if holds[x] && !reach[x] {
				return false
			}
		}
	}
	return true
}

// PossiblePositives computes, from enumerated solutions, the possible
// positive beliefs per node (Section 3.1: "compute the possible and the
// certain positive beliefs").
func PossiblePositives(c *Network, sols []Solution) []map[string]bool {
	out := make([]map[string]bool, c.NumUsers())
	for x := range out {
		out[x] = make(map[string]bool)
	}
	for _, s := range sols {
		for x, b := range s {
			if v, ok := b.Pos(); ok {
				out[x][v] = true
			}
		}
	}
	return out
}

// CertainPositives computes the certain positive belief per node ("" if
// none): v+ must belong to B(x) in every stable solution.
func CertainPositives(c *Network, sols []Solution) []string {
	nu := c.NumUsers()
	out := make([]string, nu)
	if len(sols) == 0 {
		return out
	}
	for x := 0; x < nu; x++ {
		v, ok := sols[0][x].Pos()
		if !ok {
			continue
		}
		certain := true
		for _, s := range sols[1:] {
			if w, ok := s[x].Pos(); !ok || w != v {
				certain = false
				break
			}
		}
		if certain {
			out[x] = v
		}
	}
	return out
}
