package skeptic

import (
	"math/rand"
	"testing"

	"trustmap/internal/belief"
)

// TestSkepticAlgorithmThreeValues widens the oracle comparison to a
// three-value domain (smaller networks keep the enumeration tractable).
func TestSkepticAlgorithmThreeValues(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	values := []string{"v", "w", "u"}
	for i := 0; i < 60; i++ {
		c := randomConstraintNet(rng, 5, values)
		sols := EnumerateStableSolutions(c, belief.Skeptic, 0)
		if len(sols) == 0 {
			t.Fatalf("net %d: no stable solution", i)
		}
		wantPoss := PossiblePositives(c, sols)
		wantCert := CertainPositives(c, sols)
		r := ResolveSkeptic(c)
		for x := 0; x < c.NumUsers(); x++ {
			got := r.PossiblePositives(x)
			if len(got) != len(wantPoss[x]) {
				t.Fatalf("net %d poss+(%s): got %v want %v", i, c.TN.Name(x), got, wantPoss[x])
			}
			for _, v := range got {
				if !wantPoss[x][v] {
					t.Fatalf("net %d poss+(%s): spurious %q", i, c.TN.Name(x), v)
				}
			}
			if got := r.CertainPositive(x); got != wantCert[x] {
				t.Fatalf("net %d cert+(%s): got %q want %q", i, c.TN.Name(x), got, wantCert[x])
			}
		}
	}
}

// TestAllConstraintNetwork: a network with only negative beliefs has a
// unique stable solution where every node holds its negative closure.
func TestAllConstraintNetwork(t *testing.T) {
	c := New()
	a := c.AddUser("a")
	b := c.AddUser("b")
	x := c.AddUser("x")
	c.AddMapping(a, x, 2)
	c.AddMapping(b, x, 1)
	c.SetBelief(a, belief.Negatives("v"))
	c.SetBelief(b, belief.Negatives("w"))
	sols := EnumerateStableSolutions(c, belief.Skeptic, 0)
	if len(sols) != 1 {
		t.Fatalf("want unique solution, got %d", len(sols))
	}
	want := belief.Negatives("v", "w")
	if !sols[0][x].Equal(want) {
		t.Errorf("x = %v want %v", sols[0][x], want)
	}
	r := ResolveSkeptic(c)
	got, isT1 := r.Type1(x)
	if !isT1 || !got.Equal(want) {
		t.Errorf("algorithm: x = %v (type1=%v) want %v", got, isT1, want)
	}
	if len(r.PossiblePositives(x)) != 0 || r.HasBottom(x) {
		t.Error("no positives or bottom expected in a constraint-only network")
	}
}

// TestConstraintBelowPositive: negatives arriving from a low-priority
// parent never block the preferred positive.
func TestConstraintBelowPositive(t *testing.T) {
	c := New()
	pos := c.AddUser("pos")
	neg := c.AddUser("neg")
	x := c.AddUser("x")
	c.AddMapping(pos, x, 2) // preferred: a+
	c.AddMapping(neg, x, 1) // non-preferred: a-
	c.SetBelief(pos, belief.Positive("a"))
	c.SetBelief(neg, belief.Negatives("a"))
	r := ResolveSkeptic(c)
	if got := r.CertainPositive(x); got != "a" {
		t.Errorf("x = %q want a (preferred positive wins over later constraint)", got)
	}
	// Reversed priorities: the constraint now dominates and blocks a+.
	c2 := New()
	pos2 := c2.AddUser("pos")
	neg2 := c2.AddUser("neg")
	x2 := c2.AddUser("x")
	c2.AddMapping(pos2, x2, 1)
	c2.AddMapping(neg2, x2, 2)
	c2.SetBelief(pos2, belief.Positive("a"))
	c2.SetBelief(neg2, belief.Negatives("a"))
	r2 := ResolveSkeptic(c2)
	if len(r2.PossiblePositives(x2)) != 0 || !r2.HasBottom(x2) {
		t.Errorf("x should be ⊥, states %v", r2.States(x2))
	}
	// Oracle agrees.
	sols := EnumerateStableSolutions(c2, belief.Skeptic, 0)
	if len(sols) != 1 || !sols[0][x2].IsBottom() {
		t.Errorf("oracle: %v", sols)
	}
}

// TestDeepPreferredNegChain: negatives travel down long preferred chains
// and keep blocking (the prefNeg preprocessing of Algorithm 2).
func TestDeepPreferredNegChain(t *testing.T) {
	c := New()
	src := c.AddUser("src")
	c.SetBelief(src, belief.Negatives("v"))
	prev := src
	var chain []int
	for i := 0; i < 6; i++ {
		x := c.AddUser(string(rune('a' + i)))
		c.AddMapping(prev, x, 2)
		chain = append(chain, x)
		prev = x
	}
	feeder := c.AddUser("feeder")
	c.SetBelief(feeder, belief.Positive("v"))
	c.AddMapping(feeder, chain[len(chain)-1], 1)
	r := ResolveSkeptic(c)
	last := chain[len(chain)-1]
	if len(r.PossiblePositives(last)) != 0 || !r.HasBottom(last) {
		t.Errorf("v must be blocked by the chain constraint: states %v", r.States(last))
	}
	sols := EnumerateStableSolutions(c, belief.Skeptic, 0)
	if len(sols) != 1 || !sols[0][last].IsBottom() {
		t.Errorf("oracle disagrees: %v", sols[0][last])
	}
}

// TestStatesAccessors exercises the Result accessors.
func TestStatesAccessors(t *testing.T) {
	c := New()
	a := c.AddUser("a")
	x := c.AddUser("x")
	c.AddMapping(a, x, 1)
	c.SetBelief(a, belief.Positive("v"))
	r := ResolveSkeptic(c)
	states := r.States(x)
	if len(states) != 1 || states[0].Kind != StatePos || states[0].V != "v" {
		t.Errorf("states = %v", states)
	}
	sets := r.PossibleBeliefSets(x)
	if len(sets) != 1 || !sets[0].Equal(belief.SkepticPositive("v")) {
		t.Errorf("belief sets = %v", sets)
	}
	if _, isT1 := r.Type1(x); isT1 {
		t.Error("x is Type 2")
	}
}
