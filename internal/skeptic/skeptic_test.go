package skeptic

import (
	"math/rand"
	"testing"

	"trustmap/internal/belief"
	"trustmap/internal/tn"
)

// buildFig6 builds the binary trust network of Figure 6a: a chain
// x9 <- x7 <- x5 <- x3 with preferred parents x7, x5, x4, x2 and
// non-preferred side inputs x8, x6, x3's chain, x1.
func buildFig6() (*Network, map[string]int) {
	c := New()
	ids := map[string]int{}
	for _, name := range []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9"} {
		ids[name] = c.AddUser(name)
	}
	c.SetBelief(ids["x1"], belief.Negatives("b"))
	c.SetBelief(ids["x2"], belief.Positive("a"))
	c.SetBelief(ids["x4"], belief.Negatives("a"))
	c.SetBelief(ids["x6"], belief.Positive("b"))
	c.SetBelief(ids["x8"], belief.Positive("c"))
	// x3: preferred x2, non-preferred x1.
	c.AddMapping(ids["x2"], ids["x3"], 2)
	c.AddMapping(ids["x1"], ids["x3"], 1)
	// x5: preferred x4, non-preferred x3.
	c.AddMapping(ids["x4"], ids["x5"], 2)
	c.AddMapping(ids["x3"], ids["x5"], 1)
	// x7: preferred x5, non-preferred x6.
	c.AddMapping(ids["x5"], ids["x7"], 2)
	c.AddMapping(ids["x6"], ids["x7"], 1)
	// x9: preferred x7, non-preferred x8.
	c.AddMapping(ids["x7"], ids["x9"], 2)
	c.AddMapping(ids["x8"], ids["x9"], 1)
	return c, ids
}

// TestFig6Paradigms checks the three solutions of Figures 6b-6d.
func TestFig6Paradigms(t *testing.T) {
	c, ids := buildFig6()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Agnostic (Figure 6b).
	sol, err := SolveAcyclic(c, belief.Agnostic)
	if err != nil {
		t.Fatal(err)
	}
	wantA := map[string]belief.Set{
		"x3": belief.Positive("a"),
		"x5": belief.Negatives("a"),
		"x7": belief.Positive("b"),
		"x9": belief.Positive("b"),
	}
	for name, want := range wantA {
		if got := sol[ids[name]]; !got.Equal(want) {
			t.Errorf("agnostic %s = %v want %v", name, got, want)
		}
	}
	// Eclectic (Figure 6c).
	sol, err = SolveAcyclic(c, belief.Eclectic)
	if err != nil {
		t.Fatal(err)
	}
	wantE := map[string]belief.Set{
		"x3": belief.PreferredUnion(belief.Positive("a"), belief.Negatives("b")),
		"x5": belief.Negatives("a", "b"),
		"x7": belief.Negatives("a", "b"),
		"x9": belief.PreferredUnion(belief.Positive("c"), belief.Negatives("a", "b")),
	}
	for name, want := range wantE {
		if got := sol[ids[name]]; !got.Equal(want) {
			t.Errorf("eclectic %s = %v want %v", name, got, want)
		}
	}
	// Skeptic (Figure 6d).
	sol, err = SolveAcyclic(c, belief.Skeptic)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol[ids["x3"]]; !got.Equal(belief.SkepticPositive("a")) {
		t.Errorf("skeptic x3 = %v want skeptic a+", got)
	}
	for _, name := range []string{"x5", "x7", "x9"} {
		if got := sol[ids[name]]; !got.IsBottom() {
			t.Errorf("skeptic %s = %v want ⊥", name, got)
		}
	}
}

// TestFig6SkepticAlgorithm runs Algorithm 2 on Figure 6a.
func TestFig6SkepticAlgorithm(t *testing.T) {
	c, ids := buildFig6()
	r := ResolveSkeptic(c)
	if got := r.CertainPositive(ids["x3"]); got != "a" {
		t.Errorf("cert+(x3) = %q want a", got)
	}
	for _, name := range []string{"x5", "x7", "x9"} {
		x := ids[name]
		if len(r.PossiblePositives(x)) != 0 || !r.HasBottom(x) {
			t.Errorf("%s: want only ⊥, got states %v", name, r.States(x))
		}
	}
	if s, ok := r.Type1(ids["x1"]); !ok || !s.Equal(belief.Negatives("b")) {
		t.Errorf("x1 must be Type 1 {b-}, got %v ok=%v", s, ok)
	}
	if s, ok := r.Type1(ids["x4"]); !ok || !s.Equal(belief.Negatives("a")) {
		t.Errorf("x4 must be Type 1 {a-}, got %v", s)
	}
}

// TestEnumerateFig6 cross-checks the oracle against the acyclic solver:
// acyclic networks have exactly one stable solution per paradigm
// (Proposition 3.6).
func TestEnumerateFig6(t *testing.T) {
	c, _ := buildFig6()
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic, belief.Skeptic} {
		sols := EnumerateStableSolutions(c, p, 0)
		if len(sols) != 1 {
			t.Fatalf("%v: want 1 stable solution, got %d", p, len(sols))
		}
		want, err := SolveAcyclic(c, p)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < c.NumUsers(); x++ {
			if !sols[0][x].Equal(want[x]) {
				t.Errorf("%v: node %s: enum %v vs acyclic %v", p, c.TN.Name(x), sols[0][x], want[x])
			}
		}
	}
}

func TestValidate(t *testing.T) {
	c := New()
	a := c.AddUser("a")
	b := c.AddUser("b")
	x := c.AddUser("x")
	c.AddMapping(a, x, 1)
	c.AddMapping(b, x, 1) // tie
	if err := c.Validate(); err == nil {
		t.Error("ties must be rejected")
	}
	c2 := New()
	a2 := c2.AddUser("a")
	b2 := c2.AddUser("b")
	x2 := c2.AddUser("x")
	y2 := c2.AddUser("y")
	c2.AddMapping(a2, x2, 1)
	c2.AddMapping(b2, x2, 2)
	c2.AddMapping(y2, x2, 3)
	if err := c2.Validate(); err == nil {
		t.Error("three parents must be rejected")
	}
}

func TestFromTN(t *testing.T) {
	n := tn.New()
	a := n.AddUser("a")
	b := n.AddUser("b")
	n.AddMapping(a, b, 1)
	n.SetExplicit(a, "v")
	c := FromTN(n)
	if v, ok := c.B0[a].Pos(); !ok || v != "v" {
		t.Errorf("FromTN lost explicit belief: %v", c.B0[a])
	}
	if !c.B0[b].IsEmpty() {
		t.Errorf("FromTN invented belief: %v", c.B0[b])
	}
}

// randomConstraintNet builds a random binary, tie-free constraint network.
func randomConstraintNet(rng *rand.Rand, maxUsers int, values []string) *Network {
	c := New()
	nu := 2 + rng.Intn(maxUsers-1)
	for i := 0; i < nu; i++ {
		c.AddUser("u" + string(rune('A'+i)))
	}
	for x := 0; x < nu; x++ {
		k := rng.Intn(3)
		perm := rng.Perm(nu)
		added := 0
		prio := 1
		for _, z := range perm {
			if added >= k || z == x {
				continue
			}
			c.AddMapping(z, x, prio)
			prio++
			added++
		}
	}
	for x := 0; x < nu; x++ {
		switch rng.Intn(4) {
		case 0:
			c.SetBelief(x, belief.Positive(values[rng.Intn(len(values))]))
		case 1:
			var negs []string
			for _, v := range values {
				if rng.Float64() < 0.5 {
					negs = append(negs, v)
				}
			}
			if len(negs) > 0 {
				c.SetBelief(x, belief.Negatives(negs...))
			}
		}
	}
	// Ensure at least one positive somewhere so floods exist.
	hasPos := false
	for _, b := range c.B0 {
		if _, ok := b.Pos(); ok {
			hasPos = true
		}
	}
	if !hasPos {
		c.SetBelief(rng.Intn(nu), belief.Positive(values[rng.Intn(len(values))]))
	}
	return c
}

// TestSkepticAlgorithmMatchesOracle is the Theorem 3.5 correctness check:
// Algorithm 2's possible/certain positives and possible ⊥ must match the
// Definition 3.3 enumeration on random (cyclic) networks.
func TestSkepticAlgorithmMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	values := []string{"v", "w"}
	for i := 0; i < 200; i++ {
		c := randomConstraintNet(rng, 6, values)
		sols := EnumerateStableSolutions(c, belief.Skeptic, 0)
		if len(sols) == 0 {
			t.Fatalf("net %d: no stable solution found by oracle", i)
		}
		wantPoss := PossiblePositives(c, sols)
		wantCert := CertainPositives(c, sols)
		wantBot := make([]bool, c.NumUsers())
		for _, s := range sols {
			for x, b := range s {
				if b.IsBottom() {
					wantBot[x] = true
				}
			}
		}
		r := ResolveSkeptic(c)
		for x := 0; x < c.NumUsers(); x++ {
			got := r.PossiblePositives(x)
			if len(got) != len(wantPoss[x]) {
				t.Fatalf("net %d poss+(%s): got %v want %v", i, c.TN.Name(x), got, wantPoss[x])
			}
			for _, v := range got {
				if !wantPoss[x][v] {
					t.Fatalf("net %d poss+(%s): spurious %q (want %v)", i, c.TN.Name(x), v, wantPoss[x])
				}
			}
			if got := r.CertainPositive(x); got != wantCert[x] {
				t.Fatalf("net %d cert+(%s): got %q want %q", i, c.TN.Name(x), got, wantCert[x])
			}
			if got := r.HasBottom(x); got != wantBot[x] {
				t.Fatalf("net %d bottom(%s): got %v want %v (states %v)", i, c.TN.Name(x), got, wantBot[x], r.States(x))
			}
		}
	}
}

// TestType1MatchesOracle: Type-1 nodes hold the same fixed negative set in
// every stable solution.
func TestType1MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	values := []string{"v", "w"}
	for i := 0; i < 120; i++ {
		c := randomConstraintNet(rng, 6, values)
		sols := EnumerateStableSolutions(c, belief.Skeptic, 0)
		r := ResolveSkeptic(c)
		for x := 0; x < c.NumUsers(); x++ {
			fixed, isT1 := r.Type1(x)
			if !isT1 {
				continue
			}
			for _, s := range sols {
				if !s[x].Equal(fixed) {
					t.Fatalf("net %d: Type-1 node %s varies: %v vs %v", i, c.TN.Name(x), s[x], fixed)
				}
			}
		}
	}
}

// TestCollapseWithoutConstraints: with no negative beliefs, the possible
// and certain positive values under every paradigm equal the Section 2
// semantics (Section 3.3).
func TestCollapseWithoutConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	values := []tn.Value{"v", "w"}
	for i := 0; i < 80; i++ {
		n := tn.New()
		nu := 2 + rng.Intn(4)
		for j := 0; j < nu; j++ {
			n.AddUser("u" + string(rune('A'+j)))
		}
		for x := 0; x < nu; x++ {
			k := rng.Intn(3)
			perm := rng.Perm(nu)
			added := 0
			prio := 1
			for _, z := range perm {
				if added >= k || z == x {
					continue
				}
				n.AddMapping(z, x, prio)
				prio++
				added++
			}
		}
		n.SetExplicit(0, values[rng.Intn(2)])
		if nu > 1 && rng.Float64() < 0.6 {
			n.SetExplicit(1, values[rng.Intn(2)])
		}
		sols := tn.EnumerateStableSolutions(n, 0)
		wantPoss := tn.PossibleFromSolutions(n, sols)

		c := FromTN(n)
		for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic, belief.Skeptic} {
			csols := EnumerateStableSolutions(c, p, 0)
			gotPoss := PossiblePositives(c, csols)
			for x := 0; x < nu; x++ {
				if len(gotPoss[x]) != len(wantPoss[x]) {
					t.Fatalf("net %d %v poss+(%s): got %v want %v", i, p, n.Name(x), gotPoss[x], wantPoss[x])
				}
				for v := range gotPoss[x] {
					if !wantPoss[x][tn.Value(v)] {
						t.Fatalf("net %d %v poss+(%s): spurious %q", i, p, n.Name(x), v)
					}
				}
			}
		}
	}
}

// TestAcyclicUniqueSolution (Proposition 3.6): random acyclic networks have
// exactly one stable solution under each paradigm, equal to the
// topological evaluation.
func TestAcyclicUniqueSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	values := []string{"v", "w"}
	for i := 0; i < 80; i++ {
		c := New()
		nu := 2 + rng.Intn(4)
		for j := 0; j < nu; j++ {
			c.AddUser("u" + string(rune('A'+j)))
		}
		// Edges only from lower to higher index: acyclic by construction.
		for x := 1; x < nu; x++ {
			k := rng.Intn(3)
			prio := 1
			for z := 0; z < x && k > 0; z++ {
				if rng.Float64() < 0.5 {
					c.AddMapping(z, x, prio)
					prio++
					k--
				}
			}
		}
		for x := 0; x < nu; x++ {
			switch rng.Intn(3) {
			case 0:
				c.SetBelief(x, belief.Positive(values[rng.Intn(2)]))
			case 1:
				c.SetBelief(x, belief.Negatives(values[rng.Intn(2)]))
			}
		}
		for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic, belief.Skeptic} {
			sols := EnumerateStableSolutions(c, p, 0)
			if len(sols) != 1 {
				t.Fatalf("net %d %v: want 1 solution, got %d", i, p, len(sols))
			}
			want, err := SolveAcyclic(c, p)
			if err != nil {
				t.Fatal(err)
			}
			for x := 0; x < nu; x++ {
				if !sols[0][x].Equal(want[x]) {
					t.Fatalf("net %d %v node %d: %v vs %v", i, p, x, sols[0][x], want[x])
				}
			}
		}
	}
}

// TestSkepticOscillatorWithConstraint: an oscillator whose one branch is
// filtered by a constraint.
func TestSkepticOscillatorWithConstraint(t *testing.T) {
	c := New()
	x1 := c.AddUser("x1")
	x2 := c.AddUser("x2")
	x3 := c.AddUser("x3")
	x4 := c.AddUser("x4")
	c.AddMapping(x2, x1, 100)
	c.AddMapping(x3, x1, 50)
	c.AddMapping(x1, x2, 80)
	c.AddMapping(x4, x2, 40)
	c.SetBelief(x3, belief.Positive("v"))
	c.SetBelief(x4, belief.Positive("w"))
	// x1 rejects w: the w-flood turns x1 (and its dependents) to ⊥.
	c.SetBelief(x1, belief.Negatives("w"))
	sols := EnumerateStableSolutions(c, belief.Skeptic, 0)
	wantPoss := PossiblePositives(c, sols)
	r := ResolveSkeptic(c)
	for x := 0; x < c.NumUsers(); x++ {
		got := r.PossiblePositives(x)
		if len(got) != len(wantPoss[x]) {
			t.Fatalf("poss+(%s): got %v want %v", c.TN.Name(x), got, wantPoss[x])
		}
		for _, v := range got {
			if !wantPoss[x][v] {
				t.Fatalf("poss+(%s): spurious %q", c.TN.Name(x), v)
			}
		}
	}
}
