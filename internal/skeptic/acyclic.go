package skeptic

import (
	"errors"

	"trustmap/internal/belief"
)

// ErrCyclic is returned by SolveAcyclic on cyclic networks.
var ErrCyclic = errors.New("skeptic: network is cyclic")

// SolveAcyclic computes the unique stable solution of an acyclic binary
// trust network with constraints under any paradigm, in polynomial time, by
// applying the preferred-union equation of Definition 3.3 in topological
// order (Proposition 3.6).
func SolveAcyclic(c *Network, p belief.Paradigm) (Solution, error) {
	g := c.TN.Graph()
	order, ok := g.TopoOrder()
	if !ok {
		return nil, ErrCyclic
	}
	sol := make(Solution, c.NumUsers())
	for _, x := range order {
		sol[x] = c.applyEquation(p, sol, x)
	}
	return sol, nil
}
