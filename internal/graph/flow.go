package graph

// This file implements the network-flow machinery used by the
// possible-pairs extension (Proposition 2.13): checking whether two
// vertex-disjoint paths connect given sources to given targets inside a
// strongly connected component whose preferred edges have been collapsed.

// maxFlowUnit computes the max flow from s to t in a unit-capacity network
// built from g with node splitting (every node has capacity 1 except s and
// t), using Edmonds-Karp. It stops as soon as the flow reaches limit.
func maxFlowUnit(g *Digraph, s, t, limit int) int {
	// Node splitting: node v becomes v_in = 2v and v_out = 2v+1 with a
	// capacity-1 arc v_in -> v_out (infinite for s and t, modelled as
	// capacity = limit). Every original edge u->v becomes u_out -> v_in.
	n := g.n
	type arc struct {
		to, rev, cap int
	}
	adj := make([][]arc, 2*n)
	addArc := func(u, v, c int) {
		adj[u] = append(adj[u], arc{to: v, rev: len(adj[v]), cap: c})
		adj[v] = append(adj[v], arc{to: u, rev: len(adj[u]) - 1, cap: 0})
	}
	for v := 0; v < n; v++ {
		c := 1
		if v == s || v == t {
			c = limit
		}
		addArc(2*v, 2*v+1, c)
	}
	seen := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			k := [2]int{u, v}
			if seen[k] || u == v {
				continue
			}
			seen[k] = true
			addArc(2*u+1, 2*v, 1)
		}
	}
	src, dst := 2*s+1, 2*t
	flow := 0
	prevNode := make([]int, 2*n)
	prevArc := make([]int, 2*n)
	for flow < limit {
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[src] = src
		queue := []int{src}
		for len(queue) > 0 && prevNode[dst] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i, a := range adj[u] {
				if a.cap > 0 && prevNode[a.to] == -1 {
					prevNode[a.to] = u
					prevArc[a.to] = i
					queue = append(queue, a.to)
				}
			}
		}
		if prevNode[dst] == -1 {
			break
		}
		// Unit capacities: augment by 1.
		for v := dst; v != src; {
			u := prevNode[v]
			a := &adj[u][prevArc[v]]
			a.cap--
			adj[v][a.rev].cap++
			v = u
		}
		flow++
	}
	return flow
}

// TwoDisjointPathsUnpaired reports whether there exist two internally
// vertex-disjoint paths from {s1, s2} to {t1, t2} in some pairing, that is,
// either (s1->t1, s2->t2) or (s1->t2, s2->t1) with no shared vertex. This is
// a unit max-flow computation from a super-source over {s1,s2} to a
// super-sink over {t1,t2}. All four endpoints must be distinct.
func (g *Digraph) TwoDisjointPathsUnpaired(s1, s2, t1, t2 int) bool {
	n := g.n
	h := New(n + 2)
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			h.AddEdge(u, v)
		}
	}
	superS, superT := n, n+1
	h.AddEdge(superS, s1)
	h.AddEdge(superS, s2)
	h.AddEdge(t1, superT)
	h.AddEdge(t2, superT)
	return maxFlowUnit(h, superS, superT, 2) >= 2
}

// TwoDisjointPathsPaired reports whether there exist two vertex-disjoint
// paths, one from s1 to t1 and one from s2 to t2 (the paired version used
// by Proposition 2.13: route value v along s1->t1 and value w along
// s2->t2). The paired two-disjoint-paths problem is NP-hard on general
// digraphs (Fortune–Hopcroft–Wyllie), but the components it is invoked on
// are small collapsed SCCs, so an exact search is practical: enumerate
// simple paths s1->t1 by DFS and test whether t2 remains reachable from s2
// when the first path's vertices are removed. The search is pruned by a
// flow-based necessary condition. active restricts the graph (nil = all).
//
// Endpoints may coincide across the two pairs; a shared endpoint makes the
// answer false (the paths could not be disjoint) unless the corresponding
// pair is degenerate (s==t counts as a zero-length path occupying s only).
func (g *Digraph) TwoDisjointPathsPaired(s1, t1, s2, t2 int, active func(int) bool) bool {
	act := func(v int) bool { return active == nil || active(v) }
	if !act(s1) || !act(t1) || !act(s2) || !act(t2) {
		return false
	}
	// Degenerate zero-length paths.
	if s1 == t1 {
		if s1 == s2 || s1 == t2 {
			return false
		}
		blocked := func(v int) bool { return v != s1 && act(v) }
		return g.Reachable([]int{s2}, blocked)[t2]
	}
	if s2 == t2 {
		return g.TwoDisjointPathsPaired(s2, t2, s1, t1, active)
	}
	if s1 == s2 || s1 == t2 || t1 == s2 || t1 == t2 {
		return false
	}
	// Necessary condition via flow on the active subgraph.
	sub := New(g.n)
	for u := 0; u < g.n; u++ {
		if !act(u) {
			continue
		}
		for _, v := range g.adj[u] {
			if act(v) {
				sub.AddEdge(u, v)
			}
		}
	}
	if !sub.TwoDisjointPathsUnpaired(s1, s2, t1, t2) {
		return false
	}
	// Exact search: DFS over simple paths s1 -> t1.
	used := make([]bool, g.n)
	var dfs func(v int) bool
	dfs = func(v int) bool {
		if v == t1 {
			notUsed := func(w int) bool { return !used[w] }
			return sub.Reachable([]int{s2}, notUsed)[t2]
		}
		for _, w := range sub.adj[v] {
			if used[w] || w == s2 || w == t2 {
				continue
			}
			used[w] = true
			if dfs(w) {
				return true
			}
			used[w] = false
		}
		return false
	}
	used[s1] = true
	return dfs(s1)
}
