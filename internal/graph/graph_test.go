package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	comp, n := g.SCC(nil)
	if n != 2 {
		t.Fatalf("want 2 components, got %d", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Errorf("3 should be its own component: %v", comp)
	}
	// Reverse topological numbering: edge comp[2]->comp[3] means comp[2] > comp[3].
	if comp[2] <= comp[3] {
		t.Errorf("component numbering not reverse-topological: %v", comp)
	}
}

func TestSCCSingletons(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	comp, n := g.SCC(nil)
	if n != 3 {
		t.Fatalf("want 3 components, got %d (%v)", n, comp)
	}
	if !(comp[2] < comp[1] && comp[1] < comp[0]) {
		t.Errorf("chain should number sinks first: %v", comp)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	comp, n := g.SCC(nil)
	if n != 2 || comp[0] == comp[1] {
		t.Fatalf("self loop should not merge nodes: n=%d comp=%v", n, comp)
	}
}

func TestSCCActiveFilter(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	active := func(v int) bool { return v != 1 }
	comp, n := g.SCC(active)
	if comp[1] != -1 {
		t.Errorf("inactive node labelled: %v", comp)
	}
	if n != 3 {
		t.Errorf("want 3 components without node 1, got %d (%v)", n, comp)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// 200k-node path exercises the explicit-stack DFS.
	n := 200000
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	_, ncomp := g.SCC(nil)
	if ncomp != n {
		t.Fatalf("want %d components, got %d", n, ncomp)
	}
}

// naiveSCC computes components by mutual reachability, O(n^2) reference.
func naiveSCC(g *Digraph) []int {
	n := g.N()
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = g.Reachable([]int{v}, nil)
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		for w := v; w < n; w++ {
			if comp[w] < 0 && reach[v][w] && reach[w][v] {
				comp[w] = next
			}
		}
		next++
	}
	return comp
}

func TestSCCMatchesNaiveOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := New(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC(nil)
		ref := naiveSCC(g)
		// Same partition: comp[a]==comp[b] iff ref[a]==ref[b].
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if (comp[a] == comp[b]) != (ref[a] == ref[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCNumberingIsReverseTopological(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		g := New(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC(nil)
		for u := 0; u < n; u++ {
			for _, v := range g.Out(u) {
				if comp[u] != comp[v] && comp[u] <= comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCondense(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(0, 2) // duplicate inter-component edge after condensation
	g.AddEdge(2, 4)
	comp, n := g.SCC(nil)
	c := g.Condense(comp, n)
	if c.N() != 3 {
		t.Fatalf("want 3 condensed nodes, got %d", c.N())
	}
	if c.M() != 2 {
		t.Fatalf("want 2 condensed edges (dedup), got %d", c.M())
	}
	if !c.IsAcyclic() {
		t.Error("condensation must be acyclic")
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	r := g.Reachable([]int{0}, nil)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Reachable[%d]=%v want %v", i, r[i], want[i])
		}
	}
	// Filter blocks node 1.
	r = g.Reachable([]int{0}, func(v int) bool { return v != 1 })
	if r[2] {
		t.Error("node 2 should be unreachable when 1 is blocked")
	}
}

func TestTopoOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 4; u++ {
		for _, v := range g.Out(u) {
			if pos[u] >= pos[v] {
				t.Errorf("topo violation %d before %d", u, v)
			}
		}
	}
	g.AddEdge(3, 0)
	if _, ok := g.TopoOrder(); ok {
		t.Error("cycle not detected")
	}
}

func TestReverseClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if len(r.Out(1)) != 1 || r.Out(1)[0] != 0 {
		t.Errorf("reverse edge wrong: %v", r.Out(1))
	}
	c := g.Clone()
	c.AddEdge(2, 0)
	if g.M() != 2 || c.M() != 3 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func TestTwoDisjointPathsUnpaired(t *testing.T) {
	// Two parallel tracks: 0->2->4, 1->3->5.
	g := New(6)
	g.AddEdge(0, 2)
	g.AddEdge(2, 4)
	g.AddEdge(1, 3)
	g.AddEdge(3, 5)
	if !g.TwoDisjointPathsUnpaired(0, 1, 4, 5) {
		t.Error("parallel tracks should have disjoint paths")
	}
	// Funnel through a single cut vertex.
	h := New(6)
	h.AddEdge(0, 2)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	h.AddEdge(3, 4)
	h.AddEdge(3, 5)
	if h.TwoDisjointPathsUnpaired(0, 1, 4, 5) {
		t.Error("single cut vertex cannot carry two disjoint paths")
	}
}

func TestTwoDisjointPathsPaired(t *testing.T) {
	// Crossed-only case: s1 reaches t2 and s2 reaches t1 disjointly, but the
	// demanded pairing s1->t1, s2->t2 requires crossing through shared nodes.
	g := New(4)
	g.AddEdge(0, 3) // s1 -> t2
	g.AddEdge(1, 2) // s2 -> t1
	if g.TwoDisjointPathsPaired(0, 2, 1, 3, nil) {
		t.Error("paired check must reject crossed-only configuration")
	}
	if !g.TwoDisjointPathsUnpaired(0, 1, 2, 3) {
		t.Error("unpaired check should accept crossed configuration")
	}
	// Straight configuration.
	h := New(4)
	h.AddEdge(0, 2)
	h.AddEdge(1, 3)
	if !h.TwoDisjointPathsPaired(0, 2, 1, 3, nil) {
		t.Error("paired straight paths should be found")
	}
	// Degenerate zero-length pair.
	if !h.TwoDisjointPathsPaired(0, 0, 1, 3, nil) {
		t.Error("zero-length first path with disjoint second should pass")
	}
	if h.TwoDisjointPathsPaired(0, 0, 0, 3, nil) {
		t.Error("shared endpoint with zero-length path must fail")
	}
}

func TestTwoDisjointPathsPairedActiveFilter(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 4)
	g.AddEdge(1, 3)
	// Without filter, 1 can reach 3 directly.
	if !g.TwoDisjointPathsPaired(0, 2, 1, 3, nil) {
		t.Fatal("expected paired paths")
	}
	// Deactivating node 3 kills the second path.
	if g.TwoDisjointPathsPaired(0, 2, 1, 3, func(v int) bool { return v != 3 }) {
		t.Error("inactive target should fail")
	}
}

func TestEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range edge")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5)
}

// TestRemoveEdgeAndGrow covers the incremental-maintenance primitives used
// by the engine's delta path.
func TestRemoveEdgeAndGrow(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1) // parallel edge
	if !g.RemoveEdge(0, 1) {
		t.Fatal("existing edge not removed")
	}
	if g.M() != 2 {
		t.Fatalf("M=%d want 2", g.M())
	}
	out := g.Out(0)
	if len(out) != 2 || out[0] != 2 || out[1] != 1 {
		t.Fatalf("out(0)=%v want [2 1] (one parallel instance removed, order kept)", out)
	}
	if g.RemoveEdge(1, 0) || g.RemoveEdge(-1, 0) || g.RemoveEdge(0, 9) {
		t.Error("absent or out-of-range edge reported removed")
	}
	g.Grow(5)
	if g.N() != 5 {
		t.Fatalf("N=%d want 5", g.N())
	}
	g.AddEdge(4, 0)
	g.Grow(2) // shrink is a no-op
	if g.N() != 5 || g.M() != 3 {
		t.Errorf("after no-op shrink: N=%d M=%d", g.N(), g.M())
	}
}
