// Package graph provides the directed-graph algorithms that the conflict
// resolution algorithms of the paper are built on: Tarjan's strongly
// connected components (used by Algorithms 1 and 2 on every iteration of
// their Step 2), condensation, reachability, topological order, and the
// max-flow based disjoint-path checks used by the possible-pairs extension
// (Proposition 2.13).
//
// Graphs are dense: nodes are the integers 0..N-1. All algorithms are
// deterministic: neighbours are visited in insertion order.
package graph

import "fmt"

// Digraph is a directed graph over nodes 0..N-1 with parallel edges allowed.
type Digraph struct {
	n   int
	adj [][]int // adj[u] lists v for every edge u->v, in insertion order
	m   int
}

// New returns an empty digraph with n nodes and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{n: n, adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddEdge inserts the directed edge u->v.
func (g *Digraph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	g.adj[u] = append(g.adj[u], v)
	g.m++
}

// RemoveEdge deletes one instance of the directed edge u->v, preserving the
// insertion order of u's remaining out-edges, and reports whether an edge
// was removed. It supports incremental adjacency maintenance (the engine's
// delta path); out-of-range endpoints report false.
func (g *Digraph) RemoveEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for i, w := range g.adj[u] {
		if w == v {
			g.adj[u] = append(g.adj[u][:i], g.adj[u][i+1:]...)
			g.m--
			return true
		}
	}
	return false
}

// Grow extends the graph to n nodes, keeping existing nodes and edges.
// Shrinking is not supported; a smaller n is a no-op.
func (g *Digraph) Grow(n int) {
	for g.n < n {
		g.adj = append(g.adj, nil)
		g.n++
	}
}

// Out returns the out-neighbours of u. The returned slice is shared with the
// graph and must not be modified.
func (g *Digraph) Out(u int) []int { return g.adj[u] }

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.n)
	for u, vs := range g.adj {
		for _, v := range vs {
			r.AddEdge(v, u)
		}
	}
	return r
}

// Clone returns a deep copy of g.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	for u, vs := range g.adj {
		c.adj[u] = append([]int(nil), vs...)
	}
	c.m = g.m
	return c
}

// SCC computes the strongly connected components of the subgraph of g
// induced by the nodes for which active returns true (pass nil for the whole
// graph). It returns comp, where comp[v] is the component index of v (or -1
// for inactive nodes), and the number of components. Components are numbered
// in reverse topological order of the condensation: if there is an edge from
// component a to component b (a != b) then comp value of a is greater than
// that of b. Consequently component 0 is always a sink (minimal in the
// paper's orientation: no outgoing edges to other components).
//
// The implementation is Tarjan's algorithm with an explicit stack so that
// deep graphs (long chains) do not overflow the goroutine stack.
func (g *Digraph) SCC(active func(int) bool) (comp []int, ncomp int) {
	const unvisited = -1
	n := g.n
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range comp {
		comp[i] = -1
		index[i] = unvisited
	}
	next := 0
	var stack []int // Tarjan stack
	// Explicit DFS state: frame holds the node and the next out-edge index.
	type frame struct {
		v  int
		ei int
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited || (active != nil && !active(root)) {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if active != nil && !active(w) {
					continue
				}
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// Condense builds the condensation of g given a component labelling (as
// produced by SCC): one node per component, with duplicate inter-component
// edges removed. Nodes with comp[v] < 0 are ignored.
func (g *Digraph) Condense(comp []int, ncomp int) *Digraph {
	c := New(ncomp)
	seen := make(map[[2]int]bool)
	for u, vs := range g.adj {
		cu := comp[u]
		if cu < 0 {
			continue
		}
		for _, v := range vs {
			cv := comp[v]
			if cv < 0 || cv == cu {
				continue
			}
			k := [2]int{cu, cv}
			if !seen[k] {
				seen[k] = true
				c.AddEdge(cu, cv)
			}
		}
	}
	return c
}

// Reachable returns the set of nodes reachable from any node in from,
// restricted to nodes for which active returns true (nil means all nodes).
// Source nodes are included if active.
func (g *Digraph) Reachable(from []int, active func(int) bool) []bool {
	seen := make([]bool, g.n)
	var queue []int
	for _, s := range from {
		if s < 0 || s >= g.n {
			continue
		}
		if active != nil && !active(s) {
			continue
		}
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if seen[v] || (active != nil && !active(v)) {
				continue
			}
			seen[v] = true
			queue = append(queue, v)
		}
	}
	return seen
}

// TopoOrder returns a topological order of g (Kahn's algorithm) and true,
// or nil and false if g has a cycle.
func (g *Digraph) TopoOrder() ([]int, bool) {
	indeg := make([]int, g.n)
	for _, vs := range g.adj {
		for _, v := range vs {
			indeg[v]++
		}
	}
	var queue []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// IsAcyclic reports whether g has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	_, ok := g.TopoOrder()
	return ok
}
