// Package faultinject lets tests and the crash harness break the storage
// layer on purpose. internal/wal and internal/snapshot call Fire at their
// I/O boundaries (write, fsync); with no fault armed that is one atomic
// load — cheap enough to leave compiled into production builds, which is
// the point: the code path exercised under fault is EXACTLY the code path
// that runs in production, not a test double.
//
// Faults are armed per named point with an injector function deciding,
// per call, whether to fail. Helpers cover the useful shapes: FailN
// (fail calls [skip, skip+count) — deterministic, no clocks), Slow
// (latency), and ShortWrite (report a torn write so the WAL's
// torn-tail heal path can be driven without SIGKILL).
//
// The registry is process-global because the store's I/O plumbing would
// otherwise need a fault handle threaded through every layer for a
// test-only concern. Tests that arm faults must not run in parallel with
// other store tests; each must defer Reset.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one instrumented I/O boundary.
type Point string

const (
	// WALAppend fires in wal.Append before the framed record is written.
	WALAppend Point = "wal-append"
	// WALSync fires in wal.Sync before the file fsync.
	WALSync Point = "wal-sync"
	// SnapshotWrite fires in snapshot.Write before the temp file is written.
	SnapshotWrite Point = "snapshot-write"
	// SnapshotSync fires in snapshot.Write before the temp-file fsync.
	SnapshotSync Point = "snapshot-sync"
	// HandlerServe fires in internal/httpd's guard middleware after a
	// request is admitted and before its handler runs — i.e. while the
	// admission slot is held. Arming it with Slow gives requests a
	// synthetic service time, which is how cmd/loadgen manufactures
	// reproducible overload on small machines.
	HandlerServe Point = "handler-serve"
	// ReplicaStream fires in internal/httpd's GET /v1/wal streaming loop
	// once per shipped record, before the framed bytes are written to the
	// connection. Arming it with a ShortWriteError writes a partial frame
	// and then ends the stream — the torn mid-batch truncation a crashed
	// or partitioned primary produces, which the replica must survive by
	// reconnecting at its last applied LSN.
	ReplicaStream Point = "replica-stream"
)

// ErrInjected is the base of every injected failure, so tests can assert
// a failure came from the harness and not a real disk.
var ErrInjected = errors.New("faultinject: injected fault")

// ShortWriteError instructs the instrumented writer to write only the
// first Bytes bytes of the record and then fail, physically tearing the
// file tail the way a crash mid-write would.
type ShortWriteError struct {
	Bytes int
}

// Error reports the injected tear and how many bytes made it out.
func (e *ShortWriteError) Error() string {
	return fmt.Sprintf("faultinject: short write (%d bytes)", e.Bytes)
}

// Unwrap makes errors.Is(err, ErrInjected) match injected tears.
func (e *ShortWriteError) Unwrap() error { return ErrInjected }

// Injector decides one call's fate: return nil to let it proceed, or an
// error to inject. It may sleep to simulate slow I/O.
type Injector func() error

var (
	// armed short-circuits Fire when nothing is registered: instrumented
	// hot paths (wal.Append) pay one atomic load, not a mutex.
	armed atomic.Int32

	mu        sync.Mutex
	injectors = map[Point]Injector{}
)

// Enable arms point with fn. It overwrites any previous injector at that
// point.
func Enable(point Point, fn Injector) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := injectors[point]; !ok {
		armed.Add(1)
	}
	injectors[point] = fn
}

// Disable disarms point.
func Disable(point Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := injectors[point]; ok {
		delete(injectors, point)
		armed.Add(-1)
	}
}

// Reset disarms every point. Tests arm faults with `defer faultinject.Reset()`.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	injectors = map[Point]Injector{}
	armed.Store(0)
}

// Fire consults point's injector, if any. The common un-armed case is a
// single atomic load.
func Fire(point Point) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := injectors[point]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// FailN returns an injector failing calls skip..skip+count-1 (0-based)
// with err, passing all others. Deterministic: driven purely by the call
// counter, no clocks. If err is nil it fails with ErrInjected.
func FailN(skip, count int, err error) Injector {
	if err == nil {
		err = ErrInjected
	}
	var calls atomic.Int64
	return func() error {
		n := int(calls.Add(1)) - 1
		if n >= skip && n < skip+count {
			return err
		}
		return nil
	}
}

// Always returns an injector failing every call with err (ErrInjected if
// nil).
func Always(err error) Injector {
	if err == nil {
		err = ErrInjected
	}
	return func() error { return err }
}

// Slow returns an injector that delays every call by d and then succeeds,
// simulating a degraded disk without failing anything.
func Slow(d time.Duration) Injector {
	return func() error {
		time.Sleep(d)
		return nil
	}
}
