package gadgets

import (
	"fmt"

	"trustmap/internal/belief"
	"trustmap/internal/skeptic"
)

// This file builds the trust-network gates of Figure 16 and composes them
// into the CNF SAT encoding of Theorem 3.4. The Boolean values are encoded
// differently at each level (Figure 17):
//
//	level 1 (variables):  1 = b+,  0 = a+   (oscillator outputs)
//	level 2 (literals):   1 = d+,  0 = c+   (PASS/NOT outputs)
//	level 3 (clauses):    1 = d+,  0 = e+   (OR outputs)
//	level 4 (formula):    1 = f+,  0 = e+   (AND output)

// Encoding is a CNF formula compiled to a binary trust network with
// constraints. The formula is satisfiable iff f+ is a possible belief at
// node Z under the Agnostic (or Eclectic) paradigm.
type Encoding struct {
	Net *skeptic.Network
	// VarNodes[i] is the oscillator output node for variable i; its
	// possible positive beliefs are "b" (true) and "a" (false).
	VarNodes []int
	// OscRootTrue[i] / OscRootFalse[i] are the oscillator's explicit roots.
	OscRootTrue  []int
	OscRootFalse []int
	// Z is the output node; f+ at Z means satisfiable.
	Z int
}

// gateBuilder numbers helper nodes uniquely.
type gateBuilder struct {
	c *skeptic.Network
	n int
}

func (g *gateBuilder) node(prefix string) int {
	g.n++
	return g.c.AddUser(fmt.Sprintf("%s_%d", prefix, g.n))
}

// root adds a fresh root with the given explicit belief.
func (g *gateBuilder) root(prefix string, b belief.Set) int {
	x := g.node(prefix)
	g.c.SetBelief(x, b)
	return x
}

// guarded adds a node with preferred parent pref and non-preferred parent
// nonPref.
func (g *gateBuilder) guarded(prefix string, pref, nonPref int) int {
	x := g.node(prefix)
	g.c.AddMapping(pref, x, 2)
	g.c.AddMapping(nonPref, x, 1)
	return x
}

// oscillator builds the Figure 16a variable gadget: output possible beliefs
// b+ (true) and a+ (false).
func (g *gateBuilder) oscillator(i int) (out, rootTrue, rootFalse int) {
	rb := g.root(fmt.Sprintf("x%d_rt", i), belief.Positive("b"))
	ra := g.root(fmt.Sprintf("x%d_rf", i), belief.Positive("a"))
	o1 := g.node(fmt.Sprintf("x%d_o1", i))
	o2 := g.node(fmt.Sprintf("x%d_o2", i))
	g.c.AddMapping(o2, o1, 2)
	g.c.AddMapping(rb, o1, 1)
	g.c.AddMapping(o1, o2, 2)
	g.c.AddMapping(ra, o2, 1)
	return o1, rb, ra
}

// unary builds the shared NOT / PASS-THROUGH shape of Figures 16b and 16c:
// a chain of four guarded nodes with constant roots. With outLow="c",
// outHigh="d" it is a NOT gate (b+/a+ -> c+/d+); swapped it is a
// PASS-THROUGH (b+/a+ -> d+/c+).
func (g *gateBuilder) unary(name string, in int, outLow, outHigh string) int {
	n1 := g.guarded(name+"_n1", g.root(name+"_aNeg", belief.Negatives("a")), in)
	n2 := g.guarded(name+"_n2", n1, g.root(name+"_hi", belief.Positive(outHigh)))
	n3 := g.guarded(name+"_n3", g.root(name+"_bNeg", belief.Negatives("b")), n2)
	return g.guarded(name+"_out", n3, g.root(name+"_lo", belief.Positive(outLow)))
}

// notGate maps b+/a+ (1/0) to c+/d+ (0/1).
func (g *gateBuilder) notGate(name string, in int) int {
	return g.unary(name, in, "c", "d")
}

// passGate maps b+/a+ (1/0) to d+/c+ (1/0).
func (g *gateBuilder) passGate(name string, in int) int {
	return g.unary(name, in, "d", "c")
}

// orGate builds the Figure 16d clause gadget over level-2 inputs
// (d+ = 1, c+ = 0), producing d+ = 1 / e+ = 0.
func (g *gateBuilder) orGate(name string, ins []int) int {
	var filtered []int
	for i, in := range ins {
		cNeg := g.root(fmt.Sprintf("%s_cNeg%d", name, i), belief.Negatives("c"))
		filtered = append(filtered, g.guarded(fmt.Sprintf("%s_g%d", name, i), cNeg, in))
	}
	acc := filtered[0]
	for i := 1; i < len(filtered); i++ {
		acc = g.guarded(fmt.Sprintf("%s_m%d", name, i), acc, filtered[i])
	}
	ePos := g.root(name+"_e", belief.Positive("e"))
	return g.guarded(name+"_out", acc, ePos)
}

// andGate builds the Figure 16e output gadget over level-3 inputs
// (d+ = 1, e+ = 0), producing f+ = 1 / e+ = 0.
func (g *gateBuilder) andGate(name string, ins []int) int {
	var filtered []int
	for i, in := range ins {
		dNeg := g.root(fmt.Sprintf("%s_dNeg%d", name, i), belief.Negatives("d"))
		filtered = append(filtered, g.guarded(fmt.Sprintf("%s_g%d", name, i), dNeg, in))
	}
	acc := filtered[0]
	for i := 1; i < len(filtered); i++ {
		acc = g.guarded(fmt.Sprintf("%s_m%d", name, i), acc, filtered[i])
	}
	fPos := g.root(name+"_f", belief.Positive("f"))
	return g.guarded(name+"_out", acc, fPos)
}

// EncodeCNF compiles a CNF formula into the Theorem 3.4 trust network.
func EncodeCNF(f CNF) *Encoding {
	enc := &Encoding{Net: skeptic.New()}
	g := &gateBuilder{c: enc.Net}
	enc.VarNodes = make([]int, f.NumVars)
	enc.OscRootTrue = make([]int, f.NumVars)
	enc.OscRootFalse = make([]int, f.NumVars)
	for i := 0; i < f.NumVars; i++ {
		enc.VarNodes[i], enc.OscRootTrue[i], enc.OscRootFalse[i] = g.oscillator(i)
	}
	// Level 2: one PASS per positive occurrence polarity, one NOT per
	// negative polarity (shared across clauses).
	pass := make(map[int]int)
	not := make(map[int]int)
	for _, c := range f.Clauses {
		for _, l := range c {
			if l.Neg {
				if _, ok := not[l.Var]; !ok {
					not[l.Var] = g.notGate(fmt.Sprintf("not%d", l.Var), enc.VarNodes[l.Var])
				}
			} else {
				if _, ok := pass[l.Var]; !ok {
					pass[l.Var] = g.passGate(fmt.Sprintf("pass%d", l.Var), enc.VarNodes[l.Var])
				}
			}
		}
	}
	// Level 3: one OR per clause.
	var clauseOuts []int
	for ci, c := range f.Clauses {
		var ins []int
		for _, l := range c {
			if l.Neg {
				ins = append(ins, not[l.Var])
			} else {
				ins = append(ins, pass[l.Var])
			}
		}
		clauseOuts = append(clauseOuts, g.orGate(fmt.Sprintf("or%d", ci), ins))
	}
	// Level 4: a single AND.
	enc.Z = g.andGate("and", clauseOuts)
	return enc
}

// EvalPhase evaluates the encoding under a fixed oscillator phase
// assignment (true = b+, the encoding of 1) by replacing each oscillator
// with an explicit root and solving the remaining acyclic network under
// paradigm p. It returns the belief set at Z.
//
// Each phase assignment corresponds to one stable solution of the cyclic
// network (the oscillators are the only cycles), so iterating EvalPhase
// over all phases enumerates poss(Z).
func (e *Encoding) EvalPhase(p belief.Paradigm, phase []bool) belief.Set {
	c := skeptic.New()
	// Clone structure.
	for x := 0; x < e.Net.NumUsers(); x++ {
		c.AddUser(e.Net.TN.Name(x))
	}
	osc := make(map[int]bool) // oscillator internal nodes to cut
	fixed := make(map[int]belief.Set)
	for i, out := range e.VarNodes {
		v := "a"
		if phase[i] {
			v = "b"
		}
		fixed[out] = belief.Positive(v)
		osc[out] = true
	}
	for x := 0; x < e.Net.NumUsers(); x++ {
		if b, ok := fixed[x]; ok {
			c.SetBelief(x, b)
			continue // drop incoming edges: the oscillator output is pinned
		}
		c.SetBelief(x, e.Net.B0[x])
	}
	for x := 0; x < e.Net.NumUsers(); x++ {
		if osc[x] {
			continue
		}
		for _, m := range e.Net.TN.In(x) {
			// Skip edges into the other oscillator half (o2): it has no
			// outgoing edges we keep, so just keep the graph acyclic by
			// dropping edges into any pinned node.
			c.AddMapping(m.Parent, x, m.Priority)
		}
	}
	sol, err := skeptic.SolveAcyclic(c, p)
	if err != nil {
		panic("gadgets: phase-pinned encoding must be acyclic: " + err.Error())
	}
	return sol[e.Z]
}

// SatisfiableViaGadget checks whether f+ is a possible belief at Z by
// evaluating all oscillator phases (exponential, like any exact procedure
// for an NP-hard problem). Paradigm p must be Agnostic or Eclectic.
func (e *Encoding) SatisfiableViaGadget(p belief.Paradigm, numVars int) bool {
	phase := make([]bool, numVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == numVars {
			b := e.EvalPhase(p, phase)
			v, ok := b.Pos()
			return ok && v == "f"
		}
		phase[i] = false
		if rec(i + 1) {
			return true
		}
		phase[i] = true
		return rec(i + 1)
	}
	return rec(0)
}
