// Package gadgets implements the hardness machinery of Theorem 3.4: CNF
// formulas with a DPLL satisfiability solver (the reference oracle for the
// reduction), and the encoding of CNF SAT into binary trust networks with
// constraints using the oscillator, NOT, PASS-THROUGH, OR, and AND gates of
// Figures 7 and 16. The encoding demonstrates why computing possible
// beliefs under the Agnostic and Eclectic paradigms is NP-hard.
package gadgets

import (
	"fmt"
	"math/rand"
	"strings"
)

// Literal is a CNF literal: variable index (0-based) and polarity.
type Literal struct {
	Var int
	Neg bool
}

// String renders the literal with an optional negation bar prefix.
func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses over variables 0..NumVars-1.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// String renders the formula in conjunctive normal form notation.
func (f CNF) String() string {
	var cs []string
	for _, c := range f.Clauses {
		var ls []string
		for _, l := range c {
			ls = append(ls, l.String())
		}
		cs = append(cs, "("+strings.Join(ls, " | ")+")")
	}
	return strings.Join(cs, " & ")
}

// Eval evaluates the formula under a total assignment.
func (f CNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve decides satisfiability with DPLL (unit propagation + branching) and
// returns a satisfying assignment if one exists.
func (f CNF) Solve() ([]bool, bool) {
	const (
		unset = 0
		tru   = 1
		fls   = 2
	)
	assign := make([]int8, f.NumVars)
	var dpll func() bool
	dpll = func() bool {
		// Unit propagation.
		var trail []int
		for {
			unit := -1
			var unitVal int8
			for _, c := range f.Clauses {
				unassigned := 0
				var lastLit Literal
				sat := false
				for _, l := range c {
					switch assign[l.Var] {
					case unset:
						unassigned++
						lastLit = l
					case tru:
						if !l.Neg {
							sat = true
						}
					case fls:
						if l.Neg {
							sat = true
						}
					}
					if sat {
						break
					}
				}
				if sat {
					continue
				}
				if unassigned == 0 {
					// Conflict: undo trail.
					for _, v := range trail {
						assign[v] = unset
					}
					return false
				}
				if unassigned == 1 {
					unit = lastLit.Var
					if lastLit.Neg {
						unitVal = fls
					} else {
						unitVal = tru
					}
					break
				}
			}
			if unit < 0 {
				break
			}
			assign[unit] = unitVal
			trail = append(trail, unit)
		}
		// Pick a branching variable.
		branch := -1
		for v := 0; v < f.NumVars; v++ {
			if assign[v] == unset {
				branch = v
				break
			}
		}
		if branch < 0 {
			ok := true
			for _, c := range f.Clauses {
				sat := false
				for _, l := range c {
					if (assign[l.Var] == tru) != l.Neg {
						sat = true
						break
					}
				}
				if !sat {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
			for _, v := range trail {
				assign[v] = unset
			}
			return false
		}
		for _, val := range []int8{tru, fls} {
			assign[branch] = val
			if dpll() {
				return true
			}
		}
		assign[branch] = unset
		for _, v := range trail {
			assign[v] = unset
		}
		return false
	}
	if !dpll() {
		return nil, false
	}
	out := make([]bool, f.NumVars)
	for v := range out {
		out[v] = assign[v] == tru
	}
	if !f.Eval(out) {
		panic("gadgets: DPLL returned a non-satisfying assignment")
	}
	return out, true
}

// RandomCNF generates a random k-CNF with the given shape. Clauses hold
// distinct variables, so their length is capped at numVars.
func RandomCNF(rng *rand.Rand, numVars, numClauses, clauseLen int) CNF {
	if clauseLen > numVars {
		clauseLen = numVars
	}
	f := CNF{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		var c Clause
		used := map[int]bool{}
		for len(c) < clauseLen {
			v := rng.Intn(numVars)
			if used[v] {
				continue
			}
			used[v] = true
			c = append(c, Literal{Var: v, Neg: rng.Float64() < 0.5})
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
