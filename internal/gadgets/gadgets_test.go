package gadgets

import (
	"math/rand"
	"testing"

	"trustmap/internal/belief"
	"trustmap/internal/skeptic"
)

func TestDPLLBasics(t *testing.T) {
	// (x0) & (!x0) unsat.
	f := CNF{NumVars: 1, Clauses: []Clause{{{0, false}}, {{0, true}}}}
	if _, ok := f.Solve(); ok {
		t.Error("x & !x must be unsat")
	}
	// (x0 | x1) & (!x0 | x1) => x1 true.
	f = CNF{NumVars: 2, Clauses: []Clause{
		{{0, false}, {1, false}},
		{{0, true}, {1, false}},
	}}
	a, ok := f.Solve()
	if !ok || !a[1] {
		t.Errorf("want sat with x1=true, got %v ok=%v", a, ok)
	}
	// Empty formula is satisfiable.
	f = CNF{NumVars: 2}
	if _, ok := f.Solve(); !ok {
		t.Error("empty CNF must be sat")
	}
}

func TestDPLLMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		f := RandomCNF(rng, 2+rng.Intn(4), 1+rng.Intn(6), 1+rng.Intn(3))
		_, got := f.Solve()
		want := false
		n := f.NumVars
		for mask := 0; mask < 1<<n && !want; mask++ {
			assign := make([]bool, n)
			for v := 0; v < n; v++ {
				assign[v] = mask&(1<<v) != 0
			}
			want = f.Eval(assign)
		}
		if got != want {
			t.Fatalf("formula %v: DPLL=%v brute=%v", f, got, want)
		}
	}
}

// evalGate pins a single input value and solves the gate acyclically.
func evalGate(t *testing.T, build func(g *gateBuilder, in int) int, p belief.Paradigm, inVal string) belief.Set {
	t.Helper()
	c := skeptic.New()
	g := &gateBuilder{c: c}
	in := g.root("in", belief.Positive(inVal))
	out := build(g, in)
	sol, err := skeptic.SolveAcyclic(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return sol[out]
}

// TestNotGateTruthTable checks Figure 16b: b+/a+ -> c+/d+.
func TestNotGateTruthTable(t *testing.T) {
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
		got := evalGate(t, func(g *gateBuilder, in int) int { return g.notGate("not", in) }, p, "b")
		if v, ok := got.Pos(); !ok || v != "c" {
			t.Errorf("%v NOT(1): got %v want c+ (0)", p, got)
		}
		got = evalGate(t, func(g *gateBuilder, in int) int { return g.notGate("not", in) }, p, "a")
		if v, ok := got.Pos(); !ok || v != "d" {
			t.Errorf("%v NOT(0): got %v want d+ (1)", p, got)
		}
	}
}

// TestPassGateTruthTable checks Figure 16c: b+/a+ -> d+/c+.
func TestPassGateTruthTable(t *testing.T) {
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
		got := evalGate(t, func(g *gateBuilder, in int) int { return g.passGate("p", in) }, p, "b")
		if v, ok := got.Pos(); !ok || v != "d" {
			t.Errorf("%v PASS(1): got %v want d+", p, got)
		}
		got = evalGate(t, func(g *gateBuilder, in int) int { return g.passGate("p", in) }, p, "a")
		if v, ok := got.Pos(); !ok || v != "c" {
			t.Errorf("%v PASS(0): got %v want c+", p, got)
		}
	}
}

// TestOrGateTruthTable checks Figure 16d over all 3-input combinations:
// inputs d+/c+ (1/0), output d+/e+ (1/0).
func TestOrGateTruthTable(t *testing.T) {
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
		for mask := 0; mask < 8; mask++ {
			c := skeptic.New()
			g := &gateBuilder{c: c}
			var ins []int
			want := false
			for i := 0; i < 3; i++ {
				bit := mask&(1<<i) != 0
				want = want || bit
				v := "c"
				if bit {
					v = "d"
				}
				ins = append(ins, g.root("in", belief.Positive(v)))
			}
			out := g.orGate("or", ins)
			sol, err := skeptic.SolveAcyclic(c, p)
			if err != nil {
				t.Fatal(err)
			}
			v, ok := sol[out].Pos()
			if !ok {
				t.Fatalf("%v OR mask %03b: no positive output: %v", p, mask, sol[out])
			}
			wantV := "e"
			if want {
				wantV = "d"
			}
			if v != wantV {
				t.Errorf("%v OR mask %03b: got %s+ want %s+", p, mask, v, wantV)
			}
		}
	}
}

// TestAndGateTruthTable checks Figure 16e: inputs d+/e+ (1/0), output
// f+/e+ (1/0).
func TestAndGateTruthTable(t *testing.T) {
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
		for mask := 0; mask < 4; mask++ {
			c := skeptic.New()
			g := &gateBuilder{c: c}
			var ins []int
			want := true
			for i := 0; i < 2; i++ {
				bit := mask&(1<<i) != 0
				want = want && bit
				v := "e"
				if bit {
					v = "d"
				}
				ins = append(ins, g.root("in", belief.Positive(v)))
			}
			out := g.andGate("and", ins)
			sol, err := skeptic.SolveAcyclic(c, p)
			if err != nil {
				t.Fatal(err)
			}
			v, ok := sol[out].Pos()
			if !ok {
				t.Fatalf("%v AND mask %02b: no positive output: %v", p, mask, sol[out])
			}
			wantV := "e"
			if want {
				wantV = "f"
			}
			if v != wantV {
				t.Errorf("%v AND mask %02b: got %s+ want %s+", p, mask, v, wantV)
			}
		}
	}
}

// TestPaperFormula encodes (X1 ∨ ¬X2) ∧ (X2 ∨ X3) (Figure 16f) and checks
// satisfiability through the gadget.
func TestPaperFormula(t *testing.T) {
	f := CNF{NumVars: 3, Clauses: []Clause{
		{{0, false}, {1, true}},
		{{1, false}, {2, false}},
	}}
	if _, ok := f.Solve(); !ok {
		t.Fatal("paper formula must be satisfiable")
	}
	enc := EncodeCNF(f)
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
		if !enc.SatisfiableViaGadget(p, f.NumVars) {
			t.Errorf("%v: f+ must be possible at Z for a satisfiable formula", p)
		}
	}
}

// TestReductionMatchesDPLL is the Theorem 3.4 equivalence: the CNF is
// satisfiable iff f+ ∈ poss(Z) in the encoded network, for both hard
// paradigms, over random formulas.
func TestReductionMatchesDPLL(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 40; i++ {
		f := RandomCNF(rng, 2+rng.Intn(3), 2+rng.Intn(4), 1+rng.Intn(3))
		_, want := f.Solve()
		enc := EncodeCNF(f)
		for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
			got := enc.SatisfiableViaGadget(p, f.NumVars)
			if got != want {
				t.Fatalf("formula %d %v (%v): gadget=%v dpll=%v", i, f, p, got, want)
			}
		}
	}
}

// TestUnsatisfiableFormulaCertainE: for an unsatisfiable formula the output
// is e+ (0) under every phase, i.e. e+ is certain at Z (the coNP-hardness
// direction of Theorem 3.4).
func TestUnsatisfiableFormulaCertainE(t *testing.T) {
	f := CNF{NumVars: 1, Clauses: []Clause{{{0, false}}, {{0, true}}}}
	enc := EncodeCNF(f)
	for _, p := range []belief.Paradigm{belief.Agnostic, belief.Eclectic} {
		for _, phase := range [][]bool{{false}, {true}} {
			b := enc.EvalPhase(p, phase)
			if v, ok := b.Pos(); !ok || v != "e" {
				t.Errorf("%v phase %v: got %v want e+", p, phase, b)
			}
		}
	}
}

// TestEncodingSize: the encoding is polynomial in the formula size.
func TestEncodingSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := RandomCNF(rng, 10, 20, 3)
	enc := EncodeCNF(f)
	n := enc.Net.NumUsers()
	// Rough budget: <= 30 nodes per variable + 40 per clause.
	if n > 30*f.NumVars+40*len(f.Clauses) {
		t.Errorf("encoding too large: %d nodes", n)
	}
	if err := enc.Net.Validate(); err != nil {
		t.Errorf("encoding must be a valid binary tie-free network: %v", err)
	}
}

// TestOscillatorBistable: the variable gadget alone has exactly the two
// expected stable solutions.
func TestOscillatorBistable(t *testing.T) {
	c := skeptic.New()
	g := &gateBuilder{c: c}
	out, _, _ := g.oscillator(0)
	sols := skeptic.EnumerateStableSolutions(c, belief.Agnostic, 0)
	seen := map[string]bool{}
	for _, s := range sols {
		if v, ok := s[out].Pos(); ok {
			seen[v] = true
		}
	}
	if len(sols) != 2 || !seen["a"] || !seen["b"] {
		t.Errorf("oscillator: want 2 solutions covering a+ and b+, got %d (%v)", len(sols), seen)
	}
}
