package httpd_test

// Handler-level replication tests: the replica role (421s, staleness
// surfacing, promote) driven through a fake Replication, and the
// primary-side shipping endpoints (/v1/snapshot, /v1/wal).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"trustmap"
	"trustmap/internal/httpd"
	"trustmap/internal/wal"
	"trustmap/wire"
)

// fakeRepl is a scripted Replication: a fixed primary and lag, and a
// flag recording whether promote stopped it.
type fakeRepl struct {
	primary string
	lag     uint64
	stopped atomic.Bool
}

func (f *fakeRepl) PrimaryURL() string { return f.primary }
func (f *fakeRepl) Lag() uint64        { return f.lag }
func (f *fakeRepl) Stop()              { f.stopped.Store(true) }
func (f *fakeRepl) Stats() wire.ReplicationStats {
	return wire.ReplicationStats{Role: "replica", Primary: f.primary, Connected: true, Lag: f.lag}
}

func openDurable(t *testing.T) *trustmap.Store {
	t.Helper()
	st, err := trustmap.OpenStore(t.TempDir(), trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func doReq(t *testing.T, h http.Handler, method, path string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestReplicaRole(t *testing.T) {
	st := openDurable(t)
	srv := httpd.New(st, httpd.Config{})
	repl := &fakeRepl{primary: "http://primary.example:7654", lag: 3}
	srv.SetReplication(repl)

	// Every logical mutation answers 421 naming the primary, in both the
	// redirect header and the error body.
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/v1/mutate", `{"ops":[{"op":"set-trust","truster":"a","trusted":"b","priority":1}]}`},
		{"PUT", "/v1/objects/o1", `{"beliefs":{"b":"v"}}`},
		{"DELETE", "/v1/objects/o1", ""},
		{"PUT", "/v1/objects/o1/beliefs/b", `{"value":"v"}`},
		{"DELETE", "/v1/objects/o1/beliefs/b", ""},
	} {
		rec := doReq(t, srv, tc.method, tc.path, tc.body)
		if rec.Code != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s on replica: status %d, want 421", tc.method, tc.path, rec.Code)
		}
		if got := rec.Header().Get(wire.PrimaryHeader); got != repl.primary {
			t.Fatalf("%s %s: primary header %q, want %q", tc.method, tc.path, got, repl.primary)
		}
		var er wire.ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Primary != repl.primary {
			t.Fatalf("%s %s: error body %s (err %v), want primary %q", tc.method, tc.path, rec.Body.String(), err, repl.primary)
		}
	}
	if st.LSN() != 0 {
		t.Fatalf("replica logged %d mutations through 421s", st.LSN())
	}

	// Reads keep serving, staleness surfaced on every guarded response.
	rec := doReq(t, srv, "GET", "/v1/objects", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("replica read: status %d, want 200", rec.Code)
	}
	if got := rec.Header().Get(wire.StalenessHeader); got != "3" {
		t.Fatalf("staleness header = %q, want 3", got)
	}

	// Checkpoints are local housekeeping, not logical mutations: allowed.
	// (An empty store has nothing to compact but must not answer 421.)
	if rec := doReq(t, srv, "POST", "/v1/admin/checkpoint", ""); rec.Code == http.StatusMisdirectedRequest {
		t.Fatalf("checkpoint answered 421 on a replica")
	}

	// /healthz and /v1/stats carry the role and lag.
	rec = doReq(t, srv, "GET", "/healthz", "")
	var h wire.Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Role != "replica" || h.ReplicaLag != 3 {
		t.Fatalf("healthz = %+v, want role replica lag 3", h)
	}
	var stats wire.StatsResponse
	if err := json.Unmarshal(doReq(t, srv, "GET", "/v1/stats", "").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replication.Role != "replica" || stats.Replication.Primary != repl.primary || !stats.Replication.Connected {
		t.Fatalf("stats replication = %+v", stats.Replication)
	}
}

func TestPromoteTearsDownReplicaRole(t *testing.T) {
	st := openDurable(t)
	srv := httpd.New(st, httpd.Config{})
	repl := &fakeRepl{primary: "http://primary.example:7654"}
	srv.SetReplication(repl)

	rec := doReq(t, srv, "POST", "/v1/admin/promote", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: status %d body %s", rec.Code, rec.Body.String())
	}
	var pr wire.PromoteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Role != "primary" || !pr.WasReplica {
		t.Fatalf("promote = %+v, want role primary was_replica true", pr)
	}
	if !repl.stopped.Load() {
		t.Fatal("promote returned before stopping the tail")
	}

	// Mutations are accepted from the next request on.
	rec = doReq(t, srv, "POST", "/v1/mutate",
		`{"ops":[{"op":"set-trust","truster":"a","trusted":"b","priority":1}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-promote mutate: status %d body %s", rec.Code, rec.Body.String())
	}
	var hh wire.Health
	if err := json.Unmarshal(doReq(t, srv, "GET", "/healthz", "").Body.Bytes(), &hh); err != nil {
		t.Fatal(err)
	}
	if hh.Role != "primary" || hh.ReplicaLag != 0 {
		t.Fatalf("post-promote healthz = %+v, want primary", hh)
	}

	// Promoting a primary is an idempotent no-op.
	rec = doReq(t, srv, "POST", "/v1/admin/promote", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || pr.WasReplica {
		t.Fatalf("second promote = %d %+v, want 200 was_replica false", rec.Code, pr)
	}
}

func TestWALStreamRejections(t *testing.T) {
	// In-memory stores have no WAL.
	mem := httpd.New(testStore(t), httpd.Config{})
	if rec := doReq(t, mem, "GET", "/v1/wal", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("wal on memory store: status %d, want 400", rec.Code)
	}

	st := openDurable(t)
	srv := httpd.New(st, httpd.Config{})
	if rec := doReq(t, srv, "GET", "/v1/wal?after=bogus", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad after: status %d, want 400", rec.Code)
	}

	// Prune history behind two checkpoints, then ask for the start: 410.
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := st.SetTrust(ctx, "a", "b", i+1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.SetTrust(ctx, "a", "c", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec := doReq(t, srv, "GET", "/v1/wal?after=0", "")
	if rec.Code != http.StatusGone {
		t.Fatalf("pruned wal: status %d body %s, want 410", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "/v1/snapshot") {
		t.Fatalf("410 body does not point at the bootstrap path: %s", rec.Body.String())
	}
}

func TestWALStreamShipsFrames(t *testing.T) {
	st := openDurable(t)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if err := st.SetTrust(ctx, "a", "b", i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpd.New(st, httpd.Config{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/wal?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal stream: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(wire.LSNHeader); got != "6" {
		t.Fatalf("stream lsn header = %q, want 6 (durable watermark)", got)
	}
	dec := wal.NewDecoder(resp.Body)
	for want := uint64(3); want <= 6; want++ {
		b, err := dec.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if b.LSN != want || len(b.Ops) != 1 {
			t.Fatalf("frame lsn %d ops %d, want lsn %d ops 1", b.LSN, len(b.Ops), want)
		}
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	st := openDurable(t)
	srv := httpd.New(st, httpd.Config{})

	rec := doReq(t, srv, "GET", "/v1/snapshot", "")
	if rec.Code != http.StatusNoContent || rec.Header().Get(wire.LSNHeader) != "0" {
		t.Fatalf("snapshot before checkpoint: status %d lsn %q, want 204/0", rec.Code, rec.Header().Get(wire.LSNHeader))
	}

	ctx := context.Background()
	if err := st.SetTrust(ctx, "a", "b", 7); err != nil {
		t.Fatal(err)
	}
	if err := st.PutBelief(ctx, "b", "o1", "fish"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec = doReq(t, srv, "GET", "/v1/snapshot", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d", rec.Code)
	}
	lsn, err := strconv.ParseUint(rec.Header().Get(wire.LSNHeader), 10, 64)
	if err != nil || lsn != st.LSN() {
		t.Fatalf("snapshot lsn header %q, want %d", rec.Header().Get(wire.LSNHeader), st.LSN())
	}
	// The blob is a real installable snapshot: plant it in a fresh dir.
	dir := t.TempDir()
	got, err := trustmap.InstallSnapshot(dir, rec.Body.Bytes())
	if err != nil || got != lsn {
		t.Fatalf("install shipped snapshot: lsn %d err %v, want %d", got, err, lsn)
	}
	r2, err := trustmap.OpenStore(dir, trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.LSN() != lsn {
		t.Fatalf("store from shipped snapshot at lsn %d, want %d", r2.LSN(), lsn)
	}

	// In-memory stores have no snapshot to ship.
	mem := httpd.New(testStore(t), httpd.Config{})
	if rec := doReq(t, mem, "GET", "/v1/snapshot", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("snapshot on memory store: status %d, want 400", rec.Code)
	}
}
