package httpd

// The replication endpoints and the replica serving role.
//
// A primary (the default role) serves two extra infrastructure
// endpoints: GET /v1/snapshot ships the newest compacted snapshot for
// replica bootstrap, and GET /v1/wal?after=<lsn> streams the WAL's
// durable suffix as chunked, CRC-framed record batches — byte-for-byte
// the internal/wal record framing — flushing per batch and long-polling
// for more, with periodic empty-batch heartbeats so an idle replica
// still learns the primary's durable LSN. A request for records already
// pruned behind a checkpoint answers 410 Gone: the replica must
// re-bootstrap from the snapshot.
//
// A server becomes a replica when SetReplication hands it the live WAL
// tail (cmd/trustd wires an internal/replica.Tailer in). A replica keeps
// serving every read — epoch-pinned, with its staleness in the
// wire.StalenessHeader of every guarded response and in /healthz and
// /v1/stats — but answers logical mutations with 421 Misdirected
// Request naming the primary. POST /v1/admin/promote tears the role
// down: the tail is stopped and the server accepts writes, continuing
// the primary's LSN numbering in place.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"trustmap"
	"trustmap/internal/faultinject"
	"trustmap/internal/wal"
	"trustmap/wire"
)

// DefaultWALPoll is the /v1/wal long-poll interval when Config.WALPoll
// is zero: how often an idle stream re-checks the log for new durable
// batches.
const DefaultWALPoll = 25 * time.Millisecond

// walHeartbeatEvery is the idle-poll count between stream heartbeats
// (empty batches carrying the durable LSN), keeping a quiet stream's
// liveness and the replica's lag measurement fresh at roughly one
// heartbeat per second at the default poll interval.
const walHeartbeatEvery = 40

// Replication is the live replica state a Server surfaces: cmd/trustd
// implements it with an internal/replica.Tailer. A Server with no
// Replication installed is a primary.
type Replication interface {
	// PrimaryURL is the base URL mutations are redirected to.
	PrimaryURL() string
	// Lag is the replication lag in WAL batches (see wire.StalenessHeader).
	Lag() uint64
	// Stats snapshots the tail's counters for /v1/stats.
	Stats() wire.ReplicationStats
	// Stop terminates the tail and waits for it to exit; called on promote.
	Stop()
}

// SetReplication installs the replica role: reads keep serving with
// staleness surfaced, mutations answer 421 naming r.PrimaryURL().
func (srv *Server) SetReplication(r Replication) { srv.repl.Store(&r) }

// replication returns the installed replica state, or nil on a primary.
func (srv *Server) replication() Replication {
	if p := srv.repl.Load(); p != nil {
		return *p
	}
	return nil
}

// replicationStats feeds the /v1/stats replication section.
func (srv *Server) replicationStats() wire.ReplicationStats {
	if rep := srv.replication(); rep != nil {
		return rep.Stats()
	}
	return wire.ReplicationStats{Role: "primary"}
}

// primaryOnly rejects logical mutations on a replica with 421
// Misdirected Request, the primary's base URL in both the
// wire.PrimaryHeader header and the error body. The replica has done no
// work, so the client can re-send to the primary unconditionally.
// Checkpoints stay allowed: compaction is local housekeeping.
func (srv *Server) primaryOnly(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rep := srv.replication(); rep != nil {
			primary := rep.PrimaryURL()
			w.Header().Set(wire.PrimaryHeader, primary)
			writeJSON(w, http.StatusMisdirectedRequest, wire.ErrorResponse{
				Message: fmt.Sprintf("replica does not accept mutations; send them to the primary at %s", primary),
				Primary: primary,
			})
			return
		}
		next(w, r)
	}
}

// handlePromote makes this server a primary. Idempotent: promoting a
// primary answers 200 with WasReplica false. On a replica the WAL tail
// is stopped synchronously — no replicated apply lands after the
// response — and mutations are accepted from the next request on,
// continuing the shipped history's LSN numbering.
func (srv *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	was := false
	if p := srv.repl.Swap(nil); p != nil {
		(*p).Stop()
		was = true
	}
	writeJSON(w, http.StatusOK, wire.PromoteResponse{
		Role: "primary", WasReplica: was, Epoch: st.Epoch(), LSN: st.LSN(),
	})
}

// handleSnapshot ships the newest compacted snapshot blob (the replica
// bootstrap seed) with its watermark in wire.LSNHeader; 204 when no
// checkpoint has run yet (the replica starts from LSN 0 instead).
func (srv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.concreteStore(w)
	if !ok {
		return
	}
	blob, lsn, have, err := st.SnapshotBlob()
	if err != nil {
		if errors.Is(err, trustmap.ErrNotDurable) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		srv.storeError(w, err, http.StatusInternalServerError)
		return
	}
	if !have {
		w.Header().Set(wire.LSNHeader, "0")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(wire.LSNHeader, strconv.FormatUint(lsn, 10))
	w.Write(blob) //nolint:errcheck // a dead client ends the response either way
}

// handleWALStream is GET /v1/wal?after=<lsn>: an endless chunked stream
// of the WAL's durable suffix in internal/wal record framing, flushed
// per batch. Registered outside the guard middleware — a per-request
// deadline would cut a healthy stream, and like /healthz it must answer
// under admission pressure; its cost is bounded by the durable log, not
// request bodies.
func (srv *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.concreteStore(w)
	if !ok {
		return
	}
	dur := st.Durability()
	if dur.Mode == "memory" {
		writeError(w, http.StatusBadRequest, errors.New("in-memory store has no WAL to stream"))
		return
	}
	after := uint64(0)
	if q := r.URL.Query().Get("after"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid after parameter %q", q))
			return
		}
		after = n
	}
	// Records the requester needs but the log no longer holds (pruned
	// behind a checkpoint) cannot be streamed: 410 sends it back to the
	// snapshot bootstrap path.
	if oldest, held := st.OldestWALLSN(); held {
		if after+1 < oldest {
			writeError(w, http.StatusGone,
				fmt.Errorf("wal records after lsn %d are pruned (oldest retained is %d); bootstrap from GET /v1/snapshot", after, oldest))
			return
		}
	} else if after < dur.SnapshotLSN {
		writeError(w, http.StatusGone,
			fmt.Errorf("wal records after lsn %d are compacted into the snapshot at lsn %d; bootstrap from GET /v1/snapshot", after, dur.SnapshotLSN))
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(wire.LSNHeader, strconv.FormatUint(st.DurableLSN(), 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush() // headers out before the first poll: connect acks fast

	ctx := r.Context()
	sent := after
	idle := 0
	for {
		wrote := false
		_, err := st.TailWAL(sent, func(b wire.OpBatch) error {
			raw, err := wal.Encode(b)
			if err != nil {
				return err
			}
			if ferr := faultinject.Fire(faultinject.ReplicaStream); ferr != nil {
				// A ShortWriteError physically tears the stream mid-frame —
				// the prefix lands on the wire, then the response ends —
				// exactly what a primary crash mid-send produces.
				var sw *faultinject.ShortWriteError
				if errors.As(ferr, &sw) && sw.Bytes > 0 && sw.Bytes < len(raw) {
					w.Write(raw[:sw.Bytes]) //nolint:errcheck // the injected tear supersedes
				}
				return ferr
			}
			if _, err := w.Write(raw); err != nil {
				return err
			}
			sent = b.LSN
			wrote = true
			return nil
		})
		if err != nil {
			// Client gone, log pruned under the scan, or an injected tear:
			// end the stream; the replica reconnects at its applied LSN.
			return
		}
		if wrote {
			idle = 0
			flush()
		} else if idle++; idle >= walHeartbeatEvery {
			// Heartbeat: an empty batch carrying the durable LSN. Sent only
			// when fully caught up, so sent == the primary's durable LSN.
			raw, err := wal.Encode(wire.OpBatch{Schema: wire.SchemaVersion, LSN: sent})
			if err != nil {
				return
			}
			if _, err := w.Write(raw); err != nil {
				return
			}
			flush()
			idle = 0
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(srv.walPoll):
		}
	}
}
