package httpd

// The endpoint handlers: a thin layer over one shard.Backend — a single
// trustmap.Store or a sharded cluster router — speaking the wire-package
// schema (the same one the client package consumes, so server and client
// cannot drift). Reads are served lock-free from the backend's currently
// published epoch(s); trust mutations (/v1/mutate) apply one atomic
// batch — broadcast to every shard on a cluster — and publish the next
// epoch before responding; object CRUD (/v1/objects...) edits the belief
// table of the one store owning the key and invalidates exactly the
// touched object's cached resolution. Every response carries the epoch
// that served it — and, on a durable store, the LSN of the last logged
// WAL batch; on a cluster, the minimum over shards, the conservative
// read-your-writes bound — so a client that mutates and then resolves
// can verify the read observed at least its own write.
//
// The handler is built before the store finishes recovering: until the
// store is installed every endpoint answers 503 with a Retry-After
// header, so load balancers and clients hold off instead of erroring.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"trustmap"
	"trustmap/internal/shard"
	"trustmap/wire"
)

// store returns the serving backend, or answers 503 (with Retry-After,
// so well-behaved clients back off) while recovery is still running.
func (srv *Server) store(w http.ResponseWriter) (shard.Backend, bool) {
	b := srv.backend.Load()
	if b == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			errors.New("store is still recovering from disk; retry shortly"))
		return nil, false
	}
	return *b, true
}

// concreteStore returns the single *trustmap.Store under the backend for
// the endpoints that need the store itself (WAL streaming, snapshot
// shipping). A sharded cluster has no one store — per-shard WALs carry
// independent LSN spaces — so those endpoints answer 400 on it.
func (srv *Server) concreteStore(w http.ResponseWriter) (*trustmap.Store, bool) {
	b, ok := srv.store(w)
	if !ok {
		return nil, false
	}
	s, ok := b.(shard.Storer)
	if !ok {
		writeError(w, http.StatusBadRequest,
			errors.New("a sharded cluster does not serve per-store replication endpoints (per-shard WALs have independent LSN spaces)"))
		return nil, false
	}
	return s.Store(), true
}

func (srv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	h := wire.Health{OK: true, Epoch: st.Epoch(), LSN: st.LSN(), Role: "primary", Shards: st.Shards()}
	if rep := srv.replication(); rep != nil {
		h.Role, h.ReplicaLag = "replica", rep.Lag()
	}
	writeJSON(w, http.StatusOK, h)
}

func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	sst, eng := st.EpochStats() // one pinned epoch: all counters agree
	dur := st.Durability()
	writeJSON(w, http.StatusOK, wire.StatsResponse{
		Schema: wire.SchemaVersion,
		Epoch:  sst.Epoch,
		LSN:    st.LSN(),
		Session: wire.SessionStats{
			Compiles:           sst.Compiles,
			IncrementalApplies: sst.IncrementalApplies,
			ValueOnlyUpdates:   sst.ValueOnlyUpdates,
			FullRecompiles:     sst.FullRecompiles,
			EpochsReclaimed:    sst.EpochsReclaimed,
		},
		Store: wire.StoreStats{
			Objects:     sst.Objects,
			CacheHits:   sst.CacheHits,
			CacheMisses: sst.CacheMisses,
		},
		Engine: wire.EngineStats{
			Users:            eng.Users,
			Mappings:         eng.Mappings,
			Roots:            eng.Roots,
			Reachable:        eng.Reachable,
			SCCs:             eng.SCCs,
			NontrivialSCCs:   eng.NontrivialSCCs,
			CopySteps:        eng.CopySteps,
			FloodSteps:       eng.FloodSteps,
			DistinctSupports: eng.DistinctSupports,
		},
		Durability: wire.DurabilityStats{
			Mode:             dur.Mode,
			LastLSN:          dur.LastLSN,
			DurableLSN:       dur.DurableLSN,
			SnapshotLSN:      dur.SnapshotLSN,
			WALAppends:       dur.WALAppends,
			WALSyncs:         dur.WALSyncs,
			WALBytes:         dur.WALBytes,
			Checkpoints:      dur.Checkpoints,
			RecoveredBatches: dur.RecoveredBatches,
			ReplayedOps:      dur.ReplayedOps,
			ReplayErrors:     dur.ReplayErrors,
			DiscardedBytes:   dur.DiscardedBytes,
		},
		Admission:   srv.AdmissionStats(),
		Replication: srv.replicationStats(),
		Query:       srv.QueryTotals(),
		Cluster:     st.ClusterStats(),
	})
}

func (srv *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	ck, err := st.Checkpoint()
	if err != nil {
		if errors.Is(err, trustmap.ErrNotDurable) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		srv.storeError(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, wire.CheckpointResponse{
		Epoch: ck.Epoch, LSN: ck.LSN, Snapshot: ck.Snapshot,
	})
}

func (srv *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	var req wire.ResolveRequest
	if !srv.readJSON(w, r, &req) {
		return
	}
	if len(req.Users) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("resolve: users must list at least one user to report"))
		return
	}
	res, err := st.Resolve(r.Context(), req.Beliefs)
	if err != nil {
		srv.resolveError(w, err)
		return
	}
	users, err := collectUsers(res.Lookup, req.Users)
	if err != nil {
		srv.resolveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.ResolveResponse{Epoch: res.Epoch(), LSN: st.LSN(), Users: users})
}

func (srv *Server) handleBulkResolve(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	var req wire.BulkResolveRequest
	if !srv.readJSON(w, r, &req) {
		return
	}
	if len(req.Users) == 0 || len(req.Objects) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bulk-resolve: objects and users must be non-empty"))
		return
	}
	if len(req.Objects) > srv.maxBatch {
		writeLimitError(w, srv.maxBatch,
			fmt.Errorf("bulk-resolve: %d objects exceed the batch limit of %d", len(req.Objects), srv.maxBatch))
		return
	}
	res, err := st.BulkResolve(r.Context(), req.Objects)
	if err != nil {
		srv.resolveError(w, err)
		return
	}
	out := make(map[string]map[string]wire.UserResult, len(req.Objects))
	for _, key := range res.Keys() {
		users, err := collectUsers(func(u string) ([]string, string, error) {
			return res.Lookup(u, key)
		}, req.Users)
		if err != nil {
			srv.resolveError(w, err)
			return
		}
		out[key] = users
	}
	writeJSON(w, http.StatusOK, wire.BulkResolveResponse{Epoch: res.Epoch(), LSN: st.LSN(), Objects: out})
}

func (srv *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	var req wire.MutateRequest
	if !srv.readJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("mutate: ops must be non-empty"))
		return
	}
	if len(req.Ops) > srv.maxBatch {
		writeLimitError(w, srv.maxBatch,
			fmt.Errorf("mutate: %d ops exceed the batch limit of %d", len(req.Ops), srv.maxBatch))
		return
	}
	applied, err := st.Mutate(req.Ops)
	if err != nil {
		if errors.Is(err, trustmap.ErrPoisoned) || errors.Is(err, trustmap.ErrClosed) {
			srv.storeError(w, err, http.StatusServiceUnavailable)
			return
		}
		// Ops before the failing one were applied and published: report
		// the count alongside the error so the client can reconcile.
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{
			Message: err.Error(), Applied: applied, Epoch: st.Epoch(),
		})
		return
	}
	writeJSON(w, http.StatusOK, wire.MutateResponse{Epoch: st.Epoch(), LSN: st.LSN(), Applied: applied})
}

// --- object CRUD -------------------------------------------------------

func (srv *Server) handleListObjects(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, wire.ObjectListResponse{Objects: st.Objects(), Epoch: st.Epoch(), LSN: st.LSN()})
}

func (srv *Server) handlePutObject(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	key := r.PathValue("key")
	var req wire.ObjectPutRequest
	if !srv.readJSON(w, r, &req) {
		return
	}
	if len(req.Beliefs) > srv.maxBatch {
		writeLimitError(w, srv.maxBatch,
			fmt.Errorf("put object: %d beliefs exceed the batch limit of %d", len(req.Beliefs), srv.maxBatch))
		return
	}
	if err := st.PutObject(r.Context(), key, req.Beliefs); err != nil {
		srv.storeError(w, err, http.StatusBadRequest)
		return
	}
	srv.writeObject(w, st, key)
}

func (srv *Server) handleGetObject(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	srv.writeObject(w, st, r.PathValue("key"))
}

// writeObject answers with the stored object, or 404.
func (srv *Server) writeObject(w http.ResponseWriter, st shard.Backend, key string) {
	beliefs, ok := st.Object(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", trustmap.ErrUnknownObject, key))
		return
	}
	writeJSON(w, http.StatusOK, wire.ObjectResponse{Object: key, Beliefs: beliefs, Epoch: st.Epoch(), LSN: st.LSN()})
}

func (srv *Server) handleDeleteObject(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	key := r.PathValue("key")
	ok, err := st.DeleteObject(r.Context(), key)
	if err != nil {
		srv.storeError(w, err, http.StatusBadRequest)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", trustmap.ErrUnknownObject, key))
		return
	}
	writeJSON(w, http.StatusOK, wire.DeleteResponse{Deleted: key, Epoch: st.Epoch(), LSN: st.LSN()})
}

func (srv *Server) handlePutBelief(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	key, user := r.PathValue("key"), r.PathValue("user")
	var req wire.BeliefPutRequest
	if !srv.readJSON(w, r, &req) {
		return
	}
	if err := st.PutBelief(r.Context(), user, key, req.Value); err != nil {
		srv.storeError(w, err, http.StatusBadRequest)
		return
	}
	srv.writeObject(w, st, key)
}

func (srv *Server) handleDeleteBelief(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	key, user := r.PathValue("key"), r.PathValue("user")
	ok, err := st.DeleteBelief(r.Context(), user, key)
	if err != nil {
		srv.storeError(w, err, http.StatusBadRequest)
		return
	}
	if !ok {
		// Distinguish the two 404 classes: a missing object and a missing
		// belief on an existing object.
		if _, exists := st.Object(key); !exists {
			writeError(w, http.StatusNotFound, fmt.Errorf("%w: %q", trustmap.ErrUnknownObject, key))
		} else {
			writeError(w, http.StatusNotFound, fmt.Errorf("object %q holds no belief of user %q", key, user))
		}
		return
	}
	srv.writeObject(w, st, key)
}

func (srv *Server) handleResolveObject(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	key := r.PathValue("key")
	users := splitUsers(r.URL.Query()["users"])
	if len(users) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("resolution: the users query parameter must list at least one user"))
		return
	}
	row, err := st.ResolveObject(r.Context(), key)
	if err != nil {
		srv.resolveError(w, err)
		return
	}
	out, err := collectUsers(row.Lookup, users)
	if err != nil {
		srv.resolveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, wire.ObjectResolutionResponse{Object: key, Epoch: row.Epoch(), LSN: st.LSN(), Users: out})
}

// splitUsers resolves the users query parameter: one user per repeated
// parameter (?users=a&users=b), each taken verbatim after trimming, so
// names containing commas survive exactly as the JSON endpoints accept
// them. Deliberately no comma-splitting: a convenience split would make
// a lone comma-carrying name unqueryable.
func splitUsers(values []string) []string {
	var out []string
	for _, u := range values {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// collectUsers gathers the requested users' results through one lookup
// function.
func collectUsers(lookup func(user string) ([]string, string, error), users []string) (map[string]wire.UserResult, error) {
	out := make(map[string]wire.UserResult, len(users))
	for _, u := range users {
		poss, cert, err := lookup(u)
		if err != nil {
			return nil, err
		}
		sort.Strings(poss)
		out[u] = wire.UserResult{Possible: poss, Certain: cert}
	}
	return out, nil
}

// readJSON decodes the body, tolerating unknown fields: the schema
// evolves by adding fields (see wire.SchemaVersion), so a newer client's
// extra fields must not fail an older server.
func (srv *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeLimitError(w, int(tooLarge.Limit),
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, wire.ErrorResponse{Message: err.Error()})
}

// writeLimitError answers 413 with the exceeded bound in the body, so a
// client can split its batch without guessing the server's configuration.
func writeLimitError(w http.ResponseWriter, limit int, err error) {
	writeJSON(w, http.StatusRequestEntityTooLarge, wire.ErrorResponse{Message: err.Error(), Limit: limit})
}
