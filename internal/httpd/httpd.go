// Package httpd is the trustd HTTP server core: the full wire-schema
// handler over one shard.Backend — a single shared trustmap.Store or a
// sharded cluster router, the handlers cannot tell — wrapped in the
// production resilience layer: per-class admission control and
// per-request deadline propagation. It lives under internal/ (not
// cmd/trustd) so the load harness (cmd/loadgen -self) and tests can run
// the real serving stack in-process; cmd/trustd is a thin flag-parsing
// shell around it.
//
// Request lifecycle:
//
//  1. Deadline: the request context gets a deadline from
//     Config.DefaultTimeout, overridable per request via the
//     wire.TimeoutHeader header (capped at Config.MaxTimeout). The
//     deadline rides the context through every ctx-aware Store path, so
//     an exhausted budget aborts resolution work mid-flight instead of
//     burning capacity on an answer nobody is waiting for.
//  2. Admission: the request claims a slot from its class's gate (reads
//     vs mutations, internal/admission). Overload sheds with 429 +
//     Retry-After before any body parsing or store work. /healthz and
//     /v1/stats bypass admission: probes must answer precisely when the
//     server is busiest.
//  3. Handler: reads serve lock-free from the published epoch; mutations
//     apply, log, and publish. A context deadline expiring mid-handler
//     answers 503 WITHOUT Retry-After — the client chose the budget —
//     distinctly from both the shed 429 and the recovering-store 503
//     (which carries Retry-After).
//
// All admission and deadline rejections are counted deterministically and
// surfaced in /v1/stats (wire.AdmissionStats), so overload behavior is
// testable and SLO-gateable without wall clocks.
package httpd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"trustmap"
	"trustmap/internal/admission"
	"trustmap/internal/faultinject"
	"trustmap/internal/shard"
	"trustmap/wire"
)

// maxBodyBytes bounds every request body.
const maxBodyBytes = 16 << 20

// DefaultMaxBatch caps the ops of one mutate and the objects of one
// bulk-resolve when Config.MaxBatch is zero.
const DefaultMaxBatch = 65536

// Config shapes one Server.
type Config struct {
	// MaxBatch caps the ops of one mutate and the objects of one
	// bulk-resolve; beyond it the request answers 413 (with the limit in
	// the error body) without touching the store. Zero = DefaultMaxBatch.
	MaxBatch int
	// DefaultTimeout is the per-request deadline when the client sends no
	// wire.TimeoutHeader. Zero = no server-imposed deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client's header override (and the default).
	// Zero = no cap.
	MaxTimeout time.Duration
	// Reads gates the read class: resolves, object GETs, listings.
	// A zero-valued config (MaxConcurrent <= 0) leaves reads ungated.
	Reads admission.Config
	// Mutations gates the mutate class: /v1/mutate, object PUT/DELETE,
	// checkpoints. A zero-valued config leaves mutations ungated.
	Mutations admission.Config
	// WALPoll is the GET /v1/wal long-poll interval: how often an idle
	// stream re-checks the log for new durable batches. Zero =
	// DefaultWALPoll; tests and harnesses lower it for fast convergence.
	WALPoll time.Duration
}

// Server wires one shard.Backend — a single store or a cluster router —
// into an http.Handler with admission control and deadline propagation.
// Build with New (one store) or NewBackend (any backend).
type Server struct {
	// backend is nil until the store is installed (recovery can run after
	// the listener is up); every handler gates on it.
	backend atomic.Pointer[shard.Backend]
	mux     *http.ServeMux

	maxBatch       int
	defaultTimeout time.Duration
	maxTimeout     time.Duration

	// reads / mutations are nil when the class is ungated: a nil
	// *admission.Gate admits everything and counts nothing.
	reads     *admission.Gate
	mutations *admission.Gate

	// deadlineExceeded counts requests answered 503 because their
	// propagated deadline expired (at admission or mid-handler) —
	// deterministic, surfaced in /v1/stats.
	deadlineExceeded atomic.Uint64

	// Cumulative /v1/query counters (wire.QueryTotals in /v1/stats):
	// deterministic, incremented once per served query.
	queries             atomic.Uint64
	queryRowsScanned    atomic.Uint64
	queryRowsEmitted    atomic.Uint64
	queryPredsReordered atomic.Uint64
	queryEarlyTerms     atomic.Uint64

	// repl is non-nil while this server is a replica: the live WAL tail
	// installed by SetReplication, cleared (and stopped) by promote.
	repl atomic.Pointer[Replication]

	walPoll time.Duration
}

// New builds the server over one store. st may be nil: the handler then
// answers 503 everywhere until Install is called (the recovering state).
func New(st *trustmap.Store, cfg Config) *Server {
	if st == nil {
		return NewBackend(nil, cfg)
	}
	return NewBackend(shard.NewSingleStore(st), cfg)
}

// NewBackend builds the server over any shard.Backend — the cluster
// entry point (hand it a shard.Router). b may be nil: the handler then
// answers 503 everywhere until InstallBackend is called.
func NewBackend(b shard.Backend, cfg Config) *Server {
	srv := &Server{
		mux:            http.NewServeMux(),
		maxBatch:       cfg.MaxBatch,
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     cfg.MaxTimeout,
		walPoll:        cfg.WALPoll,
	}
	if srv.maxBatch <= 0 {
		srv.maxBatch = DefaultMaxBatch
	}
	if srv.walPoll <= 0 {
		srv.walPoll = DefaultWALPoll
	}
	if cfg.Reads.MaxConcurrent > 0 {
		srv.reads = admission.New(cfg.Reads)
	}
	if cfg.Mutations.MaxConcurrent > 0 {
		srv.mutations = admission.New(cfg.Mutations)
	}
	if b != nil {
		srv.backend.Store(&b)
	}
	// Probes bypass admission (deadline still applies): health and stats
	// must answer while the gates are full, or overload becomes invisible
	// exactly when it matters.
	srv.mux.HandleFunc("GET /healthz", srv.guard(nil, srv.handleHealthz))
	srv.mux.HandleFunc("GET /v1/stats", srv.guard(nil, srv.handleStats))
	srv.mux.HandleFunc("POST /v1/resolve", srv.guard(srv.reads, srv.handleResolve))
	srv.mux.HandleFunc("POST /v1/bulk-resolve", srv.guard(srv.reads, srv.handleBulkResolve))
	srv.mux.HandleFunc("POST /v1/query", srv.guard(srv.reads, srv.handleQuery))
	// Logical mutations answer 421 on a replica (primaryOnly); checkpoint
	// stays allowed everywhere — compaction is local housekeeping.
	srv.mux.HandleFunc("POST /v1/mutate", srv.guard(srv.mutations, srv.primaryOnly(srv.handleMutate)))
	srv.mux.HandleFunc("POST /v1/admin/checkpoint", srv.guard(srv.mutations, srv.handleCheckpoint))
	srv.mux.HandleFunc("POST /v1/admin/promote", srv.guard(srv.mutations, srv.handlePromote))
	srv.mux.HandleFunc("GET /v1/objects", srv.guard(srv.reads, srv.handleListObjects))
	srv.mux.HandleFunc("PUT /v1/objects/{key}", srv.guard(srv.mutations, srv.primaryOnly(srv.handlePutObject)))
	srv.mux.HandleFunc("GET /v1/objects/{key}", srv.guard(srv.reads, srv.handleGetObject))
	srv.mux.HandleFunc("DELETE /v1/objects/{key}", srv.guard(srv.mutations, srv.primaryOnly(srv.handleDeleteObject)))
	srv.mux.HandleFunc("GET /v1/objects/{key}/resolution", srv.guard(srv.reads, srv.handleResolveObject))
	srv.mux.HandleFunc("PUT /v1/objects/{key}/beliefs/{user}", srv.guard(srv.mutations, srv.primaryOnly(srv.handlePutBelief)))
	srv.mux.HandleFunc("DELETE /v1/objects/{key}/beliefs/{user}", srv.guard(srv.mutations, srv.primaryOnly(srv.handleDeleteBelief)))
	// Replication infrastructure. /v1/snapshot is a one-shot blob read;
	// /v1/wal is a long-lived stream registered OUTSIDE the guard — a
	// per-request deadline would cut a healthy tail mid-flight, and like
	// the probes it must answer while the admission gates are full.
	srv.mux.HandleFunc("GET /v1/snapshot", srv.guard(nil, srv.handleSnapshot))
	srv.mux.HandleFunc("GET /v1/wal", srv.handleWALStream)
	return srv
}

// Install publishes the recovered store: the 503 gate opens atomically.
func (srv *Server) Install(st *trustmap.Store) { srv.InstallBackend(shard.NewSingleStore(st)) }

// InstallBackend publishes any recovered backend (see Install).
func (srv *Server) InstallBackend(b shard.Backend) { srv.backend.Store(&b) }

// ServeHTTP dispatches through the server's route table.
func (srv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { srv.mux.ServeHTTP(w, r) }

// guard is the resilience middleware: propagate the request deadline into
// the context, then claim an admission slot from g (nil = ungated). Sheds
// answer 429 + Retry-After before any body parsing or store work; a
// deadline that dies in the queue answers 503 without Retry-After.
func (srv *Server) guard(g *admission.Gate, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Every response from a replica carries its staleness, so any
		// reader can bound how far behind the primary its answer is.
		if rep := srv.replication(); rep != nil {
			w.Header().Set(wire.StalenessHeader, strconv.FormatUint(rep.Lag(), 10))
		}
		if d := srv.timeoutFor(r); d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := g.Acquire(r.Context())
		if err != nil {
			var se *admission.ShedError
			if errors.As(err, &se) {
				secs := int(se.RetryAfter / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("overloaded: request shed at admission (%s); retry after the indicated back-off", se.Reason))
				return
			}
			srv.deadline503(w)
			return
		}
		defer release()
		// Fault point: synthetic service time (or an injected failure)
		// while the admission slot is held — the load harness's overload
		// lever. Unarmed, this is one atomic load.
		if err := faultinject.Fire(faultinject.HandlerServe); err != nil {
			srv.storeError(w, err, http.StatusInternalServerError)
			return
		}
		next(w, r)
	}
}

// timeoutFor resolves one request's deadline budget: the client's
// wire.TimeoutHeader (integer milliseconds) when present and positive,
// else the server default; either capped at MaxTimeout.
func (srv *Server) timeoutFor(r *http.Request) time.Duration {
	d := srv.defaultTimeout
	if h := r.Header.Get(wire.TimeoutHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if srv.maxTimeout > 0 && (d <= 0 || d > srv.maxTimeout) {
		d = srv.maxTimeout
	}
	return d
}

// deadline503 answers a request whose propagated deadline expired —
// queued or mid-handler. Deliberately NO Retry-After: the budget was the
// client's choice, and unlike a shed this is not the server asking for
// back-off. Counted in AdmissionStats.DeadlineExceeded.
func (srv *Server) deadline503(w http.ResponseWriter) {
	srv.deadlineExceeded.Add(1)
	writeError(w, http.StatusServiceUnavailable,
		errors.New("request deadline exceeded before completion"))
}

// storeError maps one store-operation failure: an expired context is the
// deadline 503, an unusable store (poisoned/closed) a Retry-After 503,
// anything else the handler's fallback status.
func (srv *Server) storeError(w http.ResponseWriter, err error, fallback int) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		srv.deadline503(w)
	case errors.Is(err, trustmap.ErrPoisoned) || errors.Is(err, trustmap.ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, fallback, err)
	}
}

// resolveError maps resolution errors onto statuses: unknown names are
// 404, an expired deadline is the 503, everything else is an invalid
// request.
func (srv *Server) resolveError(w http.ResponseWriter, err error) {
	if errors.Is(err, trustmap.ErrUnknownUser) || errors.Is(err, trustmap.ErrUnknownObject) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	srv.storeError(w, err, http.StatusBadRequest)
}

// AdmissionStats snapshots the resilience counters: per-class admission
// plus the deadline-rejection count. Deterministic — safe to gate tests
// and SLO checks on.
func (srv *Server) AdmissionStats() wire.AdmissionStats {
	return wire.AdmissionStats{
		Enabled:          srv.reads != nil || srv.mutations != nil,
		Reads:            classStats(srv.reads.Stats()),
		Mutations:        classStats(srv.mutations.Stats()),
		DeadlineExceeded: srv.deadlineExceeded.Load(),
	}
}

func classStats(s admission.Stats) wire.AdmissionClassStats {
	return wire.AdmissionClassStats{
		Admitted:      s.Admitted,
		Queued:        s.Queued,
		Shed:          s.Shed,
		Canceled:      s.Canceled,
		MaxQueueDepth: s.MaxQueueDepth,
		InFlight:      s.InFlight,
		QueueDepth:    s.QueueDepth,
	}
}
