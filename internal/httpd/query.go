package httpd

// POST /v1/query: the streaming relational query endpoint. Admission
// treats it as a read (it serves from pinned epochs and mutates
// nothing), the propagated request deadline rides the context into
// every operator pull, and the cumulative counters behind the query
// section of /v1/stats are kept here — the backend stays stateless.

import (
	"errors"
	"net/http"

	"trustmap/internal/query"
	"trustmap/wire"
)

func (srv *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	st, ok := srv.store(w)
	if !ok {
		return
	}
	var q wire.Query
	if !srv.readJSON(w, r, &q) {
		return
	}
	res, err := st.Query(r.Context(), q)
	if err != nil {
		if errors.Is(err, query.ErrBadQuery) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		srv.storeError(w, err, http.StatusBadRequest)
		return
	}
	srv.queries.Add(1)
	srv.queryRowsScanned.Add(res.Stats.RowsScanned)
	srv.queryRowsEmitted.Add(res.Stats.RowsEmitted)
	srv.queryPredsReordered.Add(uint64(res.Stats.PredicatesReordered))
	if res.Stats.EarlyTerminated {
		srv.queryEarlyTerms.Add(1)
	}
	resp := wire.QueryResponse{
		Epoch:   res.Epoch,
		LSN:     st.LSN(),
		Columns: res.Columns,
		Rows:    res.Rows,
		Stats:   res.Stats,
	}
	// Cap the response at the batch limit like every other batched
	// surface — visibly: Truncated is set and Stats.RowsEmitted still
	// counts the full result, so nothing silently disappears.
	if len(resp.Rows) > srv.maxBatch {
		resp.Rows = resp.Rows[:srv.maxBatch]
		resp.Truncated = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// QueryTotals snapshots the cumulative /v1/query counters: the query
// section of /v1/stats.
func (srv *Server) QueryTotals() wire.QueryTotals {
	return wire.QueryTotals{
		Queries:             srv.queries.Load(),
		RowsScanned:         srv.queryRowsScanned.Load(),
		RowsEmitted:         srv.queryRowsEmitted.Load(),
		PredicatesReordered: srv.queryPredsReordered.Load(),
		EarlyTerminations:   srv.queryEarlyTerms.Load(),
	}
}
