package httpd_test

// Handler-level tests over the exported httpd API: the wire-schema
// endpoints, error-status mapping, the recovery 503 gate, and the
// durable-store paths. Admission/deadline internals are covered by the
// in-package resilience tests.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"trustmap"
	"trustmap/internal/httpd"
	"trustmap/wire"
)

// testStore builds the small demo community the handler tests share.
func testStore(t *testing.T) *trustmap.Store {
	t.Helper()
	n := trustmap.New()
	n.AddTrust("alice", "bob", 100)
	n.AddTrust("alice", "carol", 50)
	n.SetBelief("bob", "fish")
	n.SetBelief("carol", "knot")
	st, err := n.NewStore(trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: invalid JSON response %q: %v", path, rec.Body.String(), err)
	}
	return rec, out
}

func TestHandlerResolveAndStats(t *testing.T) {
	h := httpd.New(testStore(t), httpd.Config{})

	rec, out := postJSON(t, h, "/v1/resolve", wire.ResolveRequest{Users: []string{"alice"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("resolve: status %d, body %v", rec.Code, out)
	}
	users := out["users"].(map[string]any)
	alice := users["alice"].(map[string]any)
	if got := alice["certain"]; got != "fish" {
		t.Fatalf("certain(alice) = %v, want fish", got)
	}

	// Per-object override beats the network default.
	_, out = postJSON(t, h, "/v1/resolve", wire.ResolveRequest{
		Beliefs: map[string]string{"bob": "cow"},
		Users:   []string{"alice"},
	})
	alice = out["users"].(map[string]any)["alice"].(map[string]any)
	if got := alice["certain"]; got != "cow" {
		t.Fatalf("certain(alice) with override = %v, want cow", got)
	}

	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "\"compiles\":1") {
		t.Fatalf("stats: status %d, body %s", rec.Code, rec.Body.String())
	}
	// The v3 schema always carries the admission section, disabled here.
	var stats wire.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Enabled {
		t.Fatalf("admission reported enabled on an ungated server: %+v", stats.Admission)
	}
}

func TestHandlerBulkResolve(t *testing.T) {
	h := httpd.New(testStore(t), httpd.Config{})
	rec, out := postJSON(t, h, "/v1/bulk-resolve", wire.BulkResolveRequest{
		Objects: map[string]map[string]string{
			"o1": {"bob": "fish", "carol": "fish"},
			"o2": {"bob": "v1", "carol": "v2"},
		},
		Users: []string{"alice"},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("bulk-resolve: status %d, body %v", rec.Code, out)
	}
	objs := out["objects"].(map[string]any)
	o1 := objs["o1"].(map[string]any)["alice"].(map[string]any)
	if got := o1["certain"]; got != "fish" {
		t.Fatalf("o1 certain(alice) = %v, want fish", got)
	}
	o2 := objs["o2"].(map[string]any)["alice"].(map[string]any)
	if got := o2["certain"]; got != "v1" {
		t.Fatalf("o2 certain(alice) = %v, want v1 (bob preferred)", got)
	}
}

// TestHandlerObjectCRUD drives the /v1/objects endpoints end to end at
// the handler level: put, get, list, per-belief put/delete, resolution,
// delete.
func TestHandlerObjectCRUD(t *testing.T) {
	h := httpd.New(testStore(t), httpd.Config{})
	do := func(method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			raw, _ := json.Marshal(body)
			rd = bytes.NewReader(raw)
		} else {
			rd = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var out map[string]any
		if len(rec.Body.Bytes()) > 0 {
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("%s %s: invalid JSON %q: %v", method, path, rec.Body.String(), err)
			}
		}
		return rec, out
	}

	rec, out := do("PUT", "/v1/objects/o1", wire.ObjectPutRequest{Beliefs: map[string]string{"bob": "cow"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("put object: status %d, body %v", rec.Code, out)
	}
	rec, out = do("GET", "/v1/objects/o1", nil)
	if rec.Code != http.StatusOK || out["beliefs"].(map[string]any)["bob"] != "cow" {
		t.Fatalf("get object: status %d, body %v", rec.Code, out)
	}
	rec, out = do("GET", "/v1/objects", nil)
	if rec.Code != http.StatusOK || fmt.Sprint(out["objects"]) != "[o1]" {
		t.Fatalf("list objects: status %d, body %v", rec.Code, out)
	}
	// bob says cow for o1, so alice follows.
	rec, out = do("GET", "/v1/objects/o1/resolution?users=alice", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("resolution: status %d, body %v", rec.Code, out)
	}
	if got := out["users"].(map[string]any)["alice"].(map[string]any)["certain"]; got != "cow" {
		t.Fatalf("resolution certain(alice) = %v, want cow", got)
	}
	// Revoke bob's o1 belief: back to the network default fish.
	rec, _ = do("DELETE", "/v1/objects/o1/beliefs/bob", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete belief: status %d", rec.Code)
	}
	_, out = do("GET", "/v1/objects/o1/resolution?users=alice", nil)
	if got := out["users"].(map[string]any)["alice"].(map[string]any)["certain"]; got != "fish" {
		t.Fatalf("after belief delete: certain(alice) = %v, want fish", got)
	}
	// Belief put creates objects implicitly.
	rec, _ = do("PUT", "/v1/objects/o2/beliefs/carol", wire.BeliefPutRequest{Value: "jar"})
	if rec.Code != http.StatusOK {
		t.Fatalf("put belief: status %d", rec.Code)
	}
	rec, out = do("DELETE", "/v1/objects/o2", nil)
	if rec.Code != http.StatusOK || out["deleted"] != "o2" {
		t.Fatalf("delete object: status %d, body %v", rec.Code, out)
	}
	// Users are one query parameter each, taken verbatim: names with
	// commas (legal everywhere else) stay queryable.
	rec, _ = do("PUT", "/v1/objects/o1/beliefs/"+url.PathEscape("Doe, J"), wire.BeliefPutRequest{Value: "cow"})
	if rec.Code != http.StatusOK {
		t.Fatalf("put comma-name belief: status %d", rec.Code)
	}
	rec, out = do("GET", "/v1/objects/o1/resolution?"+url.Values{"users": {"Doe, J", "alice"}}.Encode(), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("comma-name resolution: status %d, body %v", rec.Code, out)
	}
	if got := out["users"].(map[string]any)["Doe, J"].(map[string]any)["certain"]; got != "cow" {
		t.Fatalf("comma-name certain = %v, want cow", got)
	}
}

// TestHandlerErrors asserts the intended status code for every error
// class: malformed bodies and invalid requests 400, unknown users and
// objects 404, wrong methods 405, oversized batches 413 (carrying the
// configured bound in the body).
func TestHandlerErrors(t *testing.T) {
	h := httpd.New(testStore(t), httpd.Config{MaxBatch: 3}) // tiny limit to exercise 413

	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   string // raw JSON ("" = empty body)
		want   int
	}{
		{"resolve: no users", "POST", "/v1/resolve", `{}`, 400},
		{"resolve: malformed JSON", "POST", "/v1/resolve", `{"users": [`, 400},
		// Unknown fields are tolerated, not rejected: the schema grows by
		// adding fields, so newer clients must keep working (see
		// wire.SchemaVersion).
		{"resolve: unknown field", "POST", "/v1/resolve", `{"users": ["alice"], "x": 1}`, 200},
		{"resolve: unknown user", "POST", "/v1/resolve", `{"users": ["ghost"]}`, 404},
		{"resolve: unknown belief user", "POST", "/v1/resolve", `{"users": ["alice"], "beliefs": {"ghost": "v"}}`, 404},
		{"bulk-resolve: no objects", "POST", "/v1/bulk-resolve", `{"users": ["alice"]}`, 400},
		{"bulk-resolve: oversized batch", "POST", "/v1/bulk-resolve",
			`{"users": ["alice"], "objects": {"a": {}, "b": {}, "c": {}, "d": {}}}`, 413},
		{"mutate: no ops", "POST", "/v1/mutate", `{"ops": []}`, 400},
		{"mutate: unknown op", "POST", "/v1/mutate", `{"ops": [{"op": "frobnicate"}]}`, 400},
		{"mutate: oversized batch", "POST", "/v1/mutate",
			`{"ops": [{"op": "set-trust"}, {"op": "set-trust"}, {"op": "set-trust"}, {"op": "set-trust"}]}`, 413},
		{"object: unknown get", "GET", "/v1/objects/ghost", "", 404},
		{"object: unknown delete", "DELETE", "/v1/objects/ghost", "", 404},
		{"object: unknown belief delete", "DELETE", "/v1/objects/ghost/beliefs/bob", "", 404},
		{"object: malformed put", "PUT", "/v1/objects/o1", `{"beliefs": 7}`, 400},
		{"object: empty value", "PUT", "/v1/objects/o1", `{"beliefs": {"bob": ""}}`, 400},
		{"object: oversized beliefs", "PUT", "/v1/objects/o1",
			`{"beliefs": {"a": "v", "b": "v", "c": "v", "d": "v"}}`, 413},
		{"resolution: unknown object", "GET", "/v1/objects/ghost/resolution?users=alice", "", 404},
		{"resolution: no users", "GET", "/v1/objects/ghost/resolution", "", 400},
		{"wrong method: mutate", "GET", "/v1/mutate", "", 405},
		{"wrong method: objects", "POST", "/v1/objects", "", 405},
	} {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, rec.Code, tc.want, rec.Body.String())
			continue
		}
		// Every handler-emitted error carries a JSON error body (the mux's
		// own 405s are plain text).
		if tc.want >= 400 && tc.want != 405 && !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("%s: error body missing: %s", tc.name, rec.Body.String())
		}
		// A 413 names the bound it enforced, so clients can split batches
		// without guessing server configuration.
		if tc.want == 413 {
			var er wire.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Limit != 3 {
				t.Errorf("%s: 413 limit = %d (err %v), want 3 (body %s)", tc.name, er.Limit, err, rec.Body.String())
			}
		}
	}
}

// TestRecoveryGate503 checks the not-yet-installed handler: every
// endpoint answers 503 with a Retry-After header until the store is
// installed, then serves normally.
func TestRecoveryGate503(t *testing.T) {
	h := httpd.New(nil, httpd.Config{})
	for _, probe := range []struct{ method, path, body string }{
		{"GET", "/healthz", ""},
		{"GET", "/v1/stats", ""},
		{"POST", "/v1/resolve", `{"users":["alice"]}`},
		{"POST", "/v1/mutate", `{"ops":[{"op":"set-trust","truster":"a","trusted":"b","priority":1}]}`},
		{"POST", "/v1/admin/checkpoint", ""},
		{"GET", "/v1/objects", ""},
	} {
		req := httptest.NewRequest(probe.method, probe.path, strings.NewReader(probe.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s while recovering: status %d, want 503", probe.method, probe.path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s %s while recovering: no Retry-After header", probe.method, probe.path)
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Errorf("%s %s while recovering: no JSON error body: %s", probe.method, probe.path, rec.Body.String())
		}
	}

	h.Install(testStore(t))
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after install: status %d, want 200", rec.Code)
	}
}

// TestDurableServer exercises the durable path end to end over HTTP:
// mutations carry rising LSNs, /v1/stats reports the durability section,
// /v1/admin/checkpoint compacts, and a reopened store serves the same
// resolutions with the recovery counters visible.
func TestDurableServer(t *testing.T) {
	dir := t.TempDir()
	st, err := trustmap.OpenStore(dir, trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	h := httpd.New(st, httpd.Config{})

	rec, out := postJSON(t, h, "/v1/mutate", wire.MutateRequest{Ops: []wire.Op{
		{Op: wire.OpSetTrust, Truster: "alice", Trusted: "bob", Priority: 100},
		{Op: wire.OpSetBelief, User: "bob", Value: "fish"},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("mutate: status %d body %v", rec.Code, out)
	}
	if lsn := out["lsn"].(float64); lsn != 1 {
		t.Errorf("mutate lsn = %v, want 1 (one batch)", lsn)
	}

	req := httptest.NewRequest("PUT", "/v1/objects/o1", strings.NewReader(`{"beliefs":{"bob":"cow"}}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("put object: status %d body %s", rec.Code, rec.Body.String())
	}
	var obj wire.ObjectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj.LSN != 2 {
		t.Errorf("put object lsn = %d, want 2", obj.LSN)
	}

	// Stats carry the schema version and the durability section.
	req = httptest.NewRequest("GET", "/v1/stats", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var stats wire.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Schema != wire.SchemaVersion {
		t.Errorf("stats schema = %d, want %d", stats.Schema, wire.SchemaVersion)
	}
	if stats.Durability.Mode != "batch" || stats.Durability.LastLSN != 2 {
		t.Errorf("stats durability = %+v, want mode batch lsn 2", stats.Durability)
	}

	// Checkpoint over HTTP: watermark at the current LSN.
	req = httptest.NewRequest("POST", "/v1/admin/checkpoint", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: status %d body %s", rec.Code, rec.Body.String())
	}
	var ck wire.CheckpointResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ck); err != nil {
		t.Fatal(err)
	}
	if ck.LSN != 2 || ck.Snapshot == "" {
		t.Errorf("checkpoint = %+v, want lsn 2 and a snapshot name", ck)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the recovered store serves identical state.
	st2, err := trustmap.OpenStore(dir, trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	h2 := httpd.New(st2, httpd.Config{})
	req = httptest.NewRequest("GET", "/v1/objects/o1/resolution?users=alice", nil)
	rec = httptest.NewRecorder()
	h2.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered resolution: status %d body %s", rec.Code, rec.Body.String())
	}
	var res wire.ObjectResolutionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Users["alice"].Certain; got != "cow" {
		t.Errorf("recovered certain(alice, o1) = %q, want cow", got)
	}
	if res.LSN != 2 {
		t.Errorf("recovered lsn = %d, want 2", res.LSN)
	}

	// In-memory stores reject checkpoints with a clear 400.
	h3 := httpd.New(testStore(t), httpd.Config{})
	req = httptest.NewRequest("POST", "/v1/admin/checkpoint", nil)
	rec = httptest.NewRecorder()
	h3.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("in-memory checkpoint: status %d, want 400 (body %s)", rec.Code, rec.Body.String())
	}
}
