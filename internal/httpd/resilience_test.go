package httpd

// In-package tests for the resilience layer: admission shedding (429 +
// Retry-After on every shed), deterministic counter conservation under
// racing readers and a writer, deadline propagation (the 503 that carries
// no Retry-After), and the timeout-resolution rules. These reach the
// unexported gates to occupy slots deterministically.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustmap"
	"trustmap/internal/admission"
	"trustmap/wire"
)

func gateStore(t *testing.T) *trustmap.Store {
	t.Helper()
	n := trustmap.New()
	n.AddTrust("alice", "bob", 100)
	n.SetBelief("bob", "fish")
	st, err := n.NewStore(trustmap.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func get(h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestShedAnswers429WithRetryAfter: with the single read slot occupied
// and no queue, a read sheds at admission — 429, Retry-After, JSON error
// body, counted — while /v1/stats and /healthz still answer (probes
// bypass admission). Releasing the slot restores service.
func TestShedAnswers429WithRetryAfter(t *testing.T) {
	srv := New(gateStore(t), Config{Reads: admission.Config{MaxConcurrent: 1}})

	release, err := srv.reads.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	rec := get(srv, "/v1/objects", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), `"error"`) {
		t.Fatalf("shed response not a JSON error: %s", rec.Body.String())
	}

	// Probes answer while the gate is full: overload must stay observable.
	if rec := get(srv, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz under full gate: %d, want 200", rec.Code)
	}
	rec = get(srv, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats under full gate: %d, want 200", rec.Code)
	}
	var stats wire.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Admission.Enabled || stats.Admission.Reads.Shed != 1 || stats.Admission.Reads.InFlight != 1 {
		t.Fatalf("admission stats = %+v, want enabled, 1 shed, 1 in flight", stats.Admission)
	}

	release()
	if rec := get(srv, "/v1/objects", nil); rec.Code != http.StatusOK {
		t.Fatalf("after release: %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
}

// TestAdmissionCountersUnderRace hammers a 1-slot read gate with
// concurrent readers while one writer mutates through its own 1-slot
// gate, and checks the deterministic bookkeeping: every response is a 200
// or a Retry-After-carrying 429, and the gate counters match the observed
// split exactly. Run under -race this doubles as the data-race check on
// the admission path.
func TestAdmissionCountersUnderRace(t *testing.T) {
	srv := New(gateStore(t), Config{
		Reads: admission.Config{MaxConcurrent: 1},
		// The lone writer never contends with itself: a deep queue and a
		// generous wait mean every mutation must be admitted.
		Mutations: admission.Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second},
	})

	const (
		readers        = 8
		readsPerWorker = 25
		writes         = 20
	)
	var ok200, shed429 atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerWorker; i++ {
				rec := get(srv, "/v1/objects", nil)
				switch rec.Code {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						t.Error("shed without Retry-After")
						return
					}
				default:
					t.Errorf("reader got status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			req := httptest.NewRequest("PUT", "/v1/objects/w/beliefs/bob",
				strings.NewReader(`{"value":"cow"}`))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("writer got status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	wg.Wait()

	total := ok200.Load() + shed429.Load()
	if total != readers*readsPerWorker {
		t.Fatalf("accounted responses = %d, want %d", total, readers*readsPerWorker)
	}
	rs := srv.reads.Stats()
	if rs.Admitted != ok200.Load() || rs.Shed != shed429.Load() || rs.Canceled != 0 {
		t.Fatalf("read gate stats %+v disagree with observed 200s=%d 429s=%d",
			rs, ok200.Load(), shed429.Load())
	}
	if rs.Admitted+rs.Shed != readers*readsPerWorker {
		t.Fatalf("conservation violated: admitted %d + shed %d != %d",
			rs.Admitted, rs.Shed, readers*readsPerWorker)
	}
	if rs.InFlight != 0 || rs.QueueDepth != 0 {
		t.Fatalf("gate not drained: %+v", rs)
	}
	ms := srv.mutations.Stats()
	if ms.Admitted != writes || ms.Shed != 0 {
		t.Fatalf("mutation gate stats = %+v, want exactly %d admitted, 0 shed", ms, writes)
	}
}

// TestDeadlineDiesInQueue: a request whose client-chosen budget expires
// while it waits for a slot answers 503 WITHOUT Retry-After (distinct
// from both the shed 429 and the recovering 503), and lands in the
// DeadlineExceeded counter, not Shed.
func TestDeadlineDiesInQueue(t *testing.T) {
	srv := New(gateStore(t), Config{
		Reads: admission.Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Minute},
	})
	release, err := srv.reads.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := get(srv, "/v1/objects", map[string]string{wire.TimeoutHeader: "1"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline status = %d, want 503 (body %s)", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Fatalf("deadline 503 carries Retry-After %q; the budget was the client's choice", ra)
	}
	st := srv.AdmissionStats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
	if st.Reads.Shed != 0 || st.Reads.Canceled != 1 {
		t.Fatalf("read gate stats = %+v, want the dead request canceled, not shed", st.Reads)
	}
}

// TestTimeoutResolution pins the budget rules: server default, client
// header override, and the MaxTimeout cap over both.
func TestTimeoutResolution(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cfg    Config
		header string
		want   time.Duration
	}{
		{"no default, no header", Config{}, "", 0},
		{"server default", Config{DefaultTimeout: 2 * time.Second}, "", 2 * time.Second},
		{"header overrides default", Config{DefaultTimeout: 2 * time.Second}, "250", 250 * time.Millisecond},
		{"cap bounds header", Config{MaxTimeout: time.Second}, "5000", time.Second},
		{"cap bounds default", Config{DefaultTimeout: 5 * time.Second, MaxTimeout: time.Second}, "", time.Second},
		{"cap applies without budget", Config{MaxTimeout: time.Second}, "", time.Second},
		{"garbage header ignored", Config{DefaultTimeout: time.Second}, "soon", time.Second},
		{"nonpositive header ignored", Config{DefaultTimeout: time.Second}, "-5", time.Second},
	} {
		srv := New(nil, tc.cfg)
		req := httptest.NewRequest("GET", "/healthz", nil)
		if tc.header != "" {
			req.Header.Set(wire.TimeoutHeader, tc.header)
		}
		if got := srv.timeoutFor(req); got != tc.want {
			t.Errorf("%s: timeoutFor = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestGuardSetsContextDeadline: the middleware installs the resolved
// budget as a real context deadline visible to the handler.
func TestGuardSetsContextDeadline(t *testing.T) {
	srv := New(gateStore(t), Config{DefaultTimeout: time.Minute})
	var hadDeadline bool
	h := srv.guard(nil, func(w http.ResponseWriter, r *http.Request) {
		_, hadDeadline = r.Context().Deadline()
		w.WriteHeader(http.StatusNoContent)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/healthz", nil))
	if !hadDeadline {
		t.Fatal("handler context carries no deadline despite DefaultTimeout")
	}
}
