// Package workload generates the trust networks and object sets used by
// the paper's experimental evaluation (Section 5 and Appendix B.5):
//
//   - chains of disconnected oscillators (the synthetic "many cycles" data
//     set of Figures 5 and 8a),
//   - scale-free networks grown by preferential attachment, this
//     repository's substitute for the paper's 270k-domain web crawl
//     (Figure 8b),
//   - the nested-SCC family that drives Algorithm 1 to its quadratic worst
//     case (Figure 14a / Figure 15),
//   - the 7-user, 12-mapping network of Figure 19 with bulk object sets
//     where a configurable fraction of objects is conflicting (Figure 8c).
//
// All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"trustmap/internal/tn"
)

// OscillatorClusters builds k disconnected copies of the Figure 4b
// oscillator: 4 users and 4 mappings each, with two explicit beliefs per
// cluster ("one out of two users has an explicit belief"). Size (|U|+|E|)
// is 8k.
func OscillatorClusters(k int) *tn.Network {
	n := tn.New()
	for i := 0; i < k; i++ {
		x1 := n.AddUser(fmt.Sprintf("c%d_x1", i))
		x2 := n.AddUser(fmt.Sprintf("c%d_x2", i))
		x3 := n.AddUser(fmt.Sprintf("c%d_x3", i))
		x4 := n.AddUser(fmt.Sprintf("c%d_x4", i))
		n.AddMapping(x2, x1, 100)
		n.AddMapping(x3, x1, 50)
		n.AddMapping(x1, x2, 80)
		n.AddMapping(x4, x2, 40)
		n.SetExplicit(x3, "v")
		n.SetExplicit(x4, "w")
	}
	return n
}

// PowerLaw grows a scale-free trust network by preferential attachment
// (Barabási–Albert style): node t attaches edgesPer incoming trust
// mappings whose parents are sampled proportionally to degree. Priorities
// are random over 100 levels; beliefFrac of the users (always including
// the first) get explicit beliefs drawn from domain. This reproduces the
// power-law degree shape of the paper's web-crawl data set.
func PowerLaw(rng *rand.Rand, users, edgesPer int, beliefFrac float64, domain []tn.Value) *tn.Network {
	return powerLaw(rng, users, edgesPer, 100, beliefFrac, domain)
}

// PowerLawTiered is PowerLaw with priorities drawn from a small number of
// tiers, the shape of systems that rank trust coarsely ("trusted",
// "normal", "fallback") rather than on a fine scale. Ties are frequent, so
// resolution floods strongly connected regions and unions many roots: the
// support-rich regime of bulk resolution, where an object's possible
// values aggregate large root sets instead of following one preferred
// chain.
func PowerLawTiered(rng *rand.Rand, users, edgesPer, tiers int, beliefFrac float64, domain []tn.Value) *tn.Network {
	return powerLaw(rng, users, edgesPer, tiers, beliefFrac, domain)
}

func powerLaw(rng *rand.Rand, users, edgesPer, prioLevels int, beliefFrac float64, domain []tn.Value) *tn.Network {
	n := tn.New()
	if users == 0 {
		return n
	}
	var endpoints []int // degree-weighted sampling pool
	for i := 0; i < users; i++ {
		x := n.AddUser(fmt.Sprintf("site%d", i))
		k := edgesPer
		if k > i {
			k = i
		}
		chosen := map[int]bool{}
		for e := 0; e < k; e++ {
			var z int
			for tries := 0; ; tries++ {
				if len(endpoints) == 0 || tries > 10 {
					z = rng.Intn(i)
				} else {
					z = endpoints[rng.Intn(len(endpoints))]
				}
				if z != x && !chosen[z] {
					break
				}
			}
			chosen[z] = true
			n.AddMapping(z, x, 1+rng.Intn(prioLevels))
			endpoints = append(endpoints, z, x)
		}
		if i == 0 || rng.Float64() < beliefFrac {
			n.SetExplicit(x, domain[rng.Intn(len(domain))])
		}
	}
	return n
}

// NestedSCC builds the quadratic worst-case family of Figure 14a: a chain
// of k oscillator stages where stage i can only be resolved after stage
// i-1, separated by preferred-edge relays, so that Algorithm 1 recomputes
// the strongly connected components of the remaining ~4(k-i) open nodes at
// every stage: Θ(k²) total work. Size is linear in k (2 + 4k users,
// 2 + 6(k-1)+... ≈ 6k mappings).
//
// The exact topology of the paper's Figure 14a is only sketched in the
// text; this family preserves its defining property - nested strongly
// connected components forcing repeated Tarjan passes - which Figure 15
// measures.
func NestedSCC(k int) *tn.Network {
	n := tn.New()
	rv := n.AddUser("root_v")
	rw := n.AddUser("root_w")
	n.SetExplicit(rv, "v")
	n.SetExplicit(rw, "w")
	prevD, prevE := rv, rw
	for i := 0; i < k; i++ {
		a := n.AddUser(fmt.Sprintf("s%d_a", i))
		b := n.AddUser(fmt.Sprintf("s%d_b", i))
		d := n.AddUser(fmt.Sprintf("s%d_d", i))
		e := n.AddUser(fmt.Sprintf("s%d_e", i))
		// Oscillator core: a and b prefer each other.
		n.AddMapping(b, a, 2)
		n.AddMapping(prevD, a, 1)
		n.AddMapping(a, b, 2)
		n.AddMapping(prevE, b, 1)
		// Preferred relays feeding the next stage.
		n.AddMapping(a, d, 1)
		n.AddMapping(b, e, 1)
		prevD, prevE = d, e
	}
	return n
}

// Fig19 builds the non-binary 7-user, 12-mapping network used for the bulk
// experiments of Figure 8c (Figure 19), with x6 and x7 as the two users
// with explicit beliefs. The figure gives the size and shape of the
// network; the exact priorities are reconstructed to exercise both a
// preferred-edge cascade and a strongly connected component.
func Fig19() (*tn.Network, []int) {
	n := tn.New()
	id := make([]int, 8) // 1-based
	for i := 1; i <= 7; i++ {
		id[i] = n.AddUser(fmt.Sprintf("x%d", i))
	}
	m := func(parent, child, prio int) { n.AddMapping(id[parent], id[child], prio) }
	m(6, 4, 2)
	m(7, 4, 1)
	m(7, 5, 2)
	m(6, 5, 1)
	m(4, 1, 3)
	m(2, 1, 2)
	m(5, 1, 1)
	m(1, 2, 1)
	m(3, 2, 2)
	m(5, 3, 2)
	m(2, 3, 1)
	m(4, 3, 3)
	n.SetExplicit(id[6], "seed")
	n.SetExplicit(id[7], "seed")
	return n, []int{id[6], id[7]}
}

// BulkObjects generates explicit beliefs for numObjects objects over the
// given root users: each object's roots agree or conflict with probability
// 1/2, as in the Figure 8c experiment. Generation draws from rng in object
// index order and never iterates a map, so the result is identical across
// runs for a given seed; iterate it via ObjectKeys for deterministic
// consumption.
func BulkObjects(rng *rand.Rand, roots []int, numObjects int) map[string]map[int]tn.Value {
	out := make(map[string]map[int]tn.Value, numObjects)
	for i := 0; i < numObjects; i++ {
		k := fmt.Sprintf("obj%d", i)
		bs := make(map[int]tn.Value, len(roots))
		if rng.Float64() < 0.5 {
			// Agreement: all roots share one value.
			v := tn.Value(fmt.Sprintf("v%d", rng.Intn(4)))
			for _, r := range roots {
				bs[r] = v
			}
		} else {
			// Conflict: distinct values per root.
			for j, r := range roots {
				bs[r] = tn.Value(fmt.Sprintf("v%d_%d", rng.Intn(4), j))
			}
		}
		out[k] = bs
	}
	return out
}

// ObjectKeys returns the keys of a BulkObjects result, sorted. Consumers
// that process objects one at a time (or stop early on a budget) must
// iterate in this order to stay deterministic across runs: ranging over
// the map directly visits objects in a different order every run.
func ObjectKeys(objs map[string]map[int]tn.Value) []string {
	keys := make([]string, 0, len(objs))
	for k := range objs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TrustToggle names one facade-level trust edge for the mixed serving
// workload; applying a toggle removes the edge when present and re-adds
// it at Priority otherwise, so a script of toggles keeps the network
// oscillating around its initial shape instead of drifting.
type TrustToggle struct {
	Truster  string
	Trusted  string
	Priority int
}

// MixedOp is one operation of a mixed read/write serving script: a read
// when Beliefs is non-nil (resolve one object whose root beliefs are
// Beliefs), otherwise a write batch of trust toggles applied atomically.
type MixedOp struct {
	Beliefs map[string]string
	Toggles []TrustToggle
}

// MixedServe builds a deterministic mixed serving script of numOps
// operations: every writeEvery-th op is a write batch of batchSize
// toggles drawn from edges; the rest are reads. Reads draw their
// per-object root beliefs from protos prototype assignments over the
// given roots and domain — the clustered shape of production serving
// traffic, where most objects repeat one of a few conflict patterns (the
// regime signature deduplication exploits). Generation draws from rng in
// op order only, so a (seed, arguments) pair always yields the same
// script.
func MixedServe(rng *rand.Rand, roots, domain []string, edges []TrustToggle, numOps, writeEvery, batchSize, protos int) []MixedOp {
	prototypes := make([]map[string]string, protos)
	for p := range prototypes {
		bs := make(map[string]string, len(roots))
		for _, r := range roots {
			bs[r] = domain[rng.Intn(len(domain))]
		}
		prototypes[p] = bs
	}
	ops := make([]MixedOp, numOps)
	for i := range ops {
		if writeEvery > 0 && len(edges) > 0 && i%writeEvery == writeEvery-1 {
			batch := make([]TrustToggle, batchSize)
			for j := range batch {
				batch[j] = edges[rng.Intn(len(edges))]
			}
			ops[i] = MixedOp{Toggles: batch}
			continue
		}
		ops[i] = MixedOp{Beliefs: prototypes[rng.Intn(len(prototypes))]}
	}
	return ops
}

// RandomBTN builds a random binary trust network with nUsers users, edge
// density controlling parent counts, and explicit beliefs on beliefFrac of
// the users (at least one).
func RandomBTN(rng *rand.Rand, nUsers int, beliefFrac float64, domain []tn.Value) *tn.Network {
	n := tn.New()
	for i := 0; i < nUsers; i++ {
		n.AddUser(fmt.Sprintf("u%d", i))
	}
	any := false
	for x := 0; x < nUsers; x++ {
		if rng.Float64() < beliefFrac {
			n.SetExplicit(x, domain[rng.Intn(len(domain))])
			any = true
		}
	}
	if !any {
		n.SetExplicit(rng.Intn(nUsers), domain[rng.Intn(len(domain))])
	}
	for x := 0; x < nUsers; x++ {
		if n.HasExplicit(x) {
			continue // keep explicit-belief users as roots (BTN form)
		}
		k := 1 + rng.Intn(2)
		added := 0
		for tries := 0; added < k && tries < 10; tries++ {
			z := rng.Intn(nUsers)
			if z == x {
				continue
			}
			dup := false
			for _, m := range n.In(x) {
				if m.Parent == z {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			n.AddMapping(z, x, 1+rng.Intn(100))
			added++
		}
	}
	return n
}
