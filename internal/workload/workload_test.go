package workload

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"trustmap/internal/bulk"
	"trustmap/internal/resolve"
	"trustmap/internal/tn"
)

func TestMixedServeDeterministicShape(t *testing.T) {
	roots := []string{"r1", "r2", "r3"}
	domain := []string{"v", "w"}
	edges := []TrustToggle{{Truster: "a", Trusted: "b", Priority: 5}}
	gen := func() []MixedOp {
		return MixedServe(rand.New(rand.NewSource(9)), roots, domain, edges, 64, 8, 3, 4)
	}
	ops := gen()
	if len(ops) != 64 {
		t.Fatalf("len = %d, want 64", len(ops))
	}
	writes := 0
	for i, op := range ops {
		switch {
		case op.Beliefs != nil:
			if len(op.Beliefs) != len(roots) {
				t.Fatalf("op %d: read covers %d roots, want %d", i, len(op.Beliefs), len(roots))
			}
			for _, r := range roots {
				if v := op.Beliefs[r]; v != "v" && v != "w" {
					t.Fatalf("op %d: belief %q for %s outside the domain", i, v, r)
				}
			}
		case op.Toggles != nil:
			writes++
			if i%8 != 7 {
				t.Fatalf("op %d: write outside the writeEvery grid", i)
			}
			if len(op.Toggles) != 3 {
				t.Fatalf("op %d: batch of %d, want 3", i, len(op.Toggles))
			}
		default:
			t.Fatalf("op %d: neither read nor write", i)
		}
	}
	if writes != 8 {
		t.Fatalf("writes = %d, want 8 (one per 8 ops)", writes)
	}
	// Deterministic given the seed.
	again := gen()
	for i := range ops {
		if (ops[i].Beliefs == nil) != (again[i].Beliefs == nil) {
			t.Fatalf("op %d: kind differs across identical seeds", i)
		}
		for r, v := range ops[i].Beliefs {
			if again[i].Beliefs[r] != v {
				t.Fatalf("op %d: beliefs differ across identical seeds", i)
			}
		}
	}
}

func TestOscillatorClusters(t *testing.T) {
	n := OscillatorClusters(5)
	if n.NumUsers() != 20 || n.NumMappings() != 20 {
		t.Fatalf("size wrong: %d users %d mappings", n.NumUsers(), n.NumMappings())
	}
	if n.Size() != 40 {
		t.Fatalf("|U|+|E| = %d want 40", n.Size())
	}
	if !n.IsBinary() {
		t.Fatal("oscillator clusters must be binary")
	}
	r := resolve.Resolve(n)
	// Every oscillator node has both values possible; roots are certain.
	for i := 0; i < 5; i++ {
		x1 := n.UserID("c0_x1")
		if len(r.Possible(x1)) != 2 {
			t.Errorf("cluster %d: oscillator node should have 2 possible values", i)
		}
	}
	// The number of stable solutions is 2^k (verified for small k).
	sols := tn.EnumerateStableSolutions(OscillatorClusters(2), 0)
	if len(sols) != 4 {
		t.Errorf("2 clusters: want 4 stable solutions, got %d", len(sols))
	}
}

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := PowerLaw(rng, 2000, 3, 0.1, []tn.Value{"v", "w", "u"})
	if n.NumUsers() != 2000 {
		t.Fatalf("users=%d", n.NumUsers())
	}
	if n.NumMappings() < 5000 {
		t.Fatalf("too few mappings: %d", n.NumMappings())
	}
	// Scale-free shape: out-degree (trust received) should be heavy-tailed:
	// the max out-degree far exceeds the average.
	out := make([]int, n.NumUsers())
	for x := 0; x < n.NumUsers(); x++ {
		for _, m := range n.In(x) {
			out[m.Parent]++
		}
	}
	max, sum := 0, 0
	for _, d := range out {
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(len(out))
	if float64(max) < 8*avg {
		t.Errorf("degree distribution not heavy-tailed: max %d avg %.1f", max, avg)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("invalid network: %v", err)
	}
	// Must resolve after binarization.
	b := tn.Binarize(n)
	r := resolve.Resolve(b)
	_ = r
}

func TestPowerLawDeterministic(t *testing.T) {
	a := PowerLaw(rand.New(rand.NewSource(7)), 300, 2, 0.2, []tn.Value{"v"})
	b := PowerLaw(rand.New(rand.NewSource(7)), 300, 2, 0.2, []tn.Value{"v"})
	if a.NumMappings() != b.NumMappings() {
		t.Error("generator must be deterministic per seed")
	}
}

func TestNestedSCC(t *testing.T) {
	k := 6
	n := NestedSCC(k)
	if !n.IsBinary() {
		t.Fatal("nested SCC network must be binary")
	}
	if n.NumUsers() != 2+4*k {
		t.Fatalf("users=%d want %d", n.NumUsers(), 2+4*k)
	}
	r := resolve.Resolve(n)
	// Every oscillator stage must carry both values.
	for i := 0; i < k; i++ {
		a := n.UserID("s0_a")
		if len(r.Possible(a)) != 2 {
			t.Fatalf("stage %d: want 2 possible values, got %v", i, r.Possible(a))
		}
	}
	// Cross-check the smallest instance against the oracle.
	small := NestedSCC(2)
	sols := tn.EnumerateStableSolutions(small, 0)
	wantPoss := tn.PossibleFromSolutions(small, sols)
	rs := resolve.Resolve(small)
	for x := 0; x < small.NumUsers(); x++ {
		if len(rs.Possible(x)) != len(wantPoss[x]) {
			t.Fatalf("node %s: %v vs oracle %v", small.Name(x), rs.Possible(x), wantPoss[x])
		}
	}
}

func TestFig19(t *testing.T) {
	n, roots := Fig19()
	if n.NumUsers() != 7 || n.NumMappings() != 12 {
		t.Fatalf("size: %d users %d mappings, want 7/12", n.NumUsers(), n.NumMappings())
	}
	if len(roots) != 2 {
		t.Fatalf("want 2 explicit-belief users")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.IsBinary() {
		t.Fatal("Figure 19 network is non-binary (x1 and x3 have 3 parents)")
	}
	b := tn.Binarize(n)
	// All original users must resolve to some belief.
	r := resolve.Resolve(b)
	for x := 0; x < n.NumUsers(); x++ {
		if len(r.Possible(x)) == 0 {
			t.Errorf("user %s unresolved", n.Name(x))
		}
	}
}

func TestBulkObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, roots := Fig19()
	objs := BulkObjects(rng, roots, 200)
	if len(objs) != 200 {
		t.Fatalf("objects=%d", len(objs))
	}
	agree, conflict := 0, 0
	for _, bs := range objs {
		if len(bs) != 2 {
			t.Fatal("every object needs beliefs for both roots")
		}
		vals := map[tn.Value]bool{}
		for _, v := range bs {
			vals[v] = true
		}
		if len(vals) == 1 {
			agree++
		} else {
			conflict++
		}
	}
	if agree < 50 || conflict < 50 {
		t.Errorf("expected a rough 50/50 split, got %d/%d", agree, conflict)
	}
}

// TestFig19BulkIntegration resolves a small object set over the Figure 19
// network through the SQL path and checks against per-object resolution.
func TestFig19BulkIntegration(t *testing.T) {
	n, roots := Fig19()
	b := tn.Binarize(n)
	plan, err := bulk.NewPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	store := bulk.NewStore(plan)
	rng := rand.New(rand.NewSource(5))
	objs := BulkObjects(rng, roots, 25)
	if err := store.LoadObjects(objs); err != nil {
		t.Fatal(err)
	}
	if err := store.Resolve(); err != nil {
		t.Fatal(err)
	}
	for k, bs := range objs {
		per := b.Clone()
		for x, v := range bs {
			per.SetExplicit(x, v)
		}
		r := resolve.Resolve(per)
		for x := 0; x < n.NumUsers(); x++ {
			want := r.Possible(x)
			got := store.Possible(x, k)
			if len(got) != len(want) {
				t.Fatalf("object %s poss(%s): bulk %v vs %v", k, n.Name(x), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("object %s poss(%s): bulk %v vs %v", k, n.Name(x), got, want)
				}
			}
		}
	}
}

func TestRandomBTNIsBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		n := RandomBTN(rng, 3+rng.Intn(20), 0.3, []tn.Value{"v", "w"})
		if !n.IsBinary() {
			t.Fatal("RandomBTN must produce binary networks")
		}
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		resolve.Resolve(n) // must not panic
	}
}

func TestBulkObjectsDeterministic(t *testing.T) {
	roots := []int{3, 7, 11}
	a := BulkObjects(rand.New(rand.NewSource(21)), roots, 50)
	b := BulkObjects(rand.New(rand.NewSource(21)), roots, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BulkObjects must be identical across runs for one seed")
	}
	keys := ObjectKeys(a)
	if len(keys) != 50 || !sort.StringsAreSorted(keys) {
		t.Fatalf("ObjectKeys wrong: %d keys, sorted=%v", len(keys), sort.StringsAreSorted(keys))
	}
}
