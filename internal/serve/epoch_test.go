package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPublishAcquireRelease(t *testing.T) {
	p := NewPublisher("a", nil)
	e := p.Acquire()
	if got := e.Value(); got != "a" {
		t.Fatalf("Value = %q, want a", got)
	}
	if e.Seq() != 1 {
		t.Fatalf("initial Seq = %d, want 1", e.Seq())
	}
	if seq := p.Publish("b"); seq != 2 {
		t.Fatalf("Publish seq = %d, want 2", seq)
	}
	// The pinned epoch still serves its old value after being retired.
	if got := e.Value(); got != "a" {
		t.Fatalf("retired epoch Value = %q, want a", got)
	}
	e.Release()
	e2 := p.Acquire()
	defer e2.Release()
	if got, seq := e2.Value(), e2.Seq(); got != "b" || seq != 2 {
		t.Fatalf("current epoch = (%q, %d), want (b, 2)", got, seq)
	}
}

func TestReclaimFiresOncePerRetiredEpoch(t *testing.T) {
	var drained []uint64
	var mu sync.Mutex
	p := NewPublisher(0, func(seq uint64, val int) {
		mu.Lock()
		drained = append(drained, seq)
		mu.Unlock()
	})
	// No readers: each publish retires the previous epoch, which drains
	// immediately on the publisher's own release.
	p.Publish(1)
	p.Publish(2)
	mu.Lock()
	got := append([]uint64(nil), drained...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained = %v, want [1 2]", got)
	}
	st := p.Stats()
	if st.Published != 3 || st.Reclaimed != 2 || st.Seq != 3 {
		t.Fatalf("stats = %+v, want Published 3, Reclaimed 2, Seq 3", st)
	}
}

func TestReclaimWaitsForReaders(t *testing.T) {
	var drained atomic.Uint64
	p := NewPublisher(0, func(seq uint64, val int) { drained.Add(1) })
	e := p.Acquire()
	p.Publish(1)
	if drained.Load() != 0 {
		t.Fatal("epoch reclaimed while a reader still pins it")
	}
	e.Release()
	if drained.Load() != 1 {
		t.Fatal("epoch not reclaimed after its last reader released")
	}
}

func TestReadersGauge(t *testing.T) {
	p := NewPublisher("x", nil)
	e1, e2 := p.Acquire(), p.Acquire()
	if got := p.Stats().Readers; got != 2 {
		t.Fatalf("Readers = %d, want 2", got)
	}
	e1.Release()
	e2.Release()
	if got := p.Stats().Readers; got != 0 {
		t.Fatalf("Readers = %d, want 0", got)
	}
}

// TestConcurrentPublishOrdered checks the Publish contract for racing
// writers: sequence numbers and the pointer swap move together, so after
// n publishes from any number of goroutines the current epoch carries
// the highest sequence number and every retired epoch drained.
func TestConcurrentPublishOrdered(t *testing.T) {
	const writers, each = 4, 200
	p := NewPublisher(0, nil)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.Publish(i)
			}
		}()
	}
	wg.Wait()
	want := uint64(writers*each + 1) // the initial epoch is seq 1
	if got := p.Seq(); got != want {
		t.Fatalf("Seq = %d, want %d (current epoch must hold the highest seq)", got, want)
	}
	st := p.Stats()
	if st.Published != want || st.Reclaimed != want-1 {
		t.Fatalf("stats = %+v, want Published %d, Reclaimed %d", st, want, want-1)
	}
}

// TestConcurrentAcquirePublish hammers Acquire/Release from many readers
// while a writer keeps publishing: every read must observe a published
// value consistent with its sequence number, sequence numbers must be
// non-decreasing per reader, and after quiescence every retired epoch
// must have been reclaimed exactly once.
func TestConcurrentAcquirePublish(t *testing.T) {
	const (
		readers   = 8
		publishes = 500
		readsEach = 2000
	)
	var drains atomic.Uint64
	p := NewPublisher(uint64(1), func(seq uint64, val uint64) {
		if seq != val {
			t.Errorf("drain: seq %d carries value %d", seq, val)
		}
		drains.Add(1)
	})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < readsEach; i++ {
				e := p.Acquire()
				if e.Value() != e.Seq() {
					t.Errorf("torn read: seq %d carries value %d", e.Seq(), e.Value())
				}
				if e.Seq() < last {
					t.Errorf("sequence went backwards: %d after %d", e.Seq(), last)
				}
				last = e.Seq()
				e.Release()
			}
		}()
	}
	for i := 0; i < publishes; i++ {
		// Values track sequence numbers so readers can detect tearing.
		p.Publish(uint64(i) + 2)
	}
	wg.Wait()
	st := p.Stats()
	if st.Published != publishes+1 {
		t.Fatalf("Published = %d, want %d", st.Published, publishes+1)
	}
	// All epochs but the current one retired with no readers left.
	if want := uint64(publishes); drains.Load() != want || st.Reclaimed != want {
		t.Fatalf("reclaimed %d (hook %d), want %d", st.Reclaimed, drains.Load(), want)
	}
}

func TestPublishTaggedAndTag(t *testing.T) {
	p := NewPublisher[uint64](1, nil)
	e := p.Acquire()
	if e.Tag() != 0 {
		t.Fatalf("initial epoch tag = %d, want 0 (untagged)", e.Tag())
	}
	e.Release()
	p.PublishTagged(2, 41)
	p.PublishTagged(3, 42)
	e = p.Acquire()
	defer e.Release()
	if e.Seq() != 3 || e.Tag() != 42 || e.Value() != 3 {
		t.Fatalf("epoch = seq %d tag %d val %d, want 3/42/3", e.Seq(), e.Tag(), e.Value())
	}
}

func TestRebase(t *testing.T) {
	p := NewPublisher[uint64](1, nil) // epoch 1
	p.Rebase(90)
	if got := p.Seq(); got != 1 {
		t.Fatalf("Rebase published something: Seq = %d, want 1 (unchanged)", got)
	}
	if seq := p.PublishTagged(2, 7); seq != 91 {
		t.Fatalf("post-rebase publish seq = %d, want 91", seq)
	}
	// Rebase never lowers the counter.
	p.Rebase(5)
	if seq := p.Publish(3); seq != 92 {
		t.Fatalf("publish after no-op rebase seq = %d, want 92", seq)
	}
}
