// Package serve implements epoch-based snapshot publication: the
// lock-free serving discipline that makes a compiled trust-mapping
// artifact safe to read from any number of goroutines while a writer
// keeps maintaining it.
//
// The paper's bulk setting compiles the object-independent structure of
// the network once and resolves arbitrarily many objects against that
// artifact; a production service additionally mutates the network while
// serving. The engine's Apply already produces a *successor* artifact and
// leaves results resolved against the base valid — copy-on-write over the
// clean rows — so the only missing piece is publication: making "the
// current artifact" a single atomic pointer that readers pin without
// blocking and writers swap without waiting for readers.
//
// A Publisher holds the current Epoch. Readers Acquire the current epoch
// (an atomic load plus a reference-count increment), resolve against its
// value, and Release it. A writer builds the next value off to the side
// and Publishes it: one atomic pointer swap retires the previous epoch.
// A retired epoch stays fully readable for the readers still pinning it;
// when the last reference drains, the epoch is reclaimed exactly once
// (an optional hook observes that, and the garbage collector does the
// actual freeing). Readers therefore never block on writers, writers
// never block on readers, and every read observes one self-consistent
// published generation.
package serve

import (
	"sync"
	"sync/atomic"
)

// Epoch is one published snapshot generation. Readers obtain epochs from
// Publisher.Acquire and must Release them when done; the value is
// immutable for the epoch's lifetime.
type Epoch[T any] struct {
	val T
	seq uint64
	tag uint64

	// refs counts the readers pinning this epoch, plus one reference held
	// by the publisher while the epoch is current. retired flips when a
	// newer epoch supersedes this one; the epoch is reclaimed when it is
	// retired and refs drains to zero. reclaim makes that transition fire
	// exactly once even under racing releases.
	refs    atomic.Int64
	retired atomic.Bool
	reclaim sync.Once
	onDrain func(seq uint64, val T)
}

// Value returns the published snapshot. The returned value must be
// treated as immutable.
func (e *Epoch[T]) Value() T { return e.val }

// Seq returns the epoch's generation number: 1 for the initial value,
// increasing by one per Publish. Sequence numbers are totally ordered;
// two reads observing the same Seq observed the same snapshot.
func (e *Epoch[T]) Seq() uint64 { return e.seq }

// Tag returns the opaque tag the epoch was published with, 0 for
// untagged publications. The durable store tags each epoch with the WAL
// LSN whose application produced it, so every read can report the log
// position its snapshot reflects.
func (e *Epoch[T]) Tag() uint64 { return e.tag }

// Release drops one reference. The last release of a retired epoch
// reclaims it. Release must be called exactly once per Acquire.
func (e *Epoch[T]) Release() {
	if e.refs.Add(-1) == 0 && e.retired.Load() {
		e.reclaim.Do(func() {
			if e.onDrain != nil {
				e.onDrain(e.seq, e.val)
			}
		})
	}
}

// PublisherStats counts what a publisher has done.
type PublisherStats struct {
	Seq       uint64 // current epoch's sequence number
	Published uint64 // epochs published, including the initial one
	Reclaimed uint64 // retired epochs whose reader count drained
	Readers   int64  // readers currently pinning the current epoch
}

// Publisher owns the current epoch of a snapshot-served value. Acquire
// and Release are safe from any number of goroutines and never block;
// Publish is safe from any number of goroutines too, though callers
// normally serialize writers externally so successive snapshots build on
// each other.
type Publisher[T any] struct {
	cur       atomic.Pointer[Epoch[T]]
	pmu       sync.Mutex // orders concurrent Publish calls: seq and swap move together
	seq       uint64     // guarded by pmu
	published atomic.Uint64
	reclaimed atomic.Uint64
	onDrain   func(seq uint64, val T)
}

// NewPublisher returns a publisher serving initial as epoch 1. onDrain,
// when non-nil, runs exactly once per retired epoch after its last reader
// released it — the reclamation hook; it must not call back into the
// publisher's Acquire (it may run on a reader's goroutine).
func NewPublisher[T any](initial T, onDrain func(seq uint64, val T)) *Publisher[T] {
	p := &Publisher[T]{onDrain: onDrain}
	p.Publish(initial)
	return p
}

// Acquire pins and returns the current epoch. The caller must Release it.
func (p *Publisher[T]) Acquire() *Epoch[T] {
	for {
		e := p.cur.Load()
		if e.refs.Add(1) > 1 {
			if p.cur.Load() == e {
				return e
			}
			// Superseded between the load and the pin: drop the reference
			// (possibly the last one of the now-retired epoch) and retry
			// on the newer epoch.
			e.Release()
			continue
		}
		// refs was zero: the epoch drained between the load and the pin,
		// so its reclamation already fired. Undo the increment without
		// going through Release — the drain must not run twice — and
		// retry; cur has necessarily moved on.
		e.refs.Add(-1)
	}
}

// Publish swaps v in as the new current epoch and retires the previous
// one, returning the new sequence number. Retired epochs remain readable
// by the readers still pinning them and are reclaimed when they drain.
// Concurrent Publish calls are ordered by an internal mutex so sequence
// numbers and the pointer swap always move together; the last caller to
// swap holds the highest sequence number.
func (p *Publisher[T]) Publish(v T) uint64 {
	return p.PublishTagged(v, 0)
}

// PublishTagged is Publish carrying an opaque tag on the new epoch,
// readable via Epoch.Tag. The publisher does not interpret the tag; the
// durable store uses it to stamp each epoch with its WAL LSN.
func (p *Publisher[T]) PublishTagged(v T, tag uint64) uint64 {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	p.seq++
	e := &Epoch[T]{val: v, seq: p.seq, tag: tag}
	e.onDrain = func(seq uint64, val T) {
		p.reclaimed.Add(1)
		if p.onDrain != nil {
			p.onDrain(seq, val)
		}
	}
	e.refs.Store(1) // the publisher's reference, dropped on retirement
	old := p.cur.Swap(e)
	p.published.Add(1)
	if old != nil {
		old.retired.Store(true)
		old.Release()
	}
	return e.seq
}

// Seq returns the current epoch's sequence number without pinning it.
func (p *Publisher[T]) Seq() uint64 { return p.cur.Load().seq }

// Rebase raises the publisher's sequence counter so the NEXT Publish
// gets seq+1 at least `seq`+1. It never lowers the counter and does not
// publish anything itself. A recovered store rebases to the epoch
// recorded in its snapshot so post-restart epochs continue the pre-crash
// numbering — a client's "read-your-writes" epoch bound stays valid
// across the crash.
func (p *Publisher[T]) Rebase(seq uint64) {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	if seq > p.seq {
		p.seq = seq
	}
}

// Stats returns the publisher's counters. Readers is a point-in-time
// gauge of the current epoch and may be stale by the time it is read.
func (p *Publisher[T]) Stats() PublisherStats {
	cur := p.cur.Load()
	return PublisherStats{
		Seq:       cur.seq,
		Published: p.published.Load(),
		Reclaimed: p.reclaimed.Load(),
		Readers:   cur.refs.Load() - 1, // minus the publisher's reference
	}
}
