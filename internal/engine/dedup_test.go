package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// dedupNet builds a mid-size binarized power-law network for dedup tests.
func dedupNet(t testing.TB) *tn.Network {
	t.Helper()
	n := workload.PowerLaw(rand.New(rand.NewSource(77)), 300, 3, 0.1, []tn.Value{"v", "w", "u", "z"})
	return tn.Binarize(n)
}

// liveRootsOf lists the explicit-belief users.
func liveRootsOf(n *tn.Network) []int {
	var roots []int
	for x := 0; x < n.NumUsers(); x++ {
		if n.HasExplicit(x) {
			roots = append(roots, x)
		}
	}
	return roots
}

// assertSameResults requires byte-identical poss for every node and object.
func assertSameResults(t *testing.T, label string, n *tn.Network, a, b *BulkResult) {
	t.Helper()
	for _, k := range a.Keys() {
		for x := 0; x < n.NumUsers(); x++ {
			got, want := a.Possible(x, k), b.Possible(x, k)
			if len(got) != len(want) {
				t.Fatalf("%s: poss(%s, %s): %v vs %v", label, n.Name(x), k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: poss(%s, %s): %v vs %v", label, n.Name(x), k, got, want)
				}
			}
		}
	}
}

// TestDedupClusteredBatch: objects repeating few signatures resolve each
// signature once, and dedup-on equals dedup-off.
func TestDedupClusteredBatch(t *testing.T) {
	bin := dedupNet(t)
	roots := liveRootsOf(bin)
	c, err := Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	protos := workload.BulkObjects(rand.New(rand.NewSource(3)), roots, 7)
	keys := workload.ObjectKeys(protos)
	for i, k := range keys { // force the prototypes pairwise distinct
		protos[k][roots[0]] = tn.Value(fmt.Sprintf("proto%d", i))
	}
	objs := make(map[string]map[int]tn.Value, 100)
	for i := 0; i < 100; i++ {
		objs[fmt.Sprintf("obj%03d", i)] = protos[keys[i%len(keys)]]
	}
	for _, workers := range []int{1, 4} {
		on, err := c.Resolve(context.Background(), objs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		off, err := c.Resolve(context.Background(), objs, Options{Workers: workers, DisableDedup: true})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("clustered/workers=%d", workers), bin, on, off)
		st := on.Dedup()
		if st.Objects != 100 || st.DistinctSignatures != len(keys) {
			t.Fatalf("workers=%d: stats=%+v want 100 objects, %d signatures", workers, st, len(keys))
		}
		if st.CacheHits+st.Resolved != st.DistinctSignatures {
			t.Fatalf("workers=%d: hits %d + resolved %d != distinct %d", workers, st.CacheHits, st.Resolved, st.DistinctSignatures)
		}
	}
	// Cross-batch reuse: a later batch repeating the signatures is served
	// entirely from the cache.
	again, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := again.Dedup(); st.CacheHits != st.DistinctSignatures || st.Resolved != 0 {
		t.Fatalf("second batch not served from cache: %+v", st)
	}
}

// TestDedupAllDistinctAdversarial: every object carries a unique signature,
// so dedup degenerates to per-object resolution — results must still match
// dedup-off and the stats must report zero sharing.
func TestDedupAllDistinctAdversarial(t *testing.T) {
	bin := dedupNet(t)
	roots := liveRootsOf(bin)
	c, err := Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	objs := make(map[string]map[int]tn.Value, 60)
	for i := 0; i < 60; i++ {
		bs := make(map[int]tn.Value, len(roots))
		for _, r := range roots {
			bs[r] = "shared"
		}
		bs[roots[i%len(roots)]] = tn.Value(fmt.Sprintf("unique%d", i)) // one root diverges per object
		objs[fmt.Sprintf("obj%03d", i)] = bs
	}
	on, err := c.Resolve(context.Background(), objs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.Resolve(context.Background(), objs, Options{Workers: 2, DisableDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "alldistinct", bin, on, off)
	if st := on.Dedup(); st.DistinctSignatures != 60 {
		t.Fatalf("adversarial batch deduplicated: %+v", st)
	}
}

// TestDedupBailOutOnAdversarialBatch: past the probe window an almost-all-
// distinct batch stops grouping and resolves the tail directly; results
// still match dedup-off and the stats stay consistent.
func TestDedupBailOutOnAdversarialBatch(t *testing.T) {
	bin := dedupNet(t)
	roots := liveRootsOf(bin)
	c, err := Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	const nObj = dedupProbeWindow + 200
	objs := make(map[string]map[int]tn.Value, nObj)
	for i := 0; i < nObj; i++ {
		bs := make(map[int]tn.Value, len(roots))
		for _, r := range roots {
			bs[r] = "shared"
		}
		bs[roots[0]] = tn.Value(fmt.Sprintf("uniq%d", i))
		objs[fmt.Sprintf("obj%04d", i)] = bs
	}
	on, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.Resolve(context.Background(), objs, Options{Workers: 1, DisableDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "bailout", bin, on, off)
	st := on.Dedup()
	if st.DistinctSignatures != nObj {
		t.Fatalf("stats=%+v want %d distinct signatures (groups + direct)", st, nObj)
	}
	if st.CacheHits+st.Resolved != st.DistinctSignatures {
		t.Fatalf("stats inconsistent after bail-out: %+v", st)
	}
}

// TestDedupCacheInvalidatedByApply: a structural mutation produces a
// successor whose signature cache starts empty, and the successor's results
// reflect the mutated network; a value-only batch keeps both artifact and
// cache.
func TestDedupCacheInvalidatedByApply(t *testing.T) {
	n := tn.New()
	r1, r2 := n.AddUser("r1"), n.AddUser("r2")
	a, b := n.AddUser("a"), n.AddUser("b")
	n.SetExplicit(r1, "seed")
	n.SetExplicit(r2, "seed")
	n.AddMapping(r1, a, 2)
	n.AddMapping(r2, a, 1)
	n.AddMapping(a, b, 2)
	n.EnableJournal()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	objs := map[string]map[int]tn.Value{
		"k1": {r1: "x", r2: "y"},
		"k2": {r1: "x", r2: "y"},
	}
	res, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Possible(b, "k1"); len(got) != 1 || got[0] != "x" {
		t.Fatalf("poss(b) = %v, want [x] via preferred edge", got)
	}
	if st := res.Dedup(); st.DistinctSignatures != 1 || st.Resolved != 1 {
		t.Fatalf("warmup stats: %+v", st)
	}

	// Value-only mutation: same artifact, cache retained.
	n.SetExplicit(r1, "seed2")
	same, _, err := c.Apply(n.DrainJournal(), ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if same != c {
		t.Fatal("value-only batch must return the base artifact")
	}
	res, err = same.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Dedup(); st.CacheHits != 1 {
		t.Fatalf("value-only Apply flushed the signature cache: %+v", st)
	}

	// Structural mutation: a's preferred edge flips to r2 — a cached
	// signature result serving the old plan would be wrong.
	if !n.RemoveMapping(r1, a) {
		t.Fatal("mapping r1 -> a missing")
	}
	next, _, err := c.Apply(n.DrainJournal(), ApplyOptions{MaxDirtyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err = next.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Dedup(); st.CacheHits != 0 || st.Resolved != 1 {
		t.Fatalf("successor served stale cache entries: %+v", st)
	}
	if got := res.Possible(b, "k1"); len(got) != 1 || got[0] != "y" {
		t.Fatalf("post-mutation poss(b) = %v, want [y]", got)
	}
}

// countdownCtx reports cancellation after its Err has been consulted n
// times: a deterministic way to abort Resolve mid-scan.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestResolveAbortedMidScan aborts single-worker resolves at every possible
// cancellation point and asserts the partial-result contract: the call
// reports ErrResolveAborted, every resolved object is correct and complete,
// and every dropped object is reported by Lookup with the sentinel instead
// of silently empty slices.
func TestResolveAbortedMidScan(t *testing.T) {
	bin := dedupNet(t)
	roots := liveRootsOf(bin)
	c, err := Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	objs := workload.BulkObjects(rand.New(rand.NewSource(4)), roots, 12)
	full, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	probe := bin.UserID("site9")
	for _, disable := range []bool{false, true} {
		for budget := 0; ; budget++ {
			ctx := &countdownCtx{Context: context.Background(), left: budget}
			r, err := c.Resolve(ctx, objs, Options{Workers: 1, DisableDedup: disable})
			if err == nil {
				break // budget outlasted the scan: complete result
			}
			if !errors.Is(err, ErrResolveAborted) {
				t.Fatalf("budget=%d: err=%v want ErrResolveAborted", budget, err)
			}
			if r == nil {
				t.Fatalf("budget=%d: aborted resolve must return the partial result", budget)
			}
			for _, k := range r.Keys() {
				poss, err := r.Lookup(probe, k)
				switch {
				case errors.Is(err, ErrResolveAborted): // dropped: explicit sentinel
				case err == nil:
					want := full.Possible(probe, k)
					if len(poss) != len(want) {
						t.Fatalf("budget=%d obj %s: partial %v vs full %v", budget, k, poss, want)
					}
					for i := range poss {
						if poss[i] != want[i] {
							t.Fatalf("budget=%d obj %s: partial %v vs full %v", budget, k, poss, want)
						}
					}
				default:
					t.Fatalf("budget=%d obj %s: unexpected error %v", budget, k, err)
				}
			}
			if budget > 10000 {
				t.Fatal("scan never completed under a growing budget")
			}
		}
	}
}

// TestDedupSharesResultRows: objects with equal signatures share the whole
// per-support row by pointer, the mechanism that makes clustered batches
// sublinear in objects.
func TestDedupSharesResultRows(t *testing.T) {
	n := tn.New()
	r1, r2 := n.AddUser("r1"), n.AddUser("r2")
	a := n.AddUser("a")
	n.SetExplicit(r1, "seed")
	n.SetExplicit(r2, "seed")
	n.AddMapping(r1, a, 1)
	n.AddMapping(r2, a, 1) // tie: a floods from both roots
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	objs := map[string]map[int]tn.Value{
		"k1": {r1: "x", r2: "y"},
		"k2": {r1: "x", r2: "y"},
		"k3": {r1: "y", r2: "x"},
	}
	r, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := r.Possible(a, "k1"), r.Possible(a, "k2")
	if &p1[0] != &p2[0] {
		t.Error("equal signatures must share the canonical result row")
	}
	if st := r.Dedup(); st.DistinctSignatures != 2 {
		t.Errorf("stats=%+v want 2 distinct signatures", st)
	}
	if got := r.Possible(a, "k3"); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("poss(a, k3)=%v want [x y]", got)
	}
}
