package engine

import (
	"context"
	"errors"
	"testing"

	"trustmap/internal/tn"
)

// buildOscillator returns the Figure 4b network (binary, two roots).
func buildOscillator() *tn.Network {
	n := tn.New()
	x1 := n.AddUser("x1")
	x2 := n.AddUser("x2")
	x3 := n.AddUser("x3")
	x4 := n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	n.SetExplicit(x3, "seed")
	n.SetExplicit(x4, "seed")
	return n
}

func TestCompileOscillator(t *testing.T) {
	n := buildOscillator()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Roots(); len(got) != 2 {
		t.Fatalf("roots=%v want 2", got)
	}
	steps := c.Steps()
	if len(steps) != 1 || steps[0].Kind != StepFlood {
		t.Fatalf("steps=%+v want one flood", steps)
	}
	if len(steps[0].Members) != 2 || len(steps[0].Sources) != 2 {
		t.Errorf("flood shape wrong: %+v", steps[0])
	}
	st := c.Stats()
	if st.FloodSteps != 1 || st.CopySteps != 0 || st.NontrivialSCCs != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	// x1 and x2 are flooded from both roots; they share one support.
	x1, x2 := n.UserID("x1"), n.UserID("x2")
	if c.nodeSupport[x1] != c.nodeSupport[x2] {
		t.Errorf("flooded members must share a support: %d vs %d", c.nodeSupport[x1], c.nodeSupport[x2])
	}
	sup := c.Support(x1)
	if len(sup) != 2 || sup[0] != n.UserID("x3") || sup[1] != n.UserID("x4") {
		t.Errorf("support of x1 = %v, want [x3 x4]", sup)
	}
	// Condensation introspection: 3 SCCs ({x3}, {x4}, {x1,x2}); the
	// nontrivial one has two members and two entry edges, and the roots
	// precede it in the planner's topological order.
	if c.NumSCCs() != 3 {
		t.Fatalf("SCCs=%d want 3", c.NumSCCs())
	}
	order := c.SCCOrder()
	pos := make(map[int]int, len(order))
	for i, comp := range order {
		pos[comp] = i
	}
	for i := 0; i < c.NumSCCs(); i++ {
		m := c.SCCMembers(i)
		if len(m) != 2 {
			continue
		}
		if len(c.SCCEntries(i)) != 2 {
			t.Errorf("entry edges of {x1,x2} = %v, want 2", c.SCCEntries(i))
		}
		for j := 0; j < c.NumSCCs(); j++ {
			if j != i && pos[j] > pos[i] {
				t.Errorf("root component %d ordered after its dependent %d", j, i)
			}
		}
	}
}

func TestCompileRejectsNonBinary(t *testing.T) {
	n := tn.New()
	x := n.AddUser("x")
	for _, name := range []string{"a", "b", "c"} {
		z := n.AddUser(name)
		n.AddMapping(z, x, 1+z)
	}
	if _, err := Compile(n); err == nil {
		t.Error("non-binary network must be rejected")
	}
}

func TestResolveOscillator(t *testing.T) {
	n := buildOscillator()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	x1, x3, x4 := n.UserID("x1"), n.UserID("x3"), n.UserID("x4")
	objects := map[string]map[int]tn.Value{
		"conflict": {x3: "v", x4: "w"},
		"agree":    {x3: "u", x4: "u"},
	}
	for _, workers := range []int{1, 4} {
		r, err := c.Resolve(context.Background(), objects, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Possible(x1, "conflict"); len(got) != 2 || got[0] != "v" || got[1] != "w" {
			t.Errorf("workers=%d poss(x1, conflict)=%v want [v w]", workers, got)
		}
		if got := r.Certain(x1, "agree"); got != "u" {
			t.Errorf("workers=%d cert(x1, agree)=%q want u", workers, got)
		}
		if got := r.Certain(x1, "conflict"); got != tn.NoValue {
			t.Errorf("workers=%d cert(x1, conflict)=%q want none", workers, got)
		}
		keys := r.Keys()
		if len(keys) != 2 || keys[0] != "agree" || keys[1] != "conflict" {
			t.Errorf("keys not sorted: %v", keys)
		}
	}
}

func TestResolveMissingRootBelief(t *testing.T) {
	n := buildOscillator()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	objects := map[string]map[int]tn.Value{
		"k1": {n.UserID("x3"): "v", n.UserID("x4"): "w"},
		"k2": {n.UserID("x3"): "v"}, // x4 missing: violates assumption ii
	}
	for _, workers := range []int{1, 3} {
		if _, err := c.Resolve(context.Background(), objects, Options{Workers: workers}); err == nil {
			t.Errorf("workers=%d: missing root belief must be rejected", workers)
		}
	}
}

func TestResolveCancelledContext(t *testing.T) {
	n := buildOscillator()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	objects := map[string]map[int]tn.Value{
		"k1": {n.UserID("x3"): "v", n.UserID("x4"): "w"},
	}
	r, err := c.Resolve(ctx, objects, Options{Workers: 1})
	if !errors.Is(err, ErrResolveAborted) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled resolve returned %v, want ErrResolveAborted wrapping context.Canceled", err)
	}
	if r == nil {
		t.Fatal("cancelled resolve must return the partial result")
	}
	if _, err := r.Lookup(n.UserID("x1"), "k1"); !errors.Is(err, ErrResolveAborted) {
		t.Errorf("lookup of dropped object returned %v, want ErrResolveAborted", err)
	}
	if got := r.Certain(n.UserID("x1"), "k1"); got != tn.NoValue {
		t.Errorf("certain of dropped object = %q, want none", got)
	}
}

func TestResolveEmptyObjects(t *testing.T) {
	c, err := Compile(buildOscillator())
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Resolve(context.Background(), nil, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Keys()) != 0 {
		t.Errorf("keys=%v want none", r.Keys())
	}
}

func TestUnreachableNodeHasEmptyPoss(t *testing.T) {
	n := tn.New()
	r := n.AddUser("root")
	a := n.AddUser("a")
	b := n.AddUser("b") // not reachable from root
	n.SetExplicit(r, "seed")
	n.AddMapping(r, a, 2)
	_ = b
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Resolve(context.Background(), map[string]map[int]tn.Value{"k": {r: "v"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Possible(b, "k"); got != nil {
		t.Errorf("unreachable node poss=%v want nil", got)
	}
	if got := res.Possible(a, "k"); len(got) != 1 || got[0] != "v" {
		t.Errorf("poss(a)=%v want [v]", got)
	}
	if sup := c.Support(b); sup != nil {
		t.Errorf("unreachable support=%v want nil", sup)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(3)
	if !b.empty() {
		t.Error("fresh bitset must be empty")
	}
	for _, i := range []int{0, 63, 64, 130} {
		b.set(i)
	}
	var got []int
	b.each(func(i int) { got = append(got, i) })
	want := []int{0, 63, 64, 130}
	if len(got) != len(want) {
		t.Fatalf("each=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("each=%v want %v", got, want)
		}
	}
	o := newBitset(3)
	o.set(5)
	o.or(b)
	if o.empty() || o.key() == b.key() {
		t.Error("or/key broken")
	}
}
