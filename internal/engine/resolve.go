package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"trustmap/internal/tn"
)

// Options configures a bulk resolution run.
type Options struct {
	// Workers is the number of concurrent resolution goroutines. Zero or
	// negative means runtime.GOMAXPROCS(0). One worker runs the whole scan
	// inline, with no goroutines — the sequential engine path.
	Workers int
}

// BulkResult holds poss(x, k) for every node x and object k of one Resolve
// call. Results are independent of the worker count and of map iteration
// order: objects are processed and reported in sorted key order, and every
// possible-value set is sorted. A result stays valid after the compiled
// network it came from is superseded by Apply.
type BulkResult struct {
	c    *CompiledNetwork
	keys []string
	idx  map[string]int
	// poss[objIdx][supportID] is the sorted distinct values of the roots in
	// that support. Nodes sharing a support share the slice, and recurring
	// id sets share one canonical slice per worker (see intern.go).
	poss [][][]tn.Value
}

// Resolve computes the possible values of every node for every object.
// objects maps object keys to the root beliefs of that object; every root
// of the compiled network must have a value in every object (assumption
// (ii) of Section 4). Extra entries for non-root users are ignored, as in
// the SQL path.
//
// Objects are distributed over opts.Workers goroutines; each works on
// per-object scratch only (the compiled plan is shared immutably), so no
// locks are taken on the hot path and, in steady state, no allocations are
// made per object. Cancelling ctx stops the scan early.
func (c *CompiledNetwork) Resolve(ctx context.Context, objects map[string]map[int]tn.Value, opts Options) (*BulkResult, error) {
	c.ensureSupports()
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ns := len(c.supports)
	flat := make([][]tn.Value, len(keys)*ns)
	r := &BulkResult{
		c:    c,
		keys: keys,
		idx:  make(map[string]int, len(keys)),
		poss: make([][][]tn.Value, len(keys)),
	}
	for i, k := range keys {
		r.idx[k] = i
		r.poss[i] = flat[i*ns : (i+1)*ns : (i+1)*ns]
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		s := c.getScratch()
		defer c.putScratch(s)
		for i, k := range keys {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := c.resolveObject(s, k, objects[k], r.poss[i]); err != nil {
				return nil, err
			}
		}
		return r, nil
	}

	// Deterministic error reporting under concurrency: every worker keeps
	// the error of the smallest object index it failed on; the minimum
	// across workers is the error the sequential path would return first.
	type firstErr struct {
		idx int
		err error
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail *firstErr
		next int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(keys) || fail != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.getScratch()
			defer c.putScratch(s)
			for {
				if ctx.Err() != nil {
					return
				}
				i := claim()
				if i < 0 {
					return
				}
				if err := c.resolveObject(s, keys[i], objects[keys[i]], r.poss[i]); err != nil {
					mu.Lock()
					if fail == nil || i < fail.idx {
						fail = &firstErr{idx: i, err: err}
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fail != nil {
		return nil, fail.err
	}
	return r, nil
}

// Sentinel conditions for result lookups; see Lookup.
var (
	ErrUnknownObject = fmt.Errorf("engine: unknown object key")
	ErrOutOfRange    = fmt.Errorf("engine: node out of range")
)

// Keys returns the resolved object keys, sorted.
func (r *BulkResult) Keys() []string { return append([]string(nil), r.keys...) }

// Possible returns poss(x, k), sorted. The slice is shared; do not modify.
// It returns nil both when poss is empty and when x or k is unknown; use
// Lookup to distinguish.
func (r *BulkResult) Possible(x int, key string) []tn.Value {
	poss, _ := r.Lookup(x, key)
	return poss
}

// Lookup returns poss(x, k) like Possible, with the lookup failure made
// explicit: ErrUnknownObject when key was not resolved by this call,
// ErrOutOfRange when x is not a node of the compiled network. A nil error
// with an empty slice means the node genuinely has no possible values
// (unreachable from any root).
func (r *BulkResult) Lookup(x int, key string) ([]tn.Value, error) {
	i, ok := r.idx[key]
	if !ok {
		return nil, ErrUnknownObject
	}
	if x < 0 || x >= len(r.c.nodeSupport) {
		return nil, ErrOutOfRange
	}
	id := r.c.nodeSupport[x]
	if id < 0 {
		return nil, nil
	}
	return r.poss[i][id], nil
}

// Certain returns cert(x, k): the single possible value, or tn.NoValue.
func (r *BulkResult) Certain(x int, key string) tn.Value {
	poss := r.Possible(x, key)
	if len(poss) == 1 {
		return poss[0]
	}
	return tn.NoValue
}
