package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"trustmap/internal/tn"
)

// Options configures a bulk resolution run.
type Options struct {
	// Workers is the number of concurrent resolution goroutines. Zero or
	// negative means runtime.GOMAXPROCS(0). One worker runs the whole scan
	// inline, with no goroutines — the sequential engine path.
	Workers int
	// DisableDedup resolves every object independently instead of grouping
	// objects by root-assignment signature and resolving each distinct
	// signature once (dedup.go). Results are identical either way; the knob
	// exists for measurement and for batches known to be signature-free.
	DisableDedup bool
}

// BulkResult holds poss(x, k) for every node x and object k of one Resolve
// call. Results are independent of the worker count and of map iteration
// order: objects are processed and reported in sorted key order, and every
// possible-value set is sorted. A result stays valid after the compiled
// network it came from is superseded by Apply.
type BulkResult struct {
	c    *CompiledNetwork
	keys []string
	idx  map[string]int
	// poss[objIdx][supportID] is the sorted distinct values of the roots in
	// that support. Objects sharing a signature share the whole slice;
	// recurring value sets share one canonical slice per worker (intern.go).
	poss [][][]tn.Value
	// done marks objects actually resolved: all of them on a nil-error
	// return, a prefix-closed-under-signature subset after an aborted run.
	done  []bool
	dedup DedupStats
}

// Sentinel conditions for result lookups; see Lookup.
var (
	ErrUnknownObject = errors.New("engine: unknown object key")
	ErrOutOfRange    = errors.New("engine: node out of range")
	// ErrResolveAborted marks a partial result: the Resolve call was cut
	// short by context cancellation and this object was never resolved. The
	// aborted Resolve returns it (wrapping the context's error) alongside
	// the partial result; Lookup returns it for each dropped object.
	ErrResolveAborted = errors.New("engine: resolve aborted")
)

// failState keeps the error of the smallest object index any worker failed
// on: the error the sequential path would report first, making error
// reporting deterministic under concurrency.
type failState struct {
	mu  sync.Mutex
	idx int
	err error
}

func (f *failState) record(i int, err error) {
	f.mu.Lock()
	if f.err == nil || i < f.idx {
		f.idx, f.err = i, err
	}
	f.mu.Unlock()
}

// scan runs body(s, i) for every i in [0, n), distributed over workers,
// each with its own scratch arena. A body returning false — or context
// cancellation — stops the whole scan after in-flight bodies finish.
func (c *CompiledNetwork) scan(ctx context.Context, workers, n int, body func(s *scratch, i int) bool) {
	if n == 0 {
		return
	}
	var next atomic.Int64
	var stopped atomic.Bool
	run := func() {
		s := c.getScratch()
		defer c.putScratch(s)
		for {
			if stopped.Load() || ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if !body(s, i) {
				stopped.Store(true)
				return
			}
		}
	}
	if workers <= 1 {
		run()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	wg.Wait()
}

// Resolve computes the possible values of every node for every object.
// objects maps object keys to the root beliefs of that object; every root
// of the compiled network must have a value in every object (assumption
// (ii) of Section 4). Extra entries for non-root users are ignored, as in
// the SQL path.
//
// The scan deduplicates by signature (dedup.go) unless opts.DisableDedup:
// objects are transposed into interned root-assignment columns in parallel,
// grouped into distinct signatures, and each signature is resolved exactly
// once — consulting the artifact's cross-batch signature cache first — with
// the canonical result fanned out to all member objects. Workers share no
// mutable state on the gather path and, in steady state, allocate nothing
// per object.
//
// Cancelling ctx stops the scan early and returns the partial result with
// an error wrapping ErrResolveAborted; Lookup reports the dropped objects
// individually. A malformed object (missing root belief) returns a nil
// result and the error of the smallest failing object index.
func (c *CompiledNetwork) Resolve(ctx context.Context, objects map[string]map[int]tn.Value, opts Options) (*BulkResult, error) {
	c.ensureSupports()
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ns := len(c.supports)
	r := &BulkResult{
		c:    c,
		keys: keys,
		idx:  make(map[string]int, len(keys)),
		poss: make([][][]tn.Value, len(keys)),
		done: make([]bool, len(keys)),
	}
	for i, k := range keys {
		r.idx[k] = i
	}
	if len(keys) == 0 {
		return r, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	liveRoots := c.numLiveRoots()
	fail := failState{idx: -1}

	if opts.DisableDedup {
		r.dedup = DedupStats{Objects: len(keys)}
		flat := make([][]tn.Value, len(keys)*ns)
		c.scan(ctx, workers, len(keys), func(s *scratch, i int) bool {
			if err := c.fillColumn(s, keys[i], objects[keys[i]], liveRoots); err != nil {
				fail.record(i, err)
				return false
			}
			dst := flat[i*ns : (i+1)*ns : (i+1)*ns]
			c.resolveColumn(s, s.col, dst)
			r.poss[i] = dst
			r.done[i] = true
			return true
		})
		return r.finish(ctx, &fail)
	}

	// Phase 1: transpose and hash every object's beliefs, claiming its
	// signature group — parallel, with one short critical section per
	// object inside claim. When the batch probes as signature-free the
	// grouping bails out and the tail resolves directly (dedup.go).
	groups := newSigGroups(64)
	var direct atomic.Int64
	sigOf := make([]int32, len(keys))
	for i := range sigOf {
		sigOf[i] = -1
	}
	c.scan(ctx, workers, len(keys), func(s *scratch, i int) bool {
		if err := c.fillColumn(s, keys[i], objects[keys[i]], liveRoots); err != nil {
			fail.record(i, err)
			return false
		}
		if groups.bailed.Load() {
			dst := make([][]tn.Value, ns)
			c.resolveColumn(s, s.col, dst)
			r.poss[i] = dst
			r.done[i] = true
			direct.Add(1)
			return true
		}
		sigOf[i] = groups.claim(s.col, hashColumn(s.col))
		return true
	})
	r.dedup.Objects = len(keys)
	r.dedup.DistinctSignatures = len(groups.groups) + int(direct.Load())
	r.dedup.Resolved = int(direct.Load())
	if fail.err != nil || ctx.Err() != nil {
		return r.finish(ctx, &fail)
	}

	// Phase 2: consult the cross-batch cache, then resolve each remaining
	// signature exactly once, in parallel.
	misses := make([]*sigGroup, 0, len(groups.groups))
	for _, g := range groups.groups {
		if g.res = c.sigs.get(g.hash, g.col); g.res != nil {
			r.dedup.CacheHits++
		} else {
			misses = append(misses, g)
		}
	}
	w := workers
	if w > len(misses) {
		w = len(misses)
	}
	// A batch that bailed out probed as signature-free: resolve its groups
	// but keep them out of the cross-batch cache, which exists for
	// recurring signatures and would only be polluted (and eventually
	// flushed) by one-off ones.
	cache := !groups.bailed.Load()
	c.scan(ctx, w, len(misses), func(s *scratch, gi int) bool {
		g := misses[gi]
		dst := make([][]tn.Value, ns)
		c.resolveColumn(s, g.col, dst)
		g.res = dst
		if cache {
			c.sigs.put(g.hash, g.col, dst)
		}
		return true
	})
	for _, g := range misses {
		if g.res != nil {
			r.dedup.Resolved++
		}
	}

	// Phase 3: fan each signature's canonical result out to its members.
	for i, gi := range sigOf {
		if gi >= 0 {
			if res := groups.groups[gi].res; res != nil {
				r.poss[i] = res
				r.done[i] = true
			}
		}
	}
	return r.finish(ctx, &fail)
}

// finish settles a Resolve return: a worker error wins (nil result), then
// cancellation (partial result, ErrResolveAborted), then success.
func (r *BulkResult) finish(ctx context.Context, fail *failState) (*BulkResult, error) {
	if fail.err != nil {
		return nil, fail.err
	}
	if err := ctx.Err(); err != nil {
		return r, fmt.Errorf("%w: %w", ErrResolveAborted, err)
	}
	return r, nil
}

// Keys returns the resolved object keys, sorted.
func (r *BulkResult) Keys() []string { return append([]string(nil), r.keys...) }

// Dedup reports the signature-deduplication counters of the Resolve call
// that produced this result.
func (r *BulkResult) Dedup() DedupStats { return r.dedup }

// Possible returns poss(x, k), sorted. The slice is shared; do not modify.
// It returns nil when poss is empty, when x or k is unknown, and when the
// object was dropped by an aborted Resolve; use Lookup to distinguish.
func (r *BulkResult) Possible(x int, key string) []tn.Value {
	poss, _ := r.Lookup(x, key)
	return poss
}

// Lookup returns poss(x, k) like Possible, with the lookup failure made
// explicit: ErrUnknownObject when key was not part of the Resolve call,
// ErrOutOfRange when x is not a node of the compiled network, and
// ErrResolveAborted when the call was cancelled before reaching this
// object. A nil error with an empty slice means the node genuinely has no
// possible values (unreachable from any root).
func (r *BulkResult) Lookup(x int, key string) ([]tn.Value, error) {
	i, ok := r.idx[key]
	if !ok {
		return nil, ErrUnknownObject
	}
	if x < 0 || x >= len(r.c.nodeSupport) {
		return nil, ErrOutOfRange
	}
	if !r.done[i] {
		return nil, ErrResolveAborted
	}
	id := r.c.nodeSupport[x]
	if id < 0 {
		return nil, nil
	}
	return r.poss[i][id], nil
}

// Certain returns cert(x, k): the single possible value, or tn.NoValue —
// also for dropped objects of an aborted Resolve (Lookup tells them apart).
func (r *BulkResult) Certain(x int, key string) tn.Value {
	poss := r.Possible(x, key)
	if len(poss) == 1 {
		return poss[0]
	}
	return tn.NoValue
}
