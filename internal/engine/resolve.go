package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"trustmap/internal/tn"
)

// Options configures a bulk resolution run.
type Options struct {
	// Workers is the number of concurrent resolution goroutines. Zero or
	// negative means runtime.GOMAXPROCS(0). One worker runs the whole scan
	// inline, with no goroutines — the sequential engine path.
	Workers int
}

// BulkResult holds poss(x, k) for every node x and object k of one Resolve
// call. Results are independent of the worker count and of map iteration
// order: objects are processed and reported in sorted key order, and every
// possible-value set is sorted.
type BulkResult struct {
	c    *CompiledNetwork
	keys []string
	idx  map[string]int
	// poss[objIdx][supportID] is the sorted distinct values of the roots in
	// that support. Nodes sharing a support share the slice.
	poss [][][]tn.Value
}

// Resolve computes the possible values of every node for every object.
// objects maps object keys to the root beliefs of that object; every root
// of the compiled network must have a value in every object (assumption
// (ii) of Section 4). Extra entries for non-root users are ignored, as in
// the SQL path.
//
// Objects are distributed over opts.Workers goroutines; each works on
// per-object state only (the compiled plan is shared immutably), so no
// locks are taken on the hot path. Cancelling ctx stops the scan early.
func (c *CompiledNetwork) Resolve(ctx context.Context, objects map[string]map[int]tn.Value, opts Options) (*BulkResult, error) {
	c.ensureSupports()
	keys := make([]string, 0, len(objects))
	for k := range objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r := &BulkResult{
		c:    c,
		keys: keys,
		idx:  make(map[string]int, len(keys)),
		poss: make([][][]tn.Value, len(keys)),
	}
	for i, k := range keys {
		r.idx[k] = i
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		for i, k := range keys {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			poss, err := c.resolveObject(k, objects[k])
			if err != nil {
				return nil, err
			}
			r.poss[i] = poss
		}
		return r, nil
	}

	// Deterministic error reporting under concurrency: every worker keeps
	// the error of the smallest object index it failed on; the minimum
	// across workers is the error the sequential path would return first.
	type firstErr struct {
		idx int
		err error
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail *firstErr
		next int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(keys) || fail != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := claim()
				if i < 0 {
					return
				}
				poss, err := c.resolveObject(keys[i], objects[keys[i]])
				if err != nil {
					mu.Lock()
					if fail == nil || i < fail.idx {
						fail = &firstErr{idx: i, err: err}
					}
					mu.Unlock()
					return
				}
				r.poss[i] = poss
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fail != nil {
		return nil, fail.err
	}
	return r, nil
}

// resolveObject materializes the per-support value sets for one object: a
// pure function of the compiled supports and the object's root beliefs.
func (c *CompiledNetwork) resolveObject(key string, beliefs map[int]tn.Value) ([][]tn.Value, error) {
	rootVals := make([]tn.Value, len(c.roots))
	for i, root := range c.roots {
		v, ok := beliefs[root]
		if !ok {
			return nil, fmt.Errorf("engine: object %q misses a belief for root user %s (assumption ii)", key, c.net.Name(root))
		}
		rootVals[i] = v
	}
	out := make([][]tn.Value, len(c.supports))
	var buf []tn.Value
	for si, sup := range c.supports {
		buf = buf[:0]
		sup.each(func(i int) { buf = append(buf, rootVals[i]) })
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		vals := make([]tn.Value, 0, len(buf))
		for _, v := range buf {
			if len(vals) == 0 || vals[len(vals)-1] != v {
				vals = append(vals, v)
			}
		}
		out[si] = vals
	}
	return out, nil
}

// Keys returns the resolved object keys, sorted.
func (r *BulkResult) Keys() []string { return append([]string(nil), r.keys...) }

// Possible returns poss(x, k), sorted. The slice is shared; do not modify.
func (r *BulkResult) Possible(x int, key string) []tn.Value {
	i, ok := r.idx[key]
	if !ok || x < 0 || x >= len(r.c.nodeSupport) {
		return nil
	}
	id := r.c.nodeSupport[x]
	if id < 0 {
		return nil
	}
	return r.poss[i][id]
}

// Certain returns cert(x, k): the single possible value, or tn.NoValue.
func (r *BulkResult) Certain(x int, key string) tn.Value {
	poss := r.Possible(x, key)
	if len(poss) == 1 {
		return poss[0]
	}
	return tn.NoValue
}
