package engine

import (
	"math/rand"
	"testing"

	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// replayAllSupports seeds the root singletons and replays the full plan
// with the given worker count, returning the per-node support bitsets.
func replayAllSupports(c *CompiledNetwork, workers int) []bitset {
	words := (len(c.rootSlots) + 63) / 64
	byNode := make([]bitset, c.net.NumUsers())
	for i, r := range c.rootSlots {
		if r < 0 {
			continue
		}
		b := newBitset(words)
		b.set(i)
		byNode[r] = b
	}
	c.replaySteps(byNode, words, workers)
	return byNode
}

// TestReplayStepsParallelMatchesSequential forces the component-parallel
// support replay (which GOMAXPROCS=1 machines never take on their own) and
// requires bitset-identical output at every worker count. Run under -race
// this also checks the level barriers.
func TestReplayStepsParallelMatchesSequential(t *testing.T) {
	for _, build := range []func() *tn.Network{
		func() *tn.Network {
			n := workload.PowerLaw(rand.New(rand.NewSource(13)), 3000, 3, 0.05, []tn.Value{"v", "w"})
			return tn.Binarize(n)
		},
		func() *tn.Network { return tn.Binarize(workload.NestedSCC(80)) },
		func() *tn.Network { return tn.Binarize(workload.OscillatorClusters(100)) },
	} {
		bin := build()
		c, err := Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.planRanges) < minParallelRanges {
			t.Fatalf("workload too small to exercise the parallel replay: %d ranges", len(c.planRanges))
		}
		want := replayAllSupports(c, 1)
		for _, workers := range []int{2, 4, 8} {
			got := replayAllSupports(c, workers)
			for x := range want {
				w, g := want[x], got[x]
				if (w == nil) != (g == nil) {
					t.Fatalf("workers=%d node %s: nil mismatch", workers, bin.Name(x))
				}
				if w == nil {
					continue
				}
				if w.key() != g.key() {
					t.Fatalf("workers=%d node %s: support %v vs %v", workers, bin.Name(x), g, w)
				}
			}
		}
	}
}

// TestInCSRBucketsRoundTrip checks the diagnostic bucket reconstruction
// against the flat rows on a network with ties and unreachable parents.
func TestInCSRBucketsRoundTrip(t *testing.T) {
	n := tn.New()
	r := n.AddUser("r")
	dead := n.AddUser("dead") // no belief, no parents: unreachable
	a, b := n.AddUser("a"), n.AddUser("b")
	n.SetExplicit(r, "seed")
	n.AddMapping(r, a, 2)
	n.AddMapping(dead, a, 3) // outranks r but filtered: dead is unreachable
	n.AddMapping(r, b, 1)
	n.AddMapping(a, b, 1) // tie
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Incoming(dead); got != nil {
		t.Errorf("Incoming(dead)=%v want nil", got)
	}
	ba := c.Incoming(a)
	if len(ba) != 1 || ba[0].Priority != 2 || len(ba[0].Parents) != 1 || ba[0].Parents[0] != r {
		t.Errorf("Incoming(a)=%+v want one bucket {2:[r]}", ba)
	}
	if p, ok := c.preferredParent(a); !ok || p != r {
		t.Errorf("preferredParent(a)=%d,%v want r", p, ok)
	}
	bb := c.Incoming(b)
	if len(bb) != 1 || len(bb[0].Parents) != 2 {
		t.Errorf("Incoming(b)=%+v want one tied bucket of 2", bb)
	}
	if _, ok := c.preferredParent(b); ok {
		t.Error("tied node must have no preferred parent")
	}
}
