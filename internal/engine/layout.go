package engine

// Flat CSR layouts of the compiled artifact's per-node tables. The first
// engine revisions stored the effective incoming-trust table as a
// [][]PriorityBucket — a slice of slices of slices — and the root supports
// as per-support bitsets walked with bit tricks on every gather. Both are
// pointer-chasing layouts: resolving an object hops between small heap
// objects, and the compiled artifact carries three levels of slice headers
// per node. This file flattens them into offset+value int32 arrays
// (compressed sparse rows):
//
//   - inCSR holds every node's effective incoming mappings (reachable
//     parents only) in two parallel value arrays indexed by one offset
//     array, rows ordered priority descending then parent ascending — the
//     order tn.Network.In maintains — so preferred-parent and tie checks
//     are two adjacent loads;
//   - the root supports flatten into supOff/supRoots on CompiledNetwork:
//     support id -> a contiguous run of root slots, ascending. The
//     per-signature gather scans one contiguous int32 run per support with
//     no bit iteration and no branches beyond the tombstone guard.
//
// The builder-side representations stay what they were: construction and
// incremental splicing still reason over tn.Network.In and support
// bitsets (dedup needs the set semantics); the CSR arrays are derived from
// them at Compile/Apply time and are the only thing the resolve hot path
// touches.

import "trustmap/internal/tn"

// inCSR is the flattened effective incoming-trust table: rows[off[x]:
// off[x+1]] are node x's incoming mappings from reachable parents,
// priority descending, parent ascending within a priority.
type inCSR struct {
	off    []int32 // len = numNodes + 1
	parent []int32
	prio   []int32
}

// buildInCSR flattens the effective incoming tables of all nodes.
func buildInCSR(net *tn.Network, reach []bool) inCSR {
	nu := net.NumUsers()
	t := inCSR{off: make([]int32, nu+1)}
	total := 0
	for x := 0; x < nu; x++ {
		for _, m := range net.In(x) {
			if reach[m.Parent] {
				total++
			}
		}
	}
	t.parent = make([]int32, 0, total)
	t.prio = make([]int32, 0, total)
	for x := 0; x < nu; x++ {
		t.appendRows(net, reach, x)
		t.off[x+1] = int32(len(t.parent))
	}
	return t
}

// appendRows appends node x's effective rows; the caller owns the offsets.
func (t *inCSR) appendRows(net *tn.Network, reach []bool, x int) {
	for _, m := range net.In(x) { // sorted: priority desc, parent asc
		if reach[m.Parent] {
			t.parent = append(t.parent, int32(m.Parent))
			t.prio = append(t.prio, int32(m.Priority))
		}
	}
}

// preferred returns x's effective preferred parent: the sole row of the top
// priority bucket. ok is false on a tie or when x has no reachable parents.
func (t *inCSR) preferred(x int) (int, bool) {
	lo, hi := t.off[x], t.off[x+1]
	if lo == hi || (hi-lo > 1 && t.prio[lo] == t.prio[lo+1]) {
		return -1, false
	}
	return int(t.parent[lo]), true
}

// buckets reconstructs the priority-bucketed view of node x's rows for
// diagnostic consumers; nil when x has no effective incoming mappings.
func (t *inCSR) buckets(x int) []PriorityBucket {
	var out []PriorityBucket
	for i := t.off[x]; i < t.off[x+1]; i++ {
		p := int(t.prio[i])
		if k := len(out); k > 0 && out[k-1].Priority == p {
			out[k-1].Parents = append(out[k-1].Parents, int(t.parent[i]))
		} else {
			out = append(out, PriorityBucket{Priority: p, Parents: []int{int(t.parent[i])}})
		}
	}
	return out
}

// splice builds the successor table after an Apply: clean nodes copy their
// rows from the base (their parents' reachability is unchanged — the dirty
// region is downstream-closed), dirty nodes recompute from the mutated
// network under the new reachability. nuNew may exceed the base width;
// the new nodes are dirty or rowless.
func (t inCSR) splice(net *tn.Network, reach []bool, dirty []bool, nuNew int) inCSR {
	n := inCSR{
		off:    make([]int32, nuNew+1),
		parent: make([]int32, 0, len(t.parent)),
		prio:   make([]int32, 0, len(t.prio)),
	}
	for x := 0; x < nuNew; x++ {
		if x < len(t.off)-1 && !dirty[x] {
			lo, hi := t.off[x], t.off[x+1]
			n.parent = append(n.parent, t.parent[lo:hi]...)
			n.prio = append(n.prio, t.prio[lo:hi]...)
		} else {
			n.appendRows(net, reach, x)
		}
		n.off[x+1] = int32(len(n.parent))
	}
	return n
}

// grow widens the table to nuNew nodes with no rows of their own, sharing
// the row arrays with the base (the grown-users-only Apply path).
func (t inCSR) grow(nuNew int) inCSR {
	off := make([]int32, nuNew+1)
	copy(off, t.off)
	for x := len(t.off); x <= nuNew; x++ {
		off[x] = off[len(t.off)-1]
	}
	return inCSR{off: off, parent: t.parent, prio: t.prio}
}

// flattenSupports derives the CSR view of the support table: supRoots
// holds each support's root slots ascending, supOff indexes it by support
// id. Called whenever the support table changes (buildSupports, Apply
// splice, compaction).
func (c *CompiledNetwork) flattenSupports() {
	total := 0
	for _, b := range c.supports {
		total += b.count()
	}
	c.supOff = make([]int32, len(c.supports)+1)
	c.supRoots = make([]int32, 0, total)
	for i, b := range c.supports {
		b.each(func(slot int) { c.supRoots = append(c.supRoots, int32(slot)) })
		c.supOff[i+1] = int32(len(c.supRoots))
	}
}
