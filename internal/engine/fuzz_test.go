package engine

// FuzzEngineParity drives random binary networks through random mutation
// sequences and asserts the three-way invariant at every checkpoint:
// incremental Apply, from-scratch Compile, and per-object Algorithm 1 all
// agree on every node's possible values. The byte input is an op tape —
// deterministic, minimizable, and friendly to coverage-guided mutation.

import (
	"context"
	"fmt"
	"testing"

	"trustmap/internal/resolve"
	"trustmap/internal/tn"
)

// fuzzTape decodes bytes into bounded integers.
type fuzzTape struct {
	data []byte
	pos  int
}

func (t *fuzzTape) next(bound int) int {
	if t.pos >= len(t.data) || bound <= 0 {
		return 0
	}
	b := int(t.data[t.pos])
	t.pos++
	return b % bound
}

func (t *fuzzTape) done() bool { return t.pos >= len(t.data) }

// applyTapeOp performs one binary-invariant-preserving mutation drawn from
// the tape; illegal draws are skipped.
func applyTapeOp(tape *fuzzTape, n *tn.Network) {
	nu := n.NumUsers()
	switch tape.next(6) {
	case 0: // add mapping
		x := tape.next(nu)
		z := tape.next(nu)
		if x == z || len(n.In(x)) >= 2 || n.HasExplicit(x) {
			return
		}
		for _, m := range n.In(x) {
			if m.Parent == z {
				return
			}
		}
		n.AddMapping(z, x, 1+tape.next(3))
	case 1: // remove mapping
		x := tape.next(nu)
		in := n.In(x)
		if len(in) == 0 {
			return
		}
		n.RemoveMapping(in[tape.next(len(in))].Parent, x)
	case 2: // re-prioritize
		x := tape.next(nu)
		in := n.In(x)
		if len(in) == 0 {
			return
		}
		n.SetMappingPriority(in[tape.next(len(in))].Parent, x, 1+tape.next(3))
	case 3: // grant belief on a parentless node
		x := tape.next(nu)
		if len(n.In(x)) > 0 || n.HasExplicit(x) {
			return
		}
		n.SetExplicit(x, tn.Value(fmt.Sprintf("v%d", tape.next(3))))
	case 4: // revoke belief
		x := tape.next(nu)
		if !n.HasExplicit(x) {
			return
		}
		n.SetExplicit(x, tn.NoValue)
	case 5: // add user, possibly wired to an existing parent
		id := n.AddUser(fmt.Sprintf("f%d", nu))
		if tape.next(2) == 1 {
			z := tape.next(nu)
			if z != id {
				n.AddMapping(z, id, 1+tape.next(3))
			}
		}
	}
}

func FuzzEngineParity(f *testing.F) {
	f.Add([]byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{4, 3, 1, 0, 0, 2, 1, 1, 5, 1, 3, 0, 1, 1, 2, 2, 4, 0})
	f.Add([]byte{12, 0, 1, 2, 0, 2, 1, 1, 0, 3, 2, 2, 5, 0, 4, 1, 1, 2, 0, 5, 1, 3, 0, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 512 {
			t.Skip()
		}
		tape := &fuzzTape{data: data}
		nUsers := 3 + tape.next(13)
		net := tn.New()
		for i := 0; i < nUsers; i++ {
			net.AddUser(fmt.Sprintf("u%d", i))
		}
		net.SetExplicit(tape.next(nUsers), "v0")
		// Initial wiring from the tape.
		for i := 0; i < nUsers; i++ {
			applyTapeOp(tape, net)
		}
		net.EnableJournal()
		net.DrainJournal()
		c, err := Compile(net)
		if err != nil {
			t.Fatalf("seed network not binary: %v", err)
		}
		for !tape.done() {
			// A batch of 1-4 mutations, then an Apply checkpoint.
			for i, k := 0, 1+tape.next(4); i < k; i++ {
				applyTapeOp(tape, net)
			}
			opts := ApplyOptions{MaxDirtyFraction: 1}
			if tape.next(3) == 0 {
				opts = ApplyOptions{} // exercise the fallback threshold too
			}
			next, _, err := c.Apply(net.DrainJournal(), opts)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			c = next
			checkFuzzParity(t, c)
		}
	})
}

// checkFuzzParity asserts Apply ≡ fresh Compile ≡ Algorithm 1 for one
// deterministic object over the current roots, resolved both through the
// signature-dedup path (with a duplicate object exercising the fan-out and
// a second call exercising the cross-batch cache) and with dedup disabled.
func checkFuzzParity(t *testing.T, c *CompiledNetwork) {
	t.Helper()
	fresh, err := Compile(c.net.Clone())
	if err != nil {
		t.Fatalf("fresh compile: %v", err)
	}
	beliefs := make(map[int]tn.Value)
	for _, r := range c.Roots() {
		beliefs[r] = tn.Value(fmt.Sprintf("v%d", r%3))
	}
	// "k" and "kdup" share a signature; the dedup path resolves it once.
	objs := map[string]map[int]tn.Value{"k": beliefs, "kdup": beliefs}
	got, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatalf("apply resolve: %v", err)
	}
	if st := got.Dedup(); st.DistinctSignatures != 1 {
		t.Fatalf("equal objects grouped into %d signatures", st.DistinctSignatures)
	}
	nodedup, err := c.Resolve(context.Background(), objs, Options{Workers: 1, DisableDedup: true})
	if err != nil {
		t.Fatalf("nodedup resolve: %v", err)
	}
	cached, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatalf("cached resolve: %v", err)
	}
	if st := cached.Dedup(); st.CacheHits != 1 || st.Resolved != 0 {
		t.Fatalf("second resolve not served from the signature cache: %+v", st)
	}
	want, err := fresh.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatalf("fresh resolve: %v", err)
	}
	per := c.net.Clone()
	for x, v := range beliefs {
		per.SetExplicit(x, v)
	}
	oracle := resolve.Resolve(per)
	for x := 0; x < c.net.NumUsers(); x++ {
		for _, k := range []string{"k", "kdup"} {
			g := got.Possible(x, k)
			if w := want.Possible(x, k); !sameValues(g, w) {
				t.Fatalf("poss(%s, %s): apply %v vs fresh %v", c.net.Name(x), k, g, w)
			}
			if nd := nodedup.Possible(x, k); !sameValues(g, nd) {
				t.Fatalf("poss(%s, %s): dedup %v vs nodedup %v", c.net.Name(x), k, g, nd)
			}
			if cc := cached.Possible(x, k); !sameValues(g, cc) {
				t.Fatalf("poss(%s, %s): first batch %v vs cached batch %v", c.net.Name(x), k, g, cc)
			}
			if o := oracle.Possible(x); !sameValues(g, o) {
				t.Fatalf("poss(%s, %s): apply %v vs algorithm 1 %v", c.net.Name(x), k, g, o)
			}
		}
	}
}
