package engine_test

// Parity tests: the concurrent compiled engine must return byte-identical
// possible/certain sets to the sequential SQL bulk path and to per-object
// Algorithm 1, for every worker count.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"trustmap/internal/bulk"
	"trustmap/internal/engine"
	"trustmap/internal/resolve"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// rootsOf lists the explicit-belief users of a (binarized) network.
func rootsOf(n *tn.Network) []int {
	var roots []int
	for x := 0; x < n.NumUsers(); x++ {
		if n.HasExplicit(x) {
			roots = append(roots, x)
		}
	}
	return roots
}

// assertSameAsStore checks poss/cert equality between the engine result and
// the SQL store for every node and object.
func assertSameAsStore(t *testing.T, label string, n *tn.Network, objs map[string]map[int]tn.Value, r *engine.BulkResult, s *bulk.Store) {
	t.Helper()
	for k := range objs {
		for x := 0; x < n.NumUsers(); x++ {
			want := s.Possible(x, k)
			got := r.Possible(x, k)
			if len(got) != len(want) {
				t.Fatalf("%s: poss(%s, %s): engine %v vs store %v", label, n.Name(x), k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: poss(%s, %s): engine %v vs store %v", label, n.Name(x), k, got, want)
				}
			}
			if r.Certain(x, k) != s.Certain(x, k) {
				t.Fatalf("%s: cert(%s, %s): engine %q vs store %q", label, n.Name(x), k, r.Certain(x, k), s.Certain(x, k))
			}
		}
	}
}

// runStore resolves the objects through the legacy sequential SQL path.
func runStore(t *testing.T, n *tn.Network, objs map[string]map[int]tn.Value) *bulk.Store {
	t.Helper()
	plan, err := bulk.NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	s := bulk.NewStore(plan)
	if err := s.LoadObjects(objs); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	return s
}

// parityCase is the matrix of the parity satellite: one workload family
// crossed with worker counts including 1. The single-worker result is
// checked byte-for-byte against the sequential SQL store; the other worker
// counts are checked byte-for-byte against the single-worker result
// (querying the store once keeps the SQL round-trips linear).
func parityCase(t *testing.T, label string, bin *tn.Network, objs map[string]map[int]tn.Value) {
	t.Helper()
	c, err := engine.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	store := runStore(t, bin, objs)
	base, err := c.Resolve(context.Background(), objs, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAsStore(t, label+"/workers=1", bin, objs, base, store)
	for _, workers := range []int{2, 4, 8} {
		r, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for k := range objs {
			for x := 0; x < bin.NumUsers(); x++ {
				want := base.Possible(x, k)
				got := r.Possible(x, k)
				if len(got) != len(want) {
					t.Fatalf("%s/workers=%d: poss(%s, %s): %v vs %v", label, workers, bin.Name(x), k, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s/workers=%d: poss(%s, %s): %v vs %v", label, workers, bin.Name(x), k, got, want)
					}
				}
			}
		}
	}
}

func TestParityPowerLaw(t *testing.T) {
	n := workload.PowerLaw(rand.New(rand.NewSource(42)), 200, 3, 0.1, []tn.Value{"v", "w", "u"})
	bin := tn.Binarize(n)
	objs := workload.BulkObjects(rand.New(rand.NewSource(7)), rootsOf(bin), 25)
	parityCase(t, "powerlaw", bin, objs)
}

func TestParityNestedSCC(t *testing.T) {
	bin := tn.Binarize(workload.NestedSCC(30))
	objs := workload.BulkObjects(rand.New(rand.NewSource(8)), rootsOf(bin), 25)
	parityCase(t, "nestedSCC", bin, objs)
}

func TestParityFig19BulkObjects(t *testing.T) {
	net, roots := workload.Fig19()
	bin := tn.Binarize(net)
	objs := workload.BulkObjects(rand.New(rand.NewSource(9)), roots, 50)
	parityCase(t, "fig19", bin, objs)
}

// TestParityOscillatorClusters exercises many disconnected flooded SCCs.
func TestParityOscillatorClusters(t *testing.T) {
	bin := tn.Binarize(workload.OscillatorClusters(12))
	objs := workload.BulkObjects(rand.New(rand.NewSource(10)), rootsOf(bin), 20)
	parityCase(t, "oscillators", bin, objs)
}

// TestEngineMatchesPerObjectResolve cross-checks the engine against
// Algorithm 1 run per object on random binary networks: the same oracle
// the SQL path is tested against.
func TestEngineMatchesPerObjectResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	values := []tn.Value{"v", "w", "u"}
	for iter := 0; iter < 60; iter++ {
		n := workload.RandomBTN(rng, 3+rng.Intn(10), 0.3, values)
		bin := tn.Binarize(n)
		c, err := engine.Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		objs := map[string]map[int]tn.Value{}
		for o := 0; o < 1+rng.Intn(5); o++ {
			bs := map[int]tn.Value{}
			for _, r := range c.Roots() {
				bs[r] = values[rng.Intn(len(values))]
			}
			objs[fmt.Sprintf("k%d", o)] = bs
		}
		workers := 1 + rng.Intn(4)
		r, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for k, bs := range objs {
			per := bin.Clone()
			for x, v := range bs {
				per.SetExplicit(x, v)
			}
			oracle := resolve.Resolve(per)
			for x := 0; x < bin.NumUsers(); x++ {
				want := oracle.Possible(x)
				got := r.Possible(x, k)
				if len(got) != len(want) {
					t.Fatalf("iter %d obj %s poss(%s): engine %v vs oracle %v", iter, k, bin.Name(x), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("iter %d obj %s poss(%s): engine %v vs oracle %v", iter, k, bin.Name(x), got, want)
					}
				}
			}
		}
	}
}

// TestResolveDeterministicAcrossWorkerCounts resolves the same input at
// several worker counts and requires byte-identical outputs.
func TestResolveDeterministicAcrossWorkerCounts(t *testing.T) {
	n := workload.PowerLaw(rand.New(rand.NewSource(5)), 120, 3, 0.15, []tn.Value{"a", "b", "c", "d"})
	bin := tn.Binarize(n)
	c, err := engine.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	objs := workload.BulkObjects(rand.New(rand.NewSource(6)), rootsOf(bin), 40)
	base, err := c.Resolve(context.Background(), objs, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		r, err := c.Resolve(context.Background(), objs, engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range base.Keys() {
			for x := 0; x < bin.NumUsers(); x++ {
				want := base.Possible(x, k)
				got := r.Possible(x, k)
				if len(got) != len(want) {
					t.Fatalf("workers=%d obj %s node %s: %v vs %v", workers, k, bin.Name(x), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d obj %s node %s: %v vs %v", workers, k, bin.Name(x), got, want)
					}
				}
			}
		}
	}
}
