package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// TestResolveObjectZeroAllocs is the hard gate on the columnar hot path:
// once the value dictionary and the worker arena are warm, resolving an
// object must not allocate at all.
func TestResolveObjectZeroAllocs(t *testing.T) {
	n := workload.PowerLaw(rand.New(rand.NewSource(42)), 1000, 3, 0.1, []tn.Value{"v", "w", "u", "z"})
	bin := tn.Binarize(n)
	c, err := Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	c.ensureSupports()
	beliefs := make(map[int]tn.Value)
	for _, r := range c.Roots() {
		beliefs[r] = tn.Value(fmt.Sprintf("v%d", r%4))
	}
	s := c.getScratch()
	defer c.putScratch(s)
	dst := make([][]tn.Value, len(c.supports))
	if err := c.resolveObject(s, "warm", beliefs, dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.resolveObject(s, "steady", beliefs, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state resolveObject allocates %.1f times per object, want 0", allocs)
	}
}

// TestValueDict exercises the interning dictionary directly.
func TestValueDict(t *testing.T) {
	d := newValueDict()
	a := d.id("fish")
	if d.id("fish") != a {
		t.Error("re-interning must return the same id")
	}
	b := d.id("jar")
	if a == b {
		t.Error("distinct values must get distinct ids")
	}
	vals := d.snapshot()
	if vals[a] != "fish" || vals[b] != "jar" {
		t.Errorf("snapshot mismatch: %v", vals)
	}
}

// TestResolveSharedSetsAcrossObjects checks that recurring conflict
// patterns share one canonical slice and that sets are value-sorted even
// when the interning order differs from the lexicographic order.
func TestResolveSharedSetsAcrossObjects(t *testing.T) {
	n := tn.New()
	x1, x2 := n.AddUser("x1"), n.AddUser("x2")
	x3, x4 := n.AddUser("x3"), n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	n.SetExplicit(x3, "seed")
	n.SetExplicit(x4, "seed")
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	// "zz" is interned before "aa": sorting by id would be wrong.
	objs := map[string]map[int]tn.Value{
		"o1": {x3: "zz", x4: "aa"},
		"o2": {x3: "zz", x4: "aa"},
		"o3": {x3: "aa", x4: "zz"}, // same set, opposite assignment
	}
	r, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"o1", "o2", "o3"} {
		got := r.Possible(x1, k)
		if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
			t.Fatalf("poss(x1, %s)=%v want [aa zz] (lexicographic)", k, got)
		}
	}
	// Same worker, same id set: the slices must be shared, not merely equal.
	if &r.Possible(x1, "o1")[0] != &r.Possible(x1, "o2")[0] {
		t.Error("recurring id set must share one canonical slice")
	}
}

// TestBulkResultLookupSentinels covers the explicit failure modes of
// result lookups.
func TestBulkResultLookupSentinels(t *testing.T) {
	n := tn.New()
	r := n.AddUser("r")
	a := n.AddUser("a")
	b := n.AddUser("b") // unreachable
	n.SetExplicit(r, "seed")
	n.AddMapping(r, a, 2)
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Resolve(context.Background(), map[string]map[int]tn.Value{"k": {r: "v"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Lookup(a, "missing"); err != ErrUnknownObject {
		t.Errorf("unknown object: err=%v want ErrUnknownObject", err)
	}
	if _, err := res.Lookup(-1, "k"); err != ErrOutOfRange {
		t.Errorf("negative node: err=%v want ErrOutOfRange", err)
	}
	if _, err := res.Lookup(99, "k"); err != ErrOutOfRange {
		t.Errorf("out-of-range node: err=%v want ErrOutOfRange", err)
	}
	if poss, err := res.Lookup(b, "k"); err != nil || poss != nil {
		t.Errorf("unreachable node: poss=%v err=%v want empty, nil", poss, err)
	}
	if poss, err := res.Lookup(a, "k"); err != nil || len(poss) != 1 || poss[0] != "v" {
		t.Errorf("lookup(a)=%v,%v want [v]", poss, err)
	}
}

// BenchmarkResolveObjectSteadyState measures the raw per-object hot path
// with a warm arena: the zero-allocation columnar gather.
func BenchmarkResolveObjectSteadyState(b *testing.B) {
	n := workload.PowerLaw(rand.New(rand.NewSource(42)), 1000, 3, 0.1, []tn.Value{"v", "w", "u", "z"})
	bin := tn.Binarize(n)
	c, err := Compile(bin)
	if err != nil {
		b.Fatal(err)
	}
	c.ensureSupports()
	beliefs := make(map[int]tn.Value)
	for _, r := range c.Roots() {
		beliefs[r] = tn.Value(fmt.Sprintf("v%d", r%4))
	}
	s := c.getScratch()
	defer c.putScratch(s)
	dst := make([][]tn.Value, len(c.supports))
	if err := c.resolveObject(s, "warm", beliefs, dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.resolveObject(s, "steady", beliefs, dst); err != nil {
			b.Fatal(err)
		}
	}
}
