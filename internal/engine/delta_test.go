package engine

// Tests for incremental engine maintenance (Apply): edge-case mutations —
// re-rooting, preferred-parent promotion, SCC splits and merges, belief
// grants and revocations — plus randomized mutation-sequence parity
// against a from-scratch Compile and against Algorithm 1.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"trustmap/internal/resolve"
	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// mustCompile compiles with journaling enabled on the network.
func mustCompile(t *testing.T, n *tn.Network) *CompiledNetwork {
	t.Helper()
	n.EnableJournal()
	n.DrainJournal()
	c, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustApply drains the network journal into the artifact.
func mustApply(t *testing.T, c *CompiledNetwork, opts ApplyOptions) (*CompiledNetwork, ApplyStats) {
	t.Helper()
	next, st, err := c.Apply(c.net.DrainJournal(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return next, st
}

// liveRootObjects builds one object with deterministic per-root beliefs.
func liveRootObjects(c *CompiledNetwork, salt int) map[string]map[int]tn.Value {
	bs := make(map[int]tn.Value)
	for _, r := range c.Roots() {
		bs[r] = tn.Value(fmt.Sprintf("v%d", (r+salt)%3))
	}
	return map[string]map[int]tn.Value{"k": bs}
}

// assertParityWithFresh checks that the incrementally maintained artifact
// resolves every node of every object identically to a from-scratch
// Compile of the same network and to Algorithm 1 run per object.
func assertParityWithFresh(t *testing.T, label string, c *CompiledNetwork, workers int) {
	t.Helper()
	fresh, err := Compile(c.net.Clone())
	if err != nil {
		t.Fatalf("%s: fresh compile: %v", label, err)
	}
	objs := liveRootObjects(c, 1)
	got, err := c.Resolve(context.Background(), objs, Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: incremental resolve: %v", label, err)
	}
	want, err := fresh.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatalf("%s: fresh resolve: %v", label, err)
	}
	nu := c.net.NumUsers()
	for k, bs := range objs {
		per := c.net.Clone()
		for x, v := range bs {
			per.SetExplicit(x, v)
		}
		oracle := resolve.Resolve(per)
		for x := 0; x < nu; x++ {
			g := got.Possible(x, k)
			w := want.Possible(x, k)
			o := oracle.Possible(x)
			if !sameValues(g, w) {
				t.Fatalf("%s: poss(%s, %s): apply %v vs fresh %v", label, c.net.Name(x), k, g, w)
			}
			if !sameValues(g, o) {
				t.Fatalf("%s: poss(%s, %s): apply %v vs algorithm 1 %v", label, c.net.Name(x), k, g, o)
			}
		}
	}
}

func sameValues(a, b []tn.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chain builds root -> a -> b -> c with a second root feeding b.
func chainNet() *tn.Network {
	n := tn.New()
	r := n.AddUser("r")
	r2 := n.AddUser("r2")
	a := n.AddUser("a")
	b := n.AddUser("b")
	cc := n.AddUser("c")
	n.SetExplicit(r, "seed")
	n.SetExplicit(r2, "seed")
	n.AddMapping(r, a, 2)
	n.AddMapping(a, b, 2)
	n.AddMapping(r2, b, 1)
	n.AddMapping(b, cc, 2)
	return n
}

func TestApplyValueOnlyUpdateReturnsBase(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	n.SetExplicit(n.UserID("r"), "other") // value change: plan-invariant
	next, st := mustApply(t, c, ApplyOptions{MaxDirtyFraction: 1})
	if next != c || st.DirtyNodes != 0 {
		t.Fatalf("value-only update must return the base artifact, stats %+v", st)
	}
	// The base must remain applicable afterwards.
	n.RemoveMapping(n.UserID("r2"), n.UserID("b"))
	next, _ = mustApply(t, c, ApplyOptions{})
	if next == c {
		t.Fatal("structural update must produce a successor")
	}
	assertParityWithFresh(t, "after value+structural", next, 2)
}

func TestApplyRemoveLastMappingRerootsNode(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	a := n.UserID("a")
	// Revoke a's only incoming mapping: a becomes a root without belief,
	// so a and everything only it fed lose their possible values.
	n.RemoveMapping(n.UserID("r"), a)
	next, st := mustApply(t, c, ApplyOptions{MaxDirtyFraction: 1})
	if !next.net.IsRoot(a) {
		t.Fatal("a must be re-rooted")
	}
	if st.FullRecompile || st.DirtyNodes == 0 {
		t.Fatalf("expected incremental apply, stats %+v", st)
	}
	if sup := next.Support(a); sup != nil {
		t.Fatalf("re-rooted node without belief must have empty support, got %v", sup)
	}
	// b is still fed by r2: promotion of the remaining parent.
	if sup := next.Support(n.UserID("b")); len(sup) != 1 || sup[0] != n.UserID("r2") {
		t.Fatalf("support(b)=%v want [r2]", sup)
	}
	assertParityWithFresh(t, "re-root", next, 1)
}

func TestApplyPromotionInsideSCCSplit(t *testing.T) {
	// Oscillator {x1,x2} flooded from roots x3, x4. Removing x1 -> x2
	// breaks the cycle: x2 copies from x4 (promotion), x1 copies from x2.
	n := tn.New()
	x1, x2 := n.AddUser("x1"), n.AddUser("x2")
	x3, x4 := n.AddUser("x3"), n.AddUser("x4")
	n.AddMapping(x2, x1, 100)
	n.AddMapping(x3, x1, 50)
	n.AddMapping(x1, x2, 80)
	n.AddMapping(x4, x2, 40)
	n.SetExplicit(x3, "seed")
	n.SetExplicit(x4, "seed")
	c := mustCompile(t, n)
	if c.Stats().NontrivialSCCs != 1 {
		t.Fatalf("precondition: oscillator SCC missing: %+v", c.Stats())
	}
	n.RemoveMapping(x1, x2)
	next, st := mustApply(t, c, ApplyOptions{MaxDirtyFraction: 1})
	if st.FullRecompile {
		t.Fatalf("must stay incremental: %+v", st)
	}
	if got := next.Stats().NontrivialSCCs; got != 0 {
		t.Fatalf("SCC must split into trivial components, still %d nontrivial", got)
	}
	if sup := next.Support(x2); len(sup) != 1 || sup[0] != x4 {
		t.Fatalf("support(x2)=%v want [x4]", sup)
	}
	if sup := next.Support(x1); len(sup) != 1 || sup[0] != x4 {
		t.Fatalf("support(x1)=%v want [x4] (copied through x2)", sup)
	}
	assertParityWithFresh(t, "scc-split", next, 3)
}

func TestApplyAddEdgeMergesSCC(t *testing.T) {
	// r -> a -> b; adding b -> a at equal priority with r creates the
	// cycle {a,b} flooded from r.
	n := tn.New()
	r := n.AddUser("r")
	a := n.AddUser("a")
	b := n.AddUser("b")
	n.SetExplicit(r, "seed")
	n.AddMapping(r, a, 2)
	n.AddMapping(a, b, 2)
	c := mustCompile(t, n)
	n.AddMapping(b, a, 2)
	next, st := mustApply(t, c, ApplyOptions{MaxDirtyFraction: 1})
	if st.FullRecompile {
		t.Fatalf("must stay incremental: %+v", st)
	}
	if got := next.Stats().NontrivialSCCs; got != 1 {
		t.Fatalf("expected one nontrivial SCC after merge, got %d", got)
	}
	assertParityWithFresh(t, "scc-merge", next, 2)
}

func TestApplyBeliefGrantAndRevoke(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	// Grant a belief to a brand-new user wired under c.
	nu := n.AddUser("newroot")
	n.SetExplicit(nu, "w")
	n.AddMapping(nu, n.UserID("c"), 1)
	next, st := mustApply(t, c, ApplyOptions{MaxDirtyFraction: 1})
	if st.FullRecompile {
		t.Fatalf("small grant must stay incremental: %+v", st)
	}
	if got := len(next.Roots()); got != 3 {
		t.Fatalf("roots=%d want 3", got)
	}
	assertParityWithFresh(t, "grant", next, 2)

	// Revoke r2's belief: its slot becomes a tombstone, downstream loses
	// the support entry.
	n.SetExplicit(n.UserID("r2"), tn.NoValue)
	final, st := mustApply(t, next, ApplyOptions{MaxDirtyFraction: 1})
	if st.FullRecompile {
		t.Fatalf("revocation must stay incremental: %+v", st)
	}
	if got := len(final.Roots()); got != 2 {
		t.Fatalf("roots=%d want 2 after revocation", got)
	}
	for _, x := range []string{"a", "b", "c"} {
		for _, root := range final.Support(n.UserID(x)) {
			if root == n.UserID("r2") {
				t.Fatalf("support(%s) still references revoked root r2", x)
			}
		}
	}
	assertParityWithFresh(t, "revoke", final, 1)
}

func TestApplyThresholdFallback(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	n.RemoveMapping(n.UserID("r"), n.UserID("a"))
	// a/b/c dirty out of 5 users: 0.6 > 0.5 forces the fallback.
	next, st, err := c.Apply(n.DrainJournal(), ApplyOptions{MaxDirtyFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRecompile {
		t.Fatalf("expected full recompile, stats %+v", st)
	}
	assertParityWithFresh(t, "fallback", next, 1)
}

func TestApplyConsumedBaseRejected(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	n.RemoveMapping(n.UserID("r2"), n.UserID("b"))
	muts := n.DrainJournal()
	if _, _, err := c.Apply(muts, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Apply(nil, ApplyOptions{}); err == nil {
		t.Fatal("consumed artifact must reject further Apply")
	}
}

func TestApplyNonBinaryMutationRejected(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	// Third incoming mapping on b.
	n.AddMapping(n.UserID("r"), n.UserID("b"), 3)
	if _, _, err := c.Apply(n.DrainJournal(), ApplyOptions{}); err == nil {
		t.Fatal("non-binary mutation must be rejected")
	}

	n2 := chainNet()
	c2 := mustCompile(t, n2)
	// Explicit belief on a node with parents.
	n2.SetExplicit(n2.UserID("a"), "v")
	if _, _, err := c2.Apply(n2.DrainJournal(), ApplyOptions{}); err == nil {
		t.Fatal("belief on an internal node must be rejected")
	}
}

func TestApplyResultsSurviveApply(t *testing.T) {
	// A BulkResult resolved before a mutation keeps answering from the
	// base artifact's tables after the successor exists.
	n := chainNet()
	c := mustCompile(t, n)
	objs := liveRootObjects(c, 0)
	before, err := c.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantC := append([]tn.Value(nil), before.Possible(n.UserID("c"), "k")...)
	n.RemoveMapping(n.UserID("b"), n.UserID("c"))
	next, _ := mustApply(t, c, ApplyOptions{})
	if got := before.Possible(n.UserID("c"), "k"); !sameValues(got, wantC) {
		t.Fatalf("old result changed after Apply: %v want %v", got, wantC)
	}
	objsAfter := liveRootObjects(next, 0)
	after, err := next.Resolve(context.Background(), objsAfter, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Possible(n.UserID("c"), "k"); got != nil {
		t.Fatalf("c is cut off, poss=%v want none", got)
	}
}

// randomBinaryMutation applies one random binary-invariant-preserving
// mutation to n, returning false if no mutation applied.
func randomBinaryMutation(rng *rand.Rand, n *tn.Network) bool {
	for attempt := 0; attempt < 20; attempt++ {
		nu := n.NumUsers()
		switch rng.Intn(6) {
		case 0: // add mapping
			x := rng.Intn(nu)
			if len(n.In(x)) >= 2 || n.HasExplicit(x) {
				continue
			}
			z := rng.Intn(nu)
			if z == x {
				continue
			}
			dup := false
			for _, m := range n.In(x) {
				if m.Parent == z {
					dup = true
				}
			}
			if dup {
				continue
			}
			n.AddMapping(z, x, 1+rng.Intn(3))
			return true
		case 1: // remove mapping
			x := rng.Intn(nu)
			in := n.In(x)
			if len(in) == 0 {
				continue
			}
			n.RemoveMapping(in[rng.Intn(len(in))].Parent, x)
			return true
		case 2: // re-prioritize
			x := rng.Intn(nu)
			in := n.In(x)
			if len(in) == 0 {
				continue
			}
			n.SetMappingPriority(in[rng.Intn(len(in))].Parent, x, 1+rng.Intn(3))
			return true
		case 3: // grant belief (roots only, to stay binary)
			x := rng.Intn(nu)
			if len(n.In(x)) > 0 || n.HasExplicit(x) {
				continue
			}
			n.SetExplicit(x, tn.Value(fmt.Sprintf("v%d", rng.Intn(3))))
			return true
		case 4: // revoke belief
			x := rng.Intn(nu)
			if !n.HasExplicit(x) {
				continue
			}
			n.SetExplicit(x, tn.NoValue)
			return true
		case 5: // add user, sometimes wired in
			id := n.AddUser(fmt.Sprintf("u%d", nu))
			if rng.Intn(2) == 0 {
				z := rng.Intn(nu)
				if z != id {
					n.AddMapping(z, id, 1+rng.Intn(3))
				}
			}
			return true
		}
	}
	return false
}

// ensureRoot guarantees at least one explicit belief so the network stays
// interesting (engine handles zero roots, but everything is empty then).
func ensureRoot(rng *rand.Rand, n *tn.Network) {
	for x := 0; x < n.NumUsers(); x++ {
		if n.HasExplicit(x) {
			return
		}
	}
	for attempt := 0; attempt < 50; attempt++ {
		x := rng.Intn(n.NumUsers())
		if len(n.In(x)) == 0 {
			n.SetExplicit(x, "v0")
			return
		}
	}
}

// TestApplyParityRandomMutations is the randomized mutation-sequence
// parity satellite: chains of Apply batches must agree with a fresh
// Compile and with Algorithm 1 at every checkpoint, across worker counts.
func TestApplyParityRandomMutations(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			net := workload.RandomBTN(rng, 8+rng.Intn(20), 0.3, []tn.Value{"v0", "v1", "v2"})
			c := mustCompile(t, net)
			workers := []int{1, 2, 4, 8}
			for batch := 0; batch < 25; batch++ {
				nMuts := 1 + rng.Intn(4)
				for i := 0; i < nMuts; i++ {
					randomBinaryMutation(rng, net)
				}
				ensureRoot(rng, net)
				// Alternate between never-fall-back (pure incremental) and
				// default options (exercises the threshold path too).
				opts := ApplyOptions{MaxDirtyFraction: 1}
				if batch%3 == 2 {
					opts = ApplyOptions{}
				}
				next, _, err := c.Apply(net.DrainJournal(), opts)
				if err != nil {
					t.Fatal(err)
				}
				c = next
				assertParityWithFresh(t, fmt.Sprintf("batch %d", batch), c, workers[batch%len(workers)])
			}
		})
	}
}

// TestApplyLongChainCompaction drives enough mutations through one artifact
// lineage to trigger support-table compaction and re-checks parity.
func TestApplyLongChainCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := workload.RandomBTN(rng, 60, 0.3, []tn.Value{"v0", "v1", "v2"})
	c := mustCompile(t, net)
	for batch := 0; batch < 120; batch++ {
		randomBinaryMutation(rng, net)
		ensureRoot(rng, net)
		next, _, err := c.Apply(net.DrainJournal(), ApplyOptions{MaxDirtyFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		c = next
	}
	live := make(map[int32]bool)
	for _, id := range c.nodeSupport {
		if id >= 0 {
			live[id] = true
		}
	}
	if len(c.supports) >= 64 && len(c.supports) > 2*len(live) {
		t.Errorf("support table not compacted: %d entries, %d live", len(c.supports), len(live))
	}
	assertParityWithFresh(t, "long chain", c, 4)
}

// TestApplyAddUserOnlyGrows covers the batch that adds users without any
// structural mutation: the successor's per-node tables must cover the new
// IDs (a bare grown base used to panic in Support for the new user).
func TestApplyAddUserOnlyGrows(t *testing.T) {
	n := chainNet()
	c := mustCompile(t, n)
	c.ensureSupports() // the pre-grown tables are the regression trigger
	nu := n.AddUser("latecomer")
	next, st := mustApply(t, c, ApplyOptions{})
	if st.DirtyNodes != 0 || st.Seeds != 0 {
		t.Fatalf("user-only batch must not dirty anything: %+v", st)
	}
	if sup := next.Support(nu); sup != nil {
		t.Fatalf("isolated new user support=%v want nil", sup)
	}
	if got := next.Incoming(nu); got != nil {
		t.Fatalf("isolated new user incoming=%v want none", got)
	}
	objs := liveRootObjects(next, 0)
	r, err := next.Resolve(context.Background(), objs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if poss, err := r.Lookup(nu, "k"); err != nil || poss != nil {
		t.Fatalf("lookup(latecomer)=%v,%v want empty,nil", poss, err)
	}
	// Wiring the user in afterwards goes through the normal delta path.
	n.SetExplicit(nu, "w")
	n.AddMapping(nu, n.UserID("c"), 3)
	final, _ := mustApply(t, next, ApplyOptions{MaxDirtyFraction: 1})
	assertParityWithFresh(t, "latecomer wired", final, 2)
}
