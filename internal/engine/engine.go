// Package engine compiles the object-independent structure of a binary
// trust network into a reusable plan and resolves arbitrarily many objects
// against it concurrently.
//
// The paper's bulk setting (Section 4) fixes the trust mappings across all
// objects; only the root beliefs vary per object. Under its two
// assumptions, the control flow of Algorithm 1 — which node closes by a
// Step-1 copy from its preferred parent and which strongly connected
// component closes by a Step-2 flood — is the same for every object.
// Compile runs that control flow exactly once and records it as a step
// list (the plan), together with the structures the planner itself needs:
// the SCC condensation of the reachable subgraph, a topological order of
// the condensation DAG, per-SCC member and entry-edge slices, and
// priority-bucketed incoming-trust tables.
//
// Compilation goes one step further than recording the plan. Every step is
// either a copy (poss(x) := poss(z)) or a flood (poss of a component :=
// the union of its closed parents' poss), and every root starts with a
// singleton set, so by induction poss(x) for any node is the union of the
// beliefs of a *fixed* subset of roots — its root support. Compile replays
// the plan symbolically over root-index bitsets and deduplicates the
// resulting supports, after which resolving one object is a trivial
// gather: for each distinct support, collect the object's root values and
// sort them. (The supports are derived on first use, so plan-only
// consumers such as the SQL lowering skip that cost.) No graph traversal,
// no shared mutable state — an embarrassingly parallel scan that
// CompiledNetwork.Resolve distributes over a worker pool.
//
// Unlike the iterated global Tarjan passes of resolve.Resolve (quadratic
// on the nested-SCC family of Figure 14a), the planner here localizes each
// Tarjan pass to one condensation component, so compilation stays
// quasi-linear even on that worst case.
package engine

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"trustmap/internal/tn"
)

// StepKind discriminates plan steps.
type StepKind int

const (
	// StepCopy is Step 1 of Algorithm 1: copy the preferred parent's
	// possible values to the child.
	StepCopy StepKind = iota
	// StepFlood is Step 2: flood a strongly connected component with the
	// union of its closed parents' possible values.
	StepFlood
)

// Step is one replayable resolution step of the compiled plan.
type Step struct {
	Kind    StepKind
	Target  int   // StepCopy: the node being closed
	Source  int   // StepCopy: its preferred parent
	Members []int // StepFlood: the component being closed, ascending
	Sources []int // StepFlood: closed nodes with edges into the component, ascending
}

// PriorityBucket groups one node's incoming trust mappings that share a
// priority. A node's buckets are ordered by priority descending; parents
// within a bucket ascend. Only mappings from reachable parents appear:
// removing unreachable nodes can promote a node's remaining parent to
// preferred (Section 2.2), and bucketing makes that promotion — and tie
// detection — a single slice lookup.
type PriorityBucket struct {
	Priority int
	Parents  []int
}

// CompiledNetwork is the immutable per-network artifact shared by all
// object resolutions. Compile once, Resolve many times, from any number
// of goroutines.
type CompiledNetwork struct {
	net   *tn.Network
	reach []bool
	roots []int // nodes with explicit beliefs, ascending; bitset index = position

	incoming [][]PriorityBucket // effective incoming-trust table per node

	comp       []int   // SCC index per reachable node, -1 outside
	ncomp      int     // number of SCCs of the reachable subgraph
	sccMembers [][]int // per SCC: member nodes, ascending
	sccOrder   []int   // topological order of the condensation DAG

	steps []Step

	// Root supports are derived from the steps lazily (sync.Once): plan-only
	// consumers like the SQL lowering never pay for them.
	supportsOnce sync.Once
	supports     []bitset // distinct root supports, indexed by support ID
	nodeSupport  []int32  // node -> support ID, -1 when poss is empty
}

// Stats summarizes a compiled network for diagnostics.
type Stats struct {
	Users            int
	Mappings         int
	Roots            int
	Reachable        int
	SCCs             int
	NontrivialSCCs   int
	CopySteps        int
	FloodSteps       int
	DistinctSupports int
}

// Compile precomputes the resolution plan for a binary trust network.
// Explicit beliefs mark which users are roots; their values are irrelevant
// to the plan. The network must not be mutated afterwards.
func Compile(network *tn.Network) (*CompiledNetwork, error) {
	if !network.IsBinary() {
		return nil, fmt.Errorf("engine: network is not binary; apply tn.Binarize first")
	}
	nu := network.NumUsers()
	c := &CompiledNetwork{
		net:   network,
		reach: network.ReachableFromRoots(),
	}
	for x := 0; x < nu; x++ {
		if network.HasExplicit(x) {
			c.roots = append(c.roots, x)
		}
	}
	c.buildIncoming()
	c.buildCondensation()
	c.buildPlan()
	return c, nil
}

// ensureSupports builds the root supports on first use.
func (c *CompiledNetwork) ensureSupports() { c.supportsOnce.Do(c.buildSupports) }

// buildIncoming fills the priority-bucketed incoming-trust tables.
func (c *CompiledNetwork) buildIncoming() {
	nu := c.net.NumUsers()
	c.incoming = make([][]PriorityBucket, nu)
	for x := 0; x < nu; x++ {
		var buckets []PriorityBucket
		for _, m := range c.net.In(x) { // sorted: priority desc, parent asc
			if !c.reach[m.Parent] {
				continue
			}
			if k := len(buckets); k > 0 && buckets[k-1].Priority == m.Priority {
				buckets[k-1].Parents = append(buckets[k-1].Parents, m.Parent)
			} else {
				buckets = append(buckets, PriorityBucket{Priority: m.Priority, Parents: []int{m.Parent}})
			}
		}
		c.incoming[x] = buckets
	}
}

// preferredParent returns x's effective preferred parent: the sole member
// of its top priority bucket. ok is false on a tie or when x has no
// reachable parents.
func (c *CompiledNetwork) preferredParent(x int) (int, bool) {
	b := c.incoming[x]
	if len(b) == 0 || len(b[0].Parents) != 1 {
		return -1, false
	}
	return b[0].Parents[0], true
}

// buildCondensation computes the SCCs of the reachable subgraph, the
// per-SCC member slices, and a topological order of the condensation DAG.
func (c *CompiledNetwork) buildCondensation() {
	g := c.net.Graph()
	active := func(v int) bool { return c.reach[v] }
	c.comp, c.ncomp = g.SCC(active)
	c.sccMembers = make([][]int, c.ncomp)
	for v := 0; v < c.net.NumUsers(); v++ {
		if cv := c.comp[v]; cv >= 0 {
			c.sccMembers[cv] = append(c.sccMembers[cv], v)
		}
	}
	cond := g.Condense(c.comp, c.ncomp)
	order, ok := cond.TopoOrder()
	if !ok {
		// Cannot happen: a condensation is acyclic by construction.
		panic("engine: condensation has a cycle")
	}
	c.sccOrder = order
}

// buildPlan records the control flow of Algorithm 1 as a step list,
// visiting condensation components in topological order so that every
// Tarjan pass is local to one component.
func (c *CompiledNetwork) buildPlan() {
	nu := c.net.NumUsers()
	closed := make([]bool, nu)
	for x := 0; x < nu; x++ {
		if c.net.HasExplicit(x) || !c.reach[x] {
			closed[x] = true
		}
	}
	// preferredChildren[z] lists open nodes whose effective preferred
	// parent is z, for O(1) discovery of applicable Step-1 copies.
	preferredChildren := make([][]int, nu)
	for x := 0; x < nu; x++ {
		if closed[x] {
			continue
		}
		if z, ok := c.preferredParent(x); ok {
			preferredChildren[z] = append(preferredChildren[z], x)
		}
	}
	g := c.net.Graph()

	for _, comp := range c.sccOrder {
		members := c.sccMembers[comp]
		// Step-1 queue, local to this component. Parents outside the
		// component are already closed (topological order), so the initial
		// scan plus enqueues on close find every applicable copy.
		var queue []int
		enqueue := func(z int) {
			for _, x := range preferredChildren[z] {
				if !closed[x] && c.comp[x] == comp {
					queue = append(queue, x)
				}
			}
		}
		nOpen := 0
		for _, x := range members {
			if closed[x] {
				continue
			}
			nOpen++
			if z, ok := c.preferredParent(x); ok && closed[z] {
				queue = append(queue, x)
			}
		}
		for nOpen > 0 {
			// (S1) Drain preferred-edge copies.
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				if closed[x] {
					continue
				}
				z, _ := c.preferredParent(x)
				c.steps = append(c.steps, Step{Kind: StepCopy, Target: x, Source: z})
				closed[x] = true
				nOpen--
				enqueue(x)
			}
			if nOpen == 0 {
				break
			}
			// (S2) Flood the minimal SCCs of the remaining open members.
			// Restricting Tarjan to this component is equivalent to the
			// global pass of resolve.Resolve: all nodes outside it are
			// either closed (earlier components) or unreachable from here
			// (later components), so sub-component minimality within the
			// member slice equals global minimality.
			inComp := func(v int) bool { return c.comp[v] == comp && !closed[v] }
			sub, nsub := g.SCC(inComp)
			if nsub == 0 {
				break
			}
			hasIncoming := make([]bool, nsub)
			memberList := make([][]int, nsub)
			for _, v := range members {
				if sub[v] < 0 {
					continue
				}
				memberList[sub[v]] = append(memberList[sub[v]], v)
				for _, m := range c.net.In(v) {
					if cp := sub[m.Parent]; cp >= 0 && cp != sub[v] {
						hasIncoming[sub[v]] = true
					}
				}
			}
			for s := 0; s < nsub; s++ {
				if hasIncoming[s] {
					continue
				}
				flood := memberList[s]
				srcSet := map[int]bool{}
				for _, x := range flood {
					for _, m := range c.net.In(x) {
						if closed[m.Parent] && c.reach[m.Parent] {
							srcSet[m.Parent] = true
						}
					}
				}
				sources := make([]int, 0, len(srcSet))
				for z := range srcSet {
					sources = append(sources, z)
				}
				sort.Ints(sources)
				c.steps = append(c.steps, Step{Kind: StepFlood, Members: flood, Sources: sources})
				for _, x := range flood {
					closed[x] = true
					nOpen--
				}
				for _, x := range flood {
					enqueue(x)
				}
			}
		}
	}
}

// buildSupports replays the plan symbolically over root-index bitsets:
// after it, nodeSupport[x] identifies the fixed set of roots whose beliefs
// make up poss(x) for every object, deduplicated across nodes.
func (c *CompiledNetwork) buildSupports() {
	nu := c.net.NumUsers()
	words := (len(c.roots) + 63) / 64
	byNode := make([]bitset, nu)
	for i, r := range c.roots {
		b := newBitset(words)
		b.set(i)
		byNode[r] = b
	}
	for _, s := range c.steps {
		switch s.Kind {
		case StepCopy:
			byNode[s.Target] = byNode[s.Source] // alias: supports are immutable
		case StepFlood:
			u := newBitset(words)
			for _, z := range s.Sources {
				u.or(byNode[z])
			}
			for _, x := range s.Members {
				byNode[x] = u
			}
		}
	}
	c.nodeSupport = make([]int32, nu)
	ids := make(map[string]int32)
	for x := 0; x < nu; x++ {
		b := byNode[x]
		if b == nil || b.empty() {
			c.nodeSupport[x] = -1
			continue
		}
		k := b.key()
		id, ok := ids[k]
		if !ok {
			id = int32(len(c.supports))
			ids[k] = id
			c.supports = append(c.supports, b)
		}
		c.nodeSupport[x] = id
	}
}

// Net returns the compiled network's underlying trust network. It must not
// be mutated.
func (c *CompiledNetwork) Net() *tn.Network { return c.net }

// Roots returns the root nodes (users with explicit beliefs), ascending.
// The slice is shared; do not modify.
func (c *CompiledNetwork) Roots() []int { return c.roots }

// Steps returns the compiled plan. The slice is shared; do not modify.
func (c *CompiledNetwork) Steps() []Step { return c.steps }

// Incoming returns the priority-bucketed effective incoming-trust table of
// node x. The slice is shared; do not modify.
func (c *CompiledNetwork) Incoming(x int) []PriorityBucket { return c.incoming[x] }

// NumSCCs returns the number of strongly connected components of the
// reachable subgraph.
func (c *CompiledNetwork) NumSCCs() int { return c.ncomp }

// SCCMembers returns the member slice of condensation component i,
// ascending. The slice is shared; do not modify.
func (c *CompiledNetwork) SCCMembers(i int) []int { return c.sccMembers[i] }

// SCCEntries returns the trust mappings entering condensation component i
// from other components: the edges along which flooded values arrive.
// Derived on demand — it is diagnostic, not on the resolution path.
func (c *CompiledNetwork) SCCEntries(i int) []tn.Mapping {
	var out []tn.Mapping
	for _, v := range c.sccMembers[i] {
		for _, m := range c.net.In(v) {
			if cp := c.comp[m.Parent]; cp >= 0 && cp != i {
				out = append(out, m)
			}
		}
	}
	return out
}

// SCCOrder returns a topological order of the condensation DAG: the order
// in which the planner visits components. The slice is shared; do not
// modify.
func (c *CompiledNetwork) SCCOrder() []int { return c.sccOrder }

// Support returns the root nodes whose beliefs constitute poss(x) for
// every object, ascending; nil when poss(x) is always empty.
func (c *CompiledNetwork) Support(x int) []int {
	c.ensureSupports()
	id := c.nodeSupport[x]
	if id < 0 {
		return nil
	}
	var out []int
	c.supports[id].each(func(i int) { out = append(out, c.roots[i]) })
	return out
}

// Stats summarizes the compiled artifact.
func (c *CompiledNetwork) Stats() Stats {
	c.ensureSupports()
	st := Stats{
		Users:            c.net.NumUsers(),
		Mappings:         c.net.NumMappings(),
		Roots:            len(c.roots),
		SCCs:             c.ncomp,
		DistinctSupports: len(c.supports),
	}
	for _, r := range c.reach {
		if r {
			st.Reachable++
		}
	}
	for _, m := range c.sccMembers {
		if len(m) > 1 {
			st.NontrivialSCCs++
		}
	}
	for _, s := range c.steps {
		if s.Kind == StepCopy {
			st.CopySteps++
		} else {
			st.FloodSteps++
		}
	}
	return st
}

// bitset is a fixed-width set of root indices.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }

func (b bitset) or(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// key returns a map key identifying the set.
func (b bitset) key() string {
	buf := make([]byte, 0, len(b)*8)
	for _, w := range b {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// each calls f with every set index, ascending.
func (b bitset) each(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
