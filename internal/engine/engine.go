// Package engine compiles the object-independent structure of a binary
// trust network into a reusable plan, resolves arbitrarily many objects
// against it concurrently, and maintains the compiled artifact
// incrementally under network mutations.
//
// The paper's bulk setting (Section 4) fixes the trust mappings across all
// objects; only the root beliefs vary per object. Under its two
// assumptions, the control flow of Algorithm 1 — which node closes by a
// Step-1 copy from its preferred parent and which strongly connected
// component closes by a Step-2 flood — is the same for every object.
// Compile runs that control flow exactly once and records it as a step
// list (the plan), together with the structures the planner itself needs:
// the SCC condensation of the reachable subgraph, a topological order of
// the condensation DAG, per-SCC member and entry-edge slices, and
// priority-bucketed incoming-trust tables.
//
// Compilation goes one step further than recording the plan. Every step is
// either a copy (poss(x) := poss(z)) or a flood (poss of a component :=
// the union of its closed parents' poss), and every root starts with a
// singleton set, so by induction poss(x) for any node is the union of the
// beliefs of a *fixed* subset of roots — its root support. Compile replays
// the plan symbolically over root-index bitsets — in parallel across
// independent condensation components — and deduplicates the resulting
// supports, after which resolving one object is a trivial gather: for each
// distinct support, collect the object's root values and sort them. (The
// supports are derived on first use, so plan-only consumers such as the
// SQL lowering skip that cost.) No graph traversal, no shared mutable
// state — an embarrassingly parallel scan that CompiledNetwork.Resolve
// distributes over a worker pool. The scan itself is columnar over flat
// CSR arrays (layout.go): root beliefs are interned into an int32
// dictionary, supports are contiguous runs of root slots, and reusable
// per-worker scratch arenas keep the per-object loop at zero heap
// allocations in steady state (see intern.go). On top of the scan,
// Resolve deduplicates whole objects by their root-assignment signature
// and resolves each distinct signature exactly once, with a bounded
// per-artifact cache carrying signatures across calls (see dedup.go).
//
// Networks are living artifacts: beliefs and trust mappings are updated
// and revoked (Section 2.5 stresses that resolution is order-invariant
// under such updates). Rather than recompiling from scratch on every
// mutation, Apply (delta.go) consumes the mutation journal of the
// underlying tn.Network, computes the dirty region — the condensation
// components downstream of the touched nodes and edges — and recompiles
// only that suffix of the plan, splicing the recomputed root supports into
// the shared tables while reusing everything upstream. When the dirty
// region exceeds a threshold it falls back to a full Compile.
//
// Unlike the iterated global Tarjan passes of resolve.Resolve (quadratic
// on the nested-SCC family of Figure 14a), the planner here localizes each
// Tarjan pass to one condensation component, so compilation stays
// quasi-linear even on that worst case.
package engine

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"trustmap/internal/graph"
	"trustmap/internal/tn"
)

// StepKind discriminates plan steps.
type StepKind int

const (
	// StepCopy is Step 1 of Algorithm 1: copy the preferred parent's
	// possible values to the child.
	StepCopy StepKind = iota
	// StepFlood is Step 2: flood a strongly connected component with the
	// union of its closed parents' possible values.
	StepFlood
)

// Step is one replayable resolution step of the compiled plan.
type Step struct {
	Kind    StepKind
	Target  int   // StepCopy: the node being closed
	Source  int   // StepCopy: its preferred parent
	Members []int // StepFlood: the component being closed, ascending
	Sources []int // StepFlood: closed nodes with edges into the component, ascending
}

// PriorityBucket groups one node's incoming trust mappings that share a
// priority. A node's buckets are ordered by priority descending; parents
// within a bucket ascend. Only mappings from reachable parents appear:
// removing unreachable nodes can promote a node's remaining parent to
// preferred (Section 2.2), and bucketing makes that promotion — and tie
// detection — a single slice lookup.
type PriorityBucket struct {
	Priority int
	Parents  []int
}

// CompiledNetwork is the per-network artifact shared by all object
// resolutions. Compile once, Resolve many times, from any number of
// goroutines. Mutations go through Apply, which returns a successor
// artifact and leaves results resolved against this one valid.
type CompiledNetwork struct {
	net *tn.Network
	g   *graph.Digraph // out-adjacency; owned, maintained by Apply

	reach []bool

	// rootSlots assigns every root (user with an explicit belief) a stable
	// bitset index: rootSlots[i] is the user occupying slot i, or -1 for a
	// tombstone left by a revoked belief. Slot stability is what lets Apply
	// splice new supports next to old ones: a clean node's bitset stays
	// meaningful across mutations. rootPos is the inverse (user -> slot).
	rootSlots []int
	rootPos   []int32

	in inCSR // flattened effective incoming-trust table (layout.go)

	comp       []int   // SCC index per reachable node, -1 outside
	ncomp      int     // number of SCC ids ever issued (dead ones included)
	deadComps  int     // ids invalidated by Apply
	sccMembers [][]int // per SCC: member nodes, ascending; nil when dead
	sccOrder   []int   // topological order of the live condensation DAG

	steps []Step
	// planRanges maps each condensation component planned by Compile to its
	// contiguous run of steps, in plan order: the unit of parallelism for
	// buildSupports (components at the same dependency depth replay
	// concurrently).
	planRanges []stepRange

	// Root supports are derived from the steps lazily (sync.Once): plan-only
	// consumers like the SQL lowering never pay for them. supportIDs is the
	// persistent dedup table (trimmed bitset key -> id) that Apply extends.
	supportsOnce sync.Once
	supports     []bitset // distinct root supports, indexed by support ID
	supportIDs   map[string]int32
	nodeSupport  []int32 // node -> support ID, -1 when poss is empty
	// CSR view of supports for the resolve hot path (layout.go).
	supOff   []int32
	supRoots []int32

	// dict interns belief values for the columnar resolve path and pool
	// recycles the per-worker scratch arenas; both survive Apply, so a
	// long-lived session reaches a steady state where resolving an object
	// allocates nothing even across mutations.
	dict *valueDict
	pool *sync.Pool
	// sigs caches signature -> resolved result across Resolve calls
	// (dedup.go). Valid while supports and root slots are unchanged:
	// structural Apply successors start with an empty cache.
	sigs *sigCache

	consumed bool // set by Apply: this artifact has a successor
}

// stepRange is one condensation component's contiguous slice of the plan.
type stepRange struct{ comp, lo, hi int32 }

// Stats summarizes a compiled network for diagnostics.
type Stats struct {
	Users            int
	Mappings         int
	Roots            int
	Reachable        int
	SCCs             int
	NontrivialSCCs   int
	CopySteps        int
	FloodSteps       int
	DistinctSupports int
}

// Compile precomputes the resolution plan for a binary trust network.
// Explicit beliefs mark which users are roots; their values are irrelevant
// to the plan. The network must not be mutated afterwards except through
// the journal/Apply protocol (see delta.go).
func Compile(network *tn.Network) (*CompiledNetwork, error) {
	if !network.IsBinary() {
		return nil, fmt.Errorf("engine: network is not binary; apply tn.Binarize first")
	}
	nu := network.NumUsers()
	c := &CompiledNetwork{
		net:  network,
		g:    network.Graph(),
		dict: newValueDict(),
		pool: &sync.Pool{},
		sigs: newSigCache(defaultSigCacheCap),
	}
	c.rootPos = make([]int32, nu)
	for x := 0; x < nu; x++ {
		c.rootPos[x] = -1
		if network.HasExplicit(x) {
			c.rootPos[x] = int32(len(c.rootSlots))
			c.rootSlots = append(c.rootSlots, x)
		}
	}
	c.reach = c.g.Reachable(c.liveRoots(), nil)
	c.buildIncoming()
	c.buildCondensation()

	closed := make([]bool, nu)
	for x := 0; x < nu; x++ {
		if network.HasExplicit(x) || !c.reach[x] {
			closed[x] = true
		}
	}
	c.planInto(c.sccOrder, closed)
	return c, nil
}

// liveRoots returns the users currently holding an explicit belief,
// in slot order.
func (c *CompiledNetwork) liveRoots() []int {
	var out []int
	for _, r := range c.rootSlots {
		if r >= 0 {
			out = append(out, r)
		}
	}
	return out
}

// ensureSupports builds the root supports on first use.
func (c *CompiledNetwork) ensureSupports() { c.supportsOnce.Do(c.buildSupports) }

// EnsureSupports derives the root supports now if they have not been
// derived yet. Publishers sharing an artifact with lock-free readers
// must call it before publication: derivation reads the underlying
// network (which may keep mutating afterwards), so leaving it to a
// reader's first Resolve would race the writer. Idempotent and cheap
// when supports already exist.
func (c *CompiledNetwork) EnsureSupports() { c.ensureSupports() }

// buildIncoming flattens the effective incoming-trust tables.
func (c *CompiledNetwork) buildIncoming() { c.in = buildInCSR(c.net, c.reach) }

// preferredParent returns x's effective preferred parent: the sole row of
// its top priority bucket. ok is false on a tie or when x has no reachable
// parents.
func (c *CompiledNetwork) preferredParent(x int) (int, bool) { return c.in.preferred(x) }

// buildCondensation computes the SCCs of the reachable subgraph, the
// per-SCC member slices, and a topological order of the condensation DAG.
func (c *CompiledNetwork) buildCondensation() {
	active := func(v int) bool { return c.reach[v] }
	c.comp, c.ncomp = c.g.SCC(active)
	c.sccMembers = make([][]int, c.ncomp)
	for v := 0; v < c.net.NumUsers(); v++ {
		if cv := c.comp[v]; cv >= 0 {
			c.sccMembers[cv] = append(c.sccMembers[cv], v)
		}
	}
	// SCC numbers components in reverse topological order (an edge between
	// components always goes from a higher id to a lower one), so visiting
	// ids descending is a topological order of the condensation DAG.
	c.sccOrder = make([]int, c.ncomp)
	for i := range c.sccOrder {
		c.sccOrder[i] = c.ncomp - 1 - i
	}
}

// planInto records the control flow of Algorithm 1 over the given
// condensation components (in topological order) as steps appended to
// c.steps, visiting one component per Tarjan pass so every pass is local.
// closed marks the nodes already resolved before the plan starts: roots,
// unreachable nodes, and — on the incremental path — every clean node.
func (c *CompiledNetwork) planInto(comps []int, closed []bool) {
	nu := c.net.NumUsers()
	// preferredChildren[z] lists open nodes whose effective preferred
	// parent is z, for O(1) discovery of applicable Step-1 copies.
	preferredChildren := make([][]int, nu)
	for x := 0; x < nu; x++ {
		if closed[x] {
			continue
		}
		if z, ok := c.preferredParent(x); ok {
			preferredChildren[z] = append(preferredChildren[z], x)
		}
	}

	for _, comp := range comps {
		firstStep := len(c.steps)
		members := c.sccMembers[comp]
		// Step-1 queue, local to this component. Parents outside the
		// component are already closed (topological order), so the initial
		// scan plus enqueues on close find every applicable copy.
		var queue []int
		enqueue := func(z int) {
			for _, x := range preferredChildren[z] {
				if !closed[x] && c.comp[x] == comp {
					queue = append(queue, x)
				}
			}
		}
		nOpen := 0
		for _, x := range members {
			if closed[x] {
				continue
			}
			nOpen++
			if z, ok := c.preferredParent(x); ok && closed[z] {
				queue = append(queue, x)
			}
		}
		for nOpen > 0 {
			// (S1) Drain preferred-edge copies.
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				if closed[x] {
					continue
				}
				z, _ := c.preferredParent(x)
				c.steps = append(c.steps, Step{Kind: StepCopy, Target: x, Source: z})
				closed[x] = true
				nOpen--
				enqueue(x)
			}
			if nOpen == 0 {
				break
			}
			// (S2) Flood the minimal SCCs of the remaining open members.
			// Restricting Tarjan to this component is equivalent to the
			// global pass of resolve.Resolve: all nodes outside it are
			// either closed (earlier components) or unreachable from here
			// (later components), so sub-component minimality within the
			// member slice equals global minimality.
			inComp := func(v int) bool { return c.comp[v] == comp && !closed[v] }
			sub, nsub := c.g.SCC(inComp)
			if nsub == 0 {
				break
			}
			hasIncoming := make([]bool, nsub)
			memberList := make([][]int, nsub)
			for _, v := range members {
				if sub[v] < 0 {
					continue
				}
				memberList[sub[v]] = append(memberList[sub[v]], v)
				for _, m := range c.net.In(v) {
					if cp := sub[m.Parent]; cp >= 0 && cp != sub[v] {
						hasIncoming[sub[v]] = true
					}
				}
			}
			for s := 0; s < nsub; s++ {
				if hasIncoming[s] {
					continue
				}
				flood := memberList[s]
				srcSet := map[int]bool{}
				for _, x := range flood {
					for _, m := range c.net.In(x) {
						if closed[m.Parent] && c.reach[m.Parent] {
							srcSet[m.Parent] = true
						}
					}
				}
				sources := make([]int, 0, len(srcSet))
				for z := range srcSet {
					sources = append(sources, z)
				}
				sort.Ints(sources)
				c.steps = append(c.steps, Step{Kind: StepFlood, Members: flood, Sources: sources})
				for _, x := range flood {
					closed[x] = true
					nOpen--
				}
				for _, x := range flood {
					enqueue(x)
				}
			}
		}
		if len(c.steps) > firstStep {
			c.planRanges = append(c.planRanges,
				stepRange{comp: int32(comp), lo: int32(firstStep), hi: int32(len(c.steps))})
		}
	}
}

// buildSupports replays the plan symbolically over root-index bitsets:
// after it, nodeSupport[x] identifies the fixed set of roots whose beliefs
// make up poss(x) for every object, deduplicated across nodes. The replay
// distributes across independent condensation components; interning stays
// sequential so support IDs are deterministic.
func (c *CompiledNetwork) buildSupports() {
	nu := c.net.NumUsers()
	words := (len(c.rootSlots) + 63) / 64
	byNode := make([]bitset, nu)
	for i, r := range c.rootSlots {
		if r < 0 {
			continue
		}
		b := newBitset(words)
		b.set(i)
		byNode[r] = b
	}
	c.replaySteps(byNode, words, runtime.GOMAXPROCS(0))
	c.nodeSupport = make([]int32, nu)
	c.supportIDs = make(map[string]int32)
	for x := 0; x < nu; x++ {
		b := byNode[x]
		if b == nil || b.empty() {
			c.nodeSupport[x] = -1
			continue
		}
		c.nodeSupport[x] = c.internSupport(b)
	}
	c.flattenSupports()
}

// replayStep folds one plan step into the per-node bitsets.
func replayStep(byNode []bitset, s Step, words int) {
	switch s.Kind {
	case StepCopy:
		byNode[s.Target] = byNode[s.Source] // alias: supports are immutable
	case StepFlood:
		u := newBitset(words)
		for _, z := range s.Sources {
			u.or(byNode[z]) // or(nil) is a no-op: z may be support-less
		}
		for _, x := range s.Members {
			byNode[x] = u
		}
	}
}

// minParallelRanges gates the component-parallel replay: below it the
// scheduling overhead exceeds the bitset work.
const minParallelRanges = 64

// replaySteps computes every node's support bitset by replaying the plan.
// Components whose inputs come only from roots or already-replayed
// components are independent, so the replay runs level by level over the
// condensation DAG — level = longest dependency chain through components
// that own steps — with a worker pool bounded by workers per level. Steps
// write only their own component's nodes and read only seeds or lower
// levels, so levels are data-race-free by construction; a level barrier
// orders them.
func (c *CompiledNetwork) replaySteps(byNode []bitset, words, workers int) {
	ranges := c.planRanges
	if workers <= 1 || len(ranges) < minParallelRanges {
		for _, s := range c.steps {
			replayStep(byNode, s, words)
		}
		return
	}
	// Dependency depth per range. Ranges are appended in topological order
	// of the condensation, so every dependency has a smaller index and one
	// forward pass settles the levels. Components without steps (roots,
	// flood-less singletons) are seeds: depth 0, no range.
	compRange := make(map[int]int32, len(ranges))
	for ri, r := range ranges {
		compRange[int(r.comp)] = int32(ri)
	}
	level := make([]int32, len(ranges))
	maxLevel := int32(0)
	bump := func(ri int, z int) {
		if pi, ok := compRange[c.comp[z]]; ok && int(pi) != ri && level[pi]+1 > level[ri] {
			level[ri] = level[pi] + 1
		}
	}
	for ri, r := range ranges {
		for _, s := range c.steps[r.lo:r.hi] {
			if s.Kind == StepCopy {
				bump(ri, s.Source)
			} else {
				for _, z := range s.Sources {
					bump(ri, z)
				}
			}
		}
		if level[ri] > maxLevel {
			maxLevel = level[ri]
		}
	}
	byLevel := make([][]stepRange, maxLevel+1)
	for ri, r := range ranges {
		byLevel[level[ri]] = append(byLevel[level[ri]], r)
	}
	var wg sync.WaitGroup
	for _, rs := range byLevel {
		n := len(rs)
		w := workers
		if w > n {
			w = n
		}
		if w <= 1 {
			for _, r := range rs {
				for _, s := range c.steps[r.lo:r.hi] {
					replayStep(byNode, s, words)
				}
			}
			continue
		}
		chunk := (n + w - 1) / w
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(rs []stepRange) {
				defer wg.Done()
				for _, r := range rs {
					for _, s := range c.steps[r.lo:r.hi] {
						replayStep(byNode, s, words)
					}
				}
			}(rs[lo:hi])
		}
		wg.Wait() // level barrier: the next level reads this level's outputs
	}
}

// internSupport deduplicates a root-support bitset against the persistent
// table, appending it when new, and returns its ID.
func (c *CompiledNetwork) internSupport(b bitset) int32 {
	k := b.key()
	id, ok := c.supportIDs[k]
	if !ok {
		id = int32(len(c.supports))
		c.supportIDs[k] = id
		c.supports = append(c.supports, b)
	}
	return id
}

// Net returns the compiled network's underlying trust network. It must not
// be mutated except through the journal/Apply protocol.
func (c *CompiledNetwork) Net() *tn.Network { return c.net }

// Roots returns the root nodes (users with explicit beliefs), ascending.
func (c *CompiledNetwork) Roots() []int {
	out := c.liveRoots()
	sort.Ints(out)
	return out
}

// Steps returns the compiled plan. The slice is shared; do not modify.
func (c *CompiledNetwork) Steps() []Step { return c.steps }

// Incoming returns the priority-bucketed effective incoming-trust table of
// node x, reconstructed from the flat CSR rows (diagnostic; the resolve
// path reads the rows directly).
func (c *CompiledNetwork) Incoming(x int) []PriorityBucket { return c.in.buckets(x) }

// NumSCCs returns the number of strongly connected components of the
// reachable subgraph.
func (c *CompiledNetwork) NumSCCs() int { return c.ncomp - c.deadComps }

// SCCMembers returns the member slice of condensation component i,
// ascending, or nil when the id was invalidated by Apply. The slice is
// shared; do not modify.
func (c *CompiledNetwork) SCCMembers(i int) []int { return c.sccMembers[i] }

// SCCEntries returns the trust mappings entering condensation component i
// from other components: the edges along which flooded values arrive.
// Derived on demand — it is diagnostic, not on the resolution path.
func (c *CompiledNetwork) SCCEntries(i int) []tn.Mapping {
	var out []tn.Mapping
	for _, v := range c.sccMembers[i] {
		for _, m := range c.net.In(v) {
			if cp := c.comp[m.Parent]; cp >= 0 && cp != i {
				out = append(out, m)
			}
		}
	}
	return out
}

// SCCOrder returns a topological order of the live condensation DAG: the
// order in which the planner visited components. The slice is shared; do
// not modify.
func (c *CompiledNetwork) SCCOrder() []int { return c.sccOrder }

// Support returns the root nodes whose beliefs constitute poss(x) for
// every object, ascending; nil when poss(x) is always empty.
func (c *CompiledNetwork) Support(x int) []int {
	c.ensureSupports()
	id := c.nodeSupport[x]
	if id < 0 {
		return nil
	}
	var out []int
	c.supports[id].each(func(i int) { out = append(out, c.rootSlots[i]) })
	sort.Ints(out)
	return out
}

// Stats summarizes the compiled artifact. It reads the live network's
// user and mapping counts, so it must not race a mutator; see
// StatsFrozen for the concurrent-reader variant.
func (c *CompiledNetwork) Stats() Stats {
	return c.statsWithCounts(c.net.NumUsers(), c.net.NumMappings())
}

// StatsFrozen is Stats with the user and mapping counts supplied by the
// caller (captured when the artifact was current) instead of read from
// the live network. Everything else it touches is frozen per artifact,
// so StatsFrozen is safe on a retired artifact while the underlying
// network is concurrently mutated.
func (c *CompiledNetwork) StatsFrozen(users, mappings int) Stats {
	return c.statsWithCounts(users, mappings)
}

func (c *CompiledNetwork) statsWithCounts(users, mappings int) Stats {
	c.ensureSupports()
	st := Stats{
		Users:            users,
		Mappings:         mappings,
		Roots:            len(c.liveRoots()),
		SCCs:             c.NumSCCs(),
		DistinctSupports: len(c.supports),
	}
	for _, r := range c.reach {
		if r {
			st.Reachable++
		}
	}
	for i, m := range c.sccMembers {
		if len(m) > 1 && c.comp[m[0]] == i {
			st.NontrivialSCCs++
		}
	}
	for _, s := range c.steps {
		if s.Kind == StepCopy {
			st.CopySteps++
		} else {
			st.FloodSteps++
		}
	}
	return st
}

// bitset is a fixed-width set of root indices. Widths may differ between
// generations of an incrementally maintained artifact; all operations and
// the dedup key treat missing high words as zero.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int) { b[i/64] |= 1 << (i % 64) }

func (b bitset) or(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// key returns a map key identifying the set, independent of the bitset
// width: trailing zero words are trimmed.
func (b bitset) key() string {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	buf := make([]byte, 0, n*8)
	for _, w := range b[:n] {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// each calls f with every set index, ascending.
func (b bitset) each(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
