package engine

// Incremental engine maintenance. A compiled artifact is expensive to
// build and cheap to query; a live community database mutates its trust
// network constantly. Apply keeps the artifact current without paying for
// a full recompile: it consumes the mutation journal of the underlying
// tn.Network, derives the dirty region, and recompiles only that.
//
// The dirty region is the forward closure of the touched nodes — children
// of added/removed/re-prioritized mappings plus users whose belief was
// granted or revoked — over the post-mutation graph. That closure is
// exactly the set of nodes whose compiled state can differ:
//
//   - reachability can only change downstream of a touched node;
//   - a node's effective incoming table changes only when one of its
//     in-edges is touched or a parent's reachability flips, and in both
//     cases the node is downstream of a touched node;
//   - an SCC merges only along a cycle through an added edge, and every
//     node of that cycle is forward-reachable from the edge's child; an
//     SCC splits only inside a component containing a removed edge, and
//     every member is forward-reachable from that edge's child through the
//     rest of the old cycle structure (take the path suffix after the last
//     removed edge: it starts at a touched child and survives in the new
//     graph).
//
// Because the region is a forward closure it is downstream-closed, so the
// plan splice is order-trivial: every surviving step's inputs are clean,
// and all recomputed steps append after them. Supports recompute the same
// way — clean nodes keep their bitsets (root slots are stable across
// generations, revoked roots leave tombstones), dirty nodes replay just
// the appended steps against the persistent dedup table.
//
// Apply returns a successor artifact sharing everything clean with its
// base; results resolved against the base stay valid. The base is consumed:
// it can no longer be Apply'd (but value-only updates return the base
// itself, since the plan is belief-value-independent). When the dirty
// region exceeds MaxDirtyFraction of the network, Apply falls back to a
// full Compile — at that size the closure bookkeeping stops paying for
// itself — carrying the value dictionary over.

import (
	"fmt"

	"trustmap/internal/tn"
)

// ApplyOptions tunes incremental maintenance.
type ApplyOptions struct {
	// MaxDirtyFraction is the dirty-region share of the network above which
	// Apply recompiles from scratch instead of splicing. Zero means the
	// default of 0.25; values >= 1 never fall back.
	MaxDirtyFraction float64
}

// ApplyStats reports what one Apply did.
type ApplyStats struct {
	Seeds         int  // touched nodes
	DirtyNodes    int  // nodes in the recompiled region
	ReusedSteps   int  // plan steps kept from the base artifact
	NewSteps      int  // plan steps recomputed
	NewComps      int  // condensation components recomputed
	DeadComps     int  // base components invalidated
	FullRecompile bool // fell back to Compile (threshold exceeded)
}

// Apply folds the journaled mutations into the compiled artifact and
// returns the successor. muts must be the complete, ordered journal of the
// underlying network since this artifact was compiled (or since the last
// Apply): typically net.DrainJournal(). The base artifact is consumed —
// a second Apply on it fails — but results previously resolved against it
// remain valid, as does Resolve on it for callers racing a generation
// behind. Mutations that only change belief values (never the set of users
// holding beliefs) do not touch the plan; Apply then returns the base
// itself, unconsumed.
func (c *CompiledNetwork) Apply(muts []tn.Mutation, opts ApplyOptions) (*CompiledNetwork, ApplyStats, error) {
	var st ApplyStats
	if c.consumed {
		return nil, st, fmt.Errorf("engine: artifact already superseded by a previous Apply")
	}
	nuNew := c.net.NumUsers()

	// Pass 1: derive the seed set. Structural seeds are children of mapping
	// mutations and users whose belief appeared or disappeared; pure value
	// updates are free (the plan never looks at values).
	seeds := make(map[int]bool)
	for _, m := range muts {
		switch m.Kind {
		case tn.MutAddMapping, tn.MutRemoveMapping, tn.MutSetPriority:
			seeds[m.Child] = true
		case tn.MutSetExplicit:
			if (m.OldValue == tn.NoValue) != (m.Value == tn.NoValue) {
				seeds[m.User] = true
			}
		}
	}
	if len(seeds) == 0 {
		c.g.Grow(nuNew) // journal may still have grown the user set
		if nuNew == len(c.reach) {
			return c, st, nil // pure value updates: the plan is untouched
		}
		// Only users were added (no edges, no beliefs): everything compiled
		// stays valid, but the per-node tables must cover the new IDs.
		// Build a grown successor sharing all compiled state.
		c.ensureSupports()
		c.consumed = true
		n := &CompiledNetwork{
			net:         c.net,
			g:           c.g,
			reach:       growCopy(c.reach, nuNew),
			rootSlots:   append([]int(nil), c.rootSlots...),
			rootPos:     growCopyI32(c.rootPos, nuNew),
			in:          c.in.grow(nuNew),
			comp:        growCopyInt(c.comp, nuNew, -1),
			ncomp:       c.ncomp,
			deadComps:   c.deadComps,
			sccMembers:  c.sccMembers,
			sccOrder:    c.sccOrder,
			steps:       c.steps,
			supports:    c.supports,
			supportIDs:  c.supportIDs,
			nodeSupport: growCopyI32(c.nodeSupport, nuNew),
			supOff:      c.supOff,
			supRoots:    c.supRoots,
			dict:        c.dict,
			pool:        c.pool,
			// Supports and root slots are untouched, so every cached
			// signature result stays valid: carry the cache over.
			sigs: c.sigs,
		}
		n.supportsOnce.Do(func() {})
		return n, st, nil
	}
	st.Seeds = len(seeds)
	c.ensureSupports()
	c.consumed = true

	// Pass 2: replay the structural mutations into the owned adjacency.
	c.g.Grow(nuNew)
	for _, m := range muts {
		switch m.Kind {
		case tn.MutAddMapping:
			c.g.AddEdge(m.Parent, m.Child)
		case tn.MutRemoveMapping:
			if !c.g.RemoveEdge(m.Parent, m.Child) {
				return nil, st, fmt.Errorf("engine: journal removes unknown mapping %d -> %d", m.Parent, m.Child)
			}
		}
	}

	// The touched nodes are where a binary-network violation can appear;
	// everything else kept its incoming shape and belief/root status.
	for x := range seeds {
		if len(c.net.In(x)) > 2 {
			return nil, st, fmt.Errorf("engine: node %s has more than two incoming mappings after mutation; re-binarize", c.net.Name(x))
		}
		if c.net.HasExplicit(x) && len(c.net.In(x)) > 0 {
			return nil, st, fmt.Errorf("engine: node %s holds an explicit belief and incoming mappings after mutation; re-binarize", c.net.Name(x))
		}
	}

	// Dirty region: forward closure of the seeds over the new graph.
	dirty := make([]bool, nuNew)
	queue := make([]int, 0, len(seeds))
	for x := range seeds {
		dirty[x] = true
		queue = append(queue, x)
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range c.g.Out(x) {
			if !dirty[y] {
				dirty[y] = true
				queue = append(queue, y)
			}
		}
	}
	nDirty := 0
	for _, d := range dirty {
		if d {
			nDirty++
		}
	}
	st.DirtyNodes = nDirty

	frac := opts.MaxDirtyFraction
	if frac == 0 {
		frac = 0.25
	}
	if float64(nDirty) > frac*float64(nuNew) {
		st.FullRecompile = true
		full, err := Compile(c.net)
		if err != nil {
			return nil, st, err
		}
		full.dict = c.dict // keep the interning and arena steady state
		full.pool = c.pool
		return full, st, nil
	}

	// Successor artifact: copy-on-write of the per-node tables. The copies
	// are plain O(U+E) memmoves — the expensive parts (bitsets, member
	// slices) are shared with the base for clean nodes, and the incoming
	// CSR is respliced flat (the row arrays of a binary network are at most
	// twice the node count, so this is the same order as the other copies).
	n := &CompiledNetwork{
		net:         c.net,
		g:           c.g, // ownership transfers with consumption
		reach:       growCopy(c.reach, nuNew),
		rootSlots:   append([]int(nil), c.rootSlots...),
		rootPos:     growCopyI32(c.rootPos, nuNew),
		comp:        growCopyInt(c.comp, nuNew, -1),
		ncomp:       c.ncomp,
		deadComps:   c.deadComps,
		sccMembers:  append([][]int(nil), c.sccMembers...),
		supports:    c.supports,
		supportIDs:  c.supportIDs,
		nodeSupport: growCopyI32(c.nodeSupport, nuNew),
		dict:        c.dict,
		pool:        c.pool,
		sigs:        newSigCache(defaultSigCacheCap), // signatures resolve differently now
	}
	n.supportsOnce.Do(func() {}) // supports are spliced below, not rebuilt

	// Root slots: replay belief grants/revocations in journal order. Slots
	// are append-only so clean bitsets keep their meaning; a revoked root
	// leaves a tombstone no live support references (its downstream is
	// dirty by construction).
	for _, m := range muts {
		if m.Kind != tn.MutSetExplicit {
			continue
		}
		granted := m.OldValue == tn.NoValue && m.Value != tn.NoValue
		revoked := m.OldValue != tn.NoValue && m.Value == tn.NoValue
		switch {
		case granted && n.rootPos[m.User] < 0:
			n.rootPos[m.User] = int32(len(n.rootSlots))
			n.rootSlots = append(n.rootSlots, m.User)
		case revoked && n.rootPos[m.User] >= 0:
			n.rootSlots[n.rootPos[m.User]] = -1
			n.rootPos[m.User] = -1
		}
	}

	// Reachability inside the dirty region: seeded by dirty roots and by
	// edges from clean reachable parents (clean reachability is unchanged),
	// then propagated forward within the region.
	queue = queue[:0]
	for x := 0; x < nuNew; x++ {
		if !dirty[x] {
			continue
		}
		n.reach[x] = false
		if c.net.HasExplicit(x) {
			n.reach[x] = true
			queue = append(queue, x)
			continue
		}
		for _, m := range c.net.In(x) {
			if !dirty[m.Parent] && n.reach[m.Parent] {
				n.reach[x] = true
				queue = append(queue, x)
				break
			}
		}
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range n.g.Out(x) {
			if dirty[y] && !n.reach[y] {
				n.reach[y] = true
				queue = append(queue, y)
			}
		}
	}

	// Effective incoming tables (parents' reachability and touched in-edges
	// are settled now): clean nodes copy their CSR rows from the base,
	// dirty nodes recompute.
	n.in = c.in.splice(c.net, n.reach, dirty, nuNew)

	// Condensation of the dirty region. Old components containing a dirty
	// node die (the closure argument above guarantees they are entirely
	// dirty); fresh components take ids from ncomp upward, and descending
	// local SCC ids are a topological order among them.
	dead := make(map[int]bool)
	for x := 0; x < nuNew; x++ {
		if dirty[x] {
			if cv := n.comp[x]; cv >= 0 {
				if !dead[cv] {
					dead[cv] = true
					n.sccMembers[cv] = nil
				}
				n.comp[x] = -1
			}
		}
	}
	st.DeadComps = len(dead)
	n.deadComps += len(dead)
	sub, nsub := n.g.SCC(func(v int) bool { return dirty[v] && n.reach[v] })
	st.NewComps = nsub
	newComps := make([]int, 0, nsub)
	for local := nsub - 1; local >= 0; local-- {
		newComps = append(newComps, n.ncomp+local)
	}
	for x := 0; x < nuNew; x++ {
		if sub[x] >= 0 {
			n.comp[x] = n.ncomp + sub[x]
		}
	}
	n.sccMembers = append(n.sccMembers, make([][]int, nsub)...)
	for x := 0; x < nuNew; x++ { // ascending member order, as Compile builds it
		if sub[x] >= 0 {
			n.sccMembers[n.ncomp+sub[x]] = append(n.sccMembers[n.ncomp+sub[x]], x)
		}
	}
	n.ncomp += nsub
	n.sccOrder = make([]int, 0, len(c.sccOrder)+nsub)
	for _, comp := range c.sccOrder {
		if !dead[comp] {
			n.sccOrder = append(n.sccOrder, comp)
		}
	}
	n.sccOrder = append(n.sccOrder, newComps...)

	// Plan splice: keep steps whose targets are clean (their sources are
	// necessarily clean too — the region is downstream-closed), then replan
	// just the dirty components. Flood members share one component, so
	// checking one member suffices.
	n.steps = make([]Step, 0, len(c.steps))
	for _, s := range c.steps {
		if s.Kind == StepCopy && !dirty[s.Target] {
			n.steps = append(n.steps, s)
		} else if s.Kind == StepFlood && !dirty[s.Members[0]] {
			n.steps = append(n.steps, s)
		}
	}
	st.ReusedSteps = len(n.steps)
	closed := make([]bool, nuNew)
	for x := 0; x < nuNew; x++ {
		if !dirty[x] || !n.reach[x] || c.net.HasExplicit(x) {
			closed[x] = true
		}
	}
	n.planInto(newComps, closed)
	st.NewSteps = len(n.steps) - st.ReusedSteps

	// Support splice: replay only the appended steps. Sources are clean
	// nodes (their interned support) or earlier dirty nodes; dirty roots
	// seed fresh singletons at the current slot width.
	words := (len(n.rootSlots) + 63) / 64
	local := make(map[int]bitset, nDirty)
	for _, r := range n.rootSlots {
		if r >= 0 && dirty[r] {
			b := newBitset(words)
			b.set(int(n.rootPos[r]))
			local[r] = b
		}
	}
	supOf := func(z int) bitset {
		if b, ok := local[z]; ok {
			return b
		}
		if id := n.nodeSupport[z]; id >= 0 {
			return n.supports[id]
		}
		return nil
	}
	for _, s := range n.steps[st.ReusedSteps:] {
		switch s.Kind {
		case StepCopy:
			if b := supOf(s.Source); b != nil {
				local[s.Target] = b
			} else {
				local[s.Target] = newBitset(words)
			}
		case StepFlood:
			u := newBitset(words)
			for _, z := range s.Sources {
				u.or(supOf(z))
			}
			for _, x := range s.Members {
				local[x] = u
			}
		}
	}
	for x := 0; x < nuNew; x++ {
		if !dirty[x] {
			continue
		}
		b := local[x]
		if !n.reach[x] || b == nil || b.empty() {
			n.nodeSupport[x] = -1
			continue
		}
		n.nodeSupport[x] = n.internSupport(b)
	}
	n.maybeCompactSupports()
	n.flattenSupports()
	return n, st, nil
}

// maybeCompactSupports rebuilds the support table when repeated Applies
// have left it more than half garbage: supports no longer referenced by
// any node would otherwise be gathered on every resolved object forever.
func (n *CompiledNetwork) maybeCompactSupports() {
	if len(n.supports) < 64 {
		return
	}
	live := 0
	seen := make([]bool, len(n.supports))
	for _, id := range n.nodeSupport {
		if id >= 0 && !seen[id] {
			seen[id] = true
			live++
		}
	}
	if 2*live > len(n.supports) {
		return
	}
	remap := make([]int32, len(n.supports))
	supports := make([]bitset, 0, live)
	ids := make(map[string]int32, live)
	for old, b := range n.supports {
		if !seen[old] {
			remap[old] = -1
			continue
		}
		id := int32(len(supports))
		supports = append(supports, b)
		ids[b.key()] = id
		remap[old] = id
	}
	for x, id := range n.nodeSupport {
		if id >= 0 {
			n.nodeSupport[x] = remap[id]
		}
	}
	n.supports = supports
	n.supportIDs = ids
}

func growCopy(src []bool, size int) []bool {
	out := make([]bool, size)
	copy(out, src)
	return out
}

func growCopyI32(src []int32, size int) []int32 {
	out := make([]int32, size)
	copy(out, src)
	for i := len(src); i < size; i++ {
		out[i] = -1
	}
	return out
}

func growCopyInt(src []int, size, fill int) []int {
	out := make([]int, size)
	copy(out, src)
	for i := len(src); i < size; i++ {
		out[i] = fill
	}
	return out
}
