package engine

// The columnar resolve hot path. Resolving one object against a compiled
// network is a gather: for each distinct root support, collect the
// object's root beliefs, sort, and deduplicate. The naive implementation
// allocates a values slice per (object, support); at millions of objects
// that dominates the runtime. This file removes every steady-state
// allocation from that loop:
//
//   - belief values are interned into dense int32 ids by a dictionary that
//     survives both Resolve calls and Apply generations, so value handling
//     is integer compares, not string compares;
//   - the per-object root beliefs live in a root-slot-indexed []int32
//     column instead of a map[int]tn.Value;
//   - each worker owns a scratch arena (gather buffer, key buffer, result
//     cache) recycled through a sync.Pool;
//   - materialized possible-value sets are cached per worker keyed by the
//     id set, so the same conflict pattern resolves to the same shared
//     slice with no allocation after first sight.
//
// In steady state — dictionary warm, caches warm — resolveObject performs
// zero heap allocations per object (asserted by TestResolveObjectZeroAllocs
// with testing.AllocsPerRun).

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"trustmap/internal/tn"
)

// valueDict interns belief values into dense int32 ids. It is shared by
// every resolve worker and carried across Apply generations; lookups take
// a read lock only, so the steady state is contention- and allocation-free.
type valueDict struct {
	mu   sync.RWMutex
	ids  map[tn.Value]int32
	vals []tn.Value
}

func newValueDict() *valueDict {
	return &valueDict{ids: make(map[tn.Value]int32)}
}

// id interns v, returning its dense id.
func (d *valueDict) id(v tn.Value) int32 {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[v]; ok {
		return id
	}
	id = int32(len(d.vals))
	d.vals = append(d.vals, v)
	d.ids[v] = id
	return id
}

// snapshot returns the id -> value column. Only indices assigned before
// the call are valid; the backing array is append-only.
func (d *valueDict) snapshot() []tn.Value {
	d.mu.RLock()
	v := d.vals
	d.mu.RUnlock()
	return v
}

// scratch is a per-worker resolve arena. All fields are reused across
// objects; sets caches materialized possible-value slices keyed by the
// byte image of the sorted id set, so recurring conflict patterns share
// one canonical slice.
type scratch struct {
	rootVals []int32 // root slot -> interned belief id of the current object
	vals     []tn.Value
	buf      []int32
	key      []byte
	sets     map[string][]tn.Value
}

// getScratch takes a warm arena from the pool, sized for this network.
// The pool is shared along an Apply lineage, so set caches stay warm
// across mutations.
func (c *CompiledNetwork) getScratch() *scratch {
	s, _ := c.pool.Get().(*scratch)
	if s == nil {
		s = &scratch{sets: make(map[string][]tn.Value)}
	}
	if cap(s.rootVals) < len(c.rootSlots) {
		s.rootVals = make([]int32, len(c.rootSlots))
	}
	s.rootVals = s.rootVals[:len(c.rootSlots)]
	return s
}

func (c *CompiledNetwork) putScratch(s *scratch) { c.pool.Put(s) }

// resolveObject materializes the per-support possible-value sets of one
// object into dst (length len(c.supports)): the columnar core of the bulk
// scan. Zero heap allocations in steady state.
func (c *CompiledNetwork) resolveObject(s *scratch, key string, beliefs map[int]tn.Value, dst [][]tn.Value) error {
	for i, root := range c.rootSlots {
		if root < 0 { // tombstone of a revoked belief; no support references it
			s.rootVals[i] = -1
			continue
		}
		v, ok := beliefs[root]
		if !ok {
			return fmt.Errorf("engine: object %q misses a belief for root user %s (assumption ii)", key, c.net.Name(root))
		}
		s.rootVals[i] = c.dict.id(v)
	}
	// Snapshot after interning: every id in rootVals is below the column's
	// length, and the column is append-only.
	s.vals = c.dict.snapshot()
	for si := range c.supports {
		// Gather the root values of this support (bit iteration inlined: a
		// closure over bitset.each would escape and allocate). No support
		// referenced by a live node contains a tombstoned slot, but the
		// table may hold unreferenced supports from before a revocation —
		// their gathers skip the tombstone and are never read.
		buf := s.buf[:0]
		for wi, w := range c.supports[si] {
			base := wi * 64
			for w != 0 {
				if v := s.rootVals[base+bits.TrailingZeros64(w)]; v >= 0 {
					buf = append(buf, v)
				}
				w &= w - 1
			}
		}
		s.buf = buf
		slices.Sort(buf)
		// Deduplicate in place: interning is injective, so equal ids are
		// equal values and distinct ids are distinct values.
		out := buf[:0]
		for j, id := range buf {
			if j == 0 || id != buf[j-1] {
				out = append(out, id)
			}
		}
		k := s.key[:0]
		for _, id := range out {
			k = append(k, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		s.key = k
		set, ok := s.sets[string(k)]
		if !ok { // cold path: first sight of this id set on this worker
			set = make([]tn.Value, len(out))
			for j, id := range out {
				set[j] = s.vals[id]
			}
			sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
			s.sets[string(k)] = set
		}
		dst[si] = set
	}
	return nil
}
