package engine

// The columnar resolve hot path. Resolving one object against a compiled
// network is a gather: for each distinct root support, collect the
// object's root beliefs, sort, and deduplicate. The naive implementation
// allocates a values slice per (object, support); at millions of objects
// that dominates the runtime. This file removes every steady-state
// allocation from that loop:
//
//   - belief values are interned into dense int32 ids by a dictionary that
//     survives both Resolve calls and Apply generations; workers front it
//     with a lock-free private memo, so the steady state takes no locks;
//   - the per-object root beliefs are transposed once into a
//     root-slot-indexed []int32 column (one iteration of the input map —
//     the per-object floor this input format admits) and everything
//     downstream reads the column, never the map;
//   - the per-support gather scans the flat supRoots CSR run (layout.go):
//     contiguous int32 loads, no bit iteration, no pointer chasing;
//   - each worker owns a scratch arena (column, gather buffer, key buffer,
//     result cache) recycled through a sync.Pool;
//   - materialized possible-value sets are cached per worker keyed by the
//     id set, so the same conflict pattern resolves to the same shared
//     slice with no allocation after first sight.
//
// In steady state — dictionary warm, caches warm — resolveObject performs
// zero heap allocations per object (asserted by TestResolveObjectZeroAllocs
// with testing.AllocsPerRun).

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"trustmap/internal/tn"
)

// valueDict interns belief values into dense int32 ids. It is shared by
// every resolve worker and carried across Apply generations; lookups take
// a read lock only, so the steady state is contention- and allocation-free.
type valueDict struct {
	mu   sync.RWMutex
	ids  map[tn.Value]int32
	vals []tn.Value
}

func newValueDict() *valueDict {
	return &valueDict{ids: make(map[tn.Value]int32)}
}

// id interns v, returning its dense id.
func (d *valueDict) id(v tn.Value) int32 {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[v]; ok {
		return id
	}
	id = int32(len(d.vals))
	d.vals = append(d.vals, v)
	d.ids[v] = id
	return id
}

// snapshot returns the id -> value column. Only indices assigned before
// the call are valid; the backing array is append-only.
func (d *valueDict) snapshot() []tn.Value {
	d.mu.RLock()
	v := d.vals
	d.mu.RUnlock()
	return v
}

// scratch is a per-worker resolve arena. All fields are reused across
// objects; sets caches materialized possible-value slices keyed by the
// byte image of the sorted id set, so recurring conflict patterns share
// one canonical slice; memo fronts the shared value dictionary without
// locks.
type scratch struct {
	col  []int32 // root slot -> interned belief id of the current object
	memo map[tn.Value]int32
	vals []tn.Value
	buf  []int32
	key  []byte
	sets map[string][]tn.Value
}

// getScratch takes a warm arena from the pool, sized for this network.
// The pool is shared along an Apply lineage, so set caches and value memos
// stay warm across mutations.
func (c *CompiledNetwork) getScratch() *scratch {
	s, _ := c.pool.Get().(*scratch)
	if s == nil {
		s = &scratch{
			sets: make(map[string][]tn.Value),
			memo: make(map[tn.Value]int32),
		}
	}
	if cap(s.col) < len(c.rootSlots) {
		s.col = make([]int32, len(c.rootSlots))
	}
	s.col = s.col[:len(c.rootSlots)]
	return s
}

func (c *CompiledNetwork) putScratch(s *scratch) { c.pool.Put(s) }

// valueID interns v through the worker-local memo, falling back to the
// shared dictionary on first sight.
func (s *scratch) valueID(d *valueDict, v tn.Value) int32 {
	if id, ok := s.memo[v]; ok {
		return id
	}
	id := d.id(v)
	s.memo[v] = id
	return id
}

// fillColumn transposes one object's belief map into the worker's
// root-slot-indexed column: a single iteration of the map, interning each
// value through the worker memo. Entries for non-root users are ignored,
// as in the SQL path; tombstoned slots stay -1. liveRoots is the number of
// live root slots; a shortfall means the object violates assumption (ii)
// and is reported with the first missing root's name.
func (c *CompiledNetwork) fillColumn(s *scratch, key string, beliefs map[int]tn.Value, liveRoots int) error {
	col := s.col
	for i := range col {
		col[i] = -1
	}
	covered := 0
	for root, v := range beliefs {
		if root < 0 || root >= len(c.rootPos) {
			continue
		}
		p := c.rootPos[root]
		if p < 0 {
			continue
		}
		col[p] = s.valueID(c.dict, v)
		covered++
	}
	if covered != liveRoots {
		for _, root := range c.rootSlots {
			if root < 0 {
				continue
			}
			if _, ok := beliefs[root]; !ok {
				return fmt.Errorf("engine: object %q misses a belief for root user %s (assumption ii)", key, c.net.Name(root))
			}
		}
	}
	return nil
}

// numLiveRoots counts the non-tombstoned root slots.
func (c *CompiledNetwork) numLiveRoots() int {
	n := 0
	for _, r := range c.rootSlots {
		if r >= 0 {
			n++
		}
	}
	return n
}

// resolveColumn materializes the per-support possible-value sets of one
// interned column into dst (length len(c.supports)): the columnar core of
// the bulk scan. Zero heap allocations in steady state.
func (c *CompiledNetwork) resolveColumn(s *scratch, col []int32, dst [][]tn.Value) {
	// Snapshot after interning: every id in col is below the column's
	// length, and the column is append-only.
	s.vals = c.dict.snapshot()
	supRoots := c.supRoots
	for si := range dst {
		// Gather the root values of this support: one contiguous CSR run.
		// No support referenced by a live node contains a tombstoned slot,
		// but the table may hold unreferenced supports from before a
		// revocation — their gathers skip the tombstone and are never read.
		buf := s.buf[:0]
		for _, slot := range supRoots[c.supOff[si]:c.supOff[si+1]] {
			if v := col[slot]; v >= 0 {
				buf = append(buf, v)
			}
		}
		s.buf = buf
		slices.Sort(buf)
		// Deduplicate in place: interning is injective, so equal ids are
		// equal values and distinct ids are distinct values.
		out := buf[:0]
		for j, id := range buf {
			if j == 0 || id != buf[j-1] {
				out = append(out, id)
			}
		}
		k := s.key[:0]
		for _, id := range out {
			k = append(k, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		s.key = k
		set, ok := s.sets[string(k)]
		if !ok { // cold path: first sight of this id set on this worker
			set = make([]tn.Value, len(out))
			for j, id := range out {
				set[j] = s.vals[id]
			}
			sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
			s.sets[string(k)] = set
		}
		dst[si] = set
	}
}

// resolveObject materializes the per-support possible-value sets of one
// object into dst (length len(c.supports)): fillColumn + resolveColumn.
func (c *CompiledNetwork) resolveObject(s *scratch, key string, beliefs map[int]tn.Value, dst [][]tn.Value) error {
	if err := c.fillColumn(s, key, beliefs, c.numLiveRoots()); err != nil {
		return err
	}
	c.resolveColumn(s, s.col, dst)
	return nil
}
