package engine

// Signature deduplication of bulk resolution. An object's resolved values
// are a pure function of which roots assert which values for its key: the
// plan, the supports, and the gather never look at anything else. Two
// objects whose interned root-assignment columns are equal therefore have
// byte-identical resolutions, and real conflict workloads are dominated by
// a small number of distinct assignments over huge object sets (most
// objects are uncontested or repeat one of a few conflict patterns). The
// bulk scan exploits that:
//
//   - every object's beliefs are interned into a root-slot-indexed int32
//     column and hashed (FNV-1a over the column, slot order);
//   - columns group into canonical signatures — hash bucket plus exact
//     column comparison, so dedup is never probabilistic;
//   - each distinct signature resolves exactly once; its per-support result
//     fans out to all member objects by pointer.
//
// Grouping also consults a per-CompiledNetwork signature -> result cache
// that survives across Resolve calls, giving Session workloads cross-batch
// reuse: a mutate -> resolve loop whose objects repeat earlier signatures
// skips their resolution entirely. The cache is valid for exactly one
// artifact generation — plans, supports, and root slots are immutable on a
// CompiledNetwork — and structural Apply successors start empty, which is
// the invalidation. (Value-only Apply batches return the same artifact,
// and grown-users-only successors share unchanged supports and root
// slots; both keep the cache: the plan is belief-value-independent, and
// signatures are built from the objects' own beliefs, not the network's.)
// The cache is
// bounded; when full it is flushed wholesale rather than evicted piecewise,
// keeping the bookkeeping off the hot path.

import (
	"slices"
	"sync"
	"sync/atomic"

	"trustmap/internal/tn"
)

// DedupStats reports what signature deduplication did for one Resolve
// call. Zero-valued (except Objects) when dedup was disabled. After an
// adaptive bail-out (see sigGroups), each directly-resolved object counts
// as its own signature in both DistinctSignatures and Resolved, so
// CacheHits + Resolved == DistinctSignatures always holds for a completed
// call.
type DedupStats struct {
	Objects            int // objects in the batch
	DistinctSignatures int // distinct root-assignment signatures among them
	CacheHits          int // signatures served from the cross-batch cache
	Resolved           int // signatures resolved by this call
}

// hashColumn is FNV-1a over the column's int32s in slot order.
func hashColumn(col []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range col {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// sigGroup is one distinct signature of the current batch.
type sigGroup struct {
	col  []int32 // owned copy of the canonical column
	hash uint64
	res  [][]tn.Value // per-support result; nil until resolved (or cached)
}

// The adaptive bail-out: once a large probe prefix of the batch has turned
// out almost entirely distinct — an adversarial, signature-free workload —
// grouping can no longer pay for itself, and the remaining objects resolve
// directly like the dedup-off path (their per-object results are still
// correct; only the sharing is gone). This caps the dedup overhead on
// all-distinct batches at the probe window.
const (
	dedupProbeWindow = 256
	dedupBailNum     = 7 // bail when distinct/seen >= 7/8 past the window
	dedupBailDen     = 8
)

// sigGroups assigns objects to signature groups during the parallel
// interning phase. Group indices are handed out under a mutex; membership
// is exact (hash bucket + column comparison).
type sigGroups struct {
	mu      sync.Mutex
	buckets map[uint64][]int32 // hash -> group indices
	groups  []*sigGroup
	seen    int         // objects claimed so far
	bailed  atomic.Bool // set once the batch probe looks signature-free
}

func newSigGroups(hint int) *sigGroups {
	return &sigGroups{buckets: make(map[uint64][]int32, hint)}
}

// claim returns the group index of col, creating the group (with an owned
// copy of col) on first sight, and trips the bail-out when the batch has
// probed as almost all distinct. The O(|roots|) column comparison — the
// long part on wide networks — runs outside the mutex against the
// immutable published candidates; the lock covers only the bucket probe
// and the insert, so phase-1 grouping scales with the worker pool.
func (g *sigGroups) claim(col []int32, h uint64) int32 {
	g.mu.Lock()
	g.seen++
	cands := g.buckets[h] // bucket prefixes are append-only and stable
	groups := g.groups
	g.mu.Unlock()
	for _, gi := range cands {
		if slices.Equal(groups[gi].col, col) {
			return gi
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// A racing worker may have inserted the same signature meanwhile:
	// re-check just the candidates added since the unlocked scan.
	for _, gi := range g.buckets[h][len(cands):] {
		if slices.Equal(g.groups[gi].col, col) {
			return gi
		}
	}
	gi := int32(len(g.groups))
	g.groups = append(g.groups, &sigGroup{col: append([]int32(nil), col...), hash: h})
	g.buckets[h] = append(g.buckets[h], gi)
	if g.seen >= dedupProbeWindow && len(g.groups)*dedupBailDen >= g.seen*dedupBailNum {
		g.bailed.Store(true)
	}
	return gi
}

// defaultSigCacheCap bounds the cross-batch cache: distinct signatures
// retained per artifact generation before a wholesale flush.
const defaultSigCacheCap = 4096

// sigCache is the per-artifact signature -> result cache. Safe for
// concurrent use; entries are immutable once inserted.
type sigCache struct {
	mu      sync.Mutex
	cap     int
	n       int
	buckets map[uint64][]*sigGroup // reuses sigGroup as the entry shape
}

func newSigCache(capacity int) *sigCache {
	return &sigCache{cap: capacity, buckets: make(map[uint64][]*sigGroup)}
}

// get returns the cached result for col, or nil.
func (sc *sigCache) get(h uint64, col []int32) [][]tn.Value {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, e := range sc.buckets[h] {
		if slices.Equal(e.col, col) {
			return e.res
		}
	}
	return nil
}

// put inserts a resolved signature, taking ownership of col. A full cache
// is flushed first: recurring signatures re-enter on their next sight.
func (sc *sigCache) put(h uint64, col []int32, res [][]tn.Value) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, e := range sc.buckets[h] {
		if slices.Equal(e.col, col) {
			return // raced with another worker; first insert wins
		}
	}
	if sc.n >= sc.cap {
		sc.buckets = make(map[uint64][]*sigGroup)
		sc.n = 0
	}
	sc.buckets[h] = append(sc.buckets[h], &sigGroup{col: col, hash: h, res: res})
	sc.n++
}
