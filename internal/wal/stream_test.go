package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trustmap/wire"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for lsn := uint64(1); lsn <= 10; lsn++ {
		raw, err := Encode(testBatch(lsn))
		if err != nil {
			t.Fatalf("encode %d: %v", lsn, err)
		}
		buf.Write(raw)
	}
	dec := NewDecoder(&buf)
	for lsn := uint64(1); lsn <= 10; lsn++ {
		b, err := dec.Next()
		if err != nil {
			t.Fatalf("next %d: %v", lsn, err)
		}
		if b.LSN != lsn || len(b.Ops) != 2 {
			t.Fatalf("decoded lsn=%d ops=%d, want lsn=%d ops=2", b.LSN, len(b.Ops), lsn)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}
}

// Encode must produce byte-for-byte the framing Append writes, so the
// stream really is the log's record format.
func TestEncodeMatchesAppendFraming(t *testing.T) {
	dir := t.TempDir()
	b := testBatch(1)
	appendN(t, dir, 1, 1)
	names, err := segments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v %v", names, err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	raw, err := Encode(b)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(onDisk[len(magic):], raw) {
		t.Fatalf("Encode framing differs from Append framing")
	}
}

func TestDecoderTornStream(t *testing.T) {
	raw, err := Encode(testBatch(1))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Any strict prefix that is not a clean frame boundary must decode as
	// a torn stream, never as EOF or a bogus batch.
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize, frameHeaderSize + 3, len(raw) - 1} {
		dec := NewDecoder(bytes.NewReader(raw[:cut]))
		if _, err := dec.Next(); !errors.Is(err, ErrTornStream) {
			t.Fatalf("cut at %d: want ErrTornStream, got %v", cut, err)
		}
	}
	// A flipped payload byte (CRC mismatch) is also a tear.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0xff
	if _, err := NewDecoder(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrTornStream) {
		t.Fatalf("corrupt payload: want ErrTornStream, got %v", err)
	}
}

func tailAll(t *testing.T, dir string, after, upto uint64) ([]wire.OpBatch, error) {
	t.Helper()
	var got []wire.OpBatch
	err := Tail(dir, after, upto, func(b wire.OpBatch) error {
		got = append(got, b)
		return nil
	})
	return got, err
}

func TestTailWindow(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 1, 20)

	got, err := tailAll(t, dir, 5, 17)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if len(got) != 12 || got[0].LSN != 6 || got[len(got)-1].LSN != 17 {
		t.Fatalf("tail window wrong: %d batches, first %d last %d",
			len(got), got[0].LSN, got[len(got)-1].LSN)
	}
	// Empty window is a no-op.
	if got, err := tailAll(t, dir, 20, 20); err != nil || len(got) != 0 {
		t.Fatalf("empty window: got %d batches, err %v", len(got), err)
	}
}

// A torn physical tail beyond the durable watermark is invisible to Tail;
// asking past it is an error.
func TestTailStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 1, 10)
	names, _ := segments(dir)
	path := filepath.Join(dir, names[len(names)-1])
	raw, err := Encode(testBatch(11))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write(raw[:len(raw)-2]); err != nil {
		t.Fatalf("tear: %v", err)
	}
	f.Close()

	got, err := tailAll(t, dir, 0, 10)
	if err != nil {
		t.Fatalf("tail below watermark must succeed: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d batches, want 10", len(got))
	}
	if _, err := tailAll(t, dir, 0, 11); err == nil ||
		!strings.Contains(err.Error(), "want 11") {
		t.Fatalf("tail past the tear must fail, got %v", err)
	}
}

func TestTailSpansSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for lsn := uint64(1); lsn <= 15; lsn++ {
		if err := l.Append(testBatch(lsn)); err != nil {
			t.Fatalf("append: %v", err)
		}
		if lsn%5 == 0 {
			if err := l.Rotate(); err != nil {
				t.Fatalf("rotate: %v", err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, err := tailAll(t, dir, 3, 15)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if len(got) != 12 || got[0].LSN != 4 {
		t.Fatalf("cross-segment tail wrong: %d batches, first %d", len(got), got[0].LSN)
	}
}

func TestOldestAndClear(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := Oldest(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for lsn := uint64(1); lsn <= 10; lsn++ {
		if err := l.Append(testBatch(lsn)); err != nil {
			t.Fatalf("append: %v", err)
		}
		if lsn == 5 {
			if err := l.Rotate(); err != nil {
				t.Fatalf("rotate: %v", err)
			}
		}
	}
	if first, ok, _ := Oldest(dir); !ok || first != 1 {
		t.Fatalf("oldest = %d,%v want 1,true", first, ok)
	}
	if _, err := l.Prune(5); err != nil {
		t.Fatalf("prune: %v", err)
	}
	if first, ok, _ := Oldest(dir); !ok || first != 6 {
		t.Fatalf("oldest after prune = %d,%v want 6,true", first, ok)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := Clear(dir); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if _, ok, _ := Oldest(dir); ok {
		t.Fatalf("oldest after clear: want none")
	}
}
