// Package wal is the durable store's append-only write-ahead log: a
// sequence of CRC-framed wire.OpBatch records across one or more segment
// files, with torn-tail truncation on open and deterministic counters so
// durability overhead is benchmarkable without wall clocks.
//
// # File format
//
// Each segment file is
//
//	magic "TMWAL1\n\x00" (8 bytes)
//	record*
//
// and each record is
//
//	length  uint32 LE   — payload byte count
//	crc     uint32 LE   — CRC-32C (Castagnoli) of the payload
//	payload []byte      — JSON-encoded wire.OpBatch
//
// Segments are named wal-<firstLSN %016x>.log; a segment's name carries
// the LSN of its first record, so recovery can skip whole segments below
// a snapshot watermark without reading them. Records within and across
// segments carry strictly contiguous LSNs. Appends always go to the
// highest-named segment; Rotate starts a fresh one (after a checkpoint)
// so fully-compacted segments can be pruned by name alone.
//
// # Torn tails
//
// A crash mid-write leaves a torn tail: a truncated or garbled final
// record. Open scans every record of the last segment, stops at the
// first frame whose length is implausible, whose payload is short, or
// whose CRC mismatches, truncates the file back to the last intact
// record boundary, and reports the discarded byte count. Corruption in
// the middle of older segments (not the tail) cannot be self-healed and
// fails Open with ErrCorrupt: that is disk rot, not a crash artifact.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"trustmap/internal/faultinject"
	"trustmap/wire"
)

const (
	// magic opens every segment file. The trailing NUL pads to 8 bytes so
	// record frames stay 4-byte aligned.
	magic = "TMWAL1\n\x00"
	// frameHeaderSize is the length+crc prefix of each record.
	frameHeaderSize = 8
	// maxRecordSize bounds a single record payload; a length field above
	// it is treated as frame garbage, not an allocation request.
	maxRecordSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports unrecoverable corruption: a bad frame that is not at
// the tail of the last segment, or a non-contiguous LSN sequence.
var ErrCorrupt = errors.New("wal: corrupt log")

// Stats are deterministic counters of one Log's lifetime (since Open).
type Stats struct {
	Appends        uint64 // batches appended
	Syncs          uint64 // fsyncs issued
	Bytes          uint64 // payload+frame bytes appended
	Segments       int    // live segment files
	DiscardedBytes uint64 // torn-tail bytes truncated by Open
}

// Log is an open write-ahead log rooted at one directory. It is not
// goroutine-safe; the durable store serializes access.
type Log struct {
	dir     string
	f       *os.File // active (highest-named) segment
	path    string
	lastLSN uint64 // LSN of the last appended/recovered record; 0 if none
	dirty   bool   // appends since the last sync
	stats   Stats
}

// segName formats the segment file name for a first-LSN.
func segName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// parseSegName extracts the first-LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// segments lists the log's segment files sorted by first-LSN.
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // %016x sorts numerically
	return names, nil
}

// Open opens (creating if needed) the log in dir, heals any torn tail on
// the last segment, and positions for appends. nextLSN is the LSN the
// next Append will be assigned; discarded is the byte count truncated
// from a torn tail, if any.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir}
	if len(names) == 0 {
		return l, nil // fresh log; first Append creates the first segment
	}
	// The earliest surviving segment's name carries its first record's
	// LSN (earlier segments were pruned at a checkpoint), anchoring the
	// continuity check.
	first, ok := parseSegName(names[0])
	if !ok || first == 0 {
		return nil, fmt.Errorf("%w: bad segment name %s", ErrCorrupt, names[0])
	}
	l.lastLSN = first - 1
	// Validate LSN continuity across all segments and heal the tail of
	// the last one. Only the last segment may be torn.
	for i, name := range names {
		path := filepath.Join(dir, name)
		last := i == len(names)-1
		lastLSN, discarded, err := l.scanSegment(path, last)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, name, err)
		}
		l.lastLSN = lastLSN
		l.stats.DiscardedBytes += discarded
	}
	l.stats.Segments = len(names)
	// Reopen the last segment for appending — unless healing emptied it
	// entirely (crash before its magic landed): drop that husk and let
	// the next Append start a fresh, well-formed segment.
	path := filepath.Join(dir, names[len(names)-1])
	if info, err := os.Stat(path); err != nil {
		return nil, err
	} else if info.Size() < int64(len(magic)) {
		if err := os.Remove(path); err != nil {
			return nil, err
		}
		l.stats.Segments--
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f, l.path = f, path
	return l, nil
}

// scanSegment validates one segment: magic, frames, CRCs, and LSN
// continuity with l.lastLSN. When tail is true a bad frame heals by
// truncating the file back to the last intact boundary; otherwise it is
// an error. Returns the last valid LSN seen (carrying l.lastLSN forward
// if the segment is empty) and the truncated byte count.
func (l *Log) scanSegment(path string, tail bool) (uint64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := info.Size()
	lastLSN := l.lastLSN

	heal := func(goodEnd int64, why string) (uint64, uint64, error) {
		if !tail {
			return 0, 0, fmt.Errorf("%s at offset %d (not the tail segment)", why, goodEnd)
		}
		if err := os.Truncate(path, goodEnd); err != nil {
			return 0, 0, fmt.Errorf("truncating torn tail: %w", err)
		}
		return lastLSN, uint64(size - goodEnd), nil
	}

	if size < int64(len(magic)) {
		// Shorter than the header: a crash during segment creation.
		return heal(0, "short magic")
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, err
	}
	if string(hdr) != magic {
		// A wrong magic is never a torn tail — the header is written
		// first and fits one sector. Refuse even on the tail segment.
		return 0, 0, errors.New("bad magic")
	}

	off := int64(len(magic))
	frame := make([]byte, frameHeaderSize)
	var payload []byte
	for off < size {
		if size-off < frameHeaderSize {
			return heal(off, "short frame header")
		}
		if _, err := io.ReadFull(f, frame); err != nil {
			return 0, 0, err
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxRecordSize || int64(length) > size-off-frameHeaderSize {
			return heal(off, "implausible record length")
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return 0, 0, err
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return heal(off, "crc mismatch")
		}
		var b wire.OpBatch
		if err := json.Unmarshal(payload, &b); err != nil {
			// The CRC matched, so this was durably written as-is: disk
			// rot or a writer bug, not a torn tail. But at the very tail
			// it is still safest (and lossless for acked writes) to heal.
			return heal(off, "undecodable payload")
		}
		if b.LSN != lastLSN+1 {
			return 0, 0, fmt.Errorf("lsn gap: %d follows %d", b.LSN, lastLSN)
		}
		lastLSN = b.LSN
		off += frameHeaderSize + int64(length)
	}
	return lastLSN, 0, nil
}

// LastLSN is the LSN of the last record in the log (appended or
// recovered); 0 for an empty log.
func (l *Log) LastLSN() uint64 { return l.lastLSN }

// SetBase positions a record-less log so the next Append is assigned
// base+1: the recovery path for a data directory whose snapshot covers
// LSNs the (fresh or fully pruned) log never saw. It refuses on a log
// holding records or an anchored empty segment — their position is
// already determined by their contents.
func (l *Log) SetBase(base uint64) error {
	if l.lastLSN != 0 || l.stats.Appends != 0 || l.f != nil {
		return errors.New("wal: SetBase on a non-empty log")
	}
	l.lastLSN = base
	return nil
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	s := l.stats
	return s
}

// Append frames and writes one batch at the end of the active segment.
// The batch's LSN must be exactly LastLSN()+1 — the log owns contiguity.
// The write lands in the OS page cache; call Sync to make it durable.
func (l *Log) Append(b wire.OpBatch) error {
	if b.LSN != l.lastLSN+1 {
		return fmt.Errorf("wal: append lsn %d, want %d", b.LSN, l.lastLSN+1)
	}
	if l.f == nil {
		if err := l.startSegment(b.LSN); err != nil {
			return err
		}
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return err
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	if err := faultinject.Fire(faultinject.WALAppend); err != nil {
		// A ShortWriteError physically tears the tail — a prefix of the
		// frame lands on disk, exactly as a crash mid-write would leave it —
		// so recovery tests exercise the real heal path.
		var sw *faultinject.ShortWriteError
		if errors.As(err, &sw) && sw.Bytes > 0 {
			n := sw.Bytes
			if n > len(buf) {
				n = len(buf)
			}
			l.f.Write(buf[:n]) //nolint:errcheck // the injected error supersedes
		}
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.lastLSN = b.LSN
	l.dirty = true
	l.stats.Appends++
	l.stats.Bytes += uint64(len(buf))
	return nil
}

// startSegment creates a fresh segment whose first record will be
// firstLSN, writes the magic, and makes it the active segment.
func (l *Log) startSegment(firstLSN uint64) error {
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f, l.path = f, path
	l.stats.Segments++
	return nil
}

// Sync fsyncs the active segment if it has unsynced appends. After Sync
// returns nil, every appended batch survives a crash.
func (l *Log) Sync() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := faultinject.Fire(faultinject.WALSync); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.stats.Syncs++
	return nil
}

// Rotate syncs and closes the active segment so the next Append starts a
// fresh one. Called after a checkpoint: segments wholly below the
// snapshot watermark become prunable by name.
func (l *Log) Rotate() error {
	if l.f == nil {
		return nil
	}
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f, l.path = nil, ""
	return nil
}

// Prune removes segments whose every record has LSN <= watermark — i.e.
// segments followed by another segment whose first-LSN is <= watermark+1.
// The active segment is never pruned. Returns the removed file count.
func (l *Log) Prune(watermark uint64) (int, error) {
	names, err := segments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, name := range names {
		if filepath.Join(l.dir, name) == l.path {
			continue
		}
		// The segment's records end where the next segment begins.
		if i+1 >= len(names) {
			continue // last segment: its tail may exceed the watermark
		}
		next, _ := parseSegName(names[i+1])
		if next == 0 || next-1 > watermark {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
			return removed, err
		}
		removed++
		l.stats.Segments--
	}
	return removed, nil
}

// Replay streams every batch with LSN > after, in order, to fn. Segments
// whose name proves they end at or below after are skipped without
// reading. fn returning an error stops the replay.
func Replay(dir string, after uint64, fn func(wire.OpBatch) error) error {
	names, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	// Skip segments that end before `after+1`: segment i ends where
	// segment i+1 begins.
	start := 0
	for i := 0; i+1 < len(names); i++ {
		next, _ := parseSegName(names[i+1])
		if next != 0 && next <= after+1 {
			start = i + 1
		}
	}
	for _, name := range names[start:] {
		if err := replaySegment(filepath.Join(dir, name), after, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment streams one segment's batches with LSN > after to fn.
// The segment is assumed healed (Open ran first); a bad frame here is
// ErrCorrupt.
func replaySegment(path string, after uint64, fn func(wire.OpBatch) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil // healed-to-empty segment
		}
		return err
	}
	if string(hdr) != magic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	frame := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("%w: %s: torn frame in replay", ErrCorrupt, filepath.Base(path))
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxRecordSize {
			return fmt.Errorf("%w: %s: implausible record length %d", ErrCorrupt, filepath.Base(path), length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("%w: %s: short payload", ErrCorrupt, filepath.Base(path))
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return fmt.Errorf("%w: %s: crc mismatch", ErrCorrupt, filepath.Base(path))
		}
		var b wire.OpBatch
		if err := json.Unmarshal(payload, &b); err != nil {
			return fmt.Errorf("%w: %s: undecodable payload: %v", ErrCorrupt, filepath.Base(path), err)
		}
		if b.LSN <= after {
			continue
		}
		if err := fn(b); err != nil {
			return err
		}
	}
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}
