package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"trustmap/wire"
)

// testBatch builds a deterministic batch for an LSN.
func testBatch(lsn uint64) wire.OpBatch {
	return wire.OpBatch{
		Schema: wire.SchemaVersion,
		Epoch:  lsn, // arbitrary but deterministic
		LSN:    lsn,
		Ops: []wire.Op{
			{Op: wire.OpSetTrust, Truster: fmt.Sprintf("u%d", lsn), Trusted: "root", Priority: int(lsn % 7)},
			{Op: wire.OpPutBelief, Object: fmt.Sprintf("o%d", lsn%3), User: fmt.Sprintf("u%d", lsn), Value: "v"},
		},
	}
}

// appendN opens the log in dir and appends batches for LSNs (from, from+n).
func appendN(t *testing.T, dir string, from uint64, n int) {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(testBatch(from + uint64(i))); err != nil {
			t.Fatalf("append %d: %v", from+uint64(i), err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// replayAll collects every batch with LSN > after.
func replayAll(t *testing.T, dir string, after uint64) []wire.OpBatch {
	t.Helper()
	var got []wire.OpBatch
	if err := Replay(dir, after, func(b wire.OpBatch) error {
		got = append(got, b)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 1, 25)

	l, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l.LastLSN() != 25 {
		t.Fatalf("LastLSN = %d, want 25", l.LastLSN())
	}
	if l.Stats().DiscardedBytes != 0 {
		t.Fatalf("clean log discarded %d bytes", l.Stats().DiscardedBytes)
	}
	l.Close()

	got := replayAll(t, dir, 0)
	if len(got) != 25 {
		t.Fatalf("replayed %d batches, want 25", len(got))
	}
	for i, b := range got {
		want := testBatch(uint64(i + 1))
		if b.LSN != want.LSN || len(b.Ops) != len(want.Ops) || b.Ops[0].Truster != want.Ops[0].Truster {
			t.Fatalf("batch %d: got %+v, want %+v", i, b, want)
		}
	}
	if got := replayAll(t, dir, 20); len(got) != 5 || got[0].LSN != 21 {
		t.Fatalf("suffix replay after 20: %d batches, first %v", len(got), got[0].LSN)
	}
}

func TestAppendEnforcesContiguity(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testBatch(2)); err == nil {
		t.Fatal("append lsn 2 on empty log succeeded, want error")
	}
	if err := l.Append(testBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testBatch(3)); err == nil {
		t.Fatal("append lsn 3 after 1 succeeded, want error")
	}
}

func TestRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 10; lsn++ {
		if err := l.Append(testBatch(lsn)); err != nil {
			t.Fatal(err)
		}
		if lsn%4 == 0 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Segments: wal-1 (1-4), wal-5 (5-8), wal-9 (9-10 active).
	if got := l.Stats().Segments; got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	// Watermark 6 only retires wal-1 (wal-5 holds 7-8 too).
	if n, err := l.Prune(6); err != nil || n != 1 {
		t.Fatalf("prune(6) = %d, %v; want 1, nil", n, err)
	}
	// Watermark 10 retires wal-5; the active segment survives.
	if n, err := l.Prune(10); err != nil || n != 1 {
		t.Fatalf("prune(10) = %d, %v; want 1, nil", n, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The pruned log reopens cleanly and replays only the tail.
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen pruned: %v", err)
	}
	if l2.LastLSN() != 10 {
		t.Fatalf("LastLSN after prune = %d, want 10", l2.LastLSN())
	}
	if err := l2.Append(testBatch(11)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if got := replayAll(t, dir, 8); len(got) != 3 || got[0].LSN != 9 {
		t.Fatalf("replay after prune: %d batches from %d", len(got), got[0].LSN)
	}
}

func TestReplaySkipsPrunedPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	for lsn := uint64(1); lsn <= 6; lsn++ {
		if err := l.Append(testBatch(lsn)); err != nil {
			t.Fatal(err)
		}
		if lsn == 3 {
			l.Rotate()
		}
	}
	l.Close()
	if got := replayAll(t, dir, 3); len(got) != 3 || got[0].LSN != 4 {
		t.Fatalf("replay(3): %d batches, first %d", len(got), got[0].LSN)
	}
	if got := replayAll(t, dir, 6); len(got) != 0 {
		t.Fatalf("replay(6): %d batches, want 0", len(got))
	}
}

// TestTornTailEveryTruncationOffset is the ISSUE's corruption acceptance
// test: truncate the log at EVERY byte offset of the tail region and
// assert Open never panics, recovers exactly the batches whose frames
// survived intact, and reports the discarded suffix.
func TestTornTailEveryTruncationOffset(t *testing.T) {
	const keep = 3 // intact prefix batches
	base := t.TempDir()
	ref := filepath.Join(base, "ref")
	appendN(t, ref, 1, keep+2) // 5 batches; offsets beyond batch 3 get cut

	refBytes, err := os.ReadFile(walOnlyFile(t, ref))
	if err != nil {
		t.Fatal(err)
	}
	// Boundary offsets: byte positions where a record ends (including the
	// magic header end), so truncating there loses no frame.
	boundaries := recordBoundaries(t, refBytes)
	if len(boundaries) != keep+2+1 {
		t.Fatalf("found %d boundaries, want %d", len(boundaries), keep+3)
	}
	tailStart := boundaries[keep] // end of batch `keep`

	for off := tailStart; off <= int64(len(refBytes)); off++ {
		dir := filepath.Join(base, fmt.Sprintf("t%06d", off))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), refBytes[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		// How many full batches survive this cut?
		wantLSN := uint64(0)
		for i, b := range boundaries {
			if b <= off {
				wantLSN = uint64(i)
			}
		}
		wantDiscard := uint64(off - boundaries[wantLSN])
		if l.LastLSN() != wantLSN {
			t.Fatalf("offset %d: recovered lsn %d, want %d", off, l.LastLSN(), wantLSN)
		}
		if got := l.Stats().DiscardedBytes; got != wantDiscard {
			t.Fatalf("offset %d: discarded %d bytes, want %d", off, got, wantDiscard)
		}
		// The healed log must accept the next contiguous append...
		if err := l.Append(testBatch(wantLSN + 1)); err != nil {
			t.Fatalf("offset %d: append after heal: %v", off, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
		// ...and replay the surviving prefix plus the new batch.
		got := replayAll(t, dir, 0)
		if len(got) != int(wantLSN)+1 {
			t.Fatalf("offset %d: replayed %d batches, want %d", off, len(got), wantLSN+1)
		}
	}
}

// TestBitFlipEveryTailByte flips each byte of the last record (frame and
// payload) and asserts Open heals back to the previous batch — a CRC or
// frame check must catch every single-byte corruption of the tail.
func TestBitFlipEveryTailByte(t *testing.T) {
	const keep = 3
	base := t.TempDir()
	ref := filepath.Join(base, "ref")
	appendN(t, ref, 1, keep+1)
	refBytes, err := os.ReadFile(walOnlyFile(t, ref))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := recordBoundaries(t, refBytes)
	tailStart := boundaries[keep]

	for off := tailStart; off < int64(len(refBytes)); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			dir := filepath.Join(base, fmt.Sprintf("f%06d_%02x", off, bit))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			mut := append([]byte(nil), refBytes...)
			mut[off] ^= bit
			if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(dir)
			if err != nil {
				t.Fatalf("flip %d/%#x: open: %v", off, bit, err)
			}
			// Flipping a length byte can make the frame claim a longer
			// payload that still fits... it cannot: the record is last,
			// so a longer length overruns the file (implausible-length
			// heal) and a shorter/equal one breaks the CRC. Either way
			// the last batch must be discarded, never garbled.
			if l.LastLSN() != uint64(keep) {
				t.Fatalf("flip %d/%#x: recovered lsn %d, want %d", off, bit, l.LastLSN(), keep)
			}
			if l.Stats().DiscardedBytes == 0 {
				t.Fatalf("flip %d/%#x: no discarded bytes reported", off, bit)
			}
			l.Close()
		}
	}
}

// TestMidLogCorruptionIsFatal pins the non-self-healing case: a bad CRC
// in a non-tail segment is disk rot and must fail Open with ErrCorrupt,
// not silently truncate acknowledged history.
func TestMidLogCorruptionIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	for lsn := uint64(1); lsn <= 6; lsn++ {
		if err := l.Append(testBatch(lsn)); err != nil {
			t.Fatal(err)
		}
		if lsn == 3 {
			l.Rotate()
		}
	}
	l.Close()
	// Corrupt a payload byte in the FIRST segment.
	first := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestTornSegmentCreation(t *testing.T) {
	// A crash between segment creation and the magic write leaves a
	// short husk; Open must drop it and keep appending cleanly.
	dir := t.TempDir()
	appendN(t, dir, 1, 2)
	l, _ := Open(dir)
	l.Rotate()
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, segName(3)), []byte("TMW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with husk segment: %v", err)
	}
	if l2.LastLSN() != 2 {
		t.Fatalf("LastLSN = %d, want 2", l2.LastLSN())
	}
	if err := l2.Append(testBatch(3)); err != nil {
		t.Fatalf("append after husk removal: %v", err)
	}
	l2.Close()
	if got := replayAll(t, dir, 0); len(got) != 3 {
		t.Fatalf("replayed %d batches, want 3", len(got))
	}
}

func TestSyncCounters(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	for lsn := uint64(1); lsn <= 5; lsn++ {
		if err := l.Append(testBatch(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // clean: must not double-count
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Appends != 5 || s.Syncs != 1 || s.Bytes == 0 {
		t.Fatalf("stats = %+v, want 5 appends, 1 sync", s)
	}
	l.Close()
}

// walOnlyFile returns the single segment file in dir.
func walOnlyFile(t *testing.T, dir string) string {
	t.Helper()
	names, err := segments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("segments(%s) = %v, %v; want exactly 1", dir, names, err)
	}
	return filepath.Join(dir, names[0])
}

// recordBoundaries returns the byte offsets in a segment where a record
// (or the magic header) ends: boundaries[i] is the end of record i, with
// boundaries[0] = len(magic).
func recordBoundaries(t *testing.T, raw []byte) []int64 {
	t.Helper()
	boundaries := []int64{int64(len(magic))}
	off := int64(len(magic))
	for off < int64(len(raw)) {
		if int64(len(raw))-off < frameHeaderSize {
			t.Fatalf("reference log has torn tail at %d", off)
		}
		length := int64(raw[off]) | int64(raw[off+1])<<8 | int64(raw[off+2])<<16 | int64(raw[off+3])<<24
		off += frameHeaderSize + length
		boundaries = append(boundaries, off)
	}
	return boundaries
}
