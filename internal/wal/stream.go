// WAL shipping: the streaming half of the log. A primary frames batches
// with Encode — byte-for-byte the record framing Append writes — and
// ships them over HTTP; a replica reads them back with Decoder and Tail
// reads a log directory's durable prefix concurrently with a writer.
//
// Concurrent-read safety: Tail must only be asked for records up to a
// durable watermark the caller sampled BEFORE the call (the store's
// DurableLSN). Every record at or below that watermark was fully written
// and fsynced before the sample, so any torn or short frame Tail meets
// can only be an in-flight append beyond the watermark: it stops there
// silently, and failing to reach the watermark is reported as an error
// rather than a short read.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"trustmap/wire"
)

// ErrTornStream reports a replication stream that ended mid-frame: the
// connection (or the primary) died between a frame header and its
// payload. The fix is to reconnect and resume after the last applied
// LSN — nothing before the tear is in doubt.
var ErrTornStream = errors.New("wal: stream ended mid-frame")

// Encode frames one batch exactly as Append writes it to a segment:
// length uint32 LE, CRC-32C uint32 LE, JSON payload. The replication
// stream is therefore the record format of the log itself, minus the
// per-segment magic.
func Encode(b wire.OpBatch) ([]byte, error) {
	payload, err := json.Marshal(b)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	return buf, nil
}

// Decoder reads a stream of Encode-framed batches. It is the replica's
// view of GET /v1/wal: Next returns batches in stream order, io.EOF at a
// clean frame boundary, and an ErrTornStream-wrapped error when the
// stream is cut mid-frame (including a CRC mismatch — a tear that
// happened to land inside the payload bytes).
type Decoder struct {
	r     io.Reader
	frame [frameHeaderSize]byte
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Next reads one framed batch. io.EOF means the stream ended cleanly
// between frames.
func (d *Decoder) Next() (wire.OpBatch, error) {
	if _, err := io.ReadFull(d.r, d.frame[:]); err != nil {
		if err == io.EOF {
			return wire.OpBatch{}, io.EOF
		}
		return wire.OpBatch{}, fmt.Errorf("%w: cut in frame header: %v", ErrTornStream, err)
	}
	length := binary.LittleEndian.Uint32(d.frame[0:4])
	crc := binary.LittleEndian.Uint32(d.frame[4:8])
	if length == 0 || length > maxRecordSize {
		return wire.OpBatch{}, fmt.Errorf("%w: implausible record length %d", ErrTornStream, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return wire.OpBatch{}, fmt.Errorf("%w: cut in payload: %v", ErrTornStream, err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return wire.OpBatch{}, fmt.Errorf("%w: crc mismatch", ErrTornStream)
	}
	var b wire.OpBatch
	if err := json.Unmarshal(payload, &b); err != nil {
		return wire.OpBatch{}, fmt.Errorf("%w: undecodable payload: %v", ErrTornStream, err)
	}
	return b, nil
}

// Tail streams every batch with after < LSN <= upto, in order, to fn —
// reading the segment files directly, safely concurrent with a writer
// appending to the same directory, provided upto was a durable watermark
// when the call started (see the package comment above). A torn or
// implausible frame stops the scan silently: it can only be in-flight
// work beyond upto. If the scan ends before delivering upto, Tail
// reports it — the watermark promised those records were there.
func Tail(dir string, after, upto uint64, fn func(wire.OpBatch) error) error {
	if upto <= after {
		return nil
	}
	names, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("wal: tail found no log, want lsn %d", upto)
		}
		return err
	}
	// Skip segments that end before after+1: segment i ends where
	// segment i+1 begins.
	start := 0
	for i := 0; i+1 < len(names); i++ {
		next, _ := parseSegName(names[i+1])
		if next != 0 && next <= after+1 {
			start = i + 1
		}
	}
	last := after
	for _, name := range names[start:] {
		stop, err := tailSegment(filepath.Join(dir, name), after, upto, &last, fn)
		if err != nil {
			return err
		}
		if stop {
			break
		}
	}
	if last < upto {
		return fmt.Errorf("wal: tail ends at lsn %d, want %d", last, upto)
	}
	return nil
}

// tailSegment scans one segment for Tail. It reports stop=true when the
// scan hit either a record beyond upto or a torn in-flight tail; *last
// tracks the highest LSN delivered.
func tailSegment(path string, after, upto uint64, last *uint64, fn func(wire.OpBatch) error) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Pruned between the directory listing and the open: records
			// that mattered were below a checkpoint watermark; the final
			// last<upto check decides whether anything was actually lost.
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		// Shorter than its magic: a segment mid-creation. Nothing durable
		// lives here yet.
		return true, nil
	}
	if string(hdr) != magic {
		return false, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	frame := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			if err == io.EOF {
				return false, nil // clean segment end; continue with the next
			}
			return true, nil // short header: in-flight append
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxRecordSize {
			return true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return true, nil
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return true, nil
		}
		var b wire.OpBatch
		if err := json.Unmarshal(payload, &b); err != nil {
			return true, nil
		}
		if b.LSN > upto {
			return true, nil
		}
		if b.LSN <= after {
			continue
		}
		if err := fn(b); err != nil {
			return false, err
		}
		*last = b.LSN
	}
}

// Oldest reports the first LSN still present in the log: the first-LSN
// carried by the earliest segment's name. ok is false for an empty or
// absent log. A tail request for records before Oldest cannot be served
// from the log — the requester needs a snapshot bootstrap instead.
func Oldest(dir string) (uint64, bool, error) {
	names, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if len(names) == 0 {
		return 0, false, nil
	}
	first, ok := parseSegName(names[0])
	if !ok || first == 0 {
		return 0, false, fmt.Errorf("%w: bad segment name %s", ErrCorrupt, names[0])
	}
	return first, true, nil
}

// Clear removes every segment file in dir. It is the destructive half of
// a snapshot re-bootstrap: only call it when every record in the log is
// known to be covered by the snapshot about to be installed.
func Clear(dir string) error {
	names, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, name := range names {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
