package lp

// Component decomposition: an ablation of the solver design. The ground
// program is split into connected components of its atom-dependency graph;
// each component's stable models are enumerated independently, and
// brave/cautious answers are combined. This turns the Figure 5 / Figure 8a
// workloads (chains of independent oscillators) from exponential into
// linear for query answering, because the full model set - whose size is
// the PRODUCT of the per-component counts - is never materialized. Model
// counting is exact via big integers.
//
// The monolithic StableModels/Brave/Cautious remain the faithful baseline
// the benchmarks use; BenchmarkAblationLPDecomposition contrasts the two.

import (
	"math/big"
	"sort"
)

// components partitions the ground rules by connected component of their
// atoms (union-find over head and body atoms of each rule).
func components(names []string, rules []groundRule) [][]groundRule {
	n := len(names)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, r := range rules {
		for _, a := range r.pos {
			union(r.head, a)
		}
		for _, a := range r.neg {
			union(r.head, a)
		}
	}
	groups := make(map[int][]groundRule)
	for _, r := range rules {
		root := find(r.head)
		groups[root] = append(groups[root], r)
	}
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	out := make([][]groundRule, 0, len(groups))
	for _, root := range roots {
		out = append(out, groups[root])
	}
	return out
}

// solveComponents grounds p and enumerates each component's stable models
// separately.
func solveComponents(p *Program, opt Options) (names []string, comps [][]Model, err error) {
	g, rules, err := ground(p)
	if err != nil {
		return nil, nil, err
	}
	for _, compRules := range components(g.names, rules) {
		models, err := searchStable(g.names, compRules, opt)
		if err != nil {
			return nil, nil, err
		}
		comps = append(comps, models)
	}
	return g.names, comps, nil
}

// BraveDecomposed answers the brave query per component: an atom is brave
// iff it is brave in its component and every component has at least one
// stable model.
func BraveDecomposed(p *Program, opt Options) ([]string, error) {
	_, comps, err := solveComponents(p, opt)
	if err != nil {
		return nil, err
	}
	for _, models := range comps {
		if len(models) == 0 {
			return nil, nil // the whole program has no stable model
		}
	}
	set := make(map[string]bool)
	for _, models := range comps {
		for _, m := range models {
			for a := range m {
				set[a] = true
			}
		}
	}
	return sortedKeys(set), nil
}

// CautiousDecomposed answers the cautious query per component: an atom is
// cautious iff it belongs to every stable model of its component (and the
// program has at least one stable model).
func CautiousDecomposed(p *Program, opt Options) ([]string, error) {
	_, comps, err := solveComponents(p, opt)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, models := range comps {
		if len(models) == 0 {
			return nil, nil
		}
		inAll := make(map[string]bool)
		for a := range models[0] {
			inAll[a] = true
		}
		for _, m := range models[1:] {
			for a := range inAll {
				if !m[a] {
					delete(inAll, a)
				}
			}
		}
		for a := range inAll {
			set[a] = true
		}
	}
	return sortedKeys(set), nil
}

// CountStableModels returns the exact number of stable models as the
// product of the per-component counts — exponentially many models are
// counted without being materialized (e.g. 2^k for k oscillators).
func CountStableModels(p *Program, opt Options) (*big.Int, error) {
	_, comps, err := solveComponents(p, opt)
	if err != nil {
		return nil, err
	}
	total := big.NewInt(1)
	for _, models := range comps {
		total.Mul(total, big.NewInt(int64(len(models))))
	}
	return total, nil
}
