package lp

// Translation of trust networks into logic programs (Theorem 2.9,
// Appendix B.4). Binary networks use the five-case translation of the
// equivalence proof; arbitrary networks can also be translated directly
// without binarization (Appendix B.4, Remark 2 and Example B.2), at the
// cost of a quadratic number of blocking rules.

import (
	"fmt"

	"trustmap/internal/tn"
)

// Naming maps network entities to LP constants and back.
type Naming struct {
	UserConst  []string // node id -> constant
	ValueConst map[tn.Value]string
	ConstValue map[string]tn.Value
}

func newNaming(n *tn.Network) *Naming {
	nm := &Naming{
		UserConst:  make([]string, n.NumUsers()),
		ValueConst: make(map[tn.Value]string),
		ConstValue: make(map[string]tn.Value),
	}
	for x := 0; x < n.NumUsers(); x++ {
		nm.UserConst[x] = fmt.Sprintf("u%d", x)
	}
	for i, v := range n.Domain() {
		c := fmt.Sprintf("val%d", i)
		nm.ValueConst[v] = c
		nm.ConstValue[c] = v
	}
	return nm
}

// PossAtom returns the ground atom string "poss(ux,valy)" for (x, v).
func (nm *Naming) PossAtom(x int, v tn.Value) string {
	return fmt.Sprintf("poss(%s,%s)", nm.UserConst[x], nm.ValueConst[v])
}

// TranslateBinary converts a binary trust network into the logic program of
// Theorem 2.9 / Appendix B.4: per node, one of the five cases (a)-(e).
// Stable models of the program correspond 1:1 to stable solutions of the
// network.
func TranslateBinary(n *tn.Network, nm *Naming) (*Program, *Naming) {
	if !n.IsBinary() {
		panic("lp: TranslateBinary requires a binary trust network")
	}
	if nm == nil {
		nm = newNaming(n)
	}
	p := &Program{}
	X, Y := Var("X"), Var("Y")
	poss := func(u string, t Term) Atom { return Atom{Pred: "poss", Args: []Term{Const(u), t}} }
	conf := func(u, z string, t Term) Atom {
		return Atom{Pred: "conf", Args: []Term{Const(u), Const(z), t}}
	}
	for x := 0; x < n.NumUsers(); x++ {
		ux := nm.UserConst[x]
		// Case (e): explicit belief - a single extensional fact.
		if v := n.Explicit(x); v != tn.NoValue {
			p.AddFact(poss(ux, Const(nm.ValueConst[v])))
			continue
		}
		in := n.In(x) // sorted by priority desc
		switch len(in) {
		case 0: // case (a): no rules
		case 1: // case (b): single parent import
			uz := nm.UserConst[in[0].Parent]
			p.AddRule(Rule{Head: poss(ux, X), Body: []Literal{{Atom: poss(uz, X)}}})
		case 2:
			z2, z1 := in[0].Parent, in[1].Parent // z2 higher (or tied) priority
			u2, u1 := nm.UserConst[z2], nm.UserConst[z1]
			guarded := func(uz string) {
				p.AddRule(Rule{
					Head:     conf(ux, uz, X),
					Body:     []Literal{{Atom: poss(uz, X)}, {Atom: poss(ux, Y)}},
					Builtins: []Builtin{{L: Y, R: X}},
				})
				p.AddRule(Rule{
					Head: poss(ux, X),
					Body: []Literal{{Atom: poss(uz, X)}, {Atom: conf(ux, uz, X), Neg: true}},
				})
			}
			if in[0].Priority > in[1].Priority {
				// Case (c): preferred z2, non-preferred z1.
				p.AddRule(Rule{Head: poss(ux, X), Body: []Literal{{Atom: poss(u2, X)}}})
				guarded(u1)
			} else {
				// Case (d): two non-preferred parents.
				guarded(u1)
				guarded(u2)
			}
		}
	}
	return p, nm
}

// TranslateDirect converts an arbitrary (possibly non-binary) trust network
// into a logic program without binarization (Appendix B.4, Remark 2;
// Example B.2). A parent z of x is blocked by every strictly
// higher-priority parent; parents sharing their priority with another
// parent additionally get a self-blocking rule so that only one of the tied
// values is adopted per stable model.
func TranslateDirect(n *tn.Network, nm *Naming) (*Program, *Naming) {
	if nm == nil {
		nm = newNaming(n)
	}
	p := &Program{}
	X, Y := Var("X"), Var("Y")
	poss := func(u string, t Term) Atom { return Atom{Pred: "poss", Args: []Term{Const(u), t}} }
	conf := func(u, z string, t Term) Atom {
		return Atom{Pred: "conf", Args: []Term{Const(u), Const(z), t}}
	}
	for x := 0; x < n.NumUsers(); x++ {
		ux := nm.UserConst[x]
		if v := n.Explicit(x); v != tn.NoValue {
			p.AddFact(poss(ux, Const(nm.ValueConst[v])))
			continue
		}
		in := n.In(x) // priority desc
		for i, m := range in {
			uz := nm.UserConst[m.Parent]
			tied := (i > 0 && in[i-1].Priority == m.Priority) ||
				(i+1 < len(in) && in[i+1].Priority == m.Priority)
			if i == 0 && !tied {
				// Unique top-priority parent: plain import rule.
				p.AddRule(Rule{Head: poss(ux, X), Body: []Literal{{Atom: poss(uz, X)}}})
				continue
			}
			// One blocking rule per strictly higher-priority parent.
			for j := 0; j < i; j++ {
				if in[j].Priority == m.Priority {
					continue
				}
				p.AddRule(Rule{
					Head: conf(ux, uz, X),
					Body: []Literal{
						{Atom: poss(uz, X)},
						{Atom: poss(nm.UserConst[in[j].Parent], Y)},
					},
					Builtins: []Builtin{{L: Y, R: X}},
				})
			}
			if tied {
				// Tie within the priority group: block against x's own
				// (already chosen) value.
				p.AddRule(Rule{
					Head:     conf(ux, uz, X),
					Body:     []Literal{{Atom: poss(uz, X)}, {Atom: poss(ux, Y)}},
					Builtins: []Builtin{{L: Y, R: X}},
				})
			}
			p.AddRule(Rule{
				Head: poss(ux, X),
				Body: []Literal{{Atom: poss(uz, X)}, {Atom: conf(ux, uz, X), Neg: true}},
			})
		}
	}
	return p, nm
}

// PossibleFromModels extracts poss(x) per node from the union of stable
// models (brave semantics).
func PossibleFromModels(n *tn.Network, nm *Naming, models []Model) []map[tn.Value]bool {
	out := make([]map[tn.Value]bool, n.NumUsers())
	for x := range out {
		out[x] = make(map[tn.Value]bool)
	}
	for _, m := range models {
		for x := 0; x < n.NumUsers(); x++ {
			for v := range nm.ValueConst {
				if m[nm.PossAtom(x, v)] {
					out[x][v] = true
				}
			}
		}
	}
	return out
}

// CertainFromModels extracts cert(x) per node: atoms in every stable model
// (cautious semantics). With no models the result is all-undefined.
func CertainFromModels(n *tn.Network, nm *Naming, models []Model) []tn.Value {
	cert := make([]tn.Value, n.NumUsers())
	if len(models) == 0 {
		return cert
	}
	for x := 0; x < n.NumUsers(); x++ {
		for v := range nm.ValueConst {
			inAll := true
			for _, m := range models {
				if !m[nm.PossAtom(x, v)] {
					inAll = false
					break
				}
			}
			if inAll {
				cert[x] = v
				break
			}
		}
	}
	return cert
}
