package lp

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"trustmap/internal/resolve"
	"trustmap/internal/tn"
)

// TestOscillatorProgram replays Example 2.10 / Example B.1: the oscillator
// LP has exactly two stable models.
func TestOscillatorProgram(t *testing.T) {
	src := `
poss(u3,v).
poss(u4,w).
poss(u1,X) :- poss(u2,X).
conf(u1,u3,X) :- poss(u3,X), poss(u1,Y), Y!=X.
poss(u1,X) :- poss(u3,X), not conf(u1,u3,X).
poss(u2,X) :- poss(u1,X).
conf(u2,u4,X) :- poss(u4,X), poss(u2,Y), Y!=X.
poss(u2,X) :- poss(u4,X), not conf(u2,u4,X).
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	models, err := StableModels(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("want 2 stable models, got %d", len(models))
	}
	// One model has u1=u2=v, the other u1=u2=w.
	seen := map[string]bool{}
	for _, m := range models {
		switch {
		case m["poss(u1,v)"] && m["poss(u2,v)"] && !m["poss(u1,w)"]:
			seen["v"] = true
		case m["poss(u1,w)"] && m["poss(u2,w)"] && !m["poss(u1,v)"]:
			seen["w"] = true
		default:
			t.Errorf("unexpected model %v", m)
		}
	}
	if !seen["v"] || !seen["w"] {
		t.Error("models should cover both oscillator phases")
	}
}

// TestExampleB1 replays the two DLV runs of Example B.1.
func TestExampleB1(t *testing.T) {
	// Preferred/non-preferred parents (Fig 13c): unique model, x=v.
	src1 := `
poss(z1,v).
poss(z2,w).
poss(x,X) :- poss(z2,X).
conf(x,z1,X) :- poss(z1,X), poss(x,Y), Y!=X.
poss(x,X) :- poss(z1,X), not conf(x,z1,X).
`
	p1, err := Parse(src1)
	if err != nil {
		t.Fatal(err)
	}
	brave, err := Brave(p1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(filterPrefix(brave, "poss("), " ")
	want := "poss(x,w) poss(z1,v) poss(z2,w)"
	if got != want {
		t.Errorf("brave=%q want %q", got, want)
	}
	// Two tied parents (Fig 13d): x has two possible values.
	src2 := `
poss(z1,v).
poss(z2,w).
conf(x,z1,X) :- poss(z1,X), poss(x,Y), Y!=X.
poss(x,X) :- poss(z1,X), not conf(x,z1,X).
conf(x,z2,X) :- poss(z2,X), poss(x,Y), Y!=X.
poss(x,X) :- poss(z2,X), not conf(x,z2,X).
`
	p2, err := Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	brave2, err := Brave(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got2 := strings.Join(filterPrefix(brave2, "poss("), " ")
	want2 := "poss(x,v) poss(x,w) poss(z1,v) poss(z2,w)"
	if got2 != want2 {
		t.Errorf("brave=%q want %q", got2, want2)
	}
	// Under cautious semantics x has no certain value.
	caut, err := Cautious(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range caut {
		if strings.HasPrefix(a, "poss(x,") {
			t.Errorf("x must have no cautious value, got %s", a)
		}
	}
}

func filterPrefix(xs []string, prefix string) []string {
	var out []string
	for _, x := range xs {
		if strings.HasPrefix(x, prefix) {
			out = append(out, x)
		}
	}
	return out
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"poss(x,",        // unclosed atom
		"poss(x,v)",      // missing period
		"poss(x,'v).",    // unterminated quote
		"poss(x,v) :- .", // empty body
		"@foo.",          // bad rune
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseQuotedAndComments(t *testing.T) {
	p, err := Parse("% a comment\nposs(u1,'ship hull'). % trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 || p.Rules[0].Head.Args[1].Name != "ship hull" {
		t.Errorf("quoted constant mishandled: %v", p.Rules)
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	p, err := Parse("poss(x,X) :- not conf(x,X).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StableModels(p, Options{}); err == nil {
		t.Error("unsafe rule must be rejected at grounding")
	}
}

func TestNoStableModel(t *testing.T) {
	// p :- not p. has no stable model.
	p, err := Parse("q(a).\np(a) :- q(a), not p(a).")
	if err != nil {
		t.Fatal(err)
	}
	models, err := StableModels(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Errorf("want no stable model, got %v", models)
	}
}

func TestStratifiedUniqueModel(t *testing.T) {
	p, err := Parse(`
edge(a,b).
edge(b,c).
reach(a,a).
reach(a,Y) :- reach(a,X), edge(X,Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	models, err := StableModels(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("stratified program must have a unique stable model, got %d", len(models))
	}
	m := models[0]
	for _, a := range []string{"reach(a,a)", "reach(a,b)", "reach(a,c)"} {
		if !m[a] {
			t.Errorf("missing %s", a)
		}
	}
	if m["reach(a,d)"] {
		t.Error("spurious derivation")
	}
}

func TestBudgetExceeded(t *testing.T) {
	// A chain of independent oscillators doubles the model count each time;
	// a tiny budget must trip.
	var b strings.Builder
	for i := 0; i < 8; i++ {
		u := string(rune('a' + i))
		b.WriteString("p" + u + "(v) :- not q" + u + "(v).\n")
		b.WriteString("q" + u + "(v) :- not p" + u + "(v).\n")
	}
	// Ground the choice with a domain fact.
	b.WriteString("dom(v).\n")
	p, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StableModels(p, Options{Budget: 10}); err != ErrBudget {
		t.Errorf("want ErrBudget, got %v", err)
	}
}

func TestMatchQuery(t *testing.T) {
	q, err := ParseQuery("poss(X,U) ?")
	if err != nil {
		t.Fatal(err)
	}
	atoms := []string{"poss(u1,v)", "poss(u2,w)", "conf(u1,u2,v)"}
	got := MatchQuery(q, atoms)
	if len(got) != 2 {
		t.Errorf("want 2 matches, got %v", got)
	}
	q2, _ := ParseQuery("poss(u1,U) ?")
	if got := MatchQuery(q2, atoms); len(got) != 1 || got[0] != "poss(u1,v)" {
		t.Errorf("bound query wrong: %v", got)
	}
	// Repeated variables require equal arguments.
	q3, _ := ParseQuery("pair(X,X) ?")
	pairs := []string{"pair(a,a)", "pair(a,b)"}
	if got := MatchQuery(q3, pairs); len(got) != 1 || got[0] != "pair(a,a)" {
		t.Errorf("repeated-variable match wrong: %v", got)
	}
}

// ---- Theorem 2.9: translation equivalence ----

func randomBTN(rng *rand.Rand, maxUsers int) *tn.Network {
	n := tn.New()
	nu := 2 + rng.Intn(maxUsers-1)
	for i := 0; i < nu; i++ {
		n.AddUser("u" + string(rune('A'+i)))
	}
	values := []tn.Value{"v", "w"}
	nRoots := 1 + rng.Intn(2)
	for i := 0; i < nRoots && i < nu; i++ {
		n.SetExplicit(i, values[rng.Intn(len(values))])
	}
	for x := nRoots; x < nu; x++ {
		k := rng.Intn(3)
		perm := rng.Perm(nu)
		added := 0
		for _, z := range perm {
			if added >= k || z == x {
				continue
			}
			var prio int
			if added == 1 && rng.Float64() < 0.25 {
				prio = n.In(x)[0].Priority
			} else {
				prio = 1 + rng.Intn(4)
			}
			n.AddMapping(z, x, prio)
			added++
		}
	}
	return n
}

// TestTranslateBinaryMatchesResolve verifies Theorem 2.9: brave/cautious
// answers of the translated LP equal Algorithm 1's possible/certain values.
func TestTranslateBinaryMatchesResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 120; i++ {
		n := randomBTN(rng, 7)
		prog, nm := TranslateBinary(n, nil)
		models, err := StableModels(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lpPoss := PossibleFromModels(n, nm, models)
		lpCert := CertainFromModels(n, nm, models)
		r := resolve.Resolve(n)
		for x := 0; x < n.NumUsers(); x++ {
			raPoss := r.Possible(x)
			if len(raPoss) != len(lpPoss[x]) {
				t.Fatalf("net %d poss(%s): RA %v vs LP %v", i, n.Name(x), raPoss, lpPoss[x])
			}
			for _, v := range raPoss {
				if !lpPoss[x][v] {
					t.Fatalf("net %d poss(%s): RA has %q, LP misses it", i, n.Name(x), v)
				}
			}
			if r.Certain(x) != lpCert[x] {
				t.Fatalf("net %d cert(%s): RA %q vs LP %q", i, n.Name(x), r.Certain(x), lpCert[x])
			}
		}
	}
}

// TestTranslateDirectMatchesOracle verifies the non-binary direct
// translation (Appendix B.4 Remark 2) against the Definition 2.4 oracle.
func TestTranslateDirectMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	values := []tn.Value{"v", "w"}
	for i := 0; i < 80; i++ {
		n := tn.New()
		nu := 3 + rng.Intn(3)
		for j := 0; j < nu; j++ {
			n.AddUser("u" + string(rune('A'+j)))
		}
		for x := 0; x < nu; x++ {
			perm := rng.Perm(nu)
			k := rng.Intn(4)
			added := 0
			for _, z := range perm {
				if added >= k || z == x {
					continue
				}
				n.AddMapping(z, x, 1+rng.Intn(3))
				added++
			}
		}
		n.SetExplicit(0, values[rng.Intn(2)])
		if rng.Float64() < 0.5 && nu > 1 {
			n.SetExplicit(1, values[rng.Intn(2)])
		}
		prog, nm := TranslateDirect(n, nil)
		models, err := StableModels(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lpPoss := PossibleFromModels(n, nm, models)
		sols := tn.EnumerateStableSolutions(n, 0)
		wantPoss := tn.PossibleFromSolutions(n, sols)
		for x := 0; x < nu; x++ {
			if len(lpPoss[x]) != len(wantPoss[x]) {
				t.Fatalf("net %d poss(%s): LP %v vs oracle %v\nprogram:\n%s", i, n.Name(x), lpPoss[x], wantPoss[x], prog)
			}
			for v := range lpPoss[x] {
				if !wantPoss[x][v] {
					t.Fatalf("net %d poss(%s): LP spurious %q", i, n.Name(x), v)
				}
			}
		}
	}
}

// TestModelCountMatchesSolutionCount: stable models and stable solutions
// correspond 1:1 for binary networks (Theorem 2.9).
func TestModelCountMatchesSolutionCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		n := randomBTN(rng, 6)
		prog, _ := TranslateBinary(n, nil)
		models, err := StableModels(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sols := tn.EnumerateStableSolutions(n, 0)
		if len(models) != len(sols) {
			t.Fatalf("net %d: %d models vs %d solutions", i, len(models), len(sols))
		}
	}
}

func TestProgramString(t *testing.T) {
	src := "poss(z1,v).\nposs(x,X) :- poss(z1,X), not conf(x,z1,X).\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	round, err := Parse(p.String())
	if err != nil {
		t.Fatalf("String() output does not re-parse: %v\n%s", err, p.String())
	}
	if len(round.Rules) != len(p.Rules) {
		t.Error("round trip lost rules")
	}
}

func TestBraveSorted(t *testing.T) {
	p, _ := Parse("b(x).\na(y).\n")
	brave, err := Brave(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(brave) {
		t.Error("brave output must be sorted")
	}
}
