// Package lp implements normal logic programs with negation under the
// stable model semantics (Gelfond-Lifschitz), as reviewed in Section 2.3 and
// Appendix B.2 of the paper. It is the repository's substitute for DLV, the
// solver the paper benchmarks against: it parses the same rule syntax the
// paper uses, grounds programs over their active domain, enumerates stable
// models by branching over negative atoms with a Gelfond-Lifschitz check at
// the leaves, and answers brave and cautious queries.
//
// Deciding stable-model existence is NP-hard even for very restricted
// programs (Section 2.3), so this engine is intentionally a worst-case
// exponential search - exactly the behaviour Figure 5 and Figure 8 measure.
package lp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Term is a constant or a variable. Variables start with an upper-case
// letter, as in DLV.
type Term struct {
	Name string
	Var  bool
}

// Const returns a constant term.
func Const(name string) Term { return Term{Name: name} }

// Var returns a variable term.
func Var(name string) Term { return Term{Name: name, Var: true} }

// String renders the term as it appears in a program listing.
func (t Term) String() string { return t.Name }

// Atom is a predicate applied to terms, e.g. poss(x, V).
type Atom struct {
	Pred string
	Args []Term
}

// String renders the atom as predicate(args...).
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Literal is an atom or its negation-as-failure.
type Literal struct {
	Atom Atom
	Neg  bool // "not atom"
}

// String renders the literal, prefixing "not " under negation.
func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Builtin is a comparison between two terms: X != Y or X = Y.
type Builtin struct {
	L, R Term
	Eq   bool // true for '=', false for '!='
}

// String renders the builtin comparison infix, e.g. "X != Y".
func (b Builtin) String() string {
	op := "!="
	if b.Eq {
		op = "="
	}
	return b.L.String() + op + b.R.String()
}

// Rule is head :- body. A rule with an empty body is a fact.
type Rule struct {
	Head     Atom
	Body     []Literal
	Builtins []Builtin
}

// String renders the rule in head :- body notation (facts bare).
func (r Rule) String() string {
	if len(r.Body) == 0 && len(r.Builtins) == 0 {
		return r.Head.String() + "."
	}
	var parts []string
	for _, l := range r.Body {
		parts = append(parts, l.String())
	}
	for _, b := range r.Builtins {
		parts = append(parts, b.String())
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a normal logic program.
type Program struct {
	Rules []Rule
}

// AddFact appends a ground fact.
func (p *Program) AddFact(a Atom) { p.Rules = append(p.Rules, Rule{Head: a}) }

// AddRule appends a rule.
func (p *Program) AddRule(r Rule) { p.Rules = append(p.Rules, r) }

// String renders the whole program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ---- Grounding ----

// groundRule is a fully instantiated rule over interned atom IDs.
type groundRule struct {
	head int
	pos  []int
	neg  []int
}

// grounder interns ground atoms and instantiates rules.
type grounder struct {
	ids   map[string]int
	names []string
}

func (g *grounder) intern(a Atom) int {
	k := a.String()
	if id, ok := g.ids[k]; ok {
		return id
	}
	id := len(g.names)
	g.ids[k] = id
	g.names = append(g.names, k)
	return id
}

// Ground instantiates the rules of p by bottom-up "intelligent grounding":
// positive body literals are joined against the set of atoms derivable when
// negation is ignored (a sound over-approximation: atoms outside that set
// are false in every stable model, and rules mentioning them positively can
// never fire). This is how practical solvers like DLV keep ground programs
// small. Unsafe rules (a head, negative, or builtin variable not bound by a
// positive body literal) are rejected.
func ground(p *Program) (*grounder, []groundRule, error) {
	g := &grounder{ids: make(map[string]int)}
	for ri := range p.Rules {
		if _, err := ruleVars(&p.Rules[ri]); err != nil {
			return nil, nil, err
		}
	}
	// Derivable atoms, indexed by predicate; args decoded per atom.
	// Interning records the decoded args for every atom; only derived
	// atoms (facts and rule heads) join positive bodies.
	var atomArgs [][]string
	byPred := make(map[string][]int)
	derived := make(map[int]bool)
	internArgs := func(a Atom, args []string) int {
		id := g.intern(a)
		if id == len(atomArgs) {
			atomArgs = append(atomArgs, args)
		}
		return id
	}
	derive := func(a Atom, args []string) (int, bool) {
		id := internArgs(a, args)
		if derived[id] {
			return id, false
		}
		derived[id] = true
		byPred[a.Pred] = append(byPred[a.Pred], id)
		return id, true
	}
	makeAtom := func(a Atom, sub map[string]string) (Atom, []string) {
		args := make([]string, len(a.Args))
		terms := make([]Term, len(a.Args))
		for i, t := range a.Args {
			v := t.Name
			if t.Var {
				v = sub[t.Name]
			}
			args[i] = v
			terms[i] = Const(v)
		}
		return Atom{Pred: a.Pred, Args: terms}, args
	}
	var out []groundRule
	seenRule := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for ri := range p.Rules {
			r := &p.Rules[ri]
			var pos, neg []Literal
			for _, l := range r.Body {
				if l.Neg {
					neg = append(neg, l)
				} else {
					pos = append(pos, l)
				}
			}
			sub := make(map[string]string)
			var rec func(i int)
			rec = func(i int) {
				if i == len(pos) {
					for _, b := range r.Builtins {
						l, rr := b.L.Name, b.R.Name
						if b.L.Var {
							l = sub[b.L.Name]
						}
						if b.R.Var {
							rr = sub[b.R.Name]
						}
						if b.Eq != (l == rr) {
							return
						}
					}
					gr := groundRule{}
					headAtom, headArgs := makeAtom(r.Head, sub)
					key := headAtom.String() + ":-"
					for _, l := range pos {
						a, aArgs := makeAtom(l.Atom, sub)
						gr.pos = append(gr.pos, internArgs(a, aArgs))
						key += "," + a.String()
					}
					for _, l := range neg {
						a, aArgs := makeAtom(l.Atom, sub)
						gr.neg = append(gr.neg, internArgs(a, aArgs))
						key += ",not " + a.String()
					}
					hid, fresh := derive(headAtom, headArgs)
					gr.head = hid
					if fresh {
						changed = true
					}
					if !seenRule[key] {
						seenRule[key] = true
						out = append(out, gr)
					}
					return
				}
				lit := pos[i]
				for _, id := range byPred[lit.Atom.Pred] {
					args := atomArgs[id]
					if len(args) != len(lit.Atom.Args) {
						continue
					}
					var bound []string
					ok := true
					for j, t := range lit.Atom.Args {
						if !t.Var {
							if t.Name != args[j] {
								ok = false
								break
							}
							continue
						}
						if v, have := sub[t.Name]; have {
							if v != args[j] {
								ok = false
								break
							}
							continue
						}
						sub[t.Name] = args[j]
						bound = append(bound, t.Name)
					}
					if ok {
						rec(i + 1)
					}
					for _, v := range bound {
						delete(sub, v)
					}
				}
			}
			rec(0)
		}
	}
	return g, out, nil
}

// activeDomain returns the sorted set of constants appearing in p.
func activeDomain(p *Program) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if !t.Var && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	for _, r := range p.Rules {
		for _, t := range r.Head.Args {
			add(t)
		}
		for _, l := range r.Body {
			for _, t := range l.Atom.Args {
				add(t)
			}
		}
		for _, b := range r.Builtins {
			add(b.L)
			add(b.R)
		}
	}
	sort.Strings(out)
	return out
}

// ruleVars returns the variables of r and checks safety: every variable in
// the head, in a negative literal, or in a builtin must occur in a positive
// body literal.
func ruleVars(r *Rule) ([]string, error) {
	posVars := make(map[string]bool)
	for _, l := range r.Body {
		if !l.Neg {
			for _, t := range l.Atom.Args {
				if t.Var {
					posVars[t.Var2name()] = true
				}
			}
		}
	}
	check := func(t Term, where string) error {
		if t.Var && !posVars[t.Name] {
			return fmt.Errorf("lp: unsafe rule %s: variable %s in %s not bound positively", r, t.Name, where)
		}
		return nil
	}
	for _, t := range r.Head.Args {
		if err := check(t, "head"); err != nil {
			return nil, err
		}
	}
	for _, l := range r.Body {
		if l.Neg {
			for _, t := range l.Atom.Args {
				if err := check(t, "negative literal"); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, b := range r.Builtins {
		if err := check(b.L, "builtin"); err != nil {
			return nil, err
		}
		if err := check(b.R, "builtin"); err != nil {
			return nil, err
		}
	}
	vars := make([]string, 0, len(posVars))
	for v := range posVars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars, nil
}

// Var2name exists to keep Term small; it returns the variable name.
func (t Term) Var2name() string { return t.Name }

// instantiate applies the substitution and evaluates builtins; ok=false if a
// builtin fails.
func instantiate(g *grounder, r *Rule, sub map[string]string) (groundRule, bool) {
	apply := func(t Term) string {
		if t.Var {
			return sub[t.Name]
		}
		return t.Name
	}
	for _, b := range r.Builtins {
		l, rr := apply(b.L), apply(b.R)
		if b.Eq != (l == rr) {
			return groundRule{}, false
		}
	}
	inst := func(a Atom) int {
		args := make([]Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = Const(apply(t))
		}
		return g.intern(Atom{Pred: a.Pred, Args: args})
	}
	gr := groundRule{head: inst(r.Head)}
	for _, l := range r.Body {
		id := inst(l.Atom)
		if l.Neg {
			gr.neg = append(gr.neg, id)
		} else {
			gr.pos = append(gr.pos, id)
		}
	}
	return gr, true
}

// ---- Stable model search ----

// Model is a stable model: the set of true ground atoms, as strings.
type Model map[string]bool

// Options controls the stable model search.
type Options struct {
	MaxModels int // stop after this many models (0 = all)
	Budget    int // max leaf evaluations (0 = unlimited); exceeded => ErrBudget
}

// ErrBudget is returned when the search exceeded Options.Budget leaf
// evaluations, signalling the exponential cliff the paper's Figure 5 shows.
var ErrBudget = errors.New("lp: search budget exhausted")

// StableModels enumerates the stable models of p.
func StableModels(p *Program, opt Options) ([]Model, error) {
	g, rules, err := ground(p)
	if err != nil {
		return nil, err
	}
	return searchStable(g.names, rules, opt)
}

// searchStable enumerates the stable models of a ground program given by
// interned atom names and rules.
func searchStable(names []string, rules []groundRule, opt Options) ([]Model, error) {
	n := len(names)
	// Negative atoms: the only choice points.
	negSet := make(map[int]bool)
	for _, r := range rules {
		for _, a := range r.neg {
			negSet[a] = true
		}
	}
	negAtoms := make([]int, 0, len(negSet))
	for a := range negSet {
		negAtoms = append(negAtoms, a)
	}
	sort.Ints(negAtoms)

	const (
		unknown = 0
		in      = 1
		out     = 2
	)
	assign := make([]int8, n)
	var models []Model
	leaves := 0

	// leastModel computes the least model of the reduct of the rules under
	// the (possibly partial) assignment. optimistic=true keeps rules whose
	// negative atoms are unknown (upper bound); optimistic=false is only
	// used with total assignments.
	derived := make([]bool, n)
	leastModel := func(optimistic bool) []bool {
		for i := range derived {
			derived[i] = false
		}
		for changed := true; changed; {
			changed = false
		ruleLoop:
			for _, r := range rules {
				if derived[r.head] {
					continue
				}
				for _, a := range r.neg {
					switch assign[a] {
					case in:
						continue ruleLoop
					case unknown:
						if !optimistic {
							continue ruleLoop
						}
					}
				}
				for _, a := range r.pos {
					if !derived[a] {
						continue ruleLoop
					}
				}
				derived[r.head] = true
				changed = true
			}
		}
		return derived
	}

	var search func(i int) error
	search = func(i int) error {
		// Prune: under the optimistic bound, every atom assigned "in" must
		// still be derivable.
		up := leastModel(true)
		for _, a := range negAtoms[:i] {
			if assign[a] == in && !up[a] {
				return nil
			}
		}
		if i == len(negAtoms) {
			leaves++
			if opt.Budget > 0 && leaves > opt.Budget {
				return ErrBudget
			}
			lm := leastModel(false)
			// Gelfond-Lifschitz check: the least model of the reduct must
			// reproduce the guess on the negative atoms.
			for _, a := range negAtoms {
				if (assign[a] == in) != lm[a] {
					return nil
				}
			}
			m := make(Model)
			for a := 0; a < n; a++ {
				if lm[a] {
					m[names[a]] = true
				}
			}
			models = append(models, m)
			if opt.MaxModels > 0 && len(models) >= opt.MaxModels {
				return errStop
			}
			return nil
		}
		a := negAtoms[i]
		for _, v := range []int8{out, in} {
			assign[a] = v
			if err := search(i + 1); err != nil {
				assign[a] = unknown
				return err
			}
		}
		assign[a] = unknown
		return nil
	}
	err := search(0)
	if err == errStop {
		err = nil
	}
	return models, err
}

var errStop = errors.New("lp: enough models")

// Brave reports the atoms matching pred that belong to at least one stable
// model (DLV's -brave). Atom strings are returned sorted.
func Brave(p *Program, opt Options) ([]string, error) {
	models, err := StableModels(p, opt)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, m := range models {
		for a := range m {
			set[a] = true
		}
	}
	return sortedKeys(set), nil
}

// Cautious reports the atoms that belong to every stable model (DLV's
// -cautious). With no stable models, the result is empty (the paper's
// networks always have at least one, by the Forward Lemma).
func Cautious(p *Program, opt Options) ([]string, error) {
	models, err := StableModels(p, opt)
	if err != nil {
		return nil, err
	}
	if len(models) == 0 {
		return nil, nil
	}
	set := make(map[string]bool)
	for a := range models[0] {
		set[a] = true
	}
	for _, m := range models[1:] {
		for a := range set {
			if !m[a] {
				delete(set, a)
			}
		}
	}
	return sortedKeys(set), nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
