package lp

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"trustmap/internal/tn"
	"trustmap/internal/workload"
)

// TestDecomposedMatchesMonolithic: brave/cautious answers agree with the
// monolithic solver on random binary trust network programs.
func TestDecomposedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 60; i++ {
		n := randomBTN(rng, 7)
		prog, _ := TranslateBinary(n, nil)
		wantB, err := Brave(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := BraveDecomposed(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(wantB, "|") != strings.Join(gotB, "|") {
			t.Fatalf("net %d brave: %v vs %v", i, wantB, gotB)
		}
		wantC, err := Cautious(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := CautiousDecomposed(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(wantC, "|") != strings.Join(gotC, "|") {
			t.Fatalf("net %d cautious: %v vs %v", i, wantC, gotC)
		}
	}
}

// TestCountStableModels: k independent oscillators have exactly 2^k
// stable models, counted without enumeration.
func TestCountStableModels(t *testing.T) {
	for _, k := range []int{1, 3, 5, 30} {
		n := workload.OscillatorClusters(k)
		prog, _ := TranslateBinary(n, nil)
		count, err := CountStableModels(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if count.BitLen() != k+1 || count.Bit(k) != 1 {
			t.Fatalf("k=%d: count=%s want 2^%d", k, count, k)
		}
	}
}

// TestDecomposedNoModel: a component without stable models voids the whole
// program's answers.
func TestDecomposedNoModel(t *testing.T) {
	prog, err := Parse(`
a(x).
p(x) :- a(x), not p(x).
q(y).
`)
	if err != nil {
		t.Fatal(err)
	}
	brave, err := BraveDecomposed(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(brave) != 0 {
		t.Errorf("program without stable models must have no brave atoms: %v", brave)
	}
	caut, err := CautiousDecomposed(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(caut) != 0 {
		t.Errorf("no cautious atoms expected: %v", caut)
	}
	count, err := CountStableModels(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if count.Sign() != 0 {
		t.Errorf("count=%s want 0", count)
	}
}

// TestDecompositionScalesOnOscillatorChains: the ablation claim — the
// decomposed brave query handles a chain size that would take the
// monolithic solver ~2^25 leaf evaluations.
func TestDecompositionScalesOnOscillatorChains(t *testing.T) {
	n := workload.OscillatorClusters(25)
	prog, nm := TranslateBinary(n, nil)
	start := time.Now()
	brave, err := BraveDecomposed(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatalf("decomposed solve too slow: %v", time.Since(start))
	}
	// Every oscillator node has both values brave.
	want := nm.PossAtom(n.UserID("c0_x1"), tn.Value("v"))
	found := false
	for _, a := range brave {
		if a == want {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("expected %s among brave atoms", want)
	}
	// The monolithic solver must hit a tiny budget on the same instance.
	if _, err := StableModels(prog, Options{Budget: 1 << 12}); err != ErrBudget {
		t.Errorf("monolithic solver should exhaust the budget, got %v", err)
	}
}
